package repro_test

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro"
)

// ExampleRun measures one system at one data rate — the minimal use of
// the package.
func ExampleRun() {
	w := repro.Workload{Packets: 20_000, TargetRate: 600e6, Seed: 1}
	cfg := repro.Moorhen() // FreeBSD 5.4 / dual AMD Opteron
	cfg.BufferBytes = 10 << 20
	st := repro.Run(cfg, w)
	fmt.Printf("moorhen at 600 Mbit/s: %.0f%% captured\n", st.CaptureRate())
	// Output:
	// moorhen at 600 Mbit/s: 100% captured
}

// ExampleCompileFilter compiles the thesis's Figure 6.5 measurement
// filter and shows its classic-BPF size.
func ExampleCompileFilter() {
	prog, err := repro.CompileFilter(repro.ReferenceFilter, 1515)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d BPF instructions\n", len(prog))
	// Output:
	// 50 BPF instructions
}

// ExampleNewGenerator drives the enhanced pktgen through its pgset
// command interface.
func ExampleNewGenerator() {
	g := repro.NewGenerator(7)
	for _, cmd := range []string{
		"count 3",
		"pkt_size 1500",
		"dst 192.168.10.12",
	} {
		if err := g.Pgset(cmd); err != nil {
			panic(err)
		}
	}
	n := 0
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		n++
		_ = p
	}
	fmt.Printf("generated %d frames, %d bytes\n", n, g.SentBytes)
	// Output:
	// generated 3 frames, 4500 bytes
}

// ExampleOpenOffline reads a synthesized trace back through the
// libpcap-style Handle with a filter installed.
func ExampleOpenOffline() {
	var trace bytes.Buffer
	if err := repro.SynthesizeTrace(&trace, 100, 1, 0); err != nil {
		panic(err)
	}
	h, err := repro.OpenOffline(&trace)
	if err != nil {
		panic(err)
	}
	if err := h.SetFilter("udp and greater 100"); err != nil {
		panic(err)
	}
	n := 0
	for {
		_, _, err := h.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		n++
	}
	st := h.Stats()
	fmt.Printf("passed %d, filtered %d, total %d\n", n, st.Filtered, n+int(st.Filtered))
	// Output:
	// passed 54, filtered 46, total 100
}

// ExampleNewFlowTable accounts packets per connection.
func ExampleNewFlowTable() {
	var trace bytes.Buffer
	if err := repro.SynthesizeTrace(&trace, 50, 1, 0); err != nil {
		panic(err)
	}
	h, err := repro.OpenOffline(&trace)
	if err != nil {
		panic(err)
	}
	tbl := repro.NewFlowTable(true)
	for {
		info, data, err := h.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		repro.ObserveFlow(tbl, info.Timestamp, data)
	}
	// The synthetic trace is one UDP flow.
	fmt.Printf("%d flow(s)\n", tbl.Len())
	// Output:
	// 1 flow(s)
}

// ExampleNewTestbed runs one full §3.4 measurement cycle over all four
// sniffers, with switch counters as ground truth.
func ExampleNewTestbed() {
	tb := repro.NewTestbed(repro.Workload{Packets: 5_000, TargetRate: 400e6, Seed: 1})
	res, err := tb.RunCycle(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("switch counted %d packets for %d sniffers\n",
		res.GeneratedBySwitch(), len(res.Sniffers))
	// Output:
	// switch counted 5000 packets for 4 sniffers
}

// ExampleFormatPacket prints a captured frame like tcpdump.
func ExampleFormatPacket() {
	var trace bytes.Buffer
	if err := repro.SynthesizeTrace(&trace, 1, 1, 0); err != nil {
		panic(err)
	}
	h, err := repro.OpenOffline(&trace)
	if err != nil {
		panic(err)
	}
	_, data, err := h.ReadPacket()
	if err != nil {
		panic(err)
	}
	fmt.Println(repro.FormatPacket(time.Time{}, data))
	// Output:
	// IP 192.168.10.100.9 > 192.168.10.12.9: UDP, length 16
}
