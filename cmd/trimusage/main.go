// trimusage postprocesses cpusage output (§A.4): it extracts the longest
// run of samples whose idle value stays below the limit — the actual
// measurement window — and prints the trimmed samples plus their summary,
// like the original awk script.
//
//	cpusage -system swan -o | trimusage -limit 95
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cpuprof"
)

func main() {
	var (
		limit   = flag.Float64("limit", 95, "idle limit: samples with idle >= limit are trimmed")
		inFile  = flag.String("i", "", "input file (default: standard input)")
		machine = flag.Bool("o", true, "machine-readable output")
	)
	flag.Parse()
	if err := run(*limit, *inFile, *machine); err != nil {
		fmt.Fprintln(os.Stderr, "trimusage:", err)
		os.Exit(1)
	}
}

func run(limit float64, inFile string, machine bool) error {
	in := io.Reader(os.Stdin)
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	samples, os_, err := cpuprof.Parse(in)
	if err != nil {
		return err
	}
	trimmed := cpuprof.Trim(samples, limit)
	if err := cpuprof.Write(os.Stdout, trimmed, os_, machine); err != nil {
		return err
	}
	sum := cpuprof.Summarize(trimmed)
	fmt.Printf("# %d of %d samples in the longest busy run (idle < %.0f)\n",
		len(trimmed), len(samples), limit)
	fmt.Printf("# Avg: user %.1f%% sys %.1f%% softirq %.1f%% intr %.1f%% idle %.1f%%\n",
		sum.Avg.User, sum.Avg.Sys, sum.Avg.Soft, sum.Avg.Intr, sum.Avg.Idle)
	return nil
}
