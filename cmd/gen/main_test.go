package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pcapfile"
)

func TestGenWritesTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "train.pcap")
	if err := run("", false, true, 500, 0, 400, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := pcapfile.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, _, err := r.Next()
		if err != nil {
			break
		}
		n++
	}
	if n != 500 {
		t.Fatalf("trace has %d packets, want 500", n)
	}
}

func TestGenScript(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "cmds.pgset")
	content := "# comment\npgset \"pkt_size 700\"\ncount 100\n"
	if err := os.WriteFile(script, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "t.pcap")
	if err := run(script, false, false, 0, 0, 0, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	r, err := pcapfile.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if info.CapLen != 700 {
		t.Fatalf("frame size %d, want 700 (from script)", info.CapLen)
	}
}

func TestGenBadScript(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "bad.pgset")
	os.WriteFile(script, []byte("definitely not a command\n"), 0o644)
	if err := run(script, false, false, 10, 0, 0, 0, 1, ""); err == nil {
		t.Fatal("bad script accepted")
	}
}
