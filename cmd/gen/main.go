// gen drives the enhanced Linux Kernel Packet Generator standalone: it
// accepts pgset command scripts (the /proc interface of §A.2.2), generates
// the packet train, reports the achieved rates — and can dump the train to
// a pcap file for inspection.
//
//	gen -script pktgen.pgset -count 100000 -rate 500 -w train.pcap
//	createdist -I trace -O procfs -i train.pcap | gen -stdin -count 10000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/pcapfile"
	"repro/internal/pktgen"
	"repro/internal/trace"
)

func main() {
	var (
		script  = flag.String("script", "", "file with pgset commands (dist/outl/hist/flag/...)")
		stdin   = flag.Bool("stdin", false, "read pgset commands from standard input")
		mwn     = flag.Bool("mwn", false, "load the built-in MWN packet size distribution")
		count   = flag.Int("count", 100_000, "packets to generate")
		size    = flag.Int("size", 0, "fixed frame size (disables the distribution)")
		rate    = flag.Float64("rate", 0, "target wire rate in Mbit/s (0 = line rate)")
		delay   = flag.Int64("delay", 0, "artificial inter-packet gap in ns")
		seed    = flag.Uint64("seed", 1, "random seed")
		outPcap = flag.String("w", "", "write the generated train to this pcap file")
	)
	flag.Parse()
	if err := run(*script, *stdin, *mwn, *count, *size, *rate, *delay, *seed, *outPcap); err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
}

func run(script string, stdin, mwn bool, count, size int, rate float64, delay int64, seed uint64, outPcap string) error {
	g := pktgen.New(seed)
	g.Config.Count = count
	if size > 0 {
		g.Config.PktSize = size
	}
	if rate > 0 {
		g.Config.TargetRate = rate * 1e6
	}
	g.Config.DelayNS = delay

	if mwn {
		d, err := dist.Build(trace.MWNCounts(1_000_000), dist.DefaultParams())
		if err != nil {
			return err
		}
		g.LoadDistribution(d)
	}
	feed := func(r io.Reader, name string) error {
		sc := bufio.NewScanner(r)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if strings.HasPrefix(line, "pgset") {
				line = strings.Trim(strings.TrimSpace(strings.TrimPrefix(line, "pgset")), `"`)
			}
			if err := g.Pgset(line); err != nil {
				return fmt.Errorf("%s:%d: %w", name, lineNo, err)
			}
		}
		return sc.Err()
	}
	if script != "" {
		f, err := os.Open(script)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := feed(f, script); err != nil {
			return err
		}
	}
	if stdin {
		if err := feed(os.Stdin, "stdin"); err != nil {
			return err
		}
	}
	if g.DistReady() && !g.SizeReal() {
		if err := g.Pgset("flag PKTSIZE_REAL"); err != nil {
			return err
		}
	}

	var pw *pcapfile.Writer
	if outPcap != "" {
		f, err := os.Create(outPcap)
		if err != nil {
			return err
		}
		defer f.Close()
		pw = pcapfile.NewWriter(f, 65535)
	}
	base := time.Date(2005, time.November, 15, 0, 0, 0, 0, time.UTC)
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		if pw != nil {
			if err := pw.WritePacket(base.Add(time.Duration(p.At)), p.Data, len(p.Data)); err != nil {
				return err
			}
		}
	}
	if pw != nil {
		if err := pw.Flush(); err != nil {
			return err
		}
	}
	fmt.Printf("generated %d packets, %d frame bytes (%d on the wire)\n",
		g.Sent, g.SentBytes, g.WireBytes)
	fmt.Printf("duration %.6f s, wire rate %.1f Mbit/s, frame rate %.1f Mbit/s, %.1f kpps\n",
		g.LastTime.Seconds(), g.AchievedRate()/1e6, g.FrameRate()/1e6,
		float64(g.Sent)/g.LastTime.Seconds()/1e3)
	return nil
}
