package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
BenchmarkEventQueue 	     200	      1382 ns/op	       9 B/op	       0 allocs/op
BenchmarkEventQueue-8 	     200	      1290 ns/op	       9 B/op	       0 allocs/op
BenchmarkSchedule  	  200000	       134.8 ns/op	      98 B/op	       0 allocs/op
PASS
ok  	repro/internal/sim	0.5s
`

func TestParseBenchOutput(t *testing.T) {
	samples := map[string][]metrics{}
	parseBenchOutput(sampleOutput, samples)
	if got := len(samples["EventQueue"]); got != 2 {
		t.Fatalf("EventQueue samples = %d, want 2 (suffixed and unsuffixed names merge)", got)
	}
	if got := samples["Schedule"][0]; got.NsPerOp != 134.8 || got.BytesPerOp != 98 || got.AllocsPerOp != 0 {
		t.Fatalf("Schedule metrics = %+v", got)
	}
}

func TestAggregateMinKeepsFastestRun(t *testing.T) {
	samples := map[string][]metrics{}
	parseBenchOutput(sampleOutput, samples)
	agg := aggregateMin(samples)
	if agg["EventQueue"].NsPerOp != 1290 {
		t.Fatalf("EventQueue min ns/op = %v, want 1290", agg["EventQueue"].NsPerOp)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkSweepSerial":    "SweepSerial",
		"BenchmarkSweepSerial-16": "SweepSerial",
		"BenchmarkRunDense-8":     "RunDense",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func snapWith(ns map[string]float64) snapshot {
	benches := map[string]metrics{}
	for name, v := range ns {
		benches[name] = metrics{NsPerOp: v}
	}
	return snapshot{Schema: "benchsnap/v1", Benchmarks: benches}
}

func TestCompareSnapshotsFlagsRegressions(t *testing.T) {
	oldSnap := snapWith(map[string]float64{"EventQueue": 1000, "SweepSerial": 100, "Cancel": 10})
	newSnap := snapWith(map[string]float64{"EventQueue": 1200, "SweepSerial": 105, "Cancel": 9})
	var buf bytes.Buffer
	regs := compareSnapshots(oldSnap, newSnap, 0.10, 10, true, &buf)
	if len(regs) != 1 || regs[0] != "EventQueue" {
		t.Fatalf("regressions = %v, want [EventQueue] (+20%% > 10%%; +5%% and -10%% pass)", regs)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("delta table missing REGRESSION marker:\n%s", buf.String())
	}
}

// TestCompareNoiseFloor pins the absolute floor on the ns/op gate: a large
// relative swing on a single-digit-ns benchmark is timer jitter and must not
// fail the gate, while a genuine multiple-of-the-floor regression must.
func TestCompareNoiseFloor(t *testing.T) {
	oldSnap := snapWith(map[string]float64{"Cancel": 5})
	newSnap := snapWith(map[string]float64{"Cancel": 9}) // +80%, but only 4 ns
	if regs := compareSnapshots(oldSnap, newSnap, 0.10, 10, true, &bytes.Buffer{}); len(regs) != 0 {
		t.Fatalf("sub-floor delta flagged %v, want none", regs)
	}
	newSnap = snapWith(map[string]float64{"Cancel": 25}) // 20 ns over the floor
	if regs := compareSnapshots(oldSnap, newSnap, 0.10, 10, true, &bytes.Buffer{}); len(regs) != 1 {
		t.Fatalf("5 -> 25 ns/op regression not flagged, got %v", regs)
	}
}

func TestCompareSnapshotsMissingTier1IsRegression(t *testing.T) {
	oldSnap := snapWith(map[string]float64{"RunDense": 30})
	newSnap := snapWith(map[string]float64{})
	regs := compareSnapshots(oldSnap, newSnap, 0.10, 10, true, &bytes.Buffer{})
	if len(regs) != 1 || !strings.Contains(regs[0], "RunDense") {
		t.Fatalf("regressions = %v, want RunDense flagged as missing", regs)
	}
}

// TestCompareCrossEnvGatesOnAllocs pins the cross-machine behaviour: when
// the baseline snapshot comes from different hardware, ns/op deltas are
// advisory and the gate enforces allocs/op instead.
func TestCompareCrossEnvGatesOnAllocs(t *testing.T) {
	oldSnap := snapshot{Benchmarks: map[string]metrics{
		"SweepSerial": {NsPerOp: 100, AllocsPerOp: 50},
		"RunDense":    {NsPerOp: 30, AllocsPerOp: 0},
	}}
	// 3x slower wall clock (different machine) but identical allocs: pass.
	newSnap := snapshot{Benchmarks: map[string]metrics{
		"SweepSerial": {NsPerOp: 300, AllocsPerOp: 50},
		"RunDense":    {NsPerOp: 90, AllocsPerOp: 0},
	}}
	if regs := compareSnapshots(oldSnap, newSnap, 0.10, 10, false, &bytes.Buffer{}); len(regs) != 0 {
		t.Fatalf("cross-env with stable allocs flagged %v, want none", regs)
	}
	// An allocs/op regression, or a zero-alloc benchmark starting to
	// allocate, must fail even cross-env.
	newSnap.Benchmarks["SweepSerial"] = metrics{NsPerOp: 90, AllocsPerOp: 60}
	newSnap.Benchmarks["RunDense"] = metrics{NsPerOp: 20, AllocsPerOp: 1}
	regs := compareSnapshots(oldSnap, newSnap, 0.10, 10, false, &bytes.Buffer{})
	if len(regs) != 2 {
		t.Fatalf("cross-env alloc regressions = %v, want both flagged", regs)
	}
}

// TestCompareCommandMissingBaselineBench pins the end-to-end contract: a
// tier-1 benchmark that exists in the baseline but not in the candidate
// must fail `benchsnap compare` (the gate must not pass because a
// benchmark was deleted), and only the explicit -allow-missing escape
// hatch downgrades it to a warning.
func TestCompareCommandMissingBaselineBench(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_0001.json")
	newPath := filepath.Join(dir, "candidate.json")
	if err := writeSnapshot(oldPath, snapWith(map[string]float64{"RunDense": 30, "Cancel": 5})); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(newPath, snapWith(map[string]float64{"Cancel": 5})); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"compare", "-old", oldPath, "-new", newPath}, &out, &errOut); code != 1 {
		t.Fatalf("compare exit = %d, want 1 when a tier-1 benchmark is missing\n%s%s",
			code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "RunDense (missing)") {
		t.Fatalf("failure does not name the missing benchmark:\n%s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"compare", "-old", oldPath, "-new", newPath, "-allow-missing"}, &out, &errOut); code != 0 {
		t.Fatalf("compare -allow-missing exit = %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "WARNING: RunDense (missing)") {
		t.Fatalf("-allow-missing did not warn about the skipped benchmark:\n%s", out.String())
	}
}

// TestCompareAllowMissingDoesNotMaskRegressions: the escape hatch only
// forgives missing benchmarks, never slow ones.
func TestCompareAllowMissingDoesNotMaskRegressions(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_0001.json")
	newPath := filepath.Join(dir, "candidate.json")
	if err := writeSnapshot(oldPath, snapWith(map[string]float64{"RunDense": 30, "EventQueue": 1000})); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(newPath, snapWith(map[string]float64{"EventQueue": 2000})); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"compare", "-old", oldPath, "-new", newPath, "-allow-missing"}, &out, &errOut); code != 1 {
		t.Fatalf("compare exit = %d, want 1: -allow-missing must not mask the EventQueue regression\n%s%s",
			code, out.String(), errOut.String())
	}
	if strings.Contains(errOut.String(), "missing") {
		t.Fatalf("missing benchmark still in the failure list:\n%s", errOut.String())
	}
}

func TestCompareCommandAcceptOverride(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_0001.json")
	newPath := filepath.Join(dir, "candidate.json")
	if err := writeSnapshot(oldPath, snapWith(map[string]float64{"RunDense": 30})); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(newPath, snapWith(map[string]float64{"RunDense": 60})); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"compare", "-old", oldPath, "-new", newPath}, &out, &errOut); code != 1 {
		t.Fatalf("compare exit = %d, want 1 on a 2x regression\n%s%s", code, out.String(), errOut.String())
	}

	t.Setenv("BENCHGATE_ACCEPT", "intentional trade-off for test")
	out.Reset()
	if code := run([]string{"compare", "-old", oldPath, "-new", newPath}, &out, &errOut); code != 0 {
		t.Fatalf("compare exit = %d with BENCHGATE_ACCEPT set, want 0", code)
	}
	if !strings.Contains(out.String(), "ACCEPTED") {
		t.Fatalf("override run did not report acceptance:\n%s", out.String())
	}
}

func TestSnapshotRoundTripAndLatest(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"BENCH_0002", "BENCH_0010", "BENCH_0006"} {
		snap := snapWith(map[string]float64{"Cancel": 5})
		snap.ID = id
		if err := writeSnapshot(filepath.Join(dir, id+".json"), snap); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_0010.json" {
		t.Fatalf("latest = %s, want BENCH_0010.json", got)
	}
	snap, err := loadSnapshot(got)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "BENCH_0010" || snap.Benchmarks["Cancel"].NsPerOp != 5 {
		t.Fatalf("round-tripped snapshot = %+v", snap)
	}
}

func TestLatestNoSnapshots(t *testing.T) {
	if _, err := latestSnapshot(t.TempDir()); err == nil {
		t.Fatal("latestSnapshot on empty dir should error")
	}
}
