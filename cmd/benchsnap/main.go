// Command benchsnap records and compares normalized benchmark snapshots so
// the simulator's performance trajectory is a tracked, enforced property of
// the repository instead of a claim in a commit message.
//
// Subcommands:
//
//	benchsnap run -out BENCH_0007.json [-count 3] [-notes "..."]
//	    Runs the tier-1 benchmarks (sim microbenchmarks + end-to-end
//	    sweeps) count times each, keeps the minimum ns/op per benchmark
//	    (the least-noise estimator on a shared machine), and writes a
//	    normalized JSON snapshot with environment metadata.
//
//	benchsnap compare -old BENCH_0006.json -new fresh.json [-threshold 0.10] [-floor 10] [-allow-missing]
//	    Compares two snapshots and exits non-zero if any tier-1 benchmark
//	    regressed by more than threshold in ns/op. Relative regressions
//	    whose absolute delta is under floor ns/op are timer jitter on a
//	    nanoseconds-per-op benchmark, not code, and are not gated. A tier-1
//	    benchmark present in the baseline but missing from the candidate
//	    fails the gate (deleting a benchmark must not pass it); the
//	    -allow-missing flag downgrades exactly those to warnings, for
//	    intentionally renamed or retired benchmarks. Setting the
//	    BENCHGATE_ACCEPT environment variable to a non-empty reason
//	    downgrades all regressions to warnings — the documented override
//	    for intentional performance trade-offs.
//
//	benchsnap latest [-dir .]
//	    Prints the path of the highest-numbered BENCH_*.json snapshot, for
//	    CI to feed into compare.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/journal"
)

// tier1 lists the benchmarks the regression gate enforces. Everything else
// that happens to match the bench regexes is recorded but not gated.
var tier1 = []string{
	"EventQueue", "Schedule", "Cancel", "RunDense", "RunSparse",
	"SweepSerial", "SweepParallel", "SimulatedCaptureRun", "PollModeCaptureRun",
}

// benchSet is one `go test -bench` invocation: which package, which
// benchmarks, and how long each iteration set should run. The end-to-end
// sweeps take ~150 ms per op, so they get a fixed small iteration count. The
// microbenchmarks use a time-based benchtime so every sample runs ~0.5 s of
// measured work regardless of per-op cost: a fixed iteration count would
// give a ~5 ns/op benchmark millisecond-long samples, and on a shared host a
// single scheduler preemption then swings the sample tens of percent —
// min-of-count over such samples tracks host noise, not the code.
type benchSet struct {
	pkg   string
	bench string
	time  string
}

var benchSets = []benchSet{
	{pkg: "./internal/sim/", bench: "^(BenchmarkEventQueue|BenchmarkSchedule|BenchmarkCancel|BenchmarkRunDense|BenchmarkRunSparse)$", time: "0.5s"},
	{pkg: ".", bench: "^(BenchmarkSweepSerial|BenchmarkSweepParallel|BenchmarkSimulatedCaptureRun|BenchmarkPollModeCaptureRun)$", time: "3x"},
}

type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type envInfo struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	CPUModel  string `json:"cpu_model,omitempty"`
}

type snapshot struct {
	Schema     string             `json:"schema"`
	ID         string             `json:"id"`
	CreatedAt  string             `json:"created_at"`
	Env        envInfo            `json:"env"`
	Count      int                `json:"count"`
	Notes      string             `json:"notes,omitempty"`
	Benchmarks map[string]metrics `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: benchsnap <run|compare|latest> [flags]")
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "latest":
		return cmdLatest(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "benchsnap: unknown subcommand %q\n", args[0])
		return 2
	}
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output snapshot path (required)")
	count := fs.Int("count", 3, "repetitions per benchmark; minimum ns/op is kept")
	notes := fs.String("notes", "", "free-form provenance note stored in the snapshot")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "benchsnap run: -out is required")
		return 2
	}

	samples := map[string][]metrics{}
	for _, set := range benchSets {
		outBytes, err := runGoBench(set, *count)
		fmt.Fprintf(stdout, "# go test -bench %s %s (count=%d)\n", set.bench, set.pkg, *count)
		parseBenchOutput(string(outBytes), samples)
		if err != nil {
			fmt.Fprintf(stderr, "benchsnap run: go test %s failed: %v\n%s", set.pkg, err, outBytes)
			return 1
		}
	}
	if len(samples) == 0 {
		fmt.Fprintln(stderr, "benchsnap run: no benchmark results parsed")
		return 1
	}

	snap := snapshot{
		Schema:     "benchsnap/v1",
		ID:         strings.TrimSuffix(filepath.Base(*out), ".json"),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Env:        collectEnv(),
		Count:      *count,
		Notes:      *notes,
		Benchmarks: aggregateMin(samples),
	}
	if err := writeSnapshot(*out, snap); err != nil {
		fmt.Fprintf(stderr, "benchsnap run: %v\n", err)
		return 1
	}
	for _, name := range sortedNames(snap.Benchmarks) {
		m := snap.Benchmarks[name]
		fmt.Fprintf(stdout, "%-22s %12.1f ns/op %10.0f B/op %8.0f allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return 0
}

// runGoBench shells out to go test for one benchmark set.
func runGoBench(set benchSet, count int) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", set.bench, "-benchtime", set.time,
		"-count", strconv.Itoa(count), "-benchmem", set.pkg)
	return cmd.CombinedOutput()
}

// parseBenchOutput extracts benchmark result lines from `go test -benchmem`
// output into samples, keyed by normalized benchmark name (Benchmark prefix
// and -GOMAXPROCS suffix stripped).
func parseBenchOutput(out string, samples map[string][]metrics) {
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := normalizeName(f[0])
		var m metrics
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				m.NsPerOp, ok = v, true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if ok {
			samples[name] = append(samples[name], m)
		}
	}
}

func normalizeName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}

// aggregateMin keeps the sample with the minimum ns/op for each benchmark:
// on a shared, noisy machine the minimum is the best estimate of the code's
// intrinsic cost (noise only ever adds time).
func aggregateMin(samples map[string][]metrics) map[string]metrics {
	agg := make(map[string]metrics, len(samples))
	for name, runs := range samples {
		best := runs[0]
		for _, m := range runs[1:] {
			if m.NsPerOp < best.NsPerOp {
				best = m
			}
		}
		agg[name] = best
	}
	return agg
}

func collectEnv() envInfo {
	env := envInfo{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, val, found := strings.Cut(line, ":"); found &&
				strings.TrimSpace(name) == "model name" {
				env.CPUModel = strings.TrimSpace(val)
				break
			}
		}
	}
	return env
}

func writeSnapshot(path string, snap snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return journal.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

func loadSnapshot(path string) (snapshot, error) {
	var snap snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	oldPath := fs.String("old", "", "baseline snapshot (required)")
	newPath := fs.String("new", "", "candidate snapshot (required)")
	threshold := fs.Float64("threshold", 0.10, "max tolerated ns/op regression (fraction)")
	floor := fs.Float64("floor", 10, "ns/op noise floor: regressions with an absolute delta below this are not gated")
	allowMissing := fs.Bool("allow-missing", false, "downgrade tier-1 benchmarks missing from the candidate to warnings instead of failing (escape hatch for intentionally renamed or retired benchmarks)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "benchsnap compare: -old and -new are required")
		return 2
	}
	oldSnap, err := loadSnapshot(*oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap compare: %v\n", err)
		return 1
	}
	newSnap, err := loadSnapshot(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap compare: %v\n", err)
		return 1
	}
	// ns/op is only comparable between runs on the same machine. When the
	// baseline snapshot comes from different hardware, the wall-clock gate
	// would measure the hardware, not the code — so the gate falls back to
	// allocs/op, which is deterministic across machines, and prints ns/op
	// deltas as advisory.
	sameEnv := oldSnap.Env.CPUModel == newSnap.Env.CPUModel &&
		oldSnap.Env.NumCPU == newSnap.Env.NumCPU
	if !sameEnv {
		fmt.Fprintf(stdout, "bench-gate: baseline env %q (%d CPUs) differs from %q (%d CPUs); gating on allocs/op, ns/op is advisory\n",
			oldSnap.Env.CPUModel, oldSnap.Env.NumCPU, newSnap.Env.CPUModel, newSnap.Env.NumCPU)
	}
	regressions := compareSnapshots(oldSnap, newSnap, *threshold, *floor, sameEnv, stdout)
	if *allowMissing {
		kept := regressions[:0]
		for _, r := range regressions {
			if strings.HasSuffix(r, " (missing)") {
				fmt.Fprintf(stdout, "bench-gate: WARNING: %s allowed via -allow-missing\n", r)
				continue
			}
			kept = append(kept, r)
		}
		regressions = kept
	}
	if len(regressions) == 0 {
		fmt.Fprintf(stdout, "bench-gate: OK (threshold %.0f%%, floor %.0f ns/op)\n", *threshold*100, *floor)
		return 0
	}
	if reason := os.Getenv("BENCHGATE_ACCEPT"); reason != "" {
		fmt.Fprintf(stdout, "bench-gate: %d regression(s) ACCEPTED via BENCHGATE_ACCEPT=%q\n",
			len(regressions), reason)
		return 0
	}
	fmt.Fprintf(stderr, "bench-gate: FAIL: %s regressed more than %.0f%%\n",
		strings.Join(regressions, ", "), *threshold*100)
	fmt.Fprintln(stderr, "bench-gate: set BENCHGATE_ACCEPT=<reason> to accept an intentional trade-off")
	return 1
}

// compareSnapshots prints a delta table for every tier-1 benchmark and
// returns the names that regressed beyond threshold. With gateNs the gate
// is on ns/op; otherwise (cross-machine baseline) it is on allocs/op. On
// the ns/op gate, a relative regression whose absolute delta is under floor
// ns/op is ignored: for single-digit-ns benchmarks like Cancel, a couple of
// nanoseconds of movement is timer and scheduling jitter, and a percentage
// threshold alone would make the gate flaky. A tier-1 benchmark present in
// the baseline but missing from the candidate counts as a regression (the
// gate must not pass because a benchmark was deleted).
func compareSnapshots(oldSnap, newSnap snapshot, threshold, floor float64, gateNs bool, w io.Writer) []string {
	var regressions []string
	for _, name := range tier1 {
		oldM, inOld := oldSnap.Benchmarks[name]
		newM, inNew := newSnap.Benchmarks[name]
		switch {
		case !inOld && !inNew:
			continue
		case !inOld:
			fmt.Fprintf(w, "%-22s %12s -> %10.1f ns/op (new)\n", name, "-", newM.NsPerOp)
			continue
		case !inNew:
			fmt.Fprintf(w, "%-22s %12.1f -> %10s ns/op (MISSING)\n", name, oldM.NsPerOp, "-")
			regressions = append(regressions, name+" (missing)")
			continue
		}
		nsDelta := (newM.NsPerOp - oldM.NsPerOp) / oldM.NsPerOp
		var gated float64
		if gateNs {
			if newM.NsPerOp-oldM.NsPerOp > floor {
				gated = nsDelta
			}
		} else {
			if oldM.AllocsPerOp > 0 {
				gated = (newM.AllocsPerOp - oldM.AllocsPerOp) / oldM.AllocsPerOp
			} else if newM.AllocsPerOp > 0 {
				gated = threshold + 1 // zero-alloc benchmark started allocating
			}
		}
		mark := ""
		if gated > threshold {
			mark = "  REGRESSION"
			regressions = append(regressions, name)
		}
		fmt.Fprintf(w, "%-22s %12.1f -> %10.1f ns/op  %+6.1f%%  %6.0f -> %6.0f allocs/op%s\n",
			name, oldM.NsPerOp, newM.NsPerOp, nsDelta*100, oldM.AllocsPerOp, newM.AllocsPerOp, mark)
	}
	return regressions
}

func cmdLatest(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("latest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory holding BENCH_*.json snapshots")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path, err := latestSnapshot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap latest: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, path)
	return 0
}

// latestSnapshot returns the lexically greatest BENCH_*.json in dir; the
// zero-padded numbering scheme makes that the newest snapshot.
func latestSnapshot(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json snapshots in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func sortedNames(m map[string]metrics) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
