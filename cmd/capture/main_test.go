package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func writeTrace(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "in.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Synthesize(f, n, 3, 0); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCaptureRoundTrip(t *testing.T) {
	in := writeTrace(t, 300)
	out := filepath.Join(filepath.Dir(in), "out.pcap")
	if err := run(in, "udp", 2, 1, out, 76, 0, false, false, 0); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	// 300 × (16-byte record header + ≤76 bytes) + 24-byte file header.
	if st.Size() <= 24 || st.Size() > 24+300*(16+76) {
		t.Fatalf("output trace size = %d", st.Size())
	}
}

func TestCaptureRejectsBadFilter(t *testing.T) {
	in := writeTrace(t, 10)
	if err := run(in, "syntactically (wrong", 0, 0, "", 0, 0, false, false, 0); err == nil {
		t.Fatal("bad filter accepted")
	}
}

func TestCaptureMissingFile(t *testing.T) {
	if err := run("/nonexistent/file.pcap", "", 0, 0, "", 0, 0, false, false, 0); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestCaptureFlows(t *testing.T) {
	in := writeTrace(t, 100)
	// Flow mode exercises the table end to end; just assert no error.
	if err := run(in, "", 0, 0, "", 0, 0, false, false, 5); err != nil {
		t.Fatal(err)
	}
}
