// capture is the offline capturing application: the role createDist plays
// in the measurements (§A.1), over pcap files. It applies a BPF filter,
// optional per-packet load (-c memcpys, -z real zlib compression), can
// write a (truncated) trace (-t / -tsl), and reports pcap-style statistics
// plus the observed data rate.
//
//	capture -r trace.pcap -f "not tcp" -z 3 -tsl 76 -t headers.pcap -v
package main

import (
	"compress/flate"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/flows"
)

func main() {
	var (
		inFile  = flag.String("r", "", "pcap file to read (required)")
		filt    = flag.String("f", "", "capture filter (tcpdump syntax)")
		copies  = flag.Int("c", 0, "additional memcpy operations per packet")
		zlevel  = flag.Int("z", 0, "compress every packet with this zlib level (1-9)")
		outFile = flag.String("t", "", "write captured packets to this pcap file")
		tsl     = flag.Int("tsl", 0, "write only the first N bytes of every packet")
		snaplen = flag.Int("sl", 0, "capture snap length (default: file snaplen)")
		verbose = flag.Bool("v", false, "verbose statistics on standard error")
		print_  = flag.Bool("print", false, "print a tcpdump-style line per packet")
		nflows  = flag.Int("flows", 0, "track flows and print the top N by bytes")
	)
	flag.Parse()
	if *inFile == "" {
		fmt.Fprintln(os.Stderr, "capture: -r <file.pcap> is required")
		os.Exit(2)
	}
	if err := run(*inFile, *filt, *copies, *zlevel, *outFile, *tsl, *snaplen, *verbose, *print_, *nflows); err != nil {
		fmt.Fprintln(os.Stderr, "capture:", err)
		os.Exit(1)
	}
}

func run(inFile, filt string, copies, zlevel int, outFile string, tsl, snaplen int, verbose, printLines bool, nflows int) error {
	var flowTable *flows.Table
	if nflows > 0 {
		flowTable = flows.New(true)
	}
	f, err := os.Open(inFile)
	if err != nil {
		return err
	}
	defer f.Close()
	h, err := repro.OpenOffline(f)
	if err != nil {
		return err
	}
	if filt != "" {
		if err := h.SetFilter(filt); err != nil {
			return err
		}
	}

	var dump *repro.DumpWriter
	if outFile != "" {
		out, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer out.Close()
		sl := uint32(h.Snaplen())
		if tsl > 0 {
			sl = uint32(tsl)
		}
		dump = repro.NewDumpWriter(out, sl)
	}

	// Real per-packet load, like the thesis's -c and -z options: memcpy via
	// copy(), compression via compress/flate into a discard writer
	// (gzopen("/dev/null") in the original).
	var scratch [65536]byte
	var fw *flate.Writer
	if zlevel > 0 {
		fw, err = flate.NewWriter(io.Discard, zlevel)
		if err != nil {
			return err
		}
	}

	var packets, bytes uint64
	var firstTS, lastTS int64
	for {
		info, data, err := h.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if snaplen > 0 && len(data) > snaplen {
			data = data[:snaplen]
		}
		for i := 0; i < copies; i++ {
			copy(scratch[:], data)
		}
		if fw != nil {
			if _, err := fw.Write(data); err != nil {
				return err
			}
		}
		if dump != nil {
			if err := dump.WritePacket(info.Timestamp, data, info.OrigLen); err != nil {
				return err
			}
		}
		if printLines {
			fmt.Println(repro.FormatPacket(info.Timestamp, data))
		}
		if flowTable != nil {
			flowTable.Observe(info.Timestamp, data)
		}
		if packets == 0 {
			firstTS = info.Timestamp.UnixNano()
		}
		lastTS = info.Timestamp.UnixNano()
		packets++
		bytes += uint64(info.OrigLen)
	}
	if fw != nil {
		if err := fw.Close(); err != nil {
			return err
		}
	}
	if dump != nil {
		if err := dump.Flush(); err != nil {
			return err
		}
	}

	if flowTable != nil {
		fmt.Print(flowTable.Report(nflows))
	}
	st := h.Stats()
	fmt.Printf("%d packets captured, %d rejected by filter\n", st.Received, st.Filtered)
	if verbose {
		span := float64(lastTS-firstTS) / 1e9
		fmt.Fprintf(os.Stderr, "capture: %d bytes on the wire", bytes)
		if span > 0 {
			fmt.Fprintf(os.Stderr, ", %.3f s span, %.1f Mbit/s, %.1f kpps",
				span, float64(bytes)*8/span/1e6, float64(packets)/span/1e3)
		}
		fmt.Fprintln(os.Stderr)
	}
	return nil
}
