// cpusage is the profiling tool of §A.3: it samples the CPU state counters
// of a system every half second and prints per-state percentages plus a
// Min/Max/Avg summary. Since the 2005 testbed is simulated, cpusage runs a
// capture workload on one of the four systems and samples the simulated
// machine — flags select the scenario.
//
//	cpusage -system moorhen -rate 800 -o > moorhen.usage.out
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/cpuprof"
	"repro/internal/sim"
)

func main() {
	var (
		system  = flag.String("system", "moorhen", "system under test: swan|snipe|moorhen|flamingo|heron|osprey|kite")
		rate    = flag.Float64("rate", 800, "data rate in Mbit/s")
		packets = flag.Int("packets", 100_000, "packets per run")
		ncpu    = flag.Int("cpus", 0, "number of CPUs (1 = no SMP; 0 = the system's default: 2 for the 2005 hosts, 8 for the modern ones)")
		bigBuf  = flag.Bool("bigbuf", true, "use the increased buffer sizes of §6.3.1")
		machine = flag.Bool("o", false, "machine-readable output (colon separated)")
		limit   = flag.Float64("l", 0, "record averages only while idle is below this limit")
		avgAll  = flag.Bool("a", false, "build the average over the whole time (same as -l 100)")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*system, *rate, *packets, *ncpu, *bigBuf, *machine, *limit, *avgAll, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "cpusage:", err)
		os.Exit(1)
	}
}

func run(system string, rate float64, packets, ncpu int, bigBuf, machine bool, limit float64, avgAll bool, seed uint64) error {
	var cfg capture.Config
	switch strings.ToLower(system) {
	case "swan":
		cfg = core.Swan()
	case "snipe":
		cfg = core.Snipe()
	case "moorhen":
		cfg = core.Moorhen()
	case "flamingo":
		cfg = core.Flamingo()
	case "heron":
		cfg = core.Heron()
	case "osprey":
		cfg = core.Osprey()
	case "kite":
		cfg = core.Kite()
	default:
		return fmt.Errorf("unknown system %q", system)
	}
	if ncpu > 0 {
		cfg.NumCPUs = ncpu
	}
	// The modern systems already default to modern-sized buffers; -bigbuf
	// applies the thesis's §6.3.1 increase to the 2005 stacks only.
	if bigBuf && cfg.Stack == capture.StackLegacy {
		if cfg.OS == capture.Linux {
			cfg.BufferBytes = capture.BigLinuxRcvbuf
		} else {
			cfg.BufferBytes = capture.BigBSDBuffer
		}
	}
	w := core.Workload{Packets: packets, TargetRate: rate * 1e6, Seed: seed}
	if cfg.Stack != capture.StackLegacy {
		// A 2005-class sender cannot source a multi-gigabit sweep.
		w.Flows = 256
		w.LineRate = 100e9
		w.GenCostNS = 20
	}
	sys := capture.NewSystem(core.Prepare(cfg, w))
	// The sampling interval is time-compressed with the run, like every
	// other OS time constant.
	interval := sim.Time(float64(cpuprof.DefaultInterval) * float64(packets) / 1_000_000)
	sp := cpuprof.Attach(sys, interval)
	st := sys.Run(w.Generator())

	if err := cpuprof.Write(os.Stdout, sp.Samples, cfg.OS, machine); err != nil {
		return err
	}

	samples := sp.Samples
	if avgAll {
		limit = 100
	}
	if limit > 0 {
		samples = cpuprof.Trim(samples, limit)
	}
	sum := cpuprof.Summarize(samples)
	names := cpuprof.StateNames(cfg.OS)
	printRow := func(label string, s cpuprof.Sample) {
		fmt.Printf("%-4s", label)
		for i, v := range s.States(cfg.OS) {
			fmt.Printf("  %s %5.1f%%", names[i], v)
		}
		fmt.Println()
	}
	fmt.Println("---")
	printRow("Min", sum.Min)
	printRow("Max", sum.Max)
	printRow("Avg", sum.Avg)
	fmt.Printf("# capture rate %.2f%%, overall CPU %.1f%%\n", st.CaptureRate(), st.CPUUsage())
	return nil
}
