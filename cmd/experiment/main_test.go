package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func runBG(args []string, out, errb *bytes.Buffer) int {
	return run(context.Background(), args, out, errb)
}

// TestRunExitCodes pins the documented exit-code contract of run():
// 0 success, 1 runtime failure, 2 usage error, 3 interrupted.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"list", []string{"-list"}, 0},
		{"no mode", nil, 2},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"unknown id", []string{"-id", "nope"}, 1},
		{"json without series", []string{"-id", "fig4.1", "-json"}, 1},
		{"resume without journal", []string{"-id", "fig4.2", "-resume"}, 2},
		{"resume missing journal", []string{"-id", "fig4.2", "-journal", filepath.Join(t.TempDir(), "void"), "-resume"}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := runBG(c.args, &out, &errb); got != c.code {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", c.args, got, c.code, errb.String())
			}
		})
	}
}

// TestRunRatesValidation pins the -rates contract: every value must be a
// positive, finite Mbit/s number; anything else is a usage error (exit 2)
// with a diagnostic naming the offending value.
func TestRunRatesValidation(t *testing.T) {
	cases := []struct {
		name  string
		rates string
		code  int
	}{
		{"valid", "300,900", 0},
		{"valid with spaces", " 50 , 950 ", 0},
		{"fractional", "0.5,1.5", 0},
		{"empty element", "300,,900", 2},
		{"non-numeric", "abc", 2},
		{"zero", "0", 2},
		{"negative", "-100", 2},
		{"NaN", "NaN", 2},
		{"plus inf", "Inf", 2},
		{"minus inf", "-Inf", 2},
		{"exponent inf", "1e999", 2},
		{"trailing junk", "300x", 2},
		{"valid then bad", "300,0,900", 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			args := []string{"-id", "fig6.2-smp", "-packets", "500", "-rates", c.rates}
			got := runBG(args, &out, &errb)
			if got != c.code {
				t.Fatalf("-rates %q: exit %d, want %d\nstderr: %s", c.rates, got, c.code, errb.String())
			}
			if c.code == 2 && !strings.Contains(errb.String(), "bad rate") {
				t.Fatalf("-rates %q: missing diagnostic:\n%s", c.rates, errb.String())
			}
		})
	}
}

// TestRunFlushesBufferedOutput: the table must reach the writer even
// though stdout is buffered — the deferred flush is the point of the
// single-exit-point design.
func TestRunFlushesBufferedOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := runBG([]string{"-id", "fig4.2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "top-20 packet sizes") {
		t.Fatalf("table not flushed to stdout:\n%s", out.String())
	}
}

// TestRunUsageDocumentsExitCodes: -h must describe the exit codes.
func TestRunUsageDocumentsExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runBG([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("-h exit = %d, want 2", code)
	}
	usage := errb.String()
	for _, want := range []string{
		"Exit codes:", "0  success", "1  runtime failure", "2  usage error",
		"3  interrupted", "-chaos", "-journal", "-resume",
	} {
		if !strings.Contains(usage, want) {
			t.Fatalf("usage missing %q:\n%s", want, usage)
		}
	}
}

// TestRunChaosFlag: -chaos threads through to the experiments layer and
// surfaces the bookkeeping table.
func TestRunChaosFlag(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-id", "fig6.2-nosmp", "-packets", "2000", "-rates", "300,700", "-chaos", "42"}
	if code := runBG(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "# chaos: attempts / quarantined / rejected repetitions per point") {
		t.Fatalf("chaos table missing:\n%s", out.String())
	}
}

// TestRunInterrupted: a cancelled context exits with code 3, emits no
// partial tables, and points at -resume when a journal is in play.
func TestRunInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	args := []string{"-id", "fig6.2-smp", "-packets", "2000", "-rates", "300,900"}
	if code := run(ctx, args, &out, &errb); code != exitInterrupted {
		t.Fatalf("cancelled run exit = %d, want %d", code, exitInterrupted)
	}
	if out.Len() != 0 {
		t.Fatalf("interrupted run emitted partial output:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Fatalf("no interrupt notice on stderr:\n%s", errb.String())
	}

	dir := t.TempDir()
	out.Reset()
	errb.Reset()
	if code := run(ctx, append(args, "-journal", dir), &out, &errb); code != exitInterrupted {
		t.Fatalf("cancelled journaled run exit = %d, want %d", code, exitInterrupted)
	}
	if !strings.Contains(errb.String(), "-resume") {
		t.Fatalf("interrupt notice does not point at -resume:\n%s", errb.String())
	}
}

// TestRunJournalResumeByteIdentical is the CLI-level kill-and-resume
// check: a journaled campaign whose journal is torn mid-file (the crash
// shape) resumes to output byte-identical to a clean, unjournaled run —
// with and without chaos.
func TestRunJournalResumeByteIdentical(t *testing.T) {
	for _, chaos := range []string{"0", "7"} {
		args := []string{"-id", "fig6.2-smp", "-packets", "2000", "-reps", "2",
			"-rates", "300,900", "-parallel", "2", "-chaos", chaos}

		var clean, errb bytes.Buffer
		if code := runBG(args, &clean, &errb); code != 0 {
			t.Fatalf("clean run exit %d: %s", code, errb.String())
		}

		dir := t.TempDir()
		var journaled bytes.Buffer
		errb.Reset()
		if code := runBG(append(args, "-journal", dir), &journaled, &errb); code != 0 {
			t.Fatalf("journaled run exit %d: %s", code, errb.String())
		}
		if journaled.String() != clean.String() {
			t.Fatalf("chaos=%s: journaled output differs from clean output", chaos)
		}

		// Crash simulation: tear the journal mid-file.
		path := filepath.Join(dir, "campaign.journal")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}

		var resumed bytes.Buffer
		errb.Reset()
		if code := runBG(append(args, "-journal", dir, "-resume"), &resumed, &errb); code != 0 {
			t.Fatalf("resumed run exit %d: %s", code, errb.String())
		}
		if !strings.Contains(errb.String(), "resuming campaign") {
			t.Fatalf("no resume notice:\n%s", errb.String())
		}
		if !strings.Contains(errb.String(), "torn tail") {
			t.Fatalf("torn tail not reported:\n%s", errb.String())
		}
		if resumed.String() != clean.String() {
			t.Fatalf("chaos=%s: resumed output not byte-identical to clean run", chaos)
		}
	}
}

// TestRunJSONDeterministicAcrossParallelism: the streaming -json writer
// rides the head-of-line-sequenced EventPoint feed, so its NDJSON output
// is byte-identical for any -parallel value — and arrives in the
// canonical x-major order.
func TestRunJSONDeterministicAcrossParallelism(t *testing.T) {
	args := func(workers int) []string {
		return []string{"-id", "fig6.2-smp", "-packets", "2000", "-reps", "2",
			"-rates", "200,600,900", "-parallel", fmt.Sprint(workers), "-json"}
	}
	var serial, par, errb bytes.Buffer
	if code := runBG(args(0), &serial, &errb); code != 0 {
		t.Fatalf("serial exit %d: %s", code, errb.String())
	}
	if code := runBG(args(4), &par, &errb); code != 0 {
		t.Fatalf("parallel exit %d: %s", code, errb.String())
	}
	if serial.String() != par.String() {
		t.Fatalf("-json output differs across -parallel:\n--- serial\n%s\n--- parallel\n%s",
			serial.String(), par.String())
	}
	// Every line is a record; the stream is x-major (all systems at
	// x=200, then 600, then 900).
	var xs []float64
	for _, line := range strings.Split(strings.TrimSpace(serial.String()), "\n") {
		var rec struct {
			X float64 `json:"x"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		xs = append(xs, rec.X)
	}
	nsys := len(xs) / 3
	if nsys == 0 || len(xs) != nsys*3 {
		t.Fatalf("unexpected record count %d", len(xs))
	}
	for i, x := range xs {
		want := []float64{200, 600, 900}[i/nsys]
		if x != want {
			t.Fatalf("record %d has x=%v, want %v: stream not x-major", i, x, want)
		}
	}
}

// syncBuffer is a Writer safe to read while another goroutine writes —
// run() writes stderr from the serve goroutine while the test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// serveURL extracts the monitoring base URL from run's stderr notice,
// polling until the listener is up.
func serveURL(t *testing.T, errb *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := errb.String()
		if i := strings.Index(s, "monitoring at "); i >= 0 {
			rest := s[i+len("monitoring at "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return strings.TrimSpace(rest[:j])
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no monitoring address on stderr:\n%s", errb.String())
	return ""
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestRunServeLifecycle: -serve answers the API while and after a run,
// keeps the process alive once the run completes, and exits 3 on the
// first signal (context cancellation).
func TestRunServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	var errb syncBuffer
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, []string{"-id", "fig6.2-smp", "-packets", "2000",
			"-rates", "300", "-serve", "127.0.0.1:0"}, &out, &errb)
	}()
	base := serveURL(t, &errb)

	if st, body := httpGet(t, base+"/healthz"); st != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", st, body)
	}
	// Wait for the run to finish; the process keeps serving.
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(errb.String(), "still serving") {
		if time.Now().After(deadline) {
			t.Fatalf("run did not reach the serving wait:\n%s", errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, body := httpGet(t, base+"/api/campaigns")
	if !strings.Contains(body, `"id": "live"`) || !strings.Contains(body, `"finished": true`) ||
		!strings.Contains(body, `"fingerprint"`) {
		t.Fatalf("campaign listing after run:\n%s", body)
	}
	if _, m := httpGet(t, base+"/metrics"); !strings.Contains(m, "repro_points_completed_total") ||
		strings.Contains(m, "repro_points_completed_total 0") {
		t.Fatalf("metrics after run:\n%s", m)
	}
	if !strings.Contains(out.String(), "====") {
		t.Fatalf("table not flushed before the serving wait:\n%s", out.String())
	}

	cancel()
	select {
	case c := <-code:
		if c != exitInterrupted {
			t.Fatalf("serve exit = %d, want %d", c, exitInterrupted)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
}

// TestRunServeStandalone: -serve with no run mode serves a journal
// directory read-only (no truncation of the campaign journal!) until
// interrupted.
func TestRunServeStandalone(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	var errb syncBuffer
	args := []string{"-id", "fig6.2-smp", "-packets", "2000", "-rates", "300", "-journal", dir}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("recording run exit %d: %s", code, errb.String())
	}
	journalPath := filepath.Join(dir, "campaign.journal")
	before, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var serveErr syncBuffer
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, []string{"-serve", "127.0.0.1:0", "-journal", dir}, io.Discard, &serveErr)
	}()
	base := serveURL(t, &serveErr)

	id := filepath.Base(dir)
	_, body := httpGet(t, base+"/api/campaigns")
	if !strings.Contains(body, `"id": "`+id+`"`) || !strings.Contains(body, `"source": "journal"`) {
		t.Fatalf("standalone campaign listing:\n%s", body)
	}
	if st, cells := httpGet(t, base+"/api/campaigns/"+id+"/cells"); st != 200 || !strings.Contains(cells, `"system"`) {
		t.Fatalf("standalone cells = %d:\n%s", st, cells)
	}

	cancel()
	select {
	case c := <-code:
		if c != exitInterrupted {
			t.Fatalf("standalone serve exit = %d, want %d", c, exitInterrupted)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("standalone serve did not exit after cancellation")
	}
	after, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("standalone -serve modified the campaign journal")
	}
}

// TestRunGnuplotAtomic: -gp writes the artifacts atomically and leaves no
// temp files behind.
func TestRunGnuplotAtomic(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	args := []string{"-id", "fig6.2-smp", "-packets", "1000", "-rates", "300", "-gp", dir}
	if code := runBG(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("want exactly .dat and .gp, got %v", names)
	}
	for _, want := range []string{"fig6.2-smp.dat", "fig6.2-smp.gp"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing artifact %s (have %v)", want, names)
		}
	}
}

// TestRunProfilingFlags pins the -cpuprofile/-memprofile contract: both
// artifacts exist after the run, are non-empty, parse as gzipped pprof
// protos, and no temp file is left behind (the write is temp + rename).
func TestRunProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	args := []string{"-id", "fig6.2-smp", "-packets", "2000", "-cpuprofile", cpu, "-memprofile", mem}
	if code := runBG(args, &out, &errb); code != exitOK {
		t.Fatalf("run(%v) = %d, want 0\nstderr: %s", args, code, errb.String())
	}
	for _, path := range []string{cpu, mem} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s: not a gzipped pprof profile (got % x...)", path, data[:min(4, len(data))])
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("profile dir has %d entries, want 2 (no temp files left behind): %v", len(entries), entries)
	}
}

// TestRunDistributedFlagConflicts pins the CLI surface of distributed
// mode: every nonsensical flag combination is a usage error (exit 2)
// with a diagnostic naming the conflict, before anything runs.
func TestRunDistributedFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"worker with id", []string{"-worker", "127.0.0.1:1", "-id", "fig6.2-smp"},
			"-worker is exclusive with -list/-all/-id"},
		{"worker with journal", []string{"-worker", "127.0.0.1:1", "-journal", dir},
			"the coordinator owns the -journal"},
		{"worker with serve", []string{"-worker", "127.0.0.1:1", "-serve", "127.0.0.1:0"},
			"-worker cannot also serve"},
		{"worker with coordinator", []string{"-worker", "127.0.0.1:1", "-coordinator", "127.0.0.1:0"},
			"-worker cannot also serve"},
		{"worker with json", []string{"-worker", "127.0.0.1:1", "-json"},
			"-worker produces no output"},
		{"workers without coordinator", []string{"-id", "fig6.2-smp", "-workers", "2"},
			"-workers requires -coordinator"},
		{"coordinator without journal", []string{"-coordinator", "127.0.0.1:0", "-id", "fig6.2-smp"},
			"-coordinator requires -journal"},
		{"coordinator without mode", []string{"-coordinator", "127.0.0.1:0", "-journal", dir},
			"requires a run mode"},
		{"coordinator with chaos", []string{"-coordinator", "127.0.0.1:0", "-journal", dir,
			"-id", "fig6.2-smp", "-chaos", "3"}, "cannot be distributed"},
		{"coordinator with serve", []string{"-coordinator", "127.0.0.1:0", "-journal", dir,
			"-id", "fig6.2-smp", "-serve", "127.0.0.1:0"}, "drop -serve"},
		{"negative workers", []string{"-coordinator", "127.0.0.1:0", "-journal", dir,
			"-id", "fig6.2-smp", "-workers", "-1"}, "-workers must not be negative"},
		{"netchaos without dispatch", []string{"-id", "fig6.2-smp", "-netchaos", "7"},
			"requires -coordinator or -worker"},
		{"diskchaos without journal", []string{"-id", "fig6.2-smp", "-diskchaos", "9"},
			"requires -journal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := runBG(c.args, &out, &errb); got != exitUsage {
				t.Fatalf("run(%v) = %d, want 2\nstderr: %s", c.args, got, errb.String())
			}
			if !strings.Contains(errb.String(), c.want) {
				t.Fatalf("run(%v): diagnostic missing %q:\n%s", c.args, c.want, errb.String())
			}
		})
	}
}

// TestRunDistributedByteIdentical is the CLI-level distribution check:
// a campaign sharded across an in-process worker pool renders output
// byte-identical to the same campaign run undistributed, and a -resume
// of the finished campaign replays every cell without granting leases.
func TestRunDistributedByteIdentical(t *testing.T) {
	args := []string{"-id", "fig6.2-smp", "-packets", "2000", "-reps", "2",
		"-rates", "300,900", "-parallel", "2"}

	var plain, perrb bytes.Buffer
	if code := runBG(args, &plain, &perrb); code != 0 {
		t.Fatalf("plain run exit %d: %s", code, perrb.String())
	}

	dir := t.TempDir()
	dist := append(args, "-journal", dir, "-coordinator", "127.0.0.1:0", "-workers", "2")
	var out bytes.Buffer
	var errb syncBuffer
	if code := run(context.Background(), dist, &out, &errb); code != 0 {
		t.Fatalf("distributed run exit %d: %s", code, errb.String())
	}
	if out.String() != plain.String() {
		t.Fatalf("distributed output differs from undistributed run:\n--- plain\n%s\n--- distributed\n%s",
			plain.String(), out.String())
	}
	if !strings.Contains(errb.String(), "coordinating at ") {
		t.Fatalf("no coordinator notice on stderr:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "leases granted") {
		t.Fatalf("no dispatch summary on stderr:\n%s", errb.String())
	}

	// Resuming the completed campaign replays everything from the journal:
	// same bytes out, zero leases granted.
	out.Reset()
	var rerrb syncBuffer
	if code := run(context.Background(), append(dist, "-resume"), &out, &rerrb); code != 0 {
		t.Fatalf("resumed distributed run exit %d: %s", code, rerrb.String())
	}
	if out.String() != plain.String() {
		t.Fatal("resumed distributed output not byte-identical to undistributed run")
	}
	if !strings.Contains(rerrb.String(), "resuming campaign") {
		t.Fatalf("no resume notice:\n%s", rerrb.String())
	}
	if strings.Contains(rerrb.String(), "leases granted") {
		t.Fatalf("fully replayed campaign still granted leases:\n%s", rerrb.String())
	}
}

// TestRunChaosByteIdentical: a distributed campaign under seeded network
// AND storage fault injection still produces output byte-identical to a
// plain undistributed run. Chaos only delays, drops, re-dispatches, and
// repairs — it never changes a recorded result. The chaos summary line
// must prove faults were actually injected, or the test is vacuous.
func TestRunChaosByteIdentical(t *testing.T) {
	args := []string{"-id", "fig6.2-smp", "-packets", "2000", "-reps", "2",
		"-rates", "300,900", "-parallel", "2"}

	var plain, perrb bytes.Buffer
	if code := runBG(args, &plain, &perrb); code != 0 {
		t.Fatalf("plain run exit %d: %s", code, perrb.String())
	}

	dir := t.TempDir()
	dist := append(args, "-journal", dir, "-coordinator", "127.0.0.1:0",
		"-workers", "3", "-netchaos", "7", "-diskchaos", "8")
	var out bytes.Buffer
	var errb syncBuffer
	if code := run(context.Background(), dist, &out, &errb); code != 0 {
		t.Fatalf("chaos run exit %d: %s", code, errb.String())
	}
	if out.String() != plain.String() {
		t.Fatalf("chaos-run output differs from undistributed run:\n--- plain\n%s\n--- chaos\n%s",
			plain.String(), out.String())
	}
	var netFaults, fsFaults, repairs int
	for _, line := range strings.Split(errb.String(), "\n") {
		if _, rest, ok := strings.Cut(line, "experiment: chaos: "); ok {
			if n, _ := fmt.Sscanf(rest, "%d network faults injected, %d storage faults injected, %d journal appends repaired",
				&netFaults, &fsFaults, &repairs); n == 3 {
				break
			}
		}
	}
	if netFaults == 0 {
		t.Fatalf("seed 7 injected no network faults — the chaos run proved nothing:\n%s", errb.String())
	}
	if fsFaults == 0 {
		t.Fatalf("seed 8 injected no storage faults — the chaos run proved nothing:\n%s", errb.String())
	}

	// The journal a chaos run leaves behind is a healthy campaign: a
	// chaos-free resume replays every cell and emits the same bytes.
	out.Reset()
	resumeArgs := append(args, "-journal", dir, "-resume")
	var rerrb bytes.Buffer
	if code := runBG(resumeArgs, &out, &rerrb); code != 0 {
		t.Fatalf("post-chaos resume exit %d: %s", code, rerrb.String())
	}
	if out.String() != plain.String() {
		t.Fatal("post-chaos resumed output not byte-identical to undistributed run")
	}
}
