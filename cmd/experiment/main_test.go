package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBG(args []string, out, errb *bytes.Buffer) int {
	return run(context.Background(), args, out, errb)
}

// TestRunExitCodes pins the documented exit-code contract of run():
// 0 success, 1 runtime failure, 2 usage error, 3 interrupted.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"list", []string{"-list"}, 0},
		{"no mode", nil, 2},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"unknown id", []string{"-id", "nope"}, 1},
		{"json without series", []string{"-id", "fig4.1", "-json"}, 1},
		{"resume without journal", []string{"-id", "fig4.2", "-resume"}, 2},
		{"resume missing journal", []string{"-id", "fig4.2", "-journal", filepath.Join(t.TempDir(), "void"), "-resume"}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := runBG(c.args, &out, &errb); got != c.code {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", c.args, got, c.code, errb.String())
			}
		})
	}
}

// TestRunRatesValidation pins the -rates contract: every value must be a
// positive, finite Mbit/s number; anything else is a usage error (exit 2)
// with a diagnostic naming the offending value.
func TestRunRatesValidation(t *testing.T) {
	cases := []struct {
		name  string
		rates string
		code  int
	}{
		{"valid", "300,900", 0},
		{"valid with spaces", " 50 , 950 ", 0},
		{"fractional", "0.5,1.5", 0},
		{"empty element", "300,,900", 2},
		{"non-numeric", "abc", 2},
		{"zero", "0", 2},
		{"negative", "-100", 2},
		{"NaN", "NaN", 2},
		{"plus inf", "Inf", 2},
		{"minus inf", "-Inf", 2},
		{"exponent inf", "1e999", 2},
		{"trailing junk", "300x", 2},
		{"valid then bad", "300,0,900", 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			args := []string{"-id", "fig6.2-smp", "-packets", "500", "-rates", c.rates}
			got := runBG(args, &out, &errb)
			if got != c.code {
				t.Fatalf("-rates %q: exit %d, want %d\nstderr: %s", c.rates, got, c.code, errb.String())
			}
			if c.code == 2 && !strings.Contains(errb.String(), "bad rate") {
				t.Fatalf("-rates %q: missing diagnostic:\n%s", c.rates, errb.String())
			}
		})
	}
}

// TestRunFlushesBufferedOutput: the table must reach the writer even
// though stdout is buffered — the deferred flush is the point of the
// single-exit-point design.
func TestRunFlushesBufferedOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := runBG([]string{"-id", "fig4.2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "top-20 packet sizes") {
		t.Fatalf("table not flushed to stdout:\n%s", out.String())
	}
}

// TestRunUsageDocumentsExitCodes: -h must describe the exit codes.
func TestRunUsageDocumentsExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runBG([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("-h exit = %d, want 2", code)
	}
	usage := errb.String()
	for _, want := range []string{
		"Exit codes:", "0  success", "1  runtime failure", "2  usage error",
		"3  interrupted", "-chaos", "-journal", "-resume",
	} {
		if !strings.Contains(usage, want) {
			t.Fatalf("usage missing %q:\n%s", want, usage)
		}
	}
}

// TestRunChaosFlag: -chaos threads through to the experiments layer and
// surfaces the bookkeeping table.
func TestRunChaosFlag(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-id", "fig6.2-nosmp", "-packets", "2000", "-rates", "300,700", "-chaos", "42"}
	if code := runBG(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "# chaos: attempts / quarantined / rejected repetitions per point") {
		t.Fatalf("chaos table missing:\n%s", out.String())
	}
}

// TestRunInterrupted: a cancelled context exits with code 3, emits no
// partial tables, and points at -resume when a journal is in play.
func TestRunInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	args := []string{"-id", "fig6.2-smp", "-packets", "2000", "-rates", "300,900"}
	if code := run(ctx, args, &out, &errb); code != exitInterrupted {
		t.Fatalf("cancelled run exit = %d, want %d", code, exitInterrupted)
	}
	if out.Len() != 0 {
		t.Fatalf("interrupted run emitted partial output:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Fatalf("no interrupt notice on stderr:\n%s", errb.String())
	}

	dir := t.TempDir()
	out.Reset()
	errb.Reset()
	if code := run(ctx, append(args, "-journal", dir), &out, &errb); code != exitInterrupted {
		t.Fatalf("cancelled journaled run exit = %d, want %d", code, exitInterrupted)
	}
	if !strings.Contains(errb.String(), "-resume") {
		t.Fatalf("interrupt notice does not point at -resume:\n%s", errb.String())
	}
}

// TestRunJournalResumeByteIdentical is the CLI-level kill-and-resume
// check: a journaled campaign whose journal is torn mid-file (the crash
// shape) resumes to output byte-identical to a clean, unjournaled run —
// with and without chaos.
func TestRunJournalResumeByteIdentical(t *testing.T) {
	for _, chaos := range []string{"0", "7"} {
		args := []string{"-id", "fig6.2-smp", "-packets", "2000", "-reps", "2",
			"-rates", "300,900", "-parallel", "2", "-chaos", chaos}

		var clean, errb bytes.Buffer
		if code := runBG(args, &clean, &errb); code != 0 {
			t.Fatalf("clean run exit %d: %s", code, errb.String())
		}

		dir := t.TempDir()
		var journaled bytes.Buffer
		errb.Reset()
		if code := runBG(append(args, "-journal", dir), &journaled, &errb); code != 0 {
			t.Fatalf("journaled run exit %d: %s", code, errb.String())
		}
		if journaled.String() != clean.String() {
			t.Fatalf("chaos=%s: journaled output differs from clean output", chaos)
		}

		// Crash simulation: tear the journal mid-file.
		path := filepath.Join(dir, "campaign.journal")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}

		var resumed bytes.Buffer
		errb.Reset()
		if code := runBG(append(args, "-journal", dir, "-resume"), &resumed, &errb); code != 0 {
			t.Fatalf("resumed run exit %d: %s", code, errb.String())
		}
		if !strings.Contains(errb.String(), "resuming campaign") {
			t.Fatalf("no resume notice:\n%s", errb.String())
		}
		if !strings.Contains(errb.String(), "torn tail") {
			t.Fatalf("torn tail not reported:\n%s", errb.String())
		}
		if resumed.String() != clean.String() {
			t.Fatalf("chaos=%s: resumed output not byte-identical to clean run", chaos)
		}
	}
}

// TestRunGnuplotAtomic: -gp writes the artifacts atomically and leaves no
// temp files behind.
func TestRunGnuplotAtomic(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	args := []string{"-id", "fig6.2-smp", "-packets", "1000", "-rates", "300", "-gp", dir}
	if code := runBG(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("want exactly .dat and .gp, got %v", names)
	}
	for _, want := range []string{"fig6.2-smp.dat", "fig6.2-smp.gp"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing artifact %s (have %v)", want, names)
		}
	}
}
