package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunExitCodes pins the documented exit-code contract of run():
// 0 success, 1 runtime failure, 2 usage error.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"list", []string{"-list"}, 0},
		{"no mode", nil, 2},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"bad rate", []string{"-id", "fig4.2", "-rates", "abc"}, 2},
		{"unknown id", []string{"-id", "nope"}, 1},
		{"json without series", []string{"-id", "fig4.1", "-json"}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(c.args, &out, &errb); got != c.code {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", c.args, got, c.code, errb.String())
			}
		})
	}
}

// TestRunFlushesBufferedOutput: the table must reach the writer even
// though stdout is buffered — the deferred flush is the point of the
// single-exit-point design.
func TestRunFlushesBufferedOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-id", "fig4.2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "top-20 packet sizes") {
		t.Fatalf("table not flushed to stdout:\n%s", out.String())
	}
}

// TestRunUsageDocumentsExitCodes: -h must describe the exit codes.
func TestRunUsageDocumentsExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("-h exit = %d, want 2", code)
	}
	usage := errb.String()
	for _, want := range []string{"Exit codes:", "0  success", "1  runtime failure", "2  usage error", "-chaos"} {
		if !strings.Contains(usage, want) {
			t.Fatalf("usage missing %q:\n%s", want, usage)
		}
	}
}

// TestRunChaosFlag: -chaos threads through to the experiments layer and
// surfaces the bookkeeping table.
func TestRunChaosFlag(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-id", "fig6.2-nosmp", "-packets", "2000", "-rates", "300,700", "-chaos", "42"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "# chaos: attempts / quarantined / rejected repetitions per point") {
		t.Fatalf("chaos table missing:\n%s", out.String())
	}
}
