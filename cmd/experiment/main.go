// experiment runs the reproduced tables and figures of the thesis's
// evaluation and prints the plotted series as tab-separated tables.
//
//	experiment -list
//	experiment -id fig6.3-smp -packets 100000 -reps 3
//	experiment -id fig6.3-smp -parallel -1   # all CPUs, identical output
//	experiment -all -packets 40000 > results.txt
//	experiment -id fig6.2-smp -chaos 42      # fault-injected, supervised
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// Exit codes (documented in -h):
//
//	0  success
//	1  runtime failure (unknown experiment id, output write error)
//	2  usage error (bad flags or arguments)
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

// usageError marks failures that are the caller's fault (exit code 2).
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a single exit point: every output
// writer is flushed by defer before the exit code reaches main's
// os.Exit, so no table is ever truncated by an early error path.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list all experiment ids")
		id       = fs.String("id", "", "experiment id to run")
		all      = fs.Bool("all", false, "run every experiment")
		packets  = fs.Int("packets", 40_000, "packets per run (thesis: 1000000)")
		reps     = fs.Int("reps", 1, "repetitions per point (thesis: 7)")
		seed     = fs.Uint64("seed", 1, "base random seed")
		rates    = fs.String("rates", "", "comma-separated data rates in Mbit/s (default 50..950)")
		parallel = fs.Int("parallel", 0, "worker goroutines per sweep: 0 = serial, -1 = one per CPU (output is identical for any value)")
		gpDir    = fs.String("gp", "", "also write <id>.dat and a gnuplot script <id>.gp into this directory")
		why      = fs.Bool("why", false, "append the per-point drop-cause table to each experiment")
		jsonOut  = fs.Bool("json", false, "emit NDJSON run records instead of tables (experiments without a series form are skipped)")
		chaos    = fs.Uint64("chaos", 0, "seed of the fault-injection plan: run sweeps under the resilient supervisor (validation, retry, quarantine, outlier rejection) and append the chaos bookkeeping; 0 = off")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "Usage of experiment:")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "\nExit codes:")
		fmt.Fprintln(stderr, "  0  success")
		fmt.Fprintln(stderr, "  1  runtime failure (unknown experiment id, output write error)")
		fmt.Fprintln(stderr, "  2  usage error (bad flags or arguments)")
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	// Buffer stdout: experiments emit many small writes, and routing them
	// through one deferred flush is what makes the single-exit-point
	// design matter.
	out := bufio.NewWriter(stdout)
	defer out.Flush()

	o := experiments.Options{
		Packets: *packets, Reps: *reps, Seed: *seed,
		Parallelism: *parallel, Why: *why, Chaos: *chaos,
	}
	if *rates != "" {
		for _, f := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintf(stderr, "experiment: bad rate %q\n", f)
				return exitUsage
			}
			o.Rates = append(o.Rates, v)
		}
	}

	err := dispatch(out, o, *list, *all, *id, *jsonOut, *gpDir)
	if err == nil {
		return exitOK
	}
	if ue, ok := err.(*usageError); ok {
		if ue.msg != "" {
			fmt.Fprintln(stderr, "experiment:", ue.msg)
		}
		fs.Usage()
		return exitUsage
	}
	fmt.Fprintln(stderr, "experiment:", err)
	return exitRuntime
}

// dispatch selects and executes the requested mode; all failures come
// back as errors so run keeps the single exit point.
func dispatch(out io.Writer, o experiments.Options, list, all bool, id string, jsonOut bool, gpDir string) error {
	switch {
	case list:
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-14s %-18s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	case all:
		for _, e := range experiments.All() {
			if err := runOne(out, e, o, jsonOut, gpDir, true); err != nil {
				return err
			}
		}
		return nil
	case id != "":
		e, err := experiments.Find(id)
		if err != nil {
			return err
		}
		return runOne(out, e, o, jsonOut, gpDir, false)
	default:
		return &usageError{}
	}
}

// runOne executes one experiment in the requested output form. In -all
// mode (skipMissing), experiments without a series form are skipped for
// -json instead of failing.
func runOne(out io.Writer, e experiments.Experiment, o experiments.Options, jsonOut bool, gpDir string, skipMissing bool) error {
	if jsonOut {
		if e.Series == nil {
			if skipMissing {
				return nil
			}
			return fmt.Errorf("%s has no structured series form", e.ID)
		}
		return writeJSON(out, e, o)
	}
	fmt.Fprintf(out, "==== %s (%s): %s ====\n", e.ID, e.Paper, e.Title)
	text := e.Run(o)
	fmt.Fprintln(out, text)
	return writeGnuplot(gpDir, e, text)
}

// writeJSON emits the experiment's measurement points as NDJSON, one
// record per (x, system) point.
func writeJSON(out io.Writer, e experiments.Experiment, o experiments.Options) error {
	enc := json.NewEncoder(out)
	for _, r := range experiments.Records(e, o) {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// writeGnuplot stores the experiment output as <id>.dat and, for the
// thesis-style rate tables (a "# x<TAB>name:rate%..." header), a matching
// linespoints plot script — the format the thesis's own plots use.
func writeGnuplot(dir string, e experiments.Experiment, out string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dat := filepath.Join(dir, e.ID+".dat")
	if err := os.WriteFile(dat, []byte(out), 0o644); err != nil {
		return err
	}
	lines := strings.Split(out, "\n")
	var header string
	for _, l := range lines {
		if strings.HasPrefix(l, "# x\t") {
			header = l
			break
		}
	}
	if header == "" {
		return nil // not a rate table; the .dat alone is useful
	}
	cols := strings.Split(strings.TrimPrefix(header, "# "), "\t")
	var plots []string
	for i, c := range cols[1:] {
		name, kind, ok := strings.Cut(c, ":")
		if !ok {
			continue
		}
		axis := "x1y1"
		width := 2
		if strings.HasPrefix(kind, "cpu") {
			axis = "x1y2"
			width = 1
		}
		plots = append(plots, fmt.Sprintf(
			"  %q using 1:%d with linespoints lw %d axes %s title %q",
			e.ID+".dat", i+2, width, axis, name+" "+kind))
	}
	script := fmt.Sprintf(`set title %q
set xlabel "Datarate [Mbit/s]"
set ylabel "Capturing Rate [%%]"
set y2label "CPU usage [%%]"
set yrange [0:105]
set y2range [0:105]
set y2tics
set key below
set grid
set terminal pngcairo size 1000,600
set output %q
plot \
%s
`, e.Title, e.ID+".png", strings.Join(plots, ", \\\n"))
	return os.WriteFile(filepath.Join(dir, e.ID+".gp"), []byte(script), 0o644)
}
