// experiment runs the reproduced tables and figures of the thesis's
// evaluation and prints the plotted series as tab-separated tables.
//
//	experiment -list
//	experiment -id fig6.3-smp -packets 100000 -reps 3
//	experiment -id fig6.3-smp -parallel -1   # all CPUs, identical output
//	experiment -all -packets 40000 > results.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list all experiment ids")
		id      = flag.String("id", "", "experiment id to run")
		all     = flag.Bool("all", false, "run every experiment")
		packets = flag.Int("packets", 40_000, "packets per run (thesis: 1000000)")
		reps    = flag.Int("reps", 1, "repetitions per point (thesis: 7)")
		seed    = flag.Uint64("seed", 1, "base random seed")
		rates    = flag.String("rates", "", "comma-separated data rates in Mbit/s (default 50..950)")
		parallel = flag.Int("parallel", 0, "worker goroutines per sweep: 0 = serial, -1 = one per CPU (output is identical for any value)")
		gpDir    = flag.String("gp", "", "also write <id>.dat and a gnuplot script <id>.gp into this directory")
		why      = flag.Bool("why", false, "append the per-point drop-cause table to each experiment")
		jsonOut  = flag.Bool("json", false, "emit NDJSON run records instead of tables (experiments without a series form are skipped)")
	)
	flag.Parse()

	o := experiments.Options{Packets: *packets, Reps: *reps, Seed: *seed, Parallelism: *parallel, Why: *why}
	if *rates != "" {
		for _, f := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiment: bad rate %q\n", f)
				os.Exit(2)
			}
			o.Rates = append(o.Rates, v)
		}
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %-18s %s\n", e.ID, e.Paper, e.Title)
		}
	case *all:
		for _, e := range experiments.All() {
			if *jsonOut {
				if err := writeJSON(e, o); err != nil {
					fmt.Fprintln(os.Stderr, "experiment:", err)
					os.Exit(1)
				}
				continue
			}
			fmt.Printf("==== %s (%s): %s ====\n", e.ID, e.Paper, e.Title)
			out := e.Run(o)
			fmt.Println(out)
			if err := writeGnuplot(*gpDir, e, out); err != nil {
				fmt.Fprintln(os.Stderr, "experiment:", err)
				os.Exit(1)
			}
		}
	case *id != "":
		e, err := experiments.Find(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiment:", err)
			os.Exit(1)
		}
		if *jsonOut {
			if e.Series == nil {
				fmt.Fprintf(os.Stderr, "experiment: %s has no structured series form\n", e.ID)
				os.Exit(1)
			}
			if err := writeJSON(e, o); err != nil {
				fmt.Fprintln(os.Stderr, "experiment:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Printf("==== %s (%s): %s ====\n", e.ID, e.Paper, e.Title)
		out := e.Run(o)
		fmt.Println(out)
		if err := writeGnuplot(*gpDir, e, out); err != nil {
			fmt.Fprintln(os.Stderr, "experiment:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeJSON emits the experiment's measurement points as NDJSON, one
// record per (x, system) point.
func writeJSON(e experiments.Experiment, o experiments.Options) error {
	enc := json.NewEncoder(os.Stdout)
	for _, r := range experiments.Records(e, o) {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// writeGnuplot stores the experiment output as <id>.dat and, for the
// thesis-style rate tables (a "# x<TAB>name:rate%..." header), a matching
// linespoints plot script — the format the thesis's own plots use.
func writeGnuplot(dir string, e experiments.Experiment, out string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dat := filepath.Join(dir, e.ID+".dat")
	if err := os.WriteFile(dat, []byte(out), 0o644); err != nil {
		return err
	}
	lines := strings.Split(out, "\n")
	var header string
	for _, l := range lines {
		if strings.HasPrefix(l, "# x\t") {
			header = l
			break
		}
	}
	if header == "" {
		return nil // not a rate table; the .dat alone is useful
	}
	cols := strings.Split(strings.TrimPrefix(header, "# "), "\t")
	var plots []string
	for i, c := range cols[1:] {
		name, kind, ok := strings.Cut(c, ":")
		if !ok {
			continue
		}
		axis := "x1y1"
		width := 2
		if strings.HasPrefix(kind, "cpu") {
			axis = "x1y2"
			width = 1
		}
		plots = append(plots, fmt.Sprintf(
			"  %q using 1:%d with linespoints lw %d axes %s title %q",
			e.ID+".dat", i+2, width, axis, name+" "+kind))
	}
	script := fmt.Sprintf(`set title %q
set xlabel "Datarate [Mbit/s]"
set ylabel "Capturing Rate [%%]"
set y2label "CPU usage [%%]"
set yrange [0:105]
set y2range [0:105]
set y2tics
set key below
set grid
set terminal pngcairo size 1000,600
set output %q
plot \
%s
`, e.Title, e.ID+".png", strings.Join(plots, ", \\\n"))
	return os.WriteFile(filepath.Join(dir, e.ID+".gp"), []byte(script), 0o644)
}
