// experiment runs the reproduced tables and figures of the thesis's
// evaluation and prints the plotted series as tab-separated tables.
//
//	experiment -list
//	experiment -id fig6.3-smp -packets 100000 -reps 3
//	experiment -id fig6.3-smp -parallel -1   # all CPUs, identical output
//	experiment -all -packets 40000 > results.txt
//	experiment -id fig6.2-smp -chaos 42      # fault-injected, supervised
//	experiment -all -journal run1            # record a durable campaign
//	experiment -all -journal run1 -resume    # resume after a crash/SIGTERM
//	experiment -all -journal d -coordinator :0 -workers 3 -netchaos 7 -diskchaos 9
//	                                         # distributed run under fault injection
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiments"
	"repro/internal/faultfs"
	"repro/internal/journal"
	"repro/internal/monitor"
	"repro/internal/netchaos"
)

// Exit codes (documented in -h):
//
//	0  success
//	1  runtime failure (unknown experiment id, output write error)
//	2  usage error (bad flags or arguments)
//	3  interrupted (SIGINT/SIGTERM); the campaign journal is usable
const (
	exitOK          = 0
	exitRuntime     = 1
	exitUsage       = 2
	exitInterrupted = 3
)

// usageError marks failures that are the caller's fault (exit code 2).
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func main() {
	// First SIGINT/SIGTERM cancels the context: the worker pools drain,
	// the journal is flushed, and run returns exit code 3. A second signal
	// kills the process the hard way (signal.NotifyContext unregisters on
	// stop), which is the escape hatch from a stuck run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the whole program behind a single exit point: every output
// writer is flushed by defer before the exit code reaches main's
// os.Exit, so no table is ever truncated by an early error path.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list all experiment ids")
		id         = fs.String("id", "", "experiment id to run")
		all        = fs.Bool("all", false, "run every experiment")
		packets    = fs.Int("packets", 40_000, "packets per run (thesis: 1000000)")
		reps       = fs.Int("reps", 1, "repetitions per point (thesis: 7)")
		seed       = fs.Uint64("seed", 1, "base random seed")
		rates      = fs.String("rates", "", "comma-separated data rates in Mbit/s (default 50..950)")
		parallel   = fs.Int("parallel", 0, "worker goroutines per sweep: 0 = serial, -1 = one per CPU (output is identical for any value)")
		gpDir      = fs.String("gp", "", "also write <id>.dat and a gnuplot script <id>.gp into this directory")
		why        = fs.Bool("why", false, "append the per-point drop-cause table to each experiment")
		jsonOut    = fs.Bool("json", false, "emit NDJSON run records instead of tables (experiments without a series form are skipped)")
		chaos      = fs.Uint64("chaos", 0, "seed of the fault-injection plan: run sweeps under the resilient supervisor (validation, retry, quarantine, outlier rejection) and append the chaos bookkeeping; 0 = off")
		policy     = fs.String("policy", "", "sampling/load-shedding policy for every capturing application: none, uniform:N, flow:N, adaptive[:T] (shed packets are booked under shed-* ledger causes, not lost; part of the campaign fingerprint)")
		rings      = fs.String("rings", "", "comma-separated RX ring counts for the modern-stack sweep ext-modern (default 2,4; part of the campaign fingerprint)")
		journalDir = fs.String("journal", "", "record completed measurement cells in a crash-safe campaign journal in this directory")
		resume     = fs.Bool("resume", false, "resume the campaign journal in -journal: replay recorded cells, measure the rest (output is byte-identical to an uninterrupted run)")
		serveAddr  = fs.String("serve", "", "serve the live monitoring API (campaign listing, SSE event stream, Prometheus /metrics) on this address while the campaign runs; with no run mode it serves standalone over the -journal directory until interrupted")
		coordAddr  = fs.String("coordinator", "", "run the campaign as a dispatch coordinator: serve the monitoring API plus the lease protocol on this address and shard the campaign's cells across connected -worker processes (requires -journal and -all/-id; the merged result is byte-identical to an undistributed run)")
		workersN   = fs.Int("workers", 0, "with -coordinator: also start this many in-process workers (a self-contained distributed run, used by CI)")
		workerAddr = fs.String("worker", "", "run as a dispatch worker against the coordinator at this address: lease cells, measure them, report back; exits 0 when the campaign completes, 2 on a campaign-fingerprint mismatch")
		netchaosS  = fs.Uint64("netchaos", 0, "seed of the network fault-injection plan: inject latency, drops, partitions, resets, and corrupted responses into the coordinator/worker protocol (requires -coordinator or -worker; the merged result stays byte-identical — chaos only delays and re-dispatches work); 0 = off")
		diskchaosS = fs.Uint64("diskchaos", 0, "seed of the storage fault-injection plan: inject ENOSPC, EIO, short writes, and fsync failures into the campaign journal's filesystem (requires -journal; appends pause, repair the tail, and retry, so no completion is lost); 0 = off")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file (written atomically: temp file + rename)")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile (after a final GC) to this file on exit, written atomically")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "Usage of experiment:")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "\nExit codes:")
		fmt.Fprintln(stderr, "  0  success")
		fmt.Fprintln(stderr, "  1  runtime failure (unknown experiment id, output write error)")
		fmt.Fprintln(stderr, "  2  usage error (bad flags or arguments)")
		fmt.Fprintln(stderr, "  3  interrupted by SIGINT/SIGTERM; the -journal campaign is usable with -resume")
		fmt.Fprintln(stderr, "\nA -serve process keeps serving after the run completes and exits 3 on the first signal.")
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	// Buffer stdout: experiments emit many small writes, and routing them
	// through one deferred flush is what makes the single-exit-point
	// design matter.
	out := bufio.NewWriter(stdout)
	defer out.Flush()

	// Profiling brackets everything below, including error paths: the
	// deferred stop/write runs on every exit, and both artifacts appear
	// atomically (like the -gp outputs) so a watcher never sees a torn file.
	if *cpuprofile != "" {
		stopProf, err := startCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "experiment:", err)
			return exitRuntime
		}
		defer stopProf()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			if err := writeHeapProfile(path); err != nil {
				fmt.Fprintln(stderr, "experiment:", err)
			}
		}()
	}

	o := experiments.Options{
		Packets: *packets, Reps: *reps, Seed: *seed,
		Parallelism: *parallel, Why: *why, Chaos: *chaos, Ctx: ctx,
	}
	if *rates != "" {
		for _, f := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				fmt.Fprintf(stderr, "experiment: bad rate %q (rates must be positive, finite Mbit/s values)\n", strings.TrimSpace(f))
				return exitUsage
			}
			o.Rates = append(o.Rates, v)
		}
	}
	if *rings != "" {
		for _, f := range strings.Split(*rings, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v <= 0 {
				fmt.Fprintf(stderr, "experiment: bad ring count %q (ring counts must be positive integers)\n", strings.TrimSpace(f))
				return exitUsage
			}
			o.Rings = append(o.Rings, v)
		}
	}
	if *policy != "" {
		spec, err := capture.ParsePolicy(*policy)
		if err != nil {
			fmt.Fprintln(stderr, "experiment:", err)
			return exitUsage
		}
		if spec.Enabled() {
			// Canonical form, so "adaptive:0.5" and "adaptive" fingerprint
			// the same campaign.
			o.Policy = spec.String()
		}
	}
	if *resume && *journalDir == "" {
		fmt.Fprintln(stderr, "experiment: -resume requires -journal <dir>")
		fs.Usage()
		return exitUsage
	}
	if *netchaosS != 0 && *workerAddr == "" && *coordAddr == "" {
		fmt.Fprintln(stderr, "experiment: -netchaos faults the dispatch protocol; it requires -coordinator or -worker")
		fs.Usage()
		return exitUsage
	}
	if *diskchaosS != 0 && *journalDir == "" {
		fmt.Fprintln(stderr, "experiment: -diskchaos faults the campaign journal; it requires -journal <dir>")
		fs.Usage()
		return exitUsage
	}

	// Storage chaos: the campaign journal (and the coordinator's lease
	// WAL) run on a fault-injecting filesystem. The journal's
	// truncate-repair-retry append absorbs every planned fault, so the
	// recorded cells — and therefore the output — are unaffected.
	var fsys faultfs.FS = faultfs.OS
	var ffs *faultfs.FaultFS
	if *diskchaosS != 0 {
		ffs = faultfs.New(faultfs.OS)
		ffs.Plan = faultfs.DefaultPlan(*diskchaosS)
		fsys = ffs
	}

	// -worker is a whole program of its own: no run mode, no journal, no
	// monitor — just the lease-measure-complete loop against the
	// coordinator, whose options the worker's must match exactly.
	if *workerAddr != "" {
		var conflict string
		switch {
		case *list || *all || *id != "":
			conflict = "-worker is exclusive with -list/-all/-id (the coordinator picks the work)"
		case *journalDir != "":
			conflict = "-worker records nothing locally; the coordinator owns the -journal"
		case *serveAddr != "" || *coordAddr != "":
			conflict = "-worker cannot also serve (-serve) or coordinate (-coordinator)"
		case *jsonOut || *gpDir != "" || *why:
			conflict = "-worker produces no output; -json/-gp/-why belong on the coordinator"
		case *chaos != 0:
			conflict = "-chaos campaigns cannot be distributed (fault plans are process-local)"
		}
		if conflict != "" {
			fmt.Fprintln(stderr, "experiment:", conflict)
			fs.Usage()
			return exitUsage
		}
		return runWorker(ctx, stderr, *workerAddr, o, *netchaosS)
	}

	coordinating := *coordAddr != ""
	var coord *dispatch.Coordinator
	if coordinating {
		var conflict string
		switch {
		case *journalDir == "":
			conflict = "-coordinator requires -journal <dir> (the lease table and results must be durable)"
		case !*all && *id == "":
			conflict = "-coordinator requires a run mode (-all or -id)"
		case *chaos != 0:
			conflict = "-chaos campaigns cannot be distributed (fault plans are process-local)"
		case *serveAddr != "":
			conflict = "-coordinator already serves the monitoring API on its own address; drop -serve"
		}
		if conflict != "" {
			fmt.Fprintln(stderr, "experiment:", conflict)
			fs.Usage()
			return exitUsage
		}
		fp, err := experiments.Fingerprint(o)
		if err != nil {
			fmt.Fprintln(stderr, "experiment:", err)
			return exitRuntime
		}
		coord = dispatch.New(campaignID(*journalDir), fp)
		coord.LocalWorkers = *parallel
		coord.FS = fsys
	}
	if *workersN != 0 && !coordinating {
		fmt.Fprintln(stderr, "experiment: -workers requires -coordinator")
		fs.Usage()
		return exitUsage
	}
	if *workersN < 0 {
		fmt.Fprintln(stderr, "experiment: -workers must not be negative")
		fs.Usage()
		return exitUsage
	}

	// -serve stands the monitoring service up before any measurement
	// starts, so a dashboard connected from the first cell misses nothing.
	// The hub doubles as the engines' Observer: with it attached the run
	// publishes its live event feed, and the feed never changes a result
	// (bounded rings drop on a stalled consumer; publishing never blocks).
	var hub *monitor.Hub
	var httpSrv *http.Server
	var baseURL string // coordinator's own URL, for in-process workers
	var chaosListener *netchaos.Listener
	serveOn := *serveAddr
	if coordinating {
		serveOn = *coordAddr
	}
	if serveOn != "" {
		hub = monitor.NewHub()
		reg := monitor.NewRegistry()
		reg.Attach(hub)
		if *journalDir != "" {
			// Read-only discovery: the journal is also browsable after the
			// run (or from a standalone -serve with no run mode at all).
			reg.AddJournalDir(campaignID(*journalDir), *journalDir)
		}
		rawLn, err := net.Listen("tcp", serveOn)
		if err != nil {
			fmt.Fprintln(stderr, "experiment:", err)
			return exitRuntime
		}
		ln := net.Listener(rawLn)
		handler := monitor.NewServer(hub, reg).Handler()
		if coord != nil {
			// The lease protocol rides the same mux as the monitoring API:
			// specific dispatch routes win, everything else falls through.
			mux := http.NewServeMux()
			coord.Register(mux)
			mux.Handle("/", handler)
			handler = mux
			coord.Observer = hub
		}
		if *netchaosS != 0 && coordinating {
			// Accept-side chaos: a drawn fraction of inbound protocol
			// connections are reset before the server ever sees them.
			nl := &netchaos.Listener{
				Listener: ln, Plan: netchaos.DefaultPlan(*netchaosS),
				OnFault: func(c netchaos.Class, detail string) {
					hub.Observe(core.Event{Kind: core.EventChaos, Campaign: campaign(*journalDir),
						Fault: "net-" + c.String(), Detail: detail})
				},
			}
			chaosListener = nl
			ln = nl
		}
		// ReadHeaderTimeout bounds a half-open or slow-loris client's grip
		// on a connection; SSE streams are unaffected (it only covers
		// request headers).
		httpSrv = &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
		go httpSrv.Serve(ln)
		defer closeServer(httpSrv)
		baseURL = "http://" + ln.Addr().String()
		if coordinating {
			fmt.Fprintf(stderr, "experiment: coordinating at %s\n", baseURL)
		} else {
			fmt.Fprintf(stderr, "experiment: monitoring at %s\n", baseURL)
		}
		o.Observer = hub
	}

	// Chaos observability: every injected storage fault becomes an
	// EventChaos on the bus (when one exists) and a tally in the final
	// summary; journal repairs are counted separately.
	var journalRepairs atomic.Uint64
	if ffs != nil {
		h := hub
		cname := campaign(*journalDir)
		ffs.OnFault = func(op faultfs.Op, path string, err error) {
			if h != nil {
				h.Observe(core.Event{Kind: core.EventChaos, Campaign: cname,
					Fault:  "fs-" + op.String(),
					Detail: fmt.Sprintf("%s %s: %v", op, filepath.Base(path), err)})
			}
		}
	}

	mode := *list || *all || *id != ""
	if *journalDir != "" && (*all || *id != "") {
		c, err := openCampaign(stderr, fsys, *journalDir, *resume, o)
		if err != nil {
			fmt.Fprintln(stderr, "experiment:", err)
			return exitRuntime
		}
		defer c.Close()
		if ffs != nil {
			c.OnAppendRetry(func(err error, attempt int) { journalRepairs.Add(1) })
		}
		if hub != nil {
			// Checkpoint events (one per durably recorded cell) join the feed.
			c.Observer = hub
		}
		o.Journal = c
		if coord != nil {
			coord.Journal = c
			// The lease table shares the journal directory and the WAL
			// format: a -resume'd coordinator replays it and keeps each
			// cell's dispatch-attempt count.
			if err := coord.OpenWAL(*journalDir, *resume); err != nil {
				fmt.Fprintln(stderr, "experiment:", err)
				return exitRuntime
			}
			defer coord.Close()
			o.Executor = coord
		}
	}

	// The in-process worker pool: a self-contained distributed run over
	// loopback HTTP — same protocol, same failure surface, no extra
	// processes to babysit (CI's favorite shape). External -worker
	// processes can join alongside at any time.
	var workerWG sync.WaitGroup
	var chaosTransports []*netchaos.Transport
	if coord != nil && *workersN > 0 {
		wo := o
		wo.Ctx, wo.Journal, wo.Observer, wo.Executor = nil, nil, nil, nil
		for i := 1; i <= *workersN; i++ {
			w := &dispatch.Worker{
				ID: fmt.Sprintf("local-%d", i), BaseURL: baseURL, Options: wo,
			}
			if *netchaosS != 0 {
				// Each in-process worker talks through its own chaos
				// transport; Peer salts the draws so the workers see
				// independent fault schedules from one seed.
				tr := &netchaos.Transport{
					Plan: netchaos.DefaultPlan(*netchaosS), Peer: w.ID,
					OnFault: func(c netchaos.Class, detail string) {
						hub.Observe(core.Event{Kind: core.EventChaos,
							Campaign: campaign(*journalDir), Worker: w.ID,
							Fault: "net-" + c.String(), Detail: detail})
					},
				}
				chaosTransports = append(chaosTransports, tr)
				w.Client = &http.Client{Timeout: dispatch.DefaultClientTimeout, Transport: tr}
			}
			workerWG.Add(1)
			go func() {
				defer workerWG.Done()
				if err := w.Run(ctx); err != nil && ctx.Err() == nil {
					fmt.Fprintf(stderr, "experiment: worker %s: %v\n", w.ID, err)
				}
			}()
		}
	}

	var err error
	switch {
	case mode:
		if hub != nil && (*all || *id != "") {
			// Campaign bracket events come from the CLI layer: the engines
			// don't know where one driver invocation begins and ends.
			fp, fpErr := experiments.Fingerprint(o)
			if fpErr != nil {
				fp = ""
			}
			hub.Observe(core.Event{Kind: core.EventCampaignStart, Campaign: campaign(*journalDir), Detail: fp})
		}
		err = runMode(ctx, out, o, *list, *all, *id, *jsonOut, *gpDir)
		if hub != nil && (*all || *id != "") && err == nil && ctx.Err() == nil {
			hub.Observe(core.Event{Kind: core.EventCampaignFinish, Campaign: campaign(*journalDir)})
		}
	case httpSrv == nil:
		err = &usageError{}
	}
	if coord != nil {
		// The campaign is over (or dead): tell the workers — they get the
		// gone status on their next lease poll and exit 0 — and drain the
		// in-process pool before tearing the listener down.
		coord.Finish()
		workerWG.Wait()
		st := coord.Stats()
		if st.Granted > 0 {
			fmt.Fprintf(stderr, "experiment: dispatch: %d leases granted, %d expired, %d straggler re-dispatches, %d duplicate completions, %d cells run locally\n",
				st.Granted, st.Expired, st.Redispatched, st.Duplicates, st.LocalCells)
		}
	}
	if *netchaosS != 0 || *diskchaosS != 0 {
		var netFaults uint64
		for _, tr := range chaosTransports {
			netFaults += tr.Injected()
		}
		if chaosListener != nil {
			netFaults += chaosListener.Injected()
		}
		var fsFaults uint64
		if ffs != nil {
			fsFaults = ffs.Injected()
		}
		fmt.Fprintf(stderr, "experiment: chaos: %d network faults injected, %d storage faults injected, %d journal appends repaired and retried\n",
			netFaults, fsFaults, journalRepairs.Load())
	}
	if ctx.Err() != nil {
		// The interrupt wins over any secondary error: pools have drained,
		// the journal holds every completed cell, partial output was
		// discarded.
		if *journalDir != "" {
			fmt.Fprintf(stderr, "experiment: interrupted; campaign journal %s is usable — re-run with -resume\n", *journalDir)
		} else {
			fmt.Fprintln(stderr, "experiment: interrupted")
		}
		return exitInterrupted
	}
	if err != nil {
		if ue, ok := err.(*usageError); ok {
			if ue.msg != "" {
				fmt.Fprintln(stderr, "experiment:", ue.msg)
			}
			fs.Usage()
			return exitUsage
		}
		fmt.Fprintln(stderr, "experiment:", err)
		return exitRuntime
	}
	if httpSrv != nil && !coordinating {
		// Flush the tables now — the run is done, only the monitor keeps
		// the process alive — then serve until the first signal (exit 3,
		// like any other interrupted wait). A coordinator instead exits
		// with its campaign: its listener exists for the workers.
		out.Flush()
		if mode {
			fmt.Fprintln(stderr, "experiment: run complete; still serving — interrupt (SIGINT/SIGTERM) to exit")
		} else {
			fmt.Fprintln(stderr, "experiment: serving standalone — interrupt (SIGINT/SIGTERM) to exit")
		}
		<-ctx.Done()
		fmt.Fprintln(stderr, "experiment: interrupted")
		return exitInterrupted
	}
	return exitOK
}

// campaign is the monitoring name of this driver invocation: the journal
// directory's base name when one is recorded, "live" otherwise.
func campaign(journalDir string) string {
	if journalDir == "" {
		return "live"
	}
	return campaignID(journalDir)
}

// campaignID names a journal directory's campaign after its base name.
func campaignID(dir string) string {
	return filepath.Base(filepath.Clean(dir))
}

// closeServer drains the monitoring listener: a short graceful window for
// in-flight API requests, then a hard close for SSE streams, which only
// end when their client hangs up.
func closeServer(s *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if s.Shutdown(ctx) != nil {
		s.Close()
	}
}

// openCampaign creates or resumes the on-disk campaign journal and reports
// what a resume recovered. fsys is the (possibly fault-injecting)
// filesystem the journal lives on.
func openCampaign(stderr io.Writer, fsys faultfs.FS, dir string, resume bool, o experiments.Options) (*experiments.Campaign, error) {
	if !resume {
		return experiments.CreateCampaignFS(fsys, dir, o)
	}
	c, err := experiments.ResumeCampaignFS(fsys, dir, o)
	if err != nil {
		return nil, err
	}
	if c.Torn {
		fmt.Fprintf(stderr, "experiment: journal had a torn tail frame (crash mid-append); truncated %d bytes\n", c.TornBytes)
	}
	fmt.Fprintf(stderr, "experiment: resuming campaign with %d recorded cells\n", c.Replayed)
	return c, nil
}

// runWorker is the whole -worker mode: join the coordinator, serve
// leases until the campaign completes. Exit codes follow the usual
// contract — a campaign-fingerprint mismatch is a usage error (2): the
// worker was started with flags that describe a different campaign.
func runWorker(ctx context.Context, stderr io.Writer, addr string, o experiments.Options, netchaosSeed uint64) int {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	w := &dispatch.Worker{
		ID:      fmt.Sprintf("%s-%d", host, os.Getpid()),
		BaseURL: base,
		Options: o,
		Log: func(format string, args ...any) {
			fmt.Fprintf(stderr, "experiment: "+format+"\n", args...)
		},
	}
	if netchaosSeed != 0 {
		tr := &netchaos.Transport{
			Plan: netchaos.DefaultPlan(netchaosSeed), Peer: w.ID,
			OnFault: func(c netchaos.Class, detail string) {
				fmt.Fprintf(stderr, "experiment: chaos: %s injected: %s\n", c, detail)
			},
		}
		w.Client = &http.Client{Timeout: dispatch.DefaultClientTimeout, Transport: tr}
		defer func() {
			fmt.Fprintf(stderr, "experiment: chaos: %d network faults injected\n", tr.Injected())
		}()
	}
	err := w.Run(ctx)
	switch {
	case err == nil:
		return exitOK
	case ctx.Err() != nil:
		fmt.Fprintln(stderr, "experiment: interrupted")
		return exitInterrupted
	default:
		fmt.Fprintln(stderr, "experiment:", err)
		if _, ok := err.(*dispatch.FingerprintMismatchError); ok {
			return exitUsage
		}
		return exitRuntime
	}
}

// runMode selects and executes the requested mode; all failures come
// back as errors so run keeps the single exit point.
func runMode(ctx context.Context, out io.Writer, o experiments.Options, list, all bool, id string, jsonOut bool, gpDir string) error {
	switch {
	case list:
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-14s %-18s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	case all:
		for _, e := range experiments.All() {
			if ctx.Err() != nil {
				return nil
			}
			if err := runOne(ctx, out, e, o, jsonOut, gpDir, true); err != nil {
				return err
			}
		}
		return nil
	case id != "":
		e, err := experiments.Find(id)
		if err != nil {
			return err
		}
		return runOne(ctx, out, e, o, jsonOut, gpDir, false)
	default:
		return &usageError{}
	}
}

// runOne executes one experiment in the requested output form. In -all
// mode (skipMissing), experiments without a series form are skipped for
// -json instead of failing. An interrupted experiment emits no table:
// a partial table would differ from a clean run's, and the whole point
// of the journal is that the re-run is byte-identical. (-json streams,
// so an interrupt there simply stops the record stream mid-way.)
func runOne(ctx context.Context, out io.Writer, e experiments.Experiment, o experiments.Options, jsonOut bool, gpDir string, skipMissing bool) error {
	if jsonOut && e.Series == nil {
		if skipMissing {
			return nil
		}
		return fmt.Errorf("%s has no structured series form", e.ID)
	}
	// Experiment bracket events come from here — the engines only know
	// about cells and points, not experiment boundaries.
	emit := func(kind core.EventKind) {
		if o.Observer != nil {
			o.Observer.Observe(core.Event{Kind: kind, Experiment: e.ID})
		}
	}
	emit(core.EventExperimentStart)
	if jsonOut {
		if err := writeJSON(ctx, out, e, o); err != nil {
			return err
		}
		if ctx.Err() == nil {
			emit(core.EventExperimentFinish)
		}
		return nil
	}
	// Run before printing the header: an interrupted experiment must not
	// leave a header with a truncated table behind.
	text := e.Run(o)
	if ctx.Err() != nil {
		return nil
	}
	emit(core.EventExperimentFinish)
	fmt.Fprintf(out, "==== %s (%s): %s ====\n", e.ID, e.Paper, e.Title)
	fmt.Fprintln(out, text)
	return writeGnuplot(gpDir, e, text)
}

// writeJSON streams the experiment's measurement points as NDJSON, one
// record per (x, system) point, encoded and flushed the moment the
// engine finalizes the point. The rows ride the same EventPoint feed the
// monitoring bus publishes, so they arrive in the canonical x-major
// layout order — deterministic for any -parallel value, and identical to
// what an SSE subscriber of the same run sees. (The retired buffered
// writer emitted system-major rows; the record set is unchanged, only
// the order moved.)
func writeJSON(ctx context.Context, out io.Writer, e experiments.Experiment, o experiments.Options) error {
	enc := json.NewEncoder(out)
	var mu sync.Mutex
	var streamed int
	var werr error
	o.Observer = core.MultiObserver(o.Observer, core.ObserverFunc(func(ev core.Event) {
		if ev.Kind != core.EventPoint || ev.Experiment != e.ID || ev.Agg == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if werr != nil {
			return
		}
		if werr = enc.Encode(experiments.PointRecord(e.ID, *ev.Agg)); werr != nil {
			return
		}
		if f, ok := out.(interface{ Flush() error }); ok {
			werr = f.Flush()
		}
		streamed++
	}))
	series := e.Series(o)
	if ctx.Err() != nil {
		return nil
	}
	if werr != nil {
		return werr
	}
	if streamed > 0 {
		return nil
	}
	// Safety net for a Series path that bypasses the observed engines
	// (none today): emit the buffered rows rather than nothing.
	for _, s := range series {
		for _, p := range s.Points {
			r := experiments.PointRecord(e.ID, p)
			r.System = s.System
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeGnuplot stores the experiment output as <id>.dat and, for the
// thesis-style rate tables (a "# x<TAB>name:rate%..." header), a matching
// linespoints plot script — the format the thesis's own plots use. Both
// artifacts are written atomically (temp file + rename), so a concurrent
// plot run or a crash never sees a half-written file.
func writeGnuplot(dir string, e experiments.Experiment, out string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dat := filepath.Join(dir, e.ID+".dat")
	if err := journal.WriteFileAtomic(dat, []byte(out), 0o644); err != nil {
		return err
	}
	lines := strings.Split(out, "\n")
	var header string
	for _, l := range lines {
		if strings.HasPrefix(l, "# x\t") {
			header = l
			break
		}
	}
	if header == "" {
		return nil // not a rate table; the .dat alone is useful
	}
	cols := strings.Split(strings.TrimPrefix(header, "# "), "\t")
	var plots []string
	for i, c := range cols[1:] {
		name, kind, ok := strings.Cut(c, ":")
		if !ok {
			continue
		}
		axis := "x1y1"
		width := 2
		if strings.HasPrefix(kind, "cpu") {
			axis = "x1y2"
			width = 1
		}
		plots = append(plots, fmt.Sprintf(
			"  %q using 1:%d with linespoints lw %d axes %s title %q",
			e.ID+".dat", i+2, width, axis, name+" "+kind))
	}
	script := fmt.Sprintf(`set title %q
set xlabel "Datarate [Mbit/s]"
set ylabel "Capturing Rate [%%]"
set y2label "CPU usage [%%]"
set yrange [0:105]
set y2range [0:105]
set y2tics
set key below
set grid
set terminal pngcairo size 1000,600
set output %q
plot \
%s
`, e.Title, e.ID+".png", strings.Join(plots, ", \\\n"))
	return journal.WriteFileAtomic(filepath.Join(dir, e.ID+".gp"), []byte(script), 0o644)
}

// startCPUProfile begins a CPU profile that streams into a temp file next to
// path; the returned stop function finishes the profile and renames it into
// place, so path only ever holds a complete profile.
func startCPUProfile(path string) (stop func(), err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".cpuprofile-*")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		name := f.Name()
		err := f.Close()
		if err == nil {
			if err = os.Rename(name, path); err == nil {
				return
			}
		}
		fmt.Fprintf(os.Stderr, "experiment: cpu profile not written to %s: %v\n", path, err)
		os.Remove(name)
	}, nil
}

// writeHeapProfile records the live heap after a final GC (so the profile
// shows what the run retains, not garbage awaiting collection) and writes it
// atomically.
func writeHeapProfile(path string) error {
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.WriteHeapProfile(&buf); err != nil {
		return err
	}
	return journal.WriteFileAtomic(path, buf.Bytes(), 0o644)
}
