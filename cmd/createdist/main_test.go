package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/pcapfile"
	"repro/internal/trace"
)

func params() dist.Params { return dist.DefaultParams() }

func TestSizesToProcfs(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "sizes.txt")
	out := filepath.Join(dir, "out.procfs")
	var sizes bytes.Buffer
	for i := 0; i < 500; i++ {
		sizes.WriteString("40\n1500\n576\n")
	}
	if err := os.WriteFile(in, sizes.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(false, in, out, "sizes", "procfs", " ", 0, 1, false, params(), ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dist.ParseProcfs(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("output is not valid procfs: %v", err)
	}
	if len(d.Outliers) != 3 {
		t.Fatalf("outliers = %d, want 3 (40/576/1500)", len(d.Outliers))
	}
}

func TestTraceToDist(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "trace.pcap")
	out := filepath.Join(dir, "out.dist")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Synthesize(f, 1000, 3, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(false, in, out, "trace", "dist", " ", 0, 1, false, params(), "udp"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var c dist.Counts
	if err := dist.ReadDist(bytes.NewReader(data), ' ', &c); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 1000 {
		t.Fatalf("counted %d packets, want 1000", c.Total())
	}
}

func TestProcfsToSizes(t *testing.T) {
	dir := t.TempDir()
	procfs := filepath.Join(dir, "in.procfs")
	out := filepath.Join(dir, "sizes.txt")
	d, err := dist.Build(trace.MWNCounts(100000), params())
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(procfs)
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.WriteProcfs(f, d, true); err != nil { // pgset-wrapped
		t.Fatal(err)
	}
	f.Close()
	if err := run(false, procfs, out, "procfs", "sizes", " ", 2000, 7, false, params(), ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var c dist.Counts
	if err := dist.ReadSizes(bytes.NewReader(data), &c); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 2000 {
		t.Fatalf("generated %d sizes, want 2000", c.Total())
	}
}

func TestBadTypes(t *testing.T) {
	if err := run(false, "", "", "bogus", "dist", " ", 0, 1, false, params(), ""); err == nil {
		t.Fatal("bad input type accepted")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "x")
	os.WriteFile(in, []byte("40 1\n"), 0o644)
	if err := run(false, in, "", "dist", "bogus", " ", 0, 1, false, params(), ""); err == nil {
		t.Fatal("bad output type accepted")
	}
	if err := run(false, in, "", "dist", "dist", "ab", 0, 1, false, params(), ""); err == nil {
		t.Fatal("multi-char separator accepted")
	}
}

func TestERFInput(t *testing.T) {
	dir := t.TempDir()
	// Convert a synthesized pcap to ERF, then feed it back as -I erf.
	var pcapBuf bytes.Buffer
	if err := trace.Synthesize(&pcapBuf, 400, 5, 0); err != nil {
		t.Fatal(err)
	}
	r, err := pcapfile.NewReader(&pcapBuf)
	if err != nil {
		t.Fatal(err)
	}
	erfPath := filepath.Join(dir, "t.erf")
	f, err := os.Create(erfPath)
	if err != nil {
		t.Fatal(err)
	}
	w := pcapfile.NewERFWriter(f)
	for {
		info, data, err := r.Next()
		if err != nil {
			break
		}
		if err := w.WritePacket(info.Timestamp, data, info.OrigLen); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "out.dist")
	if err := run(false, erfPath, out, "erf", "dist", " ", 0, 1, false, params(), ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var c dist.Counts
	if err := dist.ReadDist(bytes.NewReader(data), ' ', &c); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 400 {
		t.Fatalf("counted %d packets from ERF, want 400", c.Total())
	}
}
