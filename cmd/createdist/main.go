// createdist is the reimplementation of the thesis's createDist tool
// (§A.1): it counts packet sizes, converts between the distribution
// representations, and produces the procfs input for the enhanced Linux
// Kernel Packet Generator.
//
// Input types (-I): dist (size/count pairs), procfs (generator format),
// sizes (one size per line), trace (pcap file), erf (Endace DAG trace —
// going beyond the original, which could not read DAG files). Output
// types (-O): dist, procfs, sizes.
//
// As in the original, choosing -O sizes makes the tool "act like the
// generator" and emit -n sizes drawn from the distribution.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dist"
	"repro/internal/filter"
	"repro/internal/pcapfile"
	"repro/internal/pkt"
)

func main() {
	var (
		verbose = flag.Bool("v", false, "verbose output to standard error")
		inFile  = flag.String("i", "", "input file (default: standard input)")
		outFile = flag.String("o", "", "output file (default: standard output)")
		inType  = flag.String("I", "dist", "input type: dist|procfs|sizes|trace|erf")
		outType = flag.String("O", "procfs", "output type: dist|procfs|sizes")
		fs      = flag.String("fs", " ", "field separator for dist type")
		n       = flag.Int("n", 10_000_000, "number of packet sizes to generate (sizes output)")
		seed    = flag.Uint64("seed", 1, "random seed for sizes output")
		pgset   = flag.Bool("s", false, "surround procfs output by pgset()'s")
		maxSize = flag.Int("max", 1500, "maximum packet size N_ps")
		prec    = flag.Int("prec", 1000, "precision/resolution of the arrays ρ")
		hwidth  = flag.Int("hwidth", 20, "width of bins σ_bin")
		outlb   = flag.Float64("outlb", 0.002, "outlier boundary p_Ωbound (fraction)")
		filt    = flag.String("f", "", "capture filter for trace input (tcpdump syntax)")
	)
	flag.Parse()
	if err := run(*verbose, *inFile, *outFile, *inType, *outType, *fs, *n, *seed, *pgset,
		dist.Params{Precision: *prec, BinSize: *hwidth, MaxSize: *maxSize, OutlierBound: *outlb},
		*filt); err != nil {
		fmt.Fprintln(os.Stderr, "createdist:", err)
		os.Exit(1)
	}
}

func run(verbose bool, inFile, outFile, inType, outType, fs string,
	n int, seed uint64, pgset bool, params dist.Params, filt string) error {
	in := io.Reader(os.Stdin)
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if len(fs) != 1 {
		return fmt.Errorf("field separator must be a single character")
	}

	// Acquire the distribution (as counts or directly as a two-stage
	// representation, depending on the input type).
	var counts dist.Counts
	var d *dist.Distribution
	switch inType {
	case "dist":
		if err := dist.ReadDist(in, fs[0], &counts); err != nil {
			return err
		}
	case "sizes":
		if err := dist.ReadSizes(in, &counts); err != nil {
			return err
		}
	case "procfs":
		var err error
		d, err = dist.ParseProcfs(in)
		if err != nil {
			return err
		}
	case "trace":
		r, err := pcapfile.NewReader(in)
		if err != nil {
			return err
		}
		if err := readTrace(r.Next, &counts, filt, verbose); err != nil {
			return err
		}
	case "erf":
		// The original createDist could not read DAG traces ("there is no
		// library to process DAG trace files", §A.1.2); this reader can.
		if err := readTrace(pcapfile.NewERFReader(in).Next, &counts, filt, verbose); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown input type %q", inType)
	}

	if verbose && counts.Total() > 0 {
		fmt.Fprintf(os.Stderr, "createdist: %d packets, %d distinct sizes, mean %.1f bytes\n",
			counts.Total(), len(counts.Sizes()), counts.Mean())
	}

	needDist := outType == "procfs" || outType == "sizes"
	if needDist && d == nil {
		var err error
		d, err = dist.Build(&counts, params)
		if err != nil {
			return err
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "createdist: %d outliers (%.1f%% of mass), %d bins\n",
				len(d.Outliers), d.OutlierMass()*100, len(d.Bins))
		}
	}

	switch outType {
	case "dist":
		if counts.Total() == 0 && d != nil {
			// procfs input, dist output: sample to approximate counts.
			rng := dist.NewRNG(seed)
			for i := 0; i < n; i++ {
				counts.Add(d.Sample(rng), 1)
			}
		}
		return dist.WriteDist(out, fs[0], &counts)
	case "procfs":
		return dist.WriteProcfs(out, d, pgset)
	case "sizes":
		return dist.WriteSizes(out, d, dist.NewRNG(seed), n)
	}
	return fmt.Errorf("unknown output type %q", outType)
}

// readTrace counts the IP datagram length of every IP packet from a
// packet-record source (pcap or ERF); non-IP packets are discarded, like
// the original's callback.
func readTrace(next func() (pcapfile.PacketInfo, []byte, error), counts *dist.Counts, filt string, verbose bool) error {
	accept := func(data []byte) bool { return true }
	if filt != "" {
		prog, err := filter.Compile(filt, 65535)
		if err != nil {
			return err
		}
		accept = func(data []byte) bool {
			res, err := prog.Run(data)
			return err == nil && res.Accept > 0
		}
	}
	skipped := 0
	for {
		_, data, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if !accept(data) {
			skipped++
			continue
		}
		s, err := pkt.Parse(data)
		if err != nil || !s.IsIPv4 {
			skipped++
			continue
		}
		counts.Add(int(s.IPv4.Length), 1)
	}
	if verbose && skipped > 0 {
		fmt.Fprintf(os.Stderr, "createdist: skipped %d non-IP/filtered packets\n", skipped)
	}
	return nil
}
