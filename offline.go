package repro

import (
	"io"
	"time"

	"repro/internal/bpf"
	"repro/internal/filter"
	"repro/internal/pcapfile"
)

// PacketInfo describes one captured packet record.
type PacketInfo = pcapfile.PacketInfo

// Handle is a libpcap-style session over a pcap capture file: sequential
// packet reads with an optional in-line BPF filter, mirroring
// pcap_open_offline / pcap_setfilter / pcap_next / pcap_stats.
type Handle struct {
	r       *pcapfile.Reader
	prog    bpf.Program
	snaplen uint32

	received uint64 // packets returned to the caller
	filtered uint64 // packets rejected by the filter
}

// HandleStats mirrors pcap_stats.
type HandleStats struct {
	Received uint64
	Filtered uint64
}

// OpenOffline opens a pcap stream for reading.
func OpenOffline(r io.Reader) (*Handle, error) {
	pr, err := pcapfile.NewReader(r)
	if err != nil {
		return nil, err
	}
	return &Handle{r: pr, snaplen: pr.Header().SnapLen}, nil
}

// Snaplen returns the capture length of the underlying file.
func (h *Handle) Snaplen() uint32 { return h.snaplen }

// SetFilter compiles and installs a tcpdump-style filter expression;
// packets it rejects are skipped by ReadPacket.
func (h *Handle) SetFilter(expr string) error {
	prog, err := filter.Compile(expr, h.snaplen)
	if err != nil {
		return err
	}
	h.prog = prog
	return nil
}

// SetFilterProgram installs a precompiled BPF program.
func (h *Handle) SetFilterProgram(p bpf.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	h.prog = p
	return nil
}

// ReadPacket returns the next packet accepted by the filter. The data
// slice is valid until the next call. io.EOF signals a clean end.
func (h *Handle) ReadPacket() (PacketInfo, []byte, error) {
	for {
		info, data, err := h.r.Next()
		if err != nil {
			return PacketInfo{}, nil, err
		}
		if h.prog != nil {
			res, err := h.prog.Run(data)
			if err != nil {
				return PacketInfo{}, nil, err
			}
			if res.Accept == 0 {
				h.filtered++
				continue
			}
			if int(res.Accept) < len(data) {
				data = data[:res.Accept]
				info.CapLen = len(data)
			}
		}
		h.received++
		return info, data, nil
	}
}

// Stats mirrors pcap_stats for the session so far.
func (h *Handle) Stats() HandleStats {
	return HandleStats{Received: h.received, Filtered: h.filtered}
}

// DumpWriter writes packets to a pcap file (pcap_dump).
type DumpWriter struct {
	w *pcapfile.Writer
}

// NewDumpWriter creates a pcap writer with the given snap length
// (0 = 65535). Writing only the first bytes of each packet is the
// thesis's header-trace mode (tsl 76).
func NewDumpWriter(w io.Writer, snaplen uint32) *DumpWriter {
	return &DumpWriter{w: pcapfile.NewWriter(w, snaplen)}
}

// WritePacket appends one packet with its original length.
func (d *DumpWriter) WritePacket(ts time.Time, data []byte, origLen int) error {
	return d.w.WritePacket(ts, data, origLen)
}

// Flush finalizes the file.
func (d *DumpWriter) Flush() error { return d.w.Flush() }
