// Package faults is the seeded, deterministic fault model of the
// measurement testbed. The thesis repeats every (system, rate) point
// "several times … to avoid outliers or unwanted influences" (§3.4)
// because a real Figure 3.1 testbed misbehaves: SNMP counters wrap or
// return stale reads, pktgen underruns its target rate or stalls
// mid-train, a sniffer hangs without returning statistics, the optical
// splitter degrades one fiber leg. This package decides — purely as a
// function of (seed, measurement point, component, repetition, attempt) —
// which of those failures a given cycle exhibits, so chaos runs are
// exactly reproducible and every assertion about retry, quarantine and
// degradation can be made deterministically from the seed.
//
// Fault persistence mirrors the physical failure: transient faults (a
// stale SNMP read, a generator hiccup, a hung process) are re-rolled per
// attempt, so a retry can succeed; a degraded splitter leg is keyed
// without the attempt — re-running the cycle reads the same weak signal;
// a dead sniffer is keyed by (point, sniffer) alone and stays dead for
// the whole measurement, forcing the supervisor to degrade rather than
// retry forever.
package faults

import "fmt"

// Kind identifies one injectable failure of the Figure 3.1 testbed.
type Kind int

const (
	// SNMPStale: the post-run counter read returns the pre-run snapshot
	// (the agent served a cached ifTable row).
	SNMPStale Kind = iota
	// SNMPWrap: the switch's 32-bit ifTable counters sit just below 2³²
	// when the cycle starts and wrap during the run.
	SNMPWrap
	// GenUnderrun: pktgen emits only a fraction of the intended train
	// (the MoonGen observation: generators are imprecise under load).
	GenUnderrun
	// GenStall: pktgen stalls mid-train and never finishes it.
	GenStall
	// SnifferHang: the capturing application hangs; stop.sh collects no
	// statistics for this sniffer.
	SnifferHang
	// SnifferCrash: the capturing application dies mid-run; no statistics.
	SnifferCrash
	// SnifferDead: persistent variant of SnifferCrash — the machine is
	// down for the whole measurement and every retry fails.
	SnifferDead
	// UsageTruncated: the cpusage log of the run is cut short (the
	// profiler died before the generation window ended).
	UsageTruncated
	// SplitterLegLoss: one splitter output leg is degraded; a fraction of
	// the frames the switch counted never reach that sniffer's NIC.
	SplitterLegLoss

	NumKinds
)

// String returns the short fault label used in fault logs and NDJSON
// records.
func (k Kind) String() string {
	switch k {
	case SNMPStale:
		return "snmp-stale"
	case SNMPWrap:
		return "snmp-wrap"
	case GenUnderrun:
		return "gen-underrun"
	case GenStall:
		return "gen-stall"
	case SnifferHang:
		return "sniffer-hang"
	case SnifferCrash:
		return "sniffer-crash"
	case SnifferDead:
		return "sniffer-dead"
	case UsageTruncated:
		return "usage-truncated"
	case SplitterLegLoss:
		return "splitter-leg-loss"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Event is one injected fault occurrence, for the per-point fault log.
type Event struct {
	Rep       int     `json:"rep"`
	Attempt   int     `json:"attempt"`
	Component string  `json:"component"` // "switch", "gen", or a sniffer name
	Kind      Kind    `json:"-"`
	Fault     string  `json:"fault"` // Kind.String(), stable in JSON
	Param     float64 `json:"param,omitempty"`
}

func (e Event) String() string {
	if e.Param != 0 {
		return fmt.Sprintf("rep%d.%d %s:%s(%.2g)", e.Rep, e.Attempt, e.Component, e.Fault, e.Param)
	}
	return fmt.Sprintf("rep%d.%d %s:%s", e.Rep, e.Attempt, e.Component, e.Fault)
}

// Plan is the calibrated fault mix: per-roll probabilities and fault
// magnitudes. The zero Plan injects nothing; DefaultPlan returns the
// chaos-suite mix. All draws are pure functions of Seed and the roll key,
// so concurrent use is safe and replays are exact.
type Plan struct {
	Seed uint64

	PStale      float64 // per (point, rep, attempt): stale SNMP read
	PWrap       float64 // per (point, rep): counters start near the 32-bit wrap
	PUnderrun   float64 // per (point, rep, attempt): generator underrun
	PStall      float64 // per (point, rep, attempt): generator mid-train stall
	PHang       float64 // per (sniffer, point, rep, attempt): hang, no stats
	PCrash      float64 // per (sniffer, point, rep, attempt): crash, no stats
	PTruncUsage float64 // per (sniffer, point, rep, attempt): cpusage log cut
	PLegLoss    float64 // per (sniffer, point, rep): degraded splitter leg
	PDead       float64 // per (sniffer, point): sniffer down for the measurement

	UnderrunFrac float64 // fraction of the train emitted on underrun
	StallFrac    float64 // fraction of the train emitted before a stall
	LegLossRatio float64 // per-frame loss probability on a degraded leg
}

// DefaultPlan returns the calibrated chaos mix: every fault class occurs
// with noticeable frequency over a sweep, transient faults clear within a
// small retry budget with high probability, and persistent faults are rare
// enough that degradation stays the exception.
func DefaultPlan(seed uint64) *Plan {
	return &Plan{
		Seed:         seed,
		PStale:       0.06,
		PWrap:        0.08,
		PUnderrun:    0.05,
		PStall:       0.03,
		PHang:        0.04,
		PCrash:       0.03,
		PTruncUsage:  0.05,
		PLegLoss:     0.04,
		PDead:        0.004,
		UnderrunFrac: 0.7,
		StallFrac:    0.4,
		LegLossRatio: 0.02,
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator — a strong
// 64-bit mixer used to derive independent deterministic draws from
// composite keys.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds the keys into one 64-bit hash, order-sensitively.
func mix(keys ...uint64) uint64 {
	h := uint64(0x8f1bbcdcbfa53e0b)
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	return h
}

// hashString folds a component name into a roll key.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// roll draws a deterministic Bernoulli with probability prob for the key.
func (p *Plan) roll(prob float64, kind Kind, keys ...uint64) bool {
	if p == nil || prob <= 0 {
		return false
	}
	k := append([]uint64{p.Seed, uint64(kind) * 0x9e3779b97f4a7c15}, keys...)
	return unit(mix(k...)) < prob
}

// SnifferFaults are the faults one sniffer exhibits in one cycle attempt.
type SnifferFaults struct {
	Hang, Crash bool
	// Dead marks the persistent failure: set on every attempt of every
	// repetition once the (point, sniffer) dead roll fires.
	Dead bool
	// LegLoss is the per-frame loss probability of this sniffer's splitter
	// leg (0 = healthy). Persists across the attempts of one repetition;
	// LegSeed selects the (equally persistent) drop pattern.
	LegLoss       float64
	LegSeed       uint64
	TruncateUsage bool
}

// Failed reports whether the sniffer returns no statistics at all.
func (f SnifferFaults) Failed() bool { return f.Hang || f.Crash || f.Dead }

// CycleFaults is the full fault assignment of one measurement-cycle
// attempt: what the switch, the generator and each sniffer do wrong.
type CycleFaults struct {
	StaleSNMP bool
	// WrapPreload: start the cycle with the switch counters just below the
	// 32-bit wrap so the delta computation must be wrap-aware.
	WrapPreload bool
	// Underrun is the fraction of the train the generator actually emits
	// (0 = no fault). Stall is reported separately in the event log but
	// shares the truncation mechanics.
	Underrun float64
	Stall    bool
	Sniffers map[string]SnifferFaults
	// Events lists every fault drawn for this attempt, for the fault log.
	Events []Event
}

// Any reports whether the attempt carries at least one injected fault.
func (c CycleFaults) Any() bool { return len(c.Events) > 0 }

// Cycle draws the fault assignment for one attempt of one repetition of
// the measurement cycle at the given point key (callers use the workload
// fingerprint; the testbed uses the base seed). A nil Plan draws nothing.
func (p *Plan) Cycle(point uint64, rep, attempt int, sniffers []string) CycleFaults {
	var cf CycleFaults
	if p == nil {
		return cf
	}
	r := uint64(rep)
	add := func(component string, k Kind, param float64) {
		cf.Events = append(cf.Events, Event{
			Rep: rep, Attempt: attempt, Component: component,
			Kind: k, Fault: k.String(), Param: param,
		})
	}
	if p.Stale(point, rep, attempt) {
		cf.StaleSNMP = true
		add("switch", SNMPStale, 0)
	}
	if p.roll(p.PWrap, SNMPWrap, point, r) {
		cf.WrapPreload = true
		add("switch", SNMPWrap, 0)
	}
	if frac, stall := p.Gen(point, rep, attempt); frac > 0 {
		cf.Underrun = frac
		cf.Stall = stall
		if stall {
			add("gen", GenStall, frac)
		} else {
			add("gen", GenUnderrun, frac)
		}
	}
	for _, name := range sniffers {
		sf := p.Sniffer(name, point, rep, attempt)
		if sf == (SnifferFaults{}) {
			continue
		}
		if cf.Sniffers == nil {
			cf.Sniffers = make(map[string]SnifferFaults, len(sniffers))
		}
		cf.Sniffers[name] = sf
		switch {
		case sf.Dead:
			add(name, SnifferDead, 0)
		case sf.Hang:
			add(name, SnifferHang, 0)
		case sf.Crash:
			add(name, SnifferCrash, 0)
		}
		if sf.LegLoss > 0 {
			add(name, SplitterLegLoss, sf.LegLoss)
		}
		if sf.TruncateUsage {
			add(name, UsageTruncated, 0)
		}
	}
	return cf
}

// Stale draws the stale-SNMP-read fault of one cycle attempt. The key
// carries no component: one control host polls one switch, so every
// sniffer of the cycle sees the same corrupted ground truth. Re-rolled per
// attempt — the retry's fresh SNMP poll usually reads correctly.
func (p *Plan) Stale(point uint64, rep, attempt int) bool {
	if p == nil {
		return false
	}
	return p.roll(p.PStale, SNMPStale, point, uint64(rep), uint64(attempt))
}

// Gen draws the generator-side fault of one cycle attempt: frac > 0 means
// the generator emits only that fraction of the intended train (stall
// distinguishes a mid-train stall from a plain underrun in the fault log).
// Like Stale, the draw is shared by every sniffer of the cycle — there is
// one generator — and re-rolled per attempt.
func (p *Plan) Gen(point uint64, rep, attempt int) (frac float64, stall bool) {
	if p == nil {
		return 0, false
	}
	r, a := uint64(rep), uint64(attempt)
	if p.roll(p.PUnderrun, GenUnderrun, point, r, a) {
		return p.UnderrunFrac, false
	}
	if p.roll(p.PStall, GenStall, point, r, a) {
		return p.StallFrac, true
	}
	return 0, false
}

// Sniffer draws the fault assignment of one sniffer for one cycle attempt
// — the per-cell form the parallel sweep engine uses, where every
// (system, rate, repetition) cell is one independent sniffer run.
func (p *Plan) Sniffer(name string, point uint64, rep, attempt int) SnifferFaults {
	var sf SnifferFaults
	if p == nil {
		return sf
	}
	c, r, a := hashString(name), uint64(rep), uint64(attempt)
	// Persistent death: keyed by (point, sniffer) only.
	if p.roll(p.PDead, SnifferDead, point, c) {
		sf.Dead = true
		return sf
	}
	if p.roll(p.PHang, SnifferHang, point, c, r, a) {
		sf.Hang = true
	} else if p.roll(p.PCrash, SnifferCrash, point, c, r, a) {
		sf.Crash = true
	}
	// A degraded leg does not heal on retry: keyed without the attempt.
	if p.roll(p.PLegLoss, SplitterLegLoss, point, c, r) {
		sf.LegLoss = p.LegLossRatio
		sf.LegSeed = p.LegSeed(name, point, rep)
	}
	if p.roll(p.PTruncUsage, UsageTruncated, point, c, r, a) {
		sf.TruncateUsage = true
	}
	return sf
}

// LegSeed derives the per-leg drop-pattern seed for a lossy splitter leg,
// so the same (plan, point, sniffer, rep) always loses the same frames.
func (p *Plan) LegSeed(name string, point uint64, rep int) uint64 {
	if p == nil {
		return 0
	}
	return mix(p.Seed, hashString(name), point, uint64(rep), 0x5eed1e9)
}
