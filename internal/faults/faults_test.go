package faults

import (
	"math"
	"testing"

	"repro/internal/pktgen"
	"repro/internal/sim"
)

func TestFaultDrawsAreDeterministic(t *testing.T) {
	p1 := DefaultPlan(42)
	p2 := DefaultPlan(42)
	sniffers := []string{"swan", "snipe", "moorhen", "flamingo"}
	for rep := 0; rep < 20; rep++ {
		for attempt := 0; attempt < 3; attempt++ {
			a := p1.Cycle(7, rep, attempt, sniffers)
			b := p2.Cycle(7, rep, attempt, sniffers)
			if len(a.Events) != len(b.Events) {
				t.Fatalf("rep %d attempt %d: %v vs %v", rep, attempt, a.Events, b.Events)
			}
			for i := range a.Events {
				if a.Events[i] != b.Events[i] {
					t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
				}
			}
		}
	}
}

func TestFaultSeedChangesDraws(t *testing.T) {
	sniffers := []string{"swan", "snipe", "moorhen", "flamingo"}
	countEvents := func(seed uint64) int {
		p := DefaultPlan(seed)
		n := 0
		for rep := 0; rep < 50; rep++ {
			n += len(p.Cycle(1, rep, 0, sniffers).Events)
		}
		return n
	}
	if countEvents(1) == 0 {
		t.Fatal("default plan injected nothing over 50 cycles")
	}
	same := true
	for seed := uint64(2); seed < 6; seed++ {
		if countEvents(seed) != countEvents(1) {
			same = false
		}
	}
	if same {
		t.Fatal("fault draws identical across 5 seeds")
	}
}

func TestFaultPersistenceClasses(t *testing.T) {
	p := DefaultPlan(0)
	p.PHang, p.PCrash, p.PDead, p.PStale, p.PUnderrun, p.PStall, p.PTruncUsage = 0, 0, 0, 0, 0, 0, 0
	p.PLegLoss = 1 // every (sniffer, point, rep) leg degraded
	a0 := p.Sniffer("swan", 3, 2, 0)
	a1 := p.Sniffer("swan", 3, 2, 1)
	if a0.LegLoss == 0 || a0.LegLoss != a1.LegLoss {
		t.Fatalf("leg loss must persist across attempts: %v vs %v", a0, a1)
	}
	p.PLegLoss = 0
	p.PDead = 1
	for rep := 0; rep < 3; rep++ {
		for attempt := 0; attempt < 3; attempt++ {
			if !p.Sniffer("swan", 3, rep, attempt).Dead {
				t.Fatalf("dead sniffer healed at rep %d attempt %d", rep, attempt)
			}
		}
	}
	// Transient faults must be re-rolled per attempt: with p = 0.5 over 64
	// attempts, at least one draw must differ from the first.
	p.PDead = 0
	p.PHang = 0.5
	first := p.Sniffer("swan", 3, 0, 0).Hang
	varied := false
	for attempt := 1; attempt < 64; attempt++ {
		if p.Sniffer("swan", 3, 0, attempt).Hang != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("hang draw did not vary over 64 attempts at p=0.5")
	}
}

func TestFaultNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	cf := p.Cycle(1, 0, 0, []string{"swan"})
	if cf.Any() || cf.Sniffers != nil {
		t.Fatalf("nil plan produced faults: %+v", cf)
	}
	if sf := p.Sniffer("swan", 1, 0, 0); sf != (SnifferFaults{}) {
		t.Fatalf("nil plan produced sniffer faults: %+v", sf)
	}
}

func TestFaultRollFrequency(t *testing.T) {
	p := &Plan{Seed: 9}
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if p.roll(0.1, SnifferHang, uint64(i)) {
			n++
		}
	}
	got := float64(n) / trials
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("empirical probability %.4f, want ≈0.10", got)
	}
}

// sliceSource replays a fixed packet list (test stand-in for a feed).
type sliceSource struct {
	pkts []pktgen.Packet
	i    int
}

func (s *sliceSource) Reset() { s.i = 0 }
func (s *sliceSource) Next() (pktgen.Packet, bool) {
	if s.i >= len(s.pkts) {
		return pktgen.Packet{}, false
	}
	p := s.pkts[s.i]
	s.i++
	return p, true
}

func mkTrain(n int) []pktgen.Packet {
	pkts := make([]pktgen.Packet, n)
	data := make([]byte, 64)
	for i := range pkts {
		pkts[i] = pktgen.Packet{At: sim.Time(1000 * (i + 1)), Data: data, Seq: uint64(i)}
	}
	return pkts
}

func TestFaultLossySourceDeterministicAndCounted(t *testing.T) {
	train := mkTrain(5000)
	run := func() (kept int, lost int, lostBytes uint64) {
		s := NewLossySource(&sliceSource{pkts: train}, 77, 0.1)
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			kept++
		}
		return kept, s.Lost, s.LostBytes
	}
	k1, l1, b1 := run()
	k2, l2, b2 := run()
	if k1 != k2 || l1 != l2 || b1 != b2 {
		t.Fatalf("lossy leg not reproducible: %d/%d vs %d/%d", k1, l1, k2, l2)
	}
	if k1+l1 != 5000 {
		t.Fatalf("kept %d + lost %d != 5000", k1, l1)
	}
	if b1 != uint64(l1)*64 {
		t.Fatalf("lost bytes %d for %d frames of 64 B", b1, l1)
	}
	frac := float64(l1) / 5000
	if math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("loss fraction %.4f, want ≈0.10", frac)
	}
	// Reset must clear the accounting and reproduce the same pattern.
	s := NewLossySource(&sliceSource{pkts: train}, 77, 0.1)
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	s.Reset()
	if s.Lost != 0 || s.LostBytes != 0 {
		t.Fatal("Reset did not clear loss accounting")
	}
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != k1 || s.Lost != l1 {
		t.Fatalf("replay after Reset diverged: kept %d lost %d", n, s.Lost)
	}
}

func TestFaultTruncatedSourceCountsShortfall(t *testing.T) {
	train := mkTrain(1000)
	s := NewTruncatedSource(&sliceSource{pkts: train}, 700)
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 700 {
		t.Fatalf("emitted %d frames, want 700", n)
	}
	if s.Cut != 300 || s.CutBytes != 300*64 {
		t.Fatalf("shortfall = %d pkts / %d bytes, want 300 / %d", s.Cut, s.CutBytes, 300*64)
	}
	// Asking again stays exhausted without re-draining.
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source yielded a frame")
	}
	if s.Cut != 300 {
		t.Fatalf("double drain: Cut = %d", s.Cut)
	}
	s.Reset()
	if s.Cut != 0 || s.CutBytes != 0 {
		t.Fatal("Reset did not clear shortfall")
	}
}
