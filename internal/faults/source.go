package faults

import (
	"repro/internal/capture"
	"repro/internal/pktgen"
	"repro/internal/sim"
)

// LossySource wraps a packet source as a degraded splitter leg: each frame
// is independently dropped with the configured probability, decided by a
// deterministic per-frame hash so the same (seed, train) loses the same
// frames on every replay. The dropped packet and byte counts are the
// numbers the supervisor books under the fault-splitter ledger cause.
type LossySource struct {
	src   capture.Source
	seed  uint64
	ratio float64

	idx       uint64
	Lost      int
	LostBytes uint64
	LastAt    sim.Time // arrival time of the last frame seen (kept or lost)
}

// NewLossySource wraps src with per-frame loss probability ratio.
func NewLossySource(src capture.Source, seed uint64, ratio float64) *LossySource {
	return &LossySource{src: src, seed: seed, ratio: ratio}
}

// Reset rewinds the leg, clearing the loss accounting.
func (s *LossySource) Reset() {
	s.src.Reset()
	s.idx, s.Lost, s.LostBytes, s.LastAt = 0, 0, 0, 0
}

// Next returns the next frame that survives the leg.
func (s *LossySource) Next() (pktgen.Packet, bool) {
	for {
		p, ok := s.src.Next()
		if !ok {
			return pktgen.Packet{}, false
		}
		s.LastAt = p.At
		i := s.idx
		s.idx++
		if unit(mix(s.seed, i)) < s.ratio {
			s.Lost++
			s.LostBytes += uint64(len(p.Data))
			continue
		}
		return p, true
	}
}

// TruncatedSource wraps a packet source as an underrunning or stalling
// generator: only the first Limit frames are emitted. The frames the
// generator owed but never sent are counted (by draining the tail on
// exhaustion) so a normalized repetition can book them under the
// fault-generator cause.
type TruncatedSource struct {
	src   capture.Source
	limit int

	n        int
	drained  bool
	Cut      int
	CutBytes uint64
	LastAt   sim.Time
}

// NewTruncatedSource emits only the first limit frames of src.
func NewTruncatedSource(src capture.Source, limit int) *TruncatedSource {
	if limit < 0 {
		limit = 0
	}
	return &TruncatedSource{src: src, limit: limit}
}

// Reset rewinds the train, clearing the shortfall accounting.
func (s *TruncatedSource) Reset() {
	s.src.Reset()
	s.n, s.drained, s.Cut, s.CutBytes, s.LastAt = 0, false, 0, 0, 0
}

// Next returns the next frame, or false once the truncation point is hit.
func (s *TruncatedSource) Next() (pktgen.Packet, bool) {
	if s.n >= s.limit {
		if !s.drained {
			s.drained = true
			for {
				p, ok := s.src.Next()
				if !ok {
					break
				}
				s.Cut++
				s.CutBytes += uint64(len(p.Data))
			}
		}
		return pktgen.Packet{}, false
	}
	p, ok := s.src.Next()
	if !ok {
		return pktgen.Packet{}, false
	}
	s.n++
	s.LastAt = p.At
	return p, true
}
