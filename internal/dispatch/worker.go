// Worker side of the dispatch protocol: a stateless measurement
// process that discovers the coordinator, verifies it is serving the
// same campaign (fingerprint match is mandatory — a worker measuring
// under different options would poison the journal), then loops:
// lease, measure, complete, until the coordinator says the campaign is
// done.
//
// Workers hold no shard assignment and no campaign state, so any number
// can join or die at any time. A worker enumerates each experiment's
// cell space locally from its own Options (experiments.EnumerateCells)
// and resolves leased cell keys against it; the fingerprint guarantees
// both sides enumerate identical cells.
package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// Worker defaults.
const (
	// DefaultPoll is the idle re-poll interval when no cells are
	// leasable.
	DefaultPoll = 200 * time.Millisecond
	// DefaultHeartbeat is the lease keep-alive interval; it must be
	// comfortably under the coordinator's lease TTL.
	DefaultHeartbeat = 1 * time.Second
	// DefaultConnectWait bounds how long a starting worker waits for the
	// coordinator to answer discovery.
	DefaultConnectWait = 60 * time.Second
	// DefaultClientTimeout caps a whole HTTP exchange on the worker's
	// default client — without it a slow-loris coordinator (or a fault
	// injector impersonating one) can pin a worker forever.
	DefaultClientTimeout = 15 * time.Second
	// DefaultCallTimeout is the per-request context deadline layered
	// under the client timeout; one protocol call never outlives it.
	DefaultCallTimeout = 10 * time.Second
	// DefaultCallRetries is how many times a lease/complete call is
	// retried in place (with backoff) before the caller's own
	// miss-handling takes over.
	DefaultCallRetries = 3
	// DefaultRetryBackoff is the base backoff between in-place retries;
	// it doubles per attempt with deterministic jitter.
	DefaultRetryBackoff = 50 * time.Millisecond
	// shutdownGrace is how many consecutive transport errors a worker
	// tolerates after first contact before concluding the coordinator
	// exited (the normal end of a campaign whose final lease went to
	// someone else).
	shutdownGrace = 30
)

// defaultWorkerClient replaces the old http.DefaultClient fallback,
// which has no timeout at all.
var defaultWorkerClient = &http.Client{Timeout: DefaultClientTimeout}

// FingerprintMismatchError is the worker-side typed refusal: this
// worker's options hash to a different campaign than the coordinator is
// serving. The CLI maps it to exit code 2 (usage error) — it means the
// operator started the worker with misaligned flags.
type FingerprintMismatchError struct{ Mine, Theirs string }

func (e *FingerprintMismatchError) Error() string {
	return fmt.Sprintf("dispatch: refusing lease: coordinator campaign fingerprint %.12s… does not match this worker's options (%.12s…) — align -packets/-reps/-seed/-rates/-policy with the coordinator",
		e.Theirs, e.Mine)
}

// Worker runs the lease-measure-complete loop against a coordinator.
type Worker struct {
	// ID names this worker in leases, events, and metrics.
	ID string
	// BaseURL is the coordinator's HTTP root, e.g. "http://host:8344".
	BaseURL string
	// Options are this worker's experiment options. Their fingerprint
	// must match the coordinator's; runtime knobs (Ctx, Journal,
	// Observer, Executor) are ignored — Parallelism is honored for the
	// worker's own cell runs.
	Options experiments.Options

	Client      *http.Client  // nil = a shared client with DefaultClientTimeout
	Poll        time.Duration // 0 = DefaultPoll
	Heartbeat   time.Duration // 0 = DefaultHeartbeat
	ConnectWait time.Duration // 0 = DefaultConnectWait
	CallTimeout time.Duration // per-request deadline; 0 = DefaultCallTimeout
	Retries     int           // in-place retries per call; 0 = DefaultCallRetries, <0 = none
	Backoff     time.Duration // base retry backoff; 0 = DefaultRetryBackoff
	// Breaker gates every coordinator call; nil builds one with the
	// defaults at Run time.
	Breaker  *Breaker
	MaxCells int // per-lease cell cap to request; 0 = coordinator default
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)

	fingerprint string
	campaign    string
	sets        map[string]*experiments.CellSet
	feeds       map[string]*core.FeedCache
	jitter      uint64 // splitmix64 state for retry jitter, seeded from ID
	jmu         sync.Mutex
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return defaultWorkerClient
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

// Run executes the worker loop until the campaign completes (nil), ctx
// is cancelled (ctx.Err()), or the coordinator refuses this worker
// (*FingerprintMismatchError, quarantine). A coordinator that vanishes
// after first contact is treated as a completed campaign: the normal
// shutdown race when the final lease was someone else's.
func (w *Worker) Run(ctx context.Context) error {
	var err error
	w.fingerprint, err = experiments.Fingerprint(w.Options)
	if err != nil {
		return err
	}
	w.sets = map[string]*experiments.CellSet{}
	w.feeds = map[string]*core.FeedCache{}
	if w.Breaker == nil {
		w.Breaker = NewBreaker(0, 0)
	}
	w.jitter = hash64(w.ID) | 1

	if err := w.awaitCoordinator(ctx); err != nil {
		return err
	}
	w.logf("worker %s: joined campaign %s", w.ID, w.campaign)

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx)

	return w.leaseLoop(ctx)
}

// awaitCoordinator polls discovery until the coordinator answers,
// verifying the fingerprint before any lease is requested. A mismatch
// must be seen on consecutive polls before it is believed: a single
// corrupted response (injected or real) must not permanently turn away
// a correctly configured worker.
func (w *Worker) awaitCoordinator(ctx context.Context) error {
	deadline := time.Now().Add(w.connectWait())
	mismatches := 0
	for {
		info, err := w.discover(ctx)
		if err == nil {
			if info.Fingerprint != w.fingerprint {
				mismatches++
				if mismatches >= 3 {
					return &FingerprintMismatchError{Mine: w.fingerprint, Theirs: info.Fingerprint}
				}
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(w.poll()):
				}
				continue
			}
			w.campaign = info.Campaign
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dispatch: no coordinator at %s after %s: %w", w.BaseURL, w.connectWait(), err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.poll()):
		}
	}
}

func (w *Worker) connectWait() time.Duration {
	if w.ConnectWait > 0 {
		return w.ConnectWait
	}
	return DefaultConnectWait
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return DefaultPoll
}

func (w *Worker) heartbeat() time.Duration {
	if w.Heartbeat > 0 {
		return w.Heartbeat
	}
	return DefaultHeartbeat
}

func (w *Worker) callTimeout() time.Duration {
	if w.CallTimeout > 0 {
		return w.CallTimeout
	}
	return DefaultCallTimeout
}

func (w *Worker) retries() int {
	switch {
	case w.Retries > 0:
		return w.Retries
	case w.Retries < 0:
		return 0
	default:
		return DefaultCallRetries
	}
}

func (w *Worker) backoff() time.Duration {
	if w.Backoff > 0 {
		return w.Backoff
	}
	return DefaultRetryBackoff
}

// hash64 is FNV-1a, used to seed the per-worker jitter stream so two
// workers retrying the same outage do not march in lockstep.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// nextJitter draws a deterministic fraction in [0,1) from the worker's
// splitmix64 stream.
func (w *Worker) nextJitter() float64 {
	w.jmu.Lock()
	defer w.jmu.Unlock()
	w.jitter += 0x9e3779b97f4a7c15
	z := w.jitter
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// retryDelay is the backoff before retry attempt (1-based): base·2^(a-1)
// scaled by a deterministic jitter factor in [0.5, 1.5).
func (w *Worker) retryDelay(attempt int) time.Duration {
	d := w.backoff() << uint(attempt-1)
	return time.Duration(float64(d) * (0.5 + w.nextJitter()))
}

func (w *Worker) discover(ctx context.Context) (*infoResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, w.callTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.BaseURL+"/api/dispatch", nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dispatch: discovery: HTTP %d", resp.StatusCode)
	}
	var info infoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

func (w *Worker) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(w.heartbeat())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.post(ctx, "heartbeat", heartbeatRequest{Worker: w.ID}, nil)
		}
	}
}

// leaseLoop is the worker's main loop. Transport errors after first
// contact are tolerated up to shutdownGrace consecutive failures — a
// coordinator that finished and exited stops answering, and that is a
// success, not a failure.
func (w *Worker) leaseLoop(ctx context.Context) error {
	misses := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var l GrantedLease
		status, err := w.postRetry(ctx, "lease", leaseRequest{
			Worker: w.ID, Fingerprint: w.fingerprint, Max: w.MaxCells,
		}, &l)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			misses++
			if misses >= shutdownGrace {
				w.logf("worker %s: coordinator gone; assuming campaign finished", w.ID)
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.poll()):
			}
			continue
		}
		misses = 0
		switch status {
		case http.StatusOK:
			if err := w.serveLease(ctx, &l); err != nil {
				return err
			}
		case http.StatusNoContent:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.poll()):
			}
		case http.StatusGone:
			w.logf("worker %s: campaign complete", w.ID)
			return nil
		case http.StatusNotFound:
			// The campaign id may be stale — learned from a corrupted
			// discovery response, or the coordinator restarted with a new
			// campaign. Re-discover (fingerprint still must match) and
			// treat it as a miss.
			if info, derr := w.discover(ctx); derr == nil && info.Fingerprint == w.fingerprint {
				w.campaign = info.Campaign
			}
			misses++
			if misses >= shutdownGrace {
				w.logf("worker %s: campaign unknown to coordinator; giving up", w.ID)
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.poll()):
			}
		case http.StatusConflict:
			return &FingerprintMismatchError{Mine: w.fingerprint}
		case http.StatusForbidden:
			return fmt.Errorf("dispatch: worker %s was quarantined by the coordinator", w.ID)
		default:
			return fmt.Errorf("dispatch: lease request: HTTP %d", status)
		}
	}
}

// serveLease measures a lease's cells and reports the outcomes.
func (w *Worker) serveLease(ctx context.Context, l *GrantedLease) error {
	set, err := w.cellSet(l.Experiment)
	if err != nil {
		return err
	}
	var cells []core.Cell
	var okIdx []int
	var failed []core.CellKey
	for _, k := range l.Keys {
		i, ok := set.Find(k)
		if !ok {
			// Enumeration disagrees despite a matching fingerprint: a
			// bug, but one cell's worth — report it failed, keep going.
			failed = append(failed, k)
			continue
		}
		cells = append(cells, set.Cells[i])
		okIdx = append(okIdx, i)
	}
	var recs []Record
	if len(cells) > 0 {
		feeds := w.feeds[l.Experiment]
		if feeds == nil {
			feeds = core.NewFeedCache(core.DefaultFeedCacheSize)
			w.feeds[l.Experiment] = feeds
		}
		sts, errs := core.RunCellsWithCache(ctx, cells, w.Options.Parallelism, feeds)
		for bi, i := range okIdx {
			k := core.CellKey{Experiment: l.Experiment, Point: set.IDs[i].Point,
				System: set.Cells[i].Cfg.Name, Rep: set.IDs[i].Rep}
			if errs[bi] != nil {
				failed = append(failed, k)
				continue
			}
			recs = append(recs, Record{Key: k, Out: core.CellOutcome{
				Stats: sts[bi], OK: true, Attempts: 1,
			}})
		}
	}
	if err := ctx.Err(); err != nil {
		return err // don't report partial work on cancellation; the lease will expire
	}
	w.logf("worker %s: lease %d: %d cells measured, %d failed", w.ID, l.ID, len(recs), len(failed))
	status, err := w.postRetry(ctx, "complete", completeRequest{
		Worker: w.ID, Fingerprint: w.fingerprint, Lease: l.ID,
		Records: recs, Failed: failed,
	}, nil)
	if err != nil {
		// The completion is lost; the lease expires and the cells are
		// re-dispatched. Correct, just wasteful — keep going.
		w.logf("worker %s: completion of lease %d failed: %v", w.ID, l.ID, err)
		return nil
	}
	if status == http.StatusConflict {
		return &FingerprintMismatchError{Mine: w.fingerprint}
	}
	return nil
}

// cellSet lazily enumerates (and caches) one experiment's cell space.
func (w *Worker) cellSet(id string) (*experiments.CellSet, error) {
	if s := w.sets[id]; s != nil {
		return s, nil
	}
	s, err := experiments.EnumerateCells(id, w.Options)
	if err != nil {
		return nil, err
	}
	w.sets[id] = s
	return s, nil
}

// post sends one JSON request to a campaign-scoped endpoint and decodes
// the response into out when it is 200 and out is non-nil. It returns
// the HTTP status; transport-level failures return an error. Every call
// runs under its own deadline and through the worker's circuit breaker:
// an open breaker fails fast with ErrBreakerOpen and no network
// traffic. Any response from the coordinator — even a 4xx — closes the
// breaker; transport errors, 5xx, and undecodable 200s open it.
func (w *Worker) post(ctx context.Context, verb string, body, out any) (int, error) {
	if w.Breaker != nil && !w.Breaker.Allow() {
		return 0, fmt.Errorf("dispatch: %s: %w", verb, ErrBreakerOpen)
	}
	status, err := w.post1(ctx, verb, body, out)
	if w.Breaker != nil {
		if err != nil || status >= 500 {
			w.Breaker.Failure()
		} else {
			w.Breaker.Success()
		}
	}
	return status, err
}

func (w *Worker) post1(ctx context.Context, verb string, body, out any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(ctx, w.callTimeout())
	defer cancel()
	url := fmt.Sprintf("%s/api/campaigns/%s/%s", w.BaseURL, w.campaign, verb)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("dispatch: %s: undecodable response: %w", verb, err)
		}
	}
	return resp.StatusCode, nil
}

// postRetry is post with bounded in-place retries: transport errors,
// 5xx statuses, and undecodable 200 bodies are retried with doubling,
// jittered backoff. Both calls that use it are idempotent on the
// coordinator — a replayed lease request just grants a fresh lease (the
// orphan expires), and replayed completions resolve last-write-wins —
// so retrying after an ambiguous failure (request may or may not have
// been processed) is always safe.
func (w *Worker) postRetry(ctx context.Context, verb string, body, out any) (int, error) {
	var status int
	var err error
	for attempt := 0; ; attempt++ {
		status, err = w.post(ctx, verb, body, out)
		if err == nil && status < 500 {
			return status, nil
		}
		if err == nil {
			err = fmt.Errorf("dispatch: %s: HTTP %d", verb, status)
		}
		if attempt >= w.retries() || ctx.Err() != nil {
			return status, err
		}
		select {
		case <-ctx.Done():
			return status, ctx.Err()
		case <-time.After(w.retryDelay(attempt + 1)):
		}
	}
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
