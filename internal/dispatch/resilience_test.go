// Tests for the resilient-transport layer: the circuit breaker, the
// worker's bounded in-place retries, the default client timeout, and
// the coordinator's request validation.
package dispatch

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestBreakerLifecycle walks the breaker through its full state machine
// on an injected clock: closed → open at the threshold → fail-fast
// during cooldown → half-open single probe → closed on probe success,
// and re-open on probe failure.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	// Below the threshold the breaker stays closed.
	b.Failure()
	b.Failure()
	if !b.Allow() || b.State() != "closed" {
		t.Fatalf("breaker opened below threshold: %s", b.State())
	}
	// A success resets the failure run.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != "closed" {
		t.Fatal("success did not reset the failure run")
	}
	// The threshold run opens it.
	b.Failure()
	if b.State() != "open" || b.Trips() != 1 {
		t.Fatalf("state=%s trips=%d after threshold run, want open/1", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call inside the cooldown")
	}
	// Cooldown elapsed: exactly one probe goes out.
	now = now.Add(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe failure re-opens immediately, counting a new trip.
	b.Failure()
	if b.State() != "open" || b.Trips() != 2 {
		t.Fatalf("failed probe: state=%s trips=%d, want open/2", b.State(), b.Trips())
	}
	// Next cooldown, probe succeeds: closed and fully reset.
	now = now.Add(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != "closed" || !b.Allow() {
		t.Fatalf("successful probe left breaker %s", b.State())
	}
}

// TestWorkerDefaultClientHasTimeout: a worker with no explicit Client
// must not fall back to a timeout-less client (the old
// http.DefaultClient behavior a slow coordinator could pin forever).
func TestWorkerDefaultClientHasTimeout(t *testing.T) {
	w := &Worker{ID: "w"}
	c := w.client()
	if c.Timeout != DefaultClientTimeout {
		t.Fatalf("default client timeout = %v, want %v", c.Timeout, DefaultClientTimeout)
	}
	if c == http.DefaultClient {
		t.Fatal("worker fell back to http.DefaultClient")
	}
}

// TestPostRetrySurvivesTransientFailures: a call that hits transient
// 5xx responses succeeds once the coordinator recovers, within the
// retry budget and without surfacing the intermediate failures.
func TestPostRetrySurvivesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"campaign":"c","fingerprint":"f"}`))
	}))
	defer srv.Close()

	w := &Worker{ID: "w", BaseURL: srv.URL, Backoff: time.Millisecond, campaign: "c"}
	w.jitter = hash64(w.ID) | 1
	var out infoResponse
	status, err := w.postRetry(context.Background(), "lease", heartbeatRequest{Worker: "w"}, &out)
	if err != nil || status != http.StatusOK {
		t.Fatalf("postRetry = %d, %v after recovery", status, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + success)", got)
	}
	if out.Campaign != "c" {
		t.Fatalf("decoded %+v", out)
	}
}

// TestPostRetryBudgetExhausted: a persistently failing coordinator
// exhausts the bounded budget — 1 initial + Retries attempts — and the
// final error surfaces.
func TestPostRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	w := &Worker{ID: "w", BaseURL: srv.URL, Backoff: time.Millisecond, Retries: 2, campaign: "c"}
	w.jitter = hash64(w.ID) | 1
	status, err := w.postRetry(context.Background(), "lease", heartbeatRequest{Worker: "w"}, nil)
	if err == nil {
		t.Fatalf("postRetry succeeded against a dead coordinator (status %d)", status)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestBreakerFailsFastWithoutTraffic: once the worker's breaker opens,
// further calls return ErrBreakerOpen without touching the network.
func TestBreakerFailsFastWithoutTraffic(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	w := &Worker{
		ID: "w", BaseURL: srv.URL, Retries: -1, campaign: "c",
		Breaker: NewBreaker(2, time.Hour),
	}
	w.jitter = hash64(w.ID) | 1
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := w.post(ctx, "lease", heartbeatRequest{Worker: "w"}, nil); err != nil {
			t.Fatalf("call %d: transport error %v (5xx should return status)", i, err)
		}
	}
	before := calls.Load()
	_, err := w.post(ctx, "lease", heartbeatRequest{Worker: "w"}, nil)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("post with open breaker = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still sent network traffic")
	}
}

// TestRetryDelayJitterDeterministic: the retry backoff doubles per
// attempt with a jitter factor in [0.5, 1.5), and two workers with
// different IDs draw different jitter streams.
func TestRetryDelayJitterDeterministic(t *testing.T) {
	mk := func(id string) *Worker {
		w := &Worker{ID: id, Backoff: 100 * time.Millisecond}
		w.jitter = hash64(id) | 1
		return w
	}
	a, b := mk("w1"), mk("w1")
	var diverged bool
	for attempt := 1; attempt <= 6; attempt++ {
		da, db := a.retryDelay(attempt), b.retryDelay(attempt)
		if da != db {
			t.Fatalf("same worker ID, attempt %d: %v vs %v", attempt, da, db)
		}
		base := 100 * time.Millisecond << uint(attempt-1)
		if da < base/2 || da >= base*3/2 {
			t.Fatalf("attempt %d delay %v outside [%v, %v)", attempt, da, base/2, base*3/2)
		}
		if da != mk("w2").retryDelay(attempt) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different worker IDs drew identical jitter streams")
	}
}

// TestCoordinatorRequestValidation: garbage requests — malformed JSON,
// unknown fields, oversized bodies, out-of-range lease caps, corrupt
// cell keys — are refused with 400 and never reach campaign state.
func TestCoordinatorRequestValidation(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk)
	mux := http.NewServeMux()
	c.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	post := func(verb, body string) int {
		resp, err := http.Post(srv.URL+"/api/campaigns/test-campaign/"+verb,
			"application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", verb, err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	cases := []struct {
		name, verb, body string
	}{
		{"malformed json", "lease", `{"worker": `},
		{"unknown field", "lease", `{"worker":"w","fingerprint":"f","bogus":1}`},
		{"missing worker", "lease", `{"fingerprint":"f"}`},
		{"negative max", "lease", `{"worker":"w","fingerprint":"f","max":-1}`},
		{"huge max", "lease", `{"worker":"w","fingerprint":"f","max":70000}`},
		{"oversized body", "heartbeat", `{"worker":"` + strings.Repeat("x", 8<<10) + `"}`},
		{"empty experiment key", "complete",
			`{"worker":"w","fingerprint":"f","lease":1,"failed":[{"experiment":"","system":"s","point":0,"rep":0}]}`},
		{"absurd rep", "complete",
			`{"worker":"w","fingerprint":"f","lease":1,"records":[{"key":{"experiment":"e","system":"s","point":0,"rep":9999999},"out":{}}]}`},
	}
	for _, tc := range cases {
		if status := post(tc.verb, tc.body); status != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, status)
		}
	}

	// Sanity: a well-formed lease request on the idle coordinator still
	// gets through validation (204: nothing queued yet).
	if status := post("lease", `{"worker":"w","fingerprint":"`+c.Fingerprint+`"}`); status != http.StatusNoContent {
		t.Fatalf("valid lease request: HTTP %d, want 204", status)
	}
}

// TestValidKeyShapes pins the key validator's accept/reject line.
func TestValidKeyShapes(t *testing.T) {
	good := core.CellKey{Experiment: "fig6.2", System: "swan", Point: 3, Rep: 1}
	if msg := validKey(good); msg != "" {
		t.Fatalf("valid key rejected: %s", msg)
	}
	bad := []core.CellKey{
		{Experiment: "", System: "s"},
		{Experiment: strings.Repeat("e", 129), System: "s"},
		{Experiment: "e", System: ""},
		{Experiment: "e", System: strings.Repeat("s", 129)},
		{Experiment: "e", System: "s", Rep: -1},
		{Experiment: "e", System: "s", Rep: 1<<20 + 1},
	}
	for i, k := range bad {
		if validKey(k) == "" {
			t.Errorf("bad key %d accepted: %+v", i, k)
		}
	}
}
