// Circuit breaker for the worker's coordinator calls. A worker facing a
// partitioned or dead coordinator must not hammer the network with
// per-call retry storms: after a run of consecutive failures the
// breaker opens and calls fail fast without touching the wire; after a
// cooldown it half-opens and admits a single probe. The probe's outcome
// decides — success closes the breaker, failure re-opens it for another
// cooldown. The worker keeps polling at its usual cadence either way
// (the coordinator's local fallback guarantees campaign termination
// even if a worker never comes back), so the breaker costs liveness
// nothing; it only converts a retry storm into a quiet wait.
package dispatch

import (
	"errors"
	"sync"
	"time"
)

// Breaker defaults.
const (
	// DefaultBreakerThreshold is the consecutive-failure run that opens
	// the breaker.
	DefaultBreakerThreshold = 8
	// DefaultBreakerCooldown is how long an open breaker fails fast
	// before admitting a half-open probe.
	DefaultBreakerCooldown = 2 * time.Second
)

// ErrBreakerOpen is returned (wrapped) by calls refused while the
// breaker is open: no network traffic happened.
var ErrBreakerOpen = errors.New("dispatch: circuit breaker open")

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker. The zero value is
// not usable; NewBreaker applies the defaults. Safe for concurrent use
// (the worker's lease loop and heartbeat loop share one).
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injected by tests

	state    breakerState
	failures int
	until    time.Time // open until (state == breakerOpen)
	probing  bool      // a half-open probe is in flight
	trips    uint64
}

// NewBreaker builds a breaker; threshold 0 and cooldown 0 mean the
// defaults.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may go out. Open: false until the
// cooldown elapses, then the breaker half-opens and admits exactly one
// probe; further calls keep failing fast until the probe reports.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Before(b.until) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a completed call: it closes the breaker and resets
// the failure run.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a failed call: it extends the failure run and opens
// the breaker at the threshold (a failed half-open probe re-opens it
// immediately).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.probing = false
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		if b.state != breakerOpen {
			b.trips++
		}
		b.state = breakerOpen
		b.until = b.now().Add(b.cooldown)
	}
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// State returns the breaker's current state name ("closed", "open",
// "half-open"), for logs and tests.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
