// HTTP face of the dispatch protocol, mounted on the same mux as the
// monitoring API. Three verbs, all campaign-scoped:
//
//	POST /api/campaigns/{id}/lease      — request a batch of cells
//	POST /api/campaigns/{id}/complete   — report a lease's outcomes
//	POST /api/campaigns/{id}/heartbeat  — keep held leases alive
//
// plus GET /api/dispatch for worker discovery (campaign id and
// fingerprint). Refusals are typed by status: 409 for a fingerprint
// mismatch (the worker's options hash differently — a worker bug or a
// misaligned flag set, never retryable), 403 for a quarantined worker,
// 410 once the campaign is complete, 204 when nothing is leasable right
// now.
package dispatch

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// leaseRequest is a worker asking for cells.
type leaseRequest struct {
	Worker      string `json:"worker"`
	Fingerprint string `json:"fingerprint"`
	Max         int    `json:"max,omitempty"`
}

// completeRequest reports the outcome of a lease. Records carries the
// measured cells; Failed lists cells the worker attempted but could not
// measure (they re-enter the dispatch queue immediately).
type completeRequest struct {
	Worker      string         `json:"worker"`
	Fingerprint string         `json:"fingerprint"`
	Lease       uint64         `json:"lease"`
	Records     []Record       `json:"records,omitempty"`
	Failed      []core.CellKey `json:"failed,omitempty"`
	Error       string         `json:"error,omitempty"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
}

// infoResponse answers worker discovery.
type infoResponse struct {
	Campaign    string `json:"campaign"`
	Fingerprint string `json:"fingerprint"`
	Done        bool   `json:"done"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Request body caps. Lease and heartbeat requests are tiny; completions
// carry the measured records of one lease batch and get headroom. A
// client that streams more than the cap is cut off with 400, not fed to
// the decoder forever.
const (
	maxSmallBody    = 4 << 10
	maxCompleteBody = 16 << 20
	// maxLeaseCap bounds the per-lease cell count a request may ask for;
	// it exists purely as input validation, real batch sizing is the
	// coordinator's MaxLease.
	maxLeaseCap = 1 << 16
)

// validKey sanity-checks a worker-reported cell key. Keys are matched
// against the coordinator's own enumeration later (unknown keys are
// dropped there); this guards the obviously-garbage shapes a corrupted
// or malicious request could carry.
func validKey(k core.CellKey) string {
	switch {
	case k.Experiment == "" || len(k.Experiment) > 128:
		return "has a bad experiment name"
	case k.System == "" || len(k.System) > 128:
		return "has a bad system name"
	case k.Rep < 0 || k.Rep > 1<<20:
		return "has an out-of-range rep"
	default:
		return ""
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// Register mounts the dispatch endpoints on mux. The campaign-scoped
// routes 404 for any campaign id other than the coordinator's own.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /api/dispatch", c.handleInfo)
	mux.HandleFunc("POST /api/campaigns/{id}/lease", c.campaignScoped(c.handleLease))
	mux.HandleFunc("POST /api/campaigns/{id}/complete", c.campaignScoped(c.handleComplete))
	mux.HandleFunc("POST /api/campaigns/{id}/heartbeat", c.campaignScoped(c.handleHeartbeat))
}

func (c *Coordinator) campaignScoped(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != c.Campaign {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown campaign"})
			return
		}
		h(w, r)
	}
}

func (c *Coordinator) handleInfo(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	done := c.finished
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, infoResponse{
		Campaign: c.Campaign, Fingerprint: c.Fingerprint, Done: done,
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeBody(w, r, maxSmallBody, &req) {
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "worker name required"})
		return
	}
	if req.Max < 0 || req.Max > maxLeaseCap {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("max must be in [0,%d]", maxLeaseCap)})
		return
	}
	l, err := c.Lease(req.Worker, req.Fingerprint, req.Max)
	switch {
	case err == nil && l == nil:
		w.WriteHeader(http.StatusNoContent)
	case err == nil:
		writeJSON(w, http.StatusOK, l)
	default:
		writeJSON(w, leaseStatus(err), errorBody{Error: err.Error()})
	}
}

func leaseStatus(err error) int {
	switch {
	case IsDone(err):
		return http.StatusGone
	case IsQuarantined(err):
		return http.StatusForbidden
	default:
		if _, ok := err.(*FingerprintError); ok {
			return http.StatusConflict
		}
		return http.StatusInternalServerError
	}
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeBody(w, r, maxCompleteBody, &req) {
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "worker name required"})
		return
	}
	for _, rec := range req.Records {
		if bad := validKey(rec.Key); bad != "" {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "record " + bad})
			return
		}
	}
	for _, k := range req.Failed {
		if bad := validKey(k); bad != "" {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "failed cell " + bad})
			return
		}
	}
	if err := c.Complete(req.Worker, req.Fingerprint, req.Lease, req.Records, req.Failed); err != nil {
		if _, ok := err.(*FingerprintError); ok {
			writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeBody(w, r, maxSmallBody, &req) {
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "worker name required"})
		return
	}
	c.Heartbeat(req.Worker)
	w.WriteHeader(http.StatusNoContent)
}
