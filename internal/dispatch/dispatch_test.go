package dispatch

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/experiments"
)

// fakeClock drives the coordinator's monotonic clock from the test.
type fakeClock struct{ ns atomic.Int64 }

func (f *fakeClock) now() time.Duration      { return time.Duration(f.ns.Load()) }
func (f *fakeClock) advance(d time.Duration) { f.ns.Add(int64(d)) }
func (f *fakeClock) set(d time.Duration)     { f.ns.Store(int64(d)) }

// newTestCoordinator builds a coordinator on a fake clock with a fast
// tick (tiny TTL would also shrink the poll tick; the tests drive
// expiry explicitly).
func newTestCoordinator(t *testing.T, clk *fakeClock) *Coordinator {
	t.Helper()
	c := New("test-campaign", "fp-test")
	c.now = clk.now
	c.LeaseTTL = 100 * time.Millisecond
	c.Backoff = time.Millisecond
	return c
}

// testCells builds n tiny real measurement cells (they must actually
// run: the budget-exhausted path measures them locally).
func testCells(n int) ([]core.Cell, []core.CellID) {
	cells := make([]core.Cell, n)
	ids := make([]core.CellID, n)
	for i := range cells {
		cells[i] = core.Cell{Cfg: core.Swan(), W: core.Workload{
			Packets: 200, Seed: uint64(i + 1), TargetRate: 400e6,
		}}
		ids[i] = core.CellID{Point: uint64(i), Rep: 0}
	}
	return cells, ids
}

// collector is the engine-side done callback: it records which worker
// finalized each cell and how often each slot was finalized.
type collector struct {
	mu      sync.Mutex
	workers map[int]string
	counts  map[int]int
}

func newCollector() *collector {
	return &collector{workers: map[int]string{}, counts: map[int]int{}}
}

func (c *collector) done(i int, st *capture.Stats, worker string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[i] = worker
	c.counts[i]++
	return nil
}

// execute runs ExecuteCells in the background, waits until the
// coordinator has the cell set queued (a Lease call before that returns
// the ambiguous "nothing leasable"), and returns a wait func.
func execute(t *testing.T, c *Coordinator, cells []core.Cell, ids []core.CellID, col *collector) func() []error {
	t.Helper()
	ch := make(chan []error, 1)
	go func() {
		ch <- c.ExecuteCells(context.Background(), "exp", cells, ids, col.done)
	}()
	waitActive(t, c)
	return func() []error { return <-ch }
}

// waitActive blocks until ExecuteCells has installed its cell set.
func waitActive(t *testing.T, c *Coordinator) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		active := c.cur != nil
		c.mu.Unlock()
		if active {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("ExecuteCells never queued its cells")
		}
		time.Sleep(time.Millisecond)
	}
}

// completeAll reports every cell of a lease as successfully measured
// (with placeholder stats — protocol tests don't run real captures).
func completeAll(t *testing.T, c *Coordinator, worker string, l *GrantedLease) {
	t.Helper()
	recs := make([]Record, len(l.Keys))
	for i, k := range l.Keys {
		recs[i] = Record{Key: k, Out: core.CellOutcome{
			Stats: capture.Stats{Generated: 200}, OK: true, Attempts: 1,
		}}
	}
	if err := c.Complete(worker, c.Fingerprint, l.ID, recs, nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
}

// mustLease requests one lease for worker and fails the test on error.
func mustLease(t *testing.T, c *Coordinator, worker string, max int) *GrantedLease {
	t.Helper()
	l, err := c.Lease(worker, c.Fingerprint, max)
	if err != nil {
		t.Fatalf("Lease(%s): %v", worker, err)
	}
	return l
}

func TestLeaseLifecycle(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk)
	cells, ids := testCells(5)
	col := newCollector()
	wait := execute(t, c, cells, ids, col)

	seen := map[string]bool{}
	for {
		l := mustLease(t, c, "w1", 2)
		if l == nil {
			break
		}
		if len(l.Keys) > 2 {
			t.Fatalf("lease has %d cells, max was 2", len(l.Keys))
		}
		for _, k := range l.Keys {
			if seen[k.System+fmt.Sprint(k.Point, k.Rep)] {
				t.Fatalf("cell %+v leased twice without expiry", k)
			}
			seen[k.System+fmt.Sprint(k.Point, k.Rep)] = true
		}
		completeAll(t, c, "w1", l)
	}
	for i, err := range wait() {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		if col.counts[i] != 1 {
			t.Fatalf("cell %d finalized %d times, want exactly 1", i, col.counts[i])
		}
		if col.workers[i] != "w1" {
			t.Fatalf("cell %d attributed to %q, want w1", i, col.workers[i])
		}
	}
	st := c.Stats()
	if st.Completed != 5 || st.Expired != 0 || st.Duplicates != 0 {
		t.Fatalf("stats = %+v, want 5 completed, 0 expired, 0 duplicates", st)
	}
}

// TestExpiryDoubleGrantAndLateCompletion is the protocol's hardest
// corner: a lease expires, its cells are granted to a second worker,
// and then BOTH workers complete. The first completion to arrive wins
// the finalization; the loser's copy must be accepted as a duplicate
// (journal last-write-wins), never double-finalized, and cell
// conservation must hold.
func TestExpiryDoubleGrantAndLateCompletion(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk)
	j := &memJournal{}
	c.Journal = j
	cells, ids := testCells(3)
	col := newCollector()
	wait := execute(t, c, cells, ids, col)

	l1 := mustLease(t, c, "w1", 8)
	if l1 == nil || len(l1.Keys) != 3 {
		t.Fatalf("first lease = %+v, want all 3 cells", l1)
	}
	// w1 goes dark; the lease expires, and after the re-dispatch backoff
	// (which starts at the expiry sweep) the cells are re-grantable.
	clk.advance(c.LeaseTTL + time.Millisecond)
	c.mu.Lock()
	c.sweepLocked()
	c.mu.Unlock()
	clk.advance(c.Backoff + time.Millisecond)
	l2 := mustLease(t, c, "w2", 8)
	if l2 == nil || len(l2.Keys) != 3 {
		t.Fatalf("post-expiry lease = %+v, want all 3 cells re-granted", l2)
	}
	if got := c.Stats().Expired; got != 1 {
		t.Fatalf("expired leases = %d, want 1", got)
	}

	// w2 completes first and wins; w1's late completion (of an expired
	// lease) arrives afterwards.
	completeAll(t, c, "w2", l2)
	completeAll(t, c, "w1", l1)

	for i, err := range wait() {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if col.counts[i] != 1 {
			t.Fatalf("cell %d finalized %d times, want exactly 1 (conservation)", i, col.counts[i])
		}
		if col.workers[i] != "w2" {
			t.Fatalf("cell %d won by %q, want w2 (first completion wins)", i, col.workers[i])
		}
	}
	st := c.Stats()
	if st.Duplicates != 3 {
		t.Fatalf("duplicates = %d, want 3 (w1's late copies)", st.Duplicates)
	}
	// The duplicates went to the journal, where last-write-wins resolves
	// them: 3 direct duplicate records.
	if n := j.count(); n != 3 {
		t.Fatalf("journal got %d duplicate records, want 3", n)
	}
}

func TestHeartbeatPreventsExpiry(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk)
	cells, ids := testCells(2)
	col := newCollector()
	wait := execute(t, c, cells, ids, col)

	l := mustLease(t, c, "w1", 8)
	if l == nil {
		t.Fatal("no lease granted")
	}
	// Three TTL periods pass, but a heartbeat lands inside each one.
	for i := 0; i < 3; i++ {
		clk.advance(c.LeaseTTL / 2)
		c.Heartbeat("w1")
		clk.advance(c.LeaseTTL / 2)
		c.Heartbeat("w1")
	}
	if l2 := mustLease(t, c, "w2", 8); l2 != nil {
		t.Fatalf("w2 got a lease (%+v) although w1 is heartbeating", l2)
	}
	if got := c.Stats().Expired; got != 0 {
		t.Fatalf("expired = %d, want 0 under heartbeats", got)
	}
	completeAll(t, c, "w1", l)
	wait()
}

// TestHeartbeatRacesExpiry drives the clock exactly to the deadline: a
// heartbeat that lands at the same instant as a sweep must either save
// the lease or lose it, but never corrupt conservation. Run under
// -race, this is the lock-discipline check for Heartbeat vs sweep.
func TestHeartbeatRacesExpiry(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk)
	cells, ids := testCells(4)
	col := newCollector()
	wait := execute(t, c, cells, ids, col)

	l := mustLease(t, c, "w1", 8)
	if l == nil {
		t.Fatal("no lease granted")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() { // hammer heartbeats
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Heartbeat("w1")
			}
		}
	}()
	go func() { // hammer the clock across the deadline
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			clk.advance(c.LeaseTTL / 100)
		}
		close(stop)
	}()
	wg.Wait()

	// Whatever the race decided, completing every cell (re-leasing any
	// that expired) must finalize each exactly once.
	completeAll(t, c, "w1", l)
	for {
		clk.advance(c.LeaseTTL + c.Backoff)
		l2 := mustLease(t, c, "w2", 8)
		if l2 == nil {
			break
		}
		completeAll(t, c, "w2", l2)
	}
	for i, err := range wait() {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		if col.counts[i] != 1 {
			t.Fatalf("cell %d finalized %d times, want exactly 1", i, col.counts[i])
		}
	}
}

func TestStragglerRedispatch(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk)
	c.Straggler = 4 * c.LeaseTTL
	cells, ids := testCells(2)
	col := newCollector()
	wait := execute(t, c, cells, ids, col)

	l1 := mustLease(t, c, "slow", 8)
	if l1 == nil {
		t.Fatal("no lease granted")
	}
	// The slow worker heartbeats forever but never completes. Past the
	// straggler threshold its cells become leasable again WITHOUT the
	// lease expiring.
	for i := 0; i < 5; i++ {
		clk.advance(c.LeaseTTL)
		c.Heartbeat("slow")
	}
	c.mu.Lock()
	c.sweepLocked()
	c.mu.Unlock()
	l2 := mustLease(t, c, "fast", 8)
	if l2 == nil || len(l2.Keys) != 2 {
		t.Fatalf("straggler cells not re-dispatched: lease = %+v", l2)
	}
	st := c.Stats()
	if st.Redispatched != 1 || st.Expired != 0 {
		t.Fatalf("stats = %+v, want 1 re-dispatch and 0 expiries", st)
	}
	// The fast copy wins; the straggler's eventual answer is a duplicate.
	completeAll(t, c, "fast", l2)
	completeAll(t, c, "slow", l1)
	wait()
	for i := 0; i < 2; i++ {
		if col.workers[i] != "fast" || col.counts[i] != 1 {
			t.Fatalf("cell %d: worker=%q counts=%d, want fast/1", i, col.workers[i], col.counts[i])
		}
	}
	if got := c.Stats().Duplicates; got != 2 {
		t.Fatalf("duplicates = %d, want 2", got)
	}
}

// TestRetryBudgetExhaustedRunsLocally starves a cell through its whole
// dispatch budget (every lease expires) and asserts the coordinator
// measures it locally rather than looping forever.
func TestRetryBudgetExhaustedRunsLocally(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk)
	c.RetryBudget = 2
	c.Strikeout = -1 // the whole point is repeated loss by one worker
	cells, ids := testCells(1)
	col := newCollector()
	wait := execute(t, c, cells, ids, col)

	for attempt := 0; attempt < c.RetryBudget+1; attempt++ {
		var l *GrantedLease
		for l == nil { // wait out the backoff gate
			clk.advance(c.LeaseTTL)
			l = mustLease(t, c, "bad", 8)
		}
		clk.advance(c.LeaseTTL + time.Millisecond) // lease dies
	}
	for i, err := range wait() {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	if col.workers[0] != "coordinator" {
		t.Fatalf("cell finalized by %q, want the coordinator's local fallback", col.workers[0])
	}
	st := c.Stats()
	if st.LocalCells != 1 {
		t.Fatalf("local cells = %d, want 1", st.LocalCells)
	}
}

func TestQuarantineAfterRepeatedExpiry(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk)
	c.Strikeout = 2
	c.RetryBudget = 100 // keep the cells in play
	cells, ids := testCells(1)
	col := newCollector()
	wait := execute(t, c, cells, ids, col)

	for i := 0; i < 2; i++ {
		var l *GrantedLease
		for l == nil {
			clk.advance(c.LeaseTTL)
			l = mustLease(t, c, "flaky", 8)
		}
		clk.advance(c.LeaseTTL + time.Millisecond)
	}
	c.mu.Lock()
	c.sweepLocked()
	c.mu.Unlock()
	if _, err := c.Lease("flaky", c.Fingerprint, 8); !IsQuarantined(err) {
		t.Fatalf("flaky worker's lease error = %v, want quarantine", err)
	}
	// A healthy worker still finishes the campaign.
	var l *GrantedLease
	for l == nil {
		clk.advance(c.LeaseTTL)
		l = mustLease(t, c, "good", 8)
	}
	completeAll(t, c, "good", l)
	wait()
}

func TestFingerprintRefusalCoordinator(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk)
	_, err := c.Lease("w1", "some-other-fp", 8)
	fe, ok := err.(*FingerprintError)
	if !ok {
		t.Fatalf("Lease with wrong fingerprint = %v, want *FingerprintError", err)
	}
	if fe.Want != c.Fingerprint || fe.Got != "some-other-fp" {
		t.Fatalf("FingerprintError = %+v", fe)
	}
	if err := c.Complete("w1", "some-other-fp", 1, nil, nil); err == nil {
		t.Fatal("Complete with wrong fingerprint accepted")
	}
}

// TestCoordinatorRestartMidCampaign kills the coordinator (by
// abandoning it) after grants were journaled, then resumes a fresh
// coordinator over the same WAL: the dispatch-attempt counts must
// survive, so the retry budget cannot be reset by a coordinator crash.
func TestCoordinatorRestartMidCampaign(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{}

	c1 := newTestCoordinator(t, clk)
	if err := c1.OpenWAL(dir, false); err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	cells, ids := testCells(2)
	col := newCollector()
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan []error, 1)
	go func() { ch <- c1.ExecuteCells(ctx, "exp", cells, ids, col.done) }()
	waitActive(t, c1)

	l := mustLease(t, c1, "w1", 1) // one cell granted once
	if l == nil || len(l.Keys) != 1 {
		t.Fatalf("lease = %+v, want 1 cell", l)
	}
	granted := l.Keys[0]
	cancel() // coordinator "crashes" mid-campaign
	<-ch
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2 := newTestCoordinator(t, clk)
	if err := c2.OpenWAL(dir, true); err != nil {
		t.Fatalf("OpenWAL(resume): %v", err)
	}
	defer c2.Close()
	if got := c2.Attempts(granted); got != 1 {
		t.Fatalf("resumed attempt count of granted cell = %d, want 1", got)
	}
	other := core.CellKey{Experiment: "exp", Point: ids[1].Point, System: cells[1].Cfg.Name, Rep: 0}
	if granted != other {
		if got := c2.Attempts(other); got != 0 {
			t.Fatalf("resumed attempt count of ungranted cell = %d, want 0", got)
		}
	}

	// Resuming with the wrong fingerprint must refuse the WAL.
	c3 := New("test-campaign", "different-fp")
	if err := c3.OpenWAL(dir, true); err == nil {
		c3.Close()
		t.Fatal("OpenWAL accepted a WAL recorded under a different fingerprint")
	}
}

// TestWorkerEndToEndHTTP runs the real Worker against the real HTTP
// API over httptest, with a real (tiny) experiment, and checks the
// engine-side finalization count.
func TestWorkerEndToEndHTTP(t *testing.T) {
	// Mid-band rates: the slow simulated systems take pathologically long
	// at the bottom of the rate range, and this test is about the
	// protocol, not the simulator.
	o := experiments.Options{Packets: 300, Reps: 1, Seed: 1, Rates: []float64{400, 800}}
	fp, err := experiments.Fingerprint(o)
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	const expID = "fig6.3-smp"
	set, err := experiments.EnumerateCells(expID, o)
	if err != nil {
		t.Fatalf("EnumerateCells: %v", err)
	}
	if set.Len() == 0 {
		t.Fatalf("experiment %s enumerated no cells", expID)
	}

	c := New("e2e", fp)
	c.LeaseTTL = 2 * time.Second
	mux := newMux(c)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	col := newCollector()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done := make(chan []error, 1)
	go func() {
		done <- c.ExecuteCells(ctx, expID, set.Cells, set.IDs, col.done)
	}()

	w := &Worker{ID: "tw", BaseURL: srv.URL, Options: o, Poll: 10 * time.Millisecond}
	werr := make(chan error, 1)
	go func() { werr <- w.Run(ctx) }()

	errs := <-done
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	c.Finish() // worker's next poll sees 410 and exits
	if err := <-werr; err != nil {
		t.Fatalf("worker: %v", err)
	}
	for i := 0; i < set.Len(); i++ {
		if col.counts[i] != 1 || col.workers[i] != "tw" {
			t.Fatalf("cell %d: counts=%d worker=%q, want 1/tw", i, col.counts[i], col.workers[i])
		}
	}
	if got := c.Stats().Completed; got != uint64(set.Len()) {
		t.Fatalf("completed = %d, want %d", got, set.Len())
	}
}

// TestWorkerFingerprintMismatchHTTP starts a worker whose options hash
// differently: discovery must return the typed mismatch error without a
// single lease being requested.
func TestWorkerFingerprintMismatchHTTP(t *testing.T) {
	c := New("e2e", "coordinator-fp")
	srv := httptest.NewServer(newMux(c))
	defer srv.Close()

	w := &Worker{ID: "tw", BaseURL: srv.URL,
		Options: experiments.Options{Packets: 123, Reps: 1, Seed: 9}}
	err := w.Run(context.Background())
	if _, ok := err.(*FingerprintMismatchError); !ok {
		t.Fatalf("worker error = %v, want *FingerprintMismatchError", err)
	}
	if got := c.Stats().Granted; got != 0 {
		t.Fatalf("mismatched worker was granted %d leases, want 0", got)
	}
}

func newMux(c *Coordinator) *http.ServeMux {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

// memJournal is an in-memory CellJournal counting duplicate records.
type memJournal struct {
	mu   sync.Mutex
	recs []core.CellKey
}

func (m *memJournal) Record(k core.CellKey, out core.CellOutcome) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, k)
	return nil
}

func (m *memJournal) Lookup(k core.CellKey) (core.CellOutcome, bool) {
	return core.CellOutcome{}, false
}

func (m *memJournal) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// walReplayableAfterCrash exercises torn-tail tolerance of the dispatch
// WAL: a grant frame cut mid-write must not poison the resume.
func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	c := New("camp", "fp")
	if err := c.OpenWAL(dir, false); err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	c.mu.Lock()
	err := c.walAppendLocked(walRecord{T: "grant", Lease: 1, Worker: "w",
		Keys: []core.CellKey{{Experiment: "e", Point: 7, System: "swan", Rep: 0}}})
	c.mu.Unlock()
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	c.Close()

	// Tear the tail: append garbage with no newline.
	path := filepath.Join(dir, WALFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"t":"grant","lease":2`)
	f.Close()

	c2 := New("camp", "fp")
	if err := c2.OpenWAL(dir, true); err != nil {
		t.Fatalf("OpenWAL over torn WAL: %v", err)
	}
	defer c2.Close()
	if got := c2.Attempts(core.CellKey{Experiment: "e", Point: 7, System: "swan", Rep: 0}); got != 1 {
		t.Fatalf("replayed attempts = %d, want 1 (torn frame discarded, good frame kept)", got)
	}
}
