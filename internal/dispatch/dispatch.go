// Package dispatch shards a campaign's measurement cells across worker
// processes with lease-based fault tolerance.
//
// The coordinator implements core.CellExecutor: the durable engines hand
// it the cells a campaign still has to measure (replayed cells never
// arrive), and it leases them in small batches to workers over the
// monitoring HTTP API. Robustness is the design center:
//
//   - Leases carry deadlines in coordinator-monotonic time (a
//     time.Since of the coordinator's start instant — wall-clock jumps
//     on either side cannot expire or immortalize a lease). A worker
//     extends its deadlines by heartbeating; a SIGKILLed worker simply
//     stops, its leases expire, and only its in-flight cells return to
//     the queue.
//   - Expired cells are re-dispatched with bounded retry and doubling
//     backoff — the RunCellsResilient shape — and a cell that exhausts
//     its dispatch budget is run locally by the coordinator, so a
//     campaign always terminates even if every worker is hostile.
//   - A lease that lives past the straggler threshold (its worker
//     heartbeats but never finishes) is speculatively re-dispatched to a
//     healthy worker; whichever copy finishes first wins.
//   - Duplicate completions — the straggler's late answer, a completion
//     racing an expiry — resolve deterministically by the campaign
//     journal's last-write-wins rule: cells are deterministic, so every
//     copy of an outcome is byte-identical and the journal's final word
//     never changes.
//   - The lease table itself is journaled in the same CRC-framed WAL
//     format (dispatch.journal, next to campaign.journal), so a killed
//     and -resume'd coordinator restores each cell's dispatch-attempt
//     count — the retry budget survives coordinator crashes.
//
// Workers hold no campaign state: they enumerate the experiment's cell
// space locally (experiments.EnumerateCells) and refuse to serve a
// coordinator whose campaign fingerprint differs from their own options
// (a typed refusal the CLI maps to exit code 2).
package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/journal"
)

// Tuning defaults.
const (
	// DefaultLeaseTTL is how long a granted lease stays valid without a
	// heartbeat.
	DefaultLeaseTTL = 5 * time.Second
	// DefaultMaxLease bounds the cells handed out per lease.
	DefaultMaxLease = 8
	// DefaultRetryBudget is the dispatch attempts per cell before the
	// coordinator stops trusting workers and runs it locally.
	DefaultRetryBudget = 3
	// DefaultBackoff is the base re-dispatch delay after an expiry,
	// doubled per spent attempt (the RunCellsResilient shape).
	DefaultBackoff = 250 * time.Millisecond
	// DefaultStrikeout quarantines a worker after this many expired
	// leases: it keeps asking for work and keeps losing it.
	DefaultStrikeout = 3
)

// WALFile is the dispatch write-ahead log's file name inside the
// -journal directory, next to the campaign journal.
const WALFile = "dispatch.journal"

// Record is one completed cell as reported by a worker: the durable key
// and the measured outcome. The JSON shape matches the campaign
// journal's cell records, and capture.Stats round-trips exactly through
// JSON, so a dispatched outcome is byte-identical to a local one.
type Record struct {
	Key core.CellKey     `json:"key"`
	Out core.CellOutcome `json:"out"`
}

// FingerprintError is the coordinator-side refusal of a worker whose
// options hash to a different campaign fingerprint.
type FingerprintError struct{ Want, Got string }

func (e *FingerprintError) Error() string {
	return fmt.Sprintf("dispatch: campaign fingerprint mismatch: coordinator has %.12s…, worker offered %.12s… (align -packets/-reps/-seed/-rates/-policy)",
		e.Want, e.Got)
}

// ErrQuarantined refuses a worker that lost too many leases.
type quarantinedError struct{ worker string }

func (e *quarantinedError) Error() string {
	return fmt.Sprintf("dispatch: worker %s is quarantined (too many expired leases)", e.worker)
}

// doneError marks the campaign as finished: workers translate it into a
// clean exit.
type doneError struct{}

func (doneError) Error() string { return "dispatch: campaign complete" }

// IsDone reports whether err is the campaign-complete refusal.
func IsDone(err error) bool { _, ok := err.(doneError); return ok }

// IsQuarantined reports whether err is a worker-quarantine refusal.
func IsQuarantined(err error) bool { _, ok := err.(*quarantinedError); return ok }

// GrantedLease is what a worker receives: a batch of cell keys, the
// lease id to complete against, and the heartbeat deadline budget.
type GrantedLease struct {
	ID         uint64         `json:"lease"`
	Experiment string         `json:"experiment"`
	Keys       []core.CellKey `json:"keys"`
	TTLMS      int64          `json:"ttlMs"`
}

// Stats are the coordinator's lifetime dispatch tallies.
type Stats struct {
	Granted      uint64 // leases granted
	Expired      uint64 // leases expired (missed heartbeats / dead worker)
	Redispatched uint64 // straggler leases speculatively re-dispatched
	Duplicates   uint64 // duplicate cell completions (resolved last-write-wins)
	LocalCells   uint64 // cells run locally after the retry budget
	Completed    uint64 // cells finalized (first completion wins)
}

// walRecord is one frame of the dispatch WAL. Grants are the records
// that matter for recovery: replaying them restores each cell's
// dispatch-attempt count, so a coordinator crash cannot reset the retry
// budget. Expiry and duplicate frames document the lease table's
// history for post-mortems.
type walRecord struct {
	T      string         `json:"t"` // "grant" | "expire" | "dup" | "local"
	Lease  uint64         `json:"lease,omitempty"`
	Worker string         `json:"worker,omitempty"`
	Exp    string         `json:"exp,omitempty"`
	Keys   []core.CellKey `json:"keys,omitempty"`
}

// workerState tracks one worker's health across the campaign.
type workerState struct {
	leases      uint64
	expired     int
	quarantined bool
	completed   uint64
	lastBeat    time.Duration
}

// lease is one outstanding grant.
type lease struct {
	id       uint64
	worker   string
	set      *activeSet
	cells    []int
	granted  time.Duration
	deadline time.Duration
	redisp   bool // straggler re-dispatch already issued
}

// activeSet is the cell batch of the engine call currently being
// dispatched (one experiment's engine call at a time — the experiment
// driver is sequential).
type activeSet struct {
	experiment string
	cells      []core.Cell
	ids        []core.CellID
	keys       []core.CellKey
	byKey      map[core.CellKey]int
	finish     func(i int, st *capture.Stats, worker string) error
	done       []bool
	errs       []error
	pending    []int           // indices awaiting (re)dispatch
	eligible   []time.Duration // backoff gate per cell
	inflight   []int           // live leases covering each cell
	exhausted  []int           // cells past the retry budget, owed a local run
	remaining  int
	feeds      *core.FeedCache // local-fallback feed cache
	wg         sync.WaitGroup  // in-flight finish callbacks
}

// Coordinator shards campaign cells into leases. Configure the exported
// fields before serving; they are read-only afterwards.
type Coordinator struct {
	Campaign    string
	Fingerprint string

	LeaseTTL    time.Duration // 0 = DefaultLeaseTTL
	Straggler   time.Duration // 0 = 8×LeaseTTL; <0 disables straggler re-dispatch
	Backoff     time.Duration // 0 = DefaultBackoff
	MaxLease    int           // 0 = DefaultMaxLease
	RetryBudget int           // 0 = DefaultRetryBudget
	Strikeout   int           // 0 = DefaultStrikeout; <0 disables quarantine
	// LocalWorkers is the parallelism of local-fallback runs (the
	// Workers convention; 0 = serial).
	LocalWorkers int

	// Journal receives duplicate completions directly (last-write-wins);
	// first completions flow through the engine's done callback, which
	// records into the same journal. Set it to the campaign journal.
	Journal core.CellJournal
	// Observer receives lease-lifecycle events (EventLease,
	// EventLeaseExpired, straggler EventRetry) — the monitoring hub.
	Observer core.Observer
	// FS is the filesystem the lease-table WAL lives on; nil = the real
	// one. -diskchaos injects storage faults here: the WAL inherits the
	// journal's truncate-repair and pause-and-retry append, so a full
	// disk degrades grants to pauses, never to lost lease history.
	FS faultfs.FS

	// now is the coordinator-monotonic clock; tests inject their own.
	now func() time.Duration

	mu       sync.Mutex
	wal      *journal.Journal
	walErr   error
	attempts map[core.CellKey]int
	leases   map[uint64]*lease
	leaseSeq uint64
	workers  map[string]*workerState
	cur      *activeSet
	finished bool
	stats    Stats
	wake     chan struct{}
}

var _ core.CellExecutor = (*Coordinator)(nil)

// New builds a coordinator for the campaign with default tuning.
func New(campaign, fingerprint string) *Coordinator {
	start := time.Now() // monotonic base: time.Since reads the monotonic clock
	return &Coordinator{
		Campaign:    campaign,
		Fingerprint: fingerprint,
		now:         func() time.Duration { return time.Since(start) },
		attempts:    map[core.CellKey]int{},
		leases:      map[uint64]*lease{},
		workers:     map[string]*workerState{},
		wake:        make(chan struct{}, 1),
	}
}

func (c *Coordinator) ttl() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (c *Coordinator) straggler() time.Duration {
	if c.Straggler < 0 {
		return 0 // disabled
	}
	if c.Straggler > 0 {
		return c.Straggler
	}
	return 8 * c.ttl()
}

func (c *Coordinator) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return DefaultBackoff
}

func (c *Coordinator) maxLease() int {
	if c.MaxLease > 0 {
		return c.MaxLease
	}
	return DefaultMaxLease
}

func (c *Coordinator) budget() int {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return DefaultRetryBudget
}

func (c *Coordinator) strikeout() int {
	if c.Strikeout < 0 {
		return 0 // disabled
	}
	if c.Strikeout > 0 {
		return c.Strikeout
	}
	return DefaultStrikeout
}

// OpenWAL attaches the lease-table write-ahead log in dir — the same
// CRC-framed format as the campaign journal, stamped with the campaign
// fingerprint. With resume, prior grant frames are replayed so each
// cell's dispatch-attempt count survives a coordinator crash: killing
// the coordinator does not reset the retry budget. A resume with no WAL
// on disk (the campaign's first distributed run) starts a fresh one.
func (c *Coordinator) OpenWAL(dir string, resume bool) error {
	fsys := c.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	path := filepath.Join(dir, WALFile)
	if !resume {
		j, err := journal.CreateFS(fsys, path, c.Fingerprint)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.wal = j
		c.mu.Unlock()
		return nil
	}
	j, rec, err := journal.ResumeFS(fsys, path, c.Fingerprint)
	if os.IsNotExist(err) {
		j, err = journal.CreateFS(fsys, path, c.Fingerprint)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.wal = j
		c.mu.Unlock()
		return nil
	}
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, raw := range rec.Records {
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			j.Close()
			return fmt.Errorf("dispatch: corrupt WAL record in %s: %w", path, err)
		}
		if r.T == "grant" || r.T == "local" {
			for _, k := range r.Keys {
				c.attempts[k]++
			}
		}
	}
	c.wal = j
	return nil
}

// Close releases the WAL. The coordinator must be idle.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wal == nil {
		return nil
	}
	err := c.wal.Close()
	c.wal = nil
	return err
}

// Finish marks the campaign complete: every subsequent lease request is
// refused with the done error, which workers turn into a clean exit.
func (c *Coordinator) Finish() {
	c.mu.Lock()
	c.finished = true
	c.mu.Unlock()
	c.wakeup()
}

// Stats returns a copy of the dispatch tallies.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Attempts reports the recorded dispatch-attempt count of a cell
// (including attempts replayed from the WAL on resume).
func (c *Coordinator) Attempts(k core.CellKey) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts[k]
}

// WorkerCells reports the cells finalized per worker.
func (c *Coordinator) WorkerCells() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.workers))
	for name, ws := range c.workers {
		out[name] = ws.completed
	}
	return out
}

func (c *Coordinator) wakeup() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// worker returns (creating if needed) the state of a worker. Callers
// hold c.mu.
func (c *Coordinator) workerLocked(name string) *workerState {
	ws := c.workers[name]
	if ws == nil {
		ws = &workerState{}
		c.workers[name] = ws
	}
	return ws
}

func (c *Coordinator) observe(ev core.Event) {
	if c.Observer != nil {
		ev.Campaign = c.Campaign
		c.Observer.Observe(ev)
	}
}

// walAppendLocked journals one lease-table frame. Callers hold c.mu.
// Grant callers treat a failure as fatal for the grant; bookkeeping
// frames (expire, dup) record the first error and carry on — the
// campaign journal, not this WAL, is what result durability rests on.
func (c *Coordinator) walAppendLocked(r walRecord) error {
	if c.wal == nil {
		return nil
	}
	err := c.wal.Append(r)
	if err != nil && c.walErr == nil {
		c.walErr = err
	}
	return err
}

// ExecuteCells implements core.CellExecutor: it queues the cells for
// leasing and blocks until every cell is finalized (by a worker or the
// local fallback) or ctx is cancelled. One engine call at a time.
func (c *Coordinator) ExecuteCells(ctx context.Context, experiment string, cells []core.Cell, ids []core.CellID, done func(int, *capture.Stats, string) error) []error {
	st := &activeSet{
		experiment: experiment,
		cells:      cells,
		ids:        ids,
		keys:       make([]core.CellKey, len(cells)),
		byKey:      make(map[core.CellKey]int, len(cells)),
		finish:     done,
		done:       make([]bool, len(cells)),
		errs:       make([]error, len(cells)),
		eligible:   make([]time.Duration, len(cells)),
		inflight:   make([]int, len(cells)),
		remaining:  len(cells),
		feeds:      core.NewFeedCache(core.DefaultFeedCacheSize),
	}
	for i := range cells {
		st.keys[i] = core.CellKey{Experiment: experiment, Point: ids[i].Point,
			System: cells[i].Cfg.Name, Rep: ids[i].Rep}
		st.byKey[st.keys[i]] = i
		st.pending = append(st.pending, i)
	}

	c.mu.Lock()
	if c.cur != nil {
		c.mu.Unlock()
		panic("dispatch: concurrent ExecuteCells")
	}
	c.cur = st
	c.mu.Unlock()
	c.wakeup() // a worker may already be polling

	defer func() {
		c.mu.Lock()
		c.cur = nil
		// Leases of this set are void; late completions become duplicates.
		for id, l := range c.leases {
			if l.set == st {
				delete(c.leases, id)
			}
		}
		c.mu.Unlock()
		// Finish callbacks run outside the lock; wait for stragglers so
		// the engine can read its result slots race-free.
		st.wg.Wait()
	}()

	tick := c.ttl() / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		c.mu.Lock()
		c.sweepLocked()
		locals := st.exhausted
		st.exhausted = nil
		rem := st.remaining
		c.mu.Unlock()

		if len(locals) > 0 {
			c.runLocal(ctx, st, locals)
			continue
		}
		if rem == 0 {
			return st.errs
		}
		if err := ctx.Err(); err != nil {
			c.mu.Lock()
			for i := range st.done {
				if !st.done[i] && st.errs[i] == nil {
					st.errs[i] = err
				}
			}
			c.mu.Unlock()
			return st.errs
		}
		select {
		case <-ctx.Done():
		case <-c.wake:
		case <-ticker.C:
		}
	}
}

// sweepLocked expires overdue leases and speculatively re-dispatches
// stragglers. Callers hold c.mu.
func (c *Coordinator) sweepLocked() {
	st := c.cur
	now := c.now()
	for id, l := range c.leases {
		if l.set != st {
			delete(c.leases, id)
			continue
		}
		if now >= l.deadline {
			delete(c.leases, id)
			c.stats.Expired++
			ws := c.workerLocked(l.worker)
			ws.expired++
			if so := c.strikeout(); so > 0 && ws.expired >= so {
				ws.quarantined = true
			}
			lost := 0
			for _, i := range l.cells {
				st.inflight[i]--
				if !st.done[i] && st.inflight[i] <= 0 {
					c.requeueLocked(st, i)
					lost++
				}
			}
			c.walAppendLocked(walRecord{T: "expire", Lease: l.id, Worker: l.worker})
			c.observe(core.Event{Kind: core.EventLeaseExpired, Experiment: st.experiment,
				Worker: l.worker,
				Detail: fmt.Sprintf("lease %d expired (%d cells back in queue)", l.id, lost)})
			continue
		}
		if str := c.straggler(); str > 0 && !l.redisp && now-l.granted >= str {
			l.redisp = true
			n := 0
			for _, i := range l.cells {
				if !st.done[i] {
					st.pending = append(st.pending, i)
					n++
				}
			}
			if n > 0 {
				c.stats.Redispatched++
				c.observe(core.Event{Kind: core.EventRetry, Experiment: st.experiment,
					Worker: l.worker,
					Detail: fmt.Sprintf("straggler: lease %d open after %s; %d cells re-dispatched", l.id, str, n)})
			}
		}
	}
}

// requeueLocked returns a cell to the dispatch queue with doubling
// backoff, or routes it to the local-fallback list once its dispatch
// budget is spent. Callers hold c.mu.
func (c *Coordinator) requeueLocked(st *activeSet, i int) {
	n := c.attempts[st.keys[i]]
	if n > c.budget() {
		st.exhausted = append(st.exhausted, i)
		c.wakeup()
		return
	}
	shift := n - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 10 {
		shift = 10
	}
	st.eligible[i] = c.now() + c.backoff()<<uint(shift)
	st.pending = append(st.pending, i)
}

// Lease grants up to max eligible cells to the worker. A nil, nil
// return means nothing is leasable right now (the worker should poll
// again); errors are typed: *FingerprintError (mismatched options),
// quarantine, campaign-done.
func (c *Coordinator) Lease(worker, fingerprint string, max int) (*GrantedLease, error) {
	if fingerprint != c.Fingerprint {
		return nil, &FingerprintError{Want: c.Fingerprint, Got: fingerprint}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return nil, doneError{}
	}
	ws := c.workerLocked(worker)
	if ws.quarantined {
		return nil, &quarantinedError{worker: worker}
	}
	st := c.cur
	if st == nil {
		return nil, nil
	}
	// Expire before granting: a dead worker's cells become grantable the
	// moment a healthy worker asks, not a sweep tick later.
	c.sweepLocked()
	if max <= 0 || max > c.maxLease() {
		max = c.maxLease()
	}
	now := c.now()
	var take []int
	keep := st.pending[:0]
	for _, i := range st.pending {
		if st.done[i] {
			continue // lazily drop entries finished by another path
		}
		if len(take) < max && now >= st.eligible[i] {
			take = append(take, i)
			continue
		}
		keep = append(keep, i)
	}
	st.pending = keep
	if len(take) == 0 {
		return nil, nil
	}
	keys := make([]core.CellKey, len(take))
	for bi, i := range take {
		keys[bi] = st.keys[i]
	}
	// The grant frame goes to the WAL before the lease exists: an
	// attempt the worker might observe must be an attempt a resumed
	// coordinator still counts.
	c.leaseSeq++
	id := c.leaseSeq
	if err := c.walAppendLocked(walRecord{T: "grant", Lease: id, Worker: worker,
		Exp: st.experiment, Keys: keys}); err != nil {
		st.pending = append(st.pending, take...)
		return nil, err
	}
	l := &lease{id: id, worker: worker, set: st, cells: take,
		granted: now, deadline: now + c.ttl()}
	c.leases[id] = l
	for _, i := range take {
		st.inflight[i]++
		c.attempts[st.keys[i]]++
	}
	ws.leases++
	c.stats.Granted++
	c.observe(core.Event{Kind: core.EventLease, Experiment: st.experiment, Worker: worker,
		Detail: fmt.Sprintf("lease %d: %d cells", id, len(take))})
	return &GrantedLease{ID: id, Experiment: st.experiment, Keys: keys,
		TTLMS: c.ttl().Milliseconds()}, nil
}

// Heartbeat extends the deadlines of every lease the worker holds.
func (c *Coordinator) Heartbeat(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for _, l := range c.leases {
		if l.worker == worker {
			l.deadline = now + c.ttl()
		}
	}
	c.workerLocked(worker).lastBeat = now
}

// Complete ingests a worker's outcomes for a lease. The first
// completion of a cell finalizes it through the engine's done callback;
// later copies — a straggler's late answer, a completion racing an
// expiry — are recorded into the campaign journal as duplicates, where
// the last-write-wins rule resolves them deterministically (cells are
// deterministic, so every copy is byte-identical). failed lists cells
// the worker could not measure; they are re-queued immediately. An
// expired (unknown) lease does not invalidate the data: finished work is
// finished work.
func (c *Coordinator) Complete(worker, fingerprint string, leaseID uint64, recs []Record, failed []core.CellKey) error {
	if fingerprint != "" && fingerprint != c.Fingerprint {
		return &FingerprintError{Want: c.Fingerprint, Got: fingerprint}
	}
	type fin struct {
		i   int
		out core.CellOutcome
	}
	var fins []fin
	var dups []Record

	c.mu.Lock()
	st := c.cur
	l := c.leases[leaseID]
	if l != nil && l.set == st {
		delete(c.leases, leaseID)
		for _, i := range l.cells {
			st.inflight[i]--
		}
	} else {
		l = nil
	}
	ws := c.workerLocked(worker)
	if st != nil {
		for _, r := range recs {
			if !r.Out.OK {
				continue
			}
			i, ok := st.byKey[r.Key]
			if !ok {
				continue // not this engine call's cell (stale experiment)
			}
			if st.done[i] {
				dups = append(dups, r)
				continue
			}
			st.done[i] = true
			st.remaining--
			fins = append(fins, fin{i: i, out: r.Out})
		}
		// Cells of the lease that came back failed — or not at all —
		// return to the queue as soon as no other lease covers them.
		if l != nil {
			for _, i := range l.cells {
				if !st.done[i] && st.inflight[i] <= 0 {
					c.requeueLocked(st, i)
				}
			}
		}
	} else {
		for _, r := range recs {
			if r.Out.OK {
				dups = append(dups, r)
			}
		}
	}
	ws.completed += uint64(len(fins))
	c.stats.Completed += uint64(len(fins))
	if len(dups) > 0 {
		c.stats.Duplicates += uint64(len(dups))
		keys := make([]core.CellKey, len(dups))
		for i, r := range dups {
			keys[i] = r.Key
		}
		c.walAppendLocked(walRecord{T: "dup", Lease: leaseID, Worker: worker, Keys: keys})
	}
	if st != nil {
		st.wg.Add(len(fins))
	}
	c.mu.Unlock()

	var err error
	for _, f := range fins {
		out := f.out
		if e := st.finish(f.i, &out.Stats, worker); e != nil {
			c.mu.Lock()
			st.errs[f.i] = e
			c.mu.Unlock()
			if err == nil {
				err = e
			}
		}
		st.wg.Done()
	}
	for _, r := range dups {
		if c.Journal != nil {
			if e := c.Journal.Record(r.Key, r.Out); e != nil && err == nil {
				err = e
			}
		}
	}
	c.wakeup()
	return err
}

// runLocal measures budget-exhausted cells on the coordinator itself:
// the guarantee that a campaign terminates even if every worker keeps
// losing leases.
func (c *Coordinator) runLocal(ctx context.Context, st *activeSet, idxs []int) {
	cells := make([]core.Cell, len(idxs))
	keys := make([]core.CellKey, len(idxs))
	for bi, i := range idxs {
		cells[bi] = st.cells[i]
		keys[bi] = st.keys[i]
	}
	c.mu.Lock()
	c.walAppendLocked(walRecord{T: "local", Exp: st.experiment, Keys: keys})
	c.stats.LocalCells += uint64(len(idxs))
	c.mu.Unlock()
	c.observe(core.Event{Kind: core.EventRetry, Experiment: st.experiment, Worker: "coordinator",
		Detail: fmt.Sprintf("retry budget exhausted: running %d cells locally", len(idxs))})
	sts, errs := core.RunCellsWithCache(ctx, cells, c.LocalWorkers, st.feeds)
	for bi, i := range idxs {
		c.mu.Lock()
		if st.done[i] { // a worker raced us to it after all
			c.mu.Unlock()
			if errs[bi] == nil && c.Journal != nil {
				c.stats.Duplicates++
				c.Journal.Record(st.keys[i], core.CellOutcome{Stats: sts[bi], OK: true, Attempts: 1})
			}
			continue
		}
		st.done[i] = true
		st.remaining--
		if errs[bi] != nil {
			st.errs[i] = errs[bi]
			c.mu.Unlock()
			continue
		}
		st.wg.Add(1)
		c.mu.Unlock()
		if e := st.finish(i, &sts[bi], "coordinator"); e != nil {
			c.mu.Lock()
			st.errs[i] = e
			c.mu.Unlock()
		}
		st.wg.Done()
	}
}
