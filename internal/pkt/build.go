package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// UDPSpec describes a UDP frame to synthesize; this is the packet shape the
// enhanced pktgen emits.
type UDPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     netip.Addr
	SrcPort, DstPort uint16
	// FrameLen is the total Ethernet frame length (14-byte header included,
	// preamble/FCS excluded). It is clamped to [MinUDPFrameLen, MaxFrameLen].
	FrameLen int
	// Seq is stamped into the first 4 payload bytes, emulating pktgen's
	// sequence-number magic that lets receivers detect loss and reordering.
	Seq uint32
	// Checksum controls whether the UDP checksum is computed. pktgen leaves
	// it zero (allowed for UDP/IPv4); the default matches that.
	Checksum bool
}

// MinUDPFrameLen is the smallest frame that still carries the full
// Ethernet+IPv4+UDP header chain plus the 4-byte sequence stamp.
const MinUDPFrameLen = EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen + 4

// BuildUDP synthesizes the frame described by spec into buf, growing it if
// needed, and returns the frame slice. Payload bytes after the sequence
// stamp are a deterministic pattern (0x55), mirroring pktgen's constant
// fill: packet *content* has no influence on capture performance (§3.2),
// but must be deterministic for reproducibility.
func BuildUDP(buf []byte, spec UDPSpec) []byte {
	n := spec.FrameLen
	if n < MinUDPFrameLen {
		n = MinUDPFrameLen
	}
	if n > MaxFrameLen {
		n = MaxFrameLen
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	b := buf[:n]

	off := EncodeEthernet(b, Ethernet{Dst: spec.DstMAC, Src: spec.SrcMAC, EtherType: EtherTypeIPv4})
	ipLen := n - EthernetHeaderLen
	udpLen := ipLen - IPv4HeaderLen
	payload := b[off+IPv4HeaderLen+UDPHeaderLen : n]
	binary.BigEndian.PutUint32(payload[0:4], spec.Seq)
	for i := 4; i < len(payload); i++ {
		payload[i] = 0x55
	}
	EncodeIPv4(b[off:], IPv4{
		Length:   uint16(ipLen),
		ID:       uint16(spec.Seq),
		TTL:      32,
		Protocol: ProtoUDP,
		Src:      spec.SrcIP,
		Dst:      spec.DstIP,
	})
	EncodeUDP(b[off+IPv4HeaderLen:], UDP{
		SrcPort: spec.SrcPort,
		DstPort: spec.DstPort,
		Length:  uint16(udpLen),
	}, spec.SrcIP, spec.DstIP, payload, spec.Checksum)
	return b
}

// Summary is the decoded view of a frame that the offline tools need:
// enough to classify the packet and recover its sizes and addresses.
type Summary struct {
	FrameLen int
	Ethernet Ethernet
	IsIPv4   bool
	IPv4     IPv4
	IsUDP    bool
	UDP      UDP
	IsTCP    bool
	TCP      TCP
}

// Parse decodes the layer chain of frame. Non-IP frames yield IsIPv4=false
// with no error; genuinely malformed headers return an error.
func Parse(frame []byte) (Summary, error) {
	var s Summary
	s.FrameLen = len(frame)
	eth, err := DecodeEthernet(frame)
	if err != nil {
		return s, err
	}
	s.Ethernet = eth
	if eth.EtherType != EtherTypeIPv4 {
		return s, nil
	}
	ip, err := DecodeIPv4(frame[EthernetHeaderLen:])
	if err != nil {
		return s, fmt.Errorf("pkt: %w", err)
	}
	s.IsIPv4 = true
	s.IPv4 = ip
	transport := frame[EthernetHeaderLen+ip.HeaderLen():]
	switch ip.Protocol {
	case ProtoUDP:
		u, err := DecodeUDP(transport)
		if err != nil {
			return s, nil // truncated transport header: keep the IP view
		}
		s.IsUDP = true
		s.UDP = u
	case ProtoTCP:
		t, err := DecodeTCP(transport)
		if err != nil {
			return s, nil
		}
		s.IsTCP = true
		s.TCP = t
	}
	return s, nil
}
