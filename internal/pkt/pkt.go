// Package pkt implements a minimal, allocation-conscious packet model:
// Ethernet, IPv4, UDP and TCP header encoding and decoding plus the Internet
// checksum. It is the on-wire representation shared by the packet generator,
// the BPF filter machine, the pcap file tools and the capture-stack models.
//
// The layout rules follow the thesis's conventions: "packet size" always
// means the Ethernet frame length without preamble and FCS (so a 40-byte
// packet is an IP datagram of 26 bytes inside a 14-byte Ethernet header —
// in practice the generator clamps sizes to at least the UDP header chain,
// exactly like pktgen's 60-byte minimum on real hardware is relaxed here to
// the thesis's 40-byte analysis floor).
package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Well-known sizes (bytes).
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // without options
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20 // without options

	// MinFrameLen is the smallest frame the tools accept. The thesis works
	// with 40-byte packets (the dominant size in the MWN trace, a bare
	// TCP ACK at the IP layer counted as its IP length); on Ethernet these
	// are padded, but the size *distribution* is defined over this floor.
	MinFrameLen = 40
	// MaxFrameLen is the standard Ethernet MTU frame: 1500 bytes payload +
	// header. The thesis observed no jumbo frames, so sizes are capped at
	// 1500 throughout.
	MaxFrameLen = 1514

	// WireOverhead is the per-frame on-the-wire overhead that consumes link
	// bandwidth but is never delivered to software: 8 bytes preamble+SFD,
	// 4 bytes FCS, 12 bytes inter-frame gap.
	WireOverhead = 8 + 4 + 12
)

// EtherType values used by the tools.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// MAC is a 6-byte Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is a decoded Ethernet header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// IPv4 is a decoded IPv4 header (no options supported on encode; options
// are skipped on decode via the IHL field).
type IPv4 struct {
	TOS        uint8
	Length     uint16 // total length including header
	ID         uint16
	Flags      uint8 // 3 bits
	FragOffset uint16
	TTL        uint8
	Protocol   uint8
	Checksum   uint16
	Src, Dst   netip.Addr
	headerLen  int
}

// HeaderLen returns the decoded header length in bytes (20 when encoded by
// this package).
func (ip *IPv4) HeaderLen() int {
	if ip.headerLen == 0 {
		return IPv4HeaderLen
	}
	return ip.headerLen
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// TCP flag bits.
const (
	TCPFlagFIN = 1 << iota
	TCPFlagSYN
	TCPFlagRST
	TCPFlagPSH
	TCPFlagACK
	TCPFlagURG
)

// Checksum computes the Internet checksum (RFC 1071) over data with an
// initial partial sum, which allows chaining pseudo-header and payload.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the IPv4 pseudo header used
// by UDP and TCP checksums.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	var sum uint32
	s, d := src.As4(), dst.As4()
	sum += uint32(s[0])<<8 | uint32(s[1])
	sum += uint32(s[2])<<8 | uint32(s[3])
	sum += uint32(d[0])<<8 | uint32(d[1])
	sum += uint32(d[2])<<8 | uint32(d[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// EncodeEthernet writes the Ethernet header into b (which must be at least
// EthernetHeaderLen bytes) and returns the number of bytes written.
func EncodeEthernet(b []byte, h Ethernet) int {
	_ = b[EthernetHeaderLen-1]
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
	return EthernetHeaderLen
}

// DecodeEthernet parses an Ethernet header from b.
func DecodeEthernet(b []byte) (Ethernet, error) {
	if len(b) < EthernetHeaderLen {
		return Ethernet{}, fmt.Errorf("pkt: short ethernet header: %d bytes", len(b))
	}
	var h Ethernet
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}

// EncodeIPv4 writes the IPv4 header into b (≥ IPv4HeaderLen bytes),
// computing the header checksum, and returns the bytes written.
func EncodeIPv4(b []byte, h IPv4) int {
	_ = b[IPv4HeaderLen-1]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.Length)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOffset&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	src, dst := h.Src.As4(), h.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	ck := Checksum(b[:IPv4HeaderLen], 0)
	binary.BigEndian.PutUint16(b[10:12], ck)
	return IPv4HeaderLen
}

// DecodeIPv4 parses an IPv4 header from b.
func DecodeIPv4(b []byte) (IPv4, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4{}, fmt.Errorf("pkt: short IPv4 header: %d bytes", len(b))
	}
	if b[0]>>4 != 4 {
		return IPv4{}, fmt.Errorf("pkt: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return IPv4{}, fmt.Errorf("pkt: bad IHL %d", ihl)
	}
	var h IPv4
	h.headerLen = ihl
	h.TOS = b[1]
	h.Length = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOffset = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	h.Src = netip.AddrFrom4([4]byte(b[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	return h, nil
}

// EncodeUDP writes the UDP header into b (≥ UDPHeaderLen bytes). If
// computeChecksum is true the checksum is calculated over the pseudo header
// and payload.
func EncodeUDP(b []byte, h UDP, src, dst netip.Addr, payload []byte, computeChecksum bool) int {
	_ = b[UDPHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	b[6], b[7] = 0, 0
	if computeChecksum {
		sum := pseudoHeaderSum(src, dst, ProtoUDP, int(h.Length))
		// Sum the header bytes (checksum field is zero) then the payload.
		hdrSum := uint32(binary.BigEndian.Uint16(b[0:2])) +
			uint32(binary.BigEndian.Uint16(b[2:4])) +
			uint32(binary.BigEndian.Uint16(b[4:6]))
		ck := Checksum(payload, sum+hdrSum)
		if ck == 0 {
			ck = 0xffff // per RFC 768, zero is transmitted as all ones
		}
		binary.BigEndian.PutUint16(b[6:8], ck)
	}
	return UDPHeaderLen
}

// DecodeUDP parses a UDP header from b.
func DecodeUDP(b []byte) (UDP, error) {
	if len(b) < UDPHeaderLen {
		return UDP{}, fmt.Errorf("pkt: short UDP header: %d bytes", len(b))
	}
	return UDP{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[6:8]),
	}, nil
}

// EncodeTCP writes a TCP header (no options) into b (≥ TCPHeaderLen bytes).
func EncodeTCP(b []byte, h TCP, src, dst netip.Addr, payload []byte, computeChecksum bool) int {
	_ = b[TCPHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = 5 << 4 // data offset 5 words
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	b[16], b[17] = 0, 0
	binary.BigEndian.PutUint16(b[18:20], h.Urgent)
	if computeChecksum {
		sum := pseudoHeaderSum(src, dst, ProtoTCP, TCPHeaderLen+len(payload))
		var hdrSum uint32
		for i := 0; i < TCPHeaderLen; i += 2 {
			hdrSum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
		}
		ck := Checksum(payload, sum+hdrSum)
		binary.BigEndian.PutUint16(b[16:18], ck)
	}
	return TCPHeaderLen
}

// DecodeTCP parses a TCP header from b.
func DecodeTCP(b []byte) (TCP, error) {
	if len(b) < TCPHeaderLen {
		return TCP{}, fmt.Errorf("pkt: short TCP header: %d bytes", len(b))
	}
	h := TCP{
		SrcPort:    binary.BigEndian.Uint16(b[0:2]),
		DstPort:    binary.BigEndian.Uint16(b[2:4]),
		Seq:        binary.BigEndian.Uint32(b[4:8]),
		Ack:        binary.BigEndian.Uint32(b[8:12]),
		DataOffset: b[12] >> 4,
		Flags:      b[13],
		Window:     binary.BigEndian.Uint16(b[14:16]),
		Checksum:   binary.BigEndian.Uint16(b[16:18]),
		Urgent:     binary.BigEndian.Uint16(b[18:20]),
	}
	if int(h.DataOffset)*4 < TCPHeaderLen {
		return TCP{}, fmt.Errorf("pkt: bad TCP data offset %d", h.DataOffset)
	}
	return h, nil
}
