package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
	"time"
)

// ICMP is a decoded ICMP header (the fields common to all types).
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16
}

// ICMPHeaderLen is the fixed part of the ICMP header.
const ICMPHeaderLen = 4

// DecodeICMP parses an ICMP header from b.
func DecodeICMP(b []byte) (ICMP, error) {
	if len(b) < ICMPHeaderLen {
		return ICMP{}, fmt.Errorf("pkt: short ICMP header: %d bytes", len(b))
	}
	return ICMP{Type: b[0], Code: b[1], Checksum: binary.BigEndian.Uint16(b[2:4])}, nil
}

// ARP is a decoded ARP packet (Ethernet/IPv4 flavour).
type ARP struct {
	Op                 uint16 // 1 = request, 2 = reply
	SenderHW, TargetHW MAC
	SenderIP, TargetIP netip.Addr
}

// ARPLen is the length of an Ethernet/IPv4 ARP body.
const ARPLen = 28

// ARP opcodes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// DecodeARP parses an ARP body from b.
func DecodeARP(b []byte) (ARP, error) {
	if len(b) < ARPLen {
		return ARP{}, fmt.Errorf("pkt: short ARP body: %d bytes", len(b))
	}
	if htype := binary.BigEndian.Uint16(b[0:2]); htype != 1 {
		return ARP{}, fmt.Errorf("pkt: ARP hardware type %d not Ethernet", htype)
	}
	if ptype := binary.BigEndian.Uint16(b[2:4]); ptype != EtherTypeIPv4 {
		return ARP{}, fmt.Errorf("pkt: ARP protocol type %#04x not IPv4", ptype)
	}
	if b[4] != 6 || b[5] != 4 {
		return ARP{}, fmt.Errorf("pkt: ARP address lengths %d/%d", b[4], b[5])
	}
	var a ARP
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderHW[:], b[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(b[14:18]))
	copy(a.TargetHW[:], b[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(b[24:28]))
	return a, nil
}

// EncodeARP writes an Ethernet/IPv4 ARP body into b (≥ ARPLen bytes).
func EncodeARP(b []byte, a ARP) int {
	_ = b[ARPLen-1]
	binary.BigEndian.PutUint16(b[0:2], 1)
	binary.BigEndian.PutUint16(b[2:4], EtherTypeIPv4)
	b[4], b[5] = 6, 4
	binary.BigEndian.PutUint16(b[6:8], a.Op)
	copy(b[8:14], a.SenderHW[:])
	s, t := a.SenderIP.As4(), a.TargetIP.As4()
	copy(b[14:18], s[:])
	copy(b[18:24], a.TargetHW[:])
	copy(b[24:28], t[:])
	return ARPLen
}

// Format renders one frame as a tcpdump-style one-liner:
//
//	12:34:56.789012 IP 192.168.10.100.9 > 192.168.10.12.9: UDP, length 618
//
// A zero ts omits the timestamp. Undecodable frames degrade gracefully to
// an EtherType dump rather than failing.
func Format(ts time.Time, frame []byte) string {
	var b strings.Builder
	if !ts.IsZero() {
		fmt.Fprintf(&b, "%s ", ts.Format("15:04:05.000000"))
	}
	s, err := Parse(frame)
	if err != nil {
		fmt.Fprintf(&b, "[malformed frame, %d bytes: %v]", len(frame), err)
		return b.String()
	}
	switch {
	case s.IsUDP:
		fmt.Fprintf(&b, "IP %s.%d > %s.%d: UDP, length %d",
			s.IPv4.Src, s.UDP.SrcPort, s.IPv4.Dst, s.UDP.DstPort,
			int(s.UDP.Length)-UDPHeaderLen)
	case s.IsTCP:
		fmt.Fprintf(&b, "IP %s.%d > %s.%d: Flags [%s], seq %d, win %d, length %d",
			s.IPv4.Src, s.TCP.SrcPort, s.IPv4.Dst, s.TCP.DstPort,
			tcpFlagString(s.TCP.Flags), s.TCP.Seq, s.TCP.Window,
			int(s.IPv4.Length)-s.IPv4.HeaderLen()-int(s.TCP.DataOffset)*4)
	case s.IsIPv4 && s.IPv4.Protocol == ProtoICMP:
		if icmp, err := DecodeICMP(frame[EthernetHeaderLen+s.IPv4.HeaderLen():]); err == nil {
			fmt.Fprintf(&b, "IP %s > %s: ICMP type %d code %d, length %d",
				s.IPv4.Src, s.IPv4.Dst, icmp.Type, icmp.Code,
				int(s.IPv4.Length)-s.IPv4.HeaderLen())
		} else {
			fmt.Fprintf(&b, "IP %s > %s: ICMP [truncated]", s.IPv4.Src, s.IPv4.Dst)
		}
	case s.IsIPv4:
		fmt.Fprintf(&b, "IP %s > %s: proto %d, length %d",
			s.IPv4.Src, s.IPv4.Dst, s.IPv4.Protocol,
			int(s.IPv4.Length)-s.IPv4.HeaderLen())
	case s.Ethernet.EtherType == EtherTypeARP:
		if a, err := DecodeARP(frame[EthernetHeaderLen:]); err == nil {
			if a.Op == ARPRequest {
				fmt.Fprintf(&b, "ARP, Request who-has %s tell %s", a.TargetIP, a.SenderIP)
			} else {
				fmt.Fprintf(&b, "ARP, Reply %s is-at %s", a.SenderIP, a.SenderHW)
			}
		} else {
			fmt.Fprintf(&b, "ARP [truncated]")
		}
	default:
		fmt.Fprintf(&b, "ethertype %#04x, %s > %s, length %d",
			s.Ethernet.EtherType, s.Ethernet.Src, s.Ethernet.Dst, len(frame))
	}
	return b.String()
}

func tcpFlagString(f uint8) string {
	var parts []string
	if f&TCPFlagSYN != 0 {
		parts = append(parts, "S")
	}
	if f&TCPFlagFIN != 0 {
		parts = append(parts, "F")
	}
	if f&TCPFlagRST != 0 {
		parts = append(parts, "R")
	}
	if f&TCPFlagPSH != 0 {
		parts = append(parts, "P")
	}
	if f&TCPFlagACK != 0 {
		parts = append(parts, ".")
	}
	if f&TCPFlagURG != 0 {
		parts = append(parts, "U")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "")
}
