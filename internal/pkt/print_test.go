package pkt

import (
	"net/netip"
	"strings"
	"testing"
	"time"
)

func TestICMPRoundTrip(t *testing.T) {
	b := []byte{8, 0, 0xf7, 0xff, 0, 1, 0, 2} // echo request
	icmp, err := DecodeICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	if icmp.Type != 8 || icmp.Code != 0 || icmp.Checksum != 0xf7ff {
		t.Fatalf("icmp = %+v", icmp)
	}
	if _, err := DecodeICMP(b[:2]); err == nil {
		t.Fatal("short ICMP accepted")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{
		Op:       ARPRequest,
		SenderHW: MAC{1, 2, 3, 4, 5, 6},
		SenderIP: netip.MustParseAddr("192.168.10.100"),
		TargetIP: netip.MustParseAddr("192.168.10.1"),
	}
	var b [ARPLen]byte
	EncodeARP(b[:], a)
	got, err := DecodeARP(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != a.Op || got.SenderHW != a.SenderHW ||
		got.SenderIP != a.SenderIP || got.TargetIP != a.TargetIP {
		t.Fatalf("round trip = %+v, want %+v", got, a)
	}
}

func TestDecodeARPErrors(t *testing.T) {
	var b [ARPLen]byte
	EncodeARP(b[:], ARP{Op: 1, SenderIP: netip.MustParseAddr("1.2.3.4"), TargetIP: netip.MustParseAddr("5.6.7.8")})
	short := b[:10]
	if _, err := DecodeARP(short); err == nil {
		t.Fatal("short ARP accepted")
	}
	bad := b
	bad[0], bad[1] = 0, 9 // hardware type 9
	if _, err := DecodeARP(bad[:]); err == nil {
		t.Fatal("non-Ethernet ARP accepted")
	}
}

func TestFormatUDP(t *testing.T) {
	frame := BuildUDP(nil, UDPSpec{
		SrcIP: netip.MustParseAddr("192.168.10.100"), DstIP: netip.MustParseAddr("192.168.10.12"),
		SrcPort: 9, DstPort: 9, FrameLen: 200,
	})
	line := Format(time.Time{}, frame)
	for _, want := range []string{"IP 192.168.10.100.9 > 192.168.10.12.9", "UDP", "length 158"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	ts := time.Date(2005, 11, 15, 12, 34, 56, 789012000, time.UTC)
	line = Format(ts, frame)
	if !strings.HasPrefix(line, "12:34:56.789012 ") {
		t.Fatalf("timestamp missing: %q", line)
	}
}

func TestFormatTCP(t *testing.T) {
	b := make([]byte, 54)
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	EncodeEthernet(b, Ethernet{EtherType: EtherTypeIPv4})
	EncodeIPv4(b[14:], IPv4{Length: 40, TTL: 64, Protocol: ProtoTCP, Src: src, Dst: dst})
	EncodeTCP(b[34:], TCP{SrcPort: 80, DstPort: 1234, Seq: 7, Flags: TCPFlagSYN | TCPFlagACK, Window: 1024}, src, dst, nil, true)
	line := Format(time.Time{}, b)
	for _, want := range []string{"10.0.0.1.80 > 10.0.0.2.1234", "Flags [S.]", "seq 7", "win 1024"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

func TestFormatICMPAndARP(t *testing.T) {
	// ICMP echo request.
	b := make([]byte, EthernetHeaderLen+IPv4HeaderLen+8)
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	EncodeEthernet(b, Ethernet{EtherType: EtherTypeIPv4})
	EncodeIPv4(b[14:], IPv4{Length: uint16(len(b) - 14), TTL: 64, Protocol: ProtoICMP, Src: src, Dst: dst})
	b[34] = 8
	line := Format(time.Time{}, b)
	if !strings.Contains(line, "ICMP type 8") {
		t.Fatalf("icmp line %q", line)
	}

	// ARP request.
	arp := make([]byte, EthernetHeaderLen+ARPLen)
	EncodeEthernet(arp, Ethernet{EtherType: EtherTypeARP})
	EncodeARP(arp[14:], ARP{Op: ARPRequest,
		SenderIP: netip.MustParseAddr("192.168.10.100"),
		TargetIP: netip.MustParseAddr("192.168.10.1")})
	line = Format(time.Time{}, arp)
	if !strings.Contains(line, "who-has 192.168.10.1 tell 192.168.10.100") {
		t.Fatalf("arp line %q", line)
	}
}

func TestFormatDegradesGracefully(t *testing.T) {
	junk := []byte{1, 2, 3}
	line := Format(time.Time{}, junk)
	if !strings.Contains(line, "malformed") {
		t.Fatalf("line %q", line)
	}
	var unknown [60]byte
	EncodeEthernet(unknown[:], Ethernet{EtherType: 0x86dd}) // IPv6
	line = Format(time.Time{}, unknown[:])
	if !strings.Contains(line, "ethertype 0x86dd") {
		t.Fatalf("line %q", line)
	}
}

func TestTCPFlagString(t *testing.T) {
	if got := tcpFlagString(TCPFlagSYN); got != "S" {
		t.Fatalf("S = %q", got)
	}
	if got := tcpFlagString(TCPFlagFIN | TCPFlagACK); got != "F." {
		t.Fatalf("F. = %q", got)
	}
	if got := tcpFlagString(0); got != "none" {
		t.Fatalf("none = %q", got)
	}
}
