package pkt

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestChecksumKnownVector(t *testing.T) {
	// Example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	got := Checksum(data, 0)
	if got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// An odd final byte is padded with zero on the right.
	even := Checksum([]byte{0xab, 0x00}, 0)
	odd := Checksum([]byte{0xab}, 0)
	if even != odd {
		t.Fatalf("odd-length checksum %#04x != padded %#04x", odd, even)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	h := Ethernet{
		Dst:       MAC{0, 1, 2, 3, 4, 5},
		Src:       MAC{10, 11, 12, 13, 14, 15},
		EtherType: EtherTypeIPv4,
	}
	var b [EthernetHeaderLen]byte
	EncodeEthernet(b[:], h)
	got, err := DecodeEthernet(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip = %+v, want %+v", got, h)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	h := IPv4{
		TOS:      0x10,
		Length:   120,
		ID:       0xbeef,
		Flags:    2,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      addr("192.168.10.100"),
		Dst:      addr("192.168.10.12"),
	}
	var b [IPv4HeaderLen]byte
	EncodeIPv4(b[:], h)
	got, err := DecodeIPv4(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.Length != h.Length ||
		got.Protocol != h.Protocol || got.ID != h.ID || got.TTL != h.TTL ||
		got.Flags != h.Flags || got.TOS != h.TOS {
		t.Fatalf("round trip = %+v, want %+v", got, h)
	}
	// A correct IPv4 header checksums to zero when summed including the
	// checksum field.
	if ck := Checksum(b[:], 0); ck != 0 {
		t.Fatalf("header checksum verify = %#04x, want 0", ck)
	}
}

func TestDecodeIPv4Errors(t *testing.T) {
	if _, err := DecodeIPv4(make([]byte, 10)); err == nil {
		t.Fatal("short header accepted")
	}
	b := make([]byte, 20)
	b[0] = 0x60 // version 6
	if _, err := DecodeIPv4(b); err == nil {
		t.Fatal("IPv6 version accepted")
	}
	b[0] = 0x43 // IHL 3 (<5)
	if _, err := DecodeIPv4(b); err == nil {
		t.Fatal("bad IHL accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	h := UDP{SrcPort: 9, DstPort: 9, Length: 26}
	var b [UDPHeaderLen]byte
	payload := []byte("abcdefghij1234567890")
	EncodeUDP(b[:], h, addr("10.0.0.1"), addr("10.0.0.2"), payload, true)
	got, err := DecodeUDP(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 9 || got.DstPort != 9 || got.Length != 26 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Checksum == 0 {
		t.Fatal("requested checksum is zero")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCP{SrcPort: 80, DstPort: 54321, Seq: 1e9, Ack: 42, Flags: TCPFlagACK | TCPFlagPSH, Window: 65535}
	var b [TCPHeaderLen]byte
	EncodeTCP(b[:], h, addr("10.0.0.1"), addr("10.0.0.2"), nil, true)
	got, err := DecodeTCP(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != h.SrcPort || got.DstPort != h.DstPort || got.Seq != h.Seq ||
		got.Ack != h.Ack || got.Flags != h.Flags || got.Window != h.Window {
		t.Fatalf("round trip = %+v, want %+v", got, h)
	}
	if got.DataOffset != 5 {
		t.Fatalf("data offset = %d, want 5", got.DataOffset)
	}
}

func TestBuildUDPStructure(t *testing.T) {
	spec := UDPSpec{
		SrcMAC:  MAC{0, 0, 0, 0, 0, 1},
		DstMAC:  MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		SrcIP:   addr("192.168.10.100"),
		DstIP:   addr("192.168.10.12"),
		SrcPort: 9, DstPort: 9,
		FrameLen: 200,
		Seq:      77,
	}
	frame := BuildUDP(nil, spec)
	if len(frame) != 200 {
		t.Fatalf("frame len = %d, want 200", len(frame))
	}
	s, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsIPv4 || !s.IsUDP {
		t.Fatalf("parse = %+v, want IPv4/UDP", s)
	}
	if s.IPv4.Src != spec.SrcIP || s.IPv4.Dst != spec.DstIP {
		t.Fatalf("IPs = %v -> %v", s.IPv4.Src, s.IPv4.Dst)
	}
	if int(s.IPv4.Length) != 200-EthernetHeaderLen {
		t.Fatalf("IP length = %d", s.IPv4.Length)
	}
	if int(s.UDP.Length) != 200-EthernetHeaderLen-IPv4HeaderLen {
		t.Fatalf("UDP length = %d", s.UDP.Length)
	}
	payload := frame[EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen:]
	if binary.BigEndian.Uint32(payload[:4]) != 77 {
		t.Fatal("sequence stamp missing")
	}
	// IP header checksum must verify.
	if ck := Checksum(frame[EthernetHeaderLen:EthernetHeaderLen+IPv4HeaderLen], 0); ck != 0 {
		t.Fatalf("IP checksum verify = %#04x", ck)
	}
}

func TestBuildUDPClampsLength(t *testing.T) {
	frame := BuildUDP(nil, UDPSpec{FrameLen: 10, SrcIP: addr("1.2.3.4"), DstIP: addr("5.6.7.8")})
	if len(frame) != MinUDPFrameLen {
		t.Fatalf("frame len = %d, want %d", len(frame), MinUDPFrameLen)
	}
	frame = BuildUDP(nil, UDPSpec{FrameLen: 9999, SrcIP: addr("1.2.3.4"), DstIP: addr("5.6.7.8")})
	if len(frame) != MaxFrameLen {
		t.Fatalf("frame len = %d, want %d", len(frame), MaxFrameLen)
	}
}

func TestBuildUDPReusesBuffer(t *testing.T) {
	buf := make([]byte, MaxFrameLen)
	f1 := BuildUDP(buf, UDPSpec{FrameLen: 100, SrcIP: addr("1.2.3.4"), DstIP: addr("5.6.7.8")})
	if &f1[0] != &buf[0] {
		t.Fatal("BuildUDP allocated despite sufficient buffer")
	}
}

// Property: every frame size in the valid range round-trips through
// Parse with consistent length fields.
func TestBuildParseProperty(t *testing.T) {
	f := func(rawLen uint16, seq uint32) bool {
		n := MinUDPFrameLen + int(rawLen)%(MaxFrameLen-MinUDPFrameLen+1)
		frame := BuildUDP(nil, UDPSpec{
			SrcIP: addr("192.168.10.100"), DstIP: addr("192.168.10.12"),
			FrameLen: n, Seq: seq,
		})
		s, err := Parse(frame)
		if err != nil || !s.IsUDP {
			return false
		}
		return len(frame) == n &&
			int(s.IPv4.Length) == n-EthernetHeaderLen &&
			int(s.UDP.Length) == n-EthernetHeaderLen-IPv4HeaderLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the IPv4 checksum of any encoded header verifies to zero.
func TestIPv4ChecksumProperty(t *testing.T) {
	f := func(id uint16, ttl uint8, length uint16, srcRaw, dstRaw uint32) bool {
		var s4, d4 [4]byte
		binary.BigEndian.PutUint32(s4[:], srcRaw)
		binary.BigEndian.PutUint32(d4[:], dstRaw)
		h := IPv4{
			Length: length, ID: id, TTL: ttl, Protocol: ProtoTCP,
			Src: netip.AddrFrom4(s4), Dst: netip.AddrFrom4(d4),
		}
		var b [IPv4HeaderLen]byte
		EncodeIPv4(b[:], h)
		return Checksum(b[:], 0) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseNonIP(t *testing.T) {
	var b [60]byte
	EncodeEthernet(b[:], Ethernet{EtherType: EtherTypeARP})
	s, err := Parse(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if s.IsIPv4 {
		t.Fatal("ARP parsed as IPv4")
	}
}
