// Package arch defines the cost models of the two processor architectures
// the thesis compares (§2.4): dual Intel Xeon 3.06 GHz (shared front-side
// bus, Netburst core, Hyperthreading, 512 kB L2) and dual AMD Opteron 244
// (1.8 GHz, on-die memory controllers linked by HyperTransport, 1 MB L2).
//
// All costs are nanoseconds of CPU time for a given primitive operation.
// They are *calibration constants*, not measurements: each value is chosen
// so the structural model (copies, buffers, interrupts, scheduling —
// implemented in internal/capture) reproduces the qualitative results of
// the thesis. The anchor observations are listed next to each constant.
package arch

import "math"

// Profile is the cost model of one machine type.
type Profile struct {
	Name string

	// FixedCost multiplies all fixed (compute-bound) kernel and
	// application costs. Baseline 1.0 is the Opteron; the Xeon pays a
	// penalty despite its higher clock (Netburst's long pipeline, slow
	// syscalls/interrupts — the thesis's overall Opteron > Xeon result).
	FixedCost float64

	// MemNsPerByte is the cost of touching one byte in a copy when the
	// data exceeds cache locality (packet copies are essentially always
	// cache-cold on the receive path).
	MemNsPerByte float64

	// MemContention multiplies memory costs while the *other* CPU is also
	// memory-active: the Xeons share one front-side bus (§2.4, Figure
	// 2.5a); the Opterons have independent controllers.
	MemContention float64

	// CacheBytes is the L2 size; bulk copies larger than this thrash the
	// cache and pay CachePenalty on their per-byte cost. This drives the
	// thesis's Figure 6.4(a) result that FreeBSD in single-processor mode
	// *degrades* with large double buffers ("increased expense of copying
	// the complete buffer").
	CacheBytes   int
	CachePenalty float64

	// ZlibNsPerByteL3/L9 are the per-byte compression costs at zlib levels
	// 3 and 9. Here the Xeon is *better* — the one workload where the
	// thesis saw Intel ahead ("the Intel processors seem to be much more
	// efficient for the special task of compression", §6.3.4).
	ZlibNsPerByteL3 float64
	ZlibNsPerByteL9 float64

	// Hyperthreading: whether it exists, and the per-logical-CPU slowdown
	// while the sibling is busy. 1.75 means two busy siblings each run at
	// 1/1.75 speed (≈14 % aggregate gain) — enough to be "neither a
	// noticeable amelioration nor deterioration" (§6.3.7).
	HasHyperthreading bool
	HTSlowdown        float64

	// DiskWriteMBps and DiskCPUPerByteNS model the 3ware RAID set: the
	// bonnie++ histogram (Figure 6.13) shows none of the systems writing
	// at line speed (125 MB/s needed) and noticeable CPU use while
	// writing.
	DiskWriteMBps    float64
	DiskCPUPerByteNS float64

	// PCIeGbps and MemBWGbps cap the NIC→host DMA ingest rate (practical
	// PCIe slot bandwidth and memory write bandwidth, in Gbit/s); the
	// smaller of the two is the ceiling. 0 means no modeled ceiling — the
	// 2005 profiles, whose GigE NIC cannot come near the PCI-X bus. At
	// 40/100G the bus, not the CPU, is often the first wall.
	PCIeGbps  float64
	MemBWGbps float64
}

// Opteron244 models swan/moorhen: dual AMD Opteron 244 (1.8 GHz, AMD 8111,
// 1 MB L2).
func Opteron244() Profile {
	return Profile{
		Name:              "AMD Opteron 244",
		FixedCost:         1.00,
		MemNsPerByte:      0.32, // ≈3.1 GB/s effective packet-copy bandwidth
		MemContention:     1.10, // independent memory controllers
		CacheBytes:        1 << 20,
		CachePenalty:      1.7,
		ZlibNsPerByteL3:   24.0,
		ZlibNsPerByteL9:   170.0,
		HasHyperthreading: false,
		HTSlowdown:        1.0,
		DiskWriteMBps:     102, // bonnie++: Opteron boxes wrote fastest
		DiskCPUPerByteNS:  2.3,
	}
}

// Xeon306 models snipe/flamingo: dual Intel Xeon 3.06 GHz (ServerWorks
// GC-LE, 512 kB L2, Hyperthreading-capable).
func Xeon306() Profile {
	return Profile{
		Name:              "Intel Xeon 3.06",
		FixedCost:         1.35,
		MemNsPerByte:      0.45, // ≈2.2 GB/s, shared FSB
		MemContention:     1.65,
		CacheBytes:        512 << 10,
		CachePenalty:      1.9,
		ZlibNsPerByteL3:   16.0, // Netburst executes zlib's tight loops well
		ZlibNsPerByteL9:   115.0,
		HasHyperthreading: true,
		HTSlowdown:        1.75,
		DiskWriteMBps:     88,
		DiskCPUPerByteNS:  3.0,
	}
}

// XeonScalable models a ~2019 capture host: Intel Xeon Scalable (Cascade
// Lake class), many cores, fast syscalls and interrupts relative to
// Netburst, DDR4, NVMe — but a 100G NIC in a PCIe 3.0 x8 slot, whose
// ~63 Gbit/s practical bandwidth is the binding ceiling at 100G. The
// constants are calibration anchors like the 2005 profiles: chosen so the
// modern sweeps (EXPERIMENTS.md "Modern capture stacks") place the
// bottlenecks where the post-2005 literature reports them.
func XeonScalable() Profile {
	return Profile{
		Name:              "Intel Xeon Scalable",
		FixedCost:         0.16, // ~6x the Opteron's per-op throughput
		MemNsPerByte:      0.05, // ≈20 GB/s effective single-stream copy
		MemContention:     1.15, // shared LLC/mesh, mild
		CacheBytes:        32 << 20,
		CachePenalty:      1.35,
		ZlibNsPerByteL3:   4.0,
		ZlibNsPerByteL9:   28.0,
		HasHyperthreading: true,
		HTSlowdown:        1.25,
		DiskWriteMBps:     1800, // NVMe
		DiskCPUPerByteNS:  0.25,
		PCIeGbps:          63,  // PCIe 3.0 x8, practical
		MemBWGbps:         300, // DDR4-2666, 6 channels, write-side share
	}
}

// EpycRome models a ~2020 AMD EPYC Rome capture host: point-to-point
// memory (no shared-bus contention to speak of), and a PCIe 4.0 x8 slot
// whose ~126 Gbit/s keeps the bus ahead of a 100G NIC — on this host the
// wall moves back to the cores.
func EpycRome() Profile {
	return Profile{
		Name:              "AMD EPYC Rome",
		FixedCost:         0.15,
		MemNsPerByte:      0.045,
		MemContention:     1.05,
		CacheBytes:        16 << 20, // per-CCX L3 slice
		CachePenalty:      1.3,
		ZlibNsPerByteL3:   3.8,
		ZlibNsPerByteL9:   26.0,
		HasHyperthreading: true,
		HTSlowdown:        1.25,
		DiskWriteMBps:     2000,
		DiskCPUPerByteNS:  0.22,
		PCIeGbps:          126, // PCIe 4.0 x8, practical
		MemBWGbps:         340,
	}
}

// ZlibNsPerByte interpolates the per-byte cost for a compression level in
// [1, 9]. Levels between the two anchors scale geometrically, which tracks
// zlib's real cost curve closely enough for a load generator.
func (p Profile) ZlibNsPerByte(level int) float64 {
	if level <= 0 {
		return 0.5 // store-only framing cost
	}
	if level <= 3 {
		return p.ZlibNsPerByteL3 * float64(level) / 3
	}
	if level >= 9 {
		return p.ZlibNsPerByteL9
	}
	ratio := p.ZlibNsPerByteL9 / p.ZlibNsPerByteL3
	exp := float64(level-3) / 6
	return p.ZlibNsPerByteL3 * math.Pow(ratio, exp)
}
