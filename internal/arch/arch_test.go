package arch

import "testing"

func TestProfilesEncodeTheThesisContrasts(t *testing.T) {
	amd, intel := Opteron244(), Xeon306()
	// The Opteron is the overall winner: cheaper fixed kernel work,
	// cheaper copies, less memory contention, bigger cache.
	if amd.FixedCost >= intel.FixedCost {
		t.Error("Opteron fixed cost should be below Xeon")
	}
	if amd.MemNsPerByte >= intel.MemNsPerByte {
		t.Error("Opteron copy cost should be below Xeon")
	}
	if amd.MemContention >= intel.MemContention {
		t.Error("the shared FSB must contend more than HyperTransport")
	}
	if amd.CacheBytes <= intel.CacheBytes {
		t.Error("Opteron 244 has the larger L2")
	}
	// ... except for zlib, where the thesis saw Intel ahead.
	if intel.ZlibNsPerByteL3 >= amd.ZlibNsPerByteL3 {
		t.Error("Xeon should compress faster at level 3")
	}
	if intel.ZlibNsPerByteL9 >= amd.ZlibNsPerByteL9 {
		t.Error("Xeon should compress faster at level 9")
	}
	// Only the Xeon has Hyperthreading.
	if amd.HasHyperthreading || !intel.HasHyperthreading {
		t.Error("HT availability wrong")
	}
	// Neither disk reaches the 125 MB/s a loaded GigE would need.
	if amd.DiskWriteMBps >= 125 || intel.DiskWriteMBps >= 125 {
		t.Error("disks must be slower than line speed (Figure 6.13)")
	}
}

func TestZlibInterpolation(t *testing.T) {
	p := Opteron244()
	if p.ZlibNsPerByte(0) <= 0 {
		t.Error("level 0 should still cost framing")
	}
	if got := p.ZlibNsPerByte(3); got != p.ZlibNsPerByteL3 {
		t.Errorf("level 3 = %v, want anchor %v", got, p.ZlibNsPerByteL3)
	}
	if got := p.ZlibNsPerByte(9); got != p.ZlibNsPerByteL9 {
		t.Errorf("level 9 = %v, want anchor %v", got, p.ZlibNsPerByteL9)
	}
	if got := p.ZlibNsPerByte(12); got != p.ZlibNsPerByteL9 {
		t.Errorf("level 12 clamped = %v", got)
	}
	// Monotone between the anchors.
	prev := 0.0
	for l := 1; l <= 9; l++ {
		v := p.ZlibNsPerByte(l)
		if v <= prev {
			t.Fatalf("zlib cost not increasing at level %d: %v <= %v", l, v, prev)
		}
		prev = v
	}
}
