package netchaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"
)

// chaosPlan is a hot mix for tests: every class likely enough that a
// few hundred requests exercise all of them, with delays short enough
// to keep the test fast.
func chaosPlan(seed uint64) *Plan {
	p := DefaultPlan(seed)
	p.LatencyMax = time.Millisecond
	p.SlowBodyDelay = 100 * time.Microsecond
	return p
}

// runSchedule drives n requests through a fresh transport against a
// trivial backend and returns the injected fault classes in order,
// keyed by request number.
func runSchedule(t *testing.T, seed uint64, peer string, n int) []string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"ok":true,"payload":"0123456789abcdef0123456789abcdef"}`)
	}))
	defer srv.Close()
	var faults []string
	tr := &Transport{Plan: chaosPlan(seed), Peer: peer}
	tr.OnFault = func(c Class, detail string) {
		faults = append(faults, fmt.Sprintf("%d:%s", tr.n.Load(), c))
	}
	client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	for i := 0; i < n; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return faults
}

// TestTransportDeterministic: one seed and peer → one fault schedule,
// exactly reproducible; a different peer reshuffles it.
func TestTransportDeterministic(t *testing.T) {
	a := runSchedule(t, 7, "w1", 300)
	b := runSchedule(t, 7, "w1", 300)
	c := runSchedule(t, 7, "w2", 300)
	if len(a) == 0 {
		t.Fatal("300 requests injected nothing — the plan is inert")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed+peer, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed+peer diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different peers drew identical fault schedules")
		}
	}
}

// TestTransportFaultShapes: over a long request stream the transport
// produces each failure shape — typed transport errors for drops and
// partitions, reset/truncated/malformed bodies for response corruption —
// and every injected error satisfies IsInjected.
func TestTransportFaultShapes(t *testing.T) {
	const body = `{"ok":true,"n":12345,"pad":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, body)
	}))
	defer srv.Close()

	tr := &Transport{Plan: chaosPlan(3), Peer: "shapes"}
	classes := map[Class]int{}
	tr.OnFault = func(c Class, detail string) { classes[c]++ }
	client := &http.Client{Transport: tr, Timeout: 5 * time.Second}

	var transportErrs, bodyErrs, corrupt int
	for i := 0; i < 600; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			if !errors.Is(err, syscall.ECONNRESET) && !errors.Is(err, syscall.ECONNREFUSED) &&
				!errors.Is(err, syscall.ENETUNREACH) {
				t.Fatalf("request %d: non-injected-shaped error %v", i, err)
			}
			transportErrs++
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			bodyErrs++
			continue
		}
		var v struct {
			OK bool `json:"ok"`
			N  int  `json:"n"`
		}
		if err := json.Unmarshal(data, &v); err != nil || !v.OK || v.N != 12345 {
			corrupt++
		}
	}
	for _, want := range []Class{Latency, DropRequest, DropResponse, Reset, SlowBody, TruncateBody, MalformedBody, Partition} {
		if classes[want] == 0 {
			t.Errorf("class %s never injected in 600 requests (got %v)", want, classes)
		}
	}
	if transportErrs == 0 || bodyErrs == 0 || corrupt == 0 {
		t.Fatalf("missing failure shape: transportErrs=%d bodyErrs=%d corrupt=%d",
			transportErrs, bodyErrs, corrupt)
	}
}

// TestPartitionEpochs: partitions arrive as multi-request outage windows
// (every request of a drawn epoch fails), not independent blips.
func TestPartitionEpochs(t *testing.T) {
	p := &Plan{Seed: 11, PPartition: 0.3, EpochLen: 8}
	tr := &Transport{Plan: p, Peer: "epoch"}
	// No server needed: a partitioned request fails before dialing.
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, "http://127.0.0.1:1/x", nil)
	// The epoch of request n (1-based) is n/EpochLen: within one epoch
	// the partition verdict is constant.
	byEpoch := map[uint64][]bool{}
	for i := 0; i < 96; i++ {
		_, err := tr.RoundTrip(req.Clone(context.Background()))
		epoch := uint64(i+1) / 8
		byEpoch[epoch] = append(byEpoch[epoch], errors.Is(err, ErrInjectedPartition))
	}
	var saw bool
	for epoch, verdicts := range byEpoch {
		saw = saw || verdicts[0]
		for _, v := range verdicts[1:] {
			if v != verdicts[0] {
				t.Fatalf("epoch %d not constant: %v", epoch, verdicts)
			}
		}
	}
	if !saw {
		t.Fatal("no partitioned epoch in 12 epochs at p=0.3")
	}
}

// TestListenerResets: a seeded listener resets a fraction of inbound
// connections; unaffected ones work, and the server never sees the
// reset ones.
func TestListenerResets(t *testing.T) {
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	ln := &Listener{Listener: srv.Listener, Plan: &Plan{Seed: 5, PAcceptReset: 0.3}}
	srv.Listener = ln
	srv.Start()
	defer srv.Close()

	// Fresh connection per request, so every request is one accept draw.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
	var okN, failN int
	for i := 0; i < 60; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			failN++
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(data) == "ok" {
			okN++
		}
	}
	if okN == 0 || failN == 0 {
		t.Fatalf("want a mix of served and reset connections, got ok=%d fail=%d", okN, failN)
	}
	if ln.Injected() == 0 {
		t.Fatal("listener reports no injected resets")
	}
}

// TestIsInjected separates the harness's typed errors from real ones.
func TestIsInjected(t *testing.T) {
	for _, err := range []error{ErrInjectedPartition, ErrInjectedDrop, ErrInjectedLost, ErrInjectedReset} {
		if !IsInjected(fmt.Errorf("wrap: %w", err)) {
			t.Errorf("IsInjected(%v) = false", err)
		}
	}
	if IsInjected(io.EOF) || IsInjected(nil) {
		t.Error("IsInjected misclassifies real errors")
	}
}
