// Package netchaos injects seeded, deterministic network faults into
// the coordinator↔worker dispatch protocol: the infrastructure
// counterpart of the simulation fault model (internal/faults), built on
// the same splitmix64 draw discipline. A chaos run answers the question
// the thesis asks of capture stacks — how does the system behave under
// stress — for the distributed layer itself: leases must survive
// partitions, completions must survive response loss (idempotent
// replay), and the merged campaign output must stay byte-identical to
// an undistributed run no matter which messages the network mangles.
//
// Two injection points:
//
//   - Transport is a fault-injecting http.RoundTripper wrapped around a
//     worker's client: per request it may add latency, drop the request
//     before it is sent, deliver the request but lose the response (the
//     duplicate-inducing fault: the worker retries a call the
//     coordinator already served), reset the connection mid-body, slow
//     the body to a trickle (a slow-loris server, defeated by the
//     client's timeout), truncate the body, or corrupt the JSON.
//     Partitions are epochs of consecutive requests that all fail fast,
//     so a worker sees a real outage window, not independent blips.
//   - Listener wraps the coordinator's accept loop: a seeded fraction of
//     inbound connections are reset at accept, which every client —
//     workers and monitoring consumers alike — must tolerate.
//
// Every draw is a pure function of (seed, peer, per-class counter):
// the same seed replays the same fault schedule.
package netchaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Class identifies one injectable network fault.
type Class int

const (
	// Latency: the request is delayed before dispatch.
	Latency Class = iota
	// Partition: the request falls inside a partition epoch and fails
	// fast without touching the network.
	Partition
	// DropRequest: the request is never sent; the caller sees a
	// connection error.
	DropRequest
	// DropResponse: the request is delivered and served, but the
	// response is lost — the fault that forces idempotency-safe replay.
	DropResponse
	// Reset: the connection is reset mid-response-body.
	Reset
	// SlowBody: the response body arrives at a trickle (slow-loris); a
	// client without timeouts hangs forever.
	SlowBody
	// TruncateBody: the response body is cut short.
	TruncateBody
	// MalformedBody: response bytes are corrupted in flight.
	MalformedBody
	// AcceptReset: an inbound connection is reset at accept
	// (Listener-side).
	AcceptReset

	NumClasses
)

// String returns the short fault label used in events and metrics.
func (c Class) String() string {
	switch c {
	case Latency:
		return "latency"
	case Partition:
		return "partition"
	case DropRequest:
		return "drop-request"
	case DropResponse:
		return "drop-response"
	case Reset:
		return "reset"
	case SlowBody:
		return "slow-body"
	case TruncateBody:
		return "truncate-body"
	case MalformedBody:
		return "malformed-body"
	case AcceptReset:
		return "accept-reset"
	default:
		return fmt.Sprintf("netfault(%d)", int(c))
	}
}

// Plan is the seeded fault mix. The zero Plan injects nothing;
// DefaultPlan returns the -netchaos mix. All draws are pure functions of
// (Seed, peer, class, counter), so replays are exact, every fault is
// transient (the retry draws a fresh counter), and a campaign always
// terminates.
type Plan struct {
	Seed uint64

	PLatency      float64
	PDropRequest  float64
	PDropResponse float64
	PReset        float64
	PSlowBody     float64
	PTruncate     float64
	PMalformed    float64
	PAcceptReset  float64

	// PPartition is the chance that a partition epoch (EpochLen
	// consecutive requests of one transport) is an outage window.
	PPartition float64
	EpochLen   int

	// LatencyMax bounds the injected delay; SlowBodyDelay is the
	// per-read trickle pause of a slow-loris body.
	LatencyMax    time.Duration
	SlowBodyDelay time.Duration
}

// DefaultPlan returns the calibrated -netchaos mix: every fault class
// fires many times over a campaign, partitions come in real windows,
// and everything clears fast enough that bounded retry plus the
// coordinator's lease expiry always converge.
func DefaultPlan(seed uint64) *Plan {
	return &Plan{
		Seed:          seed,
		PLatency:      0.10,
		PDropRequest:  0.06,
		PDropResponse: 0.05,
		PReset:        0.04,
		PSlowBody:     0.03,
		PTruncate:     0.04,
		PMalformed:    0.04,
		PAcceptReset:  0.05,
		PPartition:    0.12,
		EpochLen:      24,
		LatencyMax:    80 * time.Millisecond,
		SlowBodyDelay: 35 * time.Millisecond,
	}
}

// splitmix64 is the shared deterministic mixer (see internal/faults).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func mix(keys ...uint64) uint64 {
	h := uint64(0x8f1bbcdcbfa53e0b)
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	return h
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

func (p *Plan) roll(prob float64, peer uint64, c Class, n uint64) bool {
	if p == nil || prob <= 0 {
		return false
	}
	return unit(mix(p.Seed, peer, uint64(c)*0x9e3779b97f4a7c15, n)) < prob
}

// Typed injected errors, so tests and logs can tell chaos from real
// failures. They unwrap to the syscall errno a real network stack would
// surface.
var (
	ErrInjectedPartition = fmt.Errorf("netchaos: partition window: %w", syscall.ENETUNREACH)
	ErrInjectedDrop      = fmt.Errorf("netchaos: request dropped: %w", syscall.ECONNREFUSED)
	ErrInjectedLost      = fmt.Errorf("netchaos: response lost: %w", syscall.ECONNRESET)
	ErrInjectedReset     = fmt.Errorf("netchaos: connection reset: %w", syscall.ECONNRESET)
)

// IsInjected reports whether err originated in this package's fault
// injection (directly or wrapped).
func IsInjected(err error) bool {
	return errors.Is(err, ErrInjectedPartition) || errors.Is(err, ErrInjectedDrop) ||
		errors.Is(err, ErrInjectedLost) || errors.Is(err, ErrInjectedReset)
}

// Transport is the fault-injecting http.RoundTripper. Wrap a worker's
// client with it; the zero value with a nil Plan is a passthrough.
type Transport struct {
	// Plan draws the faults; nil injects nothing.
	Plan *Plan
	// Base performs the real round trips; nil = http.DefaultTransport.
	Base http.RoundTripper
	// Peer salts the draws (conventionally the worker id), so two
	// workers sharing a seed see independent fault schedules.
	Peer string
	// OnFault, when set, observes every injected fault. Must not block.
	OnFault func(c Class, detail string)

	n        atomic.Uint64 // request counter: the draw sequence
	injected atomic.Uint64

	peerOnce sync.Once
	peerHash uint64
}

// Injected reports how many faults this transport has injected.
func (t *Transport) Injected() uint64 { return t.injected.Load() }

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) peer() uint64 {
	t.peerOnce.Do(func() { t.peerHash = hashString(t.Peer) })
	return t.peerHash
}

func (t *Transport) fault(c Class, detail string) {
	t.injected.Add(1)
	if t.OnFault != nil {
		t.OnFault(c, detail)
	}
}

// closeReq releases a request body we are not going to send — the
// RoundTripper contract even on error paths.
func closeReq(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// RoundTrip performs one request under the fault plan.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.Plan
	if p == nil {
		return t.base().RoundTrip(req)
	}
	n := t.n.Add(1)
	peer := t.peer()

	// Partition epochs: EpochLen consecutive requests share one outage
	// draw, so a partition is a window, not a blip.
	if p.EpochLen > 0 && p.roll(p.PPartition, peer, Partition, n/uint64(p.EpochLen)) {
		closeReq(req)
		t.fault(Partition, fmt.Sprintf("%s %s (epoch %d)", req.Method, req.URL.Path, n/uint64(p.EpochLen)))
		return nil, ErrInjectedPartition
	}
	if p.roll(p.PLatency, peer, Latency, n) {
		d := time.Duration(unit(mix(p.Seed, peer, uint64(Latency), n, 1)) * float64(p.LatencyMax))
		t.fault(Latency, fmt.Sprintf("%s %s +%s", req.Method, req.URL.Path, d.Round(time.Millisecond)))
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			closeReq(req)
			return nil, req.Context().Err()
		}
	}
	if p.roll(p.PDropRequest, peer, DropRequest, n) {
		closeReq(req)
		t.fault(DropRequest, req.Method+" "+req.URL.Path)
		return nil, ErrInjectedDrop
	}

	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}

	switch {
	case p.roll(p.PDropResponse, peer, DropResponse, n):
		// The server did the work; the answer evaporates. The caller must
		// treat the call as failed and replay it — idempotently.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.fault(DropResponse, req.Method+" "+req.URL.Path)
		return nil, ErrInjectedLost
	case p.roll(p.PReset, peer, Reset, n):
		t.fault(Reset, req.Method+" "+req.URL.Path)
		resp.Body = &resetBody{inner: resp.Body, after: 1 + int(mix(p.Seed, peer, uint64(Reset), n, 1)%64)}
	case p.roll(p.PSlowBody, peer, SlowBody, n):
		t.fault(SlowBody, req.Method+" "+req.URL.Path)
		resp.Body = &slowBody{inner: resp.Body, delay: p.SlowBodyDelay}
	case p.roll(p.PTruncate, peer, TruncateBody, n):
		t.fault(TruncateBody, req.Method+" "+req.URL.Path)
		resp.Body = truncateBody(resp.Body, unit(mix(p.Seed, peer, uint64(TruncateBody), n, 1)))
	case p.roll(p.PMalformed, peer, MalformedBody, n):
		t.fault(MalformedBody, req.Method+" "+req.URL.Path)
		resp.Body = malformBody(resp.Body, mix(p.Seed, peer, uint64(MalformedBody), n, 1))
	}
	return resp, nil
}

// resetBody yields a few bytes, then fails like a peer reset.
type resetBody struct {
	inner io.ReadCloser
	after int
}

func (b *resetBody) Read(p []byte) (int, error) {
	if b.after <= 0 {
		return 0, ErrInjectedReset
	}
	if len(p) > b.after {
		p = p[:b.after]
	}
	n, err := b.inner.Read(p)
	b.after -= n
	if err == io.EOF {
		return n, err // the body was shorter than the reset point
	}
	if b.after <= 0 {
		return n, ErrInjectedReset
	}
	return n, err
}

func (b *resetBody) Close() error { return b.inner.Close() }

// slowBody delivers one byte per read with a pause: the slow-loris
// shape. A client with a sane timeout kills it; one without hangs.
type slowBody struct {
	inner io.ReadCloser
	delay time.Duration
}

func (b *slowBody) Read(p []byte) (int, error) {
	time.Sleep(b.delay)
	if len(p) > 1 {
		p = p[:1]
	}
	return b.inner.Read(p)
}

func (b *slowBody) Close() error { return b.inner.Close() }

// truncateBody reads the whole body and serves only a prefix, ending in
// an unexpected EOF — a torn response.
func truncateBody(inner io.ReadCloser, frac float64) io.ReadCloser {
	data, _ := io.ReadAll(inner)
	inner.Close()
	cut := int(frac * float64(len(data)))
	if cut >= len(data) && len(data) > 0 {
		cut = len(data) - 1
	}
	return &errorTailBody{data: data[:cut], err: io.ErrUnexpectedEOF}
}

// malformBody corrupts a deterministic byte of the response.
func malformBody(inner io.ReadCloser, key uint64) io.ReadCloser {
	data, _ := io.ReadAll(inner)
	inner.Close()
	if len(data) > 0 {
		i := int(key % uint64(len(data)))
		data[i] ^= 0x5a
		if data[i] == '\n' { // keep NDJSON framing plausible, corrupt content
			data[i] = '#'
		}
	}
	return &errorTailBody{data: data, err: io.EOF}
}

// errorTailBody serves a byte slice and ends with err.
type errorTailBody struct {
	data []byte
	off  int
	err  error
}

func (b *errorTailBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		if b.err == io.EOF {
			return 0, io.EOF
		}
		return 0, b.err
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *errorTailBody) Close() error { return nil }

// Listener wraps a net.Listener with seeded accept-side faults: a drawn
// fraction of inbound connections are reset immediately after accept.
// Wrap the coordinator's listener so every protocol client — workers,
// dashboards, health checks — sees occasional resets.
type Listener struct {
	net.Listener
	// Plan draws the faults; nil is a passthrough.
	Plan *Plan
	// OnFault observes injected faults; must not block.
	OnFault func(c Class, detail string)

	n        atomic.Uint64
	injected atomic.Uint64
}

// Injected reports how many connections this listener has reset.
func (l *Listener) Injected() uint64 { return l.injected.Load() }

// Accept returns the next healthy connection, resetting the drawn ones.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		p := l.Plan
		if p == nil {
			return conn, nil
		}
		n := l.n.Add(1)
		if !p.roll(p.PAcceptReset, 0, AcceptReset, n) {
			return conn, nil
		}
		// RST instead of FIN where the stack allows it: the client sees
		// "connection reset by peer", the harshest well-formed failure.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		conn.Close()
		l.injected.Add(1)
		if l.OnFault != nil {
			l.OnFault(AcceptReset, conn.RemoteAddr().String())
		}
	}
}
