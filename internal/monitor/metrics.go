// Prometheus metrics, hand-rolled in the text exposition format — the
// repo deliberately carries no dependencies, and the format is three
// lines per metric.
package monitor

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"

	"repro/internal/capture"
)

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c := s.reg.Counters()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("repro_cells_completed_total", "Measurement cells finished (replayed cells included).", c.Cells)
	counter("repro_cells_replayed_total", "Cells served from the campaign journal instead of running.", c.Replayed)
	counter("repro_cells_retried_total", "Cell attempts that failed validation and were retried.", c.Retries)
	counter("repro_cells_quarantined_total", "Cells that exhausted their retry budget.", c.Quarantined)
	counter("repro_points_completed_total", "Aggregated measurement points emitted.", c.Points)
	counter("repro_sniffer_dead_total", "Sniffers declared dead by the supervision layer.", c.SnifferDead)
	counter("repro_journal_checkpoints_total", "Cells made durable in the campaign journal.", c.Checkpoints)
	counter("repro_leases_granted_total", "Cell leases granted by the dispatch coordinator.", c.Leases)
	counter("repro_leases_expired_total", "Leases expired on missed heartbeats or dead workers.", c.LeasesExpired)

	if workers := s.reg.WorkerCells(); len(workers) > 0 {
		fmt.Fprintf(w, "# HELP repro_worker_cells_completed_total Cells completed per dispatch worker.\n")
		fmt.Fprintf(w, "# TYPE repro_worker_cells_completed_total counter\n")
		names := make([]string, 0, len(workers))
		for n := range workers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "repro_worker_cells_completed_total{worker=%q} %d\n", n, workers[n])
		}
	}

	fmt.Fprintf(w, "# HELP repro_drop_packets_total Packets dropped, by drop cause, summed over completed cells.\n")
	fmt.Fprintf(w, "# TYPE repro_drop_packets_total counter\n")
	for _, cause := range capture.CausesByName() {
		fmt.Fprintf(w, "repro_drop_packets_total{cause=%q} %d\n", cause.String(), c.DropsByCause[cause])
	}

	if len(c.Chaos) > 0 {
		fmt.Fprintf(w, "# HELP repro_chaos_injected_total Faults injected by the chaos harness, by fault class.\n")
		fmt.Fprintf(w, "# TYPE repro_chaos_injected_total counter\n")
		faults := make([]string, 0, len(c.Chaos))
		for f := range c.Chaos {
			faults = append(faults, f)
		}
		sort.Strings(faults)
		for _, f := range faults {
			fmt.Fprintf(w, "repro_chaos_injected_total{fault=%q} %d\n", f, c.Chaos[f])
		}
	}

	counter("repro_bus_events_published_total", "Events published on the monitoring bus.", s.hub.Published())
	gauge("repro_bus_subscribers", "Current bus subscribers.", uint64(s.hub.Subscribers()))

	fmt.Fprintf(w, "# HELP repro_bus_events_dropped_total Events dropped at a stalled subscriber's bounded ring.\n")
	fmt.Fprintf(w, "# TYPE repro_bus_events_dropped_total counter\n")
	drops := s.hub.Drops()
	labels := make([]string, 0, len(drops))
	for l := range drops {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(w, "repro_bus_events_dropped_total{subscriber=%q} %d\n", l, drops[l])
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("repro_goroutines", "Current goroutine count.", uint64(runtime.NumGoroutine()))
	gauge("repro_heap_alloc_bytes", "Bytes of allocated heap objects.", ms.HeapAlloc)
}
