package monitor

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/journal"
)

// CellView is the JSON shape of one completed measurement cell, as
// served by /api/campaigns/{id}/cells and carried in the SSE stream.
type CellView struct {
	Seq         uint64         `json:"seq,omitempty"`
	Experiment  string         `json:"experiment"`
	System      string         `json:"system"`
	Point       uint64         `json:"point"`
	X           float64        `json:"x,omitempty"`
	Rep         int            `json:"rep"`
	Replayed    bool           `json:"replayed,omitempty"`
	Quarantined bool           `json:"quarantined,omitempty"`
	Degraded    bool           `json:"degraded,omitempty"`
	Attempts    int            `json:"attempts,omitempty"`
	RatePct     float64        `json:"ratePct"`
	CPUPct      float64        `json:"cpuPct"`
	Generated   uint64         `json:"generated"`
	Dropped     uint64         `json:"dropped"`
	Drops       capture.Ledger `json:"drops"`
}

// CampaignInfo is one row of /api/campaigns.
type CampaignInfo struct {
	ID          string   `json:"id"`
	Fingerprint string   `json:"fingerprint,omitempty"`
	Live        bool     `json:"live"`
	Finished    bool     `json:"finished,omitempty"`
	Cells       int      `json:"cells"`
	Points      int      `json:"points,omitempty"`
	Retries     int      `json:"retries,omitempty"`
	Quarantined int      `json:"quarantined,omitempty"`
	Experiments []string `json:"experiments,omitempty"`
	Source      string   `json:"source"` // "live" or "journal"
}

// Counters are the process-wide event tallies behind /metrics.
type Counters struct {
	Cells         uint64
	Replayed      uint64
	Retries       uint64
	Quarantined   uint64
	Points        uint64
	SnifferDead   uint64
	Checkpoints   uint64
	Leases        uint64
	LeasesExpired uint64
	DropsByCause  [capture.NumCauses]uint64
	// Chaos tallies injected faults by class label ("latency",
	// "write-enospc", …), fed by EventChaos. Nil until the first
	// injection.
	Chaos map[string]uint64
}

// campaignState is the in-memory record of a campaign observed live on
// the bus.
type campaignState struct {
	id          string
	fingerprint string
	finished    bool
	experiments []string
	cells       []CellView
	points      int
	retries     int
	quarantined int
	events      []core.Event // full feed, for SSE replay
}

// journalCache caches the decoded cells of one journal file, keyed by
// file size: a grown journal is re-read, an unchanged one served from
// memory.
type journalCache struct {
	size        int64
	fingerprint string
	cells       []CellView
}

// Registry tracks live campaigns (fed by the Hub) and completed ones
// discovered from journal directories, and serves both to the HTTP
// layer.
type Registry struct {
	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string          // campaign ids, first-seen order
	current   string            // id engine events are attributed to
	dirs      map[string]string // campaign id → journal file path
	dirOrder  []string
	cache     map[string]*journalCache
	counters  Counters
	workers   map[string]uint64 // dispatch worker → cells completed
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		campaigns: make(map[string]*campaignState),
		dirs:      make(map[string]string),
		cache:     make(map[string]*journalCache),
	}
}

// Attach registers the registry as a synchronous applier on the hub:
// every published event updates the registry before any subscriber sees
// it, so an SSE snapshot taken under the hub lock is exact.
func (r *Registry) Attach(h *Hub) {
	h.Apply(r.apply)
}

// AddJournalDir registers a journal directory for read-only discovery
// under the campaign id (conventionally the directory's base name). The
// journal file need not exist yet.
func (r *Registry) AddJournalDir(id, dir string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.dirs[id]; !ok {
		r.dirOrder = append(r.dirOrder, id)
	}
	r.dirs[id] = filepath.Join(dir, experiments.JournalFile)
}

// JournalPath returns the registered journal file path of a campaign.
func (r *Registry) JournalPath(id string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.dirs[id]
	return p, ok
}

// apply folds one bus event into the registry. Runs under the hub lock.
func (r *Registry) apply(ev core.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()

	switch ev.Kind {
	case core.EventCell:
		r.counters.Cells++
		if ev.Replayed {
			r.counters.Replayed++
		}
		if ev.Stats != nil {
			for c := capture.Cause(0); c < capture.NumCauses; c++ {
				r.counters.DropsByCause[c] += ev.Stats.Ledger.Drops[c].Packets
			}
		}
	case core.EventRetry:
		r.counters.Retries++
	case core.EventQuarantine:
		r.counters.Quarantined++
	case core.EventPoint:
		r.counters.Points++
	case core.EventSnifferDead:
		r.counters.SnifferDead++
	case core.EventCheckpoint:
		r.counters.Checkpoints++
	case core.EventLease:
		r.counters.Leases++
	case core.EventLeaseExpired:
		r.counters.LeasesExpired++
	case core.EventChaos:
		if r.counters.Chaos == nil {
			r.counters.Chaos = make(map[string]uint64)
		}
		fault := ev.Fault
		if fault == "" {
			fault = "unknown"
		}
		r.counters.Chaos[fault]++
	}
	if ev.Kind == core.EventCell && ev.Worker != "" {
		if r.workers == nil {
			r.workers = make(map[string]uint64)
		}
		r.workers[ev.Worker]++
	}

	id := ev.Campaign
	if id == "" {
		id = r.current
	}
	if id == "" {
		id = "live"
	}
	st := r.campaigns[id]
	if st == nil {
		st = &campaignState{id: id}
		r.campaigns[id] = st
		r.order = append(r.order, id)
	}
	st.events = append(st.events, ev)

	switch ev.Kind {
	case core.EventCampaignStart:
		r.current = id
		st.fingerprint = ev.Detail
		st.finished = false
	case core.EventCampaignFinish:
		st.finished = true
	case core.EventExperimentStart:
		st.experiments = append(st.experiments, ev.Experiment)
	case core.EventCell, core.EventQuarantine:
		st.cells = append(st.cells, liveCellView(ev))
		if ev.Kind == core.EventQuarantine {
			st.quarantined++
		}
	case core.EventRetry:
		st.retries++
	case core.EventPoint:
		st.points++
	}
}

// liveCellView renders a cell-level bus event as a CellView.
func liveCellView(ev core.Event) CellView {
	v := CellView{
		Seq: ev.Seq, Experiment: ev.Experiment, System: ev.System,
		Point: ev.Point, X: ev.X, Rep: ev.Rep, Replayed: ev.Replayed,
		Quarantined: ev.Kind == core.EventQuarantine,
	}
	if out := ev.Outcome; out != nil {
		v.Degraded = out.Degraded
		v.Attempts = out.Attempts
		v.Quarantined = v.Quarantined || out.Quarantined
	}
	if st := ev.Stats; st != nil {
		v.RatePct = st.CaptureRate()
		v.CPUPct = st.CPUUsage()
		v.Generated = st.Generated
		v.Dropped, _ = st.Ledger.Total()
		v.Drops = st.Ledger
	}
	return v
}

// journalCellView renders one decoded journal cell record as a
// CellView. The plotted x is not recoverable from the durable point
// fingerprint, so X stays zero.
func journalCellView(k core.CellKey, out core.CellOutcome) CellView {
	total, _ := out.Stats.Ledger.Total()
	return CellView{
		Experiment: k.Experiment, System: k.System, Point: k.Point,
		Rep: k.Rep, Quarantined: out.Quarantined, Degraded: out.Degraded,
		Attempts: out.Attempts, RatePct: out.Stats.CaptureRate(),
		CPUPct: out.Stats.CPUUsage(), Generated: out.Stats.Generated,
		Dropped: total, Drops: out.Stats.Ledger,
	}
}

// refreshJournal returns the decoded cells of the journal at path,
// re-reading only when the file grew or shrank since the cached copy.
// Must be called with r.mu held.
func (r *Registry) refreshJournal(path string) (*journalCache, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if c, ok := r.cache[path]; ok && c.size == fi.Size() {
		return c, nil
	}
	hdr, payloads, err := journal.ReadAll(path)
	if err != nil {
		return nil, err
	}
	c := &journalCache{size: fi.Size(), fingerprint: hdr.Fingerprint}
	for _, p := range payloads {
		k, out, err := experiments.DecodeCellRecord(p)
		if err != nil {
			return nil, fmt.Errorf("monitor: corrupt cell record in %s: %w", path, err)
		}
		c.cells = append(c.cells, journalCellView(k, out))
	}
	r.cache[path] = c
	return c, nil
}

// Campaigns lists every known campaign: live ones observed on the bus
// first (first-seen order), then journal-registered ones not also live.
func (r *Registry) Campaigns() []CampaignInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []CampaignInfo
	for _, id := range r.order {
		st := r.campaigns[id]
		info := CampaignInfo{
			ID: id, Fingerprint: st.fingerprint, Live: !st.finished,
			Finished: st.finished, Cells: len(st.cells), Points: st.points,
			Retries: st.retries, Quarantined: st.quarantined,
			Experiments: append([]string(nil), st.experiments...),
			Source:      "live",
		}
		// A live campaign recording to a registered journal keeps the
		// live view; the journal is its durable shadow.
		out = append(out, info)
	}
	ids := append([]string(nil), r.dirOrder...)
	sort.Strings(ids)
	for _, id := range ids {
		if _, live := r.campaigns[id]; live {
			continue
		}
		info := CampaignInfo{ID: id, Source: "journal"}
		if c, err := r.refreshJournal(r.dirs[id]); err == nil {
			info.Fingerprint = c.fingerprint
			info.Cells = len(c.cells)
			for _, v := range c.cells {
				if v.Quarantined {
					info.Quarantined++
				}
			}
		}
		out = append(out, info)
	}
	if out == nil {
		out = []CampaignInfo{}
	}
	return out
}

// Cells returns one page of a campaign's completed cells and the total
// count; ok is false for an unknown campaign id.
func (r *Registry) Cells(id string, offset, limit int) (cells []CellView, total int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var all []CellView
	if st, live := r.campaigns[id]; live {
		all = st.cells
	} else if path, reg := r.dirs[id]; reg {
		c, err := r.refreshJournal(path)
		if err != nil {
			return []CellView{}, 0, true // registered but empty/unreadable yet
		}
		all = c.cells
	} else {
		return nil, 0, false
	}
	total = len(all)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := offset + limit
	if limit <= 0 || end > total {
		end = total
	}
	page := make([]CellView, end-offset)
	copy(page, all[offset:end])
	return page, total, true
}

// Known reports whether the campaign id is live on the bus or
// registered as a journal directory.
func (r *Registry) Known(id string) (live, registered bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, live = r.campaigns[id]
	_, registered = r.dirs[id]
	return live, registered
}

// Snapshot copies a live campaign's full event history. Safe to call
// from a Hub.SubscribeWith snap callback: the hub lock is already held,
// so the snapshot is exact with respect to the subscription point.
func (r *Registry) Snapshot(id string) ([]core.Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.campaigns[id]
	if !ok {
		return nil, false
	}
	return append([]core.Event(nil), st.events...), true
}

// Counters returns a copy of the process-wide event tallies. The Chaos
// map is deep-copied: the struct copy alone would alias the registry's
// live map.
func (r *Registry) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters
	if r.counters.Chaos != nil {
		c.Chaos = make(map[string]uint64, len(r.counters.Chaos))
		for k, v := range r.counters.Chaos {
			c.Chaos[k] = v
		}
	}
	return c
}

// WorkerCells returns the cells completed per dispatch worker, as
// observed on the bus (EventCell with a worker attribution).
func (r *Registry) WorkerCells() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.workers))
	for k, v := range r.workers {
		out[k] = v
	}
	return out
}
