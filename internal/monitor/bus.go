// Package monitor is the live campaign monitoring service: an event bus
// fanning the measurement engines' Observer feed out to HTTP consumers,
// a JSON API over the campaign registry, an SSE stream, and a
// Prometheus-format metrics endpoint — `experiment -serve ADDR`.
//
// The cardinal rule is that watching a campaign must never slow it
// down: the Hub's Observe path assigns a sequence number, updates the
// in-process state synchronously, and hands the event to bounded
// per-subscriber rings. A subscriber that stalls (a slow SSE client, a
// dead TCP peer) loses events — drop-oldest, counted per subscriber —
// while the measurement path and every other subscriber proceed at full
// speed. Publishing never blocks, ever.
package monitor

import (
	"sync"

	"repro/internal/core"
)

// DefaultSubscriberBuffer is the per-subscriber ring capacity when the
// caller passes none.
const DefaultSubscriberBuffer = 1024

// Hub is the event bus: a core.Observer that stamps events with a
// global sequence number and fans them out. Safe for concurrent use.
type Hub struct {
	mu        sync.Mutex
	seq       uint64
	published uint64
	subs      map[*Subscriber]struct{}
	appliers  []func(ev core.Event)
	// dropsGone accumulates the drop counters of departed subscribers,
	// by label, so /metrics keeps the full history.
	dropsGone map[string]uint64
}

// NewHub returns an empty bus.
func NewHub() *Hub {
	return &Hub{
		subs:      make(map[*Subscriber]struct{}),
		dropsGone: make(map[string]uint64),
	}
}

var _ core.Observer = (*Hub)(nil)

// Apply registers a synchronous state applier: fn runs under the hub
// lock for every published event, before any subscriber sees it. The
// registry and the metrics counters attach here, which is what makes an
// SSE snapshot-then-follow exact: state and sequence number can never
// disagree. fn must be fast and must not call back into the Hub.
func (h *Hub) Apply(fn func(ev core.Event)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.appliers = append(h.appliers, fn)
}

// Observe publishes one event: assigns the next sequence number, runs
// the appliers, then offers the event to every subscriber ring. Never
// blocks.
func (h *Hub) Observe(ev core.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	ev.Seq = h.seq
	h.published++
	for _, fn := range h.appliers {
		fn(ev)
	}
	for s := range h.subs {
		s.push(ev)
	}
}

// Subscribe adds a subscriber with the given ring capacity (0 =
// DefaultSubscriberBuffer). label names the subscriber in the hub's
// drop ledger (/metrics).
func (h *Hub) Subscribe(label string, buffer int) *Subscriber {
	s := newSubscriber(label, buffer)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs[s] = struct{}{}
	return s
}

// SubscribeWith atomically snapshots hub state and subscribes: snap
// runs under the hub lock with the current sequence number, and the
// returned subscriber receives exactly the events published after it.
// The SSE handler replays the snapshot, then follows the subscriber —
// no gap, no overlap.
func (h *Hub) SubscribeWith(label string, buffer int, snap func(lastSeq uint64)) *Subscriber {
	s := newSubscriber(label, buffer)
	h.mu.Lock()
	defer h.mu.Unlock()
	if snap != nil {
		snap(h.seq)
	}
	h.subs[s] = struct{}{}
	return s
}

// Unsubscribe removes the subscriber and folds its drop counter into
// the hub's departed-subscriber ledger.
func (h *Hub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; !ok {
		return
	}
	delete(h.subs, s)
	h.dropsGone[s.label] += s.Dropped()
}

// Published returns the number of events published so far.
func (h *Hub) Published() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.published
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Drops returns the events-dropped ledger: cumulative dropped events
// per subscriber label, departed subscribers included.
func (h *Hub) Drops() map[string]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]uint64, len(h.dropsGone)+len(h.subs))
	for label, n := range h.dropsGone {
		out[label] = n
	}
	for s := range h.subs {
		out[s.label] += s.Dropped()
	}
	return out
}

// Subscriber is one bounded, drop-oldest event ring. The consumer
// drains it with Events after a Notify wake-up; the producer side (the
// hub) never blocks on it.
type Subscriber struct {
	label  string
	mu     sync.Mutex
	ring   []core.Event
	head   int // index of the oldest buffered event
	n      int // buffered count
	drops  uint64
	notify chan struct{}
}

func newSubscriber(label string, buffer int) *Subscriber {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	return &Subscriber{
		label:  label,
		ring:   make([]core.Event, buffer),
		notify: make(chan struct{}, 1),
	}
}

// push offers one event; a full ring drops its oldest event and counts
// it. Never blocks.
func (s *Subscriber) push(ev core.Event) {
	s.mu.Lock()
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.drops++
	}
	s.ring[(s.head+s.n)%len(s.ring)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Events drains and returns the buffered events, oldest first (nil when
// empty).
func (s *Subscriber) Events() []core.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return nil
	}
	out := make([]core.Event, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.ring[(s.head+i)%len(s.ring)]
	}
	s.head, s.n = 0, 0
	return out
}

// Notify returns the wake-up channel: one token is pending whenever
// events arrived since the last drain.
func (s *Subscriber) Notify() <-chan struct{} { return s.notify }

// Dropped returns the number of events this subscriber lost to its
// bounded ring.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}
