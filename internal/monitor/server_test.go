package monitor

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/experiments"
)

// newTestService wires hub + registry + HTTP server for a test, with a
// fast journal-tail poll.
func newTestService(t *testing.T) (*Hub, *Registry, *httptest.Server) {
	t.Helper()
	h := NewHub()
	reg := NewRegistry()
	reg.Attach(h)
	s := NewServer(h, reg)
	s.JournalPoll = 10 * time.Millisecond
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return h, reg, srv
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// publishCampaign pushes a small synthetic campaign through the bus.
func publishCampaign(h *Hub, id string, cells int) {
	h.Observe(core.Event{Kind: core.EventCampaignStart, Campaign: id, Detail: "fp-test"})
	h.Observe(core.Event{Kind: core.EventExperimentStart, Experiment: "fig6.2-smp"})
	for i := 0; i < cells; i++ {
		st := capture.Stats{Generated: 100, AppCaptured: []uint64{90}}
		st.Ledger.RecordN(capture.CauseNICRing, 10, 6400, 0)
		h.Observe(core.Event{Kind: core.EventCell, Experiment: "fig6.2-smp",
			System: "swan", Point: uint64(i), X: float64(50 * (i + 1)),
			Stats: &st})
	}
	h.Observe(core.Event{Kind: core.EventExperimentFinish, Experiment: "fig6.2-smp"})
	h.Observe(core.Event{Kind: core.EventCampaignFinish, Campaign: id})
}

func TestHealthz(t *testing.T) {
	_, _, srv := newTestService(t)
	code, body := getBody(t, srv.URL+"/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestCampaignsAndCells(t *testing.T) {
	h, _, srv := newTestService(t)
	publishCampaign(h, "camp1", 7)

	code, body := getBody(t, srv.URL+"/api/campaigns")
	if code != 200 {
		t.Fatalf("campaigns = %d", code)
	}
	var infos []CampaignInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != "camp1" || infos[0].Fingerprint != "fp-test" ||
		!infos[0].Finished || infos[0].Cells != 7 {
		t.Fatalf("campaigns = %+v", infos)
	}
	if len(infos[0].Experiments) != 1 || infos[0].Experiments[0] != "fig6.2-smp" {
		t.Fatalf("experiments = %v", infos[0].Experiments)
	}

	// Paged cells.
	code, body = getBody(t, srv.URL+"/api/campaigns/camp1/cells?offset=5&limit=10")
	if code != 200 {
		t.Fatalf("cells = %d", code)
	}
	var page cellsResponse
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 7 || page.Offset != 5 || len(page.Cells) != 2 {
		t.Fatalf("page = total %d offset %d len %d", page.Total, page.Offset, len(page.Cells))
	}
	v := page.Cells[0]
	if v.System != "swan" || v.RatePct != 90 || v.Dropped != 10 {
		t.Fatalf("cell = %+v", v)
	}
	// The ledger renders causes by name (deterministic order).
	if !strings.Contains(body, `"nic-ring"`) {
		t.Fatalf("cell drops missing nic-ring cause:\n%s", body)
	}

	if code, _ := getBody(t, srv.URL+"/api/campaigns/nope/cells"); code != 404 {
		t.Fatalf("unknown campaign = %d, want 404", code)
	}
}

func TestMetrics(t *testing.T) {
	h, _, srv := newTestService(t)
	publishCampaign(h, "camp1", 3)
	// Injected chaos faults surface as a labeled counter.
	h.Observe(core.Event{Kind: core.EventChaos, Fault: "net-reset"})
	h.Observe(core.Event{Kind: core.EventChaos, Fault: "net-reset"})
	h.Observe(core.Event{Kind: core.EventChaos, Fault: "fs-write"})
	// A stalled subscriber accumulates drops that /metrics must expose.
	stalled := h.Subscribe("stalled", 2)
	defer h.Unsubscribe(stalled)
	for i := 0; i < 10; i++ {
		h.Observe(core.Event{Kind: core.EventRetry, Rep: i})
	}

	code, body := getBody(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"repro_cells_completed_total 3",
		"repro_cells_retried_total 10",
		`repro_drop_packets_total{cause="nic-ring"} 30`,
		`repro_drop_packets_total{cause="bpf-buffer"} 0`,
		`repro_bus_events_dropped_total{subscriber="stalled"} 8`,
		`repro_chaos_injected_total{fault="fs-write"} 1`,
		`repro_chaos_injected_total{fault="net-reset"} 2`,
		"repro_bus_subscribers 1",
		"repro_goroutines",
		"repro_heap_alloc_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	kind string
	data wireEvent
}

// readSSE parses count events from an SSE stream.
func readSSE(t *testing.T, r io.Reader, count int) []sseEvent {
	t.Helper()
	sc := bufio.NewScanner(r)
	var out []sseEvent
	var cur sseEvent
	for len(out) < count && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			out = append(out, cur)
			cur = sseEvent{}
		}
	}
	if len(out) < count {
		t.Fatalf("SSE stream ended after %d events, want %d (err=%v)", len(out), count, sc.Err())
	}
	return out
}

// TestStreamLiveReplayThenFollow: an SSE client connecting mid-campaign
// replays history and follows live, seeing every event exactly once in
// seq order.
func TestStreamLiveReplayThenFollow(t *testing.T) {
	h, _, srv := newTestService(t)
	h.Observe(core.Event{Kind: core.EventCampaignStart, Campaign: "camp1", Detail: "fp"})
	for i := 0; i < 5; i++ {
		h.Observe(core.Event{Kind: core.EventCell, System: "swan", Rep: i})
	}

	resp, err := http.Get(srv.URL + "/api/campaigns/camp1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	// Replayed history: campaign-start + 5 cells.
	evs := readSSE(t, resp.Body, 6)

	// Publish more while the client is connected.
	go func() {
		for i := 5; i < 10; i++ {
			h.Observe(core.Event{Kind: core.EventCell, System: "swan", Rep: i})
		}
		h.Observe(core.Event{Kind: core.EventCampaignFinish, Campaign: "camp1"})
	}()
	evs = append(evs, readSSE(t, resp.Body, 6)...)

	if evs[0].kind != "campaign-start" || evs[0].data.Detail != "fp" {
		t.Fatalf("first event = %+v", evs[0])
	}
	if last := evs[len(evs)-1]; last.kind != "campaign-finish" {
		t.Fatalf("last event = %+v", last)
	}
	var lastSeq uint64
	rep := 0
	for _, ev := range evs {
		if ev.data.Seq <= lastSeq {
			t.Fatalf("seq not strictly increasing at %+v (prev %d): duplicate or reorder", ev, lastSeq)
		}
		lastSeq = ev.data.Seq
		if ev.kind == "cell" {
			if ev.data.Rep != rep {
				t.Fatalf("cell rep = %d, want %d (exactly-once violated)", ev.data.Rep, rep)
			}
			rep++
		}
	}
	if rep != 10 {
		t.Fatalf("saw %d cells, want 10", rep)
	}
}

// TestStreamJournalBacked: a campaign known only as a journal directory
// is streamed by tailing its WAL — replay what is durable, then follow
// the writer.
func TestStreamJournalBacked(t *testing.T) {
	_, reg, srv := newTestService(t)
	dir := t.TempDir()
	o := experiments.Options{Packets: 1000, Reps: 1, Seed: 1}
	camp, err := experiments.CreateCampaign(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer camp.Close()
	rec := func(i int) {
		st := capture.Stats{Generated: 50, AppCaptured: []uint64{50}}
		if err := camp.Record(core.CellKey{Experiment: "fig6.2-smp", Point: uint64(i), System: "swan"},
			core.CellOutcome{Stats: st, OK: true, Attempts: 1}); err != nil {
			t.Error(err)
		}
	}
	rec(0)
	rec(1)
	reg.AddJournalDir("mcamp", dir)

	resp, err := http.Get(srv.URL + "/api/campaigns/mcamp/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	evs := readSSE(t, resp.Body, 3) // header + 2 durable cells
	if evs[0].kind != "campaign-start" || evs[0].data.Detail == "" {
		t.Fatalf("first journal event = %+v", evs[0])
	}
	if evs[1].kind != "cell" || evs[1].data.System != "swan" || evs[1].data.RatePct != 100 {
		t.Fatalf("replayed cell = %+v", evs[1])
	}

	// Append while the stream is live: the tail is followed.
	rec(2)
	more := readSSE(t, resp.Body, 1)
	if more[0].kind != "cell" || more[0].data.Point != 2 {
		t.Fatalf("followed cell = %+v", more[0])
	}

	// The same journal also answers the paged cells API.
	code, body := getBody(t, srv.URL+"/api/campaigns/mcamp/cells")
	if code != 200 {
		t.Fatalf("cells = %d", code)
	}
	var page cellsResponse
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 3 {
		t.Fatalf("journal cells total = %d, want 3", page.Total)
	}
	// And the campaign listing discovers it with its fingerprint.
	_, body = getBody(t, srv.URL+"/api/campaigns")
	var infos []CampaignInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != "mcamp" || infos[0].Source != "journal" ||
		infos[0].Fingerprint == "" || infos[0].Cells != 3 {
		t.Fatalf("discovered campaigns = %+v", infos)
	}
}

// TestCellsBadPaging: malformed or negative offset/limit are client
// errors answered with 400 and a JSON error body — not silently
// replaced with defaults.
func TestCellsBadPaging(t *testing.T) {
	h, _, srv := newTestService(t)
	publishCampaign(h, "camp-paging", 3)

	for _, q := range []string{
		"offset=abc", "limit=abc", "offset=-1", "limit=-5", "offset=1.5",
	} {
		code, body := getBody(t, srv.URL+"/api/campaigns/camp-paging/cells?"+q)
		if code != http.StatusBadRequest {
			t.Fatalf("cells?%s = %d, want 400", q, code)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Fatalf("cells?%s body = %q, want a JSON error object", q, body)
		}
	}

	// Well-formed paging still works.
	code, body := getBody(t, srv.URL+"/api/campaigns/camp-paging/cells?offset=1&limit=1")
	if code != 200 {
		t.Fatalf("good paging = %d, want 200", code)
	}
	var page cellsResponse
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 3 || page.Offset != 1 || len(page.Cells) != 1 {
		t.Fatalf("page = total %d offset %d cells %d, want 3/1/1", page.Total, page.Offset, len(page.Cells))
	}
}

// TestWorkerAttributionMetrics: cells carrying a dispatch worker label
// surface per-worker progress counters, and lease-lifecycle events feed
// the lease counters.
func TestWorkerAttributionMetrics(t *testing.T) {
	h, reg, srv := newTestService(t)
	h.Observe(core.Event{Kind: core.EventCampaignStart, Campaign: "dist", Detail: "fp"})
	h.Observe(core.Event{Kind: core.EventLease, Worker: "w1", Detail: "lease 1: 2 cells"})
	for i := 0; i < 2; i++ {
		h.Observe(core.Event{Kind: core.EventCell, Experiment: "fig6.2-smp",
			System: "swan", Point: uint64(i), Worker: "w1",
			Stats: &capture.Stats{Generated: 10, AppCaptured: []uint64{10}}})
	}
	h.Observe(core.Event{Kind: core.EventLeaseExpired, Worker: "w2"})
	h.Observe(core.Event{Kind: core.EventLease, Worker: "w2"})
	h.Observe(core.Event{Kind: core.EventCell, Experiment: "fig6.2-smp",
		System: "swan", Point: 5, Worker: "w2",
		Stats: &capture.Stats{Generated: 10, AppCaptured: []uint64{10}}})

	c := reg.Counters()
	if c.Leases != 2 || c.LeasesExpired != 1 {
		t.Fatalf("lease counters = %d granted / %d expired, want 2/1", c.Leases, c.LeasesExpired)
	}
	wc := reg.WorkerCells()
	if wc["w1"] != 2 || wc["w2"] != 1 {
		t.Fatalf("worker cells = %v, want w1:2 w2:1", wc)
	}

	code, body := getBody(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"repro_leases_granted_total 2",
		"repro_leases_expired_total 1",
		`repro_worker_cells_completed_total{worker="w1"} 2`,
		`repro_worker_cells_completed_total{worker="w2"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestStreamClientResetReleasesSubscriber: an SSE client that vanishes
// mid-event — connection reset, no clean EOF — must not leak its hub
// subscription (which would grow the ring forever) or its handler
// goroutine.
func TestStreamClientResetReleasesSubscriber(t *testing.T) {
	h, _, srv := newTestService(t)
	h.Observe(core.Event{Kind: core.EventCampaignStart, Campaign: "camp1", Detail: "fp"})
	for i := 0; i < 3; i++ {
		h.Observe(core.Event{Kind: core.EventCell, System: "swan", Rep: i})
	}
	baseline := h.Subscribers()

	before := runtime.NumGoroutine()
	const clients = 5
	for c := 0; c < clients; c++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/api/campaigns/camp1/stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read partway into the replay, then kill the connection without
		// reading the rest — the handler is mid-stream.
		buf := make([]byte, 64)
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			t.Fatalf("client %d: stream never started: %v", c, err)
		}
		cancel()
		resp.Body.Close()
	}

	// The handlers notice the disconnect (context cancellation) and
	// unsubscribe; no events need to flow for that to happen.
	deadline := time.Now().Add(5 * time.Second)
	for h.Subscribers() != baseline {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %d after %d client resets, want %d",
				h.Subscribers(), clients, baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Publishing still works and reaches nobody stale.
	h.Observe(core.Event{Kind: core.EventCell, System: "swan", Rep: 99})
	for d, n := range h.Drops() {
		if strings.HasPrefix(d, "sse:") && n > 0 {
			// Drops on a dead subscriber would mean it is still registered.
			t.Fatalf("dead SSE subscriber %q still accumulating drops (%d)", d, n)
		}
	}

	// Handler goroutines wind down too (allow scheduler slack).
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline %d: SSE handlers leaked", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
