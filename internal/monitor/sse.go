// SSE streaming: /api/campaigns/{id}/stream replays what already
// happened, then follows live — exactly once, in order.
//
// A campaign live on the bus is served from the registry's event
// history: the snapshot and the subscription are taken atomically under
// the hub lock (Hub.SubscribeWith), so the replayed history and the
// followed feed meet at a seam with no gap and no overlap. A campaign
// known only as a journal directory — typically written by another
// process — is served by tailing its write-ahead log with the read-only
// journal.Reader: frames already durable are replayed, then the tail is
// polled as the writer appends.
package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/journal"
)

// Stream tuning defaults (per-Server fields, set by NewServer).
const (
	// DefaultJournalPoll is the tail-polling cadence of journal-backed
	// streams.
	DefaultJournalPoll = 150 * time.Millisecond
	// DefaultKeepalive is the SSE comment heartbeat period.
	DefaultKeepalive = 15 * time.Second
)

// wireEvent is the SSE `data:` payload schema.
type wireEvent struct {
	Seq         uint64  `json:"seq,omitempty"`
	Kind        string  `json:"kind"`
	Campaign    string  `json:"campaign,omitempty"`
	Experiment  string  `json:"experiment,omitempty"`
	System      string  `json:"system,omitempty"`
	Point       uint64  `json:"point,omitempty"`
	X           float64 `json:"x,omitempty"`
	Rep         int     `json:"rep,omitempty"`
	Worker      string  `json:"worker,omitempty"`
	Attempt     int     `json:"attempt,omitempty"`
	Replayed    bool    `json:"replayed,omitempty"`
	Quarantined bool    `json:"quarantined,omitempty"`
	Degraded    bool    `json:"degraded,omitempty"`
	Detail      string  `json:"detail,omitempty"`
	Fault       string  `json:"fault,omitempty"`
	RatePct     float64 `json:"ratePct,omitempty"`
	CPUPct      float64 `json:"cpuPct,omitempty"`
	Generated   uint64  `json:"generated,omitempty"`
	Dropped     uint64  `json:"dropped,omitempty"`
}

// toWire renders a bus event in the SSE schema.
func toWire(ev core.Event) wireEvent {
	we := wireEvent{
		Seq: ev.Seq, Kind: ev.Kind.String(), Campaign: ev.Campaign,
		Experiment: ev.Experiment, System: ev.System, Point: ev.Point,
		X: ev.X, Rep: ev.Rep, Worker: ev.Worker, Attempt: ev.Attempt,
		Replayed: ev.Replayed, Detail: ev.Detail, Fault: ev.Fault,
	}
	if ev.Kind == core.EventQuarantine {
		we.Quarantined = true
	}
	if out := ev.Outcome; out != nil {
		we.Quarantined = we.Quarantined || out.Quarantined
		we.Degraded = out.Degraded
	}
	switch {
	case ev.Stats != nil:
		we.RatePct = ev.Stats.CaptureRate()
		we.CPUPct = ev.Stats.CPUUsage()
		we.Generated = ev.Stats.Generated
		we.Dropped, _ = ev.Stats.Ledger.Total()
	case ev.Agg != nil:
		we.RatePct = ev.Agg.Rate
		we.CPUPct = ev.Agg.CPU
		we.Generated = ev.Agg.Generated
		we.Dropped, _ = ev.Agg.Drops.Total()
		we.Degraded = we.Degraded || ev.Agg.Degraded
		if ev.Agg.Quarantined > 0 {
			we.Quarantined = true
		}
	}
	return we
}

// sseWriter frames SSE messages and flushes after every write: a
// streaming endpoint that buffers is a broken streaming endpoint.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	return &sseWriter{w: w, f: f}, true
}

func (s *sseWriter) event(we wireEvent) error {
	data, err := json.Marshal(we)
	if err != nil {
		return err
	}
	if we.Seq != 0 {
		fmt.Fprintf(s.w, "id: %d\n", we.Seq)
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", we.Kind, data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

func (s *sseWriter) comment(msg string) error {
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", msg); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	live, registered := s.reg.Known(id)
	if !live && !registered {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	out, ok := newSSEWriter(w)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	if live {
		s.streamLive(r, out, id)
		return
	}
	s.streamJournal(r, out, id)
}

// streamLive replays the campaign's event history and follows the bus.
func (s *Server) streamLive(r *http.Request, out *sseWriter, id string) {
	var history []core.Event
	sub := s.hub.SubscribeWith("sse:"+id, 0, func(lastSeq uint64) {
		history, _ = s.reg.Snapshot(id)
	})
	defer s.hub.Unsubscribe(sub)

	for _, ev := range history {
		if err := out.event(toWire(ev)); err != nil {
			return
		}
	}
	keepalive := time.NewTicker(s.Keepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			if err := out.comment("keepalive"); err != nil {
				return
			}
		case <-sub.Notify():
			for _, ev := range sub.Events() {
				// The bus carries every campaign; stream only this one
				// (engine events carry no campaign id — they belong to
				// the currently running campaign).
				if ev.Campaign != "" && ev.Campaign != id {
					continue
				}
				if err := out.event(toWire(ev)); err != nil {
					return
				}
				if ev.Kind == core.EventCampaignFinish {
					return
				}
			}
		}
	}
}

// streamJournal replays the durable frames of a journal-registered
// campaign and then tails the file as its writer (usually another
// process) appends. A journal that does not exist yet is waited for.
func (s *Server) streamJournal(r *http.Request, out *sseWriter, id string) {
	path, ok := s.reg.JournalPath(id)
	if !ok {
		return
	}
	ctx := r.Context()
	var jr *journal.Reader
	defer func() {
		if jr != nil {
			jr.Close()
		}
	}()
	seq := uint64(0)
	lastBeat := time.Now()
	sawHeader := false
	for ctx.Err() == nil {
		if jr == nil {
			var err error
			if jr, err = journal.OpenReader(path); err != nil {
				if !os.IsNotExist(err) {
					out.comment("error: " + err.Error())
					return
				}
				jr = nil
			}
		}
		progressed := false
		for jr != nil {
			payload, ok, err := jr.Next()
			if err != nil {
				if errors.Is(err, journal.ErrCorrupt) {
					out.comment("error: " + err.Error())
				}
				return
			}
			if !ok {
				break
			}
			progressed = true
			seq++
			if !sawHeader {
				sawHeader = true
				hdr, err := journal.ParseHeader(payload)
				if err != nil {
					out.comment("error: " + err.Error())
					return
				}
				we := wireEvent{Seq: seq, Kind: core.EventCampaignStart.String(),
					Campaign: id, Detail: hdr.Fingerprint}
				if out.event(we) != nil {
					return
				}
				continue
			}
			k, cellOut, err := experiments.DecodeCellRecord(payload)
			if err != nil {
				out.comment("error: " + err.Error())
				return
			}
			ev := core.Event{Kind: core.EventCell, Campaign: id, Seq: seq,
				Experiment: k.Experiment, System: k.System, Point: k.Point,
				Rep: k.Rep}
			if cellOut.Quarantined {
				ev.Kind = core.EventQuarantine
			}
			st := cellOut.Stats
			o := cellOut
			ev.Stats, ev.Outcome = &st, &o
			if out.event(toWire(ev)) != nil {
				return
			}
		}
		if !progressed {
			if time.Since(lastBeat) >= s.Keepalive {
				lastBeat = time.Now()
				if out.comment("keepalive") != nil {
					return
				}
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(s.JournalPoll):
			}
		}
	}
}
