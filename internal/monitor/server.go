package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Paging bounds of /api/campaigns/{id}/cells.
const (
	DefaultCellPage = 500
	MaxCellPage     = 5000
)

// Server serves the monitoring HTTP API over one Hub and Registry.
type Server struct {
	hub *Hub
	reg *Registry
	// JournalPoll is the tail-polling cadence of journal-backed SSE
	// streams; Keepalive the SSE comment heartbeat period. Adjust before
	// serving.
	JournalPoll time.Duration
	Keepalive   time.Duration
}

// NewServer wires a server over the bus and registry.
func NewServer(h *Hub, r *Registry) *Server {
	return &Server{hub: h, reg: r, JournalPoll: DefaultJournalPoll, Keepalive: DefaultKeepalive}
}

// Hub returns the server's event bus.
func (s *Server) Hub() *Hub { return s.hub }

// Registry returns the server's campaign registry.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the monitoring service's route table:
//
//	GET /healthz                      liveness probe
//	GET /api/campaigns                known campaigns (live + journal)
//	GET /api/campaigns/{id}/cells     completed cells, paged JSON
//	GET /api/campaigns/{id}/stream    SSE: replay, then follow live
//	GET /metrics                      Prometheus text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /api/campaigns", s.handleCampaigns)
	mux.HandleFunc("GET /api/campaigns/{id}/cells", s.handleCells)
	mux.HandleFunc("GET /api/campaigns/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.reg.Campaigns())
}

// cellsResponse is the paged JSON envelope of /cells.
type cellsResponse struct {
	Campaign string     `json:"campaign"`
	Total    int        `json:"total"`
	Offset   int        `json:"offset"`
	Cells    []CellView `json:"cells"`
}

func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	limit, err := queryInt(r, "limit", DefaultCellPage)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if limit > MaxCellPage {
		limit = MaxCellPage
	}
	cells, total, ok := s.reg.Cells(id, offset, limit)
	if !ok {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	if cells == nil {
		cells = []CellView{}
	}
	writeJSON(w, cellsResponse{Campaign: id, Total: total, Offset: offset, Cells: cells})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

// queryInt parses a non-negative integer query parameter. A malformed
// or negative value is a client error, not a silent fallback to the
// default: callers answer it with HTTP 400.
func queryInt(r *http.Request, key string, def int) (int, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("query parameter %q: %q is not an integer", key, s)
	}
	if n < 0 {
		return 0, fmt.Errorf("query parameter %q: must not be negative, got %d", key, n)
	}
	return n, nil
}
