package monitor

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestHubFanoutOrder: every subscriber sees every event, in publication
// order, with monotonically increasing sequence numbers.
func TestHubFanoutOrder(t *testing.T) {
	h := NewHub()
	a := h.Subscribe("a", 64)
	b := h.Subscribe("b", 64)
	for i := 0; i < 50; i++ {
		h.Observe(core.Event{Kind: core.EventCell, Rep: i})
	}
	for _, sub := range []*Subscriber{a, b} {
		evs := sub.Events()
		if len(evs) != 50 {
			t.Fatalf("%s: got %d events, want 50", sub.label, len(evs))
		}
		for i, ev := range evs {
			if ev.Rep != i {
				t.Fatalf("%s: event %d has rep %d: reordered", sub.label, i, ev.Rep)
			}
			if ev.Seq != uint64(i+1) {
				t.Fatalf("%s: event %d has seq %d", sub.label, i, ev.Seq)
			}
		}
		if sub.Dropped() != 0 {
			t.Fatalf("%s: dropped %d events from an undersubscribed ring", sub.label, sub.Dropped())
		}
	}
	if h.Published() != 50 {
		t.Fatalf("published = %d", h.Published())
	}
}

// TestHubBackpressure is the bus's central guarantee: a stalled
// subscriber loses events to its bounded ring — oldest first, counted —
// while publishing never blocks and healthy subscribers see everything.
func TestHubBackpressure(t *testing.T) {
	h := NewHub()
	stalled := h.Subscribe("stalled", 8) // never drained
	healthy := h.Subscribe("healthy", 2048)

	const n = 1000
	for i := 0; i < n; i++ {
		h.Observe(core.Event{Kind: core.EventCell, Rep: i})
	}

	if got := len(healthy.Events()); got != n {
		t.Fatalf("healthy subscriber got %d events, want %d", got, n)
	}
	if d := stalled.Dropped(); d != n-8 {
		t.Fatalf("stalled subscriber dropped %d events, want %d", d, n-8)
	}
	// The ring kept the newest events.
	evs := stalled.Events()
	if len(evs) != 8 || evs[0].Rep != n-8 || evs[7].Rep != n-1 {
		t.Fatalf("stalled ring = %d events, first rep %d: want the 8 newest", len(evs), evs[0].Rep)
	}
	// The hub's drop ledger sees it, and keeps it after unsubscribe.
	if d := h.Drops()["stalled"]; d != n-8 {
		t.Fatalf("hub ledger: stalled=%d, want %d", d, n-8)
	}
	h.Unsubscribe(stalled)
	if d := h.Drops()["stalled"]; d != n-8 {
		t.Fatalf("hub ledger after unsubscribe: stalled=%d, want %d", d, n-8)
	}
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", h.Subscribers())
	}
}

// TestSweepUnaffectedByStalledSubscriber: a parallel sweep with a
// stalled subscriber on the bus completes and produces byte-identical
// results to the same sweep with no observer at all; the lost events
// are counted in the hub's ledger.
func TestSweepUnaffectedByStalledSubscriber(t *testing.T) {
	cfgs := core.Sniffers()[:2]
	rates := []float64{200, 600}
	w := core.Workload{Packets: 2000, Seed: 1}
	ctx := context.Background()

	want := core.FormatTable("t", core.SweepRatesObserved(ctx, cfgs, rates, w, 2, 4, "x", nil, nil))

	h := NewHub()
	reg := NewRegistry()
	reg.Attach(h)
	stalled := h.Subscribe("stalled", 2) // never drained
	// A healthy subscriber draining concurrently, as the SSE path does.
	healthy := h.Subscribe("healthy", 64)
	var drained int
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-healthy.Notify():
				drained += len(healthy.Events())
			case <-done:
				drained += len(healthy.Events())
				return
			}
		}
	}()

	got := core.FormatTable("t", core.SweepRatesObserved(ctx, cfgs, rates, w, 2, 4, "x", nil, h))
	close(done)
	wg.Wait()

	if got != want {
		t.Fatalf("observed sweep diverged from unobserved sweep:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if stalled.Dropped() == 0 {
		t.Fatal("stalled subscriber dropped nothing: ring unbounded?")
	}
	// cells(2 sys × 2 rates × 2 reps) + points(2×2) = 12 events.
	if h.Published() != 12 {
		t.Fatalf("published = %d, want 12", h.Published())
	}
	if drained != 12 {
		t.Fatalf("healthy subscriber drained %d events, want 12", drained)
	}
	c := reg.Counters()
	if c.Cells != 8 || c.Points != 4 {
		t.Fatalf("counters = %+v, want 8 cells / 4 points", c)
	}
}

// TestSweepPointEventsDeterministic: the EventPoint stream is identical
// for serial and parallel execution — the ordering promise behind the
// streaming -json writer.
func TestSweepPointEventsDeterministic(t *testing.T) {
	cfgs := core.Sniffers()
	rates := []float64{100, 500, 900}
	w := core.Workload{Packets: 1500, Seed: 3}

	run := func(workers int) []string {
		var mu sync.Mutex
		var got []string
		obs := core.ObserverFunc(func(ev core.Event) {
			if ev.Kind != core.EventPoint {
				return
			}
			mu.Lock()
			got = append(got, strings.Join([]string{ev.System, formatX(ev.X)}, "@"))
			mu.Unlock()
		})
		core.SweepRatesObserved(context.Background(), cfgs, rates, w, 2, workers, "x", nil, obs)
		return got
	}

	serial := run(0)
	parallel := run(8)
	if len(serial) != len(rates)*len(cfgs) {
		t.Fatalf("serial emitted %d points, want %d", len(serial), len(rates)*len(cfgs))
	}
	if strings.Join(serial, " ") != strings.Join(parallel, " ") {
		t.Fatalf("point order differs:\nserial:   %v\nparallel: %v", serial, parallel)
	}
	// Canonical layout: x-major, system order within each x.
	if serial[0] != "swan@100" || serial[1] != "snipe@100" || serial[4] != "swan@500" {
		t.Fatalf("unexpected canonical order: %v", serial)
	}
}

func formatX(x float64) string {
	return fmt.Sprintf("%g", x)
}
