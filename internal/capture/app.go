package capture

import (
	"repro/internal/flows"
	"repro/internal/sim"
)

// App is one capturing application (the createDist tool used as capture
// program in the measurements): it reads packets from its OS attachment
// and applies the configured per-packet load.
type App struct {
	sys *System
	idx int

	state appState

	// Captured counts packets fully delivered to the application: the
	// numerator of the thesis's capturing rate.
	Captured uint64

	// Timeslice tracking for the Linux read loop: while an application
	// has consumed less than the scheduler timeslice of consecutive CPU
	// time and still has data, it keeps its CPU instead of yielding.
	lastCPU   *sim.CPU
	sliceUsed float64
	pipe      *pipe

	// Worker-thread state (§7.2 extension: "using multiple threads on one
	// machine to take full advantage of multiprocessor systems" [DV04]):
	// outstanding bytes queued to analysis workers; the reader blocks when
	// the queue is full.
	workerOutstanding int
	gWorker           *Gauge

	// Packets inside the currently running read task: already taken from
	// the OS buffers but not yet counted as captured. Booked under
	// CauseAbandoned when a run is truncated mid-read.
	inflightPkts  int
	inflightBytes uint64

	// Sampling / load-shedding policy state (policy.go). sampler is nil
	// when no policy is configured — the unpoliced fast path. Shed counts
	// the packets the policy declined; flowsKept tracks the distinct flow
	// hashes among delivered packets when flow coverage is enabled.
	sampler   policySampler
	Shed      uint64
	flowsKept map[uint64]struct{}
}

func newApp(s *System, idx int) *App {
	a := &App{sys: s, idx: idx}
	if s.Load.PipeGzip > 0 {
		a.pipe = &pipe{sys: s, app: a, level: s.Load.PipeGzip,
			gauge: s.newGauge("pipe", idx, s.Costs.PipeBufBytes)}
	}
	if s.Load.Workers > 0 {
		a.gWorker = s.newGauge("worker-queue", idx, s.Costs.WorkerQueueBytes)
	}
	a.sampler = s.Policy.newSampler()
	if a.sampler != nil || s.CountFlows {
		a.flowsKept = make(map[uint64]struct{})
	}
	return a
}

// reset clears the application's per-run state for System reuse.
func (a *App) reset() {
	a.state = stIdle
	a.Captured = 0
	a.lastCPU = nil
	a.sliceUsed = 0
	a.workerOutstanding = 0
	a.inflightPkts, a.inflightBytes = 0, 0
	a.Shed = 0
	if a.sampler != nil {
		a.sampler.reset()
	}
	if a.flowsKept != nil {
		a.flowsKept = make(map[uint64]struct{})
	}
	if a.pipe != nil {
		p := a.pipe
		p.buf, p.busy, p.producerBlocked = 0, false, false
		p.BytesIn, p.BytesOut = 0, 0
	}
}

// admission is the sampling-policy outcome of one read batch: which
// packets the application processes, what it shed, and the decision cost.
// The stacks compute it when the read batch is built and book it via
// finishRead when the read task completes, so truncated runs account the
// whole batch as in flight (CauseAbandoned) rather than half-shed.
type admission struct {
	caplens   []int    // capture lengths of the admitted packets
	flowKeys  []uint64 // flow hashes of the admitted packets
	shed      int
	shedBytes uint64
	policyNS  float64 // decision cost folded into the read task
}

// admitBatch applies the application's sampling policy to one read batch.
// occ is the queue occupancy in [0,1] observed when the read started (the
// adaptive controller's feedback signal). Every packet of the batch has
// already been read from the OS buffers — shedding skips the per-packet
// analysis load, not the kernel or syscall cost. Without a policy the
// batch is admitted wholesale at zero cost.
func (a *App) admitBatch(batch []kpkt, occ float64) admission {
	adm := admission{caplens: make([]int, 0, len(batch))}
	if a.sampler == nil {
		if a.flowsKept == nil {
			// The measurement fast path: no policy, no flow accounting.
			// Kept free of per-packet calls — this loop runs for every
			// packet of every unpoliced benchmark and golden run.
			for _, p := range batch {
				adm.caplens = append(adm.caplens, p.caplen)
			}
			return adm
		}
		for _, p := range batch {
			adm.caplens = append(adm.caplens, p.caplen)
			adm.noteFlow(a, p.data)
		}
		return adm
	}
	a.sampler.observe(occ)
	adm.policyNS = a.sys.ufixed(a.sys.Costs.PolicyPerPktNS) * float64(len(batch))
	for _, p := range batch {
		if !a.sampler.admit(p.data) {
			adm.shed++
			adm.shedBytes += uint64(p.caplen)
			continue
		}
		adm.caplens = append(adm.caplens, p.caplen)
		adm.noteFlow(a, p.data)
	}
	return adm
}

// noteFlow records one admitted packet's flow hash for flow-coverage
// accounting (applied to the app's table only when the read completes).
func (adm *admission) noteFlow(a *App, frame []byte) {
	if a.flowsKept == nil {
		return
	}
	if k, ok := flows.KeyOf(frame); ok {
		adm.flowKeys = append(adm.flowKeys, k.Hash())
	}
}

// finishRead books a completed read batch: admitted packets count as
// captured (with their flows), shed packets go to the policy's ledger
// cause at completion time, and the in-flight window closes.
func (a *App) finishRead(adm admission) {
	a.Captured += uint64(len(adm.caplens))
	for _, h := range adm.flowKeys {
		a.flowsKept[h] = struct{}{}
	}
	if adm.shed > 0 {
		a.Shed += uint64(adm.shed)
		a.sys.ledger.RecordN(a.sys.Policy.Cause(), adm.shed, adm.shedBytes,
			a.sys.Sim.Now()-a.sys.runStart)
	}
	a.inflightPkts, a.inflightBytes = 0, 0
}

// occupancy folds the application's queue fill signals into the adaptive
// controller's feedback value: the OS-buffer occupancy observed by the
// stack, and — when analysis workers are configured — the worker-queue
// occupancy, whichever is more congested.
func (a *App) occupancy(bufOcc float64) float64 {
	occ := bufOcc
	if a.sys.Load.Workers > 0 && a.sys.Costs.WorkerQueueBytes > 0 {
		if w := float64(a.workerOutstanding) / float64(a.sys.Costs.WorkerQueueBytes); w > occ {
			occ = w
		}
	}
	return occ
}

// procCost prices the application-side handling of one packet beyond the
// OS hand-off: bookkeeping plus the configured artificial load.
// It returns the fixed ns cost, memory bytes touched, bytes destined for
// the disk queue and bytes destined for the gzip pipe.
func (a *App) procCost(caplen int) (fixed, memBytes float64, diskBytes, pipeBytes int) {
	c := &a.sys.Costs
	ld := a.sys.Load
	fixed = a.sys.ufixed(c.AppPerPktNS)
	if ld.FlowTrack {
		// Header parse + hash + map update; touches the packet headers and
		// one table entry.
		fixed += a.sys.ufixed(c.FlowTrackNS)
		memBytes += 128
	}
	if ld.MemcpyCount > 0 {
		memBytes += float64(ld.MemcpyCount * caplen)
	}
	if ld.ZlibLevel > 0 {
		// gzwrite(): compute-dominated; the per-byte constant is already
		// architecture-specific (the Netburst Xeon is better at this, the
		// one place the thesis saw Intel ahead), so no FixedCost scaling.
		fixed += float64(caplen) * a.sys.Arch.ZlibNsPerByte(ld.ZlibLevel)
		memBytes += float64(caplen)
	}
	if a.pipe != nil {
		fixed += a.sys.ufixed(c.PipePerPktNS)
		memBytes += float64(caplen)
		pipeBytes = caplen
	}
	if ld.WriteSnapLen > 0 || ld.WriteFull {
		n := caplen
		if !ld.WriteFull && ld.WriteSnapLen < caplen {
			n = ld.WriteSnapLen
		}
		n += 16 // pcap record header
		memBytes += float64(n)
		fixed += float64(n) * a.sys.Arch.DiskCPUPerByteNS
		diskBytes = n
	}
	return fixed, memBytes, diskBytes, pipeBytes
}

// batchLoad prices the per-packet load of a whole read batch. locality
// discounts the memory-bound part (FreeBSD bulk reads leave the chunk
// cache-warm). Without worker threads the costs are folded into the read
// task (inline) and finish() applies the disk/pipe side effects; with
// Load.Workers > 0 the load runs as separate worker tasks that may execute
// on other CPUs, and finish() dispatches them.
func (a *App) batchLoad(caplens []int, locality float64) (inlineFixed, inlineMem float64, finish func()) {
	var fixed, mem float64
	diskTotal, pipeTotal, loadBytes := 0, 0, 0
	for _, cl := range caplens {
		pf, pm, db, pb := a.procCost(cl)
		fixed += pf
		mem += pm * locality
		diskTotal += db
		pipeTotal += pb
		loadBytes += cl
	}
	apply := func() {
		if diskTotal > 0 {
			a.sys.Disk.Write(diskTotal)
		}
		if pipeTotal > 0 {
			a.pipe.write(pipeTotal)
		}
	}
	workers := a.sys.Load.Workers
	if workers <= 0 {
		return fixed, mem, apply
	}
	// Worker mode: the reader only pays the hand-off; the analysis load is
	// split over up to `workers` tasks dispatched to whatever CPUs are
	// free. Backpressure: the reader blocks once too many bytes are in
	// flight (blockedOnBackpressure checks workerOutstanding).
	return 0, 0, func() {
		n := len(caplens)
		if n == 0 {
			apply()
			return
		}
		parts := workers
		if parts > n {
			parts = n
		}
		a.workerOutstanding += loadBytes
		a.gWorker.observe(a.workerOutstanding)
		fixedPer := fixed / float64(parts)
		memPer := mem / float64(parts)
		bytesPer := loadBytes / parts
		for i := 0; i < parts; i++ {
			last := i == parts-1
			rel := bytesPer
			if last {
				rel = loadBytes - bytesPer*(parts-1)
			}
			doApply := last // side effects once per batch, with the last part
			a.sys.Machine.SubmitUser(&sim.Task{
				Name:         "worker",
				Prio:         sim.PrioUser,
				FixedNS:      fixedPer,
				MemBytes:     memPer,
				MemNsPerByte: a.sys.umemNs(),
				OnDone: func() {
					a.workerOutstanding -= rel
					a.gWorker.observe(a.workerOutstanding)
					if doApply {
						apply()
					}
					if a.state == stBlockedWorkers &&
						a.workerOutstanding < a.sys.Costs.WorkerQueueBytes/2 {
						a.resume()
					}
				},
			})
		}
	}
}

// blockedOnBackpressure checks disk, pipe and worker backpressure before
// the app consumes more packets; it parks the app if any is full.
func (a *App) blockedOnBackpressure() bool {
	if a.sys.Disk.full() && (a.sys.Load.WriteSnapLen > 0 || a.sys.Load.WriteFull) {
		a.state = stBlockedDisk
		a.sys.Disk.addWaiter(a)
		a.sys.Disk.gauge.overflow()
		return true
	}
	if a.pipe != nil && a.pipe.full() {
		a.state = stBlockedPipe
		a.pipe.producerBlocked = true
		a.pipe.gauge.overflow()
		return true
	}
	if a.sys.Load.Workers > 0 && a.workerOutstanding >= a.sys.Costs.WorkerQueueBytes {
		a.state = stBlockedWorkers
		a.gWorker.overflow()
		return true
	}
	return false
}

// submitWork places an application task honoring the Linux timeslice-hog
// behaviour: a reader that still has data continues on its CPU — ahead of
// other runnable user tasks — until its timeslice is spent. It abandons
// the CPU early only when interrupt/kernel work is monopolizing it (the
// 2.6 load balancer pulls runnable tasks to idle CPUs). FreeBSD's reader
// sleeps between buffer chunks, so it always yields and re-queues fairly.
func (a *App) submitWork(t *sim.Task, estNS float64) {
	hog := a.sys.OS == Linux && a.lastCPU != nil &&
		a.sliceUsed+estNS <= a.sys.Costs.TimesliceNS &&
		!kernelBusy(a.lastCPU)
	if hog {
		a.sliceUsed += estNS
		a.lastCPU.SubmitFront(t)
		return
	}
	a.sliceUsed = estNS
	a.lastCPU = a.sys.Machine.SubmitUser(t)
}

// kernelBusy reports whether the CPU currently has above-user-priority
// work running or queued, i.e. a user task would be starved there.
func kernelBusy(c *sim.CPU) bool {
	for p := sim.PrioHardIRQ; p < sim.PrioUser; p++ {
		if c.QueueLen(p) > 0 {
			return true
		}
	}
	return c.Running() != nil && c.Running().Prio < sim.PrioUser
}

// resume is called by disk/pipe/worker wakeups.
func (a *App) resume() {
	if a.state != stBlockedDisk && a.state != stBlockedPipe && a.state != stBlockedWorkers {
		return
	}
	a.state = stIdle
	a.sys.stack.appStart(a)
}

// pipe models the named-pipe-to-gzip setup of §6.3.4: the capture process
// writes whole packets into a fifo; a separate gzip process compresses
// them. Splitting producer and consumer puts the compression on the other
// CPU — and introduces the pipe as a new bottleneck.
type pipe struct {
	sys   *System
	app   *App
	level int
	gauge *Gauge

	buf             int
	busy            bool
	producerBlocked bool

	BytesIn  uint64
	BytesOut uint64
}

func (p *pipe) full() bool { return p.buf >= p.sys.Costs.PipeBufBytes }

// write is called when the producer's task has completed.
func (p *pipe) write(n int) {
	p.buf += n
	p.BytesIn += uint64(n)
	p.gauge.observe(p.buf)
	if !p.busy {
		p.consume()
	}
}

// consume runs the gzip process: one task per pipe chunk.
func (p *pipe) consume() {
	chunk := p.buf
	if max := p.sys.Costs.PipeBufBytes; chunk > max {
		chunk = max
	}
	if chunk <= 0 {
		p.busy = false
		return
	}
	p.busy = true
	cost := float64(chunk)*p.sys.Arch.ZlibNsPerByte(p.level) + p.sys.ufixed(2000)
	p.sys.Machine.SubmitUser(&sim.Task{
		Name:         "gzip",
		Prio:         sim.PrioUser,
		FixedNS:      cost,
		MemBytes:     float64(chunk),
		MemNsPerByte: p.sys.umemNs(),
		OnDone: func() {
			p.buf -= chunk
			p.BytesOut += uint64(chunk)
			p.gauge.observe(p.buf)
			if p.producerBlocked && p.buf < p.sys.Costs.PipeBufBytes/2 {
				p.producerBlocked = false
				p.app.resume()
			}
			if p.buf > 0 {
				p.consume()
			} else {
				p.busy = false
			}
		},
	})
}
