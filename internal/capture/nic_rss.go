package capture

import (
	"fmt"

	"repro/internal/flows"
	"repro/internal/sim"
)

// ringServicer is the stack-side trigger of the RSS NIC: the NIC calls
// ringKick(r) when a packet lands in ring r so an interrupt-driven stack
// can schedule service. A poll-mode stack services rings on its own clock
// and leaves the NIC's kick unset.
type ringServicer interface {
	ringKick(r int)
}

// rxRing is one RSS receive ring with its own occupancy gauge, drop and
// delivery counters, and timestamp state (modern NICs stamp per service
// pass, one timestamp shared by the pass's batch — the same artifact as
// the legacy burst stamp, per ring).
type rxRing struct {
	pkts      []kpkt
	deferred  bool // the last service pass left packets behind (budget/burst cap)
	delivered uint64
	drops     uint64
	gauge     *Gauge
	lastStamp sim.Time
}

// rssNIC models a modern multi-queue NIC: the 5-tuple of each arriving
// frame is hashed (reusing internal/flows — the RSS Toeplitz stand-in)
// onto one of RXRings per-core receive rings. Before a frame can land in
// a ring it must cross the host bus: when the architecture declares a
// PCIe / memory-bandwidth ceiling, DMA is serialized at that rate through
// a bounded on-NIC FIFO, and FIFO overflow is the pcie-bus drop cause —
// at 100G this, not the CPU, is often the first wall.
type rssNIC struct {
	sys   *System
	rings []rxRing
	kick  ringServicer // nil: poll-mode, no interrupts

	// DMA ceiling state (dmaNsPerByte == 0: no ceiling, frames land
	// immediately like the legacy NIC).
	dmaNsPerByte float64
	fifoCap      int
	fifoBytes    int
	fifoGauge    *Gauge
	linkFree     sim.Time
	dmaPkts      int
	dmaBytes     uint64

	Drops     uint64 // FIFO + ring overflows (the NICDrops aggregate)
	Delivered uint64 // packets handed to the stack
}

func newRSSNIC(s *System, nrings int) *rssNIC {
	n := &rssNIC{sys: s}
	if gbps := s.Arch.PCIeGbps; gbps > 0 {
		if m := s.Arch.MemBWGbps; m > 0 && m < gbps {
			gbps = m
		}
		n.dmaNsPerByte = 8 / gbps
		n.fifoCap = s.Costs.NICFifoBytes
		n.fifoGauge = s.newGauge("nic-fifo", -1, n.fifoCap)
	} else if m := s.Arch.MemBWGbps; m > 0 {
		n.dmaNsPerByte = 8 / m
		n.fifoCap = s.Costs.NICFifoBytes
		n.fifoGauge = s.newGauge("nic-fifo", -1, n.fifoCap)
	}
	n.rings = make([]rxRing, nrings)
	for i := range n.rings {
		n.rings[i].gauge = s.newGauge(fmt.Sprintf("rss-ring%d", i), -1, s.Costs.RSSRingSlots)
	}
	return n
}

func (n *rssNIC) reset() {
	for i := range n.rings {
		r := &n.rings[i]
		r.pkts = r.pkts[:0]
		r.deferred = false
		r.delivered, r.drops = 0, 0
		r.lastStamp = 0
	}
	n.fifoBytes, n.dmaPkts, n.dmaBytes = 0, 0, 0
	n.linkFree = 0
	n.Drops, n.Delivered = 0, 0
}

// ringOf steers a frame: RSS hashes the 5-tuple onto a ring; frames
// without a parseable flow key (non-UDP/IP) land on ring 0, like real RSS
// falling back to a default queue.
func (n *rssNIC) ringOf(data []byte) int {
	if k, ok := flows.KeyOf(data); ok {
		return int(k.Hash() % uint64(len(n.rings)))
	}
	return 0
}

// Arrive is called at the simulated instant the frame has fully arrived
// on the wire. With a DMA ceiling the frame first queues in the NIC FIFO
// and lands in its ring when its DMA completes.
func (n *rssNIC) Arrive(data []byte) {
	arrival := n.sys.Sim.Now()
	if n.dmaNsPerByte == 0 {
		n.land(data, arrival)
		return
	}
	if n.fifoBytes+len(data) > n.fifoCap {
		n.Drops++
		n.sys.recordDrop(CausePCIe, len(data))
		n.fifoGauge.overflow()
		return
	}
	n.fifoBytes += len(data)
	n.fifoGauge.observe(n.fifoBytes)
	n.dmaPkts++
	n.dmaBytes += uint64(len(data))
	start := n.linkFree
	if start < arrival {
		start = arrival
	}
	done := start + sim.Time(float64(len(data))*n.dmaNsPerByte+0.5)
	n.linkFree = done
	n.sys.Sim.At(done, func() {
		n.fifoBytes -= len(data)
		n.fifoGauge.observe(n.fifoBytes)
		n.dmaPkts--
		n.dmaBytes -= uint64(len(data))
		n.land(data, arrival)
	})
}

// land places a DMA-complete frame into its RSS ring.
func (n *rssNIC) land(data []byte, arrival sim.Time) {
	r := n.ringOf(data)
	ring := &n.rings[r]
	if len(ring.pkts) >= n.sys.Costs.RSSRingSlots {
		ring.drops++
		n.Drops++
		// Attribute the overflow: a ring that filled while the servicer
		// was deliberately leaving packets behind (budget/burst cap hit
		// with more queued) overflowed because of the batching limit.
		cause := CauseRSSRing
		if ring.deferred {
			cause = CausePollBudget
		}
		n.sys.recordDrop(cause, len(data))
		ring.gauge.overflow()
		return
	}
	ring.pkts = append(ring.pkts, kpkt{data: data, arrival: arrival})
	ring.gauge.observe(len(ring.pkts))
	if n.kick != nil {
		n.kick.ringKick(r)
	}
}

// depth returns the current occupancy of ring r.
func (n *rssNIC) depth(r int) int { return len(n.rings[r].pkts) }

// popBurst removes up to max packets from ring r and stamps each with the
// current instant — the service pass's entry time, shared by the whole
// batch (the per-ring analogue of NIC.stamp: batching still merges
// inter-packet gaps). It records whether packets were left behind, which
// attributes subsequent overflows to the batching budget.
func (n *rssNIC) popBurst(r, max int) []kpkt {
	ring := &n.rings[r]
	count := len(ring.pkts)
	if count > max {
		count = max
	}
	if count == 0 {
		ring.deferred = false
		return nil
	}
	batch := make([]kpkt, count)
	copy(batch, ring.pkts[:count])
	copy(ring.pkts, ring.pkts[count:])
	ring.pkts = ring.pkts[:len(ring.pkts)-count]
	ring.deferred = len(ring.pkts) > 0
	ring.delivered += uint64(count)
	n.Delivered += uint64(count)

	ts := n.sys.Sim.Now()
	for _, p := range batch {
		err := ts - p.arrival
		if err < 0 {
			err = -err
		}
		n.sys.tsStamped++
		n.sys.tsErrSum += err
		if err > n.sys.tsErrMax {
			n.sys.tsErrMax = err
		}
		if ts == ring.lastStamp {
			n.sys.tsTies++
		}
		ring.lastStamp = ts
	}
	return batch
}

// idle reports whether the NIC holds no packets (no DMA in flight, all
// rings empty).
func (n *rssNIC) idle() bool {
	if n.dmaPkts > 0 {
		return false
	}
	for i := range n.rings {
		if len(n.rings[i].pkts) > 0 {
			return false
		}
	}
	return true
}

// remnants counts the packets still inside the NIC (DMA in flight plus
// ring contents) for truncation accounting.
func (n *rssNIC) remnants() (pkts int, bytes uint64) {
	pkts, bytes = n.dmaPkts, n.dmaBytes
	for i := range n.rings {
		for _, p := range n.rings[i].pkts {
			pkts++
			bytes += uint64(len(p.data))
		}
	}
	return pkts, bytes
}

// RingDelivered exposes the per-ring delivery counts (RSS determinism
// tests and diagnostics).
func (n *rssNIC) RingDelivered() []uint64 {
	out := make([]uint64, len(n.rings))
	for i := range n.rings {
		out[i] = n.rings[i].delivered
	}
	return out
}
