package capture

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Cause identifies one place in the capture path where a packet can be
// lost. The causes mirror the bottlenecks the thesis dissects in its
// Chapter 5 profiling and Chapter 6 measurements: the NIC's RX descriptor
// ring, the interrupt-moderation window, the Linux per-CPU input queue
// (backlog) and per-socket receive buffer, the FreeBSD BPF double buffer,
// kernel filter rejection, and the application-side pipe, worker-queue and
// disk backpressure points.
type Cause int

const (
	// CauseNICRing: RX descriptor ring overflow (§2.2.1). Shared: the
	// packet never reached any application.
	CauseNICRing Cause = iota
	// CauseModeration: ring overflow while the card was still delaying the
	// first interrupt of a moderation window (§2.2.1) — the batching that
	// trades interrupt load against latency also grows the ring backlog.
	CauseModeration
	// CauseBacklog: Linux netdev input-queue overflow (netdev_max_backlog).
	CauseBacklog
	// CauseRcvbuf: Linux per-socket receive-buffer overflow (rmem).
	CauseRcvbuf
	// CauseBPFBuf: FreeBSD BPF store/hold double buffer full (catchpacket
	// rejecting before the copy, §2.1.1).
	CauseBPFBuf
	// CauseFilter: the kernel filter rejected the packet for this
	// application. Not a malfunction — but the packet is not captured, so
	// conservation must account for it.
	CauseFilter
	// CausePipe: packet lost at the gzip pipe. The modeled pipe blocks the
	// producer instead of dropping, so this stays zero unless a future
	// model variant sheds at the fifo.
	CausePipe
	// CauseWorker: packet lost at the analysis worker queue (blocks today,
	// see CausePipe).
	CauseWorker
	// CauseDisk: packet lost at the disk write-back queue (blocks today,
	// see CausePipe).
	CauseDisk
	// CauseAbandoned: in flight when the run hit the safety cap and was
	// truncated (Stats.Truncated): still in the ring, backlog, socket or
	// BPF buffers, or inside an unfinished read batch. Distinct from the
	// modeled drops above — these packets were not lost by the system under
	// test but by the measurement ending.
	CauseAbandoned
	// CauseFaultSplitter: frames lost on a degraded splitter leg (injected
	// by the fault model, internal/faults): the switch counted them but the
	// sniffer's fiber never delivered them. Booked before the NIC, so the
	// loss is shared by every application on the sniffer and the
	// conservation check balances against the switch's ground truth.
	CauseFaultSplitter
	// CauseFaultGenerator: frames the generator was supposed to emit but
	// never did (injected underrun or mid-train stall). Booked when a
	// faulted repetition is normalized against the intended train length.
	CauseFaultGenerator
	// CauseShedUniform: packets the application's uniform 1-in-N sampling
	// policy deliberately declined after reading them from the OS (see
	// Policy). Shed is not loss: the application chose not to process the
	// packet, so the cause is per-application and distinct from every
	// buffer-overflow cause above.
	CauseShedUniform
	// CauseShedFlow: packets declined by the flow-aware sampling policy
	// (whole 5-tuple flows hash-selected out of the kept set).
	CauseShedFlow
	// CauseShedAdaptive: packets declined by the queue-depth feedback
	// controller while it was backing off under load.
	CauseShedAdaptive
	// CauseRSSRing: overflow of one RSS RX ring (modern multi-queue NIC).
	// Shared: like the legacy ring, the packet never left the card.
	CauseRSSRing
	// CausePollBudget: RSS ring overflow while the last service pass left
	// packets behind because its NAPI budget / poll burst was exhausted —
	// the batching limit at work, not raw consumer overload (the modern
	// analogue of the moderation-vs-nic-ring attribution).
	CausePollBudget
	// CauseUmemFill: the AF_XDP UMEM frame pool was exhausted when the
	// packet reached XDP — the fill ring ran dry because applications were
	// not returning frames fast enough. Shared: no socket got the packet.
	CauseUmemFill
	// CausePCIe: the NIC's internal FIFO overflowed because the PCIe /
	// memory-bus DMA ceiling (arch.Profile.PCIeGbps, MemBWGbps) is below
	// the offered rate — at 40/100G the host bus, not the CPU, is the
	// first wall. Shared: the frame never reached host memory.
	CausePCIe

	NumCauses
)

// String returns the short column/key name of the cause.
func (c Cause) String() string {
	switch c {
	case CauseNICRing:
		return "nic-ring"
	case CauseModeration:
		return "moderation"
	case CauseBacklog:
		return "backlog"
	case CauseRcvbuf:
		return "rcvbuf"
	case CauseBPFBuf:
		return "bpf-buffer"
	case CauseFilter:
		return "filter"
	case CausePipe:
		return "pipe"
	case CauseWorker:
		return "worker-queue"
	case CauseDisk:
		return "disk-queue"
	case CauseAbandoned:
		return "abandoned"
	case CauseFaultSplitter:
		return "fault-splitter"
	case CauseFaultGenerator:
		return "fault-generator"
	case CauseShedUniform:
		return "shed-uniform"
	case CauseShedFlow:
		return "shed-flow"
	case CauseShedAdaptive:
		return "shed-adaptive"
	case CauseRSSRing:
		return "rss-ring"
	case CausePollBudget:
		return "poll-budget"
	case CauseUmemFill:
		return "umem-fill"
	case CausePCIe:
		return "pcie-bus"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// causesByName is the one canonical rendering order of the causes:
// sorted by name, computed once. Declaration order is an implementation
// detail (new causes are appended wherever the model grows them); every
// place that renders a ledger — Stats.Explain, the -why table, the
// NDJSON ledger object, the /metrics cause labels — iterates this slice
// so the serialization order is deterministic and identical everywhere.
var causesByName = func() []Cause {
	cs := make([]Cause, NumCauses)
	for c := Cause(0); c < NumCauses; c++ {
		cs[c] = c
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].String() < cs[j].String() })
	return cs
}()

// CausesByName returns every cause in the canonical rendering order
// (sorted by name). Callers must not mutate the returned slice.
func CausesByName() []Cause { return causesByName }

// Shared reports whether drops of this cause happen before the
// per-application fan-out: a shared drop is recorded once but costs every
// attached application the packet, so conservation weighs it by the number
// of applications. Per-app causes (rcvbuf, BPF buffer, filter, abandoned
// remnants) are recorded once per affected application already.
func (c Cause) Shared() bool {
	return c == CauseNICRing || c == CauseModeration || c == CauseBacklog ||
		c == CauseFaultSplitter || c == CauseFaultGenerator ||
		c == CauseRSSRing || c == CausePollBudget || c == CauseUmemFill ||
		c == CausePCIe
}

// DropRecord accumulates the drops of one cause: packet and byte counts
// plus the simulated timestamps of the first and last drop (the window in
// which the bottleneck was active).
type DropRecord struct {
	Packets uint64
	Bytes   uint64
	First   sim.Time
	Last    sim.Time
}

// Ledger is the per-cause drop accounting of one run. The zero value is
// ready to use; the type is comparable so Stats values remain usable with
// reflect.DeepEqual-style assertions.
type Ledger struct {
	Drops [NumCauses]DropRecord
}

// Record books one dropped packet of wire/capture size bytes at time now.
func (l *Ledger) Record(c Cause, bytes int, now sim.Time) {
	l.RecordN(c, 1, uint64(bytes), now)
}

// RecordN books pkts dropped packets totalling bytes at time now.
func (l *Ledger) RecordN(c Cause, pkts int, bytes uint64, now sim.Time) {
	if pkts <= 0 {
		return
	}
	d := &l.Drops[c]
	if d.Packets == 0 || now < d.First {
		d.First = now
	}
	if now > d.Last {
		d.Last = now
	}
	d.Packets += uint64(pkts)
	d.Bytes += bytes
}

// Merge folds another ledger into l (used to aggregate repetitions of one
// measurement point). First/Last keep the extreme per-run timestamps.
func (l *Ledger) Merge(o Ledger) {
	for c := Cause(0); c < NumCauses; c++ {
		od := o.Drops[c]
		if od.Packets == 0 {
			continue
		}
		d := &l.Drops[c]
		if d.Packets == 0 || od.First < d.First {
			d.First = od.First
		}
		if od.Last > d.Last {
			d.Last = od.Last
		}
		d.Packets += od.Packets
		d.Bytes += od.Bytes
	}
}

// Total returns the overall dropped packet and byte counts.
func (l Ledger) Total() (pkts, bytes uint64) {
	for c := Cause(0); c < NumCauses; c++ {
		pkts += l.Drops[c].Packets
		bytes += l.Drops[c].Bytes
	}
	return pkts, bytes
}

// SharedPackets returns the packets dropped before the per-app fan-out.
func (l Ledger) SharedPackets() uint64 {
	var n uint64
	for c := Cause(0); c < NumCauses; c++ {
		if c.Shared() {
			n += l.Drops[c].Packets
		}
	}
	return n
}

// ShedCauses lists the deliberate-shedding causes in declaration order.
var ShedCauses = []Cause{CauseShedUniform, CauseShedFlow, CauseShedAdaptive}

// Shed reports whether drops of this cause were deliberate policy
// decisions (load shedding) rather than losses the system suffered.
func (c Cause) Shed() bool {
	return c == CauseShedUniform || c == CauseShedFlow || c == CauseShedAdaptive
}

// ShedPackets returns the packets deliberately shed by sampling policies —
// a subset of PerAppPackets, since shedding happens after the per-app
// fan-out.
func (l Ledger) ShedPackets() uint64 {
	var n uint64
	for _, c := range ShedCauses {
		n += l.Drops[c].Packets
	}
	return n
}

// PerAppPackets returns the packets dropped after the per-app fan-out.
func (l Ledger) PerAppPackets() uint64 {
	var n uint64
	for c := Cause(0); c < NumCauses; c++ {
		if !c.Shared() {
			n += l.Drops[c].Packets
		}
	}
	return n
}

// MarshalJSON renders the ledger as an object keyed by cause name, causes
// in the canonical name-sorted order (CausesByName), zero causes omitted.
func (l Ledger) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, c := range CausesByName() {
		d := l.Drops[c]
		if d.Packets == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:{\"packets\":%d,\"bytes\":%d,\"firstNS\":%d,\"lastNS\":%d}",
			c.String(), d.Packets, d.Bytes, int64(d.First), int64(d.Last))
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// CauseFromString is the inverse of Cause.String.
func CauseFromString(s string) (Cause, bool) {
	for c := Cause(0); c < NumCauses; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// UnmarshalJSON parses the cause-keyed object MarshalJSON produces, so a
// ledger round-trips exactly through JSON — the property the campaign
// journal relies on to replay recorded cells byte-identically.
func (l *Ledger) UnmarshalJSON(b []byte) error {
	*l = Ledger{}
	var m map[string]struct {
		Packets uint64 `json:"packets"`
		Bytes   uint64 `json:"bytes"`
		FirstNS int64  `json:"firstNS"`
		LastNS  int64  `json:"lastNS"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	for name, d := range m {
		c, ok := CauseFromString(name)
		if !ok {
			return fmt.Errorf("capture: unknown drop cause %q in ledger JSON", name)
		}
		l.Drops[c] = DropRecord{
			Packets: d.Packets, Bytes: d.Bytes,
			First: sim.Time(d.FirstNS), Last: sim.Time(d.LastNS),
		}
	}
	return nil
}

// BookFaultLoss accounts pkts frames (bytes total, last seen around time
// at) that an injected fault withheld from a run: the testbed's ground
// truth says they were offered, but the system under test never saw them
// (degraded splitter leg, generator underrun). The frames are booked under
// the fault cause — which is Shared, since no application could capture
// them — and added back to Generated, so CheckConservation balances the
// run against the ground-truth count instead of the shortened train.
func (s *Stats) BookFaultLoss(c Cause, pkts int, bytes uint64, at sim.Time) {
	if pkts <= 0 {
		return
	}
	s.Ledger.RecordN(c, pkts, bytes, at)
	s.Generated += uint64(pkts)
}

// Gauge tracks the occupancy of one finite buffer over a run: the
// high-water mark and the number of distinct overflow episodes. Repeated
// drops while the buffer stays saturated count as one episode; the episode
// ends when the level recedes below capacity.
type Gauge struct {
	Name      string
	Capacity  int
	HighWater int
	Episodes  uint64
	over      bool
}

// observe records the current fill level.
func (g *Gauge) observe(level int) {
	if level > g.HighWater {
		g.HighWater = level
	}
	if g.over && level < g.Capacity {
		g.over = false
	}
}

// overflow marks a drop/block at this buffer, starting a new episode if
// the buffer was not already saturated.
func (g *Gauge) overflow() {
	if !g.over {
		g.over = true
		g.Episodes++
	}
}

func (g *Gauge) reset() {
	g.HighWater, g.Episodes, g.over = 0, 0, false
}

// GaugeStat is the per-run snapshot of one buffer gauge.
type GaugeStat struct {
	Name      string `json:"name"`
	Capacity  int    `json:"capacity"`
	HighWater int    `json:"highWater"`
	Episodes  uint64 `json:"episodes,omitempty"`
}
