package capture

import "repro/internal/sim"

// linuxStack models the Linux 2.6 capturing stack (§2.1.2): the interrupt
// handler allocates an skb and appends a pointer to the per-CPU input
// queue; a NET_RX softirq later walks the queue and hands each packet to
// every PF_PACKET socket whose LSF filter accepts it; the application
// copies each packet separately to user space via recvfrom (or reads it
// in place with the PACKET_MMAP patch of §6.3.6).
type linuxStack struct {
	sys *System

	backlog      []kpkt
	backlogDrops uint64
	softirqOn    bool
	inflight     []kpkt // the batch a scheduled softirq pass is processing
	gBacklog     *Gauge

	socks []*lsock
}

// lsock is one PF_PACKET socket with its receive-buffer accounting.
type lsock struct {
	app      *App
	queue    []kpkt
	bytes    int
	gauge    *Gauge
	Drops    uint64
	Enqueued uint64
}

func newLinuxStack(s *System) *linuxStack {
	st := &linuxStack{sys: s}
	st.gBacklog = s.newGauge("backlog", -1, s.Costs.BacklogLen)
	for i, a := range s.apps {
		st.socks = append(st.socks, &lsock{app: a, gauge: s.newGauge("rcvbuf", i, s.BufferBytes)})
	}
	return st
}

func (st *linuxStack) reset() {
	st.backlog = st.backlog[:0]
	st.backlogDrops = 0
	st.softirqOn = false
	st.inflight = nil
	for _, sk := range st.socks {
		sk.queue = sk.queue[:0]
		sk.bytes = 0
		sk.Drops, sk.Enqueued = 0, 0
	}
}

func (st *linuxStack) remnants() (shared []kpkt, perApp [][]kpkt) {
	shared = append(shared, st.backlog...)
	shared = append(shared, st.inflight...)
	perApp = make([][]kpkt, len(st.socks))
	for i, sk := range st.socks {
		perApp[i] = sk.queue
	}
	return shared, perApp
}

// irqCost: driver top half — allocate the skb and enqueue the pointer.
// No payload copy happens here (the card DMAed the frame already). The
// PF_RING-style stack skips the skb allocation: the driver hands the raw
// buffer straight towards the ring.
func (st *linuxStack) irqCost(data []byte) (float64, float64, any) {
	c := &st.sys.Costs
	if st.sys.PFRing {
		return c.RingInsertNS + c.BacklogEnqNS, 0, nil
	}
	return c.SkbAllocNS + c.BacklogEnqNS, 0, nil
}

func (st *linuxStack) irqDone(data []byte, _ any) {
	if len(st.backlog) >= st.sys.Costs.BacklogLen {
		st.backlogDrops++
		st.sys.recordDrop(CauseBacklog, len(data))
		st.gBacklog.overflow()
		return
	}
	st.backlog = append(st.backlog, kpkt{data: data})
	st.gBacklog.observe(len(st.backlog))
	if !st.softirqOn {
		st.softirqOn = true
		st.scheduleSoftirq()
	}
}

// delivery is one (socket, packet) pair accepted by a filter.
type delivery struct {
	sk *lsock
	p  kpkt
}

// scheduleSoftirq drains up to the quota from the input queue in one
// softirq pass on CPU 0 (softirqs run on the CPU that took the interrupt).
func (st *linuxStack) scheduleSoftirq() {
	c := &st.sys.Costs
	n := len(st.backlog)
	if n > c.SoftirqQuota {
		n = c.SoftirqQuota
	}
	batch := make([]kpkt, n)
	copy(batch, st.backlog[:n])
	copy(st.backlog, st.backlog[n:])
	st.backlog = st.backlog[:len(st.backlog)-n]
	st.inflight = batch

	ring := st.sys.MmapPatch || st.sys.PFRing
	var fixed, mem float64
	var delivers []delivery
	rejects := 0
	var rejectBytes uint64
	for _, p := range batch {
		perPkt := c.SoftirqPerPktNS
		if st.sys.PFRing {
			// The ring stack bypasses most of netif_receive_skb.
			perPkt = c.RingInsertNS
		}
		fixed += perPkt
		for _, sk := range st.socks {
			caplen, fcost := st.sys.runFilter(p.data)
			fixed += fcost
			if caplen == 0 {
				rejects++
				rejectBytes += uint64(len(p.data))
				continue
			}
			if st.sys.PFRing {
				fixed += c.RingInsertNS
			} else {
				fixed += c.SockEnqNS
			}
			if sk.app.state == stIdle {
				fixed += c.WakeupNS
			}
			if ring {
				// The kernel copies the frame into the shared ring here,
				// in softirq context.
				mem += float64(caplen)
			}
			delivers = append(delivers, delivery{sk, kpkt{data: p.data, caplen: caplen}})
		}
	}
	st.sys.cpu0().Submit(&sim.Task{
		Name:         "net-rx-softirq",
		Prio:         sim.PrioSoftIRQ,
		FixedNS:      st.sys.kfixed(fixed),
		MemBytes:     mem,
		MemNsPerByte: st.sys.kmemNs(),
		OnDone: func() {
			// The pass has run: the batch packets are now either rejected,
			// dropped at a socket, or queued — no longer in flight.
			st.inflight = nil
			st.sys.ledger.RecordN(CauseFilter, rejects, rejectBytes,
				st.sys.Sim.Now()-st.sys.runStart)
			for _, dv := range delivers {
				overhead := dv.p.caplen + st.sys.Costs.SkbOverhead
				if dv.sk.bytes+overhead > st.sys.BufferBytes {
					dv.sk.Drops++
					st.sys.recordDrop(CauseRcvbuf, dv.p.caplen)
					dv.sk.gauge.overflow()
					continue
				}
				dv.sk.queue = append(dv.sk.queue, dv.p)
				dv.sk.bytes += overhead
				dv.sk.gauge.observe(dv.sk.bytes)
				dv.sk.Enqueued++
				if dv.sk.app.state == stIdle {
					st.appStart(dv.sk.app)
				}
			}
			if len(st.backlog) > 0 {
				st.scheduleSoftirq()
			} else {
				st.softirqOn = false
			}
		},
	})
}

// appStart runs one read burst of the application's loop: up to AppBatch
// packets, each paying the recvfrom syscall and the copy to user space
// (or the cheap PACKET_MMAP hand-off), plus the configured load.
func (st *linuxStack) appStart(a *App) {
	if a.state == stRunning || a.state == stBlockedDisk ||
		a.state == stBlockedPipe || a.state == stBlockedWorkers {
		return
	}
	sk := st.socks[a.idx]
	if len(sk.queue) == 0 {
		a.state = stIdle
		return
	}
	if a.blockedOnBackpressure() {
		return
	}
	a.state = stRunning

	c := &st.sys.Costs
	n := len(sk.queue)
	if n > c.AppBatch {
		n = c.AppBatch
	}
	batch := make([]kpkt, n)
	copy(batch, sk.queue[:n])
	copy(sk.queue, sk.queue[n:])
	sk.queue = sk.queue[:len(sk.queue)-n]

	// Occupancy is observed before the batch is drained: the controller
	// sees the rcvbuf as the wakeup found it.
	occ := a.occupancy(float64(sk.bytes) / float64(st.sys.BufferBytes))

	ring := st.sys.MmapPatch || st.sys.PFRing
	var fixed, mem float64
	for _, p := range batch {
		sk.bytes -= p.caplen + c.SkbOverhead
		if ring {
			fixed += st.sys.ufixed(c.MmapPerPktNS)
		} else {
			fixed += st.sys.ufixed(c.RecvSyscallNS)
			mem += float64(p.caplen)
		}
		a.inflightBytes += uint64(p.caplen)
	}
	a.inflightPkts = n
	adm := a.admitBatch(batch, occ)
	fixed += adm.policyNS
	loadFixed, loadMem, finish := a.batchLoad(adm.caplens, 1.0)
	fixed += loadFixed
	mem += loadMem
	est := fixed + mem*st.sys.umemNs()
	a.submitWork(&sim.Task{
		Name:         "recv",
		Prio:         sim.PrioUser,
		FixedNS:      fixed,
		MemBytes:     mem,
		MemNsPerByte: st.sys.umemNs(),
		OnDone: func() {
			a.finishRead(adm)
			finish()
			a.state = stIdle
			st.appStart(a)
		},
	}, est)
}

func (st *linuxStack) pending() bool {
	if len(st.backlog) > 0 || st.softirqOn {
		return true
	}
	for _, sk := range st.socks {
		if len(sk.queue) > 0 {
			return true
		}
	}
	return false
}

func (st *linuxStack) dropStats() ([]uint64, uint64) {
	per := make([]uint64, len(st.socks))
	for i, sk := range st.socks {
		per[i] = sk.Drops
	}
	return per, st.backlogDrops
}
