package capture

import "repro/internal/sim"

// bsdStack models the FreeBSD BPF (§2.1.1): the interrupt handler runs
// every attached filter and copies accepted packets into the STORE half of
// that attachment's double buffer; the application read()s whole HOLD
// buffers at once. Buffers switch when the STORE is full and the HOLD is
// empty, or when the HOLD is empty and the application performs a read.
type bsdStack struct {
	sys  *System
	atts []*batt
}

// batt is one BPF attachment (/dev/bpfN) with its double buffer.
type batt struct {
	app   *App
	gauge *Gauge

	store bpfBuf
	hold  bpfBuf
	ready bool // HOLD filled, waiting for the reader

	timeoutArmed bool
	timeout      sim.EventRef

	Drops  uint64
	Stored uint64
}

type bpfBuf struct {
	bytes int
	pkts  []kpkt
}

func (b *bpfBuf) reset() { b.bytes, b.pkts = 0, b.pkts[:0] }

func newBSDStack(s *System) *bsdStack {
	st := &bsdStack{sys: s}
	for i, a := range s.apps {
		// The gauge watches one half (STORE) of the double buffer.
		st.atts = append(st.atts, &batt{app: a, gauge: s.newGauge("bpf-store", i, s.BufferBytes)})
	}
	return st
}

func (st *bsdStack) reset() {
	for _, att := range st.atts {
		att.store.reset()
		att.hold.reset()
		att.ready = false
		if att.timeoutArmed {
			att.timeout.Cancel()
			att.timeoutArmed = false
		}
		att.Drops, att.Stored = 0, 0
	}
}

func (st *bsdStack) remnants() (shared []kpkt, perApp [][]kpkt) {
	perApp = make([][]kpkt, len(st.atts))
	for i, att := range st.atts {
		perApp[i] = append(append([]kpkt(nil), att.hold.pkts...), att.store.pkts...)
	}
	return nil, perApp
}

// bsdAccept records one attachment's decision for irqDone.
type bsdAccept struct {
	att    *batt
	caplen int
	rotate bool // swap buffers before storing
	drop   bool // both buffer halves full: reject without copying
	reject bool // filter rejected the packet for this attachment
}

// irqCost prices the in-interrupt work: mbuf setup, one filter run per
// attachment, and the copy of each accepted packet into its STORE buffer —
// FreeBSD's extra copy compared to Linux (§2.2.2).
//
// Crucially, catchpacket() checks buffer space *before* copying: when both
// halves are full the packet is dropped for the price of the filter run
// alone. Under overload this keeps the interrupt handler cheap and leaves
// the CPU to the (overloaded) application — the structural reason FreeBSD
// degrades more gracefully than Linux under per-packet load (§6.3.4).
// The decision is made here because interrupt tasks execute strictly in
// order; an application read between decision and execution can only free
// space, making the decision conservative.
func (st *bsdStack) irqCost(data []byte) (float64, float64, any) {
	c := &st.sys.Costs
	fixed := c.MbufNS
	var mem float64
	var accepts []bsdAccept
	for _, att := range st.atts {
		caplen, fcost := st.sys.runFilter(data)
		fixed += fcost
		if caplen == 0 {
			accepts = append(accepts, bsdAccept{att: att, reject: true})
			continue
		}
		acc := bsdAccept{att: att, caplen: caplen}
		sz := align4(caplen + c.BpfHdrBytes)
		if att.store.bytes+sz > st.sys.BufferBytes {
			// "The buffers are switched if the STORE buffer is full and a
			// packet is waiting" — possible only while HOLD is free.
			if !att.ready && att.hold.bytes == 0 {
				acc.rotate = true
			} else {
				acc.drop = true
			}
		}
		if !acc.drop && sz > st.sys.BufferBytes {
			acc.drop = true // single packet larger than a buffer half
		}
		if acc.drop {
			fixed += 50 // bump the drop counter, free the mbuf reference
		} else {
			fixed += c.BpfStoreNS
			mem += float64(caplen + c.BpfHdrBytes)
		}
		accepts = append(accepts, acc)
	}
	return fixed, mem, accepts
}

func (st *bsdStack) irqDone(data []byte, aux any) {
	accepts, _ := aux.([]bsdAccept)
	for _, acc := range accepts {
		att := acc.att
		if acc.reject {
			st.sys.recordDrop(CauseFilter, len(data))
			continue
		}
		if acc.drop {
			att.Drops++
			st.sys.recordDrop(CauseBPFBuf, acc.caplen)
			att.gauge.overflow()
			continue
		}
		if acc.rotate {
			st.rotate(att)
		}
		sz := align4(acc.caplen + st.sys.Costs.BpfHdrBytes)
		if att.store.bytes+sz > st.sys.BufferBytes {
			att.Drops++ // defensive: decision invalidated concurrently
			st.sys.recordDrop(CauseBPFBuf, acc.caplen)
			att.gauge.overflow()
			continue
		}
		att.store.pkts = append(att.store.pkts, kpkt{data: data, caplen: acc.caplen})
		att.store.bytes += sz
		att.gauge.observe(att.store.bytes)
		att.Stored++
	}
}

// rotate swaps STORE into HOLD and wakes a reader blocked in read().
func (st *bsdStack) rotate(att *batt) {
	att.hold, att.store = att.store, att.hold
	if n := len(att.store.pkts); n > 0 {
		// A rotate decided in irqCost while the HOLD was empty can execute
		// after the reader has rotated on read and parked on backpressure:
		// the buffers swap a second time and the just-filled HOLD lands in
		// STORE position, where the reset below discards it. The discard is
		// part of the modeled double-buffer behaviour; book the packets as
		// buffer drops so conservation holds.
		var bytes uint64
		for _, p := range att.store.pkts {
			bytes += uint64(p.caplen)
		}
		att.Drops += uint64(n)
		st.sys.ledger.RecordN(CauseBPFBuf, n, bytes, st.sys.Sim.Now()-st.sys.runStart)
	}
	att.store.reset()
	att.ready = true
	if att.app.state == stWaitingRead {
		if att.timeoutArmed {
			att.timeout.Cancel()
			att.timeoutArmed = false
		}
		att.app.state = stIdle
		st.appStart(att.app)
	}
}

// appStart performs the application's next read() on /dev/bpf: return the
// HOLD buffer if ready, else rotate a non-empty STORE ("if the HOLD buffer
// is empty and the application performs a read"), else block.
func (st *bsdStack) appStart(a *App) {
	if a.state == stRunning || a.state == stBlockedDisk || a.state == stBlockedPipe ||
		a.state == stBlockedWorkers || a.state == stWaitingRead {
		return
	}
	att := st.atts[a.idx]
	if !att.ready && att.store.bytes > 0 {
		att.hold, att.store = att.store, att.hold
		att.store.reset()
		att.ready = true
	}
	if !att.ready {
		a.state = stWaitingRead
		st.armTimeout(att)
		return
	}
	if a.blockedOnBackpressure() {
		return
	}
	st.consumeHold(a, att)
}

// armTimeout models the BPF read timeout: a blocked reader with data only
// in STORE gets it after ReadTimeoutNS even if the buffer never fills.
func (st *bsdStack) armTimeout(att *batt) {
	if st.sys.Costs.ReadTimeoutNS <= 0 || att.timeoutArmed {
		return
	}
	att.timeoutArmed = true
	att.timeout = st.sys.Sim.After(sim.Time(st.sys.Costs.ReadTimeoutNS), func() {
		att.timeoutArmed = false
		if att.app.state != stWaitingRead {
			return
		}
		if att.store.bytes > 0 || att.ready {
			att.app.state = stIdle
			st.appStart(att.app)
			return
		}
		if !st.sys.genDone {
			st.armTimeout(att) // keep the blocking read's timer running
			return
		}
		att.app.state = stIdle // no more data will ever arrive
	})
}

// consumeHold reads the whole HOLD buffer in one syscall — FreeBSD's bulk
// copy to user space — then processes every packet in the chunk.
func (st *bsdStack) consumeHold(a *App, att *batt) {
	c := &st.sys.Costs
	chunk := att.hold.pkts
	chunkBytes := att.hold.bytes
	att.hold = bpfBuf{pkts: make([]kpkt, 0, cap(chunk))}
	att.ready = false
	a.state = stRunning

	// The bulk copy pays the cache penalty once the chunk exceeds L2: the
	// mechanism behind the thesis's single-CPU degradation with large
	// double buffers (Figure 6.4a). The penalty is folded into equivalent
	// bytes because a task has a single per-byte rate. The memory-mapped
	// variant (§7.2 future work) reads the buffer in place: no copy at all.
	copyBytes := float64(chunkBytes)
	if st.sys.MmapPatch {
		copyBytes = 0
	} else if chunkBytes > st.sys.Arch.CacheBytes {
		copyBytes *= st.sys.Arch.CachePenalty
	}
	fixed := st.sys.ufixed(c.ReadSyscallNS)
	mem := copyBytes
	locality := c.BulkLocalityFactor
	if st.sys.MmapPatch {
		// Without the copy the chunk is not pre-warmed.
		locality = 1.0
	}
	// The controller watches the STORE half filling behind the read: by
	// the time the HOLD is consumed, store occupancy is the freshest
	// congestion signal this attachment has.
	occ := a.occupancy(float64(att.store.bytes) / float64(st.sys.BufferBytes))
	adm := a.admitBatch(chunk, occ)
	fixed += adm.policyNS
	loadFixed, loadMem, finish := a.batchLoad(adm.caplens, locality)
	fixed += loadFixed
	mem += loadMem
	n := len(chunk)
	a.inflightPkts = n
	for _, p := range chunk {
		a.inflightBytes += uint64(p.caplen)
	}
	est := fixed + mem*st.sys.umemNs()
	a.submitWork(&sim.Task{
		Name:         "bpf-read",
		Prio:         sim.PrioUser,
		FixedNS:      fixed,
		MemBytes:     mem,
		MemNsPerByte: st.sys.umemNs(),
		OnDone: func() {
			a.finishRead(adm)
			finish()
			a.state = stIdle
			st.appStart(a)
		},
	}, est)
}

func (st *bsdStack) pending() bool {
	for _, att := range st.atts {
		if att.store.bytes > 0 || att.ready {
			return true
		}
	}
	return false
}

func (st *bsdStack) dropStats() ([]uint64, uint64) {
	per := make([]uint64, len(st.atts))
	for i, att := range st.atts {
		per[i] = att.Drops
	}
	return per, 0
}

func align4(n int) int { return (n + 3) &^ 3 }
