package capture

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/flows"
)

// PolicyKind selects a sampling / load-shedding policy for the capturing
// applications — the deliberate counterpart of the arbitrary drops the
// thesis measures. Under overload a policy sheds packets *after* the OS
// hand-off (the read still pays the kernel and syscall cost) but before
// the per-packet analysis load, trading completeness for bounded,
// predictable accuracy (Braun et al., "Adaptive Load-Aware Sampling for
// Network Monitoring on Multicore Commodity Hardware").
type PolicyKind int

const (
	// PolicyNone: process every packet (the thesis's behaviour).
	PolicyNone PolicyKind = iota
	// PolicyUniform: keep exactly one packet in every N, counted per
	// application — the classic systematic count-based sampler.
	PolicyUniform
	// PolicyFlow: keep whole flows. The canonical 5-tuple is hashed
	// (internal/flows) and a flow is kept when its hash falls into the
	// kept 1/N slice of the hash space, so every packet of a kept flow is
	// processed and every packet of a shed flow is declined —
	// connection-level consumers (§1.1: "if only few packets per
	// connection are required, it is exceptionally bad if exactly these
	// packets are lost") keep complete flows instead of packet fragments.
	PolicyFlow
	// PolicyAdaptive: closed-loop feedback control. Each read batch
	// observes the occupancy of the app's kernel buffer (Linux rcvbuf /
	// FreeBSD BPF store half) and of the analysis worker queue, and a
	// proportional controller steers the keep rate toward the Target
	// occupancy: an idle system converges to keeping everything, an
	// overloaded one backs off until the queues stop growing.
	PolicyAdaptive
)

// String returns the policy name used in flags, tables and ledger causes.
func (k PolicyKind) String() string {
	switch k {
	case PolicyNone:
		return "none"
	case PolicyUniform:
		return "uniform"
	case PolicyFlow:
		return "flow"
	case PolicyAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// Adaptive-controller defaults (see PolicySpec).
const (
	defaultAdaptiveTarget = 0.5
	defaultAdaptiveGain   = 0.25
	defaultAdaptiveFloor  = 0.02
)

// PolicySpec configures one sampling policy. The zero value means "no
// policy" and leaves every existing output byte-identical.
type PolicySpec struct {
	Kind PolicyKind
	// N is the sampling modulus of the uniform and flow policies: keep
	// 1 in N (N >= 1; 1 keeps everything).
	N int
	// Target is the adaptive controller's occupancy setpoint in [0,1)
	// (default 0.5): the controller sheds harder while the observed queue
	// occupancy exceeds it and recovers toward full capture below it.
	Target float64
	// Gain is the proportional gain of the adaptive controller per read
	// batch (default 0.25).
	Gain float64
	// Floor is the adaptive controller's minimum keep rate (default 0.02):
	// even a saturated application keeps a trickle, so accuracy degrades
	// gracefully instead of hitting zero.
	Floor float64
}

// Enabled reports whether the spec selects an active policy.
func (p PolicySpec) Enabled() bool { return p.Kind != PolicyNone }

// Cause returns the ledger cause shed packets of this policy are booked
// under.
func (p PolicySpec) Cause() Cause {
	switch p.Kind {
	case PolicyUniform:
		return CauseShedUniform
	case PolicyFlow:
		return CauseShedFlow
	case PolicyAdaptive:
		return CauseShedAdaptive
	default:
		panic("capture: Cause() on disabled policy")
	}
}

// String renders the spec in the form ParsePolicy accepts.
func (p PolicySpec) String() string {
	switch p.Kind {
	case PolicyNone:
		return "none"
	case PolicyUniform, PolicyFlow:
		return fmt.Sprintf("%s:%d", p.Kind, p.N)
	case PolicyAdaptive:
		if p.Target > 0 && p.Target != defaultAdaptiveTarget {
			return fmt.Sprintf("adaptive:%g", p.Target)
		}
		return "adaptive"
	default:
		return p.Kind.String()
	}
}

// ParsePolicy parses a policy spec string:
//
//	""            no policy (byte-identical to the unpoliced system)
//	"none"        no policy
//	"uniform:N"   keep 1 in N packets (N >= 1)
//	"flow:N"      keep the flows hashing into 1/N of the hash space
//	"adaptive"    queue-depth feedback control with the default setpoint
//	"adaptive:T"  feedback control with occupancy setpoint T in (0,1)
func ParsePolicy(s string) (PolicySpec, error) {
	s = strings.TrimSpace(s)
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	switch name {
	case "", "none":
		if arg != "" {
			return PolicySpec{}, fmt.Errorf("capture: policy %q takes no argument", name)
		}
		return PolicySpec{}, nil
	case "uniform", "flow":
		kind := PolicyUniform
		if name == "flow" {
			kind = PolicyFlow
		}
		if arg == "" {
			return PolicySpec{}, fmt.Errorf("capture: policy %q needs a modulus, e.g. %q", name, name+":4")
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			return PolicySpec{}, fmt.Errorf("capture: bad %s modulus %q (want integer >= 1)", name, arg)
		}
		return PolicySpec{Kind: kind, N: n}, nil
	case "adaptive":
		spec := PolicySpec{Kind: PolicyAdaptive}
		if arg != "" {
			t, err := strconv.ParseFloat(arg, 64)
			// The positive-range form, not its negation: NaN parses fine and
			// compares false against every bound, so "adaptive:nan" must fail
			// the t>0 && t<1 check rather than sneak past t<=0 || t>=1.
			if err != nil || !(t > 0 && t < 1) {
				return PolicySpec{}, fmt.Errorf("capture: bad adaptive setpoint %q (want 0 < T < 1)", arg)
			}
			spec.Target = t
		}
		return spec, nil
	}
	return PolicySpec{}, fmt.Errorf("capture: unknown policy %q (want none, uniform:N, flow:N, adaptive[:T])", s)
}

// newSampler builds the per-application sampler state for the spec, nil
// when no policy is enabled.
func (p PolicySpec) newSampler() policySampler {
	switch p.Kind {
	case PolicyNone:
		return nil
	case PolicyUniform:
		n := p.N
		if n < 1 {
			n = 1
		}
		return &uniformSampler{n: uint64(n)}
	case PolicyFlow:
		n := p.N
		if n < 1 {
			n = 1
		}
		return &flowSampler{n: uint64(n)}
	case PolicyAdaptive:
		s := &adaptiveSampler{
			target: p.Target,
			gain:   p.Gain,
			floor:  p.Floor,
		}
		if s.target <= 0 || s.target >= 1 {
			s.target = defaultAdaptiveTarget
		}
		if s.gain <= 0 {
			s.gain = defaultAdaptiveGain
		}
		if s.floor <= 0 || s.floor > 1 {
			s.floor = defaultAdaptiveFloor
		}
		s.reset()
		return s
	default:
		panic(fmt.Sprintf("capture: unknown policy kind %d", int(p.Kind)))
	}
}

// policySampler is the per-application decision state of one policy. All
// state is private to one App inside one simulator, so no locking; every
// decision is a pure function of the spec and the packets seen so far,
// which keeps runs deterministic and replayable.
type policySampler interface {
	// observe feeds the controller the queue occupancy in [0,1] at the
	// start of a read batch (before any admit decision of the batch).
	observe(occ float64)
	// admit decides whether the application processes this packet.
	admit(frame []byte) bool
	// reset clears the state for System reuse.
	reset()
}

// uniformSampler keeps the first of every n consecutive packets.
type uniformSampler struct {
	n    uint64
	seen uint64
}

func (u *uniformSampler) observe(float64) {}

func (u *uniformSampler) admit([]byte) bool {
	keep := u.seen%u.n == 0
	u.seen++
	return keep
}

func (u *uniformSampler) reset() { u.seen = 0 }

// flowSampler keeps whole flows: a flow is kept iff its canonical 5-tuple
// hash falls into the kept 1/n slice of the hash space. Non-IP frames
// carry no flow identity and are always kept (they are rare in the
// generated trains and shedding them would bias the non-flow traffic
// class to zero).
type flowSampler struct {
	n uint64
}

func (f *flowSampler) observe(float64) {}

func (f *flowSampler) admit(frame []byte) bool {
	k, ok := flows.KeyOf(frame)
	if !ok {
		return true
	}
	return k.Hash()%f.n == 0
}

func (f *flowSampler) reset() {}

// adaptiveSampler is a proportional controller over queue occupancy with a
// credit accumulator turning the continuous keep rate into per-packet
// decisions (deterministic error-diffusion, no randomness): credit
// accumulates keepRate per packet and a packet is admitted whenever a
// whole credit is available.
type adaptiveSampler struct {
	target float64
	gain   float64
	floor  float64

	keep   float64
	credit float64
}

func (a *adaptiveSampler) observe(occ float64) {
	if occ < 0 {
		occ = 0
	} else if occ > 1 {
		occ = 1
	}
	a.keep -= a.gain * (occ - a.target)
	if a.keep > 1 {
		a.keep = 1
	} else if a.keep < a.floor {
		a.keep = a.floor
	}
}

func (a *adaptiveSampler) admit([]byte) bool {
	a.credit += a.keep
	if a.credit >= 1 {
		a.credit--
		return true
	}
	return false
}

func (a *adaptiveSampler) reset() {
	a.keep = 1
	a.credit = 0
}

// FairnessIndex returns Jain's fairness index (Σx)² / (n·Σx²) over the
// per-application capture counts: 1.0 when every application captured the
// same amount, approaching 1/n when one application starved the rest —
// the quantity behind the thesis's finding that Linux collapses unfairly
// with ≥4 applications. The all-zero column (every application starved)
// is defined as 1.0: zero is shared perfectly equally, and the 0/0 form
// must not surface as NaN in tables or JSON.
func FairnessIndex(captured []uint64) float64 {
	if len(captured) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, c := range captured {
		x := float64(c)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(captured)) * sumSq)
}

// Fairness returns Jain's fairness index over the run's per-application
// capture counts.
func (s Stats) Fairness() float64 { return FairnessIndex(s.AppCaptured) }
