package capture

import "repro/internal/sim"

// NIC models the Intel 82544EI receive path: a DMA descriptor ring of
// RingSlots packets and an interrupt per packet, with natural coalescing —
// while the handler is busy, further arrivals only refill the ring, and the
// handler keeps draining without a fresh interrupt (this is also how
// receive livelock manifests: under overload the handler re-arms itself
// forever and starves everything below hardirq priority, §2.2.1).
// Optional interrupt moderation delays the first interrupt to batch
// arrivals, at the price of timestamp accuracy.
type NIC struct {
	sys *System

	ring      []kpkt
	irqActive bool
	modWait   bool  // first interrupt delayed by the moderation window
	inflight  *kpkt // packet popped from the ring, hardirq task running
	gauge     *Gauge

	Drops     uint64 // ring overflows
	Delivered uint64 // packets handed to the stack

	burstStamp sim.Time // timestamp shared by the current handler burst
	lastStamp  sim.Time
}

func (n *NIC) reset() {
	n.ring = n.ring[:0]
	n.irqActive, n.modWait, n.inflight = false, false, nil
	n.Drops, n.Delivered = 0, 0
	n.burstStamp, n.lastStamp = 0, 0
}

// Arrive is called at the simulated instant the frame has fully arrived.
func (n *NIC) Arrive(data []byte) {
	if len(n.ring) >= n.sys.Costs.RingSlots {
		n.Drops++
		// Attribute the overflow: a ring that filled while the card was
		// still delaying the first interrupt of a moderation window is the
		// moderation trade-off at work, not handler overload.
		cause := CauseNICRing
		if n.modWait {
			cause = CauseModeration
		}
		n.sys.recordDrop(cause, len(data))
		n.gauge.overflow()
		return
	}
	n.ring = append(n.ring, kpkt{data: data, arrival: n.sys.Sim.Now()})
	n.gauge.observe(len(n.ring))
	if !n.irqActive {
		n.irqActive = true
		if d := n.sys.Costs.ModerationDelayNS; d > 0 {
			n.modWait = true
			n.sys.Sim.After(sim.Time(d), func() {
				n.modWait = false
				n.burstStamp = n.sys.Sim.Now()
				n.serviceNext(true)
			})
		} else {
			n.burstStamp = n.sys.Sim.Now()
			n.serviceNext(true)
		}
	}
}

// serviceNext submits the hardirq task for the next ring entry. The task
// cost is the driver per-packet cost plus whatever interrupt-context work
// the OS stack performs for this packet (FreeBSD: filtering and buffer
// copies; Linux: skb allocation and backlog enqueue).
func (n *NIC) serviceNext(first bool) {
	p := n.ring[0]
	copy(n.ring, n.ring[1:])
	n.ring = n.ring[:len(n.ring)-1]
	n.inflight = &p

	fixed, memBytes, aux := n.sys.stack.irqCost(p.data)
	fixed += n.sys.Costs.DriverRxNS
	if first {
		fixed += n.sys.Costs.IRQEntryNS
	}
	n.sys.cpu0().Submit(&sim.Task{
		Name:         "rx-irq",
		Prio:         sim.PrioHardIRQ,
		FixedNS:      n.sys.kfixed(fixed),
		MemBytes:     memBytes,
		MemNsPerByte: n.sys.kmemNs(),
		OnDone: func() {
			n.Delivered++
			n.stamp(p)
			n.inflight = nil // custody passes to the stack
			n.sys.stack.irqDone(p.data, aux)
			if len(n.ring) > 0 {
				n.serviceNext(false)
			} else {
				n.irqActive = false
			}
		},
	})
}

// stamp records the packet's kernel timestamp ("usually performed by the
// receiving interrupt", §2.2.1): every packet drained by one handler burst
// carries the burst's entry time, so batching — from moderation or from
// overload coalescing — produces exactly the artifact the thesis warns
// about: "the timestamping ... assigns the same timestamp to multiple
// packets" and the inter-packet gaps are lost.
func (n *NIC) stamp(p kpkt) {
	ts := n.burstStamp
	err := ts - p.arrival
	if err < 0 {
		err = -err // arrived while the burst was already draining
	}
	n.sys.tsStamped++
	n.sys.tsErrSum += err
	if err > n.sys.tsErrMax {
		n.sys.tsErrMax = err
	}
	if ts == n.lastStamp {
		n.sys.tsTies++
	}
	n.lastStamp = ts
}
