package capture

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// CapturedTotal sums the captured packets of every application.
func (s Stats) CapturedTotal() uint64 {
	var n uint64
	for _, c := range s.AppCaptured {
		n += c
	}
	return n
}

// ShedTotal sums the packets every application's sampling policy
// deliberately declined (zero without a policy).
func (s Stats) ShedTotal() uint64 {
	var n uint64
	for _, c := range s.AppShed {
		n += c
	}
	return n
}

// CheckConservation verifies that every offered packet is accounted for:
// per application, Generated == Captured + shared drops (before the
// fan-out, each costing every application the packet) + per-app drops.
// Summed over the napps applications:
//
//	napps × Generated == Σ Captured + perApp drops + napps × shared drops
//
// It also cross-checks the ledger against the legacy aggregate counters
// (NICDrops, QueueDrops, AppDrops). A nil return means the books balance.
func (s Stats) CheckConservation() error {
	napps := uint64(len(s.AppCaptured))
	if napps == 0 {
		return nil
	}
	lhs := napps * s.Generated
	rhs := s.CapturedTotal() + s.Ledger.PerAppPackets() + napps*s.Ledger.SharedPackets()
	if lhs != rhs {
		return fmt.Errorf("capture: conservation violated: %d apps × %d generated = %d, "+
			"but captured %d + per-app drops %d + %d × shared drops %d = %d",
			napps, s.Generated, lhs, s.CapturedTotal(), s.Ledger.PerAppPackets(),
			napps, s.Ledger.SharedPackets(), rhs)
	}
	nic := s.Ledger.Drops[CauseNICRing].Packets + s.Ledger.Drops[CauseModeration].Packets +
		s.Ledger.Drops[CauseRSSRing].Packets + s.Ledger.Drops[CausePollBudget].Packets +
		s.Ledger.Drops[CausePCIe].Packets
	if nic != s.NICDrops {
		return fmt.Errorf("capture: ledger NIC drops %d != NICDrops %d", nic, s.NICDrops)
	}
	if b := s.Ledger.Drops[CauseBacklog].Packets; b != s.QueueDrops {
		return fmt.Errorf("capture: ledger backlog drops %d != QueueDrops %d", b, s.QueueDrops)
	}
	var appDrops uint64
	for _, d := range s.AppDrops {
		appDrops += d
	}
	buf := s.Ledger.Drops[CauseRcvbuf].Packets + s.Ledger.Drops[CauseBPFBuf].Packets
	if buf != appDrops {
		return fmt.Errorf("capture: ledger buffer drops %d != Σ AppDrops %d", buf, appDrops)
	}
	return nil
}

// Explain renders the run's loss and CPU accounting as the textual
// breakdown the thesis produces by hand from kernprof/cpusage output:
// where the packets went, which buffers ran hot, and what each CPU spent
// its time on. The output is deterministic for a deterministic run.
func (s Stats) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "generated %d pkts; captured %d (%.2f%%); CPU %.1f%% of %d CPU(s) over %.3f s\n",
		s.Generated, s.CapturedTotal(), s.CaptureRate(), s.CPUUsage(), s.CPUCount,
		float64(s.WallTime)/1e9)
	if s.Truncated {
		b.WriteString("TRUNCATED: the run hit the simulation safety cap; in-flight packets are booked as 'abandoned'\n")
	}

	pkts, bytes := s.Ledger.Total()
	if pkts == 0 {
		b.WriteString("drops: none\n")
	} else {
		fmt.Fprintf(&b, "drops by cause (%d pkts, %d bytes total):\n", pkts, bytes)
		fmt.Fprintf(&b, "  %-12s %10s %12s %12s %12s\n", "cause", "packets", "bytes", "first-ms", "last-ms")
		for _, c := range CausesByName() {
			d := s.Ledger.Drops[c]
			if d.Packets == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-12s %10d %12d %12.3f %12.3f\n",
				c.String(), d.Packets, d.Bytes,
				float64(d.First)/1e6, float64(d.Last)/1e6)
		}
		if shed := s.Ledger.ShedPackets(); shed > 0 {
			fmt.Fprintf(&b, "  of which %d pkts were shed deliberately by the %s policy (shed != lost)\n",
				shed, s.PolicyName)
		}
	}

	if len(s.Gauges) > 0 {
		b.WriteString("buffers (high-water / capacity, overflow episodes):\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-12s %10d / %-10d %4d\n", g.Name, g.HighWater, g.Capacity, g.Episodes)
		}
	}

	if len(s.BusyByCPU) > 0 && s.WallTime > 0 {
		b.WriteString("cpu busy over the generation window (% of wall, by class):\n")
		for i, by := range s.BusyByCPU {
			fmt.Fprintf(&b, "  cpu%d:", i)
			for p := sim.Prio(0); p < sim.NumPrio; p++ {
				fmt.Fprintf(&b, " %s %.1f", p, float64(by[p])/float64(s.WallTime)*100)
			}
			b.WriteByte('\n')
		}
	}

	if err := s.CheckConservation(); err != nil {
		fmt.Fprintf(&b, "conservation: VIOLATED: %v\n", err)
	} else {
		napps := len(s.AppCaptured)
		fmt.Fprintf(&b, "conservation: ok (%d app(s): %d×%d == %d captured + %d per-app + %d×%d shared drops)\n",
			napps, napps, s.Generated, s.CapturedTotal(),
			s.Ledger.PerAppPackets(), napps, s.Ledger.SharedPackets())
	}
	return b.String()
}
