package capture

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/dist"
	"repro/internal/filter"
	"repro/internal/pktgen"
	"repro/internal/trace"
)

// mwn is the measurement distribution, built once for all tests.
var mwn = func() *dist.Distribution {
	d, err := dist.Build(trace.MWNCounts(1_000_000), dist.DefaultParams())
	if err != nil {
		panic(err)
	}
	return d
}()

// newGen builds a generator with the realistic size distribution.
func newGen(packets int, rateMbit float64, seed uint64) *pktgen.Generator {
	g := pktgen.New(seed)
	g.Config.Count = packets
	g.Config.TargetRate = rateMbit * 1e6
	g.LoadDistribution(mwn)
	return g
}

// scaled shrinks the time constants and buffers of a config for short test
// runs (mirrors core.Prepare's time compression).
func scaled(cfg Config, packets int) Config {
	s := float64(packets) / 1_000_000
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.BufferBytes == 0 {
		if cfg.OS == Linux {
			cfg.BufferBytes = DefaultLinuxRcvbuf
		} else {
			cfg.BufferBytes = DefaultBSDBuffer
		}
	}
	scaleB := func(b int) int {
		v := int(float64(b) * s)
		if v < 4096 {
			v = 4096
		}
		return v
	}
	cfg.BufferBytes = scaleB(cfg.BufferBytes)
	cfg.Costs.HousekeepNS *= s
	cfg.Costs.HousekeepPeriodNS *= s
	cfg.Costs.TimesliceNS *= s
	cfg.Costs.ReadTimeoutNS *= s
	cfg.Costs.PipeBufBytes = scaleB(cfg.Costs.PipeBufBytes)
	cfg.Costs.WorkerQueueBytes = scaleB(cfg.Costs.WorkerQueueBytes)
	cfg.Costs.NICFifoBytes = scaleB(cfg.Costs.NICFifoBytes)
	if cfg.DiskQueueBytes == 0 {
		cfg.DiskQueueBytes = scaleB(32 << 20)
	}
	return cfg
}

func moorhenCfg() Config {
	return Config{Name: "moorhen", Arch: arch.Opteron244(), OS: FreeBSD, BufferBytes: BigBSDBuffer}
}
func swanCfg() Config {
	return Config{Name: "swan", Arch: arch.Opteron244(), OS: Linux, BufferBytes: BigLinuxRcvbuf}
}

func run(t *testing.T, cfg Config, packets int, rate float64) Stats {
	t.Helper()
	sys := NewSystem(scaled(cfg, packets))
	return sys.Run(newGen(packets, rate, 1))
}

func TestMoorhenCapturesEverything(t *testing.T) {
	// "moorhen ... loses nearly no packets in single processor mode and no
	// packet at all in dual processor mode."
	for _, ncpu := range []int{1, 2} {
		cfg := moorhenCfg()
		cfg.NumCPUs = ncpu
		st := run(t, cfg, 10000, 950)
		if r := st.CaptureRate(); r < 98.5 {
			t.Errorf("ncpu=%d: capture rate %.2f%%, want ≈100%%", ncpu, r)
		}
	}
}

func TestLinuxKeepsUpAtModerateRates(t *testing.T) {
	cfg := swanCfg()
	cfg.NumCPUs = 2
	st := run(t, cfg, 10000, 400)
	if r := st.CaptureRate(); r < 99.0 {
		t.Errorf("capture rate %.2f%% at 400 Mbit/s, want ≈100%%", r)
	}
}

func TestPacketConservationLinux(t *testing.T) {
	cfg := swanCfg()
	cfg.NumCPUs = 1
	sys := NewSystem(scaled(cfg, 20000))
	st := sys.Run(newGen(20000, 950, 3))
	ls := sys.stack.(*linuxStack)
	sk := ls.socks[0]
	if got := st.NICDrops + sys.NIC.Delivered; got != st.Generated {
		t.Fatalf("NIC conservation: drops %d + delivered %d != generated %d",
			st.NICDrops, sys.NIC.Delivered, st.Generated)
	}
	if got := st.QueueDrops + sk.Drops + sk.Enqueued; got != sys.NIC.Delivered {
		t.Fatalf("stack conservation: %d backlog + %d sock + %d enq != %d delivered",
			st.QueueDrops, sk.Drops, sk.Enqueued, sys.NIC.Delivered)
	}
	if sk.Enqueued != st.AppCaptured[0] {
		t.Fatalf("drain incomplete: enqueued %d, captured %d", sk.Enqueued, st.AppCaptured[0])
	}
	if len(sk.queue) != 0 || sk.bytes != 0 {
		t.Fatalf("socket not drained: %d packets, %d bytes", len(sk.queue), sk.bytes)
	}
}

func TestPacketConservationBSD(t *testing.T) {
	cfg := moorhenCfg()
	cfg.NumCPUs = 1
	sys := NewSystem(scaled(cfg, 20000))
	st := sys.Run(newGen(20000, 950, 3))
	bs := sys.stack.(*bsdStack)
	att := bs.atts[0]
	if att.Stored+att.Drops+st.NICDrops != st.Generated {
		t.Fatalf("conservation: stored %d + drops %d + nic %d != generated %d",
			att.Stored, att.Drops, st.NICDrops, st.Generated)
	}
	if att.Stored != st.AppCaptured[0] {
		t.Fatalf("drain incomplete: stored %d, captured %d", att.Stored, st.AppCaptured[0])
	}
	if att.store.bytes != 0 || att.ready {
		t.Fatal("buffers not drained at end of run")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Stats {
		cfg := swanCfg()
		cfg.NumCPUs = 2
		sys := NewSystem(scaled(cfg, 5000))
		return sys.Run(newGen(5000, 800, 77))
	}
	a, b := mk(), mk()
	if a.Generated != b.Generated || a.AppCaptured[0] != b.AppCaptured[0] ||
		a.BusyTime != b.BusyTime || a.WallTime != b.WallTime {
		t.Fatalf("runs with identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestRejectingFilterCapturesNothing(t *testing.T) {
	cfg := moorhenCfg()
	cfg.Filter = filter.MustCompile("tcp", 1515) // generator sends UDP only
	st := run(t, cfg, 3000, 400)
	if st.AppCaptured[0] != 0 {
		t.Fatalf("captured %d packets through a rejecting filter", st.AppCaptured[0])
	}
	if st.BusyTime == 0 {
		t.Fatal("filtering consumed no CPU at all")
	}
}

func TestReferenceFilterAcceptsAllGenerated(t *testing.T) {
	for _, os := range []OS{Linux, FreeBSD} {
		cfg := Config{Name: "t", Arch: arch.Opteron244(), OS: os,
			BufferBytes: BigLinuxRcvbuf,
			Filter:      filter.MustCompile(filter.ReferenceFilterExpr, 1515)}
		st := run(t, cfg, 3000, 300)
		if r := st.CaptureRate(); r < 99.9 {
			t.Errorf("%v: reference filter capture rate %.2f%%, want 100%%", os, r)
		}
	}
}

func TestFilterCostsCPU(t *testing.T) {
	base := run(t, moorhenCfg(), 5000, 500)
	f := moorhenCfg()
	f.Filter = filter.MustCompile(filter.ReferenceFilterExpr, 1515)
	withF := run(t, f, 5000, 500)
	if withF.BusyTime <= base.BusyTime {
		t.Fatalf("filter did not add CPU: %v vs %v", withF.BusyTime, base.BusyTime)
	}
	// "using BPF filters is cheap": under 15% extra CPU.
	if extra := float64(withF.BusyTime)/float64(base.BusyTime) - 1; extra > 0.15 {
		t.Errorf("reference filter added %.0f%% CPU, want cheap (<15%%)", extra*100)
	}
}

func TestOverloadDropsAndLivelock(t *testing.T) {
	// A single CPU with heavy per-packet app load (zlib 9) must shed most
	// packets at high rate, yet the kernel keeps running (livelock-ish:
	// interrupt work continues, the reader starves, buffers overflow).
	cfg := swanCfg()
	cfg.NumCPUs = 1
	cfg.Load.ZlibLevel = 9
	sys := NewSystem(scaled(cfg, 8000))
	st := sys.Run(newGen(8000, 900, 5))
	if r := st.CaptureRate(); r > 40 {
		t.Fatalf("capture rate %.2f%% under zlib-9 overload, want heavy loss", r)
	}
	total := st.NICDrops + st.QueueDrops
	for _, d := range st.AppDrops {
		total += d
	}
	if total == 0 {
		t.Fatal("no drops recorded despite overload")
	}
	if got := st.CaptureRate(); math.IsNaN(got) {
		t.Fatal("NaN capture rate")
	}
}

func TestXeonZlibBeatsOpteron(t *testing.T) {
	// §6.3.4: "each of the Intel systems performs better than the
	// corresponding AMD system" under zlib load.
	run1 := func(a arch.Profile) float64 {
		cfg := Config{Name: "t", Arch: a, OS: FreeBSD, BufferBytes: BigBSDBuffer, NumCPUs: 2}
		cfg.Load.ZlibLevel = 3
		st := run(t, cfg, 10000, 700)
		return st.CaptureRate()
	}
	amd := run1(arch.Opteron244())
	intel := run1(arch.Xeon306())
	if intel < amd {
		t.Fatalf("zlib-3: Intel %.2f%% < AMD %.2f%%, want Intel ahead", intel, amd)
	}
}

func TestMmapPatchImproves(t *testing.T) {
	// §6.3.6: "a rigorous performance improvement can be measured".
	stock := Config{Name: "snipe", Arch: arch.Xeon306(), OS: Linux,
		BufferBytes: BigLinuxRcvbuf, NumCPUs: 1}
	st1 := run(t, stock, 15000, 950)
	patched := stock
	patched.MmapPatch = true
	st2 := run(t, patched, 15000, 950)
	if st2.CaptureRate() < st1.CaptureRate() {
		t.Fatalf("mmap %.2f%% < stock %.2f%%", st2.CaptureRate(), st1.CaptureRate())
	}
	if st2.BusyTime >= st1.BusyTime {
		t.Fatalf("mmap did not reduce CPU: %v vs %v", st2.BusyTime, st1.BusyTime)
	}
}

func TestBSDFairnessAcrossApps(t *testing.T) {
	// §6.3.3 / [Sch04]: FreeBSD shares packets evenly across applications
	// (≈5% spread) even under load.
	cfg := moorhenCfg()
	cfg.NumCPUs = 2
	cfg.NumApps = 4
	st := run(t, cfg, 15000, 800)
	worst, avg, best := st.AppRates()
	if avg < 30 {
		t.Fatalf("average rate %.2f%% too low to judge fairness", avg)
	}
	if best-worst > 10 {
		t.Fatalf("FreeBSD spread %.2f%%..%.2f%%, want tight", worst, best)
	}
}

func TestLinuxUnfairnessAcrossApps(t *testing.T) {
	// Under overload Linux distributes very unevenly and collapses.
	cfg := swanCfg()
	cfg.NumCPUs = 2
	cfg.NumApps = 8
	st := run(t, cfg, 15000, 950)
	worst, avg, best := st.AppRates()
	bsd := moorhenCfg()
	bsd.NumCPUs = 2
	bsd.NumApps = 8
	stB := run(t, bsd, 15000, 950)
	_, avgB, _ := stB.AppRates()
	if avg >= avgB {
		t.Fatalf("8 apps: Linux avg %.2f%% >= FreeBSD avg %.2f%%, want Linux collapse", avg, avgB)
	}
	if best-worst < 5 {
		t.Logf("note: Linux spread %.2f..%.2f unexpectedly tight", worst, best)
	}
}

func TestHeaderWriteIsCheap(t *testing.T) {
	// §6.3.5: writing the first 76 bytes of every packet "is cheap".
	base := moorhenCfg()
	base.NumCPUs = 2
	st1 := run(t, base, 10000, 950)
	wr := base
	wr.Load.WriteSnapLen = 76
	st2 := run(t, wr, 10000, 950)
	if st1.CaptureRate()-st2.CaptureRate() > 2.0 {
		t.Fatalf("header writing cost %.2f%% capture (from %.2f%% to %.2f%%)",
			st1.CaptureRate()-st2.CaptureRate(), st1.CaptureRate(), st2.CaptureRate())
	}
}

func TestFullWriteExceedsDisk(t *testing.T) {
	// Writing whole packets at ≈119 MB/s exceeds the ~100 MB/s disk: the
	// writer must block and shed load.
	cfg := moorhenCfg()
	cfg.NumCPUs = 2
	cfg.Load.WriteFull = true
	sys := NewSystem(scaled(cfg, 20000))
	st := sys.Run(newGen(20000, 950, 9))
	if r := st.CaptureRate(); r > 97 {
		t.Fatalf("full-packet writing captured %.2f%% at line rate; disk should bottleneck", r)
	}
	if sys.Disk.Written == 0 {
		t.Fatal("nothing reached the disk")
	}
}

func TestPipeGzipUsesBothCPUs(t *testing.T) {
	cfg := moorhenCfg()
	cfg.NumCPUs = 2
	cfg.Load.PipeGzip = 3
	sys := NewSystem(scaled(cfg, 8000))
	st := sys.Run(newGen(8000, 500, 4))
	if st.CaptureRate() < 50 {
		t.Fatalf("pipe-to-gzip capture rate %.2f%%", st.CaptureRate())
	}
	a := sys.apps[0]
	if a.pipe.BytesOut == 0 || a.pipe.BytesOut != a.pipe.BytesIn {
		t.Fatalf("pipe not drained: in %d out %d", a.pipe.BytesIn, a.pipe.BytesOut)
	}
	// The gzip process must have run on the second CPU at least partly.
	if sys.Machine.CPUs[1].BusyTotal() == 0 {
		t.Fatal("second CPU unused despite separate gzip process")
	}
}

func TestHyperthreadingTopology(t *testing.T) {
	cfg := Config{Name: "snipe", Arch: arch.Xeon306(), OS: Linux,
		NumCPUs: 2, Hyperthreading: true, BufferBytes: BigLinuxRcvbuf}
	sys := NewSystem(scaled(cfg, 1000))
	if len(sys.Machine.CPUs) != 4 {
		t.Fatalf("HT machine has %d CPUs, want 4", len(sys.Machine.CPUs))
	}
	if sys.Machine.CPUs[0].Core != sys.Machine.CPUs[1].Core {
		t.Fatal("logical CPUs 0/1 should share core 0")
	}
	// AMD has no HT: requesting it is ignored.
	amd := Config{Name: "swan", Arch: arch.Opteron244(), OS: Linux,
		NumCPUs: 2, Hyperthreading: true}
	sysA := NewSystem(scaled(amd, 1000))
	if len(sysA.Machine.CPUs) != 2 {
		t.Fatalf("Opteron HT machine has %d CPUs, want 2", len(sysA.Machine.CPUs))
	}
}

func TestHyperthreadingNeutral(t *testing.T) {
	// §6.3.7: "neither a noticeable amelioration nor deterioration".
	base := Config{Name: "snipe", Arch: arch.Xeon306(), OS: Linux,
		NumCPUs: 2, BufferBytes: BigLinuxRcvbuf}
	st1 := run(t, base, 10000, 900)
	ht := base
	ht.Hyperthreading = true
	st2 := run(t, ht, 10000, 900)
	if d := math.Abs(st1.CaptureRate() - st2.CaptureRate()); d > 5 {
		t.Fatalf("HT changed capture rate by %.2f%%, want neutral", d)
	}
}

func TestSnaplenLimitsCaplen(t *testing.T) {
	cfg := moorhenCfg()
	cfg.Snaplen = 96
	sys := NewSystem(scaled(cfg, 2000))
	st := sys.Run(newGen(2000, 300, 2))
	if st.CaptureRate() < 99.9 {
		t.Fatalf("capture rate %.2f%%", st.CaptureRate())
	}
	// Indirect check: with a 96-byte snaplen the BSD buffers hold far more
	// packets per rotation, so the same byte budget yields fewer drops
	// than it would otherwise. Here we just assert caplen plumbed through.
	bs := sys.stack.(*bsdStack)
	if bs.atts[0].Stored == 0 {
		t.Fatal("nothing stored")
	}
}

func TestBonnie(t *testing.T) {
	r := Bonnie(Config{Name: "x", Arch: arch.Opteron244()})
	if r.WriteMBps != arch.Opteron244().DiskWriteMBps {
		t.Fatalf("bonnie rate = %v", r.WriteMBps)
	}
	if r.CPUPct <= 0 || r.CPUPct >= 100 {
		t.Fatalf("bonnie cpu = %v", r.CPUPct)
	}
	// None of the systems writes at the 125 MB/s a loaded GigE delivers.
	for _, p := range []arch.Profile{arch.Opteron244(), arch.Xeon306()} {
		if p.DiskWriteMBps >= 125 {
			t.Errorf("%s writes at %v MB/s ≥ line speed; thesis says none can", p.Name, p.DiskWriteMBps)
		}
	}
}

func TestNICRingOverflow(t *testing.T) {
	// Absurdly slow interrupt path must overflow the 256-slot ring.
	cfg := moorhenCfg()
	cfg.Costs = DefaultCosts()
	cfg.Costs.DriverRxNS = 100_000 // 100µs per packet
	sys := NewSystem(cfg)
	st := sys.Run(newGen(5000, 950, 1))
	if st.NICDrops == 0 {
		t.Fatal("no NIC drops despite a 100µs interrupt path")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Generated: 1000, AppCaptured: []uint64{500, 1000}}
	w, a, b := s.AppRates()
	if w != 50 || b != 100 || a != 75 {
		t.Fatalf("AppRates = %v %v %v", w, a, b)
	}
	if r := s.CaptureRate(); r != 75 {
		t.Fatalf("CaptureRate = %v", r)
	}
	var empty Stats
	if empty.CaptureRate() != 0 || empty.CPUUsage() != 0 {
		t.Fatal("zero stats should yield zeros")
	}
}

func TestWorkerThreadsImproveHeavyAnalysis(t *testing.T) {
	// §7.2 / [DV04]: spreading the analysis over worker threads uses the
	// second CPU and lifts the capture rate under heavy load.
	base := moorhenCfg()
	base.NumCPUs = 2
	base.Load.ZlibLevel = 3
	inline := run(t, base, 12000, 800)
	mt := base
	mt.Load.Workers = 2
	threaded := run(t, mt, 12000, 800)
	if threaded.CaptureRate() <= inline.CaptureRate()+5 {
		t.Fatalf("workers %.2f%% vs inline %.2f%%, want clear improvement",
			threaded.CaptureRate(), inline.CaptureRate())
	}
}

func TestWorkerBackpressureBounds(t *testing.T) {
	// With 1 CPU, workers cannot help; the backpressure bound must keep
	// the system stable (no runaway queues, run terminates, conservation).
	cfg := swanCfg()
	cfg.NumCPUs = 1
	cfg.Load.ZlibLevel = 9
	cfg.Load.Workers = 4
	sys := NewSystem(scaled(cfg, 6000))
	st := sys.Run(newGen(6000, 900, 2))
	if st.Generated != 6000 {
		t.Fatalf("generated %d", st.Generated)
	}
	for _, a := range sys.apps {
		if a.workerOutstanding != 0 {
			t.Fatalf("worker queue not drained: %d bytes", a.workerOutstanding)
		}
	}
}

func TestPFRingBeatsStockAndMmap(t *testing.T) {
	// The ring stack removes the skb/socket machinery on top of mmap's
	// copy saving: stock <= mmap <= ring in capture, ring cheapest in CPU.
	stock := Config{Name: "snipe", Arch: arch.Xeon306(), OS: Linux,
		BufferBytes: BigLinuxRcvbuf, NumCPUs: 1}
	s1 := run(t, stock, 15000, 950)
	mm := stock
	mm.MmapPatch = true
	s2 := run(t, mm, 15000, 950)
	ring := stock
	ring.PFRing = true
	s3 := run(t, ring, 15000, 950)
	if s2.CaptureRate() < s1.CaptureRate() || s3.CaptureRate() < s2.CaptureRate() {
		t.Fatalf("ordering broken: stock %.2f, mmap %.2f, ring %.2f",
			s1.CaptureRate(), s2.CaptureRate(), s3.CaptureRate())
	}
	if s3.BusyTime >= s1.BusyTime {
		t.Fatalf("ring stack did not reduce CPU: %v vs %v", s3.BusyTime, s1.BusyTime)
	}
}

func TestBSDMmapReducesCPU(t *testing.T) {
	// §7.2: a memory-mapped read for FreeBSD "could boost the capturing
	// rates and reduce the CPU load".
	stock := Config{Name: "flamingo", Arch: arch.Xeon306(), OS: FreeBSD,
		BufferBytes: BigBSDBuffer, NumCPUs: 1, KernelCostFactor: 1.9}
	s1 := run(t, stock, 15000, 950)
	mm := stock
	mm.MmapPatch = true
	s2 := run(t, mm, 15000, 950)
	if s2.CaptureRate() < s1.CaptureRate() {
		t.Fatalf("mmap capture %.2f%% < stock %.2f%%", s2.CaptureRate(), s1.CaptureRate())
	}
	if s2.BusyTime >= s1.BusyTime {
		t.Fatalf("mmap did not reduce CPU: %v vs %v", s2.BusyTime, s1.BusyTime)
	}
}

func TestFlowTrackLoadCostsCPU(t *testing.T) {
	base := moorhenCfg()
	base.NumCPUs = 2
	plain := run(t, base, 8000, 700)
	ft := base
	ft.Load.FlowTrack = true
	tracked := run(t, ft, 8000, 700)
	if tracked.BusyTime <= plain.BusyTime {
		t.Fatalf("flow tracking added no CPU: %v vs %v", tracked.BusyTime, plain.BusyTime)
	}
	// It is light bookkeeping, not a heavy load: capture stays intact.
	if tracked.CaptureRate() < plain.CaptureRate()-1 {
		t.Fatalf("flow tracking cost %.2f%% capture", plain.CaptureRate()-tracked.CaptureRate())
	}
}

func TestInterruptModerationTimestamps(t *testing.T) {
	// §2.2.1: moderation batches interrupts; timestamps degrade and ties
	// (identical stamps for consecutive packets) appear.
	base := moorhenCfg()
	base.NumCPUs = 2
	sysA := NewSystem(scaled(base, 10000))
	noMod := sysA.Run(newGen(10000, 700, 3))

	mod := scaled(base, 10000)
	mod.Costs.ModerationDelayNS = 100_000 // 100 µs coalescing
	sysB := NewSystem(mod)
	withMod := sysB.Run(newGen(10000, 700, 3))

	if withMod.TsErrMeanUS() <= noMod.TsErrMeanUS() {
		t.Fatalf("moderation did not increase timestamp error: %.2fµs vs %.2fµs",
			withMod.TsErrMeanUS(), noMod.TsErrMeanUS())
	}
	if withMod.TsErrMeanUS() < 20 {
		t.Fatalf("100µs moderation should cost tens of µs of stamp accuracy, got %.2fµs",
			withMod.TsErrMeanUS())
	}
	if withMod.Stamped == 0 || noMod.Stamped == 0 {
		t.Fatal("no packets stamped")
	}
	// Capture itself must not suffer (moderation helps the interrupt path).
	if withMod.CaptureRate() < noMod.CaptureRate()-1 {
		t.Fatalf("moderation cost capture: %.2f%% vs %.2f%%",
			withMod.CaptureRate(), noMod.CaptureRate())
	}
}
