package capture

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/pktgen"
)

// newModernGen builds a multi-flow train at a multi-gigabit line rate
// (RSS needs flow diversity to spread, and a 2005-style 1250 ns sender
// cannot source 10G+).
func newModernGen(packets int, rateMbit float64, seed uint64) *pktgen.Generator {
	g := newGen(packets, rateMbit, seed)
	g.Config.LineRate = 100e9
	g.Config.PerPacketCostNS = 20
	g.Config.UDPSrcPortCount = 256
	return g
}

// modernCfg mirrors the core-level heron/osprey/kite profiles without
// importing core (which imports this package).
func modernCfg(name string, kind StackKind, napps int) Config {
	cfg := Config{
		Name:    name,
		OS:      Linux,
		Stack:   kind,
		NumCPUs: 8,
		RXRings: 4,
		NumApps: napps,
	}
	if kind == StackPoll {
		cfg.Arch = arch.EpycRome()
	} else {
		cfg.Arch = arch.XeonScalable()
		cfg.BufferBytes = 8 << 20
	}
	return cfg
}

func modernKinds() map[string]StackKind {
	return map[string]StackKind{
		"rss":      StackRSS,
		"pollmode": StackPoll,
		"zerocopy": StackZeroCopy,
	}
}

// TestModernConservation drives every modern stack across app counts and
// load levels, from comfortable to far past saturation, and requires the
// drop ledger to balance exactly in each cell.
func TestModernConservation(t *testing.T) {
	for name, kind := range modernKinds() {
		for _, napps := range []int{1, 4} {
			for _, rateMbit := range []float64{2000, 40000, 100000} {
				sys := NewSystem(scaled(modernCfg(name, kind, napps), 4000))
				st := sys.Run(newModernGen(4000, rateMbit, 1))
				if st.Truncated {
					t.Errorf("%s napps=%d rate=%g: truncated", name, napps, rateMbit)
				}
				if err := st.CheckConservation(); err != nil {
					t.Errorf("%s napps=%d rate=%g: %v", name, napps, rateMbit, err)
				}
				if st.Generated != 4000 {
					t.Errorf("%s napps=%d rate=%g: generated %d", name, napps, rateMbit, st.Generated)
				}
			}
		}
	}
}

// TestModernRunDeterministic runs the same seed + train on two freshly
// built systems; the runs must agree exactly, including the per-ring RSS
// delivery counts (the same property -parallel sweeps rely on).
func TestModernRunDeterministic(t *testing.T) {
	for name, kind := range modernKinds() {
		cfg := scaled(modernCfg(name, kind, 2), 3000)
		sysA := NewSystem(cfg)
		first := sysA.Run(newModernGen(3000, 40000, 7))
		firstRings := sysA.RingDelivered()
		sysB := NewSystem(cfg)
		fresh := sysB.Run(newModernGen(3000, 40000, 7))
		freshRings := sysB.RingDelivered()

		if fresh.CapturedTotal() != first.CapturedTotal() ||
			fresh.NICDrops != first.NICDrops ||
			fresh.Ledger != first.Ledger {
			t.Errorf("%s: fresh run diverged: captured %d/%d nicdrops %d/%d",
				name, fresh.CapturedTotal(), first.CapturedTotal(),
				fresh.NICDrops, first.NICDrops)
		}
		if len(firstRings) == 0 {
			t.Fatalf("%s: no ring delivery counts", name)
		}
		for r := range firstRings {
			if freshRings[r] != firstRings[r] {
				t.Errorf("%s: ring %d delivered %d then %d", name, r, firstRings[r], freshRings[r])
			}
		}
		// RSS must actually spread a 256-flow train beyond one ring.
		spread := 0
		for _, d := range firstRings {
			if d > 0 {
				spread++
			}
		}
		if spread < 2 {
			t.Errorf("%s: %d-ring RSS used only %d ring(s): %v", name, len(firstRings), spread, firstRings)
		}
	}
}

// TestPollModeAlwaysBusy pins the defining poll-mode trade: the PMD cores
// are ~100% busy in softirq context for the whole generation window even
// at a trivially low rate.
func TestPollModeAlwaysBusy(t *testing.T) {
	sys := NewSystem(scaled(modernCfg("osprey", StackPoll, 1), 2000))
	st := sys.Run(newModernGen(2000, 500, 3))
	if err := st.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if st.WallTime <= 0 {
		t.Fatal("no generation window")
	}
	nrings := sys.RXRings
	if nrings != 4 {
		t.Fatalf("RXRings = %d, want 4", nrings)
	}
	for r := 0; r < nrings; r++ {
		frac := float64(st.BusyByCPU[r][1]) / float64(st.WallTime) // PrioSoftIRQ
		if frac < 0.95 {
			t.Errorf("PMD core %d softirq busy %.1f%% of wall, want ~100%%", r, frac*100)
		}
	}
}

// TestModernOverloadCauses checks that each modern bottleneck books drops
// under its own cause: the PCIe/memory ceiling at 100G on a PCIe 3.0 x8
// host, RSS ring overflow when the stack cannot drain, and UMEM fill-ring
// exhaustion when the zero-copy pool is tiny.
func TestModernOverloadCauses(t *testing.T) {
	// heron at 100G: the 63 Gbit/s bus ceiling must drop under pcie-bus.
	st := NewSystem(scaled(modernCfg("heron", StackRSS, 1), 5000)).
		Run(newModernGen(5000, 100000, 1))
	if err := st.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if st.Ledger.Drops[CausePCIe].Packets == 0 {
		t.Errorf("heron at 100G: no pcie-bus drops; ledger: %+v", st.Ledger.Drops)
	}

	// Starved RSS rings: a single slow CPU behind 100G must overflow the
	// rings (rss-ring and/or the budget-deferred variant).
	cfg := scaled(modernCfg("heron", StackRSS, 1), 5000)
	cfg.Arch = arch.Xeon306() // 2005 core, no bus ceiling
	cfg.NumCPUs = 2
	cfg.RXRings = 2
	cfg.Costs.RSSRingSlots = 64
	st = NewSystem(cfg).Run(newModernGen(5000, 100000, 1))
	if err := st.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	ring := st.Ledger.Drops[CauseRSSRing].Packets + st.Ledger.Drops[CausePollBudget].Packets
	if ring == 0 {
		t.Errorf("starved rss rings: no rss-ring/poll-budget drops; ledger: %+v", st.Ledger.Drops)
	}
	if ring+st.Ledger.Drops[CausePCIe].Packets != st.NICDrops {
		t.Errorf("ring drops %d + pcie %d != NICDrops %d", ring, st.Ledger.Drops[CausePCIe].Packets, st.NICDrops)
	}

	// kite with a tiny UMEM: fill-ring exhaustion must book umem-fill as a
	// shared cause.
	cfg = scaled(modernCfg("kite", StackZeroCopy, 2), 5000)
	cfg.Costs.UmemFrames = 32
	st = NewSystem(cfg).Run(newModernGen(5000, 40000, 1))
	if err := st.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if st.Ledger.Drops[CauseUmemFill].Packets == 0 {
		t.Errorf("tiny umem: no umem-fill drops; ledger: %+v", st.Ledger.Drops)
	}
}

// TestModernWithPolicy runs each modern stack under a sampling policy:
// shed packets are deliberate (shed != lost) and the ledger still
// balances.
func TestModernWithPolicy(t *testing.T) {
	for name, kind := range modernKinds() {
		cfg := scaled(modernCfg(name, kind, 2), 3000)
		cfg.Policy = PolicySpec{Kind: PolicyUniform, N: 2}
		st := NewSystem(cfg).Run(newModernGen(3000, 10000, 5))
		if err := st.CheckConservation(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if st.ShedTotal() == 0 {
			t.Errorf("%s: uniform 1-in-2 policy shed nothing", name)
		}
	}
}

// TestModernRingClamp pins the ring-count clamping rules: 0 means one per
// CPU, poll mode keeps one core free for the readers.
func TestModernRingClamp(t *testing.T) {
	cfg := modernCfg("heron", StackRSS, 1)
	cfg.RXRings = 0
	if got := NewSystem(scaled(cfg, 1000)).RXRings; got != 8 {
		t.Errorf("rss rings=0: clamped to %d, want 8 (one per CPU)", got)
	}
	cfg = modernCfg("osprey", StackPoll, 1)
	cfg.RXRings = 99
	if got := NewSystem(scaled(cfg, 1000)).RXRings; got != 7 {
		t.Errorf("poll rings=99: clamped to %d, want 7 (NumCPUs-1)", got)
	}
}
