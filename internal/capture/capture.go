// Package capture models the four packet-capturing systems of the thesis
// as discrete-event simulations: a Gigabit NIC with a receive ring and
// interrupts, the FreeBSD BPF stack (filter + copy into per-application
// double buffers in interrupt context, bulk reads) and the Linux
// PF_PACKET/LSF stack (softirq queue, per-socket receive buffers,
// per-packet copies to user space, optional PACKET_MMAP), capturing
// applications with configurable per-packet load (memcpy, zlib, disk
// writes, pipe-to-gzip), and the measurement bookkeeping.
//
// The models are structural: drops fall out of finite rings, buffers and
// CPU saturation, not from baked-in curves. All cost constants live in
// Costs and arch.Profile and are documented as calibration knobs.
package capture

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bpf"
	"repro/internal/sim"
)

// OS selects the capturing stack.
type OS int

const (
	Linux OS = iota
	FreeBSD
)

func (o OS) String() string {
	if o == Linux {
		return "Linux"
	}
	return "FreeBSD"
}

// StackKind selects the generation of the receive path. The zero value is
// the thesis-era interrupt-driven stack chosen by Config.OS; the modern
// kinds replace the single-queue NIC with an RSS multi-queue NIC
// (nic_rss.go) and one of the post-2005 delivery disciplines (modern.go).
type StackKind int

const (
	// StackLegacy: the 2005 interrupt-per-packet stack (Linux PF_PACKET or
	// FreeBSD BPF, per Config.OS).
	StackLegacy StackKind = iota
	// StackRSS: RSS multi-queue NIC + per-ring NAPI (interrupt + polled
	// softirq budget), per-packet copy to user space.
	StackRSS
	// StackPoll: DPDK-style poll-mode driver — busy-spinning cores, no
	// interrupts, batched ring polls, zero-copy hand-off.
	StackPoll
	// StackZeroCopy: AF_XDP-style zero-copy — IRQ-driven XDP redirect into
	// per-socket rings over a shared UMEM frame pool, batched wakeups.
	StackZeroCopy
)

func (k StackKind) String() string {
	switch k {
	case StackLegacy:
		return "legacy"
	case StackRSS:
		return "rss"
	case StackPoll:
		return "pollmode"
	case StackZeroCopy:
		return "zerocopy"
	default:
		return fmt.Sprintf("stack(%d)", int(k))
	}
}

// Costs are the nanosecond cost constants of the kernel paths, before the
// architecture's FixedCost scaling. They parameterize the structural model;
// the defaults are calibrated so the simulated systems land on the
// thesis's qualitative results (see DESIGN.md §5 and EXPERIMENTS.md).
type Costs struct {
	// Shared NIC/driver path.
	IRQEntryNS float64 // per handler invocation (entry/exit, ack)
	DriverRxNS float64 // per packet: descriptor + buffer management
	RingSlots  int     // RX descriptor ring size (82544: 256 default)
	// ModerationDelayNS enables interrupt moderation: the card delays the
	// first interrupt after a packet arrival by this long, batching
	// whatever else arrives meanwhile into one handler run. §2.2.1: this
	// trades interrupt load against timestamp accuracy ("the timestamps of
	// most packets and along with this the inter-packet gaps are not
	// correct").
	ModerationDelayNS float64

	// Linux stack.
	SkbAllocNS      float64 // alloc_skb + setup in the driver
	BacklogEnqNS    float64 // enqueue pointer to the per-CPU input queue
	BacklogLen      int     // netdev_max_backlog (2.6 default 300)
	SoftirqPerPktNS float64 // NET_RX softirq bookkeeping per packet
	SockEnqNS       float64 // clone ref + queue onto a PF_PACKET socket
	WakeupNS        float64 // waking a blocked reader
	RecvSyscallNS   float64 // recvfrom entry/exit per packet
	MmapPerPktNS    float64 // PACKET_MMAP frame hand-off (no syscall/copy)
	SkbOverhead     int     // accounting overhead per packet in rcvbuf
	SoftirqQuota    int     // packets drained per softirq pass
	TimesliceNS     float64 // O(1) scheduler timeslice a reader may hog
	AppBatch        int     // packets consumed per read burst (sim grain)

	// FreeBSD stack.
	MbufNS        float64 // mbuf setup in the interrupt handler
	BpfStoreNS    float64 // catchpacket() fixed cost per accepted packet
	BpfHdrBytes   int     // per-packet BPF header in the store buffer
	ReadSyscallNS float64 // read() on /dev/bpf per wakeup
	ReadTimeoutNS float64 // BPF read timeout while data sits in STORE
	// BulkLocalityFactor discounts the application's memory-bound load
	// after a FreeBSD bulk read: the whole chunk was just streamed through
	// the cache, so per-packet memcpys run warm, whereas Linux touches
	// each packet cold out of the socket queue. <1 favours FreeBSD under
	// memory-bound per-packet load (Figure 6.10b).
	BulkLocalityFactor float64

	// Application side.
	AppPerPktNS  float64 // per-packet bookkeeping in the capturing app
	FlowTrackNS  float64 // per-packet flow-table update (FlowTrack load)
	PipePerPktNS float64 // write() of one packet into the gzip pipe
	PipeBufBytes int     // pipe capacity
	// PolicyPerPktNS is the sampling-policy decision cost per packet read
	// (counter/hash/controller update). Paid only when a Policy is
	// configured; shed packets still pay it — shedding saves the analysis
	// load, not the decision.
	PolicyPerPktNS float64

	// Application analysis workers.
	WorkerQueueBytes int // backpressure bound for Load.Workers

	// PF_RING-style stack (extension).
	RingInsertNS float64 // insert into the shared ring, replacing the socket path

	// Filtering.
	FilterPerInstrNS float64 // one BPF instruction in kernel context

	// Modern receive paths (StackRSS / StackPoll / StackZeroCopy). The
	// legacy stacks never read these, so configs built before they existed
	// behave identically.
	RSSRingSlots int     // per-RSS-ring RX descriptor count
	NICFifoBytes int     // NIC-internal FIFO absorbing DMA-ceiling backpressure
	NapiBudget   int     // packets drained per NAPI / XDP service pass
	NapiPollNS   float64 // per-packet NAPI poll cost (no skb: build + deliver)
	PollBurst    int     // poll-mode burst size per ring poll
	PollPerPktNS float64 // per-packet PMD cost within a burst
	PollIdleNS   float64 // one empty poll-loop pass (busy-spin grain, unscaled)
	XdpRxNS      float64 // per-packet XDP rx + redirect into an XSK ring
	XdpPerPktNS  float64 // app-side per-frame descriptor handling (no copy)
	UmemFrames   int     // UMEM frame pool shared by all XSK sockets
	AppRingSlots int     // per-app ring capacity (poll-mode and XSK, in packets)
	WakeupBatch  int     // packets per application wakeup (batched syscalls)

	// Background OS housekeeping: a kernel-priority task of HousekeepNS
	// runs every HousekeepPeriodNS on each CPU (timer ticks, bookkeeping,
	// daemons). It cannot delay interrupt-context capture but stalls the
	// reading applications — the mechanism that makes small default
	// buffers overflow long before the CPU saturates (Figure 6.2 vs 6.3).
	HousekeepNS       float64
	HousekeepPeriodNS float64
}

// DefaultCosts returns the calibrated cost set.
func DefaultCosts() Costs {
	return Costs{
		IRQEntryNS: 600,
		DriverRxNS: 1100,
		RingSlots:  256,

		SkbAllocNS:      600,
		BacklogEnqNS:    200,
		BacklogLen:      300,
		SoftirqPerPktNS: 1000,
		SockEnqNS:       400,
		WakeupNS:        300,
		RecvSyscallNS:   3000,
		MmapPerPktNS:    250,
		SkbOverhead:     700,
		SoftirqQuota:    64,
		TimesliceNS:     100e6, // 100 ms
		AppBatch:        16,

		MbufNS:             500,
		BpfStoreNS:         150,
		BpfHdrBytes:        18,
		ReadSyscallNS:      1400,
		ReadTimeoutNS:      100e6, // BIOCSRTIMEOUT-equivalent
		BulkLocalityFactor: 0.8,

		AppPerPktNS:  250,
		FlowTrackNS:  450,
		PipePerPktNS: 350,
		PipeBufBytes: 64 << 10,

		PolicyPerPktNS: 60,

		WorkerQueueBytes: 8 << 20,

		RingInsertNS: 200,

		RSSRingSlots: 1024,
		NICFifoBytes: 4 << 20,
		NapiBudget:   64,
		NapiPollNS:   280,
		PollBurst:    32,
		PollPerPktNS: 90,
		PollIdleNS:   4000,
		XdpRxNS:      220,
		XdpPerPktNS:  120,
		UmemFrames:   4096,
		AppRingSlots: 4096,
		WakeupBatch:  32,

		FilterPerInstrNS: 7,

		HousekeepNS:       4e6,   // 4 ms
		HousekeepPeriodNS: 100e6, // every 100 ms
	}
}

// Default buffer sizes for the "default settings" measurements (Fig 6.2).
const (
	// DefaultLinuxRcvbuf approximates the 2.6 kernel's rmem_default.
	DefaultLinuxRcvbuf = 128 << 10
	// DefaultBSDBuffer is one half of the BPF double buffer as a capture
	// tool of the era would configure it.
	DefaultBSDBuffer = 256 << 10
	// BigLinuxRcvbuf and BigBSDBuffer are the increased sizes the thesis
	// settles on (§6.3.1): 128 MB for Linux, 10 MB halves for FreeBSD.
	BigLinuxRcvbuf = 128 << 20
	BigBSDBuffer   = 10 << 20
)

// AppLoad configures the per-packet work of a capturing application,
// mirroring the knobs of createDist (§A.1.3) and the measurement scenarios
// of §6.3.4/6.3.5.
type AppLoad struct {
	MemcpyCount int // -c: additional memcpy()s of the packet
	ZlibLevel   int // -z: gzwrite() compression level (0 = off)
	PipeGzip    int // pipe packets to a separate gzip process at level N
	// FlowTrack accounts each packet in a per-flow table (hash, lookup,
	// counter update): the connection-level bookkeeping of the NIDS-style
	// consumers the thesis motivates (Bro, the time machine).
	FlowTrack    bool
	WriteSnapLen int  // -tsl: write first N bytes of each packet to disk
	WriteFull    bool // -t: write whole packets to disk
	// Workers runs the per-packet analysis load on this many worker
	// threads instead of inline in the reader — the §7.2 future-work idea
	// of "using multiple threads on one machine to take full advantage of
	// multiprocessor systems" [DV04].
	Workers int
}

// Config assembles one system under test.
type Config struct {
	Name  string
	Arch  arch.Profile
	OS    OS
	Costs Costs

	NumCPUs        int  // physical CPUs (1 = "no SMP")
	Hyperthreading bool // Intel only; doubles logical CPUs

	// BufferBytes: Linux = per-socket receive buffer (rmem); FreeBSD = one
	// half of the per-application double buffer.
	BufferBytes int

	// KernelCostFactor scales all kernel-path costs of this system. It
	// captures system-specific friction the thesis observes but does not
	// dissect (most prominently FreeBSD 5.4 on the Xeon — flamingo — which
	// "is often losing more packets than the other systems").
	KernelCostFactor float64

	// MmapPatch enables the memory-mapped libpcap: on Linux the
	// PACKET_MMAP patch of §6.3.6; on FreeBSD the zero-copy read the
	// thesis proposes as future work ("the implementation of a
	// memory-mapped libpcap for FreeBSD", §7.2).
	MmapPatch bool

	// PFRing replaces the Linux capturing stack with a ring-buffer design
	// in the spirit of Luca Deri's patch ([Der04/Der05], §7.2): packets
	// skip the skb/socket machinery and land directly in a shared ring
	// the application reads in place.
	PFRing bool

	// Stack selects the receive-path generation. StackLegacy (zero) keeps
	// the 2005 stacks selected by OS; the modern kinds use the RSS
	// multi-queue NIC with RXRings per-core rings. Modern stacks still use
	// OS for the buffer defaults and scheduler behaviour (they are
	// Linux-family paths).
	Stack StackKind
	// RXRings is the RSS ring count of a modern stack (0 = one per CPU;
	// clamped to the CPU count, and to NumCPUs-1 for poll mode so at least
	// one CPU remains for the applications).
	RXRings int

	Snaplen int // capture length; the thesis uses tcpdump -s 1515

	// DiskQueueBytes is the write-back cache the capture tool can dirty
	// before blocking on the RAID (default 32 MB; time-compressed runs
	// scale it with the run length).
	DiskQueueBytes int

	NumApps int
	Filter  bpf.Program // nil: accept everything
	Load    AppLoad

	// Policy is the per-application sampling / load-shedding policy
	// (policy.go). The zero value disables shedding and keeps every
	// output byte-identical to the unpoliced model.
	Policy PolicySpec

	// CountFlows tracks the distinct 5-tuple flows each application
	// delivers (Stats.AppFlows) — the denominator-side bookkeeping of
	// flow-coverage accuracy. Enabled implicitly by any active Policy;
	// set it explicitly to get flow coverage for an unpoliced baseline.
	CountFlows bool

	// Prepared marks a config whose time constants and buffer sizes have
	// already been scaled for a workload (core.Prepare sets it). Scaling is
	// multiplicative, so it must happen exactly once per config.
	Prepared bool
}

// kpkt is a packet inside a kernel queue.
type kpkt struct {
	data    []byte
	caplen  int
	arrival sim.Time // when the last bit hit the NIC (true wire time)
}

// Stats aggregates the outcome of one run.
type Stats struct {
	Generated uint64 // packets offered to the NIC
	NICDrops  uint64 // RX ring overflows
	// Per-application results.
	AppCaptured []uint64
	AppDrops    []uint64 // stack-level drops attributed to the app's buffer
	QueueDrops  uint64   // Linux input-queue (backlog) overflows
	// AppShed counts the packets each application's sampling policy
	// deliberately declined (nil when no Policy is configured, so runs
	// without a policy serialize byte-identically to older records).
	AppShed []uint64 `json:",omitempty"`
	// AppFlows counts the distinct 5-tuple flows each application
	// delivered (nil unless CountFlows or a Policy is active).
	AppFlows []uint64 `json:",omitempty"`
	// PolicyName is the active sampling policy spec ("uniform:4", …),
	// empty when no policy was configured.
	PolicyName string `json:",omitempty"`
	// CPU accounting over the active window.
	BusyTime  sim.Time
	WallTime  sim.Time
	CPUCount  int
	BusyByCls [sim.NumPrio]sim.Time
	// BusyByCPU is the per-CPU refinement of BusyByCls: busy time per
	// priority class on each logical CPU over the generation window.
	BusyByCPU [][sim.NumPrio]sim.Time
	// Ledger attributes every lost packet to the loss site (drop cause);
	// timestamps in the ledger are relative to the run start.
	Ledger Ledger
	// Gauges are the per-buffer occupancy high-water marks and overflow
	// episode counts, in fixed construction order.
	Gauges []GaugeStat
	// Truncated reports that the run hit the simulation safety cap with
	// packets still in flight; the remnants are booked under
	// CauseAbandoned instead of silently vanishing or draining.
	Truncated bool
	// Timestamp accuracy (§2.2.1): packets are stamped when the interrupt
	// handler processes them, not when they arrived on the wire.
	Stamped  uint64
	TsErrSum sim.Time // Σ (stamp − arrival)
	TsErrMax sim.Time
	TsTies   uint64 // packets sharing the previous packet's stamp
}

// CaptureRate returns captured/generated over all applications (the
// thesis's headline metric) in percent.
func (s Stats) CaptureRate() float64 {
	if s.Generated == 0 {
		return 0
	}
	var sum float64
	for _, c := range s.AppCaptured {
		sum += float64(c)
	}
	return sum / float64(len(s.AppCaptured)) / float64(s.Generated) * 100
}

// AppRates returns worst, average and best per-application capture rates
// in percent (the three lines of Figures 6.7–6.9).
func (s Stats) AppRates() (worst, avg, best float64) {
	if s.Generated == 0 || len(s.AppCaptured) == 0 {
		return 0, 0, 0
	}
	worst, best = 200, -1
	for _, c := range s.AppCaptured {
		r := float64(c) / float64(s.Generated) * 100
		if r < worst {
			worst = r
		}
		if r > best {
			best = r
		}
		avg += r
	}
	avg /= float64(len(s.AppCaptured))
	return worst, avg, best
}

// TsErrMeanUS returns the mean timestamp error in microseconds.
func (s Stats) TsErrMeanUS() float64 {
	if s.Stamped == 0 {
		return 0
	}
	return float64(s.TsErrSum) / float64(s.Stamped) / 1e3
}

// CPUUsage returns average CPU busy fraction in percent over the wall time
// of the run, across all CPUs (the green lines of the thesis plots).
func (s Stats) CPUUsage() float64 {
	if s.WallTime == 0 || s.CPUCount == 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(s.WallTime) / float64(s.CPUCount) * 100
}
