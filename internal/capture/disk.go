package capture

import "repro/internal/sim"

// Disk models the 3ware ATA RAID set as a throughput-limited write-back
// queue. Applications enqueue bytes (the CPU cost of the write path is
// charged inside the application task); the queue drains at the profile's
// sustained write rate. A full queue blocks the writer — exactly how a
// capture tool stalls when the disk cannot keep up, which is why the
// thesis writes only 76-byte headers at line rate (§6.3.5).
type Disk struct {
	sys   *System
	gauge *Gauge

	queue    int
	MaxQueue int
	draining bool
	waiters  []*App

	Written uint64
}

const diskChunk = 1 << 20 // drain granularity

func (d *Disk) full() bool { return d.queue >= d.MaxQueue }

func (d *Disk) addWaiter(a *App) { d.waiters = append(d.waiters, a) }

func (d *Disk) reset() {
	d.queue = 0
	d.draining = false
	d.waiters = nil
	d.Written = 0
}

// Write enqueues n bytes and arms draining.
func (d *Disk) Write(n int) {
	if n <= 0 {
		return
	}
	d.queue += n
	d.gauge.observe(d.queue)
	if !d.draining {
		d.drain()
	}
}

func (d *Disk) drain() {
	chunk := d.queue
	if chunk > diskChunk {
		chunk = diskChunk
	}
	if chunk <= 0 {
		d.draining = false
		return
	}
	d.draining = true
	rate := d.sys.Arch.DiskWriteMBps * 1e6 // bytes/s
	dur := sim.Time(float64(chunk) / rate * 1e9)
	d.sys.Sim.After(dur, func() {
		d.queue -= chunk
		d.Written += uint64(chunk)
		d.gauge.observe(d.queue)
		if len(d.waiters) > 0 && d.queue < d.MaxQueue/2 {
			ws := d.waiters
			d.waiters = nil
			for _, a := range ws {
				a.resume()
			}
		}
		d.drain()
	})
}

// BonnieResult is one bar of the Figure 6.13 histogram.
type BonnieResult struct {
	System    string
	WriteMBps float64
	CPUPct    float64
}

// Bonnie reports the system's maximum sequential write speed and the CPU
// usage that writing at this speed costs — the bonnie++ measurement the
// thesis runs before the write-to-disk experiments. The numbers follow
// analytically from the disk model: throughput is the profile's sustained
// rate, CPU is the per-byte write-path cost at that rate.
func Bonnie(cfg Config) BonnieResult {
	bytesPerSec := cfg.Arch.DiskWriteMBps * 1e6
	cpuFrac := bytesPerSec * cfg.Arch.DiskCPUPerByteNS * 1e-9 * cfg.Arch.FixedCost
	return BonnieResult{
		System:    cfg.Name,
		WriteMBps: cfg.Arch.DiskWriteMBps,
		CPUPct:    cpuFrac * 100,
	}
}
