package capture

import "repro/internal/sim"

// This file implements the three post-2005 receive disciplines on top of
// the RSS multi-queue NIC (nic_rss.go):
//
//   - rssStack: RSS + NAPI. Each ring takes a hardware interrupt, then is
//     drained in polled softirq passes of NapiBudget packets on its own
//     CPU; delivery into per-socket receive buffers and a per-packet copy
//     to user space — the multi-queue evolution of the stock Linux path.
//   - pollStack: a DPDK-style poll-mode driver. One busy-spinning core per
//     ring, no interrupts at all, burst polls of PollBurst packets, and a
//     zero-copy hand-off into per-application rings.
//   - xdpStack: AF_XDP-style zero copy. IRQ-driven XDP passes redirect
//     frames from a shared UMEM pool into per-socket rings; applications
//     are woken once per WakeupBatch packets and read descriptors without
//     copying; frames return to the pool via the completion ring when the
//     read finishes.
//
// All three implement the same `stack` seam as the legacy stacks, so
// applications, policies, chaos, the journal and the monitor compose
// unchanged. Per-application overflows are booked under CauseRcvbuf
// (whatever the ring flavor, it is the application's receive buffer), so
// the conservation cross-check against Stats.AppDrops holds for every
// stack generation.

// msock is one modern per-application receive queue: the PF_PACKET
// socket, poll-mode app ring, or XSK ring feeding application a.
type msock struct {
	app   *App
	queue []kpkt
	bytes int // rssStack only: rcvbuf byte accounting
	// frames parallels queue for the zero-copy stack: the UMEM frame
	// backing each queued descriptor.
	frames    []*xframe
	sinceWake int // xdp: packets enqueued since the last wakeup
	gauge     *Gauge
	Drops     uint64
	Enqueued  uint64
}

// mdelivery is one (socket, packet) pair accepted by a filter.
type mdelivery struct {
	sk *msock
	p  kpkt
}

// ringCPU maps RSS ring r onto its servicing CPU.
func (s *System) ringCPU(r int) *sim.CPU {
	return s.Machine.CPUs[r%len(s.Machine.CPUs)]
}

// ---------------------------------------------------------------------------
// RSS + NAPI

type rssStack struct {
	sys      *System
	napiOn   []bool   // per ring: IRQ taken or polled passes scheduled
	inflight [][]kpkt // per ring: the batch inside a scheduled pass
	socks    []*msock
}

func newRSSStack(s *System, nrings int) *rssStack {
	st := &rssStack{
		sys:      s,
		napiOn:   make([]bool, nrings),
		inflight: make([][]kpkt, nrings),
	}
	for i, a := range s.apps {
		st.socks = append(st.socks, &msock{app: a, gauge: s.newGauge("rcvbuf", i, s.BufferBytes)})
	}
	return st
}

func (st *rssStack) reset() {
	for i := range st.napiOn {
		st.napiOn[i] = false
		st.inflight[i] = nil
	}
	resetSocks(st.socks)
}

func resetSocks(socks []*msock) {
	for _, sk := range socks {
		sk.queue = sk.queue[:0]
		sk.frames = sk.frames[:0]
		sk.bytes = 0
		sk.sinceWake = 0
		sk.Drops, sk.Enqueued = 0, 0
	}
}

// ringKick: the NIC raised the IRQ for ring r. The handler only acks and
// schedules NAPI; all per-packet work happens in the polled passes.
func (st *rssStack) ringKick(r int) {
	if st.napiOn[r] {
		return // NAPI already polling this ring: no further interrupts
	}
	st.napiOn[r] = true
	st.sys.ringCPU(r).Submit(&sim.Task{
		Name:    "rx-irq",
		Prio:    sim.PrioHardIRQ,
		FixedNS: st.sys.kfixed(st.sys.Costs.IRQEntryNS),
		OnDone:  func() { st.servicePass(r) },
	})
}

// servicePass drains up to NapiBudget packets from ring r in one softirq
// pass on the ring's CPU, delivering into the per-socket buffers.
func (st *rssStack) servicePass(r int) {
	c := &st.sys.Costs
	batch := st.sys.rss.popBurst(r, c.NapiBudget)
	if len(batch) == 0 {
		st.napiOn[r] = false
		return
	}
	st.inflight[r] = batch

	var fixed float64
	var delivers []mdelivery
	rejects := 0
	var rejectBytes uint64
	for _, p := range batch {
		fixed += c.DriverRxNS + c.NapiPollNS
		for _, sk := range st.socks {
			caplen, fcost := st.sys.runFilter(p.data)
			fixed += fcost
			if caplen == 0 {
				rejects++
				rejectBytes += uint64(len(p.data))
				continue
			}
			fixed += c.SockEnqNS
			if sk.app.state == stIdle {
				fixed += c.WakeupNS
			}
			delivers = append(delivers, mdelivery{sk, kpkt{data: p.data, caplen: caplen, arrival: p.arrival}})
		}
	}
	st.sys.ringCPU(r).Submit(&sim.Task{
		Name:    "napi-poll",
		Prio:    sim.PrioSoftIRQ,
		FixedNS: st.sys.kfixed(fixed),
		OnDone: func() {
			st.inflight[r] = nil
			st.sys.ledger.RecordN(CauseFilter, rejects, rejectBytes,
				st.sys.Sim.Now()-st.sys.runStart)
			for _, dv := range delivers {
				overhead := dv.p.caplen + st.sys.Costs.SkbOverhead
				if dv.sk.bytes+overhead > st.sys.BufferBytes {
					dv.sk.Drops++
					st.sys.recordDrop(CauseRcvbuf, dv.p.caplen)
					dv.sk.gauge.overflow()
					continue
				}
				dv.sk.queue = append(dv.sk.queue, dv.p)
				dv.sk.bytes += overhead
				dv.sk.gauge.observe(dv.sk.bytes)
				dv.sk.Enqueued++
				if dv.sk.app.state == stIdle {
					st.appStart(dv.sk.app)
				}
			}
			st.servicePass(r)
		},
	})
}

// appStart: the classic per-packet recvfrom read loop (RSS spreads the
// kernel side across cores, but the application still pays a syscall and
// a copy per packet).
func (st *rssStack) appStart(a *App) {
	if a.state == stRunning || a.state == stBlockedDisk ||
		a.state == stBlockedPipe || a.state == stBlockedWorkers {
		return
	}
	sk := st.socks[a.idx]
	if len(sk.queue) == 0 {
		a.state = stIdle
		return
	}
	if a.blockedOnBackpressure() {
		return
	}
	a.state = stRunning

	c := &st.sys.Costs
	n := len(sk.queue)
	if n > c.AppBatch {
		n = c.AppBatch
	}
	batch := make([]kpkt, n)
	copy(batch, sk.queue[:n])
	copy(sk.queue, sk.queue[n:])
	sk.queue = sk.queue[:len(sk.queue)-n]

	occ := a.occupancy(float64(sk.bytes) / float64(st.sys.BufferBytes))

	var fixed, mem float64
	for _, p := range batch {
		sk.bytes -= p.caplen + c.SkbOverhead
		fixed += st.sys.ufixed(c.RecvSyscallNS)
		mem += float64(p.caplen)
		a.inflightBytes += uint64(p.caplen)
	}
	a.inflightPkts = n
	adm := a.admitBatch(batch, occ)
	fixed += adm.policyNS
	loadFixed, loadMem, finish := a.batchLoad(adm.caplens, 1.0)
	fixed += loadFixed
	mem += loadMem
	est := fixed + mem*st.sys.umemNs()
	a.submitWork(&sim.Task{
		Name:         "recv",
		Prio:         sim.PrioUser,
		FixedNS:      fixed,
		MemBytes:     mem,
		MemNsPerByte: st.sys.umemNs(),
		OnDone: func() {
			a.finishRead(adm)
			finish()
			a.state = stIdle
			st.appStart(a)
		},
	}, est)
}

func (st *rssStack) pending() bool {
	for r := range st.inflight {
		if len(st.inflight[r]) > 0 || st.napiOn[r] {
			return true
		}
	}
	return socksPending(st.socks)
}

func socksPending(socks []*msock) bool {
	for _, sk := range socks {
		if len(sk.queue) > 0 {
			return true
		}
	}
	return false
}

func (st *rssStack) dropStats() ([]uint64, uint64) { return sockDrops(st.socks), 0 }

func sockDrops(socks []*msock) []uint64 {
	per := make([]uint64, len(socks))
	for i, sk := range socks {
		per[i] = sk.Drops
	}
	return per
}

func (st *rssStack) remnants() (shared []kpkt, perApp [][]kpkt) {
	for r := range st.inflight {
		shared = append(shared, st.inflight[r]...)
	}
	return shared, sockRemnants(st.socks)
}

func sockRemnants(socks []*msock) [][]kpkt {
	perApp := make([][]kpkt, len(socks))
	for i, sk := range socks {
		perApp[i] = sk.queue
	}
	return perApp
}

// The legacy NIC seam is never exercised by the modern stacks (the rssNIC
// drives them through ringKick/popBurst instead).
func (st *rssStack) irqCost([]byte) (float64, float64, any) { return 0, 0, nil }
func (st *rssStack) irqDone([]byte, any)                    {}

// ---------------------------------------------------------------------------
// Poll mode (DPDK-style PMD)

type pollStack struct {
	sys      *System
	nrings   int
	inflight [][]kpkt
	socks    []*msock
}

func newPollStack(s *System, nrings int) *pollStack {
	st := &pollStack{
		sys:      s,
		nrings:   nrings,
		inflight: make([][]kpkt, nrings),
	}
	// The PMD cores are dedicated: user work must never be placed on a
	// busy-spinning CPU (it would starve behind the spin forever).
	for r := 0; r < nrings; r++ {
		s.Machine.Reserve(r % len(s.Machine.CPUs))
	}
	for i, a := range s.apps {
		st.socks = append(st.socks, &msock{app: a, gauge: s.newGauge("app-ring", i, s.Costs.AppRingSlots)})
	}
	return st
}

func (st *pollStack) reset() {
	for i := range st.inflight {
		st.inflight[i] = nil
	}
	resetSocks(st.socks)
}

// start launches the PMD loops, one per ring on its own core. Called by
// System.run after s.running is set; the loops die with the run.
func (st *pollStack) start() {
	for r := 0; r < st.nrings; r++ {
		st.poll(r)
	}
}

// poll runs one PMD loop iteration on ring r's core: an empty poll is a
// busy spin of PollIdleNS (the core is 100% busy whether or not traffic
// flows — the defining cost trade of poll mode, visible in cpusage as a
// pegged softintr class); a non-empty poll processes up to PollBurst
// packets and hands them into the per-application rings without copying.
func (st *pollStack) poll(r int) {
	if !st.sys.running {
		return // run over: the spin loop winds down
	}
	c := &st.sys.Costs
	batch := st.sys.rss.popBurst(r, c.PollBurst)
	if len(batch) == 0 {
		// PollIdleNS is the spin grain, a simulation artifact: it is not
		// scaled by kfixed so the event count of an idle core stays
		// bounded, and the busy accounting is exact either way.
		st.sys.ringCPU(r).Submit(&sim.Task{
			Name:    "pmd-idle",
			Prio:    sim.PrioSoftIRQ,
			FixedNS: c.PollIdleNS,
			OnDone:  func() { st.poll(r) },
		})
		return
	}
	st.inflight[r] = batch

	var fixed float64
	var delivers []mdelivery
	rejects := 0
	var rejectBytes uint64
	for _, p := range batch {
		fixed += c.PollPerPktNS
		for _, sk := range st.socks {
			caplen, fcost := st.sys.runFilter(p.data)
			fixed += fcost
			if caplen == 0 {
				rejects++
				rejectBytes += uint64(len(p.data))
				continue
			}
			fixed += c.RingInsertNS
			if sk.app.state == stIdle {
				fixed += c.WakeupNS
			}
			delivers = append(delivers, mdelivery{sk, kpkt{data: p.data, caplen: caplen, arrival: p.arrival}})
		}
	}
	st.sys.ringCPU(r).Submit(&sim.Task{
		Name:    "pmd-burst",
		Prio:    sim.PrioSoftIRQ,
		FixedNS: st.sys.kfixed(fixed),
		OnDone: func() {
			st.inflight[r] = nil
			st.sys.ledger.RecordN(CauseFilter, rejects, rejectBytes,
				st.sys.Sim.Now()-st.sys.runStart)
			for _, dv := range delivers {
				if len(dv.sk.queue) >= st.sys.Costs.AppRingSlots {
					dv.sk.Drops++
					st.sys.recordDrop(CauseRcvbuf, dv.p.caplen)
					dv.sk.gauge.overflow()
					continue
				}
				dv.sk.queue = append(dv.sk.queue, dv.p)
				dv.sk.gauge.observe(len(dv.sk.queue))
				dv.sk.Enqueued++
				if dv.sk.app.state == stIdle {
					st.appStart(dv.sk.app)
				}
			}
			st.poll(r)
		},
	})
}

// appStart: the reader maps the ring frames in place — no syscall, no
// copy; only the cheap per-frame hand-off plus the configured load.
func (st *pollStack) appStart(a *App) {
	if a.state == stRunning || a.state == stBlockedDisk ||
		a.state == stBlockedPipe || a.state == stBlockedWorkers {
		return
	}
	sk := st.socks[a.idx]
	if len(sk.queue) == 0 {
		a.state = stIdle
		return
	}
	if a.blockedOnBackpressure() {
		return
	}
	a.state = stRunning

	c := &st.sys.Costs
	n := len(sk.queue)
	if n > c.AppBatch {
		n = c.AppBatch
	}
	batch := make([]kpkt, n)
	copy(batch, sk.queue[:n])
	copy(sk.queue, sk.queue[n:])
	sk.queue = sk.queue[:len(sk.queue)-n]

	occ := a.occupancy(float64(len(sk.queue)+n) / float64(c.AppRingSlots))

	var fixed float64
	for _, p := range batch {
		fixed += st.sys.ufixed(c.MmapPerPktNS)
		a.inflightBytes += uint64(p.caplen)
	}
	a.inflightPkts = n
	adm := a.admitBatch(batch, occ)
	fixed += adm.policyNS
	loadFixed, loadMem, finish := a.batchLoad(adm.caplens, 1.0)
	fixed += loadFixed
	est := fixed + loadMem*st.sys.umemNs()
	a.submitWork(&sim.Task{
		Name:         "ring-read",
		Prio:         sim.PrioUser,
		FixedNS:      fixed,
		MemBytes:     loadMem,
		MemNsPerByte: st.sys.umemNs(),
		OnDone: func() {
			a.finishRead(adm)
			finish()
			a.state = stIdle
			st.appStart(a)
		},
	}, est)
}

func (st *pollStack) pending() bool {
	for r := range st.inflight {
		if len(st.inflight[r]) > 0 {
			return true
		}
	}
	return socksPending(st.socks)
}

func (st *pollStack) dropStats() ([]uint64, uint64) { return sockDrops(st.socks), 0 }

func (st *pollStack) remnants() (shared []kpkt, perApp [][]kpkt) {
	for r := range st.inflight {
		shared = append(shared, st.inflight[r]...)
	}
	return shared, sockRemnants(st.socks)
}

func (st *pollStack) irqCost([]byte) (float64, float64, any) { return 0, 0, nil }
func (st *pollStack) irqDone([]byte, any)                    {}

// ---------------------------------------------------------------------------
// AF_XDP-style zero copy

// xframe is one UMEM frame shared by every socket that accepted the
// packet; it returns to the free pool when the last reference completes.
type xframe struct{ refs int }

type xdpStack struct {
	sys      *System
	napiOn   []bool
	inflight [][]kpkt
	socks    []*msock
	umemFree int
	gUmem    *Gauge
}

func newXDPStack(s *System, nrings int) *xdpStack {
	st := &xdpStack{
		sys:      s,
		napiOn:   make([]bool, nrings),
		inflight: make([][]kpkt, nrings),
		umemFree: s.Costs.UmemFrames,
	}
	st.gUmem = s.newGauge("umem", -1, s.Costs.UmemFrames)
	for i, a := range s.apps {
		st.socks = append(st.socks, &msock{app: a, gauge: s.newGauge("xsk-ring", i, s.Costs.AppRingSlots)})
	}
	return st
}

func (st *xdpStack) reset() {
	for i := range st.napiOn {
		st.napiOn[i] = false
		st.inflight[i] = nil
	}
	st.umemFree = st.sys.Costs.UmemFrames
	resetSocks(st.socks)
}

func (st *xdpStack) ringKick(r int) {
	if st.napiOn[r] {
		return
	}
	st.napiOn[r] = true
	st.sys.ringCPU(r).Submit(&sim.Task{
		Name:    "rx-irq",
		Prio:    sim.PrioHardIRQ,
		FixedNS: st.sys.kfixed(st.sys.Costs.IRQEntryNS),
		OnDone:  func() { st.xdpPass(r) },
	})
}

// release returns one socket's reference on a frame, freeing it to the
// UMEM pool when the last holder is done (the completion ring).
func (st *xdpStack) release(f *xframe) {
	f.refs--
	if f.refs == 0 {
		st.umemFree++
	}
}

// xdpPass drains up to NapiBudget packets from ring r: each packet needs
// a UMEM frame (fill-ring exhaustion is the umem-fill drop, before any
// socket sees the packet), is filtered per socket, and lands by reference
// in the accepting sockets' XSK rings. Wakeups are batched: an idle
// application is woken only once WakeupBatch packets have accumulated, or
// when the driver goes idle (the need_wakeup flush, which also guarantees
// tails drain and the run terminates).
func (st *xdpStack) xdpPass(r int) {
	c := &st.sys.Costs
	batch := st.sys.rss.popBurst(r, c.NapiBudget)
	if len(batch) == 0 {
		st.napiOn[r] = false
		return
	}
	st.inflight[r] = batch

	var fixed float64
	for _, p := range batch {
		fixed += c.DriverRxNS + c.XdpRxNS
		for range st.socks {
			_, fcost := st.sys.runFilter(p.data)
			fixed += fcost
			fixed += c.RingInsertNS
		}
	}
	st.sys.ringCPU(r).Submit(&sim.Task{
		Name:    "xdp-rx",
		Prio:    sim.PrioSoftIRQ,
		FixedNS: st.sys.kfixed(fixed),
		OnDone: func() {
			st.inflight[r] = nil
			now := st.sys.Sim.Now() - st.sys.runStart
			rejects := 0
			var rejectBytes uint64
			for _, p := range batch {
				if st.umemFree == 0 {
					// No frame for the DMA'd packet: dropped before the
					// per-socket fan-out, shared by every application.
					st.sys.ledger.Record(CauseUmemFill, len(p.data), now)
					st.gUmem.overflow()
					continue
				}
				st.umemFree--
				st.gUmem.observe(st.sys.Costs.UmemFrames - st.umemFree)
				f := &xframe{}
				for _, sk := range st.socks {
					caplen, _ := st.sys.runFilter(p.data)
					if caplen == 0 {
						rejects++
						rejectBytes += uint64(len(p.data))
						continue
					}
					if len(sk.queue) >= st.sys.Costs.AppRingSlots {
						sk.Drops++
						st.sys.recordDrop(CauseRcvbuf, caplen)
						sk.gauge.overflow()
						continue
					}
					f.refs++
					sk.queue = append(sk.queue, kpkt{data: p.data, caplen: caplen, arrival: p.arrival})
					sk.frames = append(sk.frames, f)
					sk.gauge.observe(len(sk.queue))
					sk.Enqueued++
					sk.sinceWake++
				}
				if f.refs == 0 {
					// Every socket rejected or overflowed: the frame goes
					// straight back to the pool.
					st.umemFree++
				}
			}
			st.sys.ledger.RecordN(CauseFilter, rejects, rejectBytes, now)
			flush := st.sys.rss.depth(r) == 0
			for _, sk := range st.socks {
				if len(sk.queue) == 0 || sk.app.state != stIdle {
					continue
				}
				if sk.sinceWake >= st.sys.Costs.WakeupBatch || flush {
					sk.sinceWake = 0
					st.appStart(sk.app)
				}
			}
			st.xdpPass(r)
		},
	})
}

// appStart: one batched wakeup syscall, then per-frame descriptor
// handling — no copy; frames return to the UMEM pool when the read
// completes.
func (st *xdpStack) appStart(a *App) {
	if a.state == stRunning || a.state == stBlockedDisk ||
		a.state == stBlockedPipe || a.state == stBlockedWorkers {
		return
	}
	sk := st.socks[a.idx]
	if len(sk.queue) == 0 {
		a.state = stIdle
		return
	}
	if a.blockedOnBackpressure() {
		return
	}
	a.state = stRunning

	c := &st.sys.Costs
	n := len(sk.queue)
	if n > c.AppBatch {
		n = c.AppBatch
	}
	batch := make([]kpkt, n)
	copy(batch, sk.queue[:n])
	copy(sk.queue, sk.queue[n:])
	sk.queue = sk.queue[:len(sk.queue)-n]
	frames := make([]*xframe, n)
	copy(frames, sk.frames[:n])
	copy(sk.frames, sk.frames[n:])
	sk.frames = sk.frames[:len(sk.frames)-n]

	occ := a.occupancy(float64(len(sk.queue)+n) / float64(c.AppRingSlots))

	fixed := st.sys.ufixed(c.RecvSyscallNS) // one poll()/recvmsg per wakeup
	for _, p := range batch {
		fixed += st.sys.ufixed(c.XdpPerPktNS)
		a.inflightBytes += uint64(p.caplen)
	}
	a.inflightPkts = n
	adm := a.admitBatch(batch, occ)
	fixed += adm.policyNS
	loadFixed, loadMem, finish := a.batchLoad(adm.caplens, 1.0)
	fixed += loadFixed
	est := fixed + loadMem*st.sys.umemNs()
	a.submitWork(&sim.Task{
		Name:         "xsk-read",
		Prio:         sim.PrioUser,
		FixedNS:      fixed,
		MemBytes:     loadMem,
		MemNsPerByte: st.sys.umemNs(),
		OnDone: func() {
			a.finishRead(adm)
			for _, f := range frames {
				st.release(f)
			}
			finish()
			a.state = stIdle
			st.appStart(a)
		},
	}, est)
}

func (st *xdpStack) pending() bool {
	for r := range st.inflight {
		if len(st.inflight[r]) > 0 || st.napiOn[r] {
			return true
		}
	}
	return socksPending(st.socks)
}

func (st *xdpStack) dropStats() ([]uint64, uint64) { return sockDrops(st.socks), 0 }

func (st *xdpStack) remnants() (shared []kpkt, perApp [][]kpkt) {
	for r := range st.inflight {
		shared = append(shared, st.inflight[r]...)
	}
	return shared, sockRemnants(st.socks)
}

func (st *xdpStack) irqCost([]byte) (float64, float64, any) { return 0, 0, nil }
func (st *xdpStack) irqDone([]byte, any)                    {}
