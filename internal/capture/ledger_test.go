package capture

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestLedgerConservationMatrix checks, for every system under test crossed
// with the thesis's load shapes, that the drop-cause ledger balances the
// books: napps × Generated == Σ Captured + per-app drops + napps × shared
// drops, and that the ledger agrees with the legacy aggregate counters.
func TestLedgerConservationMatrix(t *testing.T) {
	loads := []struct {
		name string
		mod  func(cfg Config) Config
	}{
		{"plain", func(c Config) Config { return c }},
		{"filter", func(c Config) Config { c.Filter = filter.MustCompile("tcp", 1515); return c }},
		{"multiapp", func(c Config) Config { c.NumApps = 3; return c }},
		{"disk", func(c Config) Config { c.Load.WriteFull = true; return c }},
		{"pipe", func(c Config) Config { c.Load.PipeGzip = 3; return c }},
		{"workers", func(c Config) Config { c.Load.Workers = 2; c.Load.ZlibLevel = 3; return c }},
	}
	systems := []Config{
		{Name: "swan", Arch: arch.Opteron244(), OS: Linux},
		{Name: "snipe", Arch: arch.Xeon306(), OS: Linux},
		{Name: "moorhen", Arch: arch.Opteron244(), OS: FreeBSD},
		{Name: "flamingo", Arch: arch.Xeon306(), OS: FreeBSD, KernelCostFactor: 1.9},
	}
	for _, base := range systems {
		for _, ld := range loads {
			for _, ncpu := range []int{1, 2} {
				base, ld, ncpu := base, ld, ncpu
				t.Run(fmt.Sprintf("%s-%s-%dcpu", base.Name, ld.name, ncpu), func(t *testing.T) {
					t.Parallel()
					cfg := ld.mod(base)
					cfg.NumCPUs = ncpu
					sys := NewSystem(scaled(cfg, 6000))
					st := sys.Run(newGen(6000, 900, 11))
					if err := st.CheckConservation(); err != nil {
						t.Fatal(err)
					}
					if st.Truncated {
						t.Fatal("run unexpectedly truncated")
					}
				})
			}
		}
	}
}

// TestFilterRejectionLedger pins that packets a kernel filter rejects are
// booked under the filter cause, not silently vanished.
func TestFilterRejectionLedger(t *testing.T) {
	cfg := moorhenCfg()
	cfg.Filter = filter.MustCompile("tcp", 1515) // generator sends UDP only
	sys := NewSystem(scaled(cfg, 3000))
	st := sys.Run(newGen(3000, 400, 2))
	if st.CapturedTotal() != 0 {
		t.Fatalf("captured %d packets through a rejecting filter", st.CapturedTotal())
	}
	rej := st.Ledger.Drops[CauseFilter]
	if rej.Packets == 0 {
		t.Fatal("no filter rejections in the ledger")
	}
	if err := st.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestModerationDropCause pins that ring overflows during an interrupt-
// moderation window are attributed to moderation, distinct from plain ring
// overflow, and that together they equal the legacy NICDrops counter.
func TestModerationDropCause(t *testing.T) {
	cfg := scaled(moorhenCfg(), 8000)
	cfg.Costs.ModerationDelayNS = 2e6 // 2 ms windows ≫ 256-slot ring @ 900 Mbit/s
	sys := NewSystem(cfg)
	st := sys.Run(newGen(8000, 900, 4))
	mod := st.Ledger.Drops[CauseModeration].Packets
	ring := st.Ledger.Drops[CauseNICRing].Packets
	if mod == 0 {
		t.Fatal("no moderation-window drops despite a 2ms coalescing delay")
	}
	if mod+ring != st.NICDrops {
		t.Fatalf("moderation %d + nic-ring %d != NICDrops %d", mod, ring, st.NICDrops)
	}
	var nicGauge *GaugeStat
	for i := range st.Gauges {
		if st.Gauges[i].Name == "nic-ring" {
			nicGauge = &st.Gauges[i]
		}
	}
	if nicGauge == nil || nicGauge.Episodes == 0 {
		t.Fatalf("nic-ring gauge missing or saw no overflow episode: %+v", st.Gauges)
	}
	if nicGauge.HighWater > nicGauge.Capacity {
		t.Fatalf("nic-ring high water %d above capacity %d", nicGauge.HighWater, nicGauge.Capacity)
	}
	if err := st.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestTruncatedRunBooksAbandoned is the regression test for the silent
// 600-second safety cap: a livelocked configuration must be flagged as
// truncated, with the packets still in flight booked under 'abandoned' so
// conservation holds, instead of disappearing without trace.
func TestTruncatedRunBooksAbandoned(t *testing.T) {
	cfg := swanCfg()
	cfg.NumCPUs = 1
	cfg = scaled(cfg, 200)
	cfg.Costs.AppPerPktNS = 5e12 // 5000 s per packet: guaranteed livelock
	cfg.Costs.HousekeepNS = 0
	sys := NewSystem(cfg)
	st := sys.Run(newGen(200, 900, 6))
	if !st.Truncated {
		t.Fatal("livelocked run not flagged as truncated")
	}
	ab := st.Ledger.Drops[CauseAbandoned]
	if ab.Packets == 0 {
		t.Fatal("truncated run booked no abandoned packets")
	}
	if err := st.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := st.Explain(); !strings.Contains(got, "TRUNCATED") || !strings.Contains(got, "abandoned") {
		t.Fatalf("Explain does not surface the truncation:\n%s", got)
	}
}

// TestFaultLossConservation pins that injected fault losses booked via
// BookFaultLoss keep the conservation check balanced against the
// ground-truth train length: a run that was offered fewer packets than the
// switch counted must book the difference under a fault-* cause and then
// balance as if the full train had been offered.
func TestFaultLossConservation(t *testing.T) {
	cfg := moorhenCfg()
	cfg.NumApps = 2
	sys := NewSystem(scaled(cfg, 3000))
	st := sys.Run(newGen(2900, 400, 3)) // 100 frames short of the "switch count"
	if err := st.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	st.BookFaultLoss(CauseFaultSplitter, 100, 64000, 12345)
	if st.Generated != 3000 {
		t.Fatalf("Generated = %d after booking, want 3000", st.Generated)
	}
	if !CauseFaultSplitter.Shared() || !CauseFaultGenerator.Shared() {
		t.Fatal("fault causes must be shared (lost before the per-app fan-out)")
	}
	if err := st.CheckConservation(); err != nil {
		t.Fatalf("conservation with booked fault loss: %v", err)
	}
	if d := st.Ledger.Drops[CauseFaultSplitter]; d.Packets != 100 || d.Bytes != 64000 {
		t.Fatalf("fault-splitter record = %+v", d)
	}
	if got := CauseFaultSplitter.String(); got != "fault-splitter" {
		t.Fatalf("cause name = %q", got)
	}
	if got := CauseFaultGenerator.String(); got != "fault-generator" {
		t.Fatalf("cause name = %q", got)
	}
}

// TestSystemReuseIdentical is the regression test for stale per-run state
// (accumulated busy counters and the RunWithArrivals gap index): a reused
// System fed the identical train must report identical Stats.
func TestSystemReuseIdentical(t *testing.T) {
	cfg := scaled(swanCfg(), 5000)
	gaps := trace.SelfSimilarArrivals(5000, 6000, 16, 1.5, 9)

	fresh := NewSystem(cfg)
	want := fresh.RunWithArrivals(newGen(5000, 800, 7), gaps)

	reused := NewSystem(cfg)
	first := reused.RunWithArrivals(newGen(5000, 800, 7), gaps)
	second := reused.RunWithArrivals(newGen(5000, 800, 7), gaps)

	if !reflect.DeepEqual(want, first) {
		t.Fatalf("first run on reused system differs from fresh system:\n%+v\nvs\n%+v", first, want)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("second run on the same System diverged:\n%+v\nvs\n%+v", second, first)
	}
	if err := second.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestExplainGolden locks the Explain() rendering of a deterministic lossy
// run against a golden file.
func TestExplainGolden(t *testing.T) {
	cfg := swanCfg()
	cfg.NumCPUs = 1
	sys := NewSystem(scaled(cfg, 8000))
	st := sys.Run(newGen(8000, 900, 11))
	got := st.Explain()

	golden := filepath.Join("testdata", "explain.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("Explain drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLedgerJSONRoundTrip: the cause-keyed MarshalJSON form must decode
// back into the identical ledger — the campaign journal replays recorded
// cells through this path and promises byte-identical aggregation.
func TestLedgerJSONRoundTrip(t *testing.T) {
	var l Ledger
	for c := Cause(0); c < NumCauses; c++ {
		l.RecordN(c, int(c)+3, uint64(c)*1000+17, sim.Time(int64(c)*7919+1))
		l.RecordN(c, 1, 40, sim.Time(int64(c)*7919+900))
	}
	b, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	var got Ledger
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != l {
		t.Fatalf("ledger changed across JSON round trip:\n%+v\nvs\n%+v", got, l)
	}

	// A real run's full Stats must round-trip too (ledger, gauges,
	// per-CPU busy arrays — everything aggregation reads).
	sys := NewSystem(scaled(swanCfg(), 6000))
	st := sys.Run(newGen(6000, 900, 3))
	sb, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 Stats
	if err := json.Unmarshal(sb, &st2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("Stats changed across JSON round trip:\n%+v\nvs\n%+v", st, st2)
	}

	// Unknown causes must fail loudly, not silently drop packets.
	if err := json.Unmarshal([]byte(`{"no-such-cause":{"packets":1}}`), &got); err == nil {
		t.Fatal("unknown cause accepted")
	}
}
