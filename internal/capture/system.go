package capture

import (
	"fmt"

	"repro/internal/pktgen"
	"repro/internal/sim"
)

// Source produces the packet train a run consumes. *pktgen.Generator is
// the canonical implementation; core.Feed replays a train recorded once —
// the splitter semantics of Figure 3.1, where every sniffer sees the
// byte-identical input. Reset rewinds the source to the start of its
// train; Next returns packets in arrival order.
type Source interface {
	Reset()
	Next() (pktgen.Packet, bool)
}

// stack is the OS-specific half of the receive path.
type stack interface {
	// irqCost prices the interrupt-context work for one packet (beyond
	// the shared driver cost) and may precompute state passed to irqDone.
	irqCost(data []byte) (fixedNS, memBytes float64, aux any)
	// irqDone applies the interrupt-context state change when the task
	// completes (enqueue, copy into buffers, wakeups, drops).
	irqDone(data []byte, aux any)
	// appStart kicks (or resumes) an application's read loop.
	appStart(a *App)
	// pending reports whether the stack still holds undelivered packets.
	pending() bool
	// dropStats returns per-application buffer drops and (Linux) input
	// queue drops.
	dropStats() (perApp []uint64, queue uint64)
	// reset clears all per-run state so the System can run another train.
	reset()
	// remnants inventories the packets still queued inside the stack when
	// a run is truncated: shared queues (before the per-app fan-out) and
	// the per-application buffers.
	remnants() (shared []kpkt, perApp [][]kpkt)
}

// appState tracks what an application is doing.
type appState int

const (
	stIdle appState = iota // no data; will be woken by the stack
	stRunning
	stWaitingRead // FreeBSD: blocked in read() on /dev/bpf
	stBlockedDisk
	stBlockedPipe
	stBlockedWorkers
)

// System is one sniffer under test: architecture, OS stack, applications,
// disk, and its own simulator instance. Each of the four thesis machines
// is one System fed the identical generated packet train (the optical
// splitter guarantees identical input; separate simulator instances
// guarantee independence).
type System struct {
	Config

	Sim     *sim.Sim
	Machine *sim.Machine
	NIC     *NIC    // legacy single-queue NIC (nil on the modern stacks)
	rss     *rssNIC // RSS multi-queue NIC (nil on the legacy stacks)
	Disk    *Disk

	stack stack
	apps  []*App

	running   bool
	genDone   bool
	genEnd    sim.Time
	runStart  sim.Time // Sim.Now() when the current run began
	truncated bool     // the run hit the safety cap with packets in flight

	// Per-CPU, per-priority busy counters bracketing the generation window
	// (cpusage semantics, §5): snapshot at run start, delta at genEnd.
	busyAtStart  [][sim.NumPrio]sim.Time
	busyAtGenEnd [][sim.NumPrio]sim.Time

	// Drop-cause accounting for the current run.
	ledger Ledger
	gauges []*Gauge

	// Timestamp-accuracy accounting (see NIC.stamp).
	tsStamped uint64
	tsErrSum  sim.Time
	tsErrMax  sim.Time
	tsTies    uint64
}

// newGauge registers an occupancy gauge for one finite buffer. idx >= 0
// tags per-application buffers when several applications are attached.
func (s *System) newGauge(name string, idx, capacity int) *Gauge {
	if idx >= 0 && s.NumApps > 1 {
		name = fmt.Sprintf("%s[%d]", name, idx)
	}
	g := &Gauge{Name: name, Capacity: capacity}
	s.gauges = append(s.gauges, g)
	return g
}

// recordDrop books one lost packet; ledger timestamps are relative to the
// run start so repeated runs of one System produce identical ledgers.
func (s *System) recordDrop(c Cause, bytes int) {
	s.ledger.Record(c, bytes, s.Sim.Now()-s.runStart)
}

// NewSystem assembles a system from its configuration.
func NewSystem(cfg Config) *System {
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 2
	}
	if cfg.KernelCostFactor <= 0 {
		cfg.KernelCostFactor = 1.0
	}
	if cfg.Snaplen <= 0 {
		cfg.Snaplen = 1515 // tcpdump -s 1515, §6.3.4
	}
	if cfg.NumApps <= 0 {
		cfg.NumApps = 1
	}
	if cfg.BufferBytes <= 0 {
		if cfg.OS == Linux {
			cfg.BufferBytes = DefaultLinuxRcvbuf
		} else {
			cfg.BufferBytes = DefaultBSDBuffer
		}
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.Hyperthreading && !cfg.Arch.HasHyperthreading {
		cfg.Hyperthreading = false
	}
	if cfg.DiskQueueBytes <= 0 {
		cfg.DiskQueueBytes = 32 << 20
	}

	s := &System{Config: cfg, Sim: sim.New()}
	ncpu := cfg.NumCPUs
	if cfg.Hyperthreading {
		ncpu *= 2
	}
	s.Machine = sim.NewMachine(s.Sim, ncpu, cfg.Hyperthreading)
	s.Machine.MemContention = cfg.Arch.MemContention
	if cfg.Hyperthreading {
		s.Machine.HTSlowdown = cfg.Arch.HTSlowdown
	}
	if cfg.Stack == StackLegacy {
		s.NIC = &NIC{sys: s}
		s.NIC.gauge = s.newGauge("nic-ring", -1, s.Costs.RingSlots)
	} else {
		// Clamp the ring count to the CPUs that can service them; poll
		// mode additionally keeps at least one core free of PMD spin
		// loops so application work can run.
		rings := cfg.RXRings
		if rings <= 0 || rings > ncpu {
			rings = ncpu
		}
		if cfg.Stack == StackPoll && rings >= ncpu && ncpu > 1 {
			rings = ncpu - 1
		}
		s.RXRings = rings
		s.rss = newRSSNIC(s, rings)
	}
	s.Disk = &Disk{sys: s, MaxQueue: cfg.DiskQueueBytes}
	s.Disk.gauge = s.newGauge("disk-queue", -1, cfg.DiskQueueBytes)

	for i := 0; i < cfg.NumApps; i++ {
		s.apps = append(s.apps, newApp(s, i))
	}
	switch {
	case cfg.Stack == StackRSS:
		st := newRSSStack(s, s.RXRings)
		s.stack = st
		s.rss.kick = st
	case cfg.Stack == StackPoll:
		s.stack = newPollStack(s, s.RXRings)
	case cfg.Stack == StackZeroCopy:
		st := newXDPStack(s, s.RXRings)
		s.stack = st
		s.rss.kick = st
	case cfg.OS == Linux:
		s.stack = newLinuxStack(s)
	case cfg.OS == FreeBSD:
		s.stack = newBSDStack(s)
	default:
		panic(fmt.Sprintf("capture: unknown OS %d", cfg.OS))
	}
	return s
}

// kfixed scales a fixed kernel cost by architecture and system friction.
func (s *System) kfixed(ns float64) float64 {
	return ns * s.Arch.FixedCost * s.KernelCostFactor
}

// kmemNs is the per-byte cost of kernel-context copies.
func (s *System) kmemNs() float64 {
	return s.Arch.MemNsPerByte * s.KernelCostFactor
}

// umemNs is the per-byte cost of user-context copies.
func (s *System) umemNs() float64 { return s.Arch.MemNsPerByte }

// ufixed scales a fixed application-side cost by the architecture.
func (s *System) ufixed(ns float64) float64 { return ns * s.Arch.FixedCost }

func (s *System) cpu0() *sim.CPU { return s.Machine.CPUs[0] }

// caplen applies the snap length to a frame.
func (s *System) caplen(n int) int {
	if n > s.Snaplen {
		return s.Snaplen
	}
	return n
}

// runFilter executes the configured filter for one packet and returns the
// capture length (0 = rejected) and the filtering cost in ns.
func (s *System) runFilter(data []byte) (caplen int, costNS float64) {
	if s.Filter == nil {
		return s.caplen(len(data)), 0
	}
	res, err := s.Filter.Run(data)
	if err != nil {
		return 0, float64(res.Instructions) * s.Costs.FilterPerInstrNS
	}
	cost := float64(res.Instructions) * s.Costs.FilterPerInstrNS
	if res.Accept == 0 {
		return 0, cost
	}
	n := int(res.Accept)
	if n > len(data) {
		n = len(data)
	}
	return s.caplen(n), cost
}

// startHousekeeping arms the periodic kernel-housekeeping tasks.
func (s *System) startHousekeeping() {
	if s.Costs.HousekeepNS <= 0 || s.Costs.HousekeepPeriodNS <= 0 {
		return
	}
	for i, cpu := range s.Machine.CPUs {
		cpu := cpu
		// Stagger across CPUs so both are never stalled at once.
		offset := sim.Time(s.Costs.HousekeepPeriodNS * float64(i+1) / float64(len(s.Machine.CPUs)+1))
		var arm func()
		arm = func() {
			if !s.running {
				return
			}
			cpu.Submit(&sim.Task{
				Name:    "housekeeping",
				Prio:    sim.PrioKernel,
				FixedNS: s.Costs.HousekeepNS,
				OnDone:  func() {},
			})
			s.Sim.After(sim.Time(s.Costs.HousekeepPeriodNS), arm)
		}
		s.Sim.At(s.Sim.Now()+offset, arm)
	}
}

// quiescent reports whether all packets in flight have been fully handled.
func (s *System) quiescent() bool {
	if s.rss != nil {
		if !s.rss.idle() || s.stack.pending() {
			return false
		}
	} else if len(s.NIC.ring) > 0 || s.NIC.irqActive || s.stack.pending() {
		return false
	}
	for _, a := range s.apps {
		if a.state == stRunning || a.state == stBlockedDisk ||
			a.state == stBlockedPipe || a.state == stBlockedWorkers {
			return false
		}
		if a.pipe != nil && (a.pipe.buf > 0 || a.pipe.busy) {
			return false
		}
	}
	return true
}

// RunWithArrivals is Run with the generator's pacing replaced by explicit
// inter-arrival gaps (nanoseconds): packet i arrives at the cumulative sum
// of gaps[:i+1]. Used for the self-similar-arrivals extension experiment.
func (s *System) RunWithArrivals(gen *pktgen.Generator, gapsNS []int64) Stats {
	return s.run(gen, gapsNS)
}

// Run feeds the generator's packet train into the NIC, lets the system
// drain completely (the thesis stops the capturing applications only after
// generation has finished and everything buffered has been read), and
// returns the run statistics.
func (s *System) Run(gen *pktgen.Generator) Stats {
	return s.RunSource(gen)
}

// RunSource is Run for any packet source, e.g. a recorded splitter feed
// replayed into several systems.
func (s *System) RunSource(src Source) Stats {
	return s.run(src, nil)
}

// resetRun clears every per-run counter and state machine so that a System
// can be reused for another train: the busy-counter baseline is
// re-snapshotted (cpu.Busy is cumulative), the ledger, gauges, NIC, stack,
// disk and application state all start fresh.
func (s *System) resetRun() {
	s.genDone = false
	s.truncated = false
	s.runStart = s.Sim.Now()
	s.genEnd = 0
	s.ledger = Ledger{}
	for _, g := range s.gauges {
		g.reset()
	}
	if s.rss != nil {
		s.rss.reset()
	} else {
		s.NIC.reset()
	}
	s.stack.reset()
	s.Disk.reset()
	for _, a := range s.apps {
		a.reset()
	}
	s.tsStamped, s.tsErrSum, s.tsErrMax, s.tsTies = 0, 0, 0, 0
	ncpu := len(s.Machine.CPUs)
	if s.busyAtStart == nil {
		s.busyAtStart = make([][sim.NumPrio]sim.Time, ncpu)
		s.busyAtGenEnd = make([][sim.NumPrio]sim.Time, ncpu)
	}
	for i, cpu := range s.Machine.CPUs {
		for p := sim.Prio(0); p < sim.NumPrio; p++ {
			s.busyAtStart[i][p] = cpu.Busy(p)
			s.busyAtGenEnd[i][p] = 0
		}
	}
}

// run executes one measurement. gapsNS, when non-nil, replaces the train's
// own pacing with explicit inter-arrival gaps; the gap index is local to
// this call, so a reused System starts its gap sequence from the beginning.
func (s *System) run(src Source, gapsNS []int64) Stats {
	src.Reset()
	s.resetRun()
	gi := 0
	arrivalAt := func(p pktgen.Packet) sim.Time {
		if gapsNS == nil {
			return p.At
		}
		var at sim.Time
		if gi < len(gapsNS) {
			at = s.Sim.Now() + sim.Time(gapsNS[gi])
		} else {
			at = p.At
		}
		gi++
		if at <= s.Sim.Now() {
			at = s.Sim.Now() + 1
		}
		return at
	}
	s.running = true
	s.startHousekeeping()
	// The applications open their capture sessions and enter their first
	// read before generation starts (measurement cycle step 1, §3.4).
	for _, a := range s.apps {
		s.stack.appStart(a)
	}
	// A poll-mode stack spins up its PMD loops for the duration of the run.
	if st, ok := s.stack.(interface{ start() }); ok {
		st.start()
	}

	var sent uint64
	var feed func()
	feed = func() {
		p, ok := src.Next()
		if !ok {
			s.genDone = true
			s.genEnd = s.Sim.Now()
			// CPU usage is reported over the generation window, like
			// cpusage bracketing the measurement (§5): snapshot the busy
			// counters the moment the last packet has arrived.
			for i, cpu := range s.Machine.CPUs {
				for p := sim.Prio(0); p < sim.NumPrio; p++ {
					s.busyAtGenEnd[i][p] = cpu.Busy(p) - s.busyAtStart[i][p]
				}
			}
			return
		}
		sent++
		s.Sim.At(arrivalAt(p), func() {
			s.arrive(p.Data)
			feed()
		})
	}
	feed()

	// Advance in windows; stop once generation has ended and the system is
	// quiescent. The safety cap bounds runaway configurations (a fully
	// livelocked system drains slowly but the backlog is finite, so this
	// generously covers real runs).
	const window = 250 * sim.Millisecond
	limit := s.Sim.Now() + window
	for {
		s.Sim.RunUntil(limit)
		if s.genDone && s.quiescent() {
			break
		}
		limit += window
		if limit > s.genEnd+600*sim.Second && s.genDone {
			// Safety cap: a livelocked configuration would take longer to
			// drain than any real run. Mark the truncation and book the
			// packets still in flight instead of letting them drain (which
			// would misreport a stuck system as capturing) or silently
			// vanish.
			s.truncated = true
			break
		}
	}
	s.running = false
	if s.truncated {
		s.recordRemnants()
		st := s.collectStats(sent)
		// Flush the abandoned events after the books are closed, so the
		// simulator is clean for a potential next run.
		s.Sim.Run()
		return st
	}
	// Let any residual events (cancelled housekeeping re-arms) run out.
	s.Sim.Run()

	return s.collectStats(sent)
}

// recordRemnants books every packet still in flight at truncation time
// under CauseAbandoned: packets in shared queues (NIC ring, in-interrupt,
// Linux backlog and softirq batch) are lost to every application, so they
// are weighted by the application count; packets in per-application
// buffers or unfinished read batches count once.
func (s *System) recordRemnants() {
	now := s.Sim.Now() - s.runStart
	napps := len(s.apps)

	sharedPkts := 0
	var sharedBytes uint64
	count := func(p kpkt) {
		sharedPkts++
		sharedBytes += uint64(len(p.data))
	}
	if s.rss != nil {
		p, b := s.rss.remnants()
		sharedPkts += p
		sharedBytes += b
	} else {
		if s.NIC.inflight != nil {
			count(*s.NIC.inflight)
		}
		for _, p := range s.NIC.ring {
			count(p)
		}
	}
	shared, perApp := s.stack.remnants()
	for _, p := range shared {
		count(p)
	}
	s.ledger.RecordN(CauseAbandoned, sharedPkts*napps, sharedBytes*uint64(napps), now)

	for _, pkts := range perApp {
		var bytes uint64
		for _, p := range pkts {
			bytes += uint64(p.caplen)
		}
		s.ledger.RecordN(CauseAbandoned, len(pkts), bytes, now)
	}
	for _, a := range s.apps {
		s.ledger.RecordN(CauseAbandoned, a.inflightPkts, a.inflightBytes, now)
	}
}

func (s *System) collectStats(generated uint64) Stats {
	st := Stats{
		Generated: generated,
		NICDrops:  s.nicDrops(),
		CPUCount:  len(s.Machine.CPUs),
	}
	st.WallTime = s.genEnd - s.runStart
	st.BusyByCPU = append([][sim.NumPrio]sim.Time(nil), s.busyAtGenEnd...)
	for _, by := range st.BusyByCPU {
		for p := sim.Prio(0); p < sim.NumPrio; p++ {
			st.BusyByCls[p] += by[p]
			st.BusyTime += by[p]
		}
	}
	st.Ledger = s.ledger
	st.Truncated = s.truncated
	st.Gauges = make([]GaugeStat, len(s.gauges))
	for i, g := range s.gauges {
		st.Gauges[i] = GaugeStat{Name: g.Name, Capacity: g.Capacity, HighWater: g.HighWater, Episodes: g.Episodes}
	}
	for _, a := range s.apps {
		st.AppCaptured = append(st.AppCaptured, a.Captured)
	}
	if s.Policy.Enabled() {
		st.PolicyName = s.Policy.String()
		for _, a := range s.apps {
			st.AppShed = append(st.AppShed, a.Shed)
		}
	}
	if s.Policy.Enabled() || s.CountFlows {
		for _, a := range s.apps {
			st.AppFlows = append(st.AppFlows, uint64(len(a.flowsKept)))
		}
	}
	st.AppDrops, st.QueueDrops = s.stack.dropStats()
	st.Stamped, st.TsErrSum, st.TsErrMax, st.TsTies = s.tsStamped, s.tsErrSum, s.tsErrMax, s.tsTies
	return st
}

// arrive hands one wire-complete frame to whichever NIC the system has.
func (s *System) arrive(data []byte) {
	if s.rss != nil {
		s.rss.Arrive(data)
		return
	}
	s.NIC.Arrive(data)
}

// nicDrops is the aggregate NIC-level drop count of whichever NIC the
// system has.
func (s *System) nicDrops() uint64 {
	if s.rss != nil {
		return s.rss.Drops
	}
	return s.NIC.Drops
}

// RingDelivered exposes the per-ring delivery counts of the RSS NIC (nil
// on legacy systems); RSS determinism tests compare these across runs.
func (s *System) RingDelivered() []uint64 {
	if s.rss == nil {
		return nil
	}
	return s.rss.RingDelivered()
}

// Done reports whether the generation phase of the current run has ended
// (profiling tools stop sampling at this point).
func (s *System) Done() bool { return s.genDone }

// Apps exposes the applications (read-only use in tests and experiments).
func (s *System) Apps() []*App { return s.apps }
