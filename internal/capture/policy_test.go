package capture

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/flows"
	"repro/internal/pktgen"
)

// TestParsePolicyRoundTrip: every accepted spec string round-trips through
// String() back to an equivalent spec, and malformed specs are rejected
// with an error instead of a silent default.
func TestParsePolicyRoundTrip(t *testing.T) {
	for _, in := range []string{"none", "uniform:1", "uniform:4", "flow:16", "adaptive", "adaptive:0.7"} {
		spec, err := ParsePolicy(in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", in, err)
		}
		if got := spec.String(); got != in {
			t.Errorf("ParsePolicy(%q).String() = %q", in, got)
		}
		again, err := ParsePolicy(spec.String())
		if err != nil || again != spec {
			t.Errorf("round trip of %q: %+v vs %+v (err %v)", in, again, spec, err)
		}
	}
	if spec, err := ParsePolicy(""); err != nil || spec.Enabled() {
		t.Errorf("empty policy = %+v, err %v; want disabled, nil", spec, err)
	}
	for _, bad := range []string{"uniform", "uniform:0", "uniform:-1", "uniform:x",
		"flow", "flow:0", "adaptive:0", "adaptive:1", "adaptive:nan", "none:3", "rand:2", "bogus"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted, want error", bad)
		}
	}
}

// TestPolicyCauses: each enabled policy books under its own distinct shed
// cause; the causes are per-application (not shared), render their wire
// names, and report Shed() — the property the conservation check and the
// "shed != lost" accounting rest on.
func TestPolicyCauses(t *testing.T) {
	names := map[Cause]string{
		CauseShedUniform:  "shed-uniform",
		CauseShedFlow:     "shed-flow",
		CauseShedAdaptive: "shed-adaptive",
	}
	seen := map[Cause]bool{}
	for _, in := range []string{"uniform:4", "flow:4", "adaptive"} {
		spec, err := ParsePolicy(in)
		if err != nil {
			t.Fatal(err)
		}
		c := spec.Cause()
		if seen[c] {
			t.Errorf("policy %q shares a cause with another policy", in)
		}
		seen[c] = true
		if c.String() != names[c] {
			t.Errorf("cause %d renders %q, want %q", c, c.String(), names[c])
		}
		if c.Shared() {
			t.Errorf("%s must be per-app, not shared", c)
		}
		if !c.Shed() {
			t.Errorf("%s.Shed() = false", c)
		}
	}
	if CauseRcvbuf.Shed() || CauseBacklog.Shed() {
		t.Error("loss causes report Shed() = true")
	}
}

// TestUniformSamplerExactRatio: the count-based sampler keeps exactly the
// first of every N consecutive packets, independent of read-batch
// boundaries (the counter lives in the sampler, not the batch loop).
func TestUniformSamplerExactRatio(t *testing.T) {
	s := PolicySpec{Kind: PolicyUniform, N: 4}.newSampler()
	kept := 0
	for i := 0; i < 1000; i++ {
		if s.admit(nil) {
			if i%4 != 0 {
				t.Fatalf("packet %d admitted, want only multiples of 4", i)
			}
			kept++
		}
	}
	if kept != 250 {
		t.Fatalf("kept %d of 1000, want exactly 250", kept)
	}
	s.reset()
	if !s.admit(nil) {
		t.Fatal("after reset the first packet must be admitted")
	}
}

// TestFlowSamplerWholeFlows: the flow sampler's decisions are a pure
// function of the 5-tuple — every packet of a kept flow is admitted and
// every packet of a shed flow declined, with non-IP frames always kept.
func TestFlowSamplerWholeFlows(t *testing.T) {
	g := pktgen.New(3)
	g.Config.Count = 4000
	g.Config.UDPSrcPortCount = 32
	s := PolicySpec{Kind: PolicyFlow, N: 4}.newSampler()
	verdict := map[flows.Key]bool{}
	keptFlows := 0
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		admit := s.admit(p.Data)
		k, isIP := flows.KeyOf(p.Data)
		if !isIP {
			if !admit {
				t.Fatal("non-IP frame shed; frames without a flow identity must pass")
			}
			continue
		}
		if prev, seen := verdict[k]; seen {
			if prev != admit {
				t.Fatalf("flow %v got split: earlier admit=%v, now %v", k, prev, admit)
			}
			continue
		}
		verdict[k] = admit
		if admit {
			keptFlows++
		}
	}
	if len(verdict) != 32 {
		t.Fatalf("train carried %d distinct flows, want 32", len(verdict))
	}
	if keptFlows == 0 || keptFlows == len(verdict) {
		t.Fatalf("flow:4 kept %d of %d flows; want a strict subset", keptFlows, len(verdict))
	}
}

// TestAdaptiveSamplerControl: the controller's keep rate stays within
// [floor, 1], converges to the floor under sustained overload, recovers to
// full capture when the queues drain, and dispenses admissions at the keep
// rate via the deterministic credit accumulator.
func TestAdaptiveSamplerControl(t *testing.T) {
	a := PolicySpec{Kind: PolicyAdaptive}.newSampler().(*adaptiveSampler)
	if a.keep != 1 {
		t.Fatalf("fresh controller keep = %v, want 1 (capture everything until pressure)", a.keep)
	}
	for i := 0; i < 200; i++ {
		a.observe(1.0)
		if a.keep < a.floor-1e-12 || a.keep > 1 {
			t.Fatalf("keep %v outside [floor=%v, 1]", a.keep, a.floor)
		}
	}
	if math.Abs(a.keep-a.floor) > 1e-12 {
		t.Fatalf("sustained overload: keep = %v, want floor %v", a.keep, a.floor)
	}
	// Even at the floor a trickle gets through (graceful degradation).
	admitted := 0
	for i := 0; i < 1000; i++ {
		if a.admit(nil) {
			admitted++
		}
	}
	if want := int(1000 * a.floor); admitted < want-1 || admitted > want+1 {
		t.Fatalf("at floor %v: admitted %d of 1000, want ≈%d", a.floor, admitted, want)
	}
	for i := 0; i < 200; i++ {
		a.observe(0.0)
	}
	if a.keep != 1 {
		t.Fatalf("after queues drained: keep = %v, want full recovery to 1", a.keep)
	}
	// Credit dispensing at keep=0.5 admits exactly every other packet.
	a.observe(a.target) // zero error: keep unchanged
	a.keep, a.credit = 0.5, 0
	pat := ""
	for i := 0; i < 6; i++ {
		if a.admit(nil) {
			pat += "1"
		} else {
			pat += "0"
		}
	}
	if pat != "010101" {
		t.Fatalf("keep=0.5 admission pattern %q, want alternating 010101", pat)
	}
}

// TestFairnessIndex: Jain's index over per-app capture counts, pinned on
// the starvation shapes — including the all-zero 0/0 edge that must be
// defined as 1.0, never NaN or Inf.
func TestFairnessIndex(t *testing.T) {
	cases := []struct {
		name string
		in   []uint64
		want float64
	}{
		{"no apps", nil, 1},
		{"single app", []uint64{500}, 1},
		{"equal shares", []uint64{100, 100, 100, 100}, 1},
		{"all starved (0/0)", []uint64{0, 0, 0, 0}, 1},
		{"one app starved", []uint64{0, 100, 100, 100}, 0.75},
		{"all but one starved", []uint64{100, 0, 0, 0}, 0.25},
		{"mild skew", []uint64{90, 100, 110, 100}, 4 * 400 * 400 / (4 * 4 * (8100.0 + 10000 + 12100 + 10000))},
	}
	for _, c := range cases {
		got := FairnessIndex(c.in)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s: FairnessIndex = %v", c.name, got)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: FairnessIndex = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestPolicyConservationMatrix: for each policy crossed with both
// capturing stacks and several application counts, the run books a
// nonzero amount under exactly that policy's shed cause, the other shed
// causes stay zero, the per-app AppShed counters agree with the ledger,
// and the conservation identity holds — shed is accounted, not lost.
func TestPolicyConservationMatrix(t *testing.T) {
	for _, base := range []Config{swanCfg(), moorhenCfg()} {
		for _, pol := range []string{"uniform:4", "flow:4", "adaptive"} {
			for _, napps := range []int{1, 3} {
				base, pol, napps := base, pol, napps
				t.Run(fmt.Sprintf("%s-%s-%dapp", base.Name, pol, napps), func(t *testing.T) {
					t.Parallel()
					spec, err := ParsePolicy(pol)
					if err != nil {
						t.Fatal(err)
					}
					cfg := base
					cfg.NumCPUs = 2
					cfg.NumApps = napps
					cfg.Policy = spec
					cfg.Load.MemcpyCount = 50 // pressure, so adaptive engages
					sys := NewSystem(scaled(cfg, 6000))
					g := newGen(6000, 900, 11)
					g.Config.UDPSrcPortCount = 32
					st := sys.Run(g)

					if err := st.CheckConservation(); err != nil {
						t.Fatal(err)
					}
					if st.Ledger.Drops[spec.Cause()].Packets == 0 {
						t.Fatalf("no packets booked under %s", spec.Cause())
					}
					for _, c := range ShedCauses {
						if c != spec.Cause() && st.Ledger.Drops[c].Packets != 0 {
							t.Fatalf("%s booked %d packets under foreign cause %s",
								pol, st.Ledger.Drops[c].Packets, c)
						}
					}
					var appShed uint64
					for _, s := range st.AppShed {
						appShed += s
					}
					if appShed != st.Ledger.ShedPackets() {
						t.Fatalf("Σ AppShed %d != ledger shed %d", appShed, st.Ledger.ShedPackets())
					}
					if len(st.AppShed) != napps || len(st.AppFlows) != napps {
						t.Fatalf("AppShed/AppFlows lengths %d/%d, want %d",
							len(st.AppShed), len(st.AppFlows), napps)
					}
					if st.PolicyName != spec.String() {
						t.Fatalf("PolicyName = %q, want %q", st.PolicyName, spec.String())
					}
				})
			}
		}
	}
}

// TestPolicyShedPlusFaultLossConserves: deliberate shedding composes with
// injected fault losses — the chaos path books shared fault causes on top
// of the per-app shed causes and the books still balance.
func TestPolicyShedPlusFaultLossConserves(t *testing.T) {
	cfg := moorhenCfg()
	cfg.NumApps = 2
	cfg.Policy = PolicySpec{Kind: PolicyUniform, N: 4}
	sys := NewSystem(scaled(cfg, 3000))
	st := sys.Run(newGen(2900, 400, 3)) // 100 frames short of the "switch count"
	if st.Ledger.Drops[CauseShedUniform].Packets == 0 {
		t.Fatal("uniform policy shed nothing")
	}
	st.BookFaultLoss(CauseFaultSplitter, 100, 64000, 12345)
	if err := st.CheckConservation(); err != nil {
		t.Fatalf("conservation with shed + fault loss: %v", err)
	}
}

// TestPolicyDeterminism: a policed run is as deterministic as an
// unpoliced one — identical config and seed give identical Stats,
// including the shed bookkeeping.
func TestPolicyDeterminism(t *testing.T) {
	for _, pol := range []string{"uniform:4", "flow:4", "adaptive"} {
		spec, err := ParsePolicy(pol)
		if err != nil {
			t.Fatal(err)
		}
		cfg := swanCfg()
		cfg.NumCPUs = 2
		cfg.NumApps = 2
		cfg.Policy = spec
		run := func() Stats {
			sys := NewSystem(scaled(cfg, 5000))
			g := newGen(5000, 900, 7)
			g.Config.UDPSrcPortCount = 16
			return sys.Run(g)
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: repeated run diverged:\n%+v\nvs\n%+v", pol, a, b)
		}
	}
}

// TestPolicyOffIsByteIdenticalStats: the zero PolicySpec leaves Stats
// exactly as an unpoliced build produces them — no AppShed/AppFlows
// slices, no PolicyName, no shed causes — which is what keeps every
// golden output byte-identical with policies off.
func TestPolicyOffIsByteIdenticalStats(t *testing.T) {
	sys := NewSystem(scaled(swanCfg(), 5000))
	st := sys.Run(newGen(5000, 900, 7))
	if st.AppShed != nil || st.AppFlows != nil || st.PolicyName != "" {
		t.Fatalf("unpoliced run carries policy fields: AppShed=%v AppFlows=%v PolicyName=%q",
			st.AppShed, st.AppFlows, st.PolicyName)
	}
	if n := st.Ledger.ShedPackets(); n != 0 {
		t.Fatalf("unpoliced run shed %d packets", n)
	}
}

// TestCountFlowsWithoutPolicy: flow accounting is available to unpoliced
// runs via CountFlows (the shedding experiment's baseline column) without
// disturbing anything else.
func TestCountFlowsWithoutPolicy(t *testing.T) {
	cfg := moorhenCfg()
	cfg.CountFlows = true
	sys := NewSystem(scaled(cfg, 3000))
	g := newGen(3000, 200, 5)
	g.Config.UDPSrcPortCount = 16
	st := sys.Run(g)
	if len(st.AppFlows) != 1 || st.AppFlows[0] != 16 {
		t.Fatalf("AppFlows = %v, want one app having seen all 16 flows", st.AppFlows)
	}
	if st.AppShed != nil || st.PolicyName != "" {
		t.Fatalf("CountFlows leaked policy fields: %+v", st)
	}
	if err := st.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
