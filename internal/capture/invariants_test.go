package capture

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// TestScenarioMatrix runs a grid of configurations and checks, for every
// cell: determinism across two runs, packet conservation through every
// queue, and fully drained buffers at the end.
func TestScenarioMatrix(t *testing.T) {
	type cell struct {
		os    OS
		cpus  int
		apps  int
		mmap  bool
		load  AppLoad
		label string
	}
	var cells []cell
	for _, os := range []OS{Linux, FreeBSD} {
		for _, cpus := range []int{1, 2} {
			for _, apps := range []int{1, 3} {
				cells = append(cells, cell{os, cpus, apps, false, AppLoad{},
					fmt.Sprintf("%v-%dcpu-%dapp", os, cpus, apps)})
			}
		}
	}
	cells = append(cells,
		cell{Linux, 2, 1, true, AppLoad{}, "linux-mmap"},
		cell{FreeBSD, 2, 1, true, AppLoad{}, "bsd-mmap"},
		cell{Linux, 2, 1, false, AppLoad{MemcpyCount: 25}, "linux-memcpy"},
		cell{FreeBSD, 2, 1, false, AppLoad{ZlibLevel: 3}, "bsd-zlib"},
		cell{FreeBSD, 2, 1, false, AppLoad{WriteSnapLen: 76}, "bsd-disk"},
		cell{Linux, 2, 1, false, AppLoad{Workers: 2, ZlibLevel: 3}, "linux-workers"},
		cell{FreeBSD, 2, 1, false, AppLoad{FlowTrack: true}, "bsd-flows"},
	)
	for _, c := range cells {
		c := c
		t.Run(c.label, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Name: c.label, Arch: arch.Opteron244(), OS: c.os,
				NumCPUs: c.cpus, NumApps: c.apps, MmapPatch: c.mmap,
				BufferBytes: 2 << 20, Load: c.load}
			run1 := runMatrix(t, cfg)
			run2 := runMatrix(t, cfg)
			if run1.capturedSum != run2.capturedSum || run1.busy != run2.busy {
				t.Fatalf("nondeterministic: %+v vs %+v", run1, run2)
			}
		})
	}
}

type matrixResult struct {
	capturedSum uint64
	busy        sim.Time
}

func runMatrix(t *testing.T, cfg Config) matrixResult {
	t.Helper()
	cfg.Costs = DefaultCosts()
	cfg.Costs.HousekeepNS *= 0.01
	cfg.Costs.HousekeepPeriodNS *= 0.01
	cfg.Costs.TimesliceNS *= 0.01
	cfg.Costs.ReadTimeoutNS *= 0.01
	cfg.Costs.WorkerQueueBytes = 128 << 10
	cfg.DiskQueueBytes = 512 << 10
	sys := NewSystem(cfg)
	st := sys.Run(newGen(6000, 900, 42))

	// Conservation and drained-buffer invariants.
	switch stk := sys.stack.(type) {
	case *linuxStack:
		var enq, drops uint64
		for _, sk := range stk.socks {
			enq += sk.Enqueued
			drops += sk.Drops
			if sk.bytes < 0 {
				t.Fatalf("negative rcvbuf accounting: %d", sk.bytes)
			}
			if len(sk.queue) != 0 {
				t.Fatalf("socket not drained: %d packets", len(sk.queue))
			}
		}
		napps := uint64(len(stk.socks))
		delivered := (sys.NIC.Delivered - st.QueueDrops) * napps
		if enq+drops != delivered {
			t.Fatalf("conservation: enq %d + drops %d != delivered %d", enq, drops, delivered)
		}
		var captured uint64
		for _, c := range st.AppCaptured {
			captured += c
		}
		if captured != enq {
			t.Fatalf("captured %d != enqueued %d after drain", captured, enq)
		}
	case *bsdStack:
		var stored, drops, captured uint64
		for i, att := range stk.atts {
			stored += att.Stored
			drops += att.Drops
			captured += st.AppCaptured[i]
			if att.store.bytes != 0 || att.ready {
				t.Fatalf("attachment %d not drained", i)
			}
		}
		if stored+drops != sys.NIC.Delivered*uint64(len(stk.atts)) {
			t.Fatalf("conservation: stored %d + drops %d != delivered %d × %d apps",
				stored, drops, sys.NIC.Delivered, len(stk.atts))
		}
		if captured != stored {
			t.Fatalf("captured %d != stored %d after drain", captured, stored)
		}
	}
	if st.NICDrops+sys.NIC.Delivered != st.Generated {
		t.Fatalf("NIC conservation: %d + %d != %d", st.NICDrops, sys.NIC.Delivered, st.Generated)
	}

	var capturedSum uint64
	for _, c := range st.AppCaptured {
		capturedSum += c
	}
	return matrixResult{capturedSum, st.BusyTime}
}

// TestBufferBoundNeverExceeded samples the kernel buffers during a
// saturating run and asserts they never exceed their configured budgets.
func TestBufferBoundNeverExceeded(t *testing.T) {
	for _, os := range []OS{Linux, FreeBSD} {
		cfg := Config{Name: "t", Arch: arch.Xeon306(), OS: os,
			NumCPUs: 1, BufferBytes: 256 << 10}
		cfg.Costs = DefaultCosts()
		cfg.Costs.HousekeepNS = 0
		cfg.Load.ZlibLevel = 6 // guarantee overload
		sys := NewSystem(cfg)
		violations := 0
		var tick func()
		tick = func() {
			switch stk := sys.stack.(type) {
			case *linuxStack:
				for _, sk := range stk.socks {
					if sk.bytes < 0 || sk.bytes > cfg.BufferBytes+2048 {
						violations++
					}
				}
			case *bsdStack:
				for _, att := range stk.atts {
					if att.store.bytes > cfg.BufferBytes || att.hold.bytes > cfg.BufferBytes {
						violations++
					}
				}
			}
			if !sys.Done() {
				sys.Sim.After(sim.Millisecond, tick)
			}
		}
		sys.Sim.After(sim.Millisecond, tick)
		sys.Run(newGen(8000, 950, 7))
		if violations > 0 {
			t.Fatalf("%v: %d buffer bound violations", os, violations)
		}
	}
}

// TestSmallerSnaplenRelievesBufferPressure pins that truncating captures
// stretches a tight buffer further (more packets fit per buffer).
func TestSmallerSnaplenRelievesBufferPressure(t *testing.T) {
	base := Config{Name: "t", Arch: arch.Opteron244(), OS: FreeBSD,
		NumCPUs: 1, BufferBytes: 64 << 10}
	base.Costs = DefaultCosts()
	base.Load.MemcpyCount = 40 // slow the reader so buffers matter
	full := base
	full.Snaplen = 1515
	sysF := NewSystem(full)
	stF := sysF.Run(newGen(10000, 900, 3))
	trunc := base
	trunc.Snaplen = 96
	sysT := NewSystem(trunc)
	stT := sysT.Run(newGen(10000, 900, 3))
	if stT.CaptureRate() <= stF.CaptureRate() {
		t.Fatalf("snaplen 96 captured %.2f%%, full %.2f%%: truncation should help",
			stT.CaptureRate(), stF.CaptureRate())
	}
}

// TestBSDReadTimeoutDeliversAtLowRate pins that a trickle of packets still
// reaches the application promptly via the read timeout, long before the
// double buffer would ever fill.
func TestBSDReadTimeoutDeliversAtLowRate(t *testing.T) {
	cfg := Config{Name: "t", Arch: arch.Opteron244(), OS: FreeBSD,
		NumCPUs: 2, BufferBytes: 4 << 20}
	cfg.Costs = DefaultCosts()
	cfg.Costs.ReadTimeoutNS = 1e6 // 1 ms
	sys := NewSystem(cfg)
	g := newGen(200, 5, 1) // 5 Mbit/s trickle
	st := sys.Run(g)
	if st.AppCaptured[0] != 200 {
		t.Fatalf("captured %d of 200 at trickle rate", st.AppCaptured[0])
	}
	// The hold buffer can never have filled: 200 × ~660 B ≪ 4 MB, so the
	// only way the app got them is rotation-on-read/timeout.
	bs := sys.stack.(*bsdStack)
	if bs.atts[0].Drops != 0 {
		t.Fatalf("drops at trickle rate: %d", bs.atts[0].Drops)
	}
}

// TestHousekeepingCausesDefaultBufferDrops is the unit-level version of
// the abl-housekeeping experiment: with the real (uncompressed) default
// buffer and stall durations, a 4 ms reader stall at 400 Mbit/s overflows
// the 128 kB receive buffer, while a stall-free run held it.
func TestHousekeepingCausesDefaultBufferDrops(t *testing.T) {
	base := Config{Name: "t", Arch: arch.Opteron244(), OS: Linux, NumCPUs: 1,
		BufferBytes: DefaultLinuxRcvbuf}
	base.Costs = DefaultCosts() // unscaled: real stall and buffer sizes
	sysA := NewSystem(base)
	with := sysA.Run(newGen(30000, 400, 5))
	noHK := base
	noHK.Costs.HousekeepNS = 0
	sysB := NewSystem(noHK)
	without := sysB.Run(newGen(30000, 400, 5))
	if with.CaptureRate() >= without.CaptureRate() {
		t.Fatalf("housekeeping did not hurt: %.2f%% vs %.2f%%",
			with.CaptureRate(), without.CaptureRate())
	}
	if without.CaptureRate() < 99.9 {
		t.Fatalf("without stalls the default buffer should hold at 400 Mbit/s: %.2f%%",
			without.CaptureRate())
	}
}
