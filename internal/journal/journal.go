// Package journal implements the durable campaign log behind
// `experiment -journal`: an append-only, fsync'd, CRC-framed NDJSON
// write-ahead log. Every completed measurement cell is appended as one
// frame before its result is used, so a campaign interrupted by a signal
// or a crash of the control host can be resumed from the journal and
// still produce byte-identical output.
//
// # Frame format
//
// A journal is a sequence of newline-terminated frames:
//
//	cccccccc<SP><payload>\n
//
// where cccccccc is the IEEE CRC-32 of the payload as exactly eight
// lowercase hex digits, <SP> is one ASCII space, and <payload> is one
// JSON document with no raw newline (encoding/json never emits one).
// The first frame is the header
//
//	{"magic":"repro-journal","v":1,"fingerprint":"<hex>"}
//
// whose fingerprint binds the journal to one campaign configuration; a
// journal must never be replayed against a different one. Every frame
// after the header is an opaque record payload owned by the caller.
//
// # Recovery
//
// Recovery scans frames from the start and stops at the first frame that
// is torn (no trailing newline), misframed, or fails its CRC: the file is
// truncated at the last good frame boundary and everything before it is
// returned. A torn final record — the expected shape after a crash in
// mid-append — therefore costs exactly the frames from the tear onward,
// never the journal.
//
// # Storage faults
//
// All I/O goes through the faultfs.FS seam (CreateFS/ResumeFS/
// WriteFileAtomicFS; the plain functions use the real filesystem), so a
// chaos run can inject ENOSPC, EIO, short writes and crash points.
// Append is self-healing against transient storage faults: a failed or
// partial frame write is repaired by truncating back to the last good
// frame boundary, and the append is retried with bounded backoff —
// pause-and-retry, never a silently lost record. Only when the budget is
// exhausted (a genuinely dead disk) does Append fail, and it fails with
// the underlying typed error (errors.Is ENOSPC/EIO works) so callers can
// degrade deliberately.
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultfs"
)

// Magic identifies a journal header frame.
const Magic = "repro-journal"

// Version is the journal format version written into the header.
const Version = 1

// Header is the first frame of every journal.
type Header struct {
	Magic       string `json:"magic"`
	V           int    `json:"v"`
	Fingerprint string `json:"fingerprint"`
}

// ParseHeader decodes a journal header frame payload and validates its
// magic and version.
func ParseHeader(payload []byte) (Header, error) {
	var h Header
	if err := json.Unmarshal(payload, &h); err != nil || h.Magic != Magic {
		return Header{}, fmt.Errorf("journal: frame is not a journal header")
	}
	if h.V != Version {
		return Header{}, fmt.Errorf("journal: unsupported journal version %d", h.V)
	}
	return h, nil
}

// MismatchError reports a journal whose header fingerprint does not match
// the campaign configuration it is being replayed against. Resuming must
// refuse: the recorded cells belong to a different experiment setup.
type MismatchError struct {
	Path string
	Want string // fingerprint of the resuming configuration
	Got  string // fingerprint recorded in the journal header
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("journal: %s was recorded for a different configuration (journal fingerprint %.12s…, current %.12s…)",
		e.Path, e.Got, e.Want)
}

// Recovery is the result of replaying an existing journal.
type Recovery struct {
	// Fingerprint is the campaign fingerprint from the journal header.
	Fingerprint string
	// Records holds the recovered record payloads (header excluded), in
	// append order. Duplicate keys are the caller's concern: the WAL
	// contract is last-write-wins.
	Records [][]byte
	// Torn reports that the tail of the file was truncated at a torn or
	// corrupt frame; TornBytes is how many bytes were discarded.
	Torn      bool
	TornBytes int64
}

// Append-retry defaults: transient storage faults (ENOSPC, EIO, short
// writes) are repaired and retried with doubling backoff before Append
// gives up. The total pause is ~Σ delay·2^i ≈ 620 ms — long enough for
// a hiccuping disk, short enough that a dead one fails fast.
const (
	DefaultAppendRetries = 5
	DefaultRetryDelay    = 20 * time.Millisecond
)

// Journal is an open, appendable campaign journal. Append is safe for
// concurrent use: measurement workers record completed cells in parallel.
type Journal struct {
	mu   sync.Mutex
	f    faultfs.File
	fs   faultfs.FS
	path string
	// good is the byte offset of the last durable frame boundary: the
	// truncation point when a write fails partway through a frame.
	good int64
	// retries/retryDelay tune the transient-fault pause-and-retry;
	// SetRetry overrides, zero values mean the defaults.
	retries    int
	retryDelay time.Duration
	// onRetry, when set, observes every repaired-and-retried append.
	onRetry func(err error, attempt int)
}

// SetRetry tunes the transient-append retry budget (n < 0 disables
// retries entirely; delay 0 keeps the default backoff base).
func (j *Journal) SetRetry(n int, delay time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.retries = n
	j.retryDelay = delay
}

// OnRetry registers an observer of append repairs: fn runs after a
// failed frame write has been truncated away, before the retry.
func (j *Journal) OnRetry(fn func(err error, attempt int)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.onRetry = fn
}

// Create starts a fresh journal at path (truncating any previous one),
// writes the fsync'd header frame, and returns the open journal.
func Create(path, fingerprint string) (*Journal, error) {
	return CreateFS(faultfs.OS, path, fingerprint)
}

// CreateFS is Create through an injectable filesystem.
func CreateFS(fsys faultfs.FS, path, fingerprint string) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, fs: fsys, path: path}
	if err := j.appendHeader(fingerprint); err != nil {
		f.Close()
		return nil, err
	}
	// The directory entry of a fresh journal must be durable too; a
	// transient fsync fault here gets the same pause-and-retry treatment
	// as a failed append.
	if err := retryTransient(func() error { return syncDirFS(fsys, filepath.Dir(path)) }); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// retryTransient runs fn, pausing and retrying on transient storage
// faults (ENOSPC, EIO, short writes) with the append-retry budget.
func retryTransient(fn func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = fn(); err == nil || attempt >= DefaultAppendRetries || !faultfs.IsTransient(err) {
			return err
		}
		time.Sleep(DefaultRetryDelay << uint(attempt))
	}
}

// Resume opens an existing journal for replay and further appends: the
// recovered records are returned and the file is truncated at the last
// good frame so new appends continue from a clean boundary. A journal
// recorded under a different fingerprint is refused with *MismatchError.
// An empty file (a crash before the header reached the disk) is a valid
// empty journal: the header is rewritten and no records are returned.
func Resume(path, fingerprint string) (*Journal, *Recovery, error) {
	return ResumeFS(faultfs.OS, path, fingerprint)
}

// ResumeFS is Resume through an injectable filesystem.
func ResumeFS(fsys faultfs.FS, path, fingerprint string) (*Journal, *Recovery, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	payloads, good := scanFrames(data)
	rec := &Recovery{Torn: good < int64(len(data)), TornBytes: int64(len(data)) - good}
	j := &Journal{f: f, fs: fsys, path: path, good: good}

	if len(payloads) == 0 {
		// Nothing durable yet — start over as an empty journal.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(0, 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := j.appendHeader(fingerprint); err != nil {
			f.Close()
			return nil, nil, err
		}
		rec.Fingerprint = fingerprint
		return j, rec, nil
	}

	h, err := ParseHeader(payloads[0])
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	if h.Fingerprint != fingerprint {
		f.Close()
		return nil, nil, &MismatchError{Path: path, Want: fingerprint, Got: h.Fingerprint}
	}
	rec.Fingerprint = h.Fingerprint
	rec.Records = payloads[1:]

	if rec.Torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, rec, nil
}

// scanFrames parses frames from the start of data and stops at the first
// torn, misframed or CRC-failing one. It returns the good payloads and
// the byte offset just past the last good frame.
func scanFrames(data []byte) (payloads [][]byte, good int64) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		line := data[off : off+nl]
		payload, ok := parseFrame(line)
		if !ok {
			break
		}
		payloads = append(payloads, payload)
		off += nl + 1
	}
	return payloads, int64(off)
}

// parseFrame validates one frame line (without the newline) and returns
// its payload.
func parseFrame(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var want uint32
	for _, c := range line[:8] {
		var v uint32
		switch {
		case c >= '0' && c <= '9':
			v = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint32(c-'a') + 10
		default:
			return nil, false
		}
		want = want<<4 | v
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false
	}
	return payload, true
}

// Append marshals v and durably appends it as one frame: the write is
// fsync'd before Append returns, so a record handed to the journal
// survives a crash of the process.
func (j *Journal) Append(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if bytes.IndexByte(payload, '\n') >= 0 {
		return fmt.Errorf("journal: payload contains a raw newline")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(payload)
}

func (j *Journal) appendHeader(fingerprint string) error {
	payload, err := json.Marshal(Header{Magic: Magic, V: Version, Fingerprint: fingerprint})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(payload)
}

func (j *Journal) appendLocked(payload []byte) error {
	frame := make([]byte, 0, len(payload)+10)
	frame = fmt.Appendf(frame, "%08x ", crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	frame = append(frame, '\n')

	retries := j.retries
	switch {
	case retries == 0:
		retries = DefaultAppendRetries
	case retries < 0:
		retries = 0
	}
	delay := j.retryDelay
	if delay <= 0 {
		delay = DefaultRetryDelay
	}

	var err error
	for attempt := 0; ; attempt++ {
		err = j.writeFrameLocked(frame)
		if err == nil {
			return nil
		}
		// A failed write may have persisted a prefix of the frame: repair
		// by truncating back to the last good frame boundary, so the
		// retry (or the next append) never lands after garbage. If the
		// repair itself fails, the file is beyond in-place recovery —
		// reopening with Resume will truncate the torn tail instead.
		if rerr := j.repairLocked(); rerr != nil {
			return fmt.Errorf("journal: append failed (%w) and tail repair failed: %v", err, rerr)
		}
		if attempt >= retries || !faultfs.IsTransient(err) {
			return fmt.Errorf("journal: append failed after %d attempts: %w", attempt+1, err)
		}
		if j.onRetry != nil {
			j.onRetry(err, attempt+1)
		}
		time.Sleep(delay << uint(attempt))
	}
}

// writeFrameLocked appends one frame and fsyncs it, advancing the good
// boundary only when both succeed.
func (j *Journal) writeFrameLocked(frame []byte) error {
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.good += int64(len(frame))
	return nil
}

// repairLocked truncates the file back to the last durable frame
// boundary after a failed append, discarding any partial frame bytes.
func (j *Journal) repairLocked() error {
	if err := j.f.Truncate(j.good); err != nil {
		return err
	}
	_, err := j.f.Seek(j.good, 0)
	return err
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the journal file. Records are fsync'd on every
// Append, so Close never loses data.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Fingerprint hashes an arbitrary configuration value (via its JSON form)
// plus any extra strings into a hex campaign fingerprint. The same inputs
// always produce the same fingerprint, so it is safe to compare across
// process restarts.
func Fingerprint(v any, extra ...string) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(b)
	for _, e := range extra {
		h.Write([]byte{0})
		h.Write([]byte(e))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// WriteFileAtomic writes data to path via a temporary file in the same
// directory, fsync, and rename — so a crash mid-write leaves either the
// old file or the new one, never a truncated artifact (a half-written
// .dat file is exactly what gnuplot chokes on).
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomicFS(faultfs.OS, path, data, perm)
}

// WriteFileAtomicFS is WriteFileAtomic through an injectable
// filesystem. On every failure path the destination is untouched (the
// old content, or absence, survives intact) and the temporary file is
// removed.
func WriteFileAtomicFS(fsys faultfs.FS, path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// The rename is only durable once the parent directory's entry table
	// reaches disk: a crash before that can silently resurrect the old
	// file, so a failed directory fsync must surface, not be swallowed.
	return syncDirFS(fsys, dir)
}

// syncDirFS makes a directory entry change (create, rename) durable.
func syncDirFS(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
