// Package journal implements the durable campaign log behind
// `experiment -journal`: an append-only, fsync'd, CRC-framed NDJSON
// write-ahead log. Every completed measurement cell is appended as one
// frame before its result is used, so a campaign interrupted by a signal
// or a crash of the control host can be resumed from the journal and
// still produce byte-identical output.
//
// # Frame format
//
// A journal is a sequence of newline-terminated frames:
//
//	cccccccc<SP><payload>\n
//
// where cccccccc is the IEEE CRC-32 of the payload as exactly eight
// lowercase hex digits, <SP> is one ASCII space, and <payload> is one
// JSON document with no raw newline (encoding/json never emits one).
// The first frame is the header
//
//	{"magic":"repro-journal","v":1,"fingerprint":"<hex>"}
//
// whose fingerprint binds the journal to one campaign configuration; a
// journal must never be replayed against a different one. Every frame
// after the header is an opaque record payload owned by the caller.
//
// # Recovery
//
// Recovery scans frames from the start and stops at the first frame that
// is torn (no trailing newline), misframed, or fails its CRC: the file is
// truncated at the last good frame boundary and everything before it is
// returned. A torn final record — the expected shape after a crash in
// mid-append — therefore costs exactly the frames from the tear onward,
// never the journal.
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Magic identifies a journal header frame.
const Magic = "repro-journal"

// Version is the journal format version written into the header.
const Version = 1

// Header is the first frame of every journal.
type Header struct {
	Magic       string `json:"magic"`
	V           int    `json:"v"`
	Fingerprint string `json:"fingerprint"`
}

// ParseHeader decodes a journal header frame payload and validates its
// magic and version.
func ParseHeader(payload []byte) (Header, error) {
	var h Header
	if err := json.Unmarshal(payload, &h); err != nil || h.Magic != Magic {
		return Header{}, fmt.Errorf("journal: frame is not a journal header")
	}
	if h.V != Version {
		return Header{}, fmt.Errorf("journal: unsupported journal version %d", h.V)
	}
	return h, nil
}

// MismatchError reports a journal whose header fingerprint does not match
// the campaign configuration it is being replayed against. Resuming must
// refuse: the recorded cells belong to a different experiment setup.
type MismatchError struct {
	Path string
	Want string // fingerprint of the resuming configuration
	Got  string // fingerprint recorded in the journal header
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("journal: %s was recorded for a different configuration (journal fingerprint %.12s…, current %.12s…)",
		e.Path, e.Got, e.Want)
}

// Recovery is the result of replaying an existing journal.
type Recovery struct {
	// Fingerprint is the campaign fingerprint from the journal header.
	Fingerprint string
	// Records holds the recovered record payloads (header excluded), in
	// append order. Duplicate keys are the caller's concern: the WAL
	// contract is last-write-wins.
	Records [][]byte
	// Torn reports that the tail of the file was truncated at a torn or
	// corrupt frame; TornBytes is how many bytes were discarded.
	Torn      bool
	TornBytes int64
}

// Journal is an open, appendable campaign journal. Append is safe for
// concurrent use: measurement workers record completed cells in parallel.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Create starts a fresh journal at path (truncating any previous one),
// writes the fsync'd header frame, and returns the open journal.
func Create(path, fingerprint string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path}
	if err := j.appendHeader(fingerprint); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// Resume opens an existing journal for replay and further appends: the
// recovered records are returned and the file is truncated at the last
// good frame so new appends continue from a clean boundary. A journal
// recorded under a different fingerprint is refused with *MismatchError.
// An empty file (a crash before the header reached the disk) is a valid
// empty journal: the header is rewritten and no records are returned.
func Resume(path, fingerprint string) (*Journal, *Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	payloads, good := scanFrames(data)
	rec := &Recovery{Torn: good < int64(len(data)), TornBytes: int64(len(data)) - good}
	j := &Journal{f: f, path: path}

	if len(payloads) == 0 {
		// Nothing durable yet — start over as an empty journal.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(0, 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := j.appendHeader(fingerprint); err != nil {
			f.Close()
			return nil, nil, err
		}
		rec.Fingerprint = fingerprint
		return j, rec, nil
	}

	h, err := ParseHeader(payloads[0])
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	if h.Fingerprint != fingerprint {
		f.Close()
		return nil, nil, &MismatchError{Path: path, Want: fingerprint, Got: h.Fingerprint}
	}
	rec.Fingerprint = h.Fingerprint
	rec.Records = payloads[1:]

	if rec.Torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, rec, nil
}

// scanFrames parses frames from the start of data and stops at the first
// torn, misframed or CRC-failing one. It returns the good payloads and
// the byte offset just past the last good frame.
func scanFrames(data []byte) (payloads [][]byte, good int64) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		line := data[off : off+nl]
		payload, ok := parseFrame(line)
		if !ok {
			break
		}
		payloads = append(payloads, payload)
		off += nl + 1
	}
	return payloads, int64(off)
}

// parseFrame validates one frame line (without the newline) and returns
// its payload.
func parseFrame(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var want uint32
	for _, c := range line[:8] {
		var v uint32
		switch {
		case c >= '0' && c <= '9':
			v = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint32(c-'a') + 10
		default:
			return nil, false
		}
		want = want<<4 | v
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false
	}
	return payload, true
}

// Append marshals v and durably appends it as one frame: the write is
// fsync'd before Append returns, so a record handed to the journal
// survives a crash of the process.
func (j *Journal) Append(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if bytes.IndexByte(payload, '\n') >= 0 {
		return fmt.Errorf("journal: payload contains a raw newline")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(payload)
}

func (j *Journal) appendHeader(fingerprint string) error {
	payload, err := json.Marshal(Header{Magic: Magic, V: Version, Fingerprint: fingerprint})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(payload)
}

func (j *Journal) appendLocked(payload []byte) error {
	frame := make([]byte, 0, len(payload)+10)
	frame = fmt.Appendf(frame, "%08x ", crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	frame = append(frame, '\n')
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	return j.f.Sync()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the journal file. Records are fsync'd on every
// Append, so Close never loses data.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Fingerprint hashes an arbitrary configuration value (via its JSON form)
// plus any extra strings into a hex campaign fingerprint. The same inputs
// always produce the same fingerprint, so it is safe to compare across
// process restarts.
func Fingerprint(v any, extra ...string) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(b)
	for _, e := range extra {
		h.Write([]byte{0})
		h.Write([]byte(e))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// WriteFileAtomic writes data to path via a temporary file in the same
// directory, fsync, and rename — so a crash mid-write leaves either the
// old file or the new one, never a truncated artifact (a half-written
// .dat file is exactly what gnuplot chokes on).
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// The rename is only durable once the parent directory's entry table
	// reaches disk: a crash before that can silently resurrect the old
	// file, so a failed directory fsync must surface, not be swallowed.
	return syncDir(dir)
}

// syncDir makes a directory entry change (create, rename) durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
