// Read-only journal access: the monitoring service follows a live
// campaign's write-ahead log without ever opening it for writing. A
// Reader tails a journal that may still be growing; ReadAll snapshots
// every complete frame of a finished (or paused) one.
package journal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrCorrupt reports a complete frame (newline present) that failed its
// framing or CRC check — real corruption, as opposed to a torn tail
// still being appended, which a Reader simply waits out.
var ErrCorrupt = errors.New("journal: corrupt frame")

// Reader follows a journal file, yielding one frame payload per Next
// call — the header frame first. It never blocks and never writes: a
// frame is visible once its trailing newline is on disk (the writer
// appends frame and newline in a single write), so a missing newline
// means "the writer is mid-append, come back later", while a complete
// line that fails its CRC is corruption and a permanent error.
type Reader struct {
	f   *os.File
	buf []byte
	off int64
}

// OpenReader opens the journal at path for tailing.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &Reader{f: f}, nil
}

// Next returns the next complete frame payload. ok is false when no
// complete frame is available yet — poll again later; the payload is a
// private copy, safe to retain. A complete frame that fails validation
// returns an error wrapping ErrCorrupt, and the Reader is then stuck at
// the corrupt frame by design: nothing after it can be trusted.
func (r *Reader) Next() ([]byte, bool, error) {
	for {
		if nl := bytes.IndexByte(r.buf, '\n'); nl >= 0 {
			line := r.buf[:nl]
			payload, ok := parseFrame(line)
			if !ok {
				return nil, false, fmt.Errorf("%w at byte %d of %s",
					ErrCorrupt, r.off-int64(len(r.buf)), r.f.Name())
			}
			out := append([]byte(nil), payload...)
			r.buf = r.buf[nl+1:]
			return out, true, nil
		}
		n, err := r.fill()
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return nil, false, nil
		}
	}
}

// fill reads newly appended bytes past the Reader's offset.
func (r *Reader) fill() (int, error) {
	chunk := make([]byte, 64<<10)
	n, err := r.f.ReadAt(chunk, r.off)
	if n > 0 {
		r.off += int64(n)
		r.buf = append(r.buf, chunk[:n]...)
	}
	if err == io.EOF {
		err = nil
	}
	return n, err
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// ReadAll snapshots every complete frame currently in the journal at
// path: the parsed header plus the record payloads, in append order. A
// torn tail is ignored (exactly like recovery, but nothing is truncated
// — ReadAll never modifies the file).
func ReadAll(path string) (Header, [][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, err
	}
	payloads, _ := scanFrames(data)
	if len(payloads) == 0 {
		return Header{}, nil, fmt.Errorf("journal: %s: no header frame", path)
	}
	h, err := ParseHeader(payloads[0])
	if err != nil {
		return Header{}, nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	return h, payloads[1:], nil
}
