package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"testing"
	"time"
)

// TestReaderTailsLiveWriter is the monitoring service's core guarantee:
// a Reader following a journal while a writer appends sees every frame
// exactly once, in order, and never an error — run under -race to prove
// the file-level handoff needs no shared memory.
func TestReaderTailsLiveWriter(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "fp-tail")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const n = 200
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < n; i++ {
			if err := j.Append(rec{K: "cell", N: i}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var got []rec
	sawHeader := false
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < n {
		payload, ok, err := r.Next()
		if err != nil {
			t.Fatalf("reader error after %d records: %v", len(got), err)
		}
		if !ok {
			if time.Now().After(deadline) {
				t.Fatalf("timed out after %d/%d records", len(got), n)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if !sawHeader {
			h, err := ParseHeader(payload)
			if err != nil {
				t.Fatalf("first frame: %v", err)
			}
			if h.Fingerprint != "fp-tail" {
				t.Fatalf("header fingerprint = %q", h.Fingerprint)
			}
			sawHeader = true
			continue
		}
		var rc rec
		if err := json.Unmarshal(payload, &rc); err != nil {
			t.Fatal(err)
		}
		got = append(got, rc)
	}
	<-writerDone

	for i, rc := range got {
		if rc.N != i {
			t.Fatalf("record %d has n=%d: frames reordered or duplicated", i, rc.N)
		}
	}
	// The journal is drained: one more poll yields nothing, not an error.
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("drained journal: Next = (ok=%v, err=%v), want idle", ok, err)
	}
}

// TestReaderTornTail: a frame missing its newline (the crash-mid-append
// shape) is "not yet visible", not corruption — the Reader waits, and
// once the writer completes the frame it is delivered exactly once.
func TestReaderTornTail(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "fp-torn")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec{K: "cell", N: 0}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 2; i++ { // header + the first record
		if _, ok, err := r.Next(); !ok || err != nil {
			t.Fatalf("frame %d: ok=%v err=%v", i, ok, err)
		}
	}

	// Append half a frame by hand: CRC, space, and a payload prefix with
	// no newline.
	payload, _ := json.Marshal(rec{K: "cell", N: 1})
	frame := fmt.Sprintf("%08x %s", crc32.ChecksumIEEE(payload), payload)
	half := frame[:len(frame)-4]
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(half); err != nil {
		t.Fatal(err)
	}

	// The torn frame must not surface — and must not be an error.
	for i := 0; i < 3; i++ {
		if p, ok, err := r.Next(); ok || err != nil {
			t.Fatalf("torn tail surfaced: payload=%q ok=%v err=%v", p, ok, err)
		}
	}

	// Complete the frame: it becomes visible exactly once.
	if _, err := f.WriteString(frame[len(half):] + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	p, ok, err := r.Next()
	if !ok || err != nil {
		t.Fatalf("completed frame: ok=%v err=%v", ok, err)
	}
	var rc rec
	if err := json.Unmarshal(p, &rc); err != nil {
		t.Fatal(err)
	}
	if rc.N != 1 {
		t.Fatalf("completed frame n=%d, want 1", rc.N)
	}
	if _, ok, _ := r.Next(); ok {
		t.Fatal("completed frame delivered twice")
	}
}

// TestReaderCorruptFrame: a complete line that fails its CRC is a
// permanent ErrCorrupt, not a retry.
func TestReaderCorruptFrame(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "fp-bad")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"k\":\"cell\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok, err := r.Next(); !ok || err != nil { // header
		t.Fatalf("header: ok=%v err=%v", ok, err)
	}
	if _, _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame: err=%v, want ErrCorrupt", err)
	}
}

// TestReaderHeaderOnly: tailing a journal that holds only its header
// frame yields exactly that frame and then reports "nothing yet" — no
// error, no phantom records — and picks records up once they arrive.
func TestReaderHeaderOnly(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "fp-hdr")
	if err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	payload, ok, err := r.Next()
	if err != nil || !ok {
		t.Fatalf("header frame: ok=%v err=%v", ok, err)
	}
	h, err := ParseHeader(payload)
	if err != nil || h.Fingerprint != "fp-hdr" {
		t.Fatalf("header = %+v, err=%v", h, err)
	}
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("header-only journal: Next ok=%v err=%v, want no frame, no error", ok, err)
	}
	if err := j.Append(rec{K: "cell", N: 0}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, ok, err := r.Next(); !ok || err != nil {
		t.Fatalf("appended record not visible: ok=%v err=%v", ok, err)
	}
}

// TestReadAllHeaderOnly: a header-only journal snapshots as zero records,
// not as an error — the shape of a campaign interrupted before its first
// completed cell.
func TestReadAllHeaderOnly(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "fp-hdr")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	h, recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Fingerprint != "fp-hdr" || len(recs) != 0 {
		t.Fatalf("header-only ReadAll = %+v, %d records; want fp-hdr, 0", h, len(recs))
	}
}

// TestReadAll snapshots a journal without modifying it, torn tail and
// all.
func TestReadAll(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "fp-all")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(rec{K: "cell", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("12345678 torn")
	f.Close()
	before, _ := os.ReadFile(path)

	h, recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Fingerprint != "fp-all" {
		t.Fatalf("fingerprint = %q", h.Fingerprint)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Fatal("ReadAll modified the journal file")
	}
}
