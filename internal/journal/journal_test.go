package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultfs"
)

type rec struct {
	K string `json:"k"`
	N int    `json:"n"`
}

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.journal")
}

// TestCreateAppendResume is the basic WAL round trip: records written
// before a "crash" come back, in order, from Resume.
func TestCreateAppendResume(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(rec{K: "cell", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, rv, err := Resume(path, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rv.Torn {
		t.Fatalf("clean journal reported torn (%d bytes)", rv.TornBytes)
	}
	if len(rv.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rv.Records))
	}
	for i, p := range rv.Records {
		want := fmt.Sprintf(`{"k":"cell","n":%d}`, i)
		if string(p) != want {
			t.Fatalf("record %d = %s, want %s", i, p, want)
		}
	}
	// Appends after a resume land after the recovered tail.
	if err := j2.Append(rec{K: "cell", N: 5}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rv2, err := Resume(path, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rv2.Records) != 6 {
		t.Fatalf("after resumed append: %d records, want 6", len(rv2.Records))
	}
}

// TestResumeTornTail: a partial final frame (the crash-in-mid-append
// shape) is truncated; every complete frame before it survives, and the
// journal keeps working from the truncation point.
func TestResumeTornTail(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Create(path, "fp")
	for i := 0; i < 3; i++ {
		if err := j.Append(rec{K: "x", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Tear the tail: chop into the last frame.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rv, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if !rv.Torn || rv.TornBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", rv)
	}
	if len(rv.Records) != 2 {
		t.Fatalf("recovered %d records after tear, want 2", len(rv.Records))
	}
	if err := j2.Append(rec{K: "x", N: 99}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rv3, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if rv3.Torn || len(rv3.Records) != 3 {
		t.Fatalf("post-tear journal unhealthy: torn=%v records=%d", rv3.Torn, len(rv3.Records))
	}
}

// TestResumeHeaderOnly: a journal that stopped right after Create — the
// header frame is durable but no cell was ever recorded — resumes cleanly
// as an empty campaign: zero records, nothing torn, and further appends
// land on the clean post-header boundary.
func TestResumeHeaderOnly(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, rv, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if rv.Torn || rv.TornBytes != 0 {
		t.Fatalf("header-only journal reported torn: %+v", rv)
	}
	if len(rv.Records) != 0 {
		t.Fatalf("header-only journal recovered %d records, want 0", len(rv.Records))
	}
	if rv.Fingerprint != "fp" {
		t.Fatalf("fingerprint = %q, want %q", rv.Fingerprint, "fp")
	}
	if err := j2.Append(rec{K: "x", N: 1}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rv2, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if rv2.Torn || len(rv2.Records) != 1 {
		t.Fatalf("after post-resume append: torn=%v records=%d, want clean 1",
			rv2.Torn, len(rv2.Records))
	}
}

// TestResumeCorruptFrame: a bit flip inside a frame fails its CRC; the
// journal is truncated at that frame (dropping it and everything after).
func TestResumeCorruptFrame(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Create(path, "fp")
	for i := 0; i < 4; i++ {
		j.Append(rec{K: "x", N: i})
	}
	j.Close()
	data, _ := os.ReadFile(path)
	// Flip a payload byte in the third record frame (header + 2 full
	// records stay intact).
	lines := bytes.SplitAfter(data, []byte("\n"))
	lines[3][12] ^= 0x40
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, rv, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if !rv.Torn {
		t.Fatal("corrupt frame not reported as torn")
	}
	if len(rv.Records) != 2 {
		t.Fatalf("recovered %d records, want 2 (everything from the corrupt frame on is dropped)", len(rv.Records))
	}
}

// TestResumeFingerprintMismatch: a journal recorded under a different
// configuration is refused with the typed error.
func TestResumeFingerprintMismatch(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Create(path, "fp-old")
	j.Append(rec{K: "x", N: 1})
	j.Close()
	_, _, err := Resume(path, "fp-new")
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("want *MismatchError, got %v", err)
	}
	if me.Want != "fp-new" || me.Got != "fp-old" {
		t.Fatalf("mismatch error fields: %+v", me)
	}
}

// TestResumeEmptyFile: an empty file (crash before the header was
// durable) is a valid empty journal — the header is rewritten and appends
// work.
func TestResumeEmptyFile(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, rv, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Records) != 0 {
		t.Fatalf("empty file yielded %d records", len(rv.Records))
	}
	if err := j.Append(rec{K: "x", N: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, rv2, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(rv2.Records) != 1 {
		t.Fatalf("records after append to recovered empty journal: %d", len(rv2.Records))
	}
}

// TestResumeMissingFile: resuming a journal that was never created is an
// error, not a silent fresh start.
func TestResumeMissingFile(t *testing.T) {
	if _, _, err := Resume(filepath.Join(t.TempDir(), "nope.journal"), "fp"); err == nil {
		t.Fatal("resume of a missing journal succeeded")
	}
}

// TestFingerprintStable: same value, same extras → same fingerprint;
// different inputs diverge.
func TestFingerprintStable(t *testing.T) {
	a, err := Fingerprint(rec{K: "x", N: 1}, "v1")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Fingerprint(rec{K: "x", N: 1}, "v1")
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	c, _ := Fingerprint(rec{K: "x", N: 2}, "v1")
	d, _ := Fingerprint(rec{K: "x", N: 1}, "v2")
	if a == c || a == d {
		t.Fatal("fingerprint ignores inputs")
	}
}

// TestWriteFileAtomic: the target appears with the full content and no
// temp file survives.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plot.dat")
	if err := WriteFileAtomic(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new content"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "new content" {
		t.Fatalf("read back %q, %v", got, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("stray files left behind: %v", entries)
	}
}

// TestWriteFileAtomicDirSyncError: the rename is only durable once the
// parent directory entry is synced; a directory that cannot be fsynced
// (here: gone by rename time) must surface an error, not report a
// durable write that isn't.
func TestWriteFileAtomicDirSyncError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nope")
	if err := WriteFileAtomic(filepath.Join(dir, "plot.dat"), []byte("x"), 0o644); err == nil {
		t.Fatal("write into a missing directory reported success")
	}
	if err := syncDirFS(faultfs.OS, dir); err == nil {
		t.Fatal("syncDir on a missing directory reported success")
	}
}

// TestAppendRepairsTransientFault: a partial frame write (injected
// ENOSPC halfway through the frame) is repaired in place — truncate back
// to the last good boundary — and retried, so Append succeeds, the
// observer sees the repair, and a later Resume finds a clean journal
// with every record intact.
func TestAppendRepairsTransientFault(t *testing.T) {
	path := tmpJournal(t)
	ffs := faultfs.New(nil)
	// Frame writes: header is OpWrite #1, record 0 is #2, record 1 is #3.
	ffs.Script(faultfs.Fault{Op: faultfs.OpWrite, N: 3, Err: syscall.ENOSPC, Partial: 0.5})

	j, err := CreateFS(ffs, path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	var repairs int
	j.OnRetry(func(err error, attempt int) {
		if !errors.Is(err, syscall.ENOSPC) {
			t.Errorf("repair observer got %v, want ENOSPC", err)
		}
		repairs++
	})
	j.SetRetry(0, time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := j.Append(rec{K: "x", N: i}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	j.Close()
	if repairs != 1 {
		t.Fatalf("repairs = %d, want 1", repairs)
	}
	if ffs.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", ffs.Injected())
	}

	_, rv, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if rv.Torn {
		t.Fatalf("repaired journal reports torn (%d bytes)", rv.TornBytes)
	}
	if len(rv.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rv.Records))
	}
}

// TestAppendCrashPartialFrameRecovery: an ENOSPC that persists half a
// frame and then freezes the filesystem (the crash-point shape) defeats
// the in-place repair — but reopening the journal after the "reboot"
// truncates the torn tail and recovers every previously durable record.
func TestAppendCrashPartialFrameRecovery(t *testing.T) {
	path := tmpJournal(t)
	ffs := faultfs.New(nil)
	ffs.Script(faultfs.Fault{Op: faultfs.OpWrite, N: 3, Err: syscall.ENOSPC, Partial: 0.6, Crash: true})

	j, err := CreateFS(ffs, path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec{K: "x", N: 0}); err != nil {
		t.Fatal(err)
	}
	err = j.Append(rec{K: "x", N: 1})
	if err == nil {
		t.Fatal("append on a crashed filesystem reported success")
	}
	if !strings.Contains(err.Error(), "tail repair failed") {
		t.Fatalf("err = %v, want the repair-failed shape", err)
	}
	j.Close()

	// The partial frame really is on disk — the recovery path must earn
	// its keep, not be handed a clean file.
	data, _ := os.ReadFile(path)
	if data[len(data)-1] == '\n' {
		t.Fatal("test setup: no torn partial frame on disk")
	}

	// "Reboot": reopen through a healthy filesystem.
	j2, rv, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if !rv.Torn || rv.TornBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", rv)
	}
	if len(rv.Records) != 1 {
		t.Fatalf("recovered %d records, want 1", len(rv.Records))
	}
	if err := j2.Append(rec{K: "x", N: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rv2, err := Resume(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if rv2.Torn || len(rv2.Records) != 2 {
		t.Fatalf("post-recovery journal unhealthy: torn=%v records=%d", rv2.Torn, len(rv2.Records))
	}
}

// TestAppendTypedErrorWhenExhausted: with retries disabled the append
// fails immediately and the underlying errno survives the wrapping, so
// callers can errors.Is on ENOSPC/EIO and degrade deliberately.
func TestAppendTypedErrorWhenExhausted(t *testing.T) {
	path := tmpJournal(t)
	ffs := faultfs.New(nil)
	ffs.Script(faultfs.Fault{Op: faultfs.OpWrite, N: 2, Err: syscall.ENOSPC})

	j, err := CreateFS(ffs, path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetRetry(-1, 0)
	err = j.Append(rec{K: "x", N: 0})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append error %v does not unwrap to ENOSPC", err)
	}
	// The repair ran: the journal is still usable once the fault clears.
	j.SetRetry(0, 0)
	if err := j.Append(rec{K: "x", N: 1}); err != nil {
		t.Fatal(err)
	}
	_, rv, err := ResumeFS(faultfs.OS, path, "fp")
	if err != nil || len(rv.Records) != 1 || rv.Torn {
		t.Fatalf("post-failure journal: records=%d torn=%v err=%v", len(rv.Records), rv.Torn, err)
	}
}

// TestWriteFileAtomicFaultPaths: whichever step fails — the temp-file
// write, the rename, or the directory fsync — the destination either
// keeps its old content or atomically has the new one, and no temp file
// survives.
func TestWriteFileAtomicFaultPaths(t *testing.T) {
	cases := []struct {
		name  string
		fault faultfs.Fault
		// wantOld: destination must still hold the old content after the
		// failed write (false = either old or new is acceptable — the dir
		// fsync failure happens after the rename).
		wantOld bool
	}{
		{"tmp write fails", faultfs.Fault{Op: faultfs.OpWrite, N: 1, Err: syscall.ENOSPC, Partial: 0.5}, true},
		{"tmp fsync fails", faultfs.Fault{Op: faultfs.OpSync, N: 1, Err: syscall.EIO}, true},
		{"rename fails", faultfs.Fault{Op: faultfs.OpRename, N: 1, Err: syscall.EIO}, true},
		{"dir fsync fails", faultfs.Fault{Op: faultfs.OpSync, N: 2, Err: syscall.EIO}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "plot.dat")
			if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			ffs := faultfs.New(nil)
			ffs.Script(c.fault)
			err := WriteFileAtomicFS(ffs, path, []byte("new content"), 0o644)
			if err == nil {
				t.Fatal("faulted write reported success")
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("destination vanished: %v", rerr)
			}
			if c.wantOld && string(got) != "old" {
				t.Fatalf("destination corrupted: %q", got)
			}
			if !c.wantOld && string(got) != "old" && string(got) != "new content" {
				t.Fatalf("destination neither old nor new: %q", got)
			}
			entries, _ := os.ReadDir(dir)
			if len(entries) != 1 {
				names := make([]string, 0, len(entries))
				for _, e := range entries {
					names = append(names, e.Name())
				}
				t.Fatalf("temp files left behind: %v", names)
			}
		})
	}
}
