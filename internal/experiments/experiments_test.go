package experiments

import (
	"strings"
	"testing"
)

// fast options keep the full experiment suite testable.
func fast() Options {
	return Options{Packets: 4000, Reps: 1, Seed: 1, Rates: []float64{300, 900}}
}

func TestAllExperimentsRun(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("incomplete experiment definition: %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			out := e.Run(fast())
			if len(out) == 0 {
				t.Fatal("empty output")
			}
			if !strings.Contains(out, "\n") {
				t.Fatalf("output is not a table: %q", out)
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("fig6.3-smp"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestExperimentIndexCoversPaper pins that every evaluation figure of the
// thesis has an experiment.
func TestExperimentIndexCoversPaper(t *testing.T) {
	want := []string{
		"Figure 4.1", "Figure 4.2", "Figure 6.2", "Figure 6.3", "Figure 6.4",
		"Figure 6.6", "Figure 6.7", "Figure 6.8", "Figure 6.9", "Figure 6.10",
		"Figure 6.11", "Figure 6.12", "Figure 6.13", "Figure 6.14",
		"Figure 6.15", "Figure 6.16", "Figure B.1", "Figure B.2", "Figure B.3",
	}
	var all strings.Builder
	for _, e := range All() {
		all.WriteString(e.Paper + "\n")
	}
	for _, w := range want {
		if !strings.Contains(all.String(), w) {
			t.Errorf("no experiment covers %s", w)
		}
	}
}

// TestParallelSweepDeterminism pins the engine's hard invariant at the
// experiment level: a representative sweep renders byte-identical output
// for Parallelism 0 (serial), 1, 4 and 8.
func TestParallelSweepDeterminism(t *testing.T) {
	for _, id := range []string{"fig6.2-smp", "fig6.7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := Find(id)
			if err != nil {
				t.Fatal(err)
			}
			o := Options{Packets: 2000, Reps: 2, Seed: 1, Rates: []float64{200, 600, 950}}
			var want string
			for _, p := range []int{0, 1, 4, 8} {
				o.Parallelism = p
				got := e.Run(o)
				if p == 0 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("Parallelism=%d output differs from serial:\n%s\nvs\n%s", p, got, want)
				}
			}
		})
	}
}

// TestModernSweepDeterminism pins the modern-stack sweep's determinism
// across parallelism levels, and that the sweep still produces points in
// every cell under -chaos (the resilient engine validates conservation,
// including the new rss-ring / poll-budget / umem-fill / pcie-bus causes).
func TestModernSweepDeterminism(t *testing.T) {
	e, err := Find("ext-modern")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Packets: 2000, Reps: 1, Seed: 1, Rings: []int{2}}
	var want string
	for _, p := range []int{0, 3} {
		o.Parallelism = p
		got := e.Run(o)
		if p == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Parallelism=%d output differs from serial:\n%s\nvs\n%s", p, got, want)
		}
	}

	for _, chaos := range []uint64{0, 7} {
		o.Chaos = chaos
		o.Parallelism = 0
		for _, s := range e.Series(o) {
			for _, pt := range s.Points {
				if pt.Generated == 0 {
					t.Fatalf("chaos=%d %s@%g: no packets", chaos, s.System, pt.X)
				}
			}
		}
	}
}
