package experiments

import (
	"strings"
	"testing"
)

// TestChaosFlagAppendsBookkeeping: with -chaos off the output is the
// legacy byte stream; with -chaos on, the chaos table is appended and the
// attempts column shows the supervisor at work. Covers the three sweep
// shapes (rate sweep, buffer sweep, multi-app).
func TestChaosFlagAppendsBookkeeping(t *testing.T) {
	for _, id := range []string{"fig6.2-nosmp", "fig6.4-nosmp", "fig6.7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := Find(id)
			if err != nil {
				t.Fatal(err)
			}
			o := fast()
			o.Chaos = 42
			out := e.Run(o)
			if !strings.Contains(out, "# chaos: attempts / quarantined / rejected repetitions per point") {
				t.Fatalf("-chaos output missing the chaos table:\n%s", out)
			}
		})
	}
}

// TestChaosRecordsCarryBookkeeping: the NDJSON records of a chaos run
// carry the supervisor's counters; a clean run leaves them zero.
func TestChaosRecordsCarryBookkeeping(t *testing.T) {
	e, err := Find("fig6.2-nosmp")
	if err != nil {
		t.Fatal(err)
	}
	clean := Records(e, fast())
	for _, r := range clean {
		if r.Attempts != 0 || r.Quarantined != 0 || r.Rejected != 0 || r.Degraded || r.Faults != "" {
			t.Fatalf("clean record has chaos fields: %+v", r)
		}
	}
	o := fast()
	o.Chaos = 7
	o.Reps = 2
	chaos := Records(e, o)
	if len(chaos) != len(clean) {
		t.Fatalf("chaos run lost points: %d vs %d", len(chaos), len(clean))
	}
	attempts, faults := 0, 0
	for _, r := range chaos {
		attempts += r.Attempts
		if r.Faults != "" {
			faults++
		}
	}
	if attempts < len(chaos)*o.Reps {
		t.Fatalf("attempts %d below one per repetition (%d points × %d reps)",
			attempts, len(chaos), o.Reps)
	}
	if faults == 0 {
		t.Fatal("default plan injected no logged fault across the sweep")
	}
}

// TestChaosOffKeepsLegacyOutput: the chaos machinery must not perturb the
// default path — same Options, chaos zero, byte-identical output.
func TestChaosOffKeepsLegacyOutput(t *testing.T) {
	e, err := Find("fig6.2-nosmp")
	if err != nil {
		t.Fatal(err)
	}
	if a, b := e.Run(fast()), e.Run(fast()); a != b {
		t.Fatal("legacy output not reproducible")
	}
}
