package experiments

import (
	"repro/internal/capture"
	"repro/internal/core"
)

// Record is one machine-readable measurement point, the unit of the
// `experiment -json` output (one NDJSON object per line).
type Record struct {
	Experiment string  `json:"experiment"`
	System     string  `json:"system"`
	X          float64 `json:"x"` // data rate Mbit/s, buffer kB, ...
	RatePct    float64 `json:"ratePct"`
	RateMinPct float64 `json:"rateMinPct"`
	RateMaxPct float64 `json:"rateMaxPct"`
	CPUPct     float64 `json:"cpuPct"`
	Generated  uint64  `json:"generated"`
	Dropped    uint64  `json:"dropped"`
	// Drops is the per-cause ledger of the point, summed over repetitions.
	Drops capture.Ledger `json:"drops"`
	// Truncated counts repetitions that hit the simulation safety cap.
	Truncated int `json:"truncated,omitempty"`

	// Chaos bookkeeping (only set when the sweep ran under -chaos):
	// Attempts is the number of cycle attempts spent on the point,
	// Quarantined / Rejected count repetitions lost to the retry budget
	// and the outlier rejection, Degraded marks impaired accepted data,
	// and Faults is the compact fault log.
	Attempts    int    `json:"attempts,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	Rejected    int    `json:"rejected,omitempty"`
	Degraded    bool   `json:"degraded,omitempty"`
	Faults      string `json:"faults,omitempty"`
}

// PointRecord converts one aggregated measurement point into the NDJSON
// record shape. The buffered Records path and the streaming -json writer
// (driven by EventPoint observer events) both build their rows here, so
// the two emit byte-identical records.
func PointRecord(experiment string, p core.Point) Record {
	total, _ := p.Drops.Total()
	return Record{
		Experiment:  experiment,
		System:      p.System,
		X:           p.X,
		RatePct:     p.Rate,
		RateMinPct:  p.RateMin,
		RateMaxPct:  p.RateMax,
		CPUPct:      p.CPU,
		Generated:   p.Generated,
		Dropped:     total,
		Drops:       p.Drops,
		Truncated:   p.Truncated,
		Attempts:    p.Attempts,
		Quarantined: p.Quarantined,
		Rejected:    p.Rejected,
		Degraded:    p.Degraded,
		Faults:      p.FaultLog,
	}
}

// Records flattens an experiment's series into JSON-ready rows. It returns
// nil for experiments without a structured series form (distribution
// plots, histograms); `experiment -json` skips those.
func Records(e Experiment, o Options) []Record {
	if e.Series == nil {
		return nil
	}
	var recs []Record
	for _, s := range e.Series(o) {
		for _, p := range s.Points {
			r := PointRecord(e.ID, p)
			r.System = s.System
			recs = append(recs, r)
		}
	}
	return recs
}
