// Package experiments defines one runnable experiment per table and figure
// of the thesis's evaluation (Chapters 4 and 6 plus Appendix B), maps each
// to the modules that implement it, and renders the same series the thesis
// plots. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/filter"
	"repro/internal/pktgen"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options control experiment fidelity: more packets and repetitions cost
// time but tighten the results. Defaults reproduce the shapes quickly.
type Options struct {
	Packets int       // packets per run (thesis: 1 000 000)
	Reps    int       // repetitions per point (thesis: 7)
	Seed    uint64    // base seed
	Rates   []float64 // data-rate sweep in Mbit/s (default 50..950 step 50)
	// Parallelism distributes the independent measurement cells of a sweep
	// over worker goroutines: 0 = serial, <0 = one worker per CPU, >0 =
	// exactly that many. Output is byte-identical for any value.
	Parallelism int
	// Why appends the per-point drop-cause breakdown (core.FormatWhy) to
	// the rendered table — the `experiment -why` flag.
	Why bool
	// Chaos, when nonzero, runs the sweeps under the seeded fault-injection
	// plan (faults.DefaultPlan) with the resilient supervisor: validation,
	// bounded retry, quarantine, outlier rejection, graceful degradation.
	// The chaos bookkeeping is appended to tables (core.FormatChaos) and
	// carried in the NDJSON records. Zero keeps the legacy byte-identical
	// output paths.
	Chaos uint64
	// Policy applies a sampling / load-shedding policy to every capturing
	// application of the sweeps (capture.ParsePolicy syntax) — the
	// `experiment -policy` flag. Empty means no policy and keeps every
	// output byte-identical to the unpoliced runs. A semantic knob: it
	// changes what the measurement cells compute and is part of the
	// campaign fingerprint. The policy-sweep experiment ext-shedding
	// ignores it (it sweeps the policies itself).
	Policy string
	// Rings is the RX ring-count axis of the modern-stack sweep
	// (ext-modern) — the `experiment -rings` flag. Empty means the
	// default {2, 4} and keeps the campaign fingerprint identical to
	// pre-ring journals (the field enters the fingerprint via omitempty,
	// like Policy). A semantic knob: it changes the swept cells.
	Rings []int

	// Ctx, when non-nil, lets a caller cancel a running experiment: the
	// worker pools drain (in-flight cells finish, nothing new starts) and
	// the experiment's output must be discarded. A runtime knob, not part
	// of the campaign fingerprint.
	Ctx context.Context
	// Journal, when non-nil, makes sweeps durable: completed cells are
	// recorded in the campaign write-ahead log as they finish and replayed
	// on a resumed run (see Campaign). A runtime knob, not part of the
	// campaign fingerprint.
	Journal core.CellJournal
	// Observer, when non-nil, receives the engines' live event feed (cell
	// completions, deterministic point aggregates, retry/quarantine
	// decisions) — the monitoring service and the streaming -json writer
	// attach here. A runtime knob, not part of the campaign fingerprint;
	// observation never changes a result.
	Observer core.Observer
	// Executor, when non-nil, hands the cells the durable engines would
	// run locally to an external executor instead — the dispatch
	// coordinator leases them to remote workers. Replayed cells never
	// reach the executor, and the executor's results feed the same
	// journaling, observation, and fixed-order aggregation, so output
	// stays byte-identical to a local run. A runtime knob, not part of
	// the campaign fingerprint. Ignored under -chaos: fault injection
	// works through process-local hooks that cannot be dispatched.
	Executor core.CellExecutor
}

// ctx resolves the cancellation context (nil means "never cancelled").
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// chaosOptions builds the resilient engine's options from the -chaos seed,
// wiring in the campaign journal under the given experiment id.
func (o Options) chaosOptions(experiment string) core.ChaosOptions {
	return core.ChaosOptions{
		Plan:       faults.DefaultPlan(o.Chaos),
		Journal:    o.Journal,
		Experiment: experiment,
		Observer:   o.Observer,
	}
}

// applyPolicy stamps the -policy override onto sweep configs. An empty or
// "none" policy returns cfgs untouched (the same slice), so the default
// paths stay byte-identical. The CLI validates the spec string before any
// sweep runs; a malformed one reaching this point is a programming error.
func (o Options) applyPolicy(cfgs []capture.Config) []capture.Config {
	if o.Policy == "" {
		return cfgs
	}
	spec, err := capture.ParsePolicy(o.Policy)
	if err != nil {
		panic(err)
	}
	if !spec.Enabled() {
		return cfgs
	}
	out := make([]capture.Config, len(cfgs))
	for i, cfg := range cfgs {
		cfg.Policy = spec
		out[i] = cfg
	}
	return out
}

func (o Options) withDefaults() Options {
	if o.Packets <= 0 {
		o.Packets = 40000
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Rates) == 0 {
		for r := 50.0; r <= 950; r += 50 {
			o.Rates = append(o.Rates, r)
		}
	}
	return o
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string // thesis plot id, e.g. "fig6.3-smp"
	Paper string // the figure/table in the thesis
	Title string
	Run   func(o Options) string
	// Series returns the experiment's measurement points in structured
	// form (for `experiment -json`); nil for experiments that have no
	// series shape (distribution plots, histograms).
	Series func(o Options) []core.Series
}

// expt builds a text-only experiment (no structured series form).
func expt(id, paper, title string, run func(Options) string) Experiment {
	return Experiment{ID: id, Paper: paper, Title: title, Run: run}
}

// All returns every experiment: the thesis's tables and figures in thesis
// order, followed by the future-work extensions and model ablations
// (extensions.go).
func All() []Experiment {
	return append(thesisExperiments(), extensions()...)
}

func thesisExperiments() []Experiment {
	const rateTitle = "capturing rate and CPU usage vs data rate [Mbit/s]"
	return []Experiment{
		expt("fig4.1", "Figure 4.1", "packet size distribution of the 24h MWN trace", runFig41),
		expt("fig4.2", "Figure 4.2", "top-20 packet sizes with cumulative shares", runFig42),
		expt("fig4.3", "Figure 4.3/§4.3.1", "generator output fidelity vs input distribution", runFig43),
		expt("gen-rate", "§4.1.3", "maximum generation rate by fixed packet size", runGenRate),
		sweepExpt("fig6.2-nosmp", "Figure 6.2 (33)", "baseline, default buffers, single CPU", rateTitle, sysCfgs(defaultBuffers, single)),
		sweepExpt("fig6.2-smp", "Figure 6.2 (19)", "baseline, default buffers, dual CPU", rateTitle, sysCfgs(defaultBuffers, dual)),
		sweepExpt("fig6.3-nosmp", "Figure 6.3a (32)", "increased buffers, single CPU", rateTitle, sysCfgs(bigBuffers, single)),
		sweepExpt("fig6.3-smp", "Figure 6.3b (19)", "increased buffers, dual CPU", rateTitle, sysCfgs(bigBuffers, dual)),
		bufferSweepExpt("fig6.4-nosmp", "Figure 6.4a (33)", "buffer-size sweep at top rate, single CPU", single),
		bufferSweepExpt("fig6.4-smp", "Figure 6.4b (20)", "buffer-size sweep at top rate, dual CPU", dual),
		sweepExpt("fig6.6-nosmp", "Figure 6.6a (34)", "50-instruction BPF filter, single CPU", rateTitle, sysCfgs(withFilter, single)),
		sweepExpt("fig6.6-smp", "Figure 6.6b (21)", "50-instruction BPF filter, dual CPU", rateTitle, sysCfgs(withFilter, dual)),
		multiAppExpt("fig6.7", "Figure 6.7 (22)", "two concurrent capturing applications", 2),
		multiAppExpt("fig6.8", "Figure 6.8 (23)", "four concurrent capturing applications", 4),
		multiAppExpt("fig6.9", "Figure 6.9 (24)", "eight concurrent capturing applications", 8),
		sweepExpt("fig6.10-nosmp", "Figure 6.10a (35)", "50 additional memcpys per packet, single CPU", rateTitle, sysCfgs(memcpy(50), single)),
		sweepExpt("fig6.10-smp", "Figure 6.10b (27)", "50 additional memcpys per packet, dual CPU", rateTitle, sysCfgs(memcpy(50), dual)),
		sweepExpt("figB.2", "Figure B.2", "25 additional memcpys per packet, dual CPU", rateTitle, sysCfgs(memcpy(25), dual)),
		sweepExpt("fig6.11-nosmp", "Figure 6.11a (40)", "zlib level 3 per packet, single CPU", rateTitle, sysCfgs(gzwrite(3), single)),
		sweepExpt("fig6.11-smp", "Figure 6.11b (39)", "zlib level 3 per packet, dual CPU", rateTitle, sysCfgs(gzwrite(3), dual)),
		sweepExpt("figB.3", "Figure B.3", "zlib level 9 per packet, dual CPU", rateTitle, sysCfgs(gzwrite(9), dual)),
		sweepExpt("fig6.12", "Figure 6.12 (48)", "tcpdump piped to gzip -3, dual CPU", rateTitle, sysCfgs(pipeGzip(3), dual)),
		expt("fig6.13", "Figure 6.13 (00)", "bonnie++: maximum disk write speed and CPU", runBonnie),
		sweepExpt("fig6.14-nosmp", "Figure 6.14a (46)", "write first 76 bytes of each packet to disk, single CPU", rateTitle, sysCfgs(headerToDisk, single)),
		sweepExpt("fig6.14-smp", "Figure 6.14b (45)", "write first 76 bytes of each packet to disk, dual CPU", rateTitle, sysCfgs(headerToDisk, dual)),
		sweepExpt("fig6.15-nosmp", "Figure 6.15a (18)", "memory-mapped libpcap on Linux, single CPU", "mmap'd libpcap vs stock on Linux", mmapConfigs(single)),
		sweepExpt("fig6.15-smp", "Figure 6.15b (19)", "memory-mapped libpcap on Linux, dual CPU", "mmap'd libpcap vs stock on Linux", mmapConfigs(dual)),
		sweepExpt("fig6.16", "Figure 6.16 (42)", "Hyperthreading on the Intel systems", "Hyperthreading on vs off (Intel Xeon systems)", htConfigs),
		sweepExpt("figB.1", "Figure B.1", "FreeBSD 5.2.1 vs 5.4", "FreeBSD 5.4 vs 5.2.1", osVersionConfigs),
		expt("selfsim", "§2.5 (extension)", "self-similar vs paced arrivals: buffer absorption", runSelfSimilar),
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (see `experiment -list`)", id)
}

// --- configuration modifiers -------------------------------------------

type modifier func(cfg capture.Config) capture.Config

func single(cfg capture.Config) capture.Config { cfg.NumCPUs = 1; return cfg }
func dual(cfg capture.Config) capture.Config   { cfg.NumCPUs = 2; return cfg }

func defaultBuffers(cfg capture.Config) capture.Config { return cfg }

func bigBuffers(cfg capture.Config) capture.Config {
	if cfg.OS == capture.Linux {
		cfg.BufferBytes = capture.BigLinuxRcvbuf
	} else {
		cfg.BufferBytes = capture.BigBSDBuffer
	}
	return cfg
}

func withFilter(cfg capture.Config) capture.Config {
	cfg = bigBuffers(cfg)
	cfg.Filter = filter.MustCompile(filter.ReferenceFilterExpr, 1515)
	return cfg
}

func memcpy(n int) modifier {
	return func(cfg capture.Config) capture.Config {
		cfg = bigBuffers(cfg)
		cfg.Load.MemcpyCount = n
		return cfg
	}
}

func gzwrite(level int) modifier {
	return func(cfg capture.Config) capture.Config {
		cfg = bigBuffers(cfg)
		cfg.Load.ZlibLevel = level
		return cfg
	}
}

func pipeGzip(level int) modifier {
	return func(cfg capture.Config) capture.Config {
		cfg = bigBuffers(cfg)
		cfg.Load.PipeGzip = level
		return cfg
	}
}

func headerToDisk(cfg capture.Config) capture.Config {
	cfg = bigBuffers(cfg)
	cfg.Load.WriteSnapLen = 76
	return cfg
}

// --- generic sweeps ------------------------------------------------------

// sysCfgs returns the four thesis systems with the modifiers applied, as a
// config builder for sweepExpt.
func sysCfgs(mods ...modifier) func() []capture.Config {
	return func() []capture.Config { return systems(mods...) }
}

// seriesSweep runs the standard §3.4 data-rate sweep over the configs —
// through the resilient supervisor when -chaos is set, the durable
// parallel engine otherwise (with a nil journal the legacy path stays
// byte-identical). experiment namespaces the campaign journal keys.
func seriesSweep(experiment string, cfgs func() []capture.Config) func(o Options) []core.Series {
	return func(o Options) []core.Series {
		o = o.withDefaults()
		w := core.Workload{Packets: o.Packets, Seed: o.Seed}
		sweepCfgs := o.applyPolicy(cfgs())
		if o.Chaos != 0 {
			return core.SweepRatesResilient(o.ctx(), sweepCfgs, o.Rates, w, o.Reps, o.Parallelism, o.chaosOptions(experiment))
		}
		return core.SweepRatesDispatched(o.ctx(), sweepCfgs, o.Rates, w, o.Reps, o.Parallelism, experiment, o.Journal, o.Observer, o.Executor)
	}
}

// tableRun renders a sweep the way the thesis plots it, appending the
// per-point drop-cause table when -why is set and the chaos bookkeeping
// when -chaos is set.
func tableRun(title string, series func(o Options) []core.Series) func(o Options) string {
	return func(o Options) string {
		o = o.withDefaults()
		s := series(o)
		out := core.FormatTable(title, s)
		if o.Why {
			out += "\n" + core.FormatWhy(s)
		}
		if o.Chaos != 0 {
			out += "\n" + core.FormatChaos(s)
		}
		return out
	}
}

// observeCellPoints wraps obs so a per-cell sweep (buffer sweep,
// multi-app: one cell per plotted point) publishes one EventPoint per
// finalized cell, decorated exactly like cellSeries decorates the series
// form. Emission is head-of-line sequenced in cell layout order, so the
// point stream is deterministic for any worker count.
func observeCellPoints(obs core.Observer, experiment string, cells []core.Cell, ids []core.CellID, xOf func(i int) float64) core.Observer {
	if obs == nil {
		return nil
	}
	idxOf := make(map[core.CellKey]int, len(cells))
	for i := range cells {
		idxOf[core.CellKey{Experiment: experiment, Point: ids[i].Point,
			System: cells[i].Cfg.Name, Rep: ids[i].Rep}] = i
	}
	var mu sync.Mutex
	pending := make([]*core.Event, len(cells))
	next := 0
	return core.ObserverFunc(func(ev core.Event) {
		obs.Observe(ev)
		if (ev.Kind != core.EventCell && ev.Kind != core.EventQuarantine) || ev.Stats == nil {
			return
		}
		i, ok := idxOf[core.CellKey{Experiment: ev.Experiment, Point: ev.Point,
			System: ev.System, Rep: ev.Rep}]
		if !ok {
			return
		}
		pt := core.AggregatePoint(ev.System, xOf(i), []capture.Stats{*ev.Stats})
		if out := ev.Outcome; out != nil {
			pt.Attempts = out.Attempts
			if out.Quarantined {
				pt.Quarantined = 1
			}
			pt.Degraded = out.Degraded || out.Quarantined
			pt.FaultLog = strings.Join(out.Log, "; ")
		}
		pe := core.Event{Kind: core.EventPoint, Experiment: ev.Experiment,
			System: ev.System, Point: ev.Point, X: pt.X, Agg: &pt}
		mu.Lock()
		defer mu.Unlock()
		pending[i] = &pe
		for next < len(pending) && pending[next] != nil {
			obs.Observe(*pending[next])
			next++
		}
	})
}

// runCellsMaybeChaos executes per-cell sweeps (buffer sweep, multi-app)
// through the resilient engine when -chaos is set, and through the durable
// engine otherwise. key fingerprints the measurement point of cell i for
// the fault model and the campaign journal; xOf is the plotted x of cell i
// (for the observer's point events); experiment namespaces the journal
// keys. The returned outcomes are nil on the plain path.
func runCellsMaybeChaos(o Options, experiment string, cells []core.Cell, key func(i int) uint64, xOf func(i int) float64) ([]capture.Stats, []core.CellOutcome) {
	ids := make([]core.CellID, len(cells))
	for i := range cells {
		ids[i] = core.CellID{Point: key(i), Rep: 0}
	}
	obs := observeCellPoints(o.Observer, experiment, cells, ids, xOf)
	if o.Chaos == 0 {
		sts, errs := core.RunCellsDispatched(o.ctx(), cells, ids, o.Parallelism, experiment, o.Journal, obs, o.Executor)
		for _, err := range errs {
			if err != nil && !core.IsCancel(err) {
				panic(err)
			}
		}
		return sts, nil
	}
	co := o.chaosOptions(experiment)
	co.Observer = obs
	outs := core.RunCellsResilient(o.ctx(), cells, ids, o.Parallelism, co)
	sts := make([]capture.Stats, len(cells))
	for i := range outs {
		sts[i] = outs[i].Stats
	}
	return sts, outs
}

// sweepExpt builds a data-rate-sweep experiment with both the rendered
// table (Run) and the structured series (Series) forms.
func sweepExpt(id, paper, title, tableTitle string, cfgs func() []capture.Config) Experiment {
	series := seriesSweep(id, cfgs)
	return Experiment{ID: id, Paper: paper, Title: title,
		Run: tableRun(tableTitle, series), Series: series}
}

// cellSeries groups per-cell runs (laid out x-major, system-minor) into
// one Series per system, with the given per-cell x value. outs, when
// non-nil, carries the resilient engine's per-cell bookkeeping onto the
// points.
func cellSeries(cells []core.Cell, sts []capture.Stats, outs []core.CellOutcome, x func(i int) float64) []core.Series {
	var series []core.Series
	idx := map[string]int{}
	for i, st := range sts {
		name := cells[i].Cfg.Name
		j, ok := idx[name]
		if !ok {
			j = len(series)
			idx[name] = j
			series = append(series, core.Series{System: name})
		}
		pt := core.AggregatePoint(name, x(i), []capture.Stats{st})
		if outs != nil {
			out := outs[i]
			pt.Attempts = out.Attempts
			if out.Quarantined {
				pt.Quarantined = 1
			}
			pt.Degraded = out.Degraded || out.Quarantined
			pt.FaultLog = strings.Join(out.Log, "; ")
		}
		series[j].Points = append(series[j].Points, pt)
	}
	return series
}

func systems(mods ...modifier) []capture.Config {
	cfgs := core.Sniffers()
	for i := range cfgs {
		for _, m := range mods {
			cfgs[i] = m(cfgs[i])
		}
	}
	return cfgs
}

// bufferSweepExpt reproduces Figure 6.4: highest rate, buffer size on the
// x axis ("the buffer size was reduced by a factor of two for FreeBSD" so
// the effective capacity matches single-buffered Linux).
func bufferSweepExpt(id, paper, title string, cpuMod modifier) Experiment {
	series := func(o Options) []core.Series {
		o = o.withDefaults()
		kbs, cells, sts, outs := bufferSweepRun(o, id, cpuMod)
		nsys := len(systems(cpuMod))
		return cellSeries(cells, sts, outs, func(i int) float64 { return float64(kbs[i/nsys]) })
	}
	run := func(o Options) string {
		o = o.withDefaults()
		kbs, cells, sts, outs := bufferSweepRun(o, id, cpuMod)
		nsys := len(systems(cpuMod))
		var out strings.Builder
		fmt.Fprintln(&out, "# capturing rate and CPU usage vs buffer size [kByte] at top rate")
		fmt.Fprintln(&out, "# kB\tsystem\trate%\tcpu%")
		for i, st := range sts {
			fmt.Fprintf(&out, "%d\t%s\t%6.2f\t%6.2f\n",
				kbs[i/nsys], cells[i].Cfg.Name, st.CaptureRate(), st.CPUUsage())
		}
		xOf := func(i int) float64 { return float64(kbs[i/nsys]) }
		if o.Why {
			out.WriteByte('\n')
			out.WriteString(core.FormatWhy(cellSeries(cells, sts, outs, xOf)))
		}
		if o.Chaos != 0 {
			out.WriteByte('\n')
			out.WriteString(core.FormatChaos(cellSeries(cells, sts, outs, xOf)))
		}
		return out.String()
	}
	return Experiment{ID: id, Paper: paper, Title: title, Run: run, Series: series}
}

func bufferSweepRun(o Options, experiment string, cpuMod modifier) (kbs []int, cells []core.Cell, sts []capture.Stats, outs []core.CellOutcome) {
	w := core.Workload{Packets: o.Packets, Seed: o.Seed, TargetRate: 980e6}
	bases := o.applyPolicy(systems(cpuMod))
	for kb := 128; kb <= 262144; kb *= 2 {
		kbs = append(kbs, kb)
		for _, base := range bases {
			cfg := base
			if cfg.OS == capture.Linux {
				cfg.BufferBytes = kb << 10
			} else {
				cfg.BufferBytes = kb << 10 / 2
			}
			cells = append(cells, core.Cell{Cfg: cfg, W: w})
		}
	}
	nsys := len(systems(cpuMod))
	sts, outs = runCellsMaybeChaos(o, experiment, cells,
		func(i int) uint64 { return uint64(kbs[i/nsys]) },
		func(i int) float64 { return float64(kbs[i/nsys]) })
	return kbs, cells, sts, outs
}

// multiAppExpt reproduces Figures 6.7–6.9: n applications, SMP, with the
// worst/average/best per-application lines.
func multiAppExpt(id, paper, title string, n int) Experiment {
	series := func(o Options) []core.Series {
		o = o.withDefaults()
		cells, sts, outs := multiAppRun(o, id, n)
		nsys := len(systems(bigBuffers, dual))
		return cellSeries(cells, sts, outs, func(i int) float64 { return o.Rates[i/nsys] })
	}
	run := func(o Options) string {
		o = o.withDefaults()
		cells, sts, outs := multiAppRun(o, id, n)
		nsys := len(systems(bigBuffers, dual))
		var out strings.Builder
		fmt.Fprintf(&out, "# %d capturing applications: per-app worst/avg/best rate and CPU vs data rate\n", n)
		fmt.Fprintln(&out, "# rate\tsystem\tworst%\tavg%\tbest%\tcpu%")
		for i, st := range sts {
			wo, av, be := st.AppRates()
			fmt.Fprintf(&out, "%.0f\t%s\t%6.2f\t%6.2f\t%6.2f\t%6.2f\n",
				o.Rates[i/nsys], cells[i].Cfg.Name, wo, av, be, st.CPUUsage())
		}
		xOf := func(i int) float64 { return o.Rates[i/nsys] }
		if o.Why {
			out.WriteByte('\n')
			out.WriteString(core.FormatWhy(cellSeries(cells, sts, outs, xOf)))
		}
		if o.Chaos != 0 {
			out.WriteByte('\n')
			out.WriteString(core.FormatChaos(cellSeries(cells, sts, outs, xOf)))
		}
		return out.String()
	}
	return Experiment{ID: id, Paper: paper, Title: title, Run: run, Series: series}
}

func multiAppRun(o Options, experiment string, n int) ([]core.Cell, []capture.Stats, []core.CellOutcome) {
	var cells []core.Cell
	bases := o.applyPolicy(systems(bigBuffers, dual))
	for _, r := range o.Rates {
		w := core.Workload{Packets: o.Packets, Seed: o.Seed, TargetRate: r * 1e6}
		for _, base := range bases {
			cfg := base
			cfg.NumApps = n
			cells = append(cells, core.Cell{Cfg: cfg, W: w})
		}
	}
	nsys := len(systems(bigBuffers, dual))
	sts, outs := runCellsMaybeChaos(o, experiment, cells,
		func(i int) uint64 { return uint64(o.Rates[i/nsys] * 1e3) },
		func(i int) float64 { return o.Rates[i/nsys] })
	return cells, sts, outs
}

// mmapConfigs builds Figure 6.15's systems: the two Linux machines with
// and without the memory-mapped libpcap.
func mmapConfigs(cpuMod modifier) func() []capture.Config {
	return func() []capture.Config {
		var cfgs []capture.Config
		for _, mk := range []func() capture.Config{core.Swan, core.Snipe} {
			stock := bigBuffers(cpuMod(mk()))
			patched := stock
			patched.Name += "-mmap"
			patched.MmapPatch = true
			cfgs = append(cfgs, stock, patched)
		}
		return cfgs
	}
}

// htConfigs builds Figure 6.16's systems: the Intel machines, SMP, HT on
// and off.
func htConfigs() []capture.Config {
	var cfgs []capture.Config
	for _, mk := range []func() capture.Config{core.Snipe, core.Flamingo} {
		off := bigBuffers(dual(mk()))
		on := off
		on.Name += "-HT"
		on.Hyperthreading = true
		cfgs = append(cfgs, off, on)
	}
	return cfgs
}

// osVersionConfigs builds Figure B.1's systems: FreeBSD 5.2.1 vs 5.4. The
// 5.2.1 kernel (fully Giant-locked network path) pays a per-packet cost
// factor.
func osVersionConfigs() []capture.Config {
	const giantFactor = 1.35
	var cfgs []capture.Config
	for _, mk := range []func() capture.Config{core.Moorhen, core.Flamingo} {
		v54 := bigBuffers(dual(mk()))
		v521 := v54
		v521.Name += "-5.2.1"
		if v521.KernelCostFactor == 0 {
			v521.KernelCostFactor = 1
		}
		v521.KernelCostFactor *= giantFactor
		cfgs = append(cfgs, v54, v521)
	}
	return cfgs
}

// --- chapter 4 experiments ----------------------------------------------

func runFig41(o Options) string {
	o = o.withDefaults()
	c := trace.MWNCounts(10_000_000)
	var out strings.Builder
	fmt.Fprintln(&out, "# packet size distribution (24h-trace shape): size, count, fraction")
	fmt.Fprintf(&out, "# total %d packets, mean %.1f bytes\n", c.Total(), c.Mean())
	for _, s := range c.Sizes() {
		n := c.Get(s)
		if n == 0 {
			continue
		}
		fmt.Fprintf(&out, "%d\t%d\t%.6f\n", s, n, c.Fraction(s))
	}
	return out.String()
}

func runFig42(o Options) string {
	c := trace.MWNCounts(10_000_000)
	top, rest := c.TopShares(20)
	var out strings.Builder
	fmt.Fprintln(&out, "# top-20 packet sizes: size, fraction%, cumulative%")
	for _, e := range top {
		fmt.Fprintf(&out, "%d\t%6.2f\t%6.2f\n", e.Size, e.Fraction*100, e.Cumulative*100)
	}
	fmt.Fprintf(&out, "rest\t%6.2f\t100.00\n", rest*100)
	return out.String()
}

func runFig43(o Options) string {
	o = o.withDefaults()
	input := trace.MWNCounts(1_000_000)
	d, err := dist.Build(input, dist.DefaultParams())
	if err != nil {
		return "error: " + err.Error()
	}
	g := pktgen.New(o.Seed)
	g.LoadDistribution(d)
	g.Config.Count = o.Packets * 4
	var got dist.Counts
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		got.Add(len(p.Data)-14, 1) // back to IP length
	}
	var out strings.Builder
	fmt.Fprintln(&out, "# generator fidelity: size, input fraction%, generated fraction%")
	var worst float64
	var sizes []int
	for _, e := range d.Outliers {
		sizes = append(sizes, e.Size)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		in := input.Fraction(s) * 100
		gen := got.Fraction(s) * 100
		if dev := abs(in - gen); dev > worst {
			worst = dev
		}
		fmt.Fprintf(&out, "%d\t%7.3f\t%7.3f\n", s, in, gen)
	}
	fmt.Fprintf(&out, "# mean: input %.1f, generated %.1f; worst outlier deviation %.3f%%\n",
		input.Mean(), got.Mean(), worst)
	cmp := dist.Compare(input, &got)
	fmt.Fprintf(&out, "# distance: total variation %.4f, chi-square %.1f, max |Δp| %.4f @ %d B, |Δmean| %.2f B\n",
		cmp.TotalVariation, cmp.ChiSquare, cmp.MaxAbsDiff, cmp.MaxAbsDiffSize, cmp.MeanDiff)
	return out.String()
}

func runGenRate(o Options) string {
	o = o.withDefaults()
	var out strings.Builder
	fmt.Fprintln(&out, "# maximum generation rate by frame size: size, Mbit/s (wire), kpps")
	for _, size := range []int{64, 128, 256, 512, 760, 1024, 1280, 1500} {
		g := pktgen.New(o.Seed)
		g.Config.Count = o.Packets
		g.Config.PktSize = size
		for {
			if _, ok := g.Next(); !ok {
				break
			}
		}
		secs := g.LastTime.Seconds()
		fmt.Fprintf(&out, "%d\t%7.1f\t%7.1f\n", size,
			g.AchievedRate()/1e6, float64(g.Sent)/secs/1e3)
	}
	return out.String()
}

// --- other experiments ---------------------------------------------------

func runBonnie(o Options) string {
	var out strings.Builder
	fmt.Fprintln(&out, "# bonnie++: system, write MB/s, CPU%, line-speed demand 119 MB/s, header demand 13.6 MB/s")
	for _, cfg := range core.Sniffers() {
		r := capture.Bonnie(cfg)
		fmt.Fprintf(&out, "%s\t%6.1f\t%5.1f\n", r.System, r.WriteMBps, r.CPUPct)
	}
	return out.String()
}

// runSelfSimilar is the extension experiment motivated by §2.5: with the
// same average rate, self-similar (bursty) arrivals overflow a buffer that
// paced arrivals never touch.
func runSelfSimilar(o Options) string {
	o = o.withDefaults()
	var out strings.Builder
	fmt.Fprintln(&out, "# paced vs self-similar arrivals at equal average rate (swan, default buffers, 1 CPU)")
	fmt.Fprintln(&out, "# rate\tpaced-rate%\tbursty-rate%")
	for _, r := range []float64{200, 400, 600} {
		paced := runArrival(o, r, false)
		bursty := runArrival(o, r, true)
		fmt.Fprintf(&out, "%.0f\t%6.2f\t%6.2f\n", r, paced, bursty)
	}
	return out.String()
}

func runArrival(o Options, rateMbit float64, bursty bool) float64 {
	cfg := core.Prepare(single(core.Swan()), core.Workload{Packets: o.Packets})
	sys := capture.NewSystem(cfg)
	g := pktgen.New(o.Seed)
	g.LoadDistribution(mwnDist())
	g.Config.Count = o.Packets
	g.Config.TargetRate = rateMbit * 1e6
	if !bursty {
		return sys.Run(g).CaptureRate()
	}
	// Bursty: reshape the paced train with self-similar gaps of the same
	// mean.
	meanGap := 645.0 * 8 / (rateMbit * 1e6) * 1e9
	gaps := trace.SelfSimilarArrivals(o.Packets, meanGap, 16, 1.5, o.Seed)
	st := sys.RunWithArrivals(g, gaps)
	return st.CaptureRate()
}

var (
	mwnOnce   sync.Once
	mwnCached *dist.Distribution
)

func mwnDist() *dist.Distribution {
	mwnOnce.Do(func() {
		d, err := dist.Build(trace.MWNCounts(1_000_000), dist.DefaultParams())
		if err != nil {
			panic(err)
		}
		mwnCached = d
	})
	return mwnCached
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Spread reports the fairness criterion of §6.3.3 for a finished multi-app
// run: the thesis's "deviation of about five percent under FreeBSD".
// A run that generated nothing yields all-zero rates, not NaN from 0/0.
func Spread(st capture.Stats) stats.Summary {
	rates := make([]float64, len(st.AppCaptured))
	for i, c := range st.AppCaptured {
		rates[i] = stats.Percent(float64(c), float64(st.Generated))
	}
	return stats.Summarize(rates)
}
