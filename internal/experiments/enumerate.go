// Cell enumeration: computing an experiment's measurement-cell space
// without measuring anything. The dispatch protocol leases cells by
// their durable CellKey only — a capture.Config carries closures (BPF
// filters, fault wraps) and is deliberately not wire-safe — so both
// sides re-derive the key → cell mapping locally. The derivation is the
// experiment code itself: the engines are run with a capturing executor
// that records the cells they would have dispatched and returns without
// running any. Cell layout is a pure function of the semantic Options
// fields, which is exactly what the campaign fingerprint hashes, so a
// fingerprint match guarantees the coordinator and every worker
// enumerate identical cells.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/capture"
	"repro/internal/core"
)

// CellSet is the enumerated cell space of one experiment: the exact
// cells and ids the durable engines would run, in engine layout order,
// with a durable-key index for lease resolution.
type CellSet struct {
	Experiment string
	Cells      []core.Cell
	IDs        []core.CellID
	index      map[core.CellKey]int
}

// Find resolves a leased cell key to its index in Cells/IDs.
func (s *CellSet) Find(k core.CellKey) (int, bool) {
	i, ok := s.index[k]
	return i, ok
}

// Len reports the number of enumerated cells.
func (s *CellSet) Len() int { return len(s.Cells) }

// EnumerateCells computes the cell space of experiment id under o
// without running a single measurement. Experiments that bypass the cell
// engines (distribution plots, RunOnce-based extensions) yield an empty
// set — they always run locally and are never leased. Chaos campaigns
// cannot be enumerated: their fault hooks are process-local closures.
func EnumerateCells(id string, o Options) (*CellSet, error) {
	e, err := Find(id)
	if err != nil {
		return nil, err
	}
	o = o.withDefaults()
	if o.Chaos != 0 {
		return nil, fmt.Errorf("experiments: chaos campaigns cannot be enumerated for dispatch")
	}
	cap := &capturingExecutor{set: &CellSet{
		Experiment: id,
		index:      map[core.CellKey]int{},
	}}
	// Strip every runtime knob: enumeration must see the engine's cell
	// layout, nothing else — no journal replay filtering, no events, no
	// cancellation, and certainly not a real executor.
	o.Ctx, o.Journal, o.Observer = nil, nil, nil
	o.Executor = cap
	o.Why = false
	e.Run(o)
	return cap.set, nil
}

// capturingExecutor records the cells the engines hand it and completes
// none of them: the engine's aggregation sees zero statistics (its
// rendered output is discarded) and its journal hook never fires.
type capturingExecutor struct{ set *CellSet }

func (c *capturingExecutor) ExecuteCells(ctx context.Context, experiment string, cells []core.Cell, ids []core.CellID, done func(int, *capture.Stats, string) error) []error {
	for i := range cells {
		k := core.CellKey{Experiment: experiment, Point: ids[i].Point,
			System: cells[i].Cfg.Name, Rep: ids[i].Rep}
		c.set.index[k] = len(c.set.Cells)
		c.set.Cells = append(c.set.Cells, cells[i])
		c.set.IDs = append(c.set.IDs, ids[i])
	}
	return make([]error, len(cells))
}
