package experiments

import (
	"fmt"
	"strings"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/trace"
)

// extensions returns the experiments beyond the thesis's own evaluation:
// its §7.2 future-work items and ablations of the model's design choices.
func extensions() []Experiment {
	return []Experiment{
		sweepExpt("ext-pfring", "§7.2 / [Der05]", "ring-buffer capturing stack (PF_RING-style) on Linux",
			"stock vs PACKET_MMAP vs ring stack (Linux, single CPU)", pfRingConfigs),
		sweepExpt("ext-bsdmmap", "§7.2", "memory-mapped (zero-copy read) libpcap for FreeBSD",
			"FreeBSD stock vs memory-mapped read (single CPU)", bsdMmapConfigs),
		expt("ext-workers", "§7.2 / [DV04]", "multithreaded packet analysis on multiprocessors", runWorkers),
		expt("ext-10gbe", "§7.2", "outlook: the same systems against 10 Gigabit Ethernet", run10GbE),
		expt("ext-production", "§2.3/§4.1.4", "a production day on the MWN uplink (filter + flows + header traces)", runProduction),
		expt("ext-moderation", "§2.2.1", "interrupt moderation: CPU relief vs timestamp accuracy", runModeration),
		shedExpt(),
		expt("abl-housekeeping", "model ablation", "default-buffer drop onset with and without OS housekeeping stalls", runAblHousekeeping),
		expt("abl-contention", "model ablation", "Xeon front-side-bus contention on vs off under copy load", runAblContention),
		modernExpt(),
	}
}

// pfRingConfigs compares the stock Linux stack, PACKET_MMAP, and the
// ring-buffer stack on the Linux systems at single-CPU (where the Linux
// stack hurts most).
func pfRingConfigs() []capture.Config {
	var cfgs []capture.Config
	for _, mk := range []func() capture.Config{core.Swan, core.Snipe} {
		stock := bigBuffers(single(mk()))
		mmap := stock
		mmap.Name += "-mmap"
		mmap.MmapPatch = true
		ring := stock
		ring.Name += "-ring"
		ring.PFRing = true
		cfgs = append(cfgs, stock, mmap, ring)
	}
	return cfgs
}

// bsdMmapConfigs evaluates the zero-copy read for FreeBSD the thesis
// proposes: "since FreeBSD seems to perform better than Linux in general,
// this could boost the capturing rates and reduce the CPU load" (§7.2).
func bsdMmapConfigs() []capture.Config {
	var cfgs []capture.Config
	for _, mk := range []func() capture.Config{core.Moorhen, core.Flamingo} {
		stock := bigBuffers(single(mk()))
		mm := stock
		mm.Name += "-mmap"
		mm.MmapPatch = true
		cfgs = append(cfgs, stock, mm)
	}
	return cfgs
}

// runWorkers runs the heavy zlib-3 analysis load inline vs on two worker
// threads — the [DV04] approach of spreading analysis across processors.
func runWorkers(o Options) string {
	o = o.withDefaults()
	var out strings.Builder
	fmt.Fprintln(&out, "# zlib-3 analysis: inline reader vs 2 worker threads, dual CPU")
	fmt.Fprintln(&out, "# rate\tsystem\tinline%\tworkers%")
	for _, r := range o.Rates {
		for _, mk := range []func() capture.Config{core.Swan, core.Moorhen} {
			base := bigBuffers(dual(mk()))
			base.Load.ZlibLevel = 3
			w := core.Workload{Packets: o.Packets, Seed: o.Seed, TargetRate: r * 1e6}
			inline := core.RunOnce(base, w)
			mt := base
			mt.Load.Workers = 2
			threaded := core.RunOnce(mt, w)
			fmt.Fprintf(&out, "%.0f\t%s\t%6.2f\t%6.2f\n",
				r, base.Name, inline.CaptureRate(), threaded.CaptureRate())
		}
	}
	return out.String()
}

// run10GbE scales the link to 10 Gbit/s (and assumes a modern generator
// host): "the most commonly interest would be the evaluation of 10 Gigabit
// Ethernet" (§7.2). The 2005 systems drown — the question is how fast.
func run10GbE(o Options) string {
	o = o.withDefaults()
	var out strings.Builder
	fmt.Fprintln(&out, "# 10GbE outlook: capture rate at multi-gigabit rates, dual CPU, big buffers")
	fmt.Fprintln(&out, "# rate-Mbit\tsystem\trate%\tcpu%")
	for _, r := range []float64{1000, 2000, 4000, 8000} {
		for _, base := range systems(bigBuffers, dual) {
			cfg := base
			w := core.Workload{Packets: o.Packets, Seed: o.Seed, TargetRate: r * 1e6}
			sys := capture.NewSystem(core.Prepare(cfg, w))
			g := w.Generator()
			g.Config.LineRate = 10e9
			g.Config.PerPacketCostNS = 120 // a generator host of the 10GbE era
			st := sys.Run(g)
			fmt.Fprintf(&out, "%.0f\t%s\t%6.2f\t%6.2f\n", r, cfg.Name, st.CaptureRate(), st.CPUUsage())
		}
	}
	return out.String()
}

// runAblHousekeeping removes the periodic OS housekeeping stalls: the
// default-buffer drop onset (Figure 6.2) should move far to the right,
// demonstrating which mechanism produces it in the model.
func runAblHousekeeping(o Options) string {
	o = o.withDefaults()
	var out strings.Builder
	fmt.Fprintln(&out, "# swan, default buffers, single CPU: with vs without housekeeping stalls")
	fmt.Fprintln(&out, "# rate\twith%\twithout%")
	for _, r := range o.Rates {
		w := core.Workload{Packets: o.Packets, Seed: o.Seed, TargetRate: r * 1e6}
		withHK := core.RunOnce(single(core.Swan()), w)
		cfg := single(core.Swan())
		cfg.Costs = capture.DefaultCosts()
		cfg.Costs.HousekeepNS = 0
		noHK := core.RunOnce(cfg, w)
		fmt.Fprintf(&out, "%.0f\t%6.2f\t%6.2f\n", r, withHK.CaptureRate(), noHK.CaptureRate())
	}
	return out.String()
}

// runAblContention disables the Xeon's shared-FSB contention: under
// memcpy load the dual-CPU Xeon systems should visibly improve,
// quantifying what the §2.4 architecture difference costs.
func runAblContention(o Options) string {
	o = o.withDefaults()
	var out strings.Builder
	fmt.Fprintln(&out, "# snipe + flamingo, memcpy-50, dual CPU: FSB contention on vs off")
	fmt.Fprintln(&out, "# rate\tsystem\tcontended%\tuncontended%")
	for _, r := range o.Rates {
		for _, mk := range []func() capture.Config{core.Snipe, core.Flamingo} {
			base := memcpy(50)(dual(mk()))
			w := core.Workload{Packets: o.Packets, Seed: o.Seed, TargetRate: r * 1e6}
			on := core.RunOnce(base, w)
			off := base
			off.Arch.MemContention = 1.0
			offSt := core.RunOnce(off, w)
			fmt.Fprintf(&out, "%.0f\t%s\t%6.2f\t%6.2f\n",
				r, base.Name, on.CaptureRate(), offSt.CaptureRate())
		}
	}
	return out.String()
}

// runProduction models the systems' day job (§2.3/§4.1.4): capturing the
// MWN uplink around the clock with an NIDS-like consumer — the Figure 6.5
// filter, per-flow accounting, and 76-byte header traces to disk — while
// the offered rate follows the documented diurnal curve (220 Mbit/s at
// night to 1200 Mbit/s at the afternoon peak, clamped to the GigE
// monitoring link).
func runProduction(o Options) string {
	o = o.withDefaults()
	var out strings.Builder
	fmt.Fprintln(&out, "# production day: NIDS filter + flow tracking + header traces, dual CPU, big buffers")
	fmt.Fprintln(&out, "# hour\trate-Mbit\tswan%\tsnipe%\tmoorhen%\tflamingo%")
	for hour := 0.0; hour < 24; hour += 3 {
		rate := trace.DiurnalRate(hour)
		if rate > 1000e6 {
			rate = 1000e6 // the monitoring port is a single GigE fiber
		}
		fmt.Fprintf(&out, "%02.0f\t%.0f", hour, rate/1e6)
		for _, base := range systems(bigBuffers, dual) {
			cfg := base
			cfg.Filter = filter.MustCompile(filter.ReferenceFilterExpr, 1515)
			cfg.Load.FlowTrack = true
			cfg.Load.WriteSnapLen = 76
			w := core.Workload{Packets: o.Packets, Seed: o.Seed, TargetRate: rate}
			st := core.RunOnce(cfg, w)
			fmt.Fprintf(&out, "\t%6.2f", st.CaptureRate())
		}
		fmt.Fprintln(&out)
	}
	return out.String()
}

// shedFlows is the flow diversity of the shedding experiment's train: the
// generator cycles this many UDP source ports so the flow policy has real
// flows to keep or shed (the measurement-default train is a single
// 5-tuple — fixed addresses and ports).
const shedFlows = 64

// shedPolicies is the policy axis of the shedding sweep: the unpoliced
// baseline against one representative of each policy family.
var shedPolicies = []string{"none", "uniform:4", "flow:4", "adaptive"}

// shedConfigs returns the shedding sweep's systems: the two capturing
// stacks (Linux swan, FreeBSD moorhen) at dual CPU with big buffers, at 1
// and 4 applications, each under the four policies. The series name
// encodes app count and policy ("moorhen-a4-adaptive"); the baseline
// counts flows too, so flow coverage is comparable across the policy axis.
func shedConfigs() []capture.Config {
	var cfgs []capture.Config
	for _, napps := range []int{1, 4} {
		for _, pol := range shedPolicies {
			spec, err := capture.ParsePolicy(pol)
			if err != nil {
				panic(err)
			}
			for _, mk := range []func() capture.Config{core.Swan, core.Moorhen} {
				// The fig6.10 memcpy analysis load: shedding relieves the
				// *application's* per-packet work, so without analysis cost
				// there would be nothing for the adaptive controller to win.
				cfg := memcpy(50)(dual(mk()))
				cfg.NumApps = napps
				cfg.Policy = spec
				cfg.CountFlows = true
				cfg.Name = fmt.Sprintf("%s-a%d-%s", cfg.Name, napps, pol)
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs
}

// shedRun lays the shedding sweep out rate-major over shedConfigs and runs
// the cells through the durable/resilient engines (so -json, SSE and
// -chaos all work like any other per-cell sweep).
func shedRun(o Options, experiment string) ([]core.Cell, []capture.Stats, []core.CellOutcome) {
	bases := shedConfigs()
	var cells []core.Cell
	for _, r := range o.Rates {
		w := core.Workload{Packets: o.Packets, Seed: o.Seed, TargetRate: r * 1e6, Flows: shedFlows}
		for _, cfg := range bases {
			cells = append(cells, core.Cell{Cfg: cfg, W: w})
		}
	}
	nsys := len(bases)
	sts, outs := runCellsMaybeChaos(o, experiment, cells,
		func(i int) uint64 { return uint64(o.Rates[i/nsys] * 1e3) },
		func(i int) float64 { return o.Rates[i/nsys] })
	return cells, sts, outs
}

// shedExpt builds the ext-shedding experiment: accuracy-vs-load curves of
// the three sampling policies against the unpoliced baseline — under
// overload an arbitrary tail-drop loses arbitrary packets, while a policy
// trades completeness for a *chosen* subset (whole flows, an even 1-in-N,
// or whatever the queues leave room for). Columns: per-app packet accuracy
// (captured/generated), flow coverage (distinct flows seen per app /
// flows in the train), deliberately shed share, and Jain's fairness index
// over the per-app capture counts.
func shedExpt() Experiment {
	const id = "ext-shedding"
	series := func(o Options) []core.Series {
		o = o.withDefaults()
		cells, sts, outs := shedRun(o, id)
		nsys := len(shedConfigs())
		return cellSeries(cells, sts, outs, func(i int) float64 { return o.Rates[i/nsys] })
	}
	run := func(o Options) string {
		o = o.withDefaults()
		cells, sts, outs := shedRun(o, id)
		nsys := len(shedConfigs())
		var out strings.Builder
		fmt.Fprintln(&out, "# load shedding: packet/flow accuracy, shed share and fairness by policy")
		fmt.Fprintf(&out, "# swan + moorhen, dual CPU, big buffers, %d flows per train; shed != lost (see -why)\n", shedFlows)
		fmt.Fprintln(&out, "# rate\tsystem\tpkt%\tflow%\tshed%\tfair")
		for i, st := range sts {
			napps := len(st.AppCaptured)
			var flowPct float64
			for _, f := range st.AppFlows {
				flowPct += float64(f)
			}
			if napps > 0 {
				flowPct = flowPct / float64(napps) / shedFlows * 100
			}
			shedPct := 0.0
			if st.Generated > 0 && napps > 0 {
				shedPct = float64(st.ShedTotal()) / float64(uint64(napps)*st.Generated) * 100
			}
			fmt.Fprintf(&out, "%.0f\t%s\t%6.2f\t%6.2f\t%6.2f\t%5.3f\n",
				o.Rates[i/nsys], cells[i].Cfg.Name,
				st.CaptureRate(), flowPct, shedPct, st.Fairness())
		}
		xOf := func(i int) float64 { return o.Rates[i/nsys] }
		if o.Why {
			out.WriteByte('\n')
			out.WriteString(core.FormatWhy(cellSeries(cells, sts, outs, xOf)))
		}
		if o.Chaos != 0 {
			out.WriteByte('\n')
			out.WriteString(core.FormatChaos(cellSeries(cells, sts, outs, xOf)))
		}
		return out.String()
	}
	return Experiment{ID: id, Paper: "§7.2 / [BDSW10]",
		Title: "adaptive load-aware sampling and load shedding under overload",
		Run:   run, Series: series}
}

// modernRates is the fixed data-rate axis of the modern-stack sweep, in
// Mbit/s: 2/5/10 G (where the 2005 bottlenecks have evaporated), 25/40 G
// (where per-packet software cost returns as the wall), and 100 G (where
// on some hosts the PCIe/memory bus, not the CPU, binds first). The axis
// is part of what the experiment *is* — it ignores -rates, whose default
// sub-gigabit sweep is meaningless here.
var modernRates = []float64{2000, 5000, 10000, 25000, 40000, 100000}

// modernFlows is the flow diversity of the modern trains: RSS spreads
// load by hashing 5-tuples, so the single-flow measurement default would
// degenerate every multi-queue NIC to one ring.
const modernFlows = 256

// modernGenCostNS replaces the 2005 sender's 1250 ns per-packet cost: the
// modern sweeps assume a hardware-class traffic generator that can
// actually source 100G.
const modernGenCostNS = 20

// modernConfigs returns the modern sweep's systems: the three receive
// disciplines (heron = RSS+NAPI, osprey = poll mode, kite = AF_XDP-style
// zero copy) crossed with the ring-count axis and 1 vs 4 capturing
// applications. Names encode the point ("kite-r4-a1").
func modernConfigs(rings []int) []capture.Config {
	if len(rings) == 0 {
		rings = []int{2, 4}
	}
	var cfgs []capture.Config
	for _, napps := range []int{1, 4} {
		for _, nr := range rings {
			for _, mk := range []func() capture.Config{core.Heron, core.Osprey, core.Kite} {
				cfg := mk()
				cfg.RXRings = nr
				cfg.NumApps = napps
				cfg.Name = fmt.Sprintf("%s-r%d-a%d", cfg.Name, nr, napps)
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs
}

// modernRun lays the modern sweep out rate-major over modernConfigs and
// runs the cells through the durable/resilient engines, so -json, SSE,
// -chaos, -policy, journaling and dispatch all compose like any other
// per-cell sweep.
func modernRun(o Options, experiment string) ([]core.Cell, []capture.Stats, []core.CellOutcome) {
	bases := o.applyPolicy(modernConfigs(o.Rings))
	var cells []core.Cell
	for _, r := range modernRates {
		w := core.Workload{Packets: o.Packets, Seed: o.Seed, TargetRate: r * 1e6,
			Flows: modernFlows, LineRate: 100e9, GenCostNS: modernGenCostNS}
		for _, cfg := range bases {
			cells = append(cells, core.Cell{Cfg: cfg, W: w})
		}
	}
	nsys := len(bases)
	sts, outs := runCellsMaybeChaos(o, experiment, cells,
		func(i int) uint64 { return uint64(modernRates[i/nsys] * 1e3) },
		func(i int) float64 { return modernRates[i/nsys] })
	return cells, sts, outs
}

// modernExpt builds the ext-modern experiment: the thesis's question —
// which packets survive, at what CPU cost, and which buffer overflows —
// re-asked of the receive paths that replaced the 2005 stacks at
// 10/40/100G. Columns: capturing rate, CPU usage, and the NIC-level drop
// share (pcie-bus + rss-ring + poll-budget), whose causes separate a bus
// wall from a CPU wall (see -why for the full ledger).
func modernExpt() Experiment {
	const id = "ext-modern"
	series := func(o Options) []core.Series {
		o = o.withDefaults()
		cells, sts, outs := modernRun(o, id)
		nsys := len(modernConfigs(o.Rings))
		return cellSeries(cells, sts, outs, func(i int) float64 { return modernRates[i/nsys] })
	}
	run := func(o Options) string {
		o = o.withDefaults()
		cells, sts, outs := modernRun(o, id)
		nsys := len(modernConfigs(o.Rings))
		var out strings.Builder
		fmt.Fprintln(&out, "# modern capture stacks at 10/40/100G: RSS+NAPI (heron), poll mode (osprey), zero copy (kite)")
		fmt.Fprintf(&out, "# 8-core hosts, rN = RX rings, aN = capturing apps, %d flows per train\n", modernFlows)
		fmt.Fprintln(&out, "# rate\tsystem\trate%\tcpu%\tnicdrop%")
		for i, st := range sts {
			nicPct := 0.0
			if st.Generated > 0 {
				nicPct = float64(st.NICDrops) / float64(st.Generated) * 100
			}
			fmt.Fprintf(&out, "%s\t%s\t%6.2f\t%6.2f\t%6.2f\n",
				core.FormatRate(modernRates[i/nsys]), cells[i].Cfg.Name,
				st.CaptureRate(), st.CPUUsage(), nicPct)
		}
		xOf := func(i int) float64 { return modernRates[i/nsys] }
		if o.Why {
			out.WriteByte('\n')
			out.WriteString(core.FormatWhy(cellSeries(cells, sts, outs, xOf)))
		}
		if o.Chaos != 0 {
			out.WriteByte('\n')
			out.WriteString(core.FormatChaos(cellSeries(cells, sts, outs, xOf)))
		}
		return out.String()
	}
	return Experiment{ID: id, Paper: "§7.2 outlook",
		Title: "modern capture stacks: RSS multi-queue, poll mode, zero copy at 10/40/100G",
		Run:   run, Series: series}
}

// runModeration quantifies the §2.2.1 trade-off: interrupt moderation
// lowers the interrupt CPU share but degrades packet timestamps — "the
// timestamps of most packets and along with this the inter-packet gaps are
// not correct", with whole batches sharing one stamp.
func runModeration(o Options) string {
	o = o.withDefaults()
	var out strings.Builder
	fmt.Fprintln(&out, "# interrupt moderation on moorhen at 700 Mbit/s, dual CPU")
	fmt.Fprintln(&out, "# delay-us\trate%\tintr-cpu%\tts-err-mean-us\tts-ties%")
	for _, delayUS := range []float64{0, 20, 50, 100, 250} {
		cfg := bigBuffers(dual(core.Moorhen()))
		w := core.Workload{Packets: o.Packets, Seed: o.Seed, TargetRate: 700e6}
		prepared := core.Prepare(cfg, w)
		prepared.Costs.ModerationDelayNS = delayUS * 1e3
		sys := capture.NewSystem(prepared)
		st := sys.Run(w.Generator())
		intrPct := 0.0
		if st.WallTime > 0 {
			intrPct = float64(st.BusyByCls[0]) / float64(st.WallTime) / float64(st.CPUCount) * 100
		}
		ties := 0.0
		if st.Stamped > 0 {
			ties = float64(st.TsTies) / float64(st.Stamped) * 100
		}
		fmt.Fprintf(&out, "%.0f\t%6.2f\t%6.2f\t%8.2f\t%6.2f\n",
			delayUS, st.CaptureRate(), intrPct, st.TsErrMeanUS(), ties)
	}
	return out.String()
}
