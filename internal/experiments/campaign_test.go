package experiments

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
)

func campaignOpts() Options {
	return Options{Packets: 2000, Reps: 2, Seed: 1, Rates: []float64{300, 900}, Parallelism: 2}
}

// crashResume simulates a crash mid-campaign: cut the journal file in half
// (almost certainly mid-frame — the torn-tail shape) and reopen it.
func crashResume(t *testing.T, dir string, o Options) *Campaign {
	t.Helper()
	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ResumeCampaign(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCampaignResumeByteIdentical is the tentpole acceptance check at the
// experiments layer: a campaign that crashed mid-run (torn journal tail)
// and was resumed renders output byte-identical to an uninterrupted,
// unjournaled run.
func TestCampaignResumeByteIdentical(t *testing.T) {
	e, err := Find("fig6.2-smp")
	if err != nil {
		t.Fatal(err)
	}
	for _, chaos := range []uint64{0, 7} {
		o := campaignOpts()
		o.Chaos = chaos
		clean := e.Run(o)

		dir := t.TempDir()
		c, err := CreateCampaign(dir, o)
		if err != nil {
			t.Fatal(err)
		}
		oj := o
		oj.Journal = c
		if got := e.Run(oj); got != clean {
			t.Fatalf("chaos=%d: journaled run differs from plain run", chaos)
		}
		recorded := c.Len()
		if recorded == 0 {
			t.Fatal("journaled run recorded no cells")
		}
		c.Close()

		rc := crashResume(t, dir, o)
		if !rc.Torn {
			t.Fatal("half-truncated journal not reported torn")
		}
		if rc.Replayed == 0 || rc.Replayed >= recorded {
			t.Fatalf("crash recovery replayed %d of %d cells", rc.Replayed, recorded)
		}
		or := o
		or.Journal = rc
		if got := e.Run(or); got != clean {
			t.Fatalf("chaos=%d: resumed run not byte-identical to uninterrupted run", chaos)
		}
		// The resumed run must have re-recorded the lost cells.
		if rc.Len() != recorded {
			t.Fatalf("resumed campaign holds %d cells, want %d", rc.Len(), recorded)
		}
		rc.Close()
	}
}

// TestCampaignFingerprintMismatch: a journal recorded under different
// semantic options is refused with the typed error; presentation and
// scheduling knobs don't participate in the identity.
func TestCampaignFingerprintMismatch(t *testing.T) {
	o := campaignOpts()
	dir := t.TempDir()
	c, err := CreateCampaign(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	other := o
	other.Seed = 99
	_, err = ResumeCampaign(dir, other)
	var me *journal.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("resume under different seed: want *journal.MismatchError, got %v", err)
	}

	// Parallelism/Why/Ctx/Journal are not part of the campaign identity.
	same := o
	same.Parallelism = 7
	same.Why = true
	rc, err := ResumeCampaign(dir, same)
	if err != nil {
		t.Fatalf("resume with different presentation knobs refused: %v", err)
	}
	rc.Close()
}

// TestCampaignResumeHeaderOnly: a campaign interrupted after Create wrote
// the header but before any cell completed must resume as a clean, empty
// campaign — zero replayed cells, nothing torn — and then run to the same
// byte-identical output as an uninterrupted campaign.
func TestCampaignResumeHeaderOnly(t *testing.T) {
	o := campaignOpts()
	dir := t.TempDir()
	c, err := CreateCampaign(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	rc, err := ResumeCampaign(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Torn || rc.TornBytes != 0 {
		t.Fatalf("header-only campaign reported torn: %+v", rc)
	}
	if rc.Replayed != 0 || rc.Len() != 0 {
		t.Fatalf("header-only campaign replayed %d cells (len %d), want 0", rc.Replayed, rc.Len())
	}

	e, err := Find("fig6.2-smp")
	if err != nil {
		t.Fatal(err)
	}
	clean := e.Run(o)
	or := o
	or.Journal = rc
	if got := e.Run(or); got != clean {
		t.Fatal("run resumed from a header-only journal differs from a plain run")
	}
	if rc.Len() == 0 {
		t.Fatal("resumed run recorded no cells")
	}
	rc.Close()
}

// TestCampaignDuplicateLastWins: recording one cell twice keeps the later
// outcome after a resume — the write-ahead log's last-write-wins contract.
func TestCampaignDuplicateLastWins(t *testing.T) {
	o := campaignOpts()
	dir := t.TempDir()
	c, err := CreateCampaign(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	k := core.CellKey{Experiment: "rates", Point: 300000, System: "swan", Rep: 1}
	if err := c.Record(k, core.CellOutcome{OK: true, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Record(k, core.CellOutcome{OK: true, Attempts: 3, Log: []string{"retry"}}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	rc, err := ResumeCampaign(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.Len() != 1 {
		t.Fatalf("duplicate key counted twice: %d cells", rc.Len())
	}
	out, ok := rc.Lookup(k)
	if !ok || out.Attempts != 3 || len(out.Log) != 1 {
		t.Fatalf("last write did not win: %+v", out)
	}
}

// TestFingerprintSemanticFields: the identity tracks every semantic knob.
func TestFingerprintSemanticFields(t *testing.T) {
	base, err := Fingerprint(campaignOpts())
	if err != nil {
		t.Fatal(err)
	}
	again, _ := Fingerprint(campaignOpts())
	if base != again {
		t.Fatal("fingerprint not deterministic")
	}
	for name, mutate := range map[string]func(*Options){
		"packets": func(o *Options) { o.Packets = 4000 },
		"reps":    func(o *Options) { o.Reps = 3 },
		"seed":    func(o *Options) { o.Seed = 2 },
		"rates":   func(o *Options) { o.Rates = []float64{100} },
		"chaos":   func(o *Options) { o.Chaos = 1 },
		"policy":  func(o *Options) { o.Policy = "uniform:4" },
		"rings":   func(o *Options) { o.Rings = []int{8} },
	} {
		o := campaignOpts()
		mutate(&o)
		fp, _ := Fingerprint(o)
		if fp == base {
			t.Errorf("fingerprint ignores %s", name)
		}
	}
}

// TestFingerprintPolicyBackwardCompatible: with no policy set, the
// fingerprint input marshals exactly as it did before the Policy field
// existed, so journals recorded by older builds of the same version keep
// resuming.
func TestFingerprintPolicyBackwardCompatible(t *testing.T) {
	in := fingerprintInput{Packets: 2000, Reps: 2, Seed: 1, Rates: []float64{300}, Chaos: 0}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"packets":2000,"reps":2,"seed":1,"rates":[300],"chaos":0}`
	if string(b) != want {
		t.Fatalf("empty-policy fingerprint input = %s, want %s", b, want)
	}
}

// TestFingerprintRingsBackwardCompatible: with no -rings set, the
// fingerprint input still marshals exactly as before the Rings field
// existed (including with a policy set), so pre-modern-sweep journals
// keep resuming.
func TestFingerprintRingsBackwardCompatible(t *testing.T) {
	in := fingerprintInput{Packets: 2000, Reps: 2, Seed: 1, Rates: []float64{300}, Chaos: 0, Policy: "uniform:4"}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"packets":2000,"reps":2,"seed":1,"rates":[300],"chaos":0,"policy":"uniform:4"}`
	if string(b) != want {
		t.Fatalf("empty-rings fingerprint input = %s, want %s", b, want)
	}
}
