package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/capture"
)

// TestWhyFlagAppendsCauses checks the -why plumbing: with Why off the
// output is unchanged; with Why on, the drop-cause table is appended.
func TestWhyFlagAppendsCauses(t *testing.T) {
	for _, id := range []string{"fig6.2-nosmp", "fig6.4-nosmp", "fig6.7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := Find(id)
			if err != nil {
				t.Fatal(err)
			}
			plain := e.Run(fast())
			o := fast()
			o.Why = true
			withWhy := e.Run(o)
			if !strings.HasPrefix(withWhy, plain) {
				t.Fatalf("-why must only append, not alter the table:\n%s", withWhy)
			}
			if !strings.Contains(withWhy, "# why: drop causes per point") {
				t.Fatalf("-why output missing the cause table:\n%s", withWhy)
			}
		})
	}
}

// TestRecordsConserve checks the -json records: every series experiment
// yields one record per (x, system) point, and dropped+captured packets
// reconcile with the generated count for single-repetition runs.
func TestRecordsConserve(t *testing.T) {
	e, err := Find("fig6.2-nosmp")
	if err != nil {
		t.Fatal(err)
	}
	recs := Records(e, fast())
	if len(recs) != 2*4 { // 2 rates × 4 systems
		t.Fatalf("got %d records, want 8", len(recs))
	}
	for _, r := range recs {
		if r.Experiment != e.ID || r.System == "" || r.Generated == 0 {
			t.Fatalf("malformed record: %+v", r)
		}
		var perApp, shared uint64
		for c := capture.Cause(0); c < capture.NumCauses; c++ {
			if c.Shared() {
				shared += r.Drops.Drops[c].Packets
			} else {
				perApp += r.Drops.Drops[c].Packets
			}
		}
		captured := uint64(r.RatePct / 100 * float64(r.Generated))
		total := captured + perApp + shared
		if diff := int64(total) - int64(r.Generated); diff > 1 || diff < -1 {
			t.Fatalf("record does not conserve (captured %d + drops %d+%d vs generated %d): %+v",
				captured, perApp, shared, r.Generated, r)
		}
		if _, err := json.Marshal(r); err != nil {
			t.Fatalf("record not marshalable: %v", err)
		}
	}
}

// TestRecordsNilForTextOnly: experiments without a series form yield no
// records (the -json mode skips them).
func TestRecordsNilForTextOnly(t *testing.T) {
	e, err := Find("fig4.1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Series != nil {
		t.Fatal("fig4.1 should have no series form")
	}
	if recs := Records(e, fast()); recs != nil {
		t.Fatalf("text-only experiment produced %d records", len(recs))
	}
}

// TestWhyAndJSONGolden locks the -why table and the NDJSON record stream
// of a small deterministic sweep against golden files.
func TestWhyAndJSONGolden(t *testing.T) {
	e, err := Find("fig6.2-nosmp")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Packets: 3000, Reps: 1, Seed: 1, Rates: []float64{300, 900}, Why: true}

	var jsonOut strings.Builder
	enc := json.NewEncoder(&jsonOut)
	for _, r := range Records(e, o) {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	for name, got := range map[string]string{
		"why.golden":  e.Run(o),
		"json.golden": jsonOut.String(),
	} {
		golden := filepath.Join("testdata", name)
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
		}
		if got != string(want) {
			t.Fatalf("%s drifted:\n--- got ---\n%s--- want ---\n%s", name, got, want)
		}
	}
}
