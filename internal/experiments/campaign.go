// Campaign durability: the adapter between the measurement engines'
// CellJournal interface and the on-disk write-ahead log (internal/journal).
//
// A campaign is one invocation of the experiment driver over a fixed
// configuration. Its identity is the campaign fingerprint — a hash of the
// semantic Options fields (packets, reps, seed, rates, chaos seed) and the
// module version — stamped into the journal header. Resuming under a
// different configuration is refused: replaying cells measured under other
// parameters would silently corrupt the results.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"runtime/debug"
	"sync"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/journal"
)

// JournalFile is the campaign journal's file name inside the -journal
// directory.
const JournalFile = "campaign.journal"

// fingerprintInput is the semantic identity of a campaign: every Options
// field that changes what the measurement cells compute. Scheduling and
// presentation knobs (Parallelism, Why) and runtime fields (Ctx, Journal)
// are deliberately absent — they never change a cell's result.
type fingerprintInput struct {
	Packets int       `json:"packets"`
	Reps    int       `json:"reps"`
	Seed    uint64    `json:"seed"`
	Rates   []float64 `json:"rates"`
	Chaos   uint64    `json:"chaos"`
	// Policy is omitted when empty so campaigns recorded before the
	// sampling policies existed keep their fingerprints.
	Policy string `json:"policy,omitempty"`
	// Rings is omitted when empty so campaigns recorded before the
	// modern-stack sweep existed keep their fingerprints.
	Rings []int `json:"rings,omitempty"`
}

// Fingerprint hashes the campaign identity of o (defaults applied), bound
// to the module version so a journal recorded by a different build of the
// model is refused rather than trusted.
func Fingerprint(o Options) (string, error) {
	o = o.withDefaults()
	return journal.Fingerprint(fingerprintInput{
		Packets: o.Packets,
		Reps:    o.Reps,
		Seed:    o.Seed,
		Rates:   o.Rates,
		Chaos:   o.Chaos,
		Policy:  o.Policy,
		Rings:   o.Rings,
	}, moduleVersion())
}

// moduleVersion identifies the build whose model semantics the journal's
// recorded cells embody.
func moduleVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		return bi.Main.Path + "@" + bi.Main.Version
	}
	return "unknown"
}

// cellRecord is one journal frame: the durable key and the final outcome
// of a completed measurement cell.
type cellRecord struct {
	Key core.CellKey     `json:"key"`
	Out core.CellOutcome `json:"out"`
}

// Campaign is the durable cell store of one experiment-driver invocation.
// It implements core.CellJournal: Record appends to the fsync'd on-disk
// write-ahead log before returning, Lookup serves the outcomes recovered
// at resume time (plus anything recorded since). Safe for concurrent use
// by the engines' workers.
type Campaign struct {
	j  *journal.Journal
	mu sync.Mutex
	m  map[core.CellKey]core.CellOutcome

	// Observer, when set, receives an EventCheckpoint after every durably
	// recorded cell (the monitoring service surfaces these as journal
	// progress). Assign it before the campaign starts running.
	Observer core.Observer

	// Resume diagnostics, for the CLI's status line: the number of cell
	// records recovered from the journal, and whether a torn tail frame was
	// truncated (TornBytes dropped).
	Replayed  int
	Torn      bool
	TornBytes int64
}

var _ core.CellJournal = (*Campaign)(nil)

// CreateCampaign starts a fresh campaign journal in dir (created if
// missing), stamped with o's fingerprint.
func CreateCampaign(dir string, o Options) (*Campaign, error) {
	return CreateCampaignFS(faultfs.OS, dir, o)
}

// CreateCampaignFS is CreateCampaign through an injectable filesystem —
// the -diskchaos seam.
func CreateCampaignFS(fsys faultfs.FS, dir string, o Options) (*Campaign, error) {
	fp, err := Fingerprint(o)
	if err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j, err := journal.CreateFS(fsys, filepath.Join(dir, JournalFile), fp)
	if err != nil {
		return nil, err
	}
	return &Campaign{j: j, m: map[core.CellKey]core.CellOutcome{}}, nil
}

// ResumeCampaign reopens the campaign journal in dir, verifies it was
// recorded under o's fingerprint (a *journal.MismatchError otherwise) and
// recovers every completed cell. A torn final frame — the crash-mid-append
// shape — is truncated and reported via the Torn fields, never an error.
// Duplicate records of one cell are last-write-wins.
func ResumeCampaign(dir string, o Options) (*Campaign, error) {
	return ResumeCampaignFS(faultfs.OS, dir, o)
}

// ResumeCampaignFS is ResumeCampaign through an injectable filesystem.
func ResumeCampaignFS(fsys faultfs.FS, dir string, o Options) (*Campaign, error) {
	fp, err := Fingerprint(o)
	if err != nil {
		return nil, err
	}
	j, rec, err := journal.ResumeFS(fsys, filepath.Join(dir, JournalFile), fp)
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		j: j, m: make(map[core.CellKey]core.CellOutcome, len(rec.Records)),
		Torn: rec.Torn, TornBytes: rec.TornBytes,
	}
	for _, raw := range rec.Records {
		var cr cellRecord
		if err := json.Unmarshal(raw, &cr); err != nil {
			j.Close()
			return nil, fmt.Errorf("experiments: corrupt cell record in %s: %w", j.Path(), err)
		}
		c.m[cr.Key] = cr.Out
	}
	c.Replayed = len(c.m)
	return c, nil
}

// Lookup returns the recorded final outcome of a cell, if any.
func (c *Campaign) Lookup(k core.CellKey) (core.CellOutcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.m[k]
	return out, ok
}

// Record makes the outcome durable (fsync'd into the write-ahead log)
// before admitting it to the in-memory index.
func (c *Campaign) Record(k core.CellKey, out core.CellOutcome) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.j.Append(cellRecord{Key: k, Out: out}); err != nil {
		return err
	}
	c.m[k] = out
	if c.Observer != nil {
		c.Observer.Observe(core.Event{
			Kind: core.EventCheckpoint, Experiment: k.Experiment,
			System: k.System, Point: k.Point, Rep: k.Rep,
			Detail: fmt.Sprintf("cell %d durable", len(c.m)),
		})
	}
	return nil
}

// DecodeCellRecord decodes one campaign-journal frame payload into the
// durable cell key and final outcome. The monitoring service uses it to
// serve cells out of a journal it follows read-only.
func DecodeCellRecord(payload []byte) (core.CellKey, core.CellOutcome, error) {
	var cr cellRecord
	if err := json.Unmarshal(payload, &cr); err != nil {
		return core.CellKey{}, core.CellOutcome{}, err
	}
	return cr.Key, cr.Out, nil
}

// OnAppendRetry registers an observer of the journal's storage-fault
// pause-and-retry repairs (see journal.Journal.OnRetry): fn runs after a
// failed cell-record append has been truncated away, before the retry.
func (c *Campaign) OnAppendRetry(fn func(err error, attempt int)) { c.j.OnRetry(fn) }

// Len reports the number of distinct cells currently recorded.
func (c *Campaign) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Close flushes and closes the underlying journal file.
func (c *Campaign) Close() error { return c.j.Close() }

// Run executes one experiment under the campaign: a convenience for
// drivers that resolve ctx and journal into the options in one place.
func (c *Campaign) Run(ctx context.Context, e Experiment, o Options) string {
	o.Ctx, o.Journal = ctx, c
	return e.Run(o)
}
