package pcapfile

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestERFRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewERFWriter(&buf)
	base := time.Unix(1131980000, 500_000_000).UTC()
	pkts := [][]byte{
		bytes.Repeat([]byte{1}, 54),
		bytes.Repeat([]byte{2}, 660),
		bytes.Repeat([]byte{3}, 1514),
	}
	for i, p := range pkts {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), p, len(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewERFReader(&buf)
	for i, want := range pkts {
		info, data, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("record %d data mismatch", i)
		}
		if info.OrigLen != len(want) {
			t.Fatalf("record %d wlen = %d", i, info.OrigLen)
		}
		wantTS := base.Add(time.Duration(i) * time.Millisecond)
		if d := info.Timestamp.Sub(wantTS); d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("record %d ts off by %v", i, d)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestERFSkipsNonEthernet(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a type-3 (ATM) record followed by an Ethernet one.
	hdr := make([]byte, ERFRecordHeaderLen)
	hdr[8] = 3
	hdr[10], hdr[11] = 0, ERFRecordHeaderLen+4 // rlen
	buf.Write(hdr)
	buf.Write([]byte{9, 9, 9, 9})
	w := NewERFWriter(&buf)
	if err := w.WritePacket(time.Unix(1, 0), bytes.Repeat([]byte{7}, 60), 60); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewERFReader(&buf)
	_, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 60 || data[0] != 7 {
		t.Fatalf("wrong record surfaced: %d bytes", len(data))
	}
	if r.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", r.Skipped)
	}
}

func TestERFLossCounter(t *testing.T) {
	var buf bytes.Buffer
	w := NewERFWriter(&buf)
	if err := w.WritePacket(time.Unix(1, 0), make([]byte, 60), 60); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[12], raw[13] = 0, 5 // lctr = 5
	r := NewERFReader(bytes.NewReader(raw))
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if r.LossCounter != 5 {
		t.Fatalf("loss counter = %d, want 5", r.LossCounter)
	}
}

func TestERFTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewERFWriter(&buf)
	if err := w.WritePacket(time.Unix(1, 0), make([]byte, 100), 100); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	r := NewERFReader(bytes.NewReader(raw[:len(raw)-10]))
	if _, _, err := r.Next(); err != ErrShortRecord {
		t.Fatalf("want ErrShortRecord, got %v", err)
	}
}

func TestERFBadRlen(t *testing.T) {
	hdr := make([]byte, ERFRecordHeaderLen)
	hdr[8] = ERFTypeEthernet
	hdr[10], hdr[11] = 0, 4 // rlen < header
	r := NewERFReader(bytes.NewReader(hdr))
	if _, _, err := r.Next(); err == nil {
		t.Fatal("bad rlen accepted")
	}
}

// Property: arbitrary frames and wire lengths survive the round trip, and
// timestamps are preserved to sub-microsecond precision.
func TestERFRoundTripProperty(t *testing.T) {
	f := func(payload []byte, extra uint8, sec uint32, nanos uint32) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		ts := time.Unix(int64(sec), int64(nanos%1_000_000_000)).UTC()
		var buf bytes.Buffer
		w := NewERFWriter(&buf)
		wire := len(payload) + int(extra)
		if err := w.WritePacket(ts, payload, wire); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewERFReader(&buf)
		info, data, err := r.Next()
		if err != nil {
			return false
		}
		if !bytes.Equal(data, payload) || info.OrigLen != wire {
			return false
		}
		d := info.Timestamp.Sub(ts)
		return d > -time.Microsecond && d < time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
