package pcapfile

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 65535)
	base := time.Unix(1131980000, 123456000).UTC() // Nov 2005
	pkts := [][]byte{
		bytes.Repeat([]byte{1}, 40),
		bytes.Repeat([]byte{2}, 576),
		bytes.Repeat([]byte{3}, 1500),
	}
	for i, p := range pkts {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), p, len(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hdr := r.Header()
	if hdr.LinkType != LinkTypeEthernet || hdr.SnapLen != 65535 ||
		hdr.VersionMajor != 2 || hdr.VersionMinor != 4 || hdr.Nanosecond {
		t.Fatalf("header = %+v", hdr)
	}
	for i, want := range pkts {
		info, data, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("packet %d data mismatch", i)
		}
		if info.CapLen != len(want) || info.OrigLen != len(want) {
			t.Fatalf("packet %d lengths = %+v", i, info)
		}
		wantTS := base.Add(time.Duration(i) * time.Millisecond)
		if !info.Timestamp.Equal(wantTS) {
			t.Fatalf("packet %d ts = %v, want %v", i, info.Timestamp, wantTS)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 76) // the thesis's header-trace snap length
	full := bytes.Repeat([]byte{9}, 1500)
	if err := w.WritePacket(time.Unix(0, 0), full, len(full)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	info, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 76 || info.CapLen != 76 {
		t.Fatalf("caplen = %d, want 76", info.CapLen)
	}
	if info.OrigLen != 1500 {
		t.Fatalf("origlen = %d, want 1500", info.OrigLen)
	}
}

func TestBigEndianAndNanosecondInput(t *testing.T) {
	// Hand-build a big-endian nanosecond file with one 4-byte packet.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], MagicNanoseconds)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 96)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:4], 1000)
	binary.BigEndian.PutUint32(rec[4:8], 789) // nanoseconds
	binary.BigEndian.PutUint32(rec[8:12], 4)
	binary.BigEndian.PutUint32(rec[12:16], 60)
	buf.Write(rec[:])
	buf.Write([]byte{0xde, 0xad, 0xbe, 0xef})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Header().Nanosecond || r.Header().SnapLen != 96 {
		t.Fatalf("header = %+v", r.Header())
	}
	info, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if info.Timestamp.UnixNano() != 1000*1e9+789 {
		t.Fatalf("ts = %v", info.Timestamp.UnixNano())
	}
	if !bytes.Equal(data, []byte{0xde, 0xad, 0xbe, 0xef}) || info.OrigLen != 60 {
		t.Fatalf("record = %+v %x", info, data)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}))
	if err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WritePacket(time.Unix(0, 0), make([]byte, 100), 100); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-10]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err != ErrShortRecord {
		t.Fatalf("err = %v, want ErrShortRecord", err)
	}
}

func TestEmptyFileHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1515)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Fatalf("empty capture file = %d bytes, want 24", buf.Len())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

// Property: arbitrary packet contents and sizes survive a write/read cycle.
func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, 65535)
		for i, p := range payloads {
			if len(p) > 4000 {
				p = p[:4000]
			}
			payloads[i] = p
			if err := w.WritePacket(time.Unix(int64(i), 0), p, len(p)); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range payloads {
			_, data, err := r.Next()
			if err != nil {
				return false
			}
			if !bytes.Equal(data, want) {
				return false
			}
		}
		_, _, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
