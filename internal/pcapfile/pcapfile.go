// Package pcapfile reads and writes the classic libpcap capture file
// format (the format tcpdump -w produces and createDist consumes), without
// any dependency on libpcap itself.
//
// Both byte orders and both timestamp resolutions (microsecond magic
// 0xa1b2c3d4 and nanosecond magic 0xa1b23c4d) are supported when reading;
// writing always produces native little-endian microsecond files, the most
// widely compatible choice.
package pcapfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers.
const (
	MagicMicroseconds = 0xa1b2c3d4
	MagicNanoseconds  = 0xa1b23c4d
)

// LinkTypeEthernet is the only link type the tools produce (DLT_EN10MB).
const LinkTypeEthernet = 1

// Header is the global pcap file header.
type Header struct {
	VersionMajor uint16
	VersionMinor uint16
	SnapLen      uint32
	LinkType     uint32
	Nanosecond   bool
}

// PacketInfo is the per-packet record header.
type PacketInfo struct {
	Timestamp time.Time
	CapLen    int // bytes stored in the file
	OrigLen   int // bytes on the wire
}

// Reader reads packets from a pcap file.
type Reader struct {
	r      *bufio.Reader
	order  binary.ByteOrder
	hdr    Header
	buf    []byte
	recHdr [16]byte
}

// ErrShortRecord reports a truncated packet record.
var ErrShortRecord = errors.New("pcapfile: truncated packet record")

// NewReader parses the file header from r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magicBuf [4]byte
	if _, err := io.ReadFull(br, magicBuf[:]); err != nil {
		return nil, fmt.Errorf("pcapfile: reading magic: %w", err)
	}
	var order binary.ByteOrder
	var nano bool
	switch le := binary.LittleEndian.Uint32(magicBuf[:]); le {
	case MagicMicroseconds:
		order = binary.LittleEndian
	case MagicNanoseconds:
		order, nano = binary.LittleEndian, true
	default:
		switch be := binary.BigEndian.Uint32(magicBuf[:]); be {
		case MagicMicroseconds:
			order = binary.BigEndian
		case MagicNanoseconds:
			order, nano = binary.BigEndian, true
		default:
			return nil, fmt.Errorf("pcapfile: bad magic %#08x", le)
		}
	}
	var rest [20]byte
	if _, err := io.ReadFull(br, rest[:]); err != nil {
		return nil, fmt.Errorf("pcapfile: reading header: %w", err)
	}
	hdr := Header{
		VersionMajor: order.Uint16(rest[0:2]),
		VersionMinor: order.Uint16(rest[2:4]),
		SnapLen:      order.Uint32(rest[12:16]),
		LinkType:     order.Uint32(rest[16:20]),
		Nanosecond:   nano,
	}
	return &Reader{r: br, order: order, hdr: hdr}, nil
}

// Header returns the parsed file header.
func (r *Reader) Header() Header { return r.hdr }

// Next returns the next packet record. The returned data slice is reused by
// subsequent calls; copy it if it must outlive the next Next call. io.EOF
// is returned cleanly at end of file.
func (r *Reader) Next() (PacketInfo, []byte, error) {
	if _, err := io.ReadFull(r.r, r.recHdr[:]); err != nil {
		if err == io.EOF {
			return PacketInfo{}, nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return PacketInfo{}, nil, ErrShortRecord
		}
		return PacketInfo{}, nil, err
	}
	sec := r.order.Uint32(r.recHdr[0:4])
	frac := r.order.Uint32(r.recHdr[4:8])
	capLen := r.order.Uint32(r.recHdr[8:12])
	origLen := r.order.Uint32(r.recHdr[12:16])
	if capLen > 1<<22 {
		return PacketInfo{}, nil, fmt.Errorf("pcapfile: implausible capture length %d", capLen)
	}
	if cap(r.buf) < int(capLen) {
		r.buf = make([]byte, capLen)
	}
	data := r.buf[:capLen]
	if _, err := io.ReadFull(r.r, data); err != nil {
		return PacketInfo{}, nil, ErrShortRecord
	}
	nanos := int64(frac)
	if !r.hdr.Nanosecond {
		nanos *= 1000
	}
	return PacketInfo{
		Timestamp: time.Unix(int64(sec), nanos).UTC(),
		CapLen:    int(capLen),
		OrigLen:   int(origLen),
	}, data, nil
}

// Writer writes packets to a pcap file.
type Writer struct {
	w       *bufio.Writer
	snaplen uint32
	wrote   bool
}

// NewWriter creates a Writer; the file header is emitted on the first call
// to WritePacket or Flush.
func NewWriter(w io.Writer, snaplen uint32) *Writer {
	if snaplen == 0 {
		snaplen = 65535
	}
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), snaplen: snaplen}
}

func (w *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], w.snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	_, err := w.w.Write(hdr[:])
	w.wrote = true
	return err
}

// WritePacket appends one packet. If len(data) exceeds the snap length only
// the first snaplen bytes are stored, with OrigLen recording origLen (pass
// len(data) when the full packet is in hand).
func (w *Writer) WritePacket(ts time.Time, data []byte, origLen int) error {
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	capLen := len(data)
	if uint32(capLen) > w.snaplen {
		capLen = int(w.snaplen)
	}
	if origLen < capLen {
		origLen = capLen
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(origLen))
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data[:capLen])
	return err
}

// Flush writes any buffered data (and the header, for an empty capture).
func (w *Writer) Flush() error {
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}
