package pcapfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// ERF (Extensible Record Format) is the trace format of Endace DAG capture
// cards. The thesis notes that createDist "can only read pcap formatted
// trace files" because "there is no library to process DAG trace files"
// (§A.1.2) — this reader closes that gap.
//
// Each record starts with a 16-byte header:
//
//	bytes 0..7   timestamp, little-endian 32.32 fixed point seconds
//	             since the UNIX epoch
//	byte  8      record type (2 = Ethernet)
//	byte  9      flags
//	bytes 10..11 rlen: total record length including header (big endian)
//	bytes 12..13 lctr: loss counter
//	bytes 14..15 wlen: wire length of the packet (big endian)
//
// Ethernet records carry 2 bytes of padding/offset before the frame.

// ERF record types (the subset relevant for Ethernet capture).
const (
	ERFTypeEthernet = 2
)

// ERFRecordHeaderLen is the fixed ERF header size.
const ERFRecordHeaderLen = 16

// ERFReader reads Ethernet packets from an ERF stream.
type ERFReader struct {
	r   *bufio.Reader
	buf []byte

	// LossCounter accumulates the per-record loss counters (packets the
	// capture hardware dropped between records).
	LossCounter uint64
	// Skipped counts non-Ethernet records that were ignored.
	Skipped uint64
}

// NewERFReader wraps r. ERF has no file header: the first record starts
// at byte 0.
func NewERFReader(r io.Reader) *ERFReader {
	return &ERFReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next Ethernet packet. Non-Ethernet records are skipped
// and counted. The data slice is reused across calls. io.EOF signals a
// clean end of the stream.
func (e *ERFReader) Next() (PacketInfo, []byte, error) {
	for {
		var hdr [ERFRecordHeaderLen]byte
		if _, err := io.ReadFull(e.r, hdr[:]); err != nil {
			if err == io.EOF {
				return PacketInfo{}, nil, io.EOF
			}
			if err == io.ErrUnexpectedEOF {
				return PacketInfo{}, nil, ErrShortRecord
			}
			return PacketInfo{}, nil, err
		}
		ts := binary.LittleEndian.Uint64(hdr[0:8])
		typ := hdr[8] & 0x7f
		rlen := int(binary.BigEndian.Uint16(hdr[10:12]))
		lctr := binary.BigEndian.Uint16(hdr[12:14])
		wlen := int(binary.BigEndian.Uint16(hdr[14:16]))
		e.LossCounter += uint64(lctr)
		if rlen < ERFRecordHeaderLen {
			return PacketInfo{}, nil, fmt.Errorf("pcapfile: ERF rlen %d shorter than header", rlen)
		}
		body := rlen - ERFRecordHeaderLen
		if cap(e.buf) < body {
			e.buf = make([]byte, body)
		}
		data := e.buf[:body]
		if _, err := io.ReadFull(e.r, data); err != nil {
			return PacketInfo{}, nil, ErrShortRecord
		}
		if typ != ERFTypeEthernet {
			e.Skipped++
			continue
		}
		if len(data) < 2 {
			return PacketInfo{}, nil, fmt.Errorf("pcapfile: ERF Ethernet record without pad")
		}
		frame := data[2:] // skip the 2-byte Ethernet pad
		capLen := len(frame)
		if wlen < capLen {
			capLen = wlen
			frame = frame[:capLen]
		}
		return PacketInfo{
			Timestamp: erfTime(ts),
			CapLen:    capLen,
			OrigLen:   wlen,
		}, frame, nil
	}
}

// erfTime converts the 32.32 fixed-point ERF timestamp.
func erfTime(ts uint64) time.Time {
	sec := int64(ts >> 32)
	frac := ts & 0xffffffff
	// fractional seconds: frac / 2^32, in nanoseconds.
	nanos := int64((frac*1_000_000_000)>>32) + int64((frac*1_000_000_000)&0xffffffff>>31&1)
	return time.Unix(sec, nanos).UTC()
}

// ERFWriter writes Ethernet packets as ERF records (for tests and for
// converting synthesized traces into DAG form).
type ERFWriter struct {
	w *bufio.Writer
}

// NewERFWriter wraps w.
func NewERFWriter(w io.Writer) *ERFWriter {
	return &ERFWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// WritePacket appends one Ethernet record.
func (e *ERFWriter) WritePacket(ts time.Time, frame []byte, wireLen int) error {
	if wireLen < len(frame) {
		wireLen = len(frame)
	}
	var hdr [ERFRecordHeaderLen]byte
	sec := uint64(ts.Unix())
	frac := (uint64(ts.Nanosecond()) << 32) / 1_000_000_000
	binary.LittleEndian.PutUint64(hdr[0:8], sec<<32|frac)
	hdr[8] = ERFTypeEthernet
	rlen := ERFRecordHeaderLen + 2 + len(frame)
	binary.BigEndian.PutUint16(hdr[10:12], uint16(rlen))
	binary.BigEndian.PutUint16(hdr[14:16], uint16(wireLen))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := e.w.Write([]byte{0, 0}); err != nil { // Ethernet pad
		return err
	}
	_, err := e.w.Write(frame)
	return err
}

// Flush writes buffered records.
func (e *ERFWriter) Flush() error { return e.w.Flush() }
