package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Sample stddev of this classic set is ≈2.138.
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.Median != 4.5 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.StdDev != 0 || s.Median != 42 {
		t.Fatalf("singleton = %+v", s)
	}
}

func TestSummarizeProperty(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			x := float64(v)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = x
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentAndMbit(t *testing.T) {
	if Percent(1, 4) != 25 {
		t.Fatal("percent")
	}
	if Percent(1, 0) != 0 {
		t.Fatal("percent zero total")
	}
	if got := MbitPerSec(125_000_000, 1); got != 1000 {
		t.Fatalf("MbitPerSec = %v", got)
	}
	if MbitPerSec(1, 0) != 0 {
		t.Fatal("zero duration")
	}
}
