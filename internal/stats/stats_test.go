package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Sample stddev of this classic set is ≈2.138.
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.Median != 4.5 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.StdDev != 0 || s.Median != 42 {
		t.Fatalf("singleton = %+v", s)
	}
}

func TestSummarizeProperty(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			x := float64(v)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = x
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianAndMAD(t *testing.T) {
	if Median(nil) != 0 || MAD(nil) != 0 {
		t.Fatal("empty median/MAD")
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	// {1,2,3,4,100}: median 3, abs devs {2,1,0,1,97}, MAD 1.
	if m := MAD([]float64{1, 2, 3, 4, 100}); m != 1 {
		t.Fatalf("MAD = %v", m)
	}
	// Median must not reorder its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestMADOutliers(t *testing.T) {
	// The thesis-style case: several agreeing repetitions, one wild one.
	flags := MADOutliers([]float64{99.1, 99.3, 99.2, 99.2, 42.0}, 3.5, 0.5)
	want := []bool{false, false, false, false, true}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("flags = %v", flags)
		}
	}
	// Identical repetitions (MAD = 0): the floor keeps tiny jitter in.
	flags = MADOutliers([]float64{99.2, 99.2, 99.2, 99.21}, 3.5, 0.5)
	for i, f := range flags {
		if f {
			t.Fatalf("rep %d rejected despite floor", i)
		}
	}
	// Fewer than three values: nothing to reject against.
	flags = MADOutliers([]float64{1, 1000}, 3.5, 0)
	if flags[0] || flags[1] {
		t.Fatal("pair rejected")
	}
}

func TestPercentAndMbit(t *testing.T) {
	if Percent(1, 4) != 25 {
		t.Fatal("percent")
	}
	if Percent(1, 0) != 0 {
		t.Fatal("percent zero total")
	}
	if got := MbitPerSec(125_000_000, 1); got != 1000 {
		t.Fatalf("MbitPerSec = %v", got)
	}
	if MbitPerSec(1, 0) != 0 {
		t.Fatal("zero duration")
	}
}
