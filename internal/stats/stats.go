// Package stats provides the small aggregation helpers the measurement
// harness uses: summaries over repetitions (the thesis repeats every
// point seven times "to avoid outliers or unwanted influences") and
// percentage utilities.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a set of repeated measurements.
type Summary struct {
	N            int
	Min, Max     float64
	Mean         float64
	Median       float64
	StdDev       float64 // sample standard deviation
	RelSpreadPct float64 // (max-min)/mean·100; the thesis's ±5 % fairness criterion
}

// Summarize computes a Summary over xs. An empty slice yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	if s.Mean != 0 {
		s.RelSpreadPct = (s.Max - s.Min) / s.Mean * 100
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f avg=%.2f max=%.2f sd=%.2f", s.N, s.Min, s.Mean, s.Max, s.StdDev)
}

// Median returns the median of xs (0 for an empty slice). xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// MAD returns the median absolute deviation of xs around their median —
// the robust spread estimate the outlier rejection of the measurement
// supervisor uses (the thesis repeats every point "to avoid outliers or
// unwanted influences"; MAD-based rejection formalizes that step).
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - m)
	}
	return Median(devs)
}

// MADOutliers flags the values of xs whose absolute deviation from the
// median exceeds k·MAD. floor is an absolute deviation below which a value
// is never an outlier — it keeps a set of near-identical repetitions
// (MAD ≈ 0) from rejecting everything that differs in the last digit.
// With fewer than three values nothing is rejected: there is no robust
// center to reject against.
func MADOutliers(xs []float64, k, floor float64) []bool {
	out := make([]bool, len(xs))
	if len(xs) < 3 {
		return out
	}
	m := Median(xs)
	scale := k * MAD(xs)
	if scale < floor {
		scale = floor
	}
	for i, x := range xs {
		if math.Abs(x-m) > scale {
			out[i] = true
		}
	}
	return out
}

// Percent returns 100·part/total, or 0 when total is 0.
func Percent(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return part / total * 100
}

// MbitPerSec converts bytes transferred in a duration (seconds) to Mbit/s.
func MbitPerSec(bytes uint64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) * 8 / seconds / 1e6
}
