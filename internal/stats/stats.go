// Package stats provides the small aggregation helpers the measurement
// harness uses: summaries over repetitions (the thesis repeats every
// point seven times "to avoid outliers or unwanted influences") and
// percentage utilities.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a set of repeated measurements.
type Summary struct {
	N            int
	Min, Max     float64
	Mean         float64
	Median       float64
	StdDev       float64 // sample standard deviation
	RelSpreadPct float64 // (max-min)/mean·100; the thesis's ±5 % fairness criterion
}

// Summarize computes a Summary over xs. An empty slice yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	if s.Mean != 0 {
		s.RelSpreadPct = (s.Max - s.Min) / s.Mean * 100
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f avg=%.2f max=%.2f sd=%.2f", s.N, s.Min, s.Mean, s.Max, s.StdDev)
}

// Percent returns 100·part/total, or 0 when total is 0.
func Percent(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return part / total * 100
}

// MbitPerSec converts bytes transferred in a duration (seconds) to Mbit/s.
func MbitPerSec(bytes uint64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) * 8 / seconds / 1e6
}
