package bpf

// Optimize applies the classic, semantics-preserving cleanups tcpdump's
// optimizer performs on generated code:
//
//   - jump threading: a conditional branch targeting an unconditional
//     jump (or a chain of them) is retargeted to the final destination;
//   - branch-to-return duplication is left to the generator, but a
//     conditional branch whose two targets are identical becomes an
//     unconditional fall-through candidate;
//   - dead-code elimination: instructions no branch or fall-through can
//     reach are removed and all offsets are re-encoded.
//
// The input program must validate; the output validates and computes the
// same result for every packet. Offsets that would exceed the 8-bit
// conditional-jump range after rewriting fall back to the original
// layout (Optimize never fails, it only declines).
func Optimize(p Program) Program {
	if p.Validate() != nil {
		return p
	}
	out := append(Program(nil), p...)
	out = threadJumps(out)
	out = elimDead(out)
	if out.Validate() != nil {
		return p // defensive: never emit something worse than the input
	}
	return out
}

// threadJumps retargets branches that point at unconditional jumps and
// collapses conditional branches with equal targets into jumps.
func threadJumps(p Program) Program {
	// resolve follows ja chains from an absolute index to the final
	// destination (bounded by program length to survive any cycle).
	resolve := func(idx int) int {
		for hops := 0; hops < len(p); hops++ {
			ins := p[idx]
			if ins.Class() == ClassJMP && ins.Op&0xf0 == JmpJA {
				idx = idx + 1 + int(ins.K)
				continue
			}
			return idx
		}
		return idx
	}
	for i := range p {
		ins := &p[i]
		if ins.Class() != ClassJMP {
			continue
		}
		if ins.Op&0xf0 == JmpJA {
			ins.K = uint32(resolve(i+1+int(ins.K)) - i - 1)
			continue
		}
		jt := resolve(i + 1 + int(ins.Jt))
		jf := resolve(i + 1 + int(ins.Jf))
		if jt-i-1 <= 255 {
			ins.Jt = uint8(jt - i - 1)
		}
		if jf-i-1 <= 255 {
			ins.Jf = uint8(jf - i - 1)
		}
		if ins.Jt == ins.Jf {
			// Both arms agree: the comparison no longer matters. It can
			// not be dropped here (offsets would shift); rewrite as a
			// jump so elimDead can reclaim unreachable code. The load
			// side effects of classic BPF are none (A/X are dead at a
			// rewritten branch only if unused later — conservatively keep
			// the branch when the offset is zero, i.e. plain fall-through).
			if ins.Jt != 0 {
				*ins = JumpAlways(uint32(ins.Jt))
			}
		}
	}
	return p
}

// elimDead removes unreachable instructions and rewrites offsets.
func elimDead(p Program) Program {
	reachable := make([]bool, len(p))
	var mark func(int)
	mark = func(i int) {
		for i < len(p) && !reachable[i] {
			reachable[i] = true
			ins := p[i]
			if ins.Class() == ClassRET {
				return
			}
			if ins.Class() == ClassJMP {
				if ins.Op&0xf0 == JmpJA {
					i = i + 1 + int(ins.K)
					continue
				}
				mark(i + 1 + int(ins.Jt))
				i = i + 1 + int(ins.Jf)
				continue
			}
			i++
		}
	}
	mark(0)

	// Map old indexes to new ones.
	newIdx := make([]int, len(p))
	n := 0
	for i := range p {
		newIdx[i] = n
		if reachable[i] {
			n++
		}
	}
	if n == len(p) {
		return p
	}
	out := make(Program, 0, n)
	for i, ins := range p {
		if !reachable[i] {
			continue
		}
		if ins.Class() == ClassJMP {
			if ins.Op&0xf0 == JmpJA {
				ins.K = uint32(newIdx[i+1+int(ins.K)] - newIdx[i] - 1)
			} else {
				jt := newIdx[i+1+int(ins.Jt)] - newIdx[i] - 1
				jf := newIdx[i+1+int(ins.Jf)] - newIdx[i] - 1
				if jt > 255 || jf > 255 {
					return p // cannot re-encode; keep the original
				}
				ins.Jt, ins.Jf = uint8(jt), uint8(jf)
			}
		}
		out = append(out, ins)
	}
	return out
}
