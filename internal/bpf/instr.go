// Package bpf implements the classic BSD Packet Filter virtual machine as
// introduced by McCanne and Jacobson [MJ93] and used (unchanged at the
// instruction-set level) by both the FreeBSD BPF and the Linux Socket
// Filter that the thesis compares.
//
// The package provides the instruction encoding, a validator, an
// interpreter that also reports the number of instructions retired (the
// thesis prices filtering by executed filter instructions), and a
// two-way assembler for a tcpdump-like mnemonic syntax.
package bpf

import "fmt"

// Instruction classes (low 3 bits of Op).
const (
	ClassLD   = 0x00 // load into accumulator A
	ClassLDX  = 0x01 // load into index register X
	ClassST   = 0x02 // store A into scratch memory
	ClassSTX  = 0x03 // store X into scratch memory
	ClassALU  = 0x04 // arithmetic on A
	ClassJMP  = 0x05 // conditional and unconditional jumps
	ClassRET  = 0x06 // terminate, returning the accept length
	ClassMISC = 0x07 // register transfers
)

// Load sizes (bits 3-4 for LD/LDX).
const (
	SizeW = 0x00 // 32-bit word
	SizeH = 0x08 // 16-bit halfword
	SizeB = 0x10 // byte
)

// Load modes (bits 5-7 for LD/LDX).
const (
	ModeIMM = 0x00 // A <- k
	ModeABS = 0x20 // A <- pkt[k]
	ModeIND = 0x40 // A <- pkt[X+k]
	ModeMEM = 0x60 // A <- M[k]
	ModeLEN = 0x80 // A <- packet length
	ModeMSH = 0xa0 // X <- 4*(pkt[k]&0xf)   (IP header length helper, LDX only)
)

// ALU operations (bits 4-7).
const (
	ALUAdd = 0x00
	ALUSub = 0x10
	ALUMul = 0x20
	ALUDiv = 0x30
	ALUOr  = 0x40
	ALUAnd = 0x50
	ALULsh = 0x60
	ALURsh = 0x70
	ALUNeg = 0x80
	ALUMod = 0x90
	ALUXor = 0xa0
)

// Jump operations (bits 4-7).
const (
	JmpJA   = 0x00
	JmpJEQ  = 0x10
	JmpJGT  = 0x20
	JmpJGE  = 0x30
	JmpJSET = 0x40
)

// Operand source for ALU and JMP (bit 3).
const (
	SrcK = 0x00 // immediate k
	SrcX = 0x08 // index register
)

// Return value source for RET (bits 3-4).
const (
	RetK = 0x00
	RetA = 0x10
)

// MISC operations.
const (
	MiscTAX = 0x00 // X <- A
	MiscTXA = 0x80 // A <- X
)

// MemSlots is the number of 32-bit scratch memory cells.
const MemSlots = 16

// MaxInstructions mirrors BPF_MAXINSNS from the BSD implementation.
const MaxInstructions = 4096

// Instruction is one BPF instruction in the classic struct bpf_insn layout.
type Instruction struct {
	Op     uint16
	Jt, Jf uint8
	K      uint32
}

// Class extracts the instruction class from the opcode.
func (i Instruction) Class() uint16 { return i.Op & 0x07 }

// Program is a BPF filter program.
type Program []Instruction

// Helper constructors for the opcode combinations the compiler emits.

// LoadAbs loads size bytes at absolute packet offset k into A.
func LoadAbs(size uint16, k uint32) Instruction {
	return Instruction{Op: ClassLD | size | ModeABS, K: k}
}

// LoadInd loads size bytes at packet offset X+k into A.
func LoadInd(size uint16, k uint32) Instruction {
	return Instruction{Op: ClassLD | size | ModeIND, K: k}
}

// LoadImm loads the constant k into A.
func LoadImm(k uint32) Instruction { return Instruction{Op: ClassLD | SizeW | ModeIMM, K: k} }

// LoadLen loads the packet length into A.
func LoadLen() Instruction { return Instruction{Op: ClassLD | SizeW | ModeLEN} }

// LoadMemA loads scratch cell k into A.
func LoadMemA(k uint32) Instruction { return Instruction{Op: ClassLD | SizeW | ModeMEM, K: k} }

// LoadMSHX sets X to 4*(pkt[k]&0x0f): the IPv4 header length idiom.
func LoadMSHX(k uint32) Instruction { return Instruction{Op: ClassLDX | SizeB | ModeMSH, K: k} }

// LoadImmX loads the constant k into X.
func LoadImmX(k uint32) Instruction { return Instruction{Op: ClassLDX | SizeW | ModeIMM, K: k} }

// StoreA stores A into scratch cell k.
func StoreA(k uint32) Instruction { return Instruction{Op: ClassST, K: k} }

// ALUOpK applies op with immediate k to A.
func ALUOpK(op uint16, k uint32) Instruction { return Instruction{Op: ClassALU | op | SrcK, K: k} }

// JumpAlways jumps forward k instructions.
func JumpAlways(k uint32) Instruction { return Instruction{Op: ClassJMP | JmpJA, K: k} }

// JumpIf emits a conditional jump comparing A to k; jt/jf are the relative
// skip counts on true/false.
func JumpIf(op uint16, k uint32, jt, jf uint8) Instruction {
	return Instruction{Op: ClassJMP | op | SrcK, Jt: jt, Jf: jf, K: k}
}

// RetConst returns the constant accept length k (0 rejects the packet).
func RetConst(k uint32) Instruction { return Instruction{Op: ClassRET | RetK, K: k} }

// RetAcc returns the accumulator as the accept length.
func RetAcc() Instruction { return Instruction{Op: ClassRET | RetA} }

// TXA copies X into A.
func TXA() Instruction { return Instruction{Op: ClassMISC | MiscTXA} }

// TAX copies A into X.
func TAX() Instruction { return Instruction{Op: ClassMISC | MiscTAX} }

func (i Instruction) String() string {
	s, err := formatInstruction(i)
	if err != nil {
		return fmt.Sprintf("invalid(op=%#x)", i.Op)
	}
	return s
}

// String renders the program in the assembler syntax accepted by Assemble.
func (p Program) String() string {
	out := ""
	for idx, ins := range p {
		out += fmt.Sprintf("(%03d) %s\n", idx, ins)
	}
	return out
}
