package bpf

import (
	"fmt"
	"strconv"
	"strings"
)

// formatInstruction renders one instruction in tcpdump -d style.
func formatInstruction(ins Instruction) (string, error) {
	switch ins.Class() {
	case ClassLD, ClassLDX:
		name := "ld"
		if ins.Class() == ClassLDX {
			name = "ldx"
		}
		switch ins.Op & 0x18 {
		case SizeH:
			name += "h"
		case SizeB:
			name += "b"
		}
		switch ins.Op & 0xe0 {
		case ModeIMM:
			return fmt.Sprintf("%-8s #%#x", name, ins.K), nil
		case ModeABS:
			return fmt.Sprintf("%-8s [%d]", name, ins.K), nil
		case ModeIND:
			return fmt.Sprintf("%-8s [x + %d]", name, ins.K), nil
		case ModeMEM:
			return fmt.Sprintf("%-8s M[%d]", name, ins.K), nil
		case ModeLEN:
			return fmt.Sprintf("%-8s len", name), nil
		case ModeMSH:
			return fmt.Sprintf("%-8s 4*([%d]&0xf)", name, ins.K), nil
		}
		return "", fmt.Errorf("bad load mode %#x", ins.Op)
	case ClassST:
		return fmt.Sprintf("%-8s M[%d]", "st", ins.K), nil
	case ClassSTX:
		return fmt.Sprintf("%-8s M[%d]", "stx", ins.K), nil
	case ClassALU:
		var name string
		switch ins.Op & 0xf0 {
		case ALUAdd:
			name = "add"
		case ALUSub:
			name = "sub"
		case ALUMul:
			name = "mul"
		case ALUDiv:
			name = "div"
		case ALUMod:
			name = "mod"
		case ALUOr:
			name = "or"
		case ALUAnd:
			name = "and"
		case ALULsh:
			name = "lsh"
		case ALURsh:
			name = "rsh"
		case ALUXor:
			name = "xor"
		case ALUNeg:
			return "neg", nil
		default:
			return "", fmt.Errorf("bad ALU op %#x", ins.Op)
		}
		if ins.Op&SrcX != 0 {
			return fmt.Sprintf("%-8s x", name), nil
		}
		return fmt.Sprintf("%-8s #%#x", name, ins.K), nil
	case ClassJMP:
		switch ins.Op & 0xf0 {
		case JmpJA:
			return fmt.Sprintf("%-8s +%d", "ja", ins.K), nil
		case JmpJEQ, JmpJGT, JmpJGE, JmpJSET:
			var name string
			switch ins.Op & 0xf0 {
			case JmpJEQ:
				name = "jeq"
			case JmpJGT:
				name = "jgt"
			case JmpJGE:
				name = "jge"
			case JmpJSET:
				name = "jset"
			}
			operand := fmt.Sprintf("#%#x", ins.K)
			if ins.Op&SrcX != 0 {
				operand = "x"
			}
			return fmt.Sprintf("%-8s %-14s jt %d\tjf %d", name, operand, ins.Jt, ins.Jf), nil
		}
		return "", fmt.Errorf("bad jump op %#x", ins.Op)
	case ClassRET:
		if ins.Op&0x18 == RetA {
			return fmt.Sprintf("%-8s a", "ret"), nil
		}
		return fmt.Sprintf("%-8s #%d", "ret", ins.K), nil
	case ClassMISC:
		if ins.Op&0xf8 == MiscTAX {
			return "tax", nil
		}
		return "txa", nil
	}
	return "", fmt.Errorf("bad class %#x", ins.Op)
}

// Assemble parses a program in the syntax produced by Program.String /
// tcpdump -d. Leading "(NNN)" indices and blank lines are ignored; jump
// targets are the relative jt/jf/+k offsets of the classic format.
func Assemble(src string) (Program, error) {
	var prog Program
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") && !strings.ContainsAny(line, " \t") {
			continue
		}
		if strings.HasPrefix(line, "(") {
			if i := strings.Index(line, ")"); i >= 0 {
				line = strings.TrimSpace(line[i+1:])
			}
		}
		ins, err := assembleLine(line)
		if err != nil {
			return nil, fmt.Errorf("bpf: line %d: %w", lineNo+1, err)
		}
		prog = append(prog, ins)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

func assembleLine(line string) (Instruction, error) {
	fields := strings.Fields(strings.ReplaceAll(line, "\t", " "))
	if len(fields) == 0 {
		return Instruction{}, fmt.Errorf("empty instruction")
	}
	mnem, args := fields[0], fields[1:]
	switch mnem {
	case "ld", "ldh", "ldb", "ldx", "ldxb":
		return assembleLoad(mnem, strings.Join(args, " "))
	case "st", "stx":
		k, err := parseMem(strings.Join(args, ""))
		if err != nil {
			return Instruction{}, err
		}
		cls := uint16(ClassST)
		if mnem == "stx" {
			cls = ClassSTX
		}
		return Instruction{Op: cls, K: k}, nil
	case "add", "sub", "mul", "div", "mod", "or", "and", "lsh", "rsh", "xor":
		ops := map[string]uint16{
			"add": ALUAdd, "sub": ALUSub, "mul": ALUMul, "div": ALUDiv,
			"mod": ALUMod, "or": ALUOr, "and": ALUAnd, "lsh": ALULsh,
			"rsh": ALURsh, "xor": ALUXor,
		}
		if len(args) != 1 {
			return Instruction{}, fmt.Errorf("%s needs one operand", mnem)
		}
		if args[0] == "x" {
			return Instruction{Op: ClassALU | ops[mnem] | SrcX}, nil
		}
		k, err := parseImm(args[0])
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: ClassALU | ops[mnem] | SrcK, K: k}, nil
	case "neg":
		return Instruction{Op: ClassALU | ALUNeg}, nil
	case "ja", "jmp":
		if len(args) != 1 {
			return Instruction{}, fmt.Errorf("ja needs one operand")
		}
		k, err := strconv.ParseUint(strings.TrimPrefix(args[0], "+"), 0, 32)
		if err != nil {
			return Instruction{}, err
		}
		return JumpAlways(uint32(k)), nil
	case "jeq", "jgt", "jge", "jset":
		ops := map[string]uint16{"jeq": JmpJEQ, "jgt": JmpJGT, "jge": JmpJGE, "jset": JmpJSET}
		// Syntax: jeq #k jt N jf M   (or "jeq x jt N jf M")
		if len(args) != 5 || args[1] != "jt" || args[3] != "jf" {
			return Instruction{}, fmt.Errorf("want %q", mnem+" #k jt N jf M")
		}
		jt, err1 := strconv.ParseUint(args[2], 10, 8)
		jf, err2 := strconv.ParseUint(args[4], 10, 8)
		if err1 != nil || err2 != nil {
			return Instruction{}, fmt.Errorf("bad jump offsets %q %q", args[2], args[4])
		}
		if args[0] == "x" {
			return Instruction{Op: ClassJMP | ops[mnem] | SrcX, Jt: uint8(jt), Jf: uint8(jf)}, nil
		}
		k, err := parseImm(args[0])
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: ClassJMP | ops[mnem] | SrcK, Jt: uint8(jt), Jf: uint8(jf), K: k}, nil
	case "ret":
		if len(args) != 1 {
			return Instruction{}, fmt.Errorf("ret needs one operand")
		}
		if args[0] == "a" {
			return RetAcc(), nil
		}
		k, err := parseImm(args[0])
		if err != nil {
			return Instruction{}, err
		}
		return RetConst(k), nil
	case "tax":
		return TAX(), nil
	case "txa":
		return TXA(), nil
	}
	return Instruction{}, fmt.Errorf("unknown mnemonic %q", mnem)
}

func assembleLoad(mnem, operand string) (Instruction, error) {
	operand = strings.TrimSpace(operand)
	var cls, size uint16
	switch mnem {
	case "ld":
		cls, size = ClassLD, SizeW
	case "ldh":
		cls, size = ClassLD, SizeH
	case "ldb":
		cls, size = ClassLD, SizeB
	case "ldx":
		cls, size = ClassLDX, SizeW
	case "ldxb":
		cls, size = ClassLDX, SizeB
	}
	switch {
	case operand == "len":
		return Instruction{Op: cls | SizeW | ModeLEN}, nil
	case strings.HasPrefix(operand, "#"):
		k, err := parseImm(operand)
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: cls | SizeW | ModeIMM, K: k}, nil
	case strings.HasPrefix(operand, "M["):
		k, err := parseMem(operand)
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: cls | SizeW | ModeMEM, K: k}, nil
	case strings.HasPrefix(operand, "4*(["):
		// 4*([k]&0xf)
		rest := strings.TrimPrefix(operand, "4*([")
		end := strings.Index(rest, "]")
		if end < 0 || !strings.HasSuffix(strings.ReplaceAll(rest, " ", ""), "]&0xf)") {
			return Instruction{}, fmt.Errorf("bad MSH operand %q", operand)
		}
		k, err := strconv.ParseUint(rest[:end], 0, 32)
		if err != nil {
			return Instruction{}, err
		}
		if cls != ClassLDX {
			return Instruction{}, fmt.Errorf("MSH mode requires ldx")
		}
		return LoadMSHX(uint32(k)), nil
	case strings.HasPrefix(operand, "[x"):
		// [x + k]
		inner := strings.Trim(operand, "[]")
		inner = strings.TrimPrefix(inner, "x")
		inner = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(inner), "+"))
		var k uint64
		var err error
		if inner != "" {
			k, err = strconv.ParseUint(inner, 0, 32)
			if err != nil {
				return Instruction{}, err
			}
		}
		if cls == ClassLDX {
			return Instruction{}, fmt.Errorf("ldx does not support IND mode")
		}
		return Instruction{Op: cls | size | ModeIND, K: uint32(k)}, nil
	case strings.HasPrefix(operand, "["):
		inner := strings.Trim(operand, "[]")
		k, err := strconv.ParseUint(inner, 0, 32)
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: cls | size | ModeABS, K: uint32(k)}, nil
	}
	return Instruction{}, fmt.Errorf("bad load operand %q", operand)
}

func parseImm(s string) (uint32, error) {
	s = strings.TrimPrefix(s, "#")
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return uint32(v), nil
}

func parseMem(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "M[") || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("bad scratch operand %q", s)
	}
	v, err := strconv.ParseUint(s[2:len(s)-1], 0, 32)
	if err != nil {
		return 0, err
	}
	return uint32(v), nil
}
