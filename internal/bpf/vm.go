package bpf

import (
	"errors"
	"fmt"
)

// ErrDivideByZero is returned by Run when a division or modulo by a zero
// X register is executed. (Constant zero divisors are rejected by Validate.)
var ErrDivideByZero = errors.New("bpf: divide by zero")

// Validate checks the structural safety rules enforced by the kernels:
// known opcodes, forward jumps within bounds, in-range scratch cells,
// no constant division by zero, and a guaranteed RET on every path
// (ensured by bounds: the final reachable instruction of each path must be
// a RET).
func (p Program) Validate() error {
	if len(p) == 0 {
		return errors.New("bpf: empty program")
	}
	if len(p) > MaxInstructions {
		return fmt.Errorf("bpf: program too long: %d instructions", len(p))
	}
	for i, ins := range p {
		switch ins.Class() {
		case ClassLD, ClassLDX:
			mode := ins.Op & 0xe0
			size := ins.Op & 0x18
			switch mode {
			case ModeIMM, ModeABS, ModeIND, ModeLEN:
			case ModeMEM:
				if ins.K >= MemSlots {
					return fmt.Errorf("bpf: %d: scratch cell %d out of range", i, ins.K)
				}
			case ModeMSH:
				if ins.Class() != ClassLDX {
					return fmt.Errorf("bpf: %d: MSH mode is LDX-only", i)
				}
			default:
				return fmt.Errorf("bpf: %d: unknown load mode %#x", i, mode)
			}
			if size == 0x18 {
				return fmt.Errorf("bpf: %d: invalid load size", i)
			}
		case ClassST, ClassSTX:
			if ins.K >= MemSlots {
				return fmt.Errorf("bpf: %d: scratch cell %d out of range", i, ins.K)
			}
		case ClassALU:
			op := ins.Op & 0xf0
			switch op {
			case ALUAdd, ALUSub, ALUMul, ALUOr, ALUAnd, ALULsh, ALURsh, ALUNeg, ALUXor:
			case ALUDiv, ALUMod:
				if ins.Op&SrcX == 0 && ins.K == 0 {
					return fmt.Errorf("bpf: %d: constant division by zero", i)
				}
			default:
				return fmt.Errorf("bpf: %d: unknown ALU op %#x", i, op)
			}
		case ClassJMP:
			op := ins.Op & 0xf0
			switch op {
			case JmpJA:
				if uint64(i)+1+uint64(ins.K) >= uint64(len(p)) {
					return fmt.Errorf("bpf: %d: jump out of bounds", i)
				}
			case JmpJEQ, JmpJGT, JmpJGE, JmpJSET:
				if i+1+int(ins.Jt) >= len(p) || i+1+int(ins.Jf) >= len(p) {
					return fmt.Errorf("bpf: %d: conditional jump out of bounds", i)
				}
			default:
				return fmt.Errorf("bpf: %d: unknown jump op %#x", i, op)
			}
		case ClassRET:
			switch ins.Op & 0x18 {
			case RetK, RetA:
			default:
				return fmt.Errorf("bpf: %d: unknown return source", i)
			}
		case ClassMISC:
			switch ins.Op & 0xf8 {
			case MiscTAX, MiscTXA:
			default:
				return fmt.Errorf("bpf: %d: unknown misc op %#x", i, ins.Op)
			}
		default:
			return fmt.Errorf("bpf: %d: unknown class %#x", i, ins.Class())
		}
	}
	// The last instruction must be unable to fall off the end. Since all
	// jumps are forward and bounded, it suffices that the final instruction
	// is a RET.
	if last := p[len(p)-1]; last.Class() != ClassRET {
		return errors.New("bpf: program does not end in RET")
	}
	return nil
}

// Result is the outcome of running a filter over one packet.
type Result struct {
	// Accept is the number of packet bytes the filter accepts; zero means
	// the packet is rejected.
	Accept uint32
	// Instructions is the count of retired instructions. The thesis prices
	// in-kernel filtering by this number (its reference filter is "50 BPF
	// instructions" long).
	Instructions int
}

// Run executes the program over pkt. Out-of-bounds packet accesses reject
// the packet (Accept=0), matching the kernel semantics. Programs should be
// validated once with Validate; Run still bounds-checks jumps defensively
// and reports ErrDivideByZero for a zero X divisor.
func (p Program) Run(pkt []byte) (Result, error) {
	var (
		a, x uint32
		mem  [MemSlots]uint32
		n    int
	)
	plen := uint32(len(pkt))
	for pc := 0; pc < len(p); pc++ {
		ins := p[pc]
		n++
		switch ins.Class() {
		case ClassLD:
			var off uint32
			switch ins.Op & 0xe0 {
			case ModeIMM:
				a = ins.K
				continue
			case ModeLEN:
				a = plen
				continue
			case ModeMEM:
				a = mem[ins.K]
				continue
			case ModeABS:
				off = ins.K
			case ModeIND:
				off = x + ins.K
				if off < x { // overflow
					return Result{0, n}, nil
				}
			}
			v, ok := load(pkt, off, ins.Op&0x18)
			if !ok {
				return Result{0, n}, nil
			}
			a = v
		case ClassLDX:
			switch ins.Op & 0xe0 {
			case ModeIMM:
				x = ins.K
			case ModeLEN:
				x = plen
			case ModeMEM:
				x = mem[ins.K]
			case ModeMSH:
				if ins.K >= plen {
					return Result{0, n}, nil
				}
				x = 4 * uint32(pkt[ins.K]&0x0f)
			}
		case ClassST:
			mem[ins.K] = a
		case ClassSTX:
			mem[ins.K] = x
		case ClassALU:
			operand := ins.K
			if ins.Op&SrcX != 0 {
				operand = x
			}
			switch ins.Op & 0xf0 {
			case ALUAdd:
				a += operand
			case ALUSub:
				a -= operand
			case ALUMul:
				a *= operand
			case ALUDiv:
				if operand == 0 {
					return Result{0, n}, ErrDivideByZero
				}
				a /= operand
			case ALUMod:
				if operand == 0 {
					return Result{0, n}, ErrDivideByZero
				}
				a %= operand
			case ALUOr:
				a |= operand
			case ALUAnd:
				a &= operand
			case ALULsh:
				a <<= operand & 31
			case ALURsh:
				a >>= operand & 31
			case ALUXor:
				a ^= operand
			case ALUNeg:
				a = -a
			}
		case ClassJMP:
			op := ins.Op & 0xf0
			if op == JmpJA {
				pc += int(ins.K)
				continue
			}
			operand := ins.K
			if ins.Op&SrcX != 0 {
				operand = x
			}
			var cond bool
			switch op {
			case JmpJEQ:
				cond = a == operand
			case JmpJGT:
				cond = a > operand
			case JmpJGE:
				cond = a >= operand
			case JmpJSET:
				cond = a&operand != 0
			}
			if cond {
				pc += int(ins.Jt)
			} else {
				pc += int(ins.Jf)
			}
		case ClassRET:
			v := ins.K
			if ins.Op&0x18 == RetA {
				v = a
			}
			return Result{v, n}, nil
		case ClassMISC:
			if ins.Op&0xf8 == MiscTAX {
				x = a
			} else {
				a = x
			}
		}
	}
	return Result{}, errors.New("bpf: fell off end of program")
}

func load(pkt []byte, off uint32, size uint16) (uint32, bool) {
	n := uint32(len(pkt))
	switch size {
	case SizeB:
		if off >= n {
			return 0, false
		}
		return uint32(pkt[off]), true
	case SizeH:
		if off+2 > n || off+2 < off {
			return 0, false
		}
		return uint32(pkt[off])<<8 | uint32(pkt[off+1]), true
	default: // SizeW
		if off+4 > n || off+4 < off {
			return 0, false
		}
		return uint32(pkt[off])<<24 | uint32(pkt[off+1])<<16 |
			uint32(pkt[off+2])<<8 | uint32(pkt[off+3]), true
	}
}
