package bpf

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/pkt"
)

// classicIPFilter is the canonical "ip" filter: accept Ethernet frames with
// EtherType 0x0800.
func classicIPFilter() Program {
	return Program{
		LoadAbs(SizeH, 12),
		JumpIf(JmpJEQ, 0x0800, 0, 1),
		RetConst(65535),
		RetConst(0),
	}
}

func udpFrame(t *testing.T, frameLen int) []byte {
	t.Helper()
	return pkt.BuildUDP(nil, pkt.UDPSpec{
		SrcIP:   netip.MustParseAddr("192.168.10.100"),
		DstIP:   netip.MustParseAddr("192.168.10.12"),
		SrcPort: 9, DstPort: 9,
		FrameLen: frameLen,
	})
}

func TestValidateAcceptsClassicFilter(t *testing.T) {
	if err := classicIPFilter().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunAcceptsIP(t *testing.T) {
	frame := udpFrame(t, 100)
	res, err := classicIPFilter().Run(frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept == 0 {
		t.Fatal("IP frame rejected by ip filter")
	}
	if res.Instructions != 3 {
		t.Fatalf("instructions = %d, want 3", res.Instructions)
	}
}

func TestRunRejectsNonIP(t *testing.T) {
	frame := make([]byte, 60)
	pkt.EncodeEthernet(frame, pkt.Ethernet{EtherType: pkt.EtherTypeARP})
	res, err := classicIPFilter().Run(frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept != 0 {
		t.Fatal("ARP frame accepted by ip filter")
	}
}

func TestOutOfBoundsLoadRejects(t *testing.T) {
	prog := Program{LoadAbs(SizeW, 1000), RetConst(65535)}
	res, err := prog.Run(make([]byte, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept != 0 {
		t.Fatal("out-of-bounds load accepted packet")
	}
}

func TestScratchMemory(t *testing.T) {
	prog := Program{
		LoadImm(42),
		StoreA(3),
		LoadImm(0),
		LoadMemA(3),
		RetAcc(),
	}
	res, err := prog.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept != 42 {
		t.Fatalf("accept = %d, want 42", res.Accept)
	}
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		op   uint16
		k    uint32
		init uint32
		want uint32
	}{
		{ALUAdd, 5, 10, 15},
		{ALUSub, 3, 10, 7},
		{ALUMul, 4, 10, 40},
		{ALUDiv, 2, 10, 5},
		{ALUMod, 3, 10, 1},
		{ALUOr, 0x0f, 0xf0, 0xff},
		{ALUAnd, 0x0f, 0xff, 0x0f},
		{ALULsh, 4, 1, 16},
		{ALURsh, 2, 16, 4},
		{ALUXor, 0xff, 0x0f, 0xf0},
	}
	for _, c := range cases {
		prog := Program{LoadImm(c.init), ALUOpK(c.op, c.k), RetAcc()}
		res, err := prog.Run(nil)
		if err != nil {
			t.Fatalf("op %#x: %v", c.op, err)
		}
		if res.Accept != c.want {
			t.Errorf("op %#x: got %d, want %d", c.op, res.Accept, c.want)
		}
	}
}

func TestNeg(t *testing.T) {
	prog := Program{LoadImm(1), Instruction{Op: ClassALU | ALUNeg}, RetAcc()}
	res, err := prog.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept != 0xffffffff {
		t.Fatalf("neg 1 = %#x", res.Accept)
	}
}

func TestRuntimeDivideByZero(t *testing.T) {
	prog := Program{
		LoadImm(10),
		LoadImmX(0),
		{Op: ClassALU | ALUDiv | SrcX},
		RetAcc(),
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err := prog.Run(nil)
	if err != ErrDivideByZero {
		t.Fatalf("err = %v, want ErrDivideByZero", err)
	}
}

func TestMSHLoadsIPHeaderLength(t *testing.T) {
	frame := udpFrame(t, 100)
	prog := Program{
		LoadMSHX(14), // X <- 4 * IHL
		TXA(),
		RetAcc(),
	}
	res, err := prog.Run(frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept != 20 {
		t.Fatalf("MSH = %d, want 20", res.Accept)
	}
}

func TestIndirectLoadReadsUDPPort(t *testing.T) {
	frame := udpFrame(t, 100)
	prog := Program{
		LoadMSHX(14),
		LoadInd(SizeH, 16), // dst port at 14 + IHL + 2
		RetAcc(),
	}
	res, err := prog.Run(frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept != 9 {
		t.Fatalf("dst port = %d, want 9", res.Accept)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]Program{
		"empty":              {},
		"no ret":             {LoadImm(1)},
		"bad jump":           {JumpIf(JmpJEQ, 0, 200, 200), RetConst(0)},
		"bad ja":             {JumpAlways(100), RetConst(0)},
		"bad scratch":        {StoreA(99), RetConst(0)},
		"const div by zero":  {LoadImm(1), ALUOpK(ALUDiv, 0), RetConst(0)},
		"unknown class bits": {{Op: 0xffff}, RetConst(0)},
	}
	for name, prog := range cases {
		if err := prog.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid program", name)
		}
	}
}

func TestLenInstruction(t *testing.T) {
	prog := Program{LoadLen(), RetAcc()}
	res, err := prog.Run(make([]byte, 123))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept != 123 {
		t.Fatalf("len = %d", res.Accept)
	}
}

func TestJumpAlwaysSkips(t *testing.T) {
	prog := Program{
		JumpAlways(1),
		RetConst(1), // skipped
		RetConst(2),
	}
	res, err := prog.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept != 2 {
		t.Fatalf("accept = %d, want 2", res.Accept)
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	prog := Program{
		LoadAbs(SizeH, 12),
		JumpIf(JmpJEQ, 0x0800, 0, 3),
		LoadMSHX(14),
		LoadInd(SizeB, 14),
		RetAcc(),
		RetConst(0),
	}
	text := prog.String()
	got, err := Assemble(text)
	if err != nil {
		t.Fatalf("assemble failed:\n%s\n%v", text, err)
	}
	if len(got) != len(prog) {
		t.Fatalf("length = %d, want %d", len(got), len(prog))
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Fatalf("instr %d = %+v, want %+v\nsource:\n%s", i, got[i], prog[i], text)
		}
	}
}

// Property: disassembling and reassembling any valid generated program is
// the identity.
func TestAsmRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomProgram(seed)
		if err := prog.Validate(); err != nil {
			return true // generator made something invalid; skip
		}
		got, err := Assemble(prog.String())
		if err != nil {
			return false
		}
		if len(got) != len(prog) {
			return false
		}
		for i := range prog {
			if got[i] != prog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomProgram builds a small structurally valid program from a seed.
func randomProgram(seed int64) Program {
	s := uint64(seed)
	next := func(n int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(n))
	}
	var prog Program
	n := 3 + next(10)
	for i := 0; i < n; i++ {
		switch next(7) {
		case 0:
			prog = append(prog, LoadAbs(uint16([]int{SizeW, SizeH, SizeB}[next(3)]), uint32(next(64))))
		case 1:
			prog = append(prog, LoadImm(uint32(next(1000))))
		case 2:
			prog = append(prog, StoreA(uint32(next(MemSlots))))
		case 3:
			prog = append(prog, ALUOpK(uint16([]int{ALUAdd, ALUSub, ALUAnd, ALUOr}[next(4)]), uint32(next(256))))
		case 4:
			prog = append(prog, LoadMSHX(uint32(next(32))))
		case 5:
			prog = append(prog, TAX())
		case 6:
			jt, jf := 0, 0 // keep jumps trivially in bounds
			prog = append(prog, JumpIf(JmpJEQ, uint32(next(100)), uint8(jt), uint8(jf)))
		}
	}
	prog = append(prog, RetConst(uint32(next(65536))))
	return prog
}

// Property: Run never reports more instructions than the program length for
// loop-free (forward-jump-only) programs... every valid classic BPF program.
func TestInstructionCountBound(t *testing.T) {
	f := func(seed int64, pktLen uint8) bool {
		prog := randomProgram(seed)
		if err := prog.Validate(); err != nil {
			return true
		}
		res, err := prog.Run(make([]byte, pktLen))
		if err != nil && err != ErrDivideByZero {
			return false
		}
		return res.Instructions <= len(prog)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
