package bpf

import (
	"testing"
	"testing/quick"
)

func TestOptimizeThreadsJumpChains(t *testing.T) {
	// jeq -> ja -> ja -> ret: the conditional must end up pointing at the
	// return directly and the trampolines must be eliminated.
	p := Program{
		LoadAbs(SizeH, 12),
		JumpIf(JmpJEQ, 0x800, 0, 1), // true -> ja chain, false -> next ja
		JumpAlways(1),               // -> 4
		JumpAlways(1),               // -> 5 (reached when false)
		JumpAlways(1),               // -> 6... wait: structure below
		RetConst(1),
		RetConst(0),
	}
	// Rebuild a clean chain: 1.jt->2, 2->4, 4->5(ret 1); 1.jf->3, 3->6(ret 0).
	p = Program{
		LoadAbs(SizeH, 12),
		JumpIf(JmpJEQ, 0x800, 0, 1), // jt -> 2, jf -> 3
		JumpAlways(2),               // 2 -> 5
		JumpAlways(2),               // 3 -> 6
		RetConst(9),                 // 4: dead
		RetConst(1),                 // 5
		RetConst(0),                 // 6
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := Optimize(p)
	if len(opt) >= len(p) {
		t.Fatalf("no shrink: %d -> %d\n%s", len(p), len(opt), opt)
	}
	// Behaviour preserved on both paths.
	ip := make([]byte, 60)
	ip[12], ip[13] = 0x08, 0x00
	arp := make([]byte, 60)
	arp[12], arp[13] = 0x08, 0x06
	for _, f := range [][]byte{ip, arp} {
		r1, err1 := p.Run(f)
		r2, err2 := opt.Run(f)
		if err1 != nil || err2 != nil || r1.Accept != r2.Accept {
			t.Fatalf("behaviour changed: %v/%v vs %v/%v", r1, err1, r2, err2)
		}
	}
	if opt[len(opt)-1].Class() != ClassRET {
		t.Fatal("optimized program does not end in RET")
	}
}

func TestOptimizeRemovesDeadCode(t *testing.T) {
	p := Program{
		JumpAlways(2),
		LoadImm(1),  // dead
		RetConst(7), // dead
		RetConst(42),
	}
	opt := Optimize(p)
	if len(opt) != 2 {
		t.Fatalf("optimized length = %d, want 2:\n%s", len(opt), opt)
	}
	res, err := opt.Run(nil)
	if err != nil || res.Accept != 42 {
		t.Fatalf("result = %v, %v", res, err)
	}
}

func TestOptimizeIdempotentOnCleanCode(t *testing.T) {
	p := classicIPFilter()
	opt := Optimize(p)
	if len(opt) != len(p) {
		t.Fatalf("clean program changed length: %d -> %d", len(p), len(opt))
	}
	for i := range p {
		if opt[i] != p[i] {
			t.Fatalf("clean program modified at %d", i)
		}
	}
}

func TestOptimizeRejectsNothing(t *testing.T) {
	// Invalid input comes back untouched.
	bad := Program{LoadImm(1)}
	if got := Optimize(bad); len(got) != 1 {
		t.Fatal("invalid program was rewritten")
	}
}

// Property: optimization preserves the accept/reject decision and the
// accept length on random packets for random (valid) programs.
func TestOptimizeEquivalenceProperty(t *testing.T) {
	f := func(seed int64, pktLen uint8, fill byte) bool {
		p := randomProgram(seed)
		if p.Validate() != nil {
			return true
		}
		opt := Optimize(p)
		if opt.Validate() != nil {
			return false
		}
		pkt := make([]byte, pktLen)
		for i := range pkt {
			pkt[i] = fill + byte(i)
		}
		r1, err1 := p.Run(pkt)
		r2, err2 := opt.Run(pkt)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r1.Accept == r2.Accept
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: optimization never grows a program.
func TestOptimizeNeverGrows(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProgram(seed)
		if p.Validate() != nil {
			return true
		}
		return len(Optimize(p)) <= len(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
