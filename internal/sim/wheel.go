package sim

import "math/bits"

// The event queue is a hierarchical timing wheel (Varghese & Lauck; see
// Ros-Giralt et al., "Algorithms and Data Structures to Accelerate Network
// Analysis", for the case for wheels over heaps in packet-rate workloads).
// It replaces the former container/heap binary heap: scheduling and firing
// are O(1) amortized instead of O(log n), dispatch pops a whole time slot
// (one append-ordered batch) at a time instead of re-heapifying per event,
// and the slot lists are reused so the hot path stays allocation-free.
//
// Layout. Level l has 64 slots of width 2^(6l) ns; level 0 slots are a
// single nanosecond wide. With 11 levels the wheel spans the full
// non-negative int64 timestamp range, so nothing ever overflows or wraps.
// An event at absolute time t is filed at the lowest level whose slot width
// still separates t from the dispatch cursor: the level of the highest bit
// in which t and the cursor differ. A one-word occupancy bitmap per level
// lets the dispatcher jump straight to the next non-empty slot, and level
// slot arrays are allocated lazily — a typical capture cell touches levels
// 0–4, so a fresh simulator costs a few KB, stays cheap for the GC to scan,
// and the narrow 64-slot window costs nothing extra because an event
// cascades at most once: insert re-files it at its exact final level,
// usually straight to level 0.
//
// Ordering. The engine's contract is exact (time, seq) FIFO order. A level-0
// slot is one nanosecond wide, so every event in it shares one timestamp and
// batch order is insertion order. Insertions into any slot happen in
// monotonically increasing seq order: direct schedules are globally
// seq-ordered, a cascade preserves the relative order of the list it
// redistributes, and a slot can only receive direct inserts after the
// cascade that covers its window has run (the cursor must first enter the
// window, and the cursor only moves forward). So plain append order is
// (time, seq) order and no comparisons are needed anywhere.
//
// Cursor invariants. cur is the dispatch cursor: every slot strictly before
// it (at every level) is empty, and the level-l slot containing cur has
// already been cascaded. cur <= now whenever control is outside RunUntil,
// which is what makes scheduling "in the present" land ahead of the cursor.
// Inside RunUntil the cursor may only be advanced into a slot once an event
// in that slot is guaranteed to fire (peekSlotMin gates the cascade, and
// fireSlot commits the cursor only as a live event dispatches): if control
// left RunUntil with cur ahead of now, a later schedule between now and cur
// would have to insert behind the cursor and be lost.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 11 // ceil(63 / wheelBits): covers every int64 timestamp
)

type slots [wheelSlots][]*event

type wheel struct {
	level [wheelLevels]*slots // lazily allocated slot arrays
	occ   [wheelLevels]uint64 // one occupancy bit per slot
	sum   uint64              // summary: bit l set iff occ[l] != 0
	pool  [][]*event          // spare batch arrays for upper-level slots
	cur   uint64              // dispatch cursor (an absolute time)
	n     int                 // events stored, including cancelled ones
}

// maxSpareBatches bounds the spare-array pool; beyond it, drained batch
// arrays are dropped for the GC so a burst does not pin memory forever.
const maxSpareBatches = 256

// insert files ev by its absolute time, relative to the cursor. Level-0
// slots keep their backing array across laps (they recycle within
// nanoseconds), while an empty upper-level slot borrows a spare array from
// the shared pool: upper slots are touched once per wheel lap, and laps
// lengthen 64-fold per level, so private capacity there would mean an
// allocation on every cold first touch deep into a run.
func (w *wheel) insert(ev *event) {
	t := uint64(ev.at)
	lvl := uint(0)
	if d := t ^ w.cur; d != 0 {
		lvl = uint(63-bits.LeadingZeros64(d)) / wheelBits
	}
	idx := (t >> (lvl * wheelBits)) & wheelMask
	lp := w.level[lvl]
	if lp == nil {
		lp = new(slots)
		w.level[lvl] = lp
	}
	list := lp[idx]
	if cap(list) == 0 {
		if n := len(w.pool); n > 0 {
			list = w.pool[n-1]
			w.pool = w.pool[:n-1]
		}
	}
	lp[idx] = append(list, ev)
	w.occ[lvl] |= 1 << idx
	w.sum |= 1 << lvl
	w.n++
}

// put hands a drained upper-level batch's backing array back to the spare
// pool. The array may keep stale event pointers beyond its reset length;
// events are owned by the simulator's free list anyway, so nothing outlives
// the Sim through them.
func (w *wheel) put(list []*event) {
	if len(w.pool) < maxSpareBatches {
		w.pool = append(w.pool, list[:0])
	}
}

// take empties slot idx at level lvl and returns its batch. The caller must
// hand the batch back through put once it is done with it.
func (w *wheel) take(lvl, idx int) []*event {
	list := w.level[lvl][idx]
	w.level[lvl][idx] = nil
	w.clearOcc(lvl, idx)
	w.n -= len(list)
	return list
}

// clearOcc marks slot idx at level lvl empty and maintains the level
// summary bitmap.
func (w *wheel) clearOcc(lvl, idx int) {
	w.occ[lvl] &^= 1 << idx
	if w.occ[lvl] == 0 {
		w.sum &^= 1 << lvl
	}
}

// cascade moves the batch of an upper-level slot down: the cursor enters the
// slot's window and every event re-files at its exact lower level (usually
// straight to level 0). Relative order is preserved, so per-slot seq order
// survives redistribution.
//
// The single-event case — the norm in capture cells, which keep only a
// handful of widely spaced events in flight — skips the pool round-trip and
// leaves the backing array on the slot: the same slot is revisited every
// lap of its level, so the capacity stays warm in place.
func (w *wheel) cascade(lvl, idx int, start uint64) {
	lp := w.level[lvl]
	if list := lp[idx]; len(list) == 1 {
		ev := list[0]
		lp[idx] = list[:0]
		w.clearOcc(lvl, idx)
		w.n--
		w.cur = start
		w.insert(ev)
		return
	}
	list := w.take(lvl, idx)
	w.cur = start
	for _, ev := range list {
		w.insert(ev)
	}
	w.put(list)
}

// peekSlotMin returns the earliest non-cancelled timestamp in a slot batch.
// found is false when the slot holds only cancelled events.
func peekSlotMin(list []*event) (min Time, found bool) {
	for _, ev := range list {
		if !ev.cancel && (!found || ev.at < min) {
			min, found = ev.at, true
		}
	}
	return min, found
}

// nextUpper locates the lowest level with an occupied slot at or after the
// cursor position and returns (level, index, window start time). ok is false
// when the wheel is empty above level 0.
func (w *wheel) nextUpper() (lvl, idx int, start uint64, ok bool) {
	for s := w.sum &^ 1; s != 0; s &^= 1 << lvl {
		lvl = bits.TrailingZeros64(s)
		shift := uint(lvl) * wheelBits
		m := w.occ[lvl] &^ (1<<(w.cur>>shift&wheelMask) - 1)
		if m == 0 {
			continue
		}
		idx = bits.TrailingZeros64(m)
		start = (w.cur>>shift&^uint64(wheelMask) | uint64(idx)) << shift
		return lvl, idx, start, true
	}
	return 0, 0, 0, false
}

// earliestLive returns the timestamp of the earliest non-cancelled event
// without mutating the wheel. Used by AdvanceTo's skipped-event check.
func (w *wheel) earliestLive() (Time, bool) {
	for lvl := 0; lvl < wheelLevels; lvl++ {
		shift := uint(lvl) * wheelBits
		m := w.occ[lvl] &^ (1<<(w.cur>>shift&wheelMask) - 1)
		for m != 0 {
			idx := bits.TrailingZeros64(m)
			m &^= 1 << idx
			if at, ok := peekSlotMin(w.level[lvl][idx]); ok {
				return at, true
			}
		}
	}
	return 0, false
}
