package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// --- reference scheduler -------------------------------------------------
//
// refSched is the pre-wheel event queue: a container/heap binary heap
// ordered by (time, seq) with lazy cancellation. It exists only as an
// executable specification for the property test below — the wheel must
// produce exactly the execution order this heap produces.

type refItem struct {
	at     Time
	seq    uint64
	fn     func()
	cancel bool
}

type refHeap []*refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)    { *h = append(*h, x.(*refItem)) }
func (h *refHeap) Pop() (it any) { old := *h; n := len(old); it = old[n-1]; *h = old[:n-1]; return }

type refSched struct {
	now Time
	seq uint64
	h   refHeap
}

func (r *refSched) At(at Time, fn func()) *refItem {
	it := &refItem{at: at, seq: r.seq, fn: fn}
	r.seq++
	heap.Push(&r.h, it)
	return it
}

func (r *refSched) Run() {
	for r.h.Len() > 0 {
		it := heap.Pop(&r.h).(*refItem)
		if it.cancel {
			continue
		}
		r.now = it.at
		it.fn()
	}
}

// --- property test -------------------------------------------------------

// schedIface is the least common denominator the randomized program needs:
// schedule at an absolute time, cancel, read the clock, run to exhaustion.
type schedIface interface {
	nowT() Time
	at(t Time, fn func()) func() // returns the cancel action
	run()
}

type wheelAdapter struct{ s *Sim }

func (a wheelAdapter) nowT() Time { return a.s.Now() }
func (a wheelAdapter) at(t Time, fn func()) func() {
	ref := a.s.At(t, fn)
	return ref.Cancel
}
func (a wheelAdapter) run() { a.s.Run() }

type refAdapter struct{ r *refSched }

func (a refAdapter) nowT() Time { return a.r.now }
func (a refAdapter) at(t Time, fn func()) func() {
	it := a.r.At(t, fn)
	return func() {
		if !it.cancel {
			it.cancel = true
		}
	}
}
func (a refAdapter) run() { a.r.Run() }

// runRandomProgram drives sched with a deterministic pseudo-random workload
// of schedules, same-instant schedules, cancels, and reschedules, all
// decided inside event callbacks, and returns the execution log. Any two
// correct (time, seq)-FIFO schedulers must produce identical logs for the
// same seed.
func runRandomProgram(seed int64, sched schedIface) []Time {
	rng := rand.New(rand.NewSource(seed))
	var log []Time
	var live []func() // cancel actions of events believed pending
	var budget = 4000 // events scheduled in total, bounds the run

	gap := func() Time {
		switch rng.Intn(5) {
		case 0:
			return 0 // same instant: exercises FIFO tie-break
		case 1:
			return Time(rng.Intn(64)) // same level-0 window
		case 2:
			return Time(rng.Intn(4096)) // level 1
		case 3:
			return Time(rng.Intn(1_000_000)) // mid levels
		default:
			return Time(rng.Int63n(1 << 40)) // far future: deep levels
		}
	}

	id := 0
	var schedule func()
	schedule = func() {
		if budget <= 0 {
			return
		}
		budget--
		id++
		myID := Time(id)
		cancel := sched.at(sched.nowT()+gap(), func() {
			log = append(log, myID, sched.nowT())
			// Fan out: keep the queue populated with a mix of depths.
			for k := rng.Intn(3); k > 0; k-- {
				schedule()
			}
			// Sometimes cancel a random pending event (possibly already
			// fired: must be a no-op either way).
			if len(live) > 0 && rng.Intn(3) == 0 {
				live[rng.Intn(len(live))]()
			}
			// Sometimes reschedule: cancel one and schedule a replacement.
			if len(live) > 0 && rng.Intn(4) == 0 {
				live[rng.Intn(len(live))]()
				schedule()
			}
		})
		live = append(live, cancel)
	}

	for i := 0; i < 16; i++ {
		schedule()
	}
	sched.run()
	return log
}

// TestWheelMatchesReferenceHeap is the scheduler equivalence property test:
// the timing wheel must execute randomized schedule/cancel/reschedule
// workloads in exactly the order of the reference binary heap.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		gotLog := runRandomProgram(seed, wheelAdapter{New()})
		wantLog := runRandomProgram(seed, refAdapter{&refSched{}})
		if len(gotLog) != len(wantLog) {
			t.Fatalf("seed %d: wheel fired %d entries, reference %d", seed, len(gotLog)/2, len(wantLog)/2)
		}
		for i := range gotLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("seed %d: execution logs diverge at entry %d: wheel %v, reference %v",
					seed, i/2, gotLog[i], wantLog[i])
			}
		}
	}
}

// TestFreeListCapped asserts that a burst of in-flight events does not pin
// its high-water mark on the free list: after the burst drains, the pool
// holds at most maxFreeEvents structs and the surplus is left to the GC.
func TestFreeListCapped(t *testing.T) {
	s := New()
	const burst = 4 * maxFreeEvents
	for i := 0; i < burst; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if got := len(s.free); got > maxFreeEvents {
		t.Fatalf("free list holds %d events after a %d-event burst, cap is %d",
			got, burst, maxFreeEvents)
	}
	// The pool must still be useful: the cap is a bound, not a purge.
	if got := len(s.free); got != maxFreeEvents {
		t.Fatalf("free list holds %d events, want exactly the cap %d", got, maxFreeEvents)
	}
}

// --- microbenchmarks -----------------------------------------------------

func nop() {}

// BenchmarkSchedule measures raw insertion: filing events at mixed
// distances without dispatching any of them.
func BenchmarkSchedule(b *testing.B) {
	s := New()
	gaps := make([]Time, 1024)
	rng := rand.New(rand.NewSource(7))
	for i := range gaps {
		gaps[i] = Time(rng.Int63n(1 << 30))
	}
	// Drain every batch so the benchmark measures insertion, not the memory
	// footprint of b.N undispatched events.
	const batch = 1 << 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&(batch-1) == batch-1 {
			b.StopTimer()
			s.Run()
			b.StartTimer()
		}
		s.At(s.Now()+gaps[i&1023], nop)
	}
}

// BenchmarkCancel measures O(1) lazy cancellation of pending events.
func BenchmarkCancel(b *testing.B) {
	s := New()
	const batch = 1 << 16
	refs := make([]EventRef, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & (batch - 1)
		if j == 0 {
			b.StopTimer()
			s.Run() // reclaim the previous batch's cancelled events
			for k := range refs {
				refs[k] = s.At(s.Now()+Time(k)+1, nop)
			}
			b.StartTimer()
		}
		refs[j].Cancel()
	}
}

// benchRun measures steady-state dispatch throughput (ns per fired event)
// with a configurable number of in-flight chains and tick gap. Dense mirrors
// a saturated capture cell (many near-future events); sparse mirrors the
// idle-to-moderate regime the end-to-end sweeps live in (a handful of
// widely spaced events).
func benchRun(b *testing.B, chains int, gap Time) {
	s := New()
	var tick func()
	tick = func() { s.After(gap, tick) }
	for i := 0; i < chains; i++ {
		s.At(Time(i), tick)
	}
	s.RunUntil(s.Now() + 4*gap) // warm up slot batches
	b.ReportAllocs()
	b.ResetTimer()
	fired := int(s.Steps())
	for s.Steps() < uint64(b.N+fired) {
		s.RunUntil(s.Now() + 64*gap)
	}
}

func BenchmarkRunDense(b *testing.B)  { benchRun(b, 64, 100) }
func BenchmarkRunSparse(b *testing.B) { benchRun(b, 4, 300_000) }
