package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v, want 30", s.Now())
	}
}

func TestEventFIFOTieBreak(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie break not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ref := s.At(10, func() { fired = true })
	ref.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", s.Pending())
	}
}

// Regression: draining a slot that holds only cancelled events must not
// advance the wheel cursor, because no event fired and the clock stayed
// behind. Before the fix, the schedule at 20 below filed behind the cursor
// (parked at 50) and was silently lost: g never fired and Pending() stayed
// at 1 forever.
func TestCancelledSlotDoesNotAdvanceCursor(t *testing.T) {
	s := New()
	s.At(50, func() { t.Fatal("cancelled event fired") }).Cancel()
	s.Run()
	if s.Now() != 0 {
		t.Fatalf("Now = %v after cancelled-only run, want 0", s.Now())
	}
	fired := false
	s.At(20, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event scheduled after a cancelled-only run never fired")
	}
	if s.Now() != 20 {
		t.Fatalf("Now = %v, want 20", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", s.Pending())
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	s := New()
	var got []int
	s.At(10, func() { got = append(got, 1) })
	s.At(100, func() { got = append(got, 2) })
	s.RunUntil(50)
	if len(got) != 1 {
		t.Fatalf("got %v, want just the first event", got)
	}
	s.Run()
	if len(got) != 2 {
		t.Fatalf("got %v after full run", got)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling into the past")
		}
	}()
	s.At(5, func() {})
}

func TestAdvanceTo(t *testing.T) {
	s := New()
	s.AdvanceTo(100)
	if s.Now() != 100 {
		t.Fatalf("Now = %v", s.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic skipping pending events")
		}
	}()
	s.At(150, func() {})
	s.AdvanceTo(200)
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order of their timestamps.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		var fired []Time
		for _, tm := range times {
			at := Time(tm)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// Same multiset.
		want := make([]Time, len(times))
		for i, tm := range times {
			want[i] = Time(tm)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCPUSequentialExecution(t *testing.T) {
	s := New()
	m := NewMachine(s, 1, false)
	c := m.CPUs[0]
	var done []string
	c.Submit(&Task{Name: "a", Prio: PrioUser, FixedNS: 100, OnDone: func() { done = append(done, "a") }})
	c.Submit(&Task{Name: "b", Prio: PrioUser, FixedNS: 50, OnDone: func() { done = append(done, "b") }})
	s.Run()
	if len(done) != 2 || done[0] != "a" || done[1] != "b" {
		t.Fatalf("done = %v", done)
	}
	if s.Now() != 150 {
		t.Fatalf("Now = %v, want 150", s.Now())
	}
	if got := c.Busy(PrioUser); got != 150 {
		t.Fatalf("busy = %v, want 150", got)
	}
}

func TestCPUPriorityPreemption(t *testing.T) {
	s := New()
	m := NewMachine(s, 1, false)
	c := m.CPUs[0]
	var order []string
	var userDone Time
	var irqDone Time
	c.Submit(&Task{Name: "user", Prio: PrioUser, FixedNS: 1000, OnDone: func() {
		order = append(order, "user")
		userDone = s.Now()
	}})
	s.At(200, func() {
		c.Submit(&Task{Name: "irq", Prio: PrioHardIRQ, FixedNS: 300, OnDone: func() {
			order = append(order, "irq")
			irqDone = s.Now()
		}})
	})
	s.Run()
	if len(order) != 2 || order[0] != "irq" || order[1] != "user" {
		t.Fatalf("order = %v, want [irq user]", order)
	}
	if irqDone != 500 {
		t.Fatalf("irq done at %v, want 500", irqDone)
	}
	// user ran 200ns, was preempted for 300ns, then finished its remaining 800ns.
	if userDone != 1300 {
		t.Fatalf("user done at %v, want 1300", userDone)
	}
	if got := c.Busy(PrioHardIRQ); got != 300 {
		t.Fatalf("irq busy = %v", got)
	}
	if got := c.Busy(PrioUser); got != 1000 {
		t.Fatalf("user busy = %v", got)
	}
}

func TestPreemptedTaskResumesBeforeNewArrivals(t *testing.T) {
	s := New()
	m := NewMachine(s, 1, false)
	c := m.CPUs[0]
	var order []string
	c.Submit(&Task{Name: "first", Prio: PrioUser, FixedNS: 1000, OnDone: func() { order = append(order, "first") }})
	s.At(100, func() {
		// Arrives during first's execution; must run after first completes.
		c.Submit(&Task{Name: "second", Prio: PrioUser, FixedNS: 10, OnDone: func() { order = append(order, "second") }})
		c.Submit(&Task{Name: "irq", Prio: PrioHardIRQ, FixedNS: 10, OnDone: func() { order = append(order, "irq") }})
	})
	s.Run()
	want := []string{"irq", "first", "second"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMemoryContention(t *testing.T) {
	s := New()
	m := NewMachine(s, 2, false)
	m.MemContention = 2.0
	var d0, d1 Time
	m.CPUs[0].Submit(&Task{Name: "m0", Prio: PrioUser, MemBytes: 1000, MemNsPerByte: 1, OnDone: func() { d0 = s.Now() }})
	m.CPUs[1].Submit(&Task{Name: "m1", Prio: PrioUser, MemBytes: 1000, MemNsPerByte: 1, OnDone: func() { d1 = s.Now() }})
	s.Run()
	// Contention is evaluated at dispatch time: the first task starts alone
	// (1000ns), the second observes the first and pays the multiplier.
	if d0 != 1000 || d1 != 2000 {
		t.Fatalf("durations = %v, %v; want 1000 and 2000", d0, d1)
	}
}

func TestNoContentionWhenAlone(t *testing.T) {
	s := New()
	m := NewMachine(s, 2, false)
	m.MemContention = 2.0
	var d0 Time
	m.CPUs[0].Submit(&Task{Name: "m0", Prio: PrioUser, MemBytes: 1000, MemNsPerByte: 1, OnDone: func() { d0 = s.Now() }})
	s.Run()
	if d0 != 1000 {
		t.Fatalf("duration = %v, want 1000", d0)
	}
}

func TestHyperthreadingSlowdown(t *testing.T) {
	s := New()
	m := NewMachine(s, 2, true) // 2 logical CPUs, 1 core
	m.HTSlowdown = 1.5
	var d0, d1 Time
	m.CPUs[0].Submit(&Task{Name: "a", Prio: PrioUser, FixedNS: 1000, OnDone: func() { d0 = s.Now() }})
	m.CPUs[1].Submit(&Task{Name: "b", Prio: PrioUser, FixedNS: 1000, OnDone: func() { d1 = s.Now() }})
	s.Run()
	// HT slowdown is evaluated at dispatch: the first task starts with an
	// idle sibling, the second observes a busy sibling.
	if d0 != 1000 || d1 != 1500 {
		t.Fatalf("durations = %v, %v; want 1000 and 1500", d0, d1)
	}
}

func TestSubmitUserPicksIdleCPU(t *testing.T) {
	s := New()
	m := NewMachine(s, 2, false)
	var cpus []int
	mk := func() *Task {
		return &Task{Name: "u", Prio: PrioUser, FixedNS: 1000, OnDone: func() {}}
	}
	c := m.SubmitUser(mk())
	cpus = append(cpus, c.ID)
	c = m.SubmitUser(mk())
	cpus = append(cpus, c.ID)
	if cpus[0] != 0 || cpus[1] != 1 {
		t.Fatalf("placement = %v, want [0 1]", cpus)
	}
}

func TestSubmitUserAvoidsIRQSaturatedCPU(t *testing.T) {
	s := New()
	m := NewMachine(s, 2, false)
	// Saturate CPU0 with interrupt work.
	m.CPUs[0].Submit(&Task{Name: "irq", Prio: PrioHardIRQ, FixedNS: 10000, OnDone: func() {}})
	c := m.SubmitUser(&Task{Name: "u", Prio: PrioUser, FixedNS: 10, OnDone: func() {}})
	if c.ID != 1 {
		t.Fatalf("user task placed on CPU %d, want 1", c.ID)
	}
	s.Run()
}

// Property: total busy time equals the sum of all task costs when there is
// no contention, regardless of submission order and priorities.
func TestBusyAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		m := NewMachine(s, 1, false)
		c := m.CPUs[0]
		n := 3 + rng.Intn(20)
		var total float64
		for i := 0; i < n; i++ {
			cost := float64(1 + rng.Intn(500))
			total += cost
			prio := Prio(rng.Intn(int(NumPrio)))
			at := Time(rng.Intn(2000))
			s.At(at, func() {
				c.Submit(&Task{Name: "t", Prio: prio, FixedNS: cost, OnDone: func() {}})
			})
		}
		s.Run()
		var busy Time
		for p := Prio(0); p < NumPrio; p++ {
			busy += c.Busy(p)
		}
		diff := float64(busy) - total
		if diff < 0 {
			diff = -diff
		}
		// Rounding on each preemption boundary may cost <1ns, and a task may
		// be preempted once per higher-priority arrival.
		return diff <= float64(n*n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIdle(t *testing.T) {
	s := New()
	m := NewMachine(s, 1, false)
	c := m.CPUs[0]
	if !c.Idle() {
		t.Fatal("fresh CPU should be idle")
	}
	c.Submit(&Task{Name: "t", Prio: PrioUser, FixedNS: 10, OnDone: func() {}})
	if c.Idle() {
		t.Fatal("CPU with running task should not be idle")
	}
	s.Run()
	if !c.Idle() {
		t.Fatal("CPU should be idle after run")
	}
}

func TestSubmitFrontRunsBeforeQueued(t *testing.T) {
	s := New()
	m := NewMachine(s, 1, false)
	c := m.CPUs[0]
	var order []string
	c.Submit(&Task{Name: "running", Prio: PrioUser, FixedNS: 100, OnDone: func() { order = append(order, "running") }})
	c.Submit(&Task{Name: "queued", Prio: PrioUser, FixedNS: 10, OnDone: func() { order = append(order, "queued") }})
	c.SubmitFront(&Task{Name: "front", Prio: PrioUser, FixedNS: 10, OnDone: func() { order = append(order, "front") }})
	s.Run()
	want := []string{"running", "front", "queued"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSubmitUserAvoidsKernelHeavyCPU(t *testing.T) {
	// CPU0 has spent most of the elapsed time in interrupt work; even when
	// both run queues look empty, new user work must prefer CPU1.
	s := New()
	m := NewMachine(s, 2, false)
	m.CPUs[0].Submit(&Task{Name: "irq", Prio: PrioHardIRQ, FixedNS: 9000, OnDone: func() {}})
	m.CPUs[1].Submit(&Task{Name: "u", Prio: PrioUser, FixedNS: 1000, OnDone: func() {}})
	s.Run() // now: CPU0 kernel-busy 9µs of 9µs elapsed, CPU1 user 1µs
	c := m.SubmitUser(&Task{Name: "new", Prio: PrioUser, FixedNS: 100, OnDone: func() {}})
	if c.ID != 1 {
		t.Fatalf("user task placed on kernel-heavy CPU %d, want 1", c.ID)
	}
	s.Run()
}

func TestSubmitUserBalancesByDuration(t *testing.T) {
	// A CPU with one long queued task must lose against a CPU with several
	// short ones: placement is by projected nanoseconds, not task count.
	s := New()
	m := NewMachine(s, 2, false)
	m.CPUs[0].Submit(&Task{Name: "long", Prio: PrioUser, FixedNS: 100000, OnDone: func() {}})
	for i := 0; i < 3; i++ {
		m.CPUs[1].Submit(&Task{Name: "short", Prio: PrioUser, FixedNS: 100, OnDone: func() {}})
	}
	c := m.SubmitUser(&Task{Name: "new", Prio: PrioUser, FixedNS: 100, OnDone: func() {}})
	if c.ID != 1 {
		t.Fatalf("placed on CPU %d, want 1 (3×100ns beats 1×100µs)", c.ID)
	}
	s.Run()
}

func TestPreemptAtCompletionInstantDoesNotRerun(t *testing.T) {
	// A task preempted exactly when it would have completed must not be
	// re-executed from scratch (the remaining-fraction epsilon rule).
	s := New()
	m := NewMachine(s, 1, false)
	c := m.CPUs[0]
	c.Submit(&Task{Name: "victim", Prio: PrioUser, FixedNS: 100, OnDone: func() {}})
	s.At(100, func() {
		c.Submit(&Task{Name: "irq", Prio: PrioHardIRQ, FixedNS: 50, OnDone: func() {}})
	})
	s.Run()
	total := c.Busy(PrioUser) + c.Busy(PrioHardIRQ)
	if total > 151 {
		t.Fatalf("busy = %v, want ≈150 (no double execution)", total)
	}
}

func TestStaleCancelIsNoOp(t *testing.T) {
	// After an event fires, its struct is recycled for the next scheduled
	// event. A Cancel through the old ref must not touch the new event.
	s := New()
	ref := s.At(10, func() {})
	s.Run()
	fired := false
	s.At(20, func() { fired = true }) // reuses the recycled struct
	ref.Cancel()                      // stale: generation mismatch
	s.Run()
	if !fired {
		t.Fatal("stale Cancel killed a recycled event")
	}
}

func TestCancelledEventRecycled(t *testing.T) {
	// Cancelled events are recycled on pop with a clean cancel flag.
	s := New()
	s.At(5, func() {}).Cancel()
	s.Run()
	fired := false
	s.At(10, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event reusing a cancelled struct did not fire")
	}
}

func TestEventQueueZeroAllocSteadyState(t *testing.T) {
	// The scheduling hot path must not allocate once the pool has reached
	// its high-water mark: events come off the free list, the heap slice is
	// at capacity, and EventRefs live on the stack.
	s := New()
	var tick func()
	tick = func() {
		s.After(100, tick)
		s.After(250, func() {}).Cancel() // exercise the cancel path too
	}
	for i := 0; i < 32; i++ {
		s.At(Time(i), tick)
	}
	// Warm up the pool and the wheel's per-slot batch lists. The tick
	// pattern's phase relative to the level-0 slot windows repeats only
	// after lcm(100, 64) = 1600ns, and every (slot, phase) pair must have
	// seen its maximal batch once before growth stops, so the warmup covers
	// many full periods.
	s.RunUntil(s.Now() + 200_000)
	allocs := testing.AllocsPerRun(10, func() {
		s.RunUntil(s.Now() + 10_000)
	})
	if allocs != 0 {
		t.Fatalf("steady-state scheduling allocates %.1f times per run, want 0", allocs)
	}
}

func BenchmarkEventQueue(b *testing.B) {
	// Steady-state schedule/fire throughput with 64 events in flight.
	s := New()
	var tick func()
	tick = func() { s.After(100, tick) }
	for i := 0; i < 64; i++ {
		s.At(Time(i), tick)
	}
	s.RunUntil(s.Now() + 1000) // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunUntil(s.Now() + 100) // fires ~64 events per iteration
	}
}

func TestSubmitUserAvoidsReservedCPU(t *testing.T) {
	s := New()
	m := NewMachine(s, 3, false)
	m.Reserve(0)
	m.Reserve(1)
	mk := func() *Task {
		return &Task{Name: "u", Prio: PrioUser, FixedNS: 1000, OnDone: func() {}}
	}
	for i := 0; i < 4; i++ {
		if c := m.SubmitUser(mk()); c.ID != 2 {
			t.Fatalf("user task %d placed on reserved CPU %d, want 2", i, c.ID)
		}
	}
}

func TestSubmitUserAllReservedFallsBack(t *testing.T) {
	s := New()
	m := NewMachine(s, 2, false)
	m.Reserve(0)
	m.Reserve(1)
	// Every CPU reserved: placement falls back to the full set rather
	// than deadlocking.
	if c := m.SubmitUser(&Task{Name: "u", Prio: PrioUser, FixedNS: 10, OnDone: func() {}}); c == nil {
		t.Fatal("no CPU chosen")
	}
}
