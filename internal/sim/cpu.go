package sim

import "fmt"

// Prio is a scheduling priority class. Lower values preempt higher values.
// The classes mirror the execution contexts relevant to 2005-era capture
// stacks: hardware interrupts beat soft interrupts beat kernel (syscall)
// work beats user code.
type Prio int

const (
	PrioHardIRQ Prio = iota
	PrioSoftIRQ
	PrioKernel
	PrioUser
	NumPrio
)

// String returns the cpusage-style state name for the priority class.
func (p Prio) String() string {
	switch p {
	case PrioHardIRQ:
		return "intr"
	case PrioSoftIRQ:
		return "softintr"
	case PrioKernel:
		return "sys"
	case PrioUser:
		return "user"
	default:
		return fmt.Sprintf("prio(%d)", int(p))
	}
}

// Task is a unit of work executed on a CPU.
//
// The cost of a task has two components:
//   - FixedNS: compute-bound nanoseconds at the CPU's nominal speed.
//   - MemBytes × MemNsPerByte: memory-bound nanoseconds, subject to the
//     machine's dynamic memory-contention multiplier (shared front-side bus
//     on the Xeon vs independent memory controllers on the Opteron).
//
// OnDone runs when the task completes; model code chains sequential
// activities (an application's read loop, a softirq drain, ...) by
// submitting the next task from OnDone.
type Task struct {
	Name         string
	Prio         Prio
	FixedNS      float64
	MemBytes     float64
	MemNsPerByte float64

	OnDone func()

	// remaining tracks the unfinished fraction after a preemption.
	remaining float64 // 0 => fresh task (fraction 1.0)
	started   Time
	duration  Time
	doneRef   EventRef
}

func (t *Task) fraction() float64 {
	if t.remaining == 0 {
		return 1.0
	}
	return t.remaining
}

// Machine is a set of CPUs sharing a memory system. It owns the dynamic
// cost multipliers (memory-bus contention, hyperthreading slowdown) and the
// user-task placement policy.
type Machine struct {
	Sim  *Sim
	CPUs []*CPU

	// MemContention multiplies MemNsPerByte of a task while at least one
	// *other* CPU is also executing a memory-active task. 1.0 disables the
	// effect (point-to-point memory, AMD); >1 models a shared front-side
	// bus (Intel).
	MemContention float64

	// HTSlowdown multiplies all costs of a task while its hyperthread
	// sibling CPU is busy. 1.0 when hyperthreading is off or the CPU has a
	// dedicated core.
	HTSlowdown float64

	// reserved marks CPUs excluded from SubmitUser placement: a poll-mode
	// driver pins a busy-spin loop there, so a user task placed on one
	// would starve behind the spinning forever. unreserved caches the
	// placement candidates so the SubmitUser hot path stays allocation-free.
	reserved   []bool
	unreserved []*CPU
}

// Reserve dedicates CPU id to pinned kernel work (a poll-mode driver
// core): SubmitUser will no longer place user tasks there. If every CPU
// ends up reserved, SubmitUser falls back to considering all of them —
// the caller is expected to leave at least one CPU for user work.
func (m *Machine) Reserve(id int) {
	if m.reserved == nil {
		m.reserved = make([]bool, len(m.CPUs))
	}
	m.reserved[id] = true
	m.unreserved = m.unreserved[:0]
	for i, c := range m.CPUs {
		if !m.reserved[i] {
			m.unreserved = append(m.unreserved, c)
		}
	}
	if len(m.unreserved) == 0 {
		m.unreserved = append(m.unreserved, m.CPUs...)
	}
}

// NewMachine creates a machine with n CPUs. If hyperthreading is true the
// CPUs are paired: CPU 2k and 2k+1 share physical core k.
func NewMachine(s *Sim, n int, hyperthreading bool) *Machine {
	m := &Machine{Sim: s, MemContention: 1.0, HTSlowdown: 1.0}
	for i := 0; i < n; i++ {
		core := i
		if hyperthreading {
			core = i / 2
		}
		m.CPUs = append(m.CPUs, &CPU{machine: m, ID: i, Core: core})
	}
	return m
}

// taskq is a head-indexed FIFO of tasks. Pops advance the head instead of
// shifting the slice, and a front push reuses the popped gap, so the
// per-dispatch memmove and the per-preemption prepend allocation of a plain
// slice queue disappear. Popped slots keep stale pointers until overwritten
// or the queue drains; the buffer is as small as the deepest backlog, so
// the pinned tail is negligible.
type taskq struct {
	buf  []*Task
	head int
}

func (q *taskq) len() int { return len(q.buf) - q.head }

func (q *taskq) pushBack(t *Task) { q.buf = append(q.buf, t) }

func (q *taskq) pushFront(t *Task) {
	if q.head > 0 {
		q.head--
		q.buf[q.head] = t
		return
	}
	q.buf = append(q.buf, nil)
	copy(q.buf[1:], q.buf)
	q.buf[0] = t
}

func (q *taskq) popFront() *Task {
	t := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return t
}

// CPU is a single (possibly logical) processor with strict-priority,
// preemptive FIFO scheduling and busy-time accounting per priority class.
type CPU struct {
	machine *Machine
	ID      int
	Core    int

	queues  [NumPrio]taskq
	current *Task

	busy [NumPrio]Time // completed busy time per class
}

// Submit enqueues t on this CPU and dispatches or preempts as needed.
func (c *CPU) Submit(t *Task) {
	if t.OnDone == nil {
		panic("sim: task without OnDone")
	}
	c.queues[t.Prio].pushBack(t)
	if c.current == nil {
		c.dispatch()
		return
	}
	if t.Prio < c.current.Prio {
		c.preempt()
		c.dispatch()
	}
}

// SubmitFront enqueues t at the head of its priority queue: the next
// dispatch of that class picks it before anything that was already waiting.
// This models a process that continues running within its scheduler
// timeslice instead of yielding (Linux 2.6 O(1) scheduler behaviour under
// streaming load).
func (c *CPU) SubmitFront(t *Task) {
	if t.OnDone == nil {
		panic("sim: task without OnDone")
	}
	c.queues[t.Prio].pushFront(t)
	if c.current == nil {
		c.dispatch()
		return
	}
	if t.Prio < c.current.Prio {
		c.preempt()
		c.dispatch()
	}
}

// preempt stops the running task, accounts the elapsed time, and requeues
// the remainder at the front of its priority queue.
func (c *CPU) preempt() {
	cur := c.current
	elapsed := c.machine.Sim.Now() - cur.started
	c.busy[cur.Prio] += elapsed
	frac := 0.0
	if cur.duration > 0 {
		frac = float64(elapsed) / float64(cur.duration)
	}
	rem := cur.fraction() * (1 - frac)
	// remaining == 0 denotes a fresh task (zero value); a task preempted
	// exactly at its completion instant must keep an epsilon so it is
	// redispatched as (effectively) finished rather than restarted.
	if rem <= 0 {
		rem = 1e-12
	}
	cur.remaining = rem
	cur.doneRef.Cancel()
	c.current = nil
	// Requeue at the front: a preempted task resumes before tasks that
	// arrived while it was running.
	c.queues[cur.Prio].pushFront(cur)
}

// dispatch starts the highest-priority pending task, if any.
func (c *CPU) dispatch() {
	if c.current != nil {
		return
	}
	for p := Prio(0); p < NumPrio; p++ {
		if c.queues[p].len() == 0 {
			continue
		}
		c.start(c.queues[p].popFront())
		return
	}
}

// start computes the task's duration under the current dynamic conditions
// and schedules its completion.
func (c *CPU) start(t *Task) {
	memNs := t.MemBytes * t.MemNsPerByte
	if memNs > 0 && c.machine.memActiveElsewhere(c) {
		memNs *= c.machine.MemContention
	}
	ns := (t.FixedNS + memNs) * t.fraction()
	if c.machine.siblingBusy(c) {
		ns *= c.machine.HTSlowdown
	}
	if ns < 0 {
		ns = 0
	}
	t.started = c.machine.Sim.Now()
	t.duration = Time(ns + 0.5)
	c.current = t
	t.doneRef = c.machine.Sim.afterTask(t.duration, c, t)
}

func (c *CPU) complete(t *Task) {
	if c.current != t {
		return // stale completion (preempted); defensive, Cancel should prevent this
	}
	c.busy[t.Prio] += t.duration
	c.current = nil
	// Run the completion callback before dispatching the next task so the
	// callback may submit follow-up work that competes fairly for the CPU.
	t.OnDone()
	c.dispatch()
}

// Busy returns the accumulated busy time of class p, including the elapsed
// part of a currently running task.
func (c *CPU) Busy(p Prio) Time {
	b := c.busy[p]
	if c.current != nil && c.current.Prio == p {
		b += c.machine.Sim.Now() - c.current.started
	}
	return b
}

// BusyTotal returns accumulated busy time across all classes.
func (c *CPU) BusyTotal() Time {
	var b Time
	for p := Prio(0); p < NumPrio; p++ {
		b += c.Busy(p)
	}
	return b
}

// Idle reports whether the CPU has neither a running task nor queued work.
func (c *CPU) Idle() bool {
	if c.current != nil {
		return false
	}
	for p := Prio(0); p < NumPrio; p++ {
		if c.queues[p].len() > 0 {
			return false
		}
	}
	return true
}

// QueueLen returns the number of queued (not running) tasks of class p.
func (c *CPU) QueueLen(p Prio) int { return c.queues[p].len() }

// memActiveElsewhere reports whether any other CPU is running a
// memory-active task right now.
func (m *Machine) memActiveElsewhere(self *CPU) bool {
	if m.MemContention <= 1.0 {
		return false
	}
	for _, c := range m.CPUs {
		if c != self && c.current != nil && c.current.MemBytes > 0 {
			return true
		}
	}
	return false
}

// siblingBusy reports whether the hyperthread sibling of self is executing.
func (m *Machine) siblingBusy(self *CPU) bool {
	if m.HTSlowdown <= 1.0 {
		return false
	}
	for _, c := range m.CPUs {
		if c != self && c.Core == self.Core && c.current != nil {
			return true
		}
	}
	return false
}

// SubmitUser places a user task where it is projected to finish earliest:
// the pending work on each CPU plus the task itself, stretched by the
// share of the CPU that kernel-side work (interrupts, softirqs) has been
// consuming — a scheduler quickly learns that the CPU taking the
// interrupts runs user work slowly. Ties are broken by accumulated kernel
// busy time, then by CPU ID for determinism.
func (m *Machine) SubmitUser(t *Task) *CPU {
	cands := m.CPUs
	if len(m.unreserved) > 0 {
		cands = m.unreserved
	}
	best := cands[0]
	bestScore := m.finishScore(best, t)
	bestKern := kernelBusyTotal(best)
	for _, c := range cands[1:] {
		s, k := m.finishScore(c, t), kernelBusyTotal(c)
		if s < bestScore || (s == bestScore && k < bestKern) {
			best, bestScore, bestKern = c, s, k
		}
	}
	best.Submit(t)
	return best
}

// finishScore projects when t would complete on c.
func (m *Machine) finishScore(c *CPU, t *Task) float64 {
	avail := 1.0
	if now := m.Sim.Now(); now > 0 {
		kfrac := float64(kernelBusyTotal(c)) / float64(now)
		avail = 1 - kfrac
		if avail < 0.1 {
			avail = 0.1
		}
	}
	return (pendingNS(c) + t.estNS()) / avail
}

// estNS is the task's nominal duration ignoring dynamic multipliers.
func (t *Task) estNS() float64 {
	return (t.FixedNS + t.MemBytes*t.MemNsPerByte) * t.fraction()
}

// pendingNS estimates the work already committed to a CPU.
func pendingNS(c *CPU) float64 {
	var ns float64
	for p := Prio(0); p < NumPrio; p++ {
		q := &c.queues[p]
		for _, t := range q.buf[q.head:] {
			ns += t.estNS()
		}
	}
	if c.current != nil {
		ns += c.current.estNS()
	}
	return ns
}

func kernelBusyTotal(c *CPU) Time {
	return c.Busy(PrioHardIRQ) + c.Busy(PrioSoftIRQ) + c.Busy(PrioKernel)
}

// Running returns the currently executing task, or nil.
func (c *CPU) Running() *Task { return c.current }
