// Package sim implements the discrete-event simulation engine that underlies
// the capture-system models.
//
// The engine is deliberately small: a simulated clock, an event queue ordered
// by (time, sequence), and a Run loop. Determinism is a hard requirement
// (the thesis demands reproducible measurements), so ties are broken by
// insertion order and no real-world time or map iteration order ever leaks
// into scheduling decisions.
//
// CPUs (see cpu.go) are built on top of the event queue and provide
// priority-scheduled, preemptible execution of work items with cycle-accurate
// cost accounting.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is simulated time in nanoseconds since the start of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = time.Duration

const (
	// Nanosecond .. Second mirror the time package for readability at call
	// sites that construct simulated durations.
	Nanosecond  = Time(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Event structs are single-owner and pooled
// on a per-Sim free list: once popped from the queue they are recycled
// immediately, so the hot path allocates nothing in steady state. The
// generation counter invalidates EventRefs to recycled structs.
type event struct {
	at     Time
	seq    uint64 // tie breaker: FIFO among equal times
	fn     func()
	cancel bool
	index  int    // heap index
	gen    uint64 // bumped on recycle; stale EventRefs miscompare
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// EventRef identifies a scheduled event so it can be cancelled.
type EventRef struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op: the generation counter detects that
// the underlying struct has been recycled for a newer event.
func (r EventRef) Cancel() {
	if r.ev != nil && r.ev.gen == r.gen {
		r.ev.cancel = true
	}
}

// Sim is a discrete-event simulator instance.
type Sim struct {
	now    Time
	queue  eventQueue
	seq    uint64
	nsteps uint64
	free   []*event // recycled event structs (single-owner pool)
}

// initialQueueCap pre-sizes the event heap and the free list so short runs
// never re-grow them and long runs amortize growth to zero.
const initialQueueCap = 256

// New returns an empty simulator at time zero.
func New() *Sim {
	return &Sim{
		queue: make(eventQueue, 0, initialQueueCap),
		free:  make([]*event, 0, initialQueueCap),
	}
}

// alloc takes an event struct off the free list, or makes a new one if the
// pool is dry (only while the in-flight high-water mark is still growing).
func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a popped event to the pool. Bumping the generation first
// turns any EventRef still pointing here into a no-op.
func (s *Sim) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.cancel = false
	s.free = append(s.free, ev)
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Steps reports how many events have been executed so far.
func (s *Sim) Steps() uint64 { return s.nsteps }

// At schedules fn to run at absolute simulated time at. Scheduling in the
// past panics: it always indicates a modelling bug.
func (s *Sim) At(at Time, fn func()) EventRef {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.fn = at, s.seq, fn
	s.seq++
	heap.Push(&s.queue, ev)
	return EventRef{ev, ev.gen}
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) EventRef {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.At(s.now+d, fn)
}

// RunUntil executes events in order until the queue is empty or the next
// event is later than limit. The clock is left at the time of the last
// executed event (or limit if the queue drained earlier than limit but the
// caller wants a full window; see AdvanceTo).
func (s *Sim) RunUntil(limit Time) {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > limit {
			return
		}
		heap.Pop(&s.queue)
		// Recycle before running the callback: a popped event can never
		// fire again, and fn may schedule new events that reuse the struct.
		at, fn, cancelled := next.at, next.fn, next.cancel
		s.recycle(next)
		if cancelled {
			continue
		}
		s.now = at
		s.nsteps++
		fn()
	}
}

// Run executes all events until the queue is empty.
func (s *Sim) Run() { s.RunUntil(Time(1<<62 - 1)) }

// AdvanceTo moves the clock to t without executing anything. It panics if
// events earlier than t are still pending, or if t is in the past.
func (s *Sim) AdvanceTo(t Time) {
	if t < s.now {
		panic("sim: AdvanceTo into the past")
	}
	if len(s.queue) > 0 && s.queue[0].at < t && !s.queue[0].cancel {
		panic("sim: AdvanceTo would skip pending events")
	}
	s.now = t
}

// Pending reports the number of live (non-cancelled) events in the queue.
func (s *Sim) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.cancel {
			n++
		}
	}
	return n
}
