// Package sim implements the discrete-event simulation engine that underlies
// the capture-system models.
//
// The engine is deliberately small: a simulated clock, an event queue ordered
// by (time, sequence), and a Run loop. Determinism is a hard requirement
// (the thesis demands reproducible measurements), so ties are broken by
// insertion order and no real-world time or map iteration order ever leaks
// into scheduling decisions.
//
// The queue is a hierarchical timing wheel (see wheel.go): O(1) amortized
// schedule and cancel, and dispatch that drains a whole time slot per batch
// instead of re-heapifying per event.
//
// CPUs (see cpu.go) are built on top of the event queue and provide
// priority-scheduled, preemptible execution of work items with cycle-accurate
// cost accounting.
package sim

import (
	"fmt"
	"math/bits"
	"time"
)

// Time is simulated time in nanoseconds since the start of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = time.Duration

const (
	// Nanosecond .. Second mirror the time package for readability at call
	// sites that construct simulated durations.
	Nanosecond  = Time(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Event structs are single-owner and pooled
// on a per-Sim free list: once popped from the queue they are recycled
// immediately, so the hot path allocates nothing in steady state. The
// generation counter invalidates EventRefs to recycled structs.
//
// Task completions — the dominant event type, one per executed Task — are
// stored intrusively (kind evTask with cpu/task pointers) instead of as a
// closure, so completing a task allocates nothing. The kind tag, not a nil
// check, selects the dispatch path; stale pointers from a previous use of
// the struct are simply ignored, which spares recycle from clearing them
// (each clear would cost a GC write barrier per dispatched event).
type event struct {
	at     Time
	seq    uint64 // tie breaker: FIFO among equal times (implicit in slot order)
	fn     func() // kind evFunc
	cpu    *CPU   // kind evTask
	task   *Task  // kind evTask
	owner  *Sim   // for the live-event counter on Cancel
	gen    uint64 // bumped on recycle; stale EventRefs miscompare
	kind   uint8
	cancel bool
}

const (
	evFunc = uint8(iota) // run fn
	evTask               // run cpu.complete(task)
)

// EventRef identifies a scheduled event so it can be cancelled.
type EventRef struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Cancellation is O(1) and lazy: the
// event stays in its wheel slot and is reclaimed when the dispatcher reaches
// it. Cancelling an already-fired or already-cancelled event is a no-op: the
// generation counter detects that the underlying struct has been recycled
// for a newer event.
func (r EventRef) Cancel() {
	if r.ev != nil && r.ev.gen == r.gen && !r.ev.cancel {
		r.ev.cancel = true
		r.ev.owner.live--
	}
}

// Sim is a discrete-event simulator instance.
type Sim struct {
	now    Time
	wheel  wheel
	seq    uint64
	nsteps uint64
	live   int      // scheduled and not yet fired or cancelled
	free   []*event // recycled event structs (single-owner pool)
}

// initialQueueCap pre-sizes the free list so short runs never re-grow it and
// long runs amortize growth to zero.
const initialQueueCap = 256

// maxFreeEvents caps the free list. A burst-heavy cell can push tens of
// thousands of events in flight at once; without a cap the pool would pin
// that high-water mark in memory for the rest of a long campaign. Beyond the
// cap, recycled structs are dropped for the GC. The cap comfortably exceeds
// the steady-state in-flight population of every modelled system (one
// chained arrival, per-CPU task completions, and a handful of timeouts).
const maxFreeEvents = 1024

// New returns an empty simulator at time zero.
func New() *Sim {
	return &Sim{free: make([]*event, 0, initialQueueCap)}
}

// alloc takes an event struct off the free list, or makes a new one if the
// pool is dry (only while the in-flight high-water mark is still growing).
func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free = s.free[:n-1]
		return ev
	}
	return &event{owner: s}
}

// recycle returns a dispatched event to the pool. Bumping the generation
// first turns any EventRef still pointing here into a no-op. The callback
// pointer is deliberately left in place — clearing it costs a GC write
// barrier per dispatched event, and the pool is capped, so at most
// maxFreeEvents stale closures stay reachable until their structs are
// reused.
func (s *Sim) recycle(ev *event) {
	ev.gen++
	ev.cancel = false
	if len(s.free) < maxFreeEvents {
		s.free = append(s.free, ev)
	}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Steps reports how many events have been executed so far.
func (s *Sim) Steps() uint64 { return s.nsteps }

// At schedules fn to run at absolute simulated time at. Scheduling in the
// past panics: it always indicates a modelling bug.
func (s *Sim) At(at Time, fn func()) EventRef {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.fn, ev.kind = at, s.seq, fn, evFunc
	s.seq++
	s.wheel.insert(ev)
	s.live++
	return EventRef{ev, ev.gen}
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) EventRef {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.At(s.now+d, fn)
}

// afterTask schedules the completion of t on c, d nanoseconds from now. It
// is the closure-free twin of After for the per-task completion event — the
// single most frequent event in every capture model — so running a task
// does not allocate.
func (s *Sim) afterTask(d Time, c *CPU, t *Task) EventRef {
	ev := s.alloc()
	ev.at, ev.seq, ev.cpu, ev.task, ev.kind = s.now+d, s.seq, c, t, evTask
	s.seq++
	s.wheel.insert(ev)
	s.live++
	return EventRef{ev, ev.gen}
}

// RunUntil executes events in order until the queue is empty or the next
// event is later than limit. The clock is left at the time of the last
// executed event (or limit if the queue drained earlier than limit but the
// caller wants a full window; see AdvanceTo).
func (s *Sim) RunUntil(limit Time) {
	w := &s.wheel
	for w.n > 0 {
		// Everything in the cursor's level-0 window is already filed at
		// level 0, and a level-0 slot is one batch at one timestamp: drain it.
		if m := w.occ[0] &^ (1<<(w.cur&wheelMask) - 1); m != 0 {
			j := bits.TrailingZeros64(m)
			at := Time(w.cur&^wheelMask | uint64(j))
			if at > limit {
				return
			}
			s.fireSlot(j, at)
			continue
		}
		// Window exhausted: the next event lives in the first occupied slot
		// of the lowest occupied level. Cascading it commits the cursor into
		// its window, which is only safe once an event there is known to
		// fire — otherwise a later schedule between now and the cursor would
		// land behind the cursor and be lost. peekSlotMin gates that.
		lvl, idx, start, ok := w.nextUpper()
		if !ok {
			return
		}
		if Time(start) > limit {
			return
		}
		min, live := peekSlotMin(w.level[lvl][idx])
		if !live {
			// Only cancelled events: reclaim them without moving the cursor.
			list := w.take(lvl, idx)
			for _, ev := range list {
				s.recycle(ev)
			}
			w.put(list)
			continue
		}
		if min > limit {
			return
		}
		w.cascade(lvl, idx, start)
	}
}

// fireSlot dispatches one level-0 slot: a batch of events sharing a single
// timestamp, in seq order. Callbacks may schedule at the current instant;
// those land in a fresh list for the same slot and the run loop picks them
// up in the next pass.
//
// The cursor is committed together with the clock, just before a live
// event's callback runs. A slot holding only cancelled events must leave
// the cursor where it is — the same gate peekSlotMin applies to the
// upper-level cascade in RunUntil — because advancing cur past a slot that
// fired nothing leaves now behind cur, and a later legal schedule into that
// gap would file behind the cursor and be silently lost.
func (s *Sim) fireSlot(j int, at Time) {
	w := &s.wheel
	lp := w.level[0]
	list := lp[j]
	lp[j] = nil
	w.clearOcc(0, j)
	w.n -= len(list)
	for _, ev := range list {
		// Recycle before running the callback: a dispatched event can never
		// fire again, and the callback may schedule new events that reuse
		// the struct.
		fn, cpu, task := ev.fn, ev.cpu, ev.task
		kind, cancelled := ev.kind, ev.cancel
		s.recycle(ev)
		if cancelled {
			continue
		}
		w.cur = uint64(at)
		s.live--
		s.now = at
		s.nsteps++
		if kind == evTask {
			cpu.complete(task)
		} else {
			fn()
		}
	}
	// Hand the batch's backing array straight back to the slot (unless a
	// same-instant schedule already started a fresh list there): level-0
	// slots recycle within nanoseconds, so keeping capacity in place avoids
	// pool traffic on the hottest path.
	if lp[j] == nil {
		lp[j] = list[:0]
	}
}

// Run executes all events until the queue is empty.
func (s *Sim) Run() { s.RunUntil(Time(1<<62 - 1)) }

// AdvanceTo moves the clock to t without executing anything. It panics if
// non-cancelled events earlier than t are still pending, or if t is in the
// past.
func (s *Sim) AdvanceTo(t Time) {
	if t < s.now {
		panic("sim: AdvanceTo into the past")
	}
	if at, ok := s.wheel.earliestLive(); ok && at < t {
		panic("sim: AdvanceTo would skip pending events")
	}
	s.now = t
}

// Pending reports the number of live (non-cancelled) events in the queue.
// The count is maintained on schedule/cancel/fire, so this is O(1).
func (s *Sim) Pending() int { return s.live }
