package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/capture"
	"repro/internal/faults"
)

// TestChaosNilPlanMatchesParallel: with no fault plan the resilient sweep
// must be numerically identical to the parallel engine — the chaos
// counters then only record one clean attempt per repetition.
func TestChaosNilPlanMatchesParallel(t *testing.T) {
	cfgs := Sniffers()
	w := Workload{Packets: 2000, Seed: 5}
	rates := []float64{200, 800}
	reps := 2
	clean := SweepRatesParallel(context.Background(), cfgs, rates, w, reps, 2)
	chaos := SweepRatesResilient(context.Background(), cfgs, rates, w, reps, 2, ChaosOptions{})
	for si := range chaos {
		for pi := range chaos[si].Points {
			p := chaos[si].Points[pi]
			if p.Attempts != reps || p.Quarantined != 0 || p.Rejected != 0 || p.Degraded || p.FaultLog != "" {
				t.Fatalf("%s x=%g: nil-plan chaos counters dirty: %+v", chaos[si].System, p.X, p)
			}
			p.Attempts = 0
			if !reflect.DeepEqual(p, clean[si].Points[pi]) {
				t.Fatalf("%s x=%g: nil-plan point differs from parallel engine:\n%+v\nvs\n%+v",
					chaos[si].System, p.X, p, clean[si].Points[pi])
			}
		}
	}
}

// TestChaosDeterministic: a chaos sweep is a pure function of (plan seed,
// workload) — independent of worker count and repeatable bit for bit.
func TestChaosDeterministic(t *testing.T) {
	cfgs := Sniffers()
	w := Workload{Packets: 1500, Seed: 3}
	rates := []float64{300, 900}
	co := ChaosOptions{Plan: faults.DefaultPlan(42)}
	a := SweepRatesResilient(context.Background(), cfgs, rates, w, 3, 0, co)
	b := SweepRatesResilient(context.Background(), cfgs, rates, w, 3, 4, co)
	c := SweepRatesResilient(context.Background(), cfgs, rates, w, 3, 4, co)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("chaos sweep differs between serial and 4 workers")
	}
	if !reflect.DeepEqual(b, c) {
		t.Fatal("chaos sweep differs between two identical runs")
	}
}

// TestChaosConvergesToCleanRates is the tentpole invariant: under the
// default fault mix, the accepted per-point rates converge to the clean
// run's (same workload seeds, faults on vs. off) within the rejection
// tolerance. Non-faulted repetitions replay the identical recorded train,
// so the only drift comes from repetitions the supervisor quarantined,
// rejected, or accepted as leg-degraded.
func TestChaosConvergesToCleanRates(t *testing.T) {
	cfgs := Sniffers()
	w := Workload{Packets: 2000, Seed: 7}
	rates := []float64{200, 600, 1000}
	reps := 4
	plan := faults.DefaultPlan(11)
	co := ChaosOptions{Plan: plan}
	clean := SweepRatesParallel(context.Background(), cfgs, rates, w, reps, 4)
	chaos := SweepRatesResilient(context.Background(), cfgs, rates, w, reps, 4, co)

	quarantined := 0
	for si := range chaos {
		for pi := range chaos[si].Points {
			cp, cl := chaos[si].Points[pi], clean[si].Points[pi]
			if cp.Attempts < reps {
				t.Fatalf("%s x=%g: %d attempts for %d reps — silently dropped work",
					chaos[si].System, cp.X, cp.Attempts, reps)
			}
			quarantined += cp.Quarantined
			if cp.Quarantined == reps {
				if !cp.Degraded {
					t.Fatalf("%s x=%g: fully quarantined point not marked Degraded", chaos[si].System, cp.X)
				}
				continue // nothing accepted; no rate to compare
			}
			// Tolerance: the clean repetition spread, the MAD floor, and the
			// worst-case pull of an accepted leg-degraded repetition.
			tol := (cl.RateMax - cl.RateMin) + 0.5 + plan.LegLossRatio*100
			if diff := cp.Rate - cl.Rate; diff > tol || diff < -tol {
				t.Errorf("%s x=%g: chaos rate %.2f vs clean %.2f (tol %.2f)\nlog: %s",
					chaos[si].System, cp.X, cp.Rate, cl.Rate, tol, cp.FaultLog)
			}
		}
	}
	// The default mix must actually exercise the machinery.
	attempts, _, _, _ := ChaosTotals(chaos)
	if attempts <= len(rates)*reps*len(cfgs) {
		t.Fatalf("default plan injected nothing: %d attempts for %d cells",
			attempts, len(rates)*reps*len(cfgs))
	}
	if quarantined == len(rates)*reps*len(cfgs) {
		t.Fatal("every repetition quarantined — plan too hostile for convergence test")
	}
}

// TestFaultRetryRecoversPanic: a cell whose run panics on the first
// attempt is retried by the supervisor and accepted on the second — the
// panic is contained as a failed attempt, not a crashed process.
func TestFaultRetryRecoversPanic(t *testing.T) {
	w := Workload{Packets: 1200, Seed: 4, TargetRate: 6e8}
	tries := 0
	cells := []Cell{{Cfg: Swan(), W: w, Wrap: func(src capture.Source) capture.Source {
		tries++
		if tries == 1 {
			return &panicSource{src: src, after: 5}
		}
		return src
	}}}
	outs := RunCellsResilient(context.Background(), cells, []CellID{{Point: 1, Rep: 0}}, 0, ChaosOptions{})
	o := outs[0]
	if !o.OK || o.Quarantined {
		t.Fatalf("panicking cell not recovered: %+v", o)
	}
	if o.Attempts != 2 {
		t.Fatalf("want 2 attempts (panic, then clean), got %d", o.Attempts)
	}
	if o.BackoffNS <= 0 {
		t.Fatal("retry did not pay the simulated backoff")
	}
	if len(o.Log) == 0 || !strings.Contains(o.Log[0], "panicked") {
		t.Fatalf("panic not logged: %q", o.Log)
	}
	want := RunOnce(Swan(), w)
	if !reflect.DeepEqual(o.Stats, want) {
		t.Fatal("recovered run differs from a direct clean run")
	}
}

// TestChaosQuarantineAfterBudget: a sniffer that hangs on every attempt
// exhausts the retry budget and is quarantined; the sweep completes with
// the point marked Degraded instead of deadlocking or aborting.
func TestChaosQuarantineAfterBudget(t *testing.T) {
	plan := &faults.Plan{Seed: 1, PHang: 1}
	co := ChaosOptions{Plan: plan, RetryBudget: 2}
	w := Workload{Packets: 1000, Seed: 2}
	outs := RunCellsResilient(
		context.Background(), []Cell{{Cfg: Swan(), W: w}}, []CellID{{Point: 9, Rep: 0}}, 0, co)
	o := outs[0]
	if o.OK || !o.Quarantined {
		t.Fatalf("always-hanging cell not quarantined: %+v", o)
	}
	if o.Attempts != 3 {
		t.Fatalf("want budget+1 = 3 attempts, got %d", o.Attempts)
	}
	if o.Stats.Generated != 0 {
		t.Fatalf("hung sniffer returned statistics: %+v", o.Stats)
	}

	// The dead-sniffer case at sweep level: the other three systems keep
	// measuring, the hung one's points are Degraded with zero rate.
	series := SweepRatesResilient(
		context.Background(), []capture.Config{Swan(), Moorhen()}, []float64{400}, w, 2, 2,
		ChaosOptions{Plan: &faults.Plan{Seed: 1, PHang: 1}, RetryBudget: 1})
	for _, s := range series {
		p := s.Points[0]
		if !p.Degraded || p.Quarantined != 2 || p.Rate != 0 {
			t.Fatalf("%s: all-hang point = %+v", s.System, p)
		}
	}
}

// TestChaosDegradedLegBooksFaultLoss: a persistently degraded splitter leg
// is accepted after the retry budget with the withheld frames booked under
// fault-splitter, so packet conservation against the switch's ground truth
// still holds.
func TestChaosDegradedLegBooksFaultLoss(t *testing.T) {
	plan := &faults.Plan{Seed: 6, PLegLoss: 1, LegLossRatio: 0.05}
	w := Workload{Packets: 2000, Seed: 8, TargetRate: 4e8}
	outs := RunCellsResilient(
		context.Background(), []Cell{{Cfg: Moorhen(), W: w}}, []CellID{{Point: 4, Rep: 1}}, 0,
		ChaosOptions{Plan: plan})
	o := outs[0]
	if !o.OK || !o.Degraded {
		t.Fatalf("lossy-leg cell not accepted as degraded: %+v", o)
	}
	booked := o.Stats.Ledger.Drops[capture.CauseFaultSplitter]
	if booked.Packets == 0 {
		t.Fatal("no frames booked under fault-splitter")
	}
	if err := o.Stats.CheckConservation(); err != nil {
		t.Fatalf("conservation broken on degraded leg: %v", err)
	}
	// Generated must be normalized back to the switch's count.
	clean := RunOnce(Moorhen(), w)
	if o.Stats.Generated != clean.Generated {
		t.Fatalf("degraded Generated %d != switch count %d", o.Stats.Generated, clean.Generated)
	}
}

// TestChaosFormat: the -chaos companion table renders the bookkeeping.
func TestChaosFormat(t *testing.T) {
	series := []Series{{System: "swan", Points: []Point{{
		X: 200, Attempts: 5, Quarantined: 1, Rejected: 1, Degraded: true,
		FaultLog: "rep0.0 swan:sniffer-hang",
	}}}}
	out := FormatChaos(series)
	for _, want := range []string{"swan", "DEGRADED", "sniffer-hang", "5\t1\t1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatChaos missing %q:\n%s", want, out)
		}
	}
	a, q, r, d := ChaosTotals(series)
	if a != 5 || q != 1 || r != 1 || d != 1 {
		t.Fatalf("ChaosTotals = %d %d %d %d", a, q, r, d)
	}
}
