package core

import (
	"container/list"
	"sync"

	"repro/internal/capture"
	"repro/internal/pktgen"
	"repro/internal/sim"
)

// Feed is one recorded packet train: what the optical splitter of Figure
// 3.1 delivers identically to every sniffer. For a given (Packets,
// TargetRate, Seed, FixedSize) the enhanced pktgen is fully deterministic,
// so recording the train once and replaying it into each system is not an
// approximation of the testbed — it *is* the testbed: the thesis generates
// each train exactly once and the splitter fans it out.
//
// A Feed is immutable after RecordFeed returns. The Data slices are shared
// with the generator's frame cache and must not be written (the same
// contract pktgen.Packet states), which makes concurrent replay into
// several systems safe.
type Feed struct {
	Workload Workload
	Packets  []pktgen.Packet

	// Ground-truth counters, the role the switch's port counters play in
	// §3.2: the generated packet and byte counts the capture results are
	// normalized against.
	Sent      uint64
	SentBytes uint64 // frame bytes (excluding preamble/FCS/IFG)
	WireBytes uint64 // including per-frame wire overhead
	LastTime  sim.Time
}

// RecordFeed runs the workload's generator once and records the train.
func RecordFeed(w Workload) *Feed {
	g := w.Generator()
	g.Reset()
	f := &Feed{Workload: w}
	if w.Packets > 0 {
		f.Packets = make([]pktgen.Packet, 0, w.Packets)
	}
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		f.Packets = append(f.Packets, p)
	}
	f.Sent, f.SentBytes, f.WireBytes = g.Sent, g.SentBytes, g.WireBytes
	f.LastTime = g.LastTime
	return f
}

// Replay returns a fresh Source emitting the recorded train. Each call
// returns an independent cursor, so one feed can drive many systems —
// concurrently, since replay only reads the feed.
func (f *Feed) Replay() capture.Source { return &feedSource{f: f} }

type feedSource struct {
	f *Feed
	i int
}

func (s *feedSource) Reset() { s.i = 0 }

func (s *feedSource) Next() (pktgen.Packet, bool) {
	if s.i >= len(s.f.Packets) {
		return pktgen.Packet{}, false
	}
	p := s.f.Packets[s.i]
	s.i++
	return p, true
}

// DefaultFeedCacheSize bounds how many recorded trains a sweep holds at
// once. Cells are scheduled column-major (all systems of one (rate, rep)
// column together), so a small cache suffices for sweeps of any width.
const DefaultFeedCacheSize = 32

// FeedCache is a bounded, mutex-guarded LRU of recorded feeds keyed by the
// workload fingerprint. Concurrent Gets for the same workload share a
// single recording (the losers block until the winner's generator run
// completes) instead of generating the train once per sniffer.
type FeedCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *feedEntry
	entries map[Workload]*feedEntry
	hits    uint64
	misses  uint64
}

type feedEntry struct {
	key  Workload
	elem *list.Element
	once sync.Once
	feed *Feed
}

// NewFeedCache returns a cache holding at most max feeds (≤0 selects
// DefaultFeedCacheSize).
func NewFeedCache(max int) *FeedCache {
	if max <= 0 {
		max = DefaultFeedCacheSize
	}
	return &FeedCache{
		max:     max,
		order:   list.New(),
		entries: make(map[Workload]*feedEntry),
	}
}

// Get returns the feed for w, recording it on first use.
func (c *FeedCache) Get(w Workload) *Feed {
	c.mu.Lock()
	e, ok := c.entries[w]
	if ok {
		c.order.MoveToFront(e.elem)
		c.hits++
	} else {
		e = &feedEntry{key: w}
		e.elem = c.order.PushFront(e)
		c.entries[w] = e
		c.misses++
		for c.order.Len() > c.max {
			back := c.order.Back()
			evicted := back.Value.(*feedEntry)
			c.order.Remove(back)
			delete(c.entries, evicted.key)
		}
	}
	c.mu.Unlock()
	// Record outside the cache lock: other columns proceed while this
	// train is generated; co-column callers block on the entry's once.
	e.once.Do(func() { e.feed = RecordFeed(w) })
	return e.feed
}

// Counters reports cache hits and misses (a miss records a feed).
func (c *FeedCache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
