package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/capture"
)

// TestFeedReplayMatchesFresh is the splitter invariant: replaying a
// recorded feed must produce byte-identical Stats to running a fresh
// generator, for every one of the four systems.
func TestFeedReplayMatchesFresh(t *testing.T) {
	w := Workload{Packets: 4000, Seed: 3, TargetRate: 700e6}
	feed := RecordFeed(w)
	if feed.Sent != uint64(w.Packets) {
		t.Fatalf("feed recorded %d packets, want %d", feed.Sent, w.Packets)
	}
	if feed.SentBytes == 0 || feed.WireBytes <= feed.SentBytes || feed.LastTime == 0 {
		t.Fatalf("ground-truth counters not recorded: %+v", feed)
	}
	for _, cfg := range Sniffers() {
		fresh := RunOnce(cfg, w)
		sys := capture.NewSystem(Prepare(cfg, w))
		replayed := sys.RunSource(feed.Replay())
		if !reflect.DeepEqual(fresh, replayed) {
			t.Errorf("%s: replayed stats differ from fresh run\nfresh:    %+v\nreplayed: %+v",
				cfg.Name, fresh, replayed)
		}
	}
}

// TestFeedReplayIndependentCursors: one feed drives many systems; each
// Replay starts from the beginning.
func TestFeedReplayIndependentCursors(t *testing.T) {
	feed := RecordFeed(Workload{Packets: 50, Seed: 1})
	a, b := feed.Replay(), feed.Replay()
	pa, _ := a.Next()
	for i := 0; i < 10; i++ {
		b.Next()
	}
	a.Reset()
	pa2, _ := a.Next()
	if pa.At != pa2.At || pa.Seq != pa2.Seq {
		t.Fatal("Reset did not rewind the cursor")
	}
}

func TestFeedCacheSharing(t *testing.T) {
	c := NewFeedCache(4)
	w := Workload{Packets: 100, Seed: 2, TargetRate: 5e8}
	f1 := c.Get(w)
	f2 := c.Get(w)
	if f1 != f2 {
		t.Fatal("same workload recorded twice")
	}
	if hits, misses := c.Counters(); hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

func TestFeedCacheEviction(t *testing.T) {
	c := NewFeedCache(2)
	w1 := Workload{Packets: 50, Seed: 1}
	w2 := Workload{Packets: 50, Seed: 2}
	w3 := Workload{Packets: 50, Seed: 3}
	f1 := c.Get(w1)
	c.Get(w2)
	c.Get(w3) // evicts w1 (least recently used)
	if got := c.Get(w1); got == f1 {
		t.Fatal("evicted feed still cached")
	}
	if _, misses := c.Counters(); misses != 4 {
		t.Fatalf("misses = %d, want 4 (w1 re-recorded after eviction)", misses)
	}
}

// TestFeedCacheConcurrent: concurrent Gets for one workload share a single
// recording (run with -race).
func TestFeedCacheConcurrent(t *testing.T) {
	c := NewFeedCache(8)
	w := Workload{Packets: 500, Seed: 7, TargetRate: 8e8}
	feeds := make([]*Feed, 16)
	var wg sync.WaitGroup
	for i := range feeds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			feeds[i] = c.Get(w)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(feeds); i++ {
		if feeds[i] != feeds[0] {
			t.Fatal("concurrent Gets returned different feeds")
		}
	}
	if _, misses := c.Counters(); misses != 1 {
		t.Fatalf("misses = %d, want 1 (single shared recording)", misses)
	}
}
