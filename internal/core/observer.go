// Observer hook: the measurement engines' live event feed. Every engine
// entry point accepts an optional Observer; when one is attached, the
// engine publishes typed events as the campaign unfolds — per-cell
// completions (with the cell's full statistics), deterministic per-point
// aggregates, and the resilient path's retry/quarantine decisions. The
// monitoring service (internal/monitor) fans these events out to HTTP
// subscribers; the `experiment -json` writer streams its NDJSON records
// from the same feed.
//
// The contract is strictly one-way and non-blocking: an Observer must
// never block (the monitor hub drops to bounded per-subscriber rings) and
// must not retain the Stats/Point/Outcome pointers beyond the call unless
// it copies them — the engines hand out private copies, so retaining is
// in fact safe, but mutating is not. Observation never changes a result:
// a sweep with an observer attached is byte-identical to one without.
package core

import (
	"sync"

	"repro/internal/capture"
)

// EventKind classifies an engine event.
type EventKind int

const (
	// EventCampaignStart / EventCampaignFinish bracket one driver
	// invocation (emitted by the CLI layer, not the engines).
	EventCampaignStart EventKind = iota
	EventCampaignFinish
	// EventExperimentStart / EventExperimentFinish bracket one experiment
	// within a campaign (emitted by the CLI layer).
	EventExperimentStart
	EventExperimentFinish
	// EventCell: one measurement cell reached its final, accepted outcome
	// (Stats set; Outcome set on the resilient path; Replayed when the
	// cell was served from the campaign journal instead of running).
	EventCell
	// EventPoint: one plotted point — a (system, x) aggregate over its
	// repetitions — is complete (Agg set). Points are emitted in the
	// canonical plotting layout order regardless of worker count, so a
	// consumer sees a deterministic record stream for any parallelism.
	EventPoint
	// EventRetry: a cell attempt failed validation (or the sniffer hung or
	// crashed) and will be retried; Detail carries the reason.
	EventRetry
	// EventQuarantine: a cell exhausted its retry budget without a valid
	// run — its final outcome (Outcome set, Quarantined) is as recorded.
	EventQuarantine
	// EventSnifferDead: the fault model declared a sniffer dead for an
	// attempt (resilient engine), or the testbed supervisor struck a
	// persistently silent sniffer from the expected set.
	EventSnifferDead
	// EventCheckpoint: the campaign journal durably recorded a cell.
	EventCheckpoint
	// EventLease: the dispatch coordinator granted a lease of cells to a
	// worker (Worker set; Detail carries the lease id and cell count).
	EventLease
	// EventLeaseExpired: a lease's deadline passed without completion —
	// missed heartbeats or a dead worker — and its unfinished cells went
	// back to the dispatch queue (Worker set).
	EventLeaseExpired
	// EventChaos: the fault-injection harness (netchaos / faultfs) injected
	// a fault. Fault names the fault class, Worker the affected peer where
	// known, Detail the operation. Chaos events are observability only —
	// they never change a campaign's results.
	EventChaos
)

// String returns the wire name of the kind (used by the SSE stream and
// the metrics labels).
func (k EventKind) String() string {
	switch k {
	case EventCampaignStart:
		return "campaign-start"
	case EventCampaignFinish:
		return "campaign-finish"
	case EventExperimentStart:
		return "experiment-start"
	case EventExperimentFinish:
		return "experiment-finish"
	case EventCell:
		return "cell"
	case EventPoint:
		return "point"
	case EventRetry:
		return "retry"
	case EventQuarantine:
		return "quarantine"
	case EventSnifferDead:
		return "sniffer-dead"
	case EventCheckpoint:
		return "checkpoint"
	case EventLease:
		return "lease"
	case EventLeaseExpired:
		return "lease-expired"
	case EventChaos:
		return "chaos"
	default:
		return "unknown"
	}
}

// Event is one engine event. Only the fields meaningful for the Kind are
// set; the rest stay zero.
type Event struct {
	// Seq is the publication sequence number, assigned by the bus (zero
	// until published).
	Seq uint64
	// Kind classifies the event.
	Kind EventKind
	// Campaign identifies the driver invocation. The engines leave it
	// empty; the CLI layer and the monitor registry attribute engine
	// events to the running campaign.
	Campaign string
	// Experiment is the experiment id the event belongs to.
	Experiment string
	// System is the sniffer configuration name (cell-level events).
	System string
	// Worker is the dispatch worker the event is attributed to: the
	// lease holder on lease-level events, the worker that measured the
	// cell on dispatched EventCells. Empty for local runs.
	Worker string
	// Point is the durable point fingerprint (CellKey.Point).
	Point uint64
	// X is the plotted x value where the engine knows it (the data rate in
	// Mbit/s for rate sweeps; buffer size in kB for buffer sweeps); zero
	// when unknown.
	X float64
	// Rep is the repetition index (cell-level events).
	Rep int
	// Attempt is the attempt index of a retry event.
	Attempt int
	// Replayed marks a cell served from the campaign journal.
	Replayed bool
	// Detail is the human-readable reason/summary (retry cause, checkpoint
	// note, campaign fingerprint on campaign-start).
	Detail string
	// Fault is the injected fault class of an EventChaos ("latency",
	// "partition", "write-enospc", …). Empty on every other kind.
	Fault string
	// Stats is the cell's final statistics (EventCell, EventQuarantine).
	// A private copy — safe to retain, not to mutate.
	Stats *capture.Stats
	// Agg is the completed point aggregate (EventPoint). A private copy.
	Agg *Point
	// Outcome is the resilient engine's supervised outcome of the cell
	// (EventCell/EventQuarantine under a fault plan). A private copy.
	Outcome *CellOutcome
}

// Observer receives engine events. Implementations must be safe for
// concurrent use (workers publish cell events in parallel) and must not
// block.
type Observer interface {
	Observe(ev Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe calls f(ev).
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// MultiObserver fans one event out to several observers in order, nils
// skipped. It returns nil when every observer is nil, so the engines'
// "no observer attached" fast path stays intact.
func MultiObserver(obs ...Observer) Observer {
	live := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return ObserverFunc(func(ev Event) {
		for _, o := range live {
			o.Observe(ev)
		}
	})
}

// observe is the nil-safe emission helper.
func observe(obs Observer, ev Event) {
	if obs != nil {
		obs.Observe(ev)
	}
}

// pointSequencer turns unordered per-cell completions into deterministic
// per-point emissions: a point is emitted when all of its cells are done
// AND every earlier point (in canonical layout order) has been emitted —
// head-of-line sequencing. Workers finishing out of order only ever delay
// emission, never reorder it, so the EventPoint stream is byte-identical
// for any worker count. emit runs under the sequencer lock: emissions are
// serialized and strictly ordered.
type pointSequencer struct {
	mu        sync.Mutex
	remaining []int
	ready     []bool
	next      int
	emit      func(p int)
}

// newPointSequencer sets up npoints points of cellsPerPoint cells each.
func newPointSequencer(npoints, cellsPerPoint int, emit func(p int)) *pointSequencer {
	s := &pointSequencer{
		remaining: make([]int, npoints),
		ready:     make([]bool, npoints),
		emit:      emit,
	}
	for i := range s.remaining {
		s.remaining[i] = cellsPerPoint
	}
	return s
}

// done marks one cell of point p complete. Safe for concurrent use.
func (s *pointSequencer) done(p int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.remaining[p]--
	if s.remaining[p] > 0 {
		return
	}
	s.ready[p] = true
	for s.next < len(s.ready) && s.ready[s.next] {
		s.emit(s.next)
		s.next++
	}
}
