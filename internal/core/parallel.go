// Parallel measurement engine. The testbed is embarrassingly parallel by
// construction: the splitter feeds the same train to all sniffers at once,
// and every (system, rate, repetition) point is an independent run with its
// own simulator. The engine decomposes a sweep into such cells, records
// each train once (feed.go), runs the cells on a worker pool, and
// reassembles the series in the fixed plotting order — so the output is
// byte-identical to the serial path for any worker count.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/capture"
)

// repSeedStride separates the seeds of successive repetitions of one point
// (the thesis repeats each point with distinct packet trains).
const repSeedStride = 7919

// Cell is one independent measurement: one system fed one workload.
type Cell struct {
	Cfg capture.Config
	W   Workload
	// Wrap, when non-nil, wraps the replayed feed before the run — the
	// hook the fault-injection supervisor uses for degraded splitter legs
	// and truncated generator trains (and tests use for failure hooks).
	// The recorded feed itself stays shared and pristine.
	Wrap func(capture.Source) capture.Source
}

// Workers resolves a parallelism knob to a worker count: 0 keeps the
// serial path, negative values use one worker per CPU, positive values are
// taken as-is.
func Workers(parallelism int) int {
	if parallelism < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// CellPanicError reports a measurement cell whose run panicked. The
// worker recovers it so one broken configuration cannot kill the whole
// sweep process or leave sibling workers blocked; the resilient supervisor
// treats it as a failed attempt and retries the cell.
type CellPanicError struct {
	Index  int
	System string
	Value  any
	Stack  []byte
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("core: cell %d (%s) panicked: %v", e.Index, e.System, e.Value)
}

// RunCells executes independent measurement cells and returns their
// statistics in cell order. workers follows the Workers convention
// (0 = serial). Cells with an identical Workload share one recorded feed
// regardless of worker count, so a four-sniffer column generates its train
// exactly once — the splitter semantics of Figure 3.1.
//
// A panic inside a cell is recovered in the worker and re-raised here, in
// the caller's goroutine, only after every other cell has completed — the
// pool always drains, no sibling goroutine is left blocked on the job
// channel. Callers that want to survive a failed cell use RunCellsErr.
func RunCells(cells []Cell, workers int) []capture.Stats {
	results, errs := RunCellsErr(cells, workers)
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
	return results
}

// RunCellsErr is RunCells with per-cell failure capture: a panicking cell
// yields a zero Stats and a *CellPanicError in the same slot instead of
// crashing the process. Each cell owns a private sim.Sim (built by
// capture.NewSystem); the only state crossing goroutines is the immutable
// feed and the result/error slots.
func RunCellsErr(cells []Cell, workers int) ([]capture.Stats, []error) {
	return runCellsWith(cells, workers, NewFeedCache(DefaultFeedCacheSize), nil)
}

// runCellsWith is the pool body shared by RunCellsErr and the resilient
// engine: an external feed cache lets retry waves reuse recorded trains,
// and post — when non-nil — runs in the worker right after each cell,
// inside the panic-recovery scope and while the cell's feed is still hot
// in the cache (the resilient engine validates and books fault losses
// there). A non-nil error from post lands in the cell's error slot.
func runCellsWith(cells []Cell, workers int, feeds *FeedCache, post func(i int, st *capture.Stats) error) ([]capture.Stats, []error) {
	results := make([]capture.Stats, len(cells))
	errs := make([]error, len(cells))
	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &CellPanicError{
					Index:  i,
					System: cells[i].Cfg.Name,
					Value:  r,
					Stack:  stackTrace(),
				}
			}
		}()
		c := cells[i]
		src := feeds.Get(c.W).Replay()
		if c.Wrap != nil {
			src = c.Wrap(src)
		}
		sys := capture.NewSystem(Prepare(c.Cfg, c.W))
		results[i] = sys.RunSource(src)
		if post != nil {
			errs[i] = post(i, &results[i])
		}
	}

	workers = Workers(workers)
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		// Serial fallback (and the degenerate one-worker pool): same code
		// path as the pool body, no goroutines.
		for i := range cells {
			runCell(i)
		}
		return results, errs
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runCell(i)
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, errs
}

// stackTrace captures the recovering goroutine's stack for the panic
// error.
func stackTrace() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// SweepRatesParallel is SweepRates with the measurement cells distributed
// over a worker pool (workers per the Workers convention; 0 = serial).
// Results are reassembled in the fixed plotting order, so FormatTable
// output is byte-identical regardless of worker count or completion order.
func SweepRatesParallel(cfgs []capture.Config, ratesMbit []float64, w Workload, reps, workers int) []Series {
	if reps <= 0 {
		reps = 1
	}
	// Column-major cell order: the systems of one (rate, rep) column are
	// adjacent, so they replay the column's feed while it is hot in the
	// LRU and workers draining nearby indices share one recording.
	cells := make([]Cell, 0, len(ratesMbit)*reps*len(cfgs))
	for _, r := range ratesMbit {
		for rep := 0; rep < reps; rep++ {
			wl := w
			wl.TargetRate = r * 1e6
			wl.Seed = w.Seed + uint64(rep)*repSeedStride
			for _, cfg := range cfgs {
				cells = append(cells, Cell{Cfg: cfg, W: wl})
			}
		}
	}
	stats := RunCells(cells, workers)

	out := make([]Series, len(cfgs))
	runs := make([]capture.Stats, reps)
	for i, cfg := range cfgs {
		out[i].System = cfg.Name
		out[i].Points = make([]Point, 0, len(ratesMbit))
		for ri, r := range ratesMbit {
			// Aggregate in repetition order: floating-point sums stay
			// identical no matter which worker finished first.
			for rep := 0; rep < reps; rep++ {
				runs[rep] = stats[(ri*reps+rep)*len(cfgs)+i]
			}
			pt := aggregatePoint(cfg.Name, runs)
			pt.X = r
			out[i].Points = append(out[i].Points, pt)
		}
	}
	return out
}
