// Parallel measurement engine. The testbed is embarrassingly parallel by
// construction: the splitter feeds the same train to all sniffers at once,
// and every (system, rate, repetition) point is an independent run with its
// own simulator. The engine decomposes a sweep into such cells, records
// each train once (feed.go), runs the cells on a worker pool, and
// reassembles the series in the fixed plotting order — so the output is
// byte-identical to the serial path for any worker count.
//
// Every entry point takes a context: on cancellation the pool drains
// cleanly — in-flight cells finish, queued cells are marked with the
// context's error, and no worker goroutine is abandoned. Combined with a
// CellJournal (the durable write-ahead log of completed cells), an
// interrupted sweep resumes exactly where it left off.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/capture"
)

// repSeedStride separates the seeds of successive repetitions of one point
// (the thesis repeats each point with distinct packet trains).
const repSeedStride = 7919

// Cell is one independent measurement: one system fed one workload.
type Cell struct {
	Cfg capture.Config
	W   Workload
	// Wrap, when non-nil, wraps the replayed feed before the run — the
	// hook the fault-injection supervisor uses for degraded splitter legs
	// and truncated generator trains (and tests use for failure hooks).
	// The recorded feed itself stays shared and pristine.
	Wrap func(capture.Source) capture.Source
}

// CellKey identifies one measurement cell durably, across process
// restarts: the experiment it belongs to, the point fingerprint and
// repetition (CellID), and the system under test. It is the journal key
// of the campaign write-ahead log.
type CellKey struct {
	Experiment string `json:"experiment"`
	Point      uint64 `json:"point"`
	System     string `json:"system"`
	Rep        int    `json:"rep"`
}

// cellKey builds the durable key of cell c under experiment.
func cellKey(experiment string, c Cell, id CellID) CellKey {
	return CellKey{Experiment: experiment, Point: id.Point, System: c.Cfg.Name, Rep: id.Rep}
}

// CellJournal is the durable campaign log the engines record completed
// cells into (and replay them from). Implementations must be safe for
// concurrent Record calls: workers append as cells finish. The contract
// is write-ahead: Record must make the outcome durable before returning,
// and Lookup must only return outcomes Record accepted. Duplicate keys
// are last-write-wins.
type CellJournal interface {
	// Lookup returns the recorded final outcome of a completed cell.
	Lookup(k CellKey) (CellOutcome, bool)
	// Record durably appends the final outcome of a completed cell.
	Record(k CellKey, out CellOutcome) error
}

// CellExecutor runs measurement cells somewhere other than the local
// worker pool — the dispatch coordinator implements it by leasing cells
// to remote workers. The contract mirrors the local pool exactly:
// ExecuteCells must call done at most once per cell index (from any
// goroutine; slots are disjoint), passing the measured statistics and a
// worker label for event attribution, and must return one error slot per
// cell — nil for cells whose done call succeeded, the done error
// otherwise, and ctx.Err() for cells abandoned on cancellation. Replayed
// cells never reach an executor: the durable engine filters against the
// campaign journal first, so a resumed campaign re-dispatches only
// unfinished work.
type CellExecutor interface {
	ExecuteCells(ctx context.Context, experiment string, cells []Cell, ids []CellID,
		done func(i int, st *capture.Stats, worker string) error) []error
}

// Workers resolves a parallelism knob to a worker count: 0 keeps the
// serial path, negative values use one worker per CPU, positive values are
// taken as-is.
func Workers(parallelism int) int {
	if parallelism < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// CellPanicError reports a measurement cell whose run panicked. The
// worker recovers it so one broken configuration cannot kill the whole
// sweep process or leave sibling workers blocked; the resilient supervisor
// treats it as a failed attempt and retries the cell.
type CellPanicError struct {
	Index  int
	System string
	Value  any
	Stack  []byte
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("core: cell %d (%s) panicked: %v", e.Index, e.System, e.Value)
}

// IsCancel reports whether err is a context cancellation — an expected
// interruption, not a cell failure.
func IsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunCells executes independent measurement cells and returns their
// statistics in cell order. workers follows the Workers convention
// (0 = serial). Cells with an identical Workload share one recorded feed
// regardless of worker count, so a four-sniffer column generates its train
// exactly once — the splitter semantics of Figure 3.1.
//
// A panic inside a cell is recovered in the worker and re-raised here, in
// the caller's goroutine, only after every other cell has completed — the
// pool always drains, no sibling goroutine is left blocked on the job
// channel. Cells skipped because ctx was cancelled return zero Stats; the
// caller detects the interruption via ctx.Err(). Callers that want to
// survive a failed cell use RunCellsErr.
func RunCells(ctx context.Context, cells []Cell, workers int) []capture.Stats {
	results, errs := RunCellsErr(ctx, cells, workers)
	for _, err := range errs {
		if err != nil && !IsCancel(err) {
			panic(err)
		}
	}
	return results
}

// RunCellsErr is RunCells with per-cell failure capture: a panicking cell
// yields a zero Stats and a *CellPanicError in the same slot instead of
// crashing the process, and a cell skipped by context cancellation
// carries the context's error. Each cell owns a private sim.Sim (built by
// capture.NewSystem); the only state crossing goroutines is the immutable
// feed and the result/error slots.
func RunCellsErr(ctx context.Context, cells []Cell, workers int) ([]capture.Stats, []error) {
	return runCellsWith(ctx, cells, workers, NewFeedCache(DefaultFeedCacheSize), nil)
}

// RunCellsDurable is RunCellsErr backed by the campaign journal: cells
// whose final outcome is already recorded under (experiment, ids[i]) are
// replayed from the journal without running, and every freshly completed
// cell is recorded — durably, before its result is used — so an
// interrupted campaign loses at most the cells that were still in flight.
// ids must parallel cells. A nil journal degrades to RunCellsErr. A
// failed journal append surfaces as the cell's error: durability failures
// must not masquerade as measurements.
func RunCellsDurable(ctx context.Context, cells []Cell, ids []CellID, workers int, experiment string, j CellJournal) ([]capture.Stats, []error) {
	return RunCellsObserved(ctx, cells, ids, workers, experiment, j, nil)
}

// RunCellsObserved is RunCellsDurable with a live event feed: every cell
// that reaches its final outcome is published to obs as an EventCell —
// replayed cells up front (in cell order, Replayed set), freshly measured
// cells from the workers as they finish. A nil observer (and a nil
// journal) degrades to the plain paths unchanged.
func RunCellsObserved(ctx context.Context, cells []Cell, ids []CellID, workers int, experiment string, j CellJournal, obs Observer) ([]capture.Stats, []error) {
	return RunCellsDispatched(ctx, cells, ids, workers, experiment, j, obs, nil)
}

// RunCellsDispatched is RunCellsObserved with an optional CellExecutor:
// when exec is non-nil, cells not replayed from the journal are handed to
// the executor instead of the local pool, and the executor's done
// callback drives the same journal Record and observer emission the local
// pool would. Results are aggregated by the caller in the same fixed
// order either way, so a dispatched run is byte-identical to a local one.
// A nil executor (and nil journal/observer) keeps the plain paths
// untouched.
func RunCellsDispatched(ctx context.Context, cells []Cell, ids []CellID, workers int, experiment string, j CellJournal, obs Observer, exec CellExecutor) ([]capture.Stats, []error) {
	if exec == nil && j == nil && obs == nil {
		return RunCellsErr(ctx, cells, workers)
	}
	if len(ids) != len(cells) {
		panic(fmt.Sprintf("core: %d ids for %d cells", len(ids), len(cells)))
	}
	emit := func(i int, st capture.Stats, replayed bool, worker string) {
		observe(obs, Event{
			Kind:       EventCell,
			Experiment: experiment,
			System:     cells[i].Cfg.Name,
			Worker:     worker,
			Point:      ids[i].Point,
			X:          cells[i].W.TargetRate / 1e6,
			Rep:        ids[i].Rep,
			Replayed:   replayed,
			Stats:      &st,
		})
	}
	results := make([]capture.Stats, len(cells))
	errs := make([]error, len(cells))
	var torun []Cell
	var idx []int
	for i := range cells {
		if j != nil {
			if out, ok := j.Lookup(cellKey(experiment, cells[i], ids[i])); ok && out.OK {
				results[i] = out.Stats
				emit(i, out.Stats, true, "")
				continue
			}
		}
		torun = append(torun, cells[i])
		idx = append(idx, i)
	}
	record := func(i int, st *capture.Stats, worker string) error {
		if j != nil {
			if err := j.Record(cellKey(experiment, cells[i], ids[i]),
				CellOutcome{Stats: *st, OK: true, Attempts: 1}); err != nil {
				return err
			}
		}
		emit(i, *st, false, worker)
		return nil
	}
	if exec != nil {
		subIDs := make([]CellID, len(idx))
		for bi, i := range idx {
			subIDs[bi] = ids[i]
		}
		subErrs := exec.ExecuteCells(ctx, experiment, torun, subIDs,
			func(bi int, st *capture.Stats, worker string) error {
				i := idx[bi]
				results[i] = *st
				return record(i, st, worker)
			})
		for bi, i := range idx {
			if bi < len(subErrs) {
				errs[i] = subErrs[bi]
			}
		}
		return results, errs
	}
	sub, subErrs := runCellsWith(ctx, torun, workers, NewFeedCache(DefaultFeedCacheSize),
		func(bi int, st *capture.Stats) error {
			return record(idx[bi], st, "")
		})
	for bi, i := range idx {
		results[i], errs[i] = sub[bi], subErrs[bi]
	}
	return results, errs
}

// RunCellsWithCache is RunCellsErr with a caller-owned feed cache, so a
// dispatch worker measuring successive leases of one experiment reuses
// its recorded trains across calls instead of regenerating them per
// lease. A nil cache allocates a private default-sized one.
func RunCellsWithCache(ctx context.Context, cells []Cell, workers int, feeds *FeedCache) ([]capture.Stats, []error) {
	if feeds == nil {
		feeds = NewFeedCache(DefaultFeedCacheSize)
	}
	return runCellsWith(ctx, cells, workers, feeds, nil)
}

// runCellsWith is the pool body shared by RunCellsErr and the resilient
// engine: an external feed cache lets retry waves reuse recorded trains,
// and post — when non-nil — runs in the worker right after each cell,
// inside the panic-recovery scope and while the cell's feed is still hot
// in the cache (the resilient engine validates and books fault losses
// there; the durable engine records the cell in the journal). A non-nil
// error from post lands in the cell's error slot.
//
// Cancellation drains the pool instead of abandoning it: the dispatcher
// stops handing out cells, every worker finishes its in-flight cell and
// exits, and cells never dispatched carry ctx.Err() in their error slot.
func runCellsWith(ctx context.Context, cells []Cell, workers int, feeds *FeedCache, post func(i int, st *capture.Stats) error) ([]capture.Stats, []error) {
	results := make([]capture.Stats, len(cells))
	errs := make([]error, len(cells))
	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &CellPanicError{
					Index:  i,
					System: cells[i].Cfg.Name,
					Value:  r,
					Stack:  stackTrace(),
				}
			}
		}()
		c := cells[i]
		src := feeds.Get(c.W).Replay()
		if c.Wrap != nil {
			src = c.Wrap(src)
		}
		sys := capture.NewSystem(Prepare(c.Cfg, c.W))
		results[i] = sys.RunSource(src)
		if post != nil {
			errs[i] = post(i, &results[i])
		}
	}

	workers = Workers(workers)
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		// Serial fallback (and the degenerate one-worker pool): same code
		// path as the pool body, no goroutines.
		for i := range cells {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			runCell(i)
		}
		return results, errs
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runCell(i)
			}
		}()
	}
	i := 0
dispatch:
	for ; i < len(cells); i++ {
		if ctx.Err() != nil {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	// Cells never dispatched carry the cancellation; their slots are
	// disjoint from anything a worker still writes.
	for ; i < len(cells); i++ {
		errs[i] = ctx.Err()
	}
	wg.Wait()
	return results, errs
}

// stackTrace captures the recovering goroutine's stack for the panic
// error.
func stackTrace() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// sweepCells lays out the standard §3.4 rate sweep as measurement cells in
// column-major order — the systems of one (rate, rep) column are adjacent,
// so they replay the column's feed while it is hot in the LRU and workers
// draining nearby indices share one recording — with the matching CellIDs.
func sweepCells(cfgs []capture.Config, ratesMbit []float64, w Workload, reps int) ([]Cell, []CellID) {
	cells := make([]Cell, 0, len(ratesMbit)*reps*len(cfgs))
	ids := make([]CellID, 0, len(ratesMbit)*reps*len(cfgs))
	for _, r := range ratesMbit {
		for rep := 0; rep < reps; rep++ {
			wl := w
			wl.TargetRate = r * 1e6
			wl.Seed = w.Seed + uint64(rep)*repSeedStride
			for _, cfg := range cfgs {
				cells = append(cells, Cell{Cfg: cfg, W: wl})
				ids = append(ids, CellID{Point: pointKey(r), Rep: rep})
			}
		}
	}
	return cells, ids
}

// SweepRatesParallel is SweepRates with the measurement cells distributed
// over a worker pool (workers per the Workers convention; 0 = serial).
// Results are reassembled in the fixed plotting order, so FormatTable
// output is byte-identical regardless of worker count or completion order.
// On cancellation the returned series are incomplete and must be
// discarded — callers check ctx.Err().
func SweepRatesParallel(ctx context.Context, cfgs []capture.Config, ratesMbit []float64, w Workload, reps, workers int) []Series {
	return SweepRatesDurable(ctx, cfgs, ratesMbit, w, reps, workers, "", nil)
}

// SweepRatesDurable is SweepRatesParallel under the campaign journal:
// cells already recorded under experiment are replayed instead of re-run,
// fresh cells are recorded as they complete, and the aggregated output is
// byte-identical to an uninterrupted, unjournaled sweep — recorded Stats
// round-trip exactly. A nil journal runs a plain sweep.
func SweepRatesDurable(ctx context.Context, cfgs []capture.Config, ratesMbit []float64, w Workload, reps, workers int, experiment string, j CellJournal) []Series {
	return SweepRatesObserved(ctx, cfgs, ratesMbit, w, reps, workers, experiment, j, nil)
}

// sweepPointObserver wraps obs for the standard sweep layout: cell events
// are forwarded as-is, and when a (system, rate) point's repetitions are
// all in, the aggregated Point is published as an EventPoint — in the
// canonical x-major layout order (every system of rate[0], then rate[1],
// …) regardless of worker scheduling, via head-of-line sequencing.
func sweepPointObserver(obs Observer, experiment string, cfgs []capture.Config, ratesMbit []float64, reps int, cells []Cell, ids []CellID) Observer {
	ncfg := len(cfgs)
	idxOf := make(map[CellKey]int, len(cells))
	for i := range cells {
		idxOf[cellKey(experiment, cells[i], ids[i])] = i
	}
	colStats := make([]capture.Stats, len(cells))
	seq := newPointSequencer(len(ratesMbit)*ncfg, reps, func(p int) {
		ri, ci := p/ncfg, p%ncfg
		runs := make([]capture.Stats, reps)
		for rep := 0; rep < reps; rep++ {
			runs[rep] = colStats[(ri*reps+rep)*ncfg+ci]
		}
		pt := aggregatePoint(cfgs[ci].Name, runs)
		pt.X = ratesMbit[ri]
		obs.Observe(Event{
			Kind: EventPoint, Experiment: experiment, System: cfgs[ci].Name,
			Point: pointKey(ratesMbit[ri]), X: ratesMbit[ri], Agg: &pt,
		})
	})
	return ObserverFunc(func(ev Event) {
		obs.Observe(ev)
		if ev.Kind != EventCell && ev.Kind != EventQuarantine {
			return
		}
		i, ok := idxOf[CellKey{Experiment: ev.Experiment, Point: ev.Point, System: ev.System, Rep: ev.Rep}]
		if !ok {
			return
		}
		if ev.Stats != nil {
			colStats[i] = *ev.Stats
		}
		seq.done((i/(reps*ncfg))*ncfg + i%ncfg)
	})
}

// SweepRatesObserved is SweepRatesDurable with the live event feed: cell
// completions stream to obs as they happen, and completed points are
// published deterministically in plotting layout order (see
// sweepPointObserver). A nil observer keeps the plain durable path.
func SweepRatesObserved(ctx context.Context, cfgs []capture.Config, ratesMbit []float64, w Workload, reps, workers int, experiment string, j CellJournal, obs Observer) []Series {
	return SweepRatesDispatched(ctx, cfgs, ratesMbit, w, reps, workers, experiment, j, obs, nil)
}

// SweepRatesDispatched is SweepRatesObserved with an optional
// CellExecutor (see RunCellsDispatched): non-replayed cells run wherever
// the executor puts them, while journaling, point sequencing, and the
// fixed-order aggregation stay on the caller's side — so the rendered
// table is byte-identical whether the cells ran in-process or were
// leased to remote workers.
func SweepRatesDispatched(ctx context.Context, cfgs []capture.Config, ratesMbit []float64, w Workload, reps, workers int, experiment string, j CellJournal, obs Observer, exec CellExecutor) []Series {
	if reps <= 0 {
		reps = 1
	}
	cells, ids := sweepCells(cfgs, ratesMbit, w, reps)
	cellObs := obs
	if obs != nil {
		cellObs = sweepPointObserver(obs, experiment, cfgs, ratesMbit, reps, cells, ids)
	}
	stats, errs := RunCellsDispatched(ctx, cells, ids, workers, experiment, j, cellObs, exec)
	for _, err := range errs {
		if err != nil && !IsCancel(err) {
			panic(err)
		}
	}

	out := make([]Series, len(cfgs))
	runs := make([]capture.Stats, reps)
	for i, cfg := range cfgs {
		out[i].System = cfg.Name
		out[i].Points = make([]Point, 0, len(ratesMbit))
		for ri, r := range ratesMbit {
			// Aggregate in repetition order: floating-point sums stay
			// identical no matter which worker finished first.
			for rep := 0; rep < reps; rep++ {
				runs[rep] = stats[(ri*reps+rep)*len(cfgs)+i]
			}
			pt := aggregatePoint(cfg.Name, runs)
			pt.X = r
			out[i].Points = append(out[i].Points, pt)
		}
	}
	return out
}
