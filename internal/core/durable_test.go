package core

import (
	"context"
	"encoding/json"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/faults"
	"repro/internal/pktgen"
)

// memJournal is an in-memory CellJournal that deliberately round-trips
// every outcome through JSON, exactly like the on-disk campaign journal —
// so these tests also prove CellOutcome survives the encoding bit for bit.
type memJournal struct {
	mu   sync.Mutex
	m    map[CellKey][]byte
	fail error
}

func newMemJournal() *memJournal { return &memJournal{m: map[CellKey][]byte{}} }

func (j *memJournal) Lookup(k CellKey) (CellOutcome, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, ok := j.m[k]
	if !ok {
		return CellOutcome{}, false
	}
	var out CellOutcome
	if err := json.Unmarshal(raw, &out); err != nil {
		panic(err)
	}
	return out, true
}

func (j *memJournal) Record(k CellKey, out CellOutcome) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fail != nil {
		return j.fail
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return err
	}
	j.m[k] = raw
	return nil
}

// subset returns a journal holding roughly half the records — the shape a
// crash mid-campaign leaves behind.
func (j *memJournal) subset() *memJournal {
	j.mu.Lock()
	defer j.mu.Unlock()
	part := newMemJournal()
	i := 0
	for k, v := range j.m {
		if i%2 == 0 {
			part.m[k] = v
		}
		i++
	}
	return part
}

// TestRunCellsDurableReplay: once every cell is recorded, a re-run with
// the same journal replays everything — no cell executes — and the
// replayed results are identical to the originals (JSON round trip
// included, via memJournal).
func TestRunCellsDurableReplay(t *testing.T) {
	w := Workload{Packets: 1500, Seed: 6}
	cells, ids := sweepCells(Sniffers(), []float64{300, 700}, w, 2)
	j := newMemJournal()
	ctx := context.Background()
	first, errs := RunCellsDurable(ctx, cells, ids, 3, "rates", j)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	if len(j.m) != len(cells) {
		t.Fatalf("journal holds %d records for %d cells", len(j.m), len(cells))
	}

	// Tripwire: any cell that actually runs fails the test.
	for i := range cells {
		cells[i].Wrap = func(src capture.Source) capture.Source {
			t.Error("cell executed despite a recorded outcome")
			return src
		}
	}
	second, errs2 := RunCellsDurable(ctx, cells, ids, 3, "rates", j)
	for i, err := range errs2 {
		if err != nil {
			t.Fatalf("replayed cell %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("replayed stats differ from the recorded run")
	}

	// A different experiment id is a different campaign namespace: nothing
	// replays (the tripwire must fire, so give the cells real wraps again).
	for i := range cells {
		cells[i].Wrap = nil
	}
	third, _ := RunCellsDurable(ctx, cells, ids, 3, "buffers", j)
	if !reflect.DeepEqual(first, third) {
		t.Fatal("same cells under another experiment id computed different stats")
	}
	if len(j.m) != 2*len(cells) {
		t.Fatalf("experiment namespaces collided: %d records", len(j.m))
	}
}

// TestSweepDurableResumeByteIdentical: a sweep resumed from a half-full
// journal produces series — and a formatted table — byte-identical to an
// uninterrupted, unjournaled sweep.
func TestSweepDurableResumeByteIdentical(t *testing.T) {
	cfgs := Sniffers()
	w := Workload{Packets: 1500, Seed: 6}
	rates := []float64{250, 750}
	ctx := context.Background()
	clean := SweepRatesParallel(ctx, cfgs, rates, w, 2, 2)

	full := newMemJournal()
	SweepRatesDurable(ctx, cfgs, rates, w, 2, 2, "rates", full)
	resumed := SweepRatesDurable(ctx, cfgs, rates, w, 2, 3, "rates", full.subset())
	if !reflect.DeepEqual(clean, resumed) {
		t.Fatal("resumed sweep differs from uninterrupted sweep")
	}
	if FormatTable("t", clean) != FormatTable("t", resumed) {
		t.Fatal("resumed table not byte-identical")
	}
}

// TestChaosDurableResumeIdentical: the same property under the fault
// plan — replayed final outcomes plus freshly measured cells reproduce the
// uninterrupted chaos sweep exactly, because fault draws are keyed by
// (seed, point, system, rep, attempt), not execution order.
func TestChaosDurableResumeIdentical(t *testing.T) {
	cfgs := Sniffers()
	w := Workload{Packets: 1500, Seed: 3}
	rates := []float64{300, 900}
	ctx := context.Background()
	co := ChaosOptions{Plan: faults.DefaultPlan(42)}
	uninterrupted := SweepRatesResilient(ctx, cfgs, rates, w, 3, 2, co)

	full := newMemJournal()
	coFull := co
	coFull.Journal, coFull.Experiment = full, "rates"
	SweepRatesResilient(ctx, cfgs, rates, w, 3, 2, coFull)

	coPart := co
	coPart.Journal, coPart.Experiment = full.subset(), "rates"
	resumed := SweepRatesResilient(ctx, cfgs, rates, w, 3, 4, coPart)
	if !reflect.DeepEqual(uninterrupted, resumed) {
		t.Fatal("resumed chaos sweep differs from uninterrupted one")
	}
}

// gateSource blocks a cell's first packet until released, so tests can
// hold cells in flight while they cancel the context.
type gateSource struct {
	src     capture.Source
	started chan<- struct{}
	release <-chan struct{}
	once    sync.Once
}

func (s *gateSource) Reset() { s.src.Reset() }
func (s *gateSource) Next() (pktgen.Packet, bool) {
	s.once.Do(func() {
		s.started <- struct{}{}
		<-s.release
	})
	return s.src.Next()
}

// waitGoroutines polls until the live goroutine count settles back at the
// baseline — the leak assertion of the cancellation tests.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 64<<10)
	t.Fatalf("worker goroutines leaked after cancellation: %d live, baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

// TestRunCellsCancelDrainsNoLeak: cancelling mid-sweep lets in-flight
// cells finish, marks every undispatched cell with the context error, and
// leaves no worker goroutine behind.
func TestRunCellsCancelDrainsNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	w := Workload{Packets: 800, Seed: 3, TargetRate: 6e8}
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	var cells []Cell
	for i := 0; i < 8; i++ {
		cells = append(cells, Cell{Cfg: Swan(), W: w, Wrap: func(src capture.Source) capture.Source {
			return &gateSource{src: src, started: started, release: release}
		}})
	}
	ctx, cancel := context.WithCancel(context.Background())
	var errs []error
	var stats []capture.Stats
	done := make(chan struct{})
	go func() {
		stats, errs = RunCellsErr(ctx, cells, 2)
		close(done)
	}()
	<-started
	<-started // both workers hold a cell in flight
	cancel()
	close(release)
	<-done

	want := RunOnce(Swan(), w)
	finished, cancelled := 0, 0
	for i, err := range errs {
		switch {
		case err == nil:
			finished++
			if !reflect.DeepEqual(stats[i], want) {
				t.Fatalf("cell %d finished with wrong stats after cancel", i)
			}
		case IsCancel(err):
			cancelled++
		default:
			t.Fatalf("cell %d: unexpected error %v", i, err)
		}
	}
	if finished < 2 {
		t.Fatalf("in-flight cells did not finish: %d done", finished)
	}
	if cancelled == 0 {
		t.Fatal("no cell carries the cancellation error")
	}
	waitGoroutines(t, base)

	// RunCells must treat the cancellation as expected, not panic.
	RunCells(ctx, cells[:1], 0)
}

// TestRunCellsResilientCancelLeavesUnresolved: an interrupt mid-campaign
// leaves unfinished cells neither accepted nor quarantined — so a resume
// measures them from scratch — records nothing spurious in the journal,
// and leaks no workers.
func TestRunCellsResilientCancelLeavesUnresolved(t *testing.T) {
	base := runtime.NumGoroutine()
	w := Workload{Packets: 800, Seed: 3, TargetRate: 6e8}
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	cells, ids := make([]Cell, 6), make([]CellID, 6)
	for i := range cells {
		cells[i] = Cell{Cfg: Swan(), W: w, Wrap: func(src capture.Source) capture.Source {
			return &gateSource{src: src, started: started, release: release}
		}}
		ids[i] = CellID{Point: 1, Rep: i}
	}
	j := newMemJournal()
	ctx, cancel := context.WithCancel(context.Background())
	var outs []CellOutcome
	done := make(chan struct{})
	go func() {
		outs = RunCellsResilient(ctx, cells, ids, 2, ChaosOptions{Journal: j, Experiment: "rates"})
		close(done)
	}()
	<-started
	<-started
	cancel()
	close(release)
	<-done

	resolved, unresolved := 0, 0
	for i, o := range outs {
		switch {
		case o.OK:
			resolved++
		case o.Quarantined:
			t.Fatalf("cell %d quarantined by an interrupt, not by its retry budget", i)
		default:
			unresolved++
		}
	}
	if resolved < 2 || unresolved == 0 {
		t.Fatalf("drain shape wrong: %d resolved, %d unresolved", resolved, unresolved)
	}
	if len(j.m) != resolved {
		t.Fatalf("journal holds %d records for %d resolved cells", len(j.m), resolved)
	}
	waitGoroutines(t, base)
}
