package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/capture"
)

// TestPrepareIdempotent is the regression test for double time-compression:
// preparing an already prepared config must return it unchanged instead of
// scaling the buffers and time constants a second time.
func TestPrepareIdempotent(t *testing.T) {
	w := Workload{Packets: 40000}
	once := Prepare(Swan(), w)
	twice := Prepare(once, w)
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("Prepare is not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
	}
	if !once.Prepared {
		t.Fatal("Prepare did not mark the config as prepared")
	}
}

// TestPrepareKeepsZeroBytes is the regression test for the scaling floor
// promoting a deliberately-zero capacity to 4096 bytes: zero means the
// feature is unset/disabled and must survive scaling as zero.
func TestPrepareKeepsZeroBytes(t *testing.T) {
	cfg := Swan()
	cfg.Costs = capture.DefaultCosts()
	cfg.Costs.PipeBufBytes = 0
	got := Prepare(cfg, Workload{Packets: 40000})
	if got.Costs.PipeBufBytes != 0 {
		t.Fatalf("zero PipeBufBytes scaled to %d, want 0 preserved", got.Costs.PipeBufBytes)
	}
	if got.Costs.WorkerQueueBytes == 0 {
		t.Fatal("nonzero WorkerQueueBytes lost in scaling")
	}
}

// TestFormatTableRagged is the regression test for the index panic on
// series of unequal length: missing cells must render as blanks.
func TestFormatTableRagged(t *testing.T) {
	series := []Series{
		{System: "a", Points: []Point{{X: 100, Rate: 99, CPU: 10}, {X: 200, Rate: 98, CPU: 20}}},
		{System: "b", Points: []Point{{X: 100, Rate: 97, CPU: 30}}},
	}
	out := FormatTable("ragged", series)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want title + header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "\t     -\t     -") {
		t.Fatalf("missing cell not rendered as blanks: %q", lines[3])
	}
	// Equal-length series must render exactly as before the guard.
	equal := []Series{
		{System: "a", Points: []Point{{X: 100, Rate: 99, CPU: 10}}},
		{System: "b", Points: []Point{{X: 100, Rate: 97, CPU: 30}}},
	}
	want := "# t\n# x\ta:rate%\ta:cpu%\tb:rate%\tb:cpu%\n100\t 99.00\t 10.00\t 97.00\t 30.00\n"
	if got := FormatTable("t", equal); got != want {
		t.Fatalf("equal-length rendering drifted:\ngot  %q\nwant %q", got, want)
	}
}

// TestFormatWhy checks the drop-cause table rendering: per-cause counts in
// declaration order, "-" for lossless points, truncation flagged.
func TestFormatWhy(t *testing.T) {
	var lossy capture.Ledger
	lossy.RecordN(capture.CauseRcvbuf, 5, 300, 10)
	lossy.RecordN(capture.CauseBacklog, 2, 120, 20)
	series := []Series{{System: "a", Points: []Point{
		{X: 100},
		{X: 200, Drops: lossy, Truncated: 1},
	}}}
	out := FormatWhy(series)
	if !strings.Contains(out, "100\ta\t0\t-") {
		t.Fatalf("lossless point not rendered with '-':\n%s", out)
	}
	if !strings.Contains(out, "200\ta\t7\tbacklog=2 rcvbuf=5 [truncated x1]") {
		t.Fatalf("lossy point rendering wrong:\n%s", out)
	}
}

// TestAggregatePointMergesLedger checks that per-repetition ledgers and
// truncation flags fold into the plotted point.
func TestAggregatePointMergesLedger(t *testing.T) {
	var l1, l2 capture.Ledger
	l1.RecordN(capture.CauseNICRing, 3, 100, 5)
	l2.RecordN(capture.CauseNICRing, 4, 200, 7)
	runs := []capture.Stats{
		{Generated: 10, AppCaptured: []uint64{7}, Ledger: l1},
		{Generated: 10, AppCaptured: []uint64{6}, Ledger: l2, Truncated: true},
	}
	pt := AggregatePoint("a", 300, runs)
	if pt.X != 300 || pt.System != "a" {
		t.Fatalf("point identity wrong: %+v", pt)
	}
	if got := pt.Drops.Drops[capture.CauseNICRing].Packets; got != 7 {
		t.Fatalf("merged ledger has %d nic-ring drops, want 7", got)
	}
	if pt.Truncated != 1 {
		t.Fatalf("truncated reps = %d, want 1", pt.Truncated)
	}
}

// TestFormatRate pins the multi-gigabit x-axis rendering: sub-gigabit
// rates keep the historical plain-integer form, whole gigabits compress
// to NG labels, and everything else prints at full precision.
func TestFormatRate(t *testing.T) {
	cases := []struct {
		x    float64
		want string
	}{
		{100, "100"},
		{950, "950"},
		{999, "999"},
		{1000, "1G"},
		{2000, "2G"},
		{10000, "10G"},
		{40000, "40G"},
		{100000, "100G"},
		{2500, "2500"},
		{1024, "1024"},
		{62.5, "62.5"},
	}
	for _, c := range cases {
		if got := FormatRate(c.x); got != c.want {
			t.Errorf("FormatRate(%g) = %q, want %q", c.x, got, c.want)
		}
	}
}

// TestFormatTableMultiGig checks that a 10/40/100G sweep renders without
// precision loss or ragged columns.
func TestFormatTableMultiGig(t *testing.T) {
	series := []Series{
		{System: "heron", Points: []Point{
			{X: 10000, Rate: 100, CPU: 12.5},
			{X: 40000, Rate: 96.2, CPU: 50},
			{X: 100000, Rate: 61.31, CPU: 88},
		}},
	}
	want := "# t\n# x\theron:rate%\theron:cpu%\n" +
		"10G\t100.00\t 12.50\n40G\t 96.20\t 50.00\n100G\t 61.31\t 88.00\n"
	if got := FormatTable("t", series); got != want {
		t.Fatalf("multi-gig rendering:\ngot  %q\nwant %q", got, want)
	}
}
