package core

import (
	"reflect"
	"testing"

	"repro/internal/capture"
)

// TestSweepParallelMatchesSerial is the engine's hard invariant: for any
// worker count, the reassembled series — and hence the formatted table —
// are byte-identical to the serial path.
func TestSweepParallelMatchesSerial(t *testing.T) {
	cfgs := Sniffers()
	w := Workload{Packets: 2500, Seed: 5}
	rates := []float64{150, 450, 900}
	serial := SweepRatesParallel(cfgs, rates, w, 2, 0)
	serialTbl := FormatTable("t", serial)
	for _, workers := range []int{1, 3, 8, -1} {
		par := SweepRatesParallel(cfgs, rates, w, 2, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: series differ from serial", workers)
		}
		if tbl := FormatTable("t", par); tbl != serialTbl {
			t.Fatalf("workers=%d: formatted table differs:\n%s\nvs\n%s", workers, tbl, serialTbl)
		}
	}
}

// TestSweepSerialDelegationUnchanged: the SweepRates facade and the engine
// agree (SweepRates is the workers=0 case).
func TestSweepSerialDelegationUnchanged(t *testing.T) {
	cfgs := []capture.Config{Swan()}
	w := Workload{Packets: 2000, Seed: 9}
	a := SweepRates(cfgs, []float64{300, 800}, w, 2)
	b := SweepRatesParallel(cfgs, []float64{300, 800}, w, 2, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SweepRates differs from the parallel engine")
	}
}

func TestRunCellsOrderAndFeedSharing(t *testing.T) {
	w := Workload{Packets: 1500, Seed: 4, TargetRate: 6e8}
	var cells []Cell
	for _, cfg := range Sniffers() {
		cells = append(cells, Cell{Cfg: cfg, W: w})
	}
	stats := RunCells(cells, 4)
	if len(stats) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(stats), len(cells))
	}
	for i, st := range stats {
		want := RunOnce(cells[i].Cfg, cells[i].W)
		if !reflect.DeepEqual(st, want) {
			t.Errorf("cell %d (%s): parallel result differs from direct run", i, cells[i].Cfg.Name)
		}
	}
}

func TestAggregateDefensive(t *testing.T) {
	// reps == 0 must not divide by zero or leave the ±Inf sentinels behind.
	pt := aggregatePoint("x", nil)
	if pt.RateMin != 0 || pt.RateMax != 0 || pt.Rate != 0 {
		t.Fatalf("empty aggregation not zeroed: %+v", pt)
	}
	// A 100%-capture run must be representable (the old sentinel was an
	// arbitrary 200 that only worked because rates are percentages).
	st := RunOnce(Moorhen(), Workload{Packets: 2000, Seed: 1, TargetRate: 1e8})
	agg := aggregatePoint("moorhen", []capture.Stats{st})
	if agg.RateMin != agg.RateMax || agg.RateMin != st.CaptureRate() {
		t.Fatalf("single-run aggregation: %+v vs rate %.2f", agg, st.CaptureRate())
	}
}

func TestWorkersConvention(t *testing.T) {
	if Workers(0) != 0 {
		t.Fatal("Workers(0) must keep the serial path")
	}
	if Workers(3) != 3 {
		t.Fatal("Workers(n) must be n")
	}
	if Workers(-1) < 1 {
		t.Fatal("Workers(<0) must resolve to at least one CPU")
	}
}
