package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/capture"
	"repro/internal/pktgen"
)

// TestSweepParallelMatchesSerial is the engine's hard invariant: for any
// worker count, the reassembled series — and hence the formatted table —
// are byte-identical to the serial path.
func TestSweepParallelMatchesSerial(t *testing.T) {
	cfgs := Sniffers()
	w := Workload{Packets: 2500, Seed: 5}
	rates := []float64{150, 450, 900}
	serial := SweepRatesParallel(context.Background(), cfgs, rates, w, 2, 0)
	serialTbl := FormatTable("t", serial)
	for _, workers := range []int{1, 3, 8, -1} {
		par := SweepRatesParallel(context.Background(), cfgs, rates, w, 2, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: series differ from serial", workers)
		}
		if tbl := FormatTable("t", par); tbl != serialTbl {
			t.Fatalf("workers=%d: formatted table differs:\n%s\nvs\n%s", workers, tbl, serialTbl)
		}
	}
}

// TestSweepSerialDelegationUnchanged: the SweepRates facade and the engine
// agree (SweepRates is the workers=0 case).
func TestSweepSerialDelegationUnchanged(t *testing.T) {
	cfgs := []capture.Config{Swan()}
	w := Workload{Packets: 2000, Seed: 9}
	a := SweepRates(cfgs, []float64{300, 800}, w, 2)
	b := SweepRatesParallel(context.Background(), cfgs, []float64{300, 800}, w, 2, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SweepRates differs from the parallel engine")
	}
}

func TestRunCellsOrderAndFeedSharing(t *testing.T) {
	w := Workload{Packets: 1500, Seed: 4, TargetRate: 6e8}
	var cells []Cell
	for _, cfg := range Sniffers() {
		cells = append(cells, Cell{Cfg: cfg, W: w})
	}
	stats := RunCells(context.Background(), cells, 4)
	if len(stats) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(stats), len(cells))
	}
	for i, st := range stats {
		want := RunOnce(cells[i].Cfg, cells[i].W)
		if !reflect.DeepEqual(st, want) {
			t.Errorf("cell %d (%s): parallel result differs from direct run", i, cells[i].Cfg.Name)
		}
	}
}

// panicSource panics after emitting a few packets — the "deliberately
// panicking System hook" of the worker-recovery regression test.
type panicSource struct {
	src   capture.Source
	n     int
	after int
}

func (s *panicSource) Reset() { s.src.Reset(); s.n = 0 }
func (s *panicSource) Next() (p pktgen.Packet, ok bool) {
	if s.n >= s.after {
		panic("injected cell panic")
	}
	s.n++
	return s.src.Next()
}

// TestRunCellsWorkerPanicRecovered is the regression test for the worker
// panic: one panicking cell must not kill the process or leave sibling
// goroutines blocked on the job channel — every other cell completes and
// the failed cell comes back as a *CellPanicError the supervisor can
// retry.
func TestRunCellsWorkerPanicRecovered(t *testing.T) {
	w := Workload{Packets: 1200, Seed: 4, TargetRate: 6e8}
	var cells []Cell
	for _, cfg := range Sniffers() {
		cells = append(cells, Cell{Cfg: cfg, W: w})
	}
	bad := 1
	cells[bad].Wrap = func(src capture.Source) capture.Source {
		return &panicSource{src: src, after: 5}
	}
	// More cells than workers so a dying worker would strand queued jobs.
	stats, errs := RunCellsErr(context.Background(), cells, 2)
	for i := range cells {
		if i == bad {
			var pe *CellPanicError
			if !errors.As(errs[i], &pe) {
				t.Fatalf("cell %d: want CellPanicError, got %v", i, errs[i])
			}
			if pe.System != cells[bad].Cfg.Name || pe.Value != "injected cell panic" {
				t.Fatalf("panic error = %+v", pe)
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("healthy cell %d failed: %v", i, errs[i])
		}
		want := RunOnce(cells[i].Cfg, cells[i].W)
		if !reflect.DeepEqual(stats[i], want) {
			t.Errorf("cell %d: result differs after sibling panic", i)
		}
	}

	// The legacy RunCells contract: the panic still surfaces (as a typed
	// error value), but only after the pool has drained.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunCells swallowed the cell panic")
		}
		if _, ok := r.(*CellPanicError); !ok {
			t.Fatalf("RunCells re-raised %T, want *CellPanicError", r)
		}
	}()
	RunCells(context.Background(), cells, 2)
}

func TestAggregateDefensive(t *testing.T) {
	// reps == 0 must not divide by zero or leave the ±Inf sentinels behind.
	pt := aggregatePoint("x", nil)
	if pt.RateMin != 0 || pt.RateMax != 0 || pt.Rate != 0 {
		t.Fatalf("empty aggregation not zeroed: %+v", pt)
	}
	// A 100%-capture run must be representable (the old sentinel was an
	// arbitrary 200 that only worked because rates are percentages).
	st := RunOnce(Moorhen(), Workload{Packets: 2000, Seed: 1, TargetRate: 1e8})
	agg := aggregatePoint("moorhen", []capture.Stats{st})
	if agg.RateMin != agg.RateMax || agg.RateMin != st.CaptureRate() {
		t.Fatalf("single-run aggregation: %+v vs rate %.2f", agg, st.CaptureRate())
	}
}

func TestWorkersConvention(t *testing.T) {
	if Workers(0) != 0 {
		t.Fatal("Workers(0) must keep the serial path")
	}
	if Workers(3) != 3 {
		t.Fatal("Workers(n) must be n")
	}
	if Workers(-1) < 1 {
		t.Fatal("Workers(<0) must resolve to at least one CPU")
	}
}
