// Package core implements the thesis's measurement methodology (Chapter 3):
// the four systems under test (swan, snipe, moorhen, flamingo), the
// workload definition, the measurement cycle (start capture and profiling,
// read the generator-side counters, generate, read counters, stop —
// repeated over data rates and repetitions), and the aggregation of
// capturing rate and CPU usage.
package core

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/capture"
	"repro/internal/dist"
	"repro/internal/pktgen"
	"repro/internal/trace"
)

// FlamingoFriction is the kernel-cost factor of the FreeBSD/Xeon
// combination. The thesis observes — without dissecting the cause — that
// flamingo "is often losing more packets than the other systems"; this
// factor encodes that observation as extra per-packet kernel cost (FreeBSD
// 5.x interrupt handling on Netburst/ServerWorks was notoriously
// expensive: Giant-locked interrupt threads, slow APIC access).
const FlamingoFriction = 1.9

// Swan returns the Linux / dual AMD Opteron system.
func Swan() capture.Config {
	return capture.Config{Name: "swan", Arch: arch.Opteron244(), OS: capture.Linux}
}

// Snipe returns the Linux / dual Intel Xeon system.
func Snipe() capture.Config {
	return capture.Config{Name: "snipe", Arch: arch.Xeon306(), OS: capture.Linux}
}

// Moorhen returns the FreeBSD 5.4 / dual AMD Opteron system.
func Moorhen() capture.Config {
	return capture.Config{Name: "moorhen", Arch: arch.Opteron244(), OS: capture.FreeBSD}
}

// Flamingo returns the FreeBSD 5.4 / dual Intel Xeon system.
func Flamingo() capture.Config {
	return capture.Config{
		Name: "flamingo", Arch: arch.Xeon306(), OS: capture.FreeBSD,
		KernelCostFactor: FlamingoFriction,
	}
}

// Sniffers returns the four systems in the thesis's plotting order.
func Sniffers() []capture.Config {
	return []capture.Config{Swan(), Snipe(), Moorhen(), Flamingo()}
}

// Heron returns the modern RSS + NAPI system: a Xeon Scalable host
// running the stock Linux receive path spread over multiple hardware
// queues — the 2005 architecture scaled up rather than redesigned.
func Heron() capture.Config {
	return capture.Config{
		Name: "heron", Arch: arch.XeonScalable(), OS: capture.Linux,
		Stack: capture.StackRSS, NumCPUs: 8, RXRings: 4,
		BufferBytes: 8 << 20,
	}
}

// Osprey returns the poll-mode system: an EPYC Rome host dedicating
// busy-spinning cores to the NIC rings, DPDK style — zero interrupt
// cost bought with always-100% CPUs.
func Osprey() capture.Config {
	return capture.Config{
		Name: "osprey", Arch: arch.EpycRome(), OS: capture.Linux,
		Stack: capture.StackPoll, NumCPUs: 8, RXRings: 4,
	}
}

// Kite returns the AF_XDP-style zero-copy system: the same Xeon
// Scalable host as heron, but frames are redirected from a shared UMEM
// pool into per-socket rings with no per-packet copy and batched
// wakeups.
func Kite() capture.Config {
	return capture.Config{
		Name: "kite", Arch: arch.XeonScalable(), OS: capture.Linux,
		Stack: capture.StackZeroCopy, NumCPUs: 8, RXRings: 4,
	}
}

// ModernSniffers returns the three modern-stack systems in plotting
// order.
func ModernSniffers() []capture.Config {
	return []capture.Config{Heron(), Osprey(), Kite()}
}

// Workload describes the generated packet train of one measurement run.
type Workload struct {
	// Packets per run. The thesis generates 1 000 000 per run; smaller
	// values time-compress the experiment (see Scale).
	Packets int
	// TargetRate is the wire data rate in bits/s (0 = unpaced line rate).
	TargetRate float64
	// Seed selects the deterministic packet train; repetitions use
	// different seeds.
	Seed uint64
	// FixedSize, when nonzero, disables the size distribution and
	// generates fixed-size frames (classic pktgen mode).
	FixedSize int
	// Flows, when > 1, cycles the generated UDP source port so the train
	// carries this many distinct 5-tuple flows (the measurement default is
	// a single flow — fixed addresses and ports, only the source MAC
	// cycles). Flow-level experiments need real flow diversity; 0 keeps
	// the train byte-identical to the thesis setup.
	Flows int
	// LineRate, when nonzero, overrides the generator's medium bit rate
	// (default 1 Gbit/s) — the modern sweeps run 10/40/100G links.
	LineRate float64
	// GenCostNS, when nonzero, overrides the generating host's per-packet
	// cost (default 1250 ns — a 2005 sender cannot source much beyond
	// 1 GbE; a modern hardware generator is set to a few tens of ns).
	GenCostNS float64
}

// scale is the time-compression factor of a run relative to the thesis's
// 1M-packet runs. Buffer capacities and OS time constants scale linearly
// with run length so that a 50k-packet run reproduces the drop dynamics of
// a 1M-packet run exactly (every overflow condition in the model is a
// product of rate × time versus bytes).
func (w Workload) scale() float64 {
	s := float64(w.Packets) / 1_000_000
	if s > 1 {
		s = 1
	}
	if s < 1.0/5000 {
		s = 1.0 / 5000
	}
	return s
}

// mwnDistribution is the measurement distribution, built once.
var mwnDistribution = func() *dist.Distribution {
	d, err := dist.Build(trace.MWNCounts(1_000_000), dist.DefaultParams())
	if err != nil {
		panic(err)
	}
	return d
}()

// Generator builds the enhanced pktgen instance for a workload.
func (w Workload) Generator() *pktgen.Generator {
	g := pktgen.New(w.Seed)
	g.Config.Count = w.Packets
	g.Config.TargetRate = w.TargetRate
	if w.Flows > 1 {
		g.Config.UDPSrcPortCount = w.Flows
	}
	if w.LineRate > 0 {
		g.Config.LineRate = w.LineRate
	}
	if w.GenCostNS > 0 {
		g.Config.PerPacketCostNS = w.GenCostNS
	}
	if w.FixedSize > 0 {
		g.Config.PktSize = w.FixedSize
	} else {
		g.LoadDistribution(mwnDistribution)
	}
	return g
}

// Prepare time-compresses a system configuration for the workload and
// fills in the buffer defaults if unset. Scaling is multiplicative, so
// Prepare marks the config and is idempotent: preparing an already
// prepared config returns it unchanged instead of compressing twice.
func Prepare(cfg capture.Config, w Workload) capture.Config {
	if cfg.Prepared {
		return cfg
	}
	cfg.Prepared = true
	if cfg.Costs == (capture.Costs{}) {
		cfg.Costs = capture.DefaultCosts()
	}
	s := w.scale()
	if cfg.BufferBytes == 0 {
		if cfg.OS == capture.Linux {
			cfg.BufferBytes = capture.DefaultLinuxRcvbuf
		} else {
			cfg.BufferBytes = capture.DefaultBSDBuffer
		}
	}
	cfg.BufferBytes = scaleBytes(cfg.BufferBytes, s)
	cfg.Costs.HousekeepNS *= s
	cfg.Costs.HousekeepPeriodNS *= s
	cfg.Costs.TimesliceNS *= s
	cfg.Costs.ReadTimeoutNS *= s
	cfg.Costs.PipeBufBytes = scaleBytes(cfg.Costs.PipeBufBytes, s)
	cfg.Costs.WorkerQueueBytes = scaleBytes(cfg.Costs.WorkerQueueBytes, s)
	cfg.Costs.NICFifoBytes = scaleBytes(cfg.Costs.NICFifoBytes, s)
	if cfg.DiskQueueBytes == 0 {
		cfg.DiskQueueBytes = scaleBytes(32<<20, s)
	}
	return cfg
}

// scaleBytes compresses a buffer capacity, with a floor so tiny runs keep
// a usable buffer. Zero means "feature disabled / unset" and must survive
// scaling as zero rather than gaining the floor capacity.
func scaleBytes(b int, s float64) int {
	if b <= 0 {
		return b
	}
	v := int(float64(b) * s)
	if v < 4096 {
		v = 4096
	}
	return v
}

// RunOnce executes one measurement of one system: build the system, feed
// the generated train, return statistics.
func RunOnce(cfg capture.Config, w Workload) capture.Stats {
	sys := capture.NewSystem(Prepare(cfg, w))
	return sys.Run(w.Generator())
}

// Point is one plotted point: a system at one x value, aggregated over
// repetitions.
type Point struct {
	System    string
	X         float64 // data rate in Mbit/s (or buffer kB, etc.)
	Rate      float64 // average capturing rate, percent
	RateMin   float64
	RateMax   float64
	Worst     float64 // per-app worst/avg/best (multi-app plots)
	Avg       float64
	Best      float64
	CPU       float64 // average CPU usage, percent
	Generated uint64
	// Drops is the drop-cause ledger merged over the repetitions of this
	// point (an array-backed value, so Point stays comparable).
	Drops capture.Ledger
	// Truncated counts repetitions that hit the simulation safety cap.
	Truncated int

	// Chaos bookkeeping, filled by the resilient engine (resilient.go)
	// when fault injection is active; all zero on clean runs.
	//
	// Attempts is the total number of cycle attempts spent on this point
	// (reps on a clean run; more when faults forced retries). Quarantined
	// counts repetitions that never produced a valid run within the retry
	// budget; Rejected counts valid repetitions the MAD outlier rejection
	// discarded. Degraded marks a point whose accepted data is impaired:
	// a degraded splitter leg was booked into it, or no repetition
	// survived at all (the rate fields are then zero, not measured).
	// FaultLog is the compact per-point fault history ("rep0.1
	// swan:sniffer-hang; …"); a string so Point stays comparable.
	Attempts    int
	Quarantined int
	Rejected    int
	Degraded    bool
	FaultLog    string
}

// Series is the result of sweeping one system over x values.
type Series struct {
	System string
	Points []Point
}

// SweepRates runs the full measurement cycle of §3.4 for each system over
// the data rates (Mbit/s), repeating each point reps times with distinct
// seeds and averaging — the thesis repeats each point seven times "to
// avoid outliers". It is the serial entry point; SweepRatesParallel
// (parallel.go) runs the same cells on a worker pool with byte-identical
// output.
func SweepRates(cfgs []capture.Config, ratesMbit []float64, w Workload, reps int) []Series {
	return SweepRatesParallel(context.Background(), cfgs, ratesMbit, w, reps, 0)
}

// aggregatePoint folds the per-repetition statistics of one cell column
// into a plotted point. The runs arrive in repetition order, so the
// floating-point accumulation is deterministic.
func aggregatePoint(system string, runs []capture.Stats) Point {
	pt := Point{System: system, RateMin: math.Inf(1), RateMax: math.Inf(-1)}
	if len(runs) == 0 {
		pt.RateMin, pt.RateMax = 0, 0
		return pt
	}
	var worstS, avgS, bestS, cpuS float64
	for _, st := range runs {
		r := st.CaptureRate()
		pt.Rate += r
		if r < pt.RateMin {
			pt.RateMin = r
		}
		if r > pt.RateMax {
			pt.RateMax = r
		}
		wo, av, be := st.AppRates()
		worstS += wo
		avgS += av
		bestS += be
		cpuS += st.CPUUsage()
		pt.Generated = st.Generated
		pt.Drops.Merge(st.Ledger)
		if st.Truncated {
			pt.Truncated++
		}
	}
	n := float64(len(runs))
	pt.Rate /= n
	pt.Worst, pt.Avg, pt.Best = worstS/n, avgS/n, bestS/n
	pt.CPU = cpuS / n
	return pt
}

// AggregatePoint folds the per-repetition statistics of one measurement
// point at x into a plotted Point (capture rate, CPU, drop-cause ledger).
func AggregatePoint(system string, x float64, runs []capture.Stats) Point {
	pt := aggregatePoint(system, runs)
	pt.X = x
	return pt
}

// FormatTable renders series the way the thesis plots read: one row per x
// value, one rate/CPU column pair per system. Series of unequal length are
// rendered with blanks for the missing points instead of panicking.
func FormatTable(title string, series []Series) string {
	var out strings.Builder
	fmt.Fprintf(&out, "# %s\n", title)
	if len(series) == 0 {
		return out.String()
	}
	out.WriteString("# x")
	rows := 0
	for _, s := range series {
		fmt.Fprintf(&out, "\t%s:rate%%\t%s:cpu%%", s.System, s.System)
		if len(s.Points) > rows {
			rows = len(s.Points)
		}
	}
	out.WriteByte('\n')
	for i := 0; i < rows; i++ {
		// The x value comes from the first series long enough to have
		// this row.
		for _, s := range series {
			if i < len(s.Points) {
				out.WriteString(FormatRate(s.Points[i].X))
				break
			}
		}
		for _, s := range series {
			if i < len(s.Points) {
				p := s.Points[i]
				fmt.Fprintf(&out, "\t%6.2f\t%6.2f", p.Rate, p.CPU)
			} else {
				out.WriteString("\t     -\t     -")
			}
		}
		out.WriteByte('\n')
	}
	return out.String()
}

// FormatRate renders one x-axis data rate in Mbit/s for a table column.
// Sub-gigabit rates keep the thesis's plain integer form (byte-identical
// to the historical output); whole multiples of 1000 Mbit/s compress to
// "10G"-style labels so multi-gigabit sweeps neither lose precision nor
// blow up the column width; anything else prints exactly.
func FormatRate(x float64) string {
	if x == math.Trunc(x) {
		if x >= 1000 && math.Mod(x, 1000) == 0 {
			return fmt.Sprintf("%.0fG", x/1000)
		}
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%g", x)
}

// FormatWhy renders the drop-cause breakdown of a sweep: one line per
// (x, system) point listing the per-cause packet counts summed over the
// point's repetitions — the `experiment -why` companion of FormatTable.
func FormatWhy(series []Series) string {
	var out strings.Builder
	out.WriteString("# why: drop causes per point (packets summed over repetitions)\n")
	out.WriteString("# x\tsystem\tdropped\tby-cause\n")
	for _, s := range series {
		for _, p := range s.Points {
			total, _ := p.Drops.Total()
			fmt.Fprintf(&out, "%.0f\t%s\t%d\t", p.X, s.System, total)
			if total == 0 {
				out.WriteByte('-')
			} else {
				first := true
				for _, c := range capture.CausesByName() {
					d := p.Drops.Drops[c]
					if d.Packets == 0 {
						continue
					}
					if !first {
						out.WriteByte(' ')
					}
					first = false
					fmt.Fprintf(&out, "%s=%d", c, d.Packets)
				}
			}
			if p.Truncated > 0 {
				fmt.Fprintf(&out, " [truncated x%d]", p.Truncated)
			}
			out.WriteByte('\n')
		}
	}
	return out.String()
}
