// Resilient measurement engine: the fault-tolerant sibling of
// parallel.go. A real Figure 3.1 testbed misbehaves — counters read
// stale, the generator underruns, a sniffer hangs, the splitter degrades
// a leg — so every measurement cell is run under per-cycle validation
// with bounded retry (simulated-time backoff), quarantine of
// irrecoverably bad repetitions, thesis-style outlier rejection across
// the surviving repetitions, and graceful degradation: a dead sniffer's
// points are marked Degraded instead of aborting the sweep. Injected
// losses are booked into the drop-cause ledger under the fault-* causes,
// so the conservation check holds against the switch's ground truth.
//
// The engine is also durable: with a CellJournal in ChaosOptions every
// final cell outcome — accepted or quarantined — is recorded in the
// campaign write-ahead log as soon as it is known, and cells already
// recorded are replayed without running. Fault draws are keyed by (plan
// seed, point, system, rep, attempt), never by execution order, so a
// resumed chaos campaign reproduces the uninterrupted one bit for bit.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/capture"
	"repro/internal/faults"
	"repro/internal/stats"
)

// ChaosOptions configure the resilient cell runner.
type ChaosOptions struct {
	// Plan is the seeded fault model; nil injects nothing (the engine then
	// only adds panic recovery and retry on top of the plain pool).
	Plan *faults.Plan
	// RetryBudget is the number of retries per cell beyond the first
	// attempt (default 3).
	RetryBudget int
	// BackoffNS is the simulated control-host backoff before the first
	// retry; it doubles per further retry (default 250 ms — rerunning a
	// cycle in the real testbed costs seconds, the backoff models the
	// "wait and re-poll" step without consuming wall-clock time).
	BackoffNS float64
	// MADK is the outlier-rejection threshold: a surviving repetition is
	// rejected when its capturing rate deviates from the per-point median
	// by more than MADK × MAD (default 3.5).
	MADK float64
	// MADFloor is the absolute deviation (percentage points) below which a
	// repetition is never rejected, guarding the MAD ≈ 0 case of
	// near-identical repetitions (default 0.5).
	MADFloor float64
	// Journal, when non-nil, makes the run durable: cells with a recorded
	// final outcome are replayed from the journal instead of running, and
	// every newly finalized outcome (accepted or quarantined) is recorded
	// before the engine returns it. A journal append failure panics —
	// durability failures must never masquerade as measurements.
	Journal CellJournal
	// Experiment namespaces the journal keys of this run (the experiment
	// id); only meaningful with a non-nil Journal.
	Experiment string
	// Observer, when non-nil, receives the supervision's live events:
	// EventRetry per failed attempt, EventSnifferDead when the fault model
	// kills a sniffer for an attempt, EventCell when a cell's outcome is
	// accepted, EventQuarantine when the retry budget is exhausted. A
	// runtime hook — it never changes an outcome.
	Observer Observer
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.RetryBudget <= 0 {
		o.RetryBudget = 3
	}
	if o.BackoffNS <= 0 {
		o.BackoffNS = 250e6
	}
	if o.MADK <= 0 {
		o.MADK = 3.5
	}
	if o.MADFloor <= 0 {
		o.MADFloor = 0.5
	}
	return o
}

// CellID names a cell for the fault model and the campaign journal: the
// measurement point it belongs to (a stable fingerprint, e.g. the x
// value's bits) and the repetition index. Faults are drawn from (plan
// seed, point, system, rep, attempt), never from execution order, so
// chaos runs are exactly reproducible for any worker count — and across
// an interrupt-and-resume boundary.
type CellID struct {
	Point uint64
	Rep   int
}

// CellOutcome is the supervised result of one measurement cell. It is
// what the campaign journal stores per cell, so every field must — and
// does — round-trip exactly through JSON.
type CellOutcome struct {
	Stats capture.Stats
	// OK: a validated Stats was produced (possibly degraded). When false
	// the cell is quarantined and Stats holds the last failed attempt's
	// partial data (zero if the sniffer never returned statistics).
	OK bool
	// Degraded: the accepted run was offered fewer frames than the switch
	// counted (degraded splitter leg); the shortfall is booked in the
	// ledger under fault-splitter and Generated is normalized, so the
	// stats balance but the capturing rate reflects the impairment.
	Degraded bool
	// Quarantined: no attempt within the retry budget produced a valid
	// run.
	Quarantined bool
	// Attempts is the number of cycle attempts spent (1 = clean first
	// try).
	Attempts int
	// BackoffNS is the simulated control-host time spent backing off
	// between attempts.
	BackoffNS float64
	// Log is the cell's fault-and-retry history, oldest first.
	Log []string
}

// cellFault is a validation failure of one attempt (distinct from a
// CellPanicError, which the pool produces).
type cellFault struct{ reason string }

func (e *cellFault) Error() string { return e.reason }

// RunCellsResilient executes the cells under the fault plan with
// validation, bounded retry and quarantine. ids must parallel cells.
// Results are in cell order; the call always returns — a cell that cannot
// be measured is quarantined, never retried forever, and a panicking cell
// is recovered and retried like any other failed attempt. On context
// cancellation the engine drains: in-flight attempts finish (and are
// journaled if they validate), but no new attempts start and unfinished
// cells are left unresolved — neither accepted nor quarantined — so a
// resumed campaign measures them from scratch.
func RunCellsResilient(ctx context.Context, cells []Cell, ids []CellID, workers int, co ChaosOptions) []CellOutcome {
	if len(ids) != len(cells) {
		panic(fmt.Sprintf("core: %d ids for %d cells", len(ids), len(cells)))
	}
	co = co.withDefaults()
	outs := make([]CellOutcome, len(cells))
	feeds := NewFeedCache(DefaultFeedCacheSize)

	record := func(i int) {
		if co.Journal == nil {
			return
		}
		if err := co.Journal.Record(cellKey(co.Experiment, cells[i], ids[i]), outs[i]); err != nil {
			panic(fmt.Errorf("core: journal record %v: %w", cellKey(co.Experiment, cells[i], ids[i]), err))
		}
	}

	// emit publishes one supervision event for cell i; final kinds carry
	// private copies of the cell's outcome and statistics.
	emit := func(kind EventKind, i, attempt int, detail string, replayed bool) {
		if co.Observer == nil {
			return
		}
		ev := Event{
			Kind: kind, Experiment: co.Experiment, System: cells[i].Cfg.Name,
			Point: ids[i].Point, X: cells[i].W.TargetRate / 1e6, Rep: ids[i].Rep,
			Attempt: attempt, Replayed: replayed, Detail: detail,
		}
		if kind == EventCell || kind == EventQuarantine {
			out := outs[i]
			st := out.Stats
			ev.Outcome, ev.Stats = &out, &st
		}
		co.Observer.Observe(ev)
	}

	pending := make([]int, 0, len(cells))
	for i := range cells {
		if co.Journal != nil {
			if out, ok := co.Journal.Lookup(cellKey(co.Experiment, cells[i], ids[i])); ok && (out.OK || out.Quarantined) {
				outs[i] = out
				if out.OK {
					emit(EventCell, i, 0, "", true)
				} else {
					emit(EventQuarantine, i, 0, "replayed quarantine verdict", true)
				}
				continue
			}
		}
		pending = append(pending, i)
	}

	logf := func(i int, format string, args ...any) {
		outs[i].Log = append(outs[i].Log, fmt.Sprintf(format, args...))
	}

	for attempt := 0; attempt <= co.RetryBudget && len(pending) > 0 && ctx.Err() == nil; attempt++ {
		// Retries pay the control host's simulated backoff, doubling per
		// attempt (capped by the retry budget, so this stays bounded).
		if attempt > 0 {
			backoff := co.BackoffNS * float64(int(1)<<(attempt-1))
			for _, i := range pending {
				outs[i].BackoffNS += backoff
			}
		}

		// Draw this attempt's faults and split the pending cells into
		// "runs" (possibly with wrapped sources) and "fails fast" (the
		// sniffer is hung, crashed or dead — no run, no statistics).
		var batch []Cell
		var batchIdx []int
		type injected struct {
			lossy *faults.LossySource
			trunc *faults.TruncatedSource
			stale bool
		}
		var inj []*injected
		for _, i := range pending {
			c := cells[i]
			id := ids[i]
			outs[i].Attempts++
			sf := co.Plan.Sniffer(c.Cfg.Name, id.Point, id.Rep, attempt)
			if sf.Failed() {
				switch {
				case sf.Dead:
					logf(i, "rep%d.%d %s:sniffer-dead", id.Rep, attempt, c.Cfg.Name)
					emit(EventSnifferDead, i, attempt, "sniffer dead for this attempt", false)
				case sf.Hang:
					logf(i, "rep%d.%d %s:sniffer-hang", id.Rep, attempt, c.Cfg.Name)
					emit(EventRetry, i, attempt, "sniffer hang: no statistics", false)
				default:
					logf(i, "rep%d.%d %s:sniffer-crash", id.Rep, attempt, c.Cfg.Name)
					emit(EventRetry, i, attempt, "sniffer crash: no statistics", false)
				}
				continue
			}
			in := &injected{stale: co.Plan.Stale(id.Point, id.Rep, attempt)}
			if in.stale {
				logf(i, "rep%d.%d switch:snmp-stale", id.Rep, attempt)
			}
			frac, stall := co.Plan.Gen(id.Point, id.Rep, attempt)
			if frac > 0 && frac < 1 {
				if stall {
					logf(i, "rep%d.%d gen:gen-stall(%.2g)", id.Rep, attempt, frac)
				} else {
					logf(i, "rep%d.%d gen:gen-underrun(%.2g)", id.Rep, attempt, frac)
				}
			}
			if sf.LegLoss > 0 {
				logf(i, "rep%d.%d %s:splitter-leg-loss(%.2g)", id.Rep, attempt, c.Cfg.Name, sf.LegLoss)
			}
			// Wrap the replayed feed with this attempt's injections. The
			// closure runs in the worker; it writes only this cell's slot.
			baseWrap := c.Wrap
			legLoss := sf.LegLoss
			legSeed := co.Plan.LegSeed(c.Cfg.Name, id.Point, id.Rep)
			limitFrac := frac
			packets := c.W.Packets
			c.Wrap = func(src capture.Source) capture.Source {
				if baseWrap != nil {
					src = baseWrap(src)
				}
				if limitFrac > 0 && limitFrac < 1 {
					in.trunc = faults.NewTruncatedSource(src, int(float64(packets)*limitFrac))
					src = in.trunc
				}
				if legLoss > 0 {
					in.lossy = faults.NewLossySource(src, legSeed, legLoss)
					src = in.lossy
				}
				return src
			}
			batch = append(batch, c)
			batchIdx = append(batchIdx, i)
			inj = append(inj, in)
		}

		// Run the batch; validation happens in the worker while the cell's
		// feed is still hot in the shared cache.
		if len(batch) > 0 {
			results, errs := runCellsWith(ctx, batch, workers, feeds, func(bi int, st *capture.Stats) error {
				in := inj[bi]
				expected := feeds.Get(batch[bi].W).Sent
				// A degraded splitter leg is an environmental loss, not a
				// measurement error: book the withheld frames so the run
				// balances against the switch's ground truth.
				if in.lossy != nil && in.lossy.Lost > 0 {
					st.BookFaultLoss(capture.CauseFaultSplitter, in.lossy.Lost, in.lossy.LostBytes, in.lossy.LastAt)
				}
				if in.stale {
					return &cellFault{reason: "stale SNMP read: switch delta 0"}
				}
				if st.Generated != expected {
					return &cellFault{reason: fmt.Sprintf(
						"switch counted %d frames, sniffer was offered %d", expected, st.Generated)}
				}
				if err := st.CheckConservation(); err != nil {
					return &cellFault{reason: err.Error()}
				}
				return nil
			})
			for bi, i := range batchIdx {
				if IsCancel(errs[bi]) {
					// Interrupted, not faulted: the cell stays unresolved and
					// a resumed campaign measures it from scratch.
					continue
				}
				if errs[bi] != nil {
					logf(i, "rep%d.%d %s:retry: %v", ids[i].Rep, attempt, cells[i].Cfg.Name, errs[bi])
					emit(EventRetry, i, attempt, errs[bi].Error(), false)
					// Keep the last failed attempt's partial data so a
					// quarantined cell is inspectable; book a generator
					// shortfall so even the partial stats balance.
					st := results[bi]
					if in := inj[bi]; in.trunc != nil && in.trunc.Cut > 0 {
						st.BookFaultLoss(capture.CauseFaultGenerator, in.trunc.Cut, in.trunc.CutBytes, in.trunc.LastAt)
					}
					outs[i].Stats = st
					continue
				}
				outs[i].Stats = results[bi]
				outs[i].OK = true
				outs[i].Degraded = inj[bi].lossy != nil && inj[bi].lossy.Lost > 0
				// The outcome is final — make it durable before it is used.
				record(i)
				emit(EventCell, i, attempt, "", false)
			}
		}

		var next []int
		for _, i := range pending {
			if !outs[i].OK {
				next = append(next, i)
			}
		}
		pending = next
	}

	// Quarantine is a final verdict: only pronounce (and journal) it when
	// the retry budget is truly exhausted, not when an interrupt cut the
	// budget short.
	if ctx.Err() == nil {
		for _, i := range pending {
			outs[i].Quarantined = true
			record(i)
			emit(EventQuarantine, i, co.RetryBudget, "retry budget exhausted", false)
		}
	}
	return outs
}

// SweepRatesResilient is SweepRatesParallel under the fault plan: the same
// cells, each supervised by RunCellsResilient, aggregated per point over
// the repetitions that survived validation and the MAD outlier rejection.
// Points whose accepted data is impaired are marked Degraded; the sweep
// always completes (on context cancellation the returned series are
// incomplete and must be discarded — callers check ctx.Err()). With a nil
// plan the numeric output matches SweepRatesParallel exactly (the chaos
// counters then just record one clean attempt per repetition).
// resilientPointObserver is sweepPointObserver's sibling for the
// supervised sweep: it collects final cell outcomes and emits each
// (system, rate) point — resolved exactly like the returned series,
// outlier rejection included — in canonical layout order.
func resilientPointObserver(co ChaosOptions, cfgs []capture.Config, ratesMbit []float64, reps int, cells []Cell, ids []CellID) Observer {
	obs := co.Observer
	ncfg := len(cfgs)
	idxOf := make(map[CellKey]int, len(cells))
	for i := range cells {
		idxOf[cellKey(co.Experiment, cells[i], ids[i])] = i
	}
	colOuts := make([]CellOutcome, len(cells))
	seq := newPointSequencer(len(ratesMbit)*ncfg, reps, func(p int) {
		ri, ci := p/ncfg, p%ncfg
		column := make([]CellOutcome, reps)
		for rep := 0; rep < reps; rep++ {
			column[rep] = colOuts[(ri*reps+rep)*ncfg+ci]
		}
		pt := resolvePoint(cfgs[ci].Name, column, co)
		pt.X = ratesMbit[ri]
		obs.Observe(Event{
			Kind: EventPoint, Experiment: co.Experiment, System: cfgs[ci].Name,
			Point: pointKey(ratesMbit[ri]), X: ratesMbit[ri], Agg: &pt,
		})
	})
	return ObserverFunc(func(ev Event) {
		obs.Observe(ev)
		if (ev.Kind != EventCell && ev.Kind != EventQuarantine) || ev.Outcome == nil {
			return
		}
		i, ok := idxOf[CellKey{Experiment: ev.Experiment, Point: ev.Point, System: ev.System, Rep: ev.Rep}]
		if !ok {
			return
		}
		colOuts[i] = *ev.Outcome
		seq.done((i/(reps*ncfg))*ncfg + i%ncfg)
	})
}

func SweepRatesResilient(ctx context.Context, cfgs []capture.Config, ratesMbit []float64, w Workload, reps, workers int, co ChaosOptions) []Series {
	if reps <= 0 {
		reps = 1
	}
	co = co.withDefaults()
	// Identical cell layout to SweepRatesParallel: column-major, so the
	// systems of one (rate, rep) column share one recorded feed.
	cells, ids := sweepCells(cfgs, ratesMbit, w, reps)
	if co.Observer != nil {
		co.Observer = resilientPointObserver(co, cfgs, ratesMbit, reps, cells, ids)
	}
	outs := RunCellsResilient(ctx, cells, ids, workers, co)

	out := make([]Series, len(cfgs))
	for i, cfg := range cfgs {
		out[i].System = cfg.Name
		out[i].Points = make([]Point, 0, len(ratesMbit))
		for ri, r := range ratesMbit {
			column := make([]CellOutcome, reps)
			for rep := 0; rep < reps; rep++ {
				column[rep] = outs[(ri*reps+rep)*len(cfgs)+i]
			}
			pt := resolvePoint(cfg.Name, column, co)
			pt.X = r
			out[i].Points = append(out[i].Points, pt)
		}
	}
	return out
}

// pointKey fingerprints a sweep point for the fault model.
func pointKey(x float64) uint64 { return uint64(int64(x * 1e3)) }

// resolvePoint folds one point's supervised repetitions into a plotted
// Point: accepted runs pass through the thesis-style outlier rejection
// (median absolute deviation on the capturing rate), the survivors
// aggregate exactly like a clean point, and the chaos counters record what
// the supervisor had to do to get there.
func resolvePoint(system string, column []CellOutcome, co ChaosOptions) Point {
	var accepted []CellOutcome
	var pt Point
	var log []string
	for _, o := range column {
		pt.Attempts += o.Attempts
		if o.Quarantined {
			pt.Quarantined++
		} else {
			accepted = append(accepted, o)
		}
		log = append(log, o.Log...)
	}

	rates := make([]float64, len(accepted))
	for i, o := range accepted {
		rates[i] = o.Stats.CaptureRate()
	}
	// Outlier rejection is part of the chaos supervision: with no fault
	// plan every repetition is trusted, keeping the nil-plan output
	// numerically identical to SweepRatesParallel even when legitimate
	// repetitions spread widely.
	reject := make([]bool, len(rates))
	if co.Plan != nil {
		reject = stats.MADOutliers(rates, co.MADK, co.MADFloor)
	}
	kept := make([]capture.Stats, 0, len(accepted))
	degraded := false
	for i, o := range accepted {
		if reject[i] {
			pt.Rejected++
			log = append(log, fmt.Sprintf("%s:outlier-rejected(%.2f%%)", system, rates[i]))
			continue
		}
		kept = append(kept, o.Stats)
		degraded = degraded || o.Degraded
	}

	agg := aggregatePoint(system, kept)
	agg.Attempts, agg.Quarantined, agg.Rejected = pt.Attempts, pt.Quarantined, pt.Rejected
	agg.Degraded = degraded || len(kept) == 0
	agg.FaultLog = strings.Join(log, "; ")
	return agg
}

// FormatChaos renders the supervisor's per-point bookkeeping — attempts,
// quarantined and outlier-rejected repetitions, degradation, fault log —
// as the `experiment -chaos` companion table of FormatTable.
func FormatChaos(series []Series) string {
	var out strings.Builder
	out.WriteString("# chaos: attempts / quarantined / rejected repetitions per point\n")
	out.WriteString("# x\tsystem\tattempts\tquar\trej\tdegraded\tfaults\n")
	for _, s := range series {
		for _, p := range s.Points {
			deg := "-"
			if p.Degraded {
				deg = "DEGRADED"
			}
			fl := p.FaultLog
			if fl == "" {
				fl = "-"
			}
			fmt.Fprintf(&out, "%.0f\t%s\t%d\t%d\t%d\t%s\t%s\n",
				p.X, s.System, p.Attempts, p.Quarantined, p.Rejected, deg, fl)
		}
	}
	return out.String()
}

// ChaosTotals sums the supervisor bookkeeping over a set of series — the
// one-line summary the CLI prints after a chaos run.
func ChaosTotals(series []Series) (attempts, quarantined, rejected, degraded int) {
	for _, s := range series {
		for _, p := range s.Points {
			attempts += p.Attempts
			quarantined += p.Quarantined
			rejected += p.Rejected
			if p.Degraded {
				degraded++
			}
		}
	}
	return
}
