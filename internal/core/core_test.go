package core

import (
	"strings"
	"testing"

	"repro/internal/capture"
)

func TestSnifferRoster(t *testing.T) {
	s := Sniffers()
	if len(s) != 4 {
		t.Fatalf("%d sniffers, want 4", len(s))
	}
	want := map[string]struct {
		os   capture.OS
		arch string
	}{
		"swan":     {capture.Linux, "AMD Opteron 244"},
		"snipe":    {capture.Linux, "Intel Xeon 3.06"},
		"moorhen":  {capture.FreeBSD, "AMD Opteron 244"},
		"flamingo": {capture.FreeBSD, "Intel Xeon 3.06"},
	}
	for _, cfg := range s {
		w, ok := want[cfg.Name]
		if !ok {
			t.Fatalf("unexpected sniffer %q", cfg.Name)
		}
		if cfg.OS != w.os || cfg.Arch.Name != w.arch {
			t.Fatalf("%s = %v/%s, want %v/%s", cfg.Name, cfg.OS, cfg.Arch.Name, w.os, w.arch)
		}
	}
}

func TestPrepareScaling(t *testing.T) {
	w := Workload{Packets: 100_000} // scale 0.1
	cfg := Swan()
	cfg.BufferBytes = capture.BigLinuxRcvbuf
	p := Prepare(cfg, w)
	if p.BufferBytes != capture.BigLinuxRcvbuf/10 {
		t.Fatalf("buffer = %d, want %d", p.BufferBytes, capture.BigLinuxRcvbuf/10)
	}
	if p.Costs.HousekeepNS != capture.DefaultCosts().HousekeepNS/10 {
		t.Fatalf("housekeeping not scaled: %v", p.Costs.HousekeepNS)
	}
	// Never below the 4 kB floor, never above the 1M-packet original.
	tiny := Prepare(cfg, Workload{Packets: 10})
	if tiny.BufferBytes < 4096 {
		t.Fatalf("buffer scaled below floor: %d", tiny.BufferBytes)
	}
	full := Prepare(cfg, Workload{Packets: 5_000_000})
	if full.BufferBytes != capture.BigLinuxRcvbuf {
		t.Fatalf("oversized run rescaled the buffer: %d", full.BufferBytes)
	}
}

func TestWorkloadGenerator(t *testing.T) {
	g := Workload{Packets: 10, FixedSize: 500, Seed: 3}.Generator()
	p, ok := g.Next()
	if !ok || len(p.Data) != 500 {
		t.Fatalf("fixed-size generator produced %d bytes", len(p.Data))
	}
	g2 := Workload{Packets: 10, Seed: 3}.Generator()
	if !g2.SizeReal() {
		t.Fatal("distribution workload should have PKTSIZE_REAL active")
	}
}

// TestHeadlineOrdering pins the thesis's headline result: "the combination
// of AMD Opterons with FreeBSD outperforms all others, independently of
// running in single or multi processor mode", with flamingo losing the most
// among the FreeBSD systems.
func TestHeadlineOrdering(t *testing.T) {
	w := Workload{Packets: 20000, Seed: 1, TargetRate: 950e6}
	rates := map[string]float64{}
	for _, ncpu := range []int{1, 2} {
		for _, base := range Sniffers() {
			cfg := base
			cfg.NumCPUs = ncpu
			if cfg.OS == capture.Linux {
				cfg.BufferBytes = capture.BigLinuxRcvbuf
			} else {
				cfg.BufferBytes = capture.BigBSDBuffer
			}
			st := RunOnce(cfg, w)
			rates[cfg.Name] = st.CaptureRate()
		}
		if rates["moorhen"] < 98.5 {
			t.Errorf("ncpu=%d: moorhen = %.2f%%, want ≈100%%", ncpu, rates["moorhen"])
		}
		for _, other := range []string{"swan", "snipe", "flamingo"} {
			if rates["moorhen"] < rates[other]-0.5 {
				t.Errorf("ncpu=%d: moorhen (%.2f%%) beaten by %s (%.2f%%)",
					ncpu, rates["moorhen"], other, rates[other])
			}
		}
		if ncpu == 1 && rates["flamingo"] > rates["moorhen"]-5 {
			t.Errorf("single CPU: flamingo (%.2f%%) should lose clearly against moorhen (%.2f%%)",
				rates["flamingo"], rates["moorhen"])
		}
	}
}

// TestBigBuffersHelpLinux pins §6.3.1: larger buffers move the Linux drop
// onset to higher rates ("the data rate where packet drops begin ... can be
// raised from about 225 Mbit/s to about 650 Mbit/s").
func TestBigBuffersHelpLinux(t *testing.T) {
	w := Workload{Packets: 20000, Seed: 1, TargetRate: 450e6}
	def := Swan()
	def.NumCPUs = 1
	stDef := RunOnce(def, w)
	big := def
	big.BufferBytes = capture.BigLinuxRcvbuf
	stBig := RunOnce(big, w)
	if stDef.CaptureRate() >= 99.9 {
		t.Fatalf("default buffers lose nothing at 450 Mbit/s (%.2f%%); onset too late", stDef.CaptureRate())
	}
	if stBig.CaptureRate() < 99.5 {
		t.Fatalf("big buffers still lose at 450 Mbit/s (%.2f%%)", stBig.CaptureRate())
	}
}

// TestDefaultOnsetRegion pins the order of magnitude of the default-buffer
// drop onset (≈225 Mbit/s in the thesis): clearly dropping at 300, still
// nearly complete at 100.
func TestDefaultOnsetRegion(t *testing.T) {
	cfg := Swan()
	cfg.NumCPUs = 1
	lo := RunOnce(cfg, Workload{Packets: 20000, Seed: 1, TargetRate: 100e6})
	hi := RunOnce(cfg, Workload{Packets: 20000, Seed: 1, TargetRate: 300e6})
	if lo.CaptureRate() < 99.5 {
		t.Errorf("default buffers already lose %.2f%% at 100 Mbit/s", 100-lo.CaptureRate())
	}
	if hi.CaptureRate() > 99.5 {
		t.Errorf("default buffers lose nothing at 300 Mbit/s (%.2f%%)", hi.CaptureRate())
	}
}

func TestSweepRatesTableAndDeterminism(t *testing.T) {
	cfgs := []capture.Config{Swan()}
	w := Workload{Packets: 3000, Seed: 9}
	s1 := SweepRates(cfgs, []float64{100, 500}, w, 2)
	s2 := SweepRates(cfgs, []float64{100, 500}, w, 2)
	if len(s1) != 1 || len(s1[0].Points) != 2 {
		t.Fatalf("series shape: %+v", s1)
	}
	for i := range s1[0].Points {
		if s1[0].Points[i] != s2[0].Points[i] {
			t.Fatal("sweep not deterministic")
		}
	}
	p := s1[0].Points[0]
	if p.RateMin > p.Rate || p.Rate > p.RateMax {
		t.Fatalf("aggregation broken: %+v", p)
	}
	tbl := FormatTable("test", s1)
	if !strings.Contains(tbl, "swan:rate%") || !strings.Contains(tbl, "\n100\t") {
		t.Fatalf("table format:\n%s", tbl)
	}
}
