package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestScriptedFaultFires: a scripted fault hits exactly the Nth call of
// its op — not before, not after — and is consumed.
func TestScriptedFaultFires(t *testing.T) {
	dir := t.TempDir()
	f := New(nil)
	f.Script(Fault{Op: OpWrite, N: 2, Err: syscall.ENOSPC})

	file, err := f.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	if _, err := file.Write([]byte("one")); err != nil {
		t.Fatalf("write 1 should pass: %v", err)
	}
	if _, err := file.Write([]byte("two")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2 = %v, want ENOSPC", err)
	}
	if _, err := file.Write([]byte("three")); err != nil {
		t.Fatalf("write 3 should pass (fault consumed): %v", err)
	}
	if f.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", f.Injected())
	}
}

// TestPartialWritePersistsPrefix: a Partial fault really leaves a prefix
// of the buffer in the file — the torn-frame shape — and reports the
// persisted count.
func TestPartialWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	f := New(nil)
	f.Script(Fault{Op: OpWrite, N: 1, Err: syscall.ENOSPC, Partial: 0.5})

	file, err := f.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := file.Write([]byte("0123456789"))
	file.Close()
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if n != 5 {
		t.Fatalf("reported n = %d, want 5", n)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "01234" {
		t.Fatalf("persisted %q, want the 5-byte prefix", data)
	}
}

// TestCrashFreezesFilesystem: after a Crash fault every subsequent
// operation fails with ErrCrashed and the on-disk state is frozen.
func TestCrashFreezesFilesystem(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	f := New(nil)
	f.Script(Fault{Op: OpSync, N: 1, Crash: true})

	file, err := f.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := file.Sync(); err == nil || !f.Crashed() {
		t.Fatalf("sync = %v, crashed = %v; want fault + crash", err, f.Crashed())
	}
	if _, err := file.Write([]byte("more")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v, want ErrCrashed", err)
	}
	if err := file.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash truncate = %v, want ErrCrashed", err)
	}
	if _, err := f.OpenFile(filepath.Join(dir, "y"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v, want ErrCrashed", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "durable" {
		t.Fatalf("on-disk state not frozen: %q", data)
	}
}

// TestPlanDeterministic: two filesystems with the same plan seed inject
// exactly the same fault sequence over the same op sequence; a different
// seed diverges somewhere.
func TestPlanDeterministic(t *testing.T) {
	sequence := func(seed uint64) []string {
		dir := t.TempDir()
		f := New(nil)
		f.Plan = DefaultPlan(seed)
		var faults []string
		f.OnFault = func(op Op, path string, err error) {
			faults = append(faults, op.String()+":"+err.Error())
		}
		file, err := f.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer file.Close()
		for i := 0; i < 200; i++ {
			file.Write([]byte("0123456789abcdef"))
			file.Sync()
		}
		return faults
	}
	a, b, c := sequence(42), sequence(42), sequence(43)
	if len(a) == 0 {
		t.Fatal("seed 42 injected nothing over 400 ops — the plan is inert")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fault %d: %q vs %q", i, a[i], b[i])
		}
	}
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical fault schedules")
		}
	}
}

// TestIsTransient pins the retry classification: disk-full, I/O errors
// and short writes clear on retry; a crashed filesystem never does.
func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{syscall.ENOSPC, true},
		{syscall.EIO, true},
		{io.ErrShortWrite, true},
		{&os.PathError{Op: "write", Path: "x", Err: syscall.ENOSPC}, true},
		{ErrCrashed, false},
		{nil, false},
		{os.ErrNotExist, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
