// Package faultfs is the storage counterpart of the testbed's fault
// model (internal/faults) and the network chaos layer
// (internal/netchaos): an injectable filesystem seam with seeded,
// deterministic fault injection. The durability layer
// (internal/journal) does all of its I/O through the FS interface, so a
// chaos run can make the campaign journal and the dispatch WAL suffer
// the failures real deployments see — disk full (ENOSPC), I/O errors
// (EIO), short writes that persist only a prefix of a frame, and crash
// points between write, sync, and rename — while an ordinary run pays
// nothing but an interface call.
//
// Faults come from two sources that compose:
//
//   - A seeded Plan draws probabilistic faults per operation, keyed by
//     (seed, op, per-op counter) through the same splitmix64 mixing the
//     simulation fault model uses: the fault schedule is a pure function
//     of the seed, so a failing chaos run is replayed exactly by its
//     seed. Plan faults are transient by construction — the next attempt
//     draws a fresh key — which is what makes bounded retry a sound
//     recovery policy.
//   - A scripted Fault list fires on the Nth call of one operation, for
//     regression tests that need a failure at an exact point (the tmp
//     write of WriteFileAtomic, the rename, the directory fsync). A
//     scripted fault can also Crash the filesystem: every later
//     operation fails with ErrCrashed, modeling the process dying with a
//     partial frame on disk.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
)

// File is the subset of *os.File the durability layer uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Chmod(mode os.FileMode) error
}

// FS is the filesystem seam: every operation internal/journal performs.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
}

// OS is the passthrough filesystem: the real one.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)       { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Op identifies one injectable filesystem operation.
type Op int

const (
	OpWrite Op = iota
	OpSync
	OpRename
	OpOpen
	OpTruncate

	NumOps
)

// String returns the short op label used in fault logs and events.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpOpen:
		return "open"
	case OpTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// ErrCrashed is returned by every operation after a scripted Crash
// fault fired: the simulated process is dead, and whatever bytes were
// durable stay exactly as they were.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// Plan is the seeded probabilistic fault mix. The zero Plan injects
// nothing; DefaultPlan returns the -diskchaos mix. Draws are pure
// functions of (Seed, op, per-op counter), so replays are exact and
// every fault is transient: the retry's fresh counter draws a fresh key.
type Plan struct {
	Seed uint64

	PWriteENOSPC float64 // write persists a prefix, fails ENOSPC
	PWriteEIO    float64 // write persists nothing, fails EIO
	PShortWrite  float64 // write persists a prefix, reports io.ErrShortWrite
	PSyncEIO     float64 // fsync fails EIO (data may or may not be durable)
	PRenameEIO   float64 // rename fails EIO, destination untouched

	// ShortFrac is the fraction of the buffer persisted before a partial
	// write failure (ENOSPC, short write).
	ShortFrac float64
}

// DefaultPlan returns the calibrated -diskchaos mix: frequent enough
// that a campaign exercises the repair and retry paths many times,
// transient enough that the bounded append retry always clears it.
func DefaultPlan(seed uint64) *Plan {
	return &Plan{
		Seed:         seed,
		PWriteENOSPC: 0.04,
		PWriteEIO:    0.03,
		PShortWrite:  0.03,
		PSyncEIO:     0.04,
		PRenameEIO:   0.05,
		ShortFrac:    0.5,
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator — the same
// mixer internal/faults uses for its deterministic draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func mix(keys ...uint64) uint64 {
	h := uint64(0x8f1bbcdcbfa53e0b)
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	return h
}

func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

func (p *Plan) roll(prob float64, op Op, n uint64, salt uint64) bool {
	if p == nil || prob <= 0 {
		return false
	}
	return unit(mix(p.Seed, uint64(op), n, salt)) < prob
}

// Fault is one scripted failure: it fires on the Nth call (1-based) of
// Op, counted across the whole FaultFS.
type Fault struct {
	Op Op
	N  int
	// Err is the error returned; nil defaults to EIO.
	Err error
	// Partial, for OpWrite: the fraction of the buffer persisted before
	// the failure (0 = nothing reaches the file).
	Partial float64
	// Crash kills the filesystem after this fault: every subsequent
	// operation fails with ErrCrashed. The on-disk state freezes as-is,
	// which is exactly the crash-point shape recovery must handle.
	Crash bool
}

// FaultFS wraps an inner FS (nil = OS) with seeded and scripted fault
// injection. Safe for concurrent use.
type FaultFS struct {
	// Plan draws probabilistic faults; nil injects only scripted ones.
	Plan *Plan
	// OnFault, when set, observes every injected fault. It must not call
	// back into the FaultFS.
	OnFault func(op Op, path string, err error)

	inner    FS
	mu       sync.Mutex
	script   []Fault
	counts   [NumOps]uint64
	crashed  bool
	injected uint64
}

// New wraps inner (nil = the real filesystem) with fault injection.
func New(inner FS) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner}
}

// Script arms scripted faults; they fire in addition to any Plan draws.
func (f *FaultFS) Script(faults ...Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.script = append(f.script, faults...)
}

// Injected reports how many faults this FS has injected so far.
func (f *FaultFS) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether a scripted Crash fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// fault decides what (if anything) goes wrong with the nth call of op.
// The returned partial is meaningful for OpWrite only.
func (f *FaultFS) fault(op Op, path string, salt uint64) (err error, partial float64) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed, 0
	}
	f.counts[op]++
	n := f.counts[op]
	for i, s := range f.script {
		if s.Op == op && uint64(s.N) == n {
			err = s.Err
			if err == nil {
				err = syscall.EIO
			}
			partial = s.Partial
			if s.Crash {
				f.crashed = true
			}
			f.script = append(f.script[:i], f.script[i+1:]...)
			break
		}
	}
	if err == nil && f.Plan != nil {
		p := f.Plan
		switch op {
		case OpWrite:
			switch {
			case p.roll(p.PWriteENOSPC, op, n, salt):
				err, partial = syscall.ENOSPC, p.ShortFrac
			case p.roll(p.PWriteEIO, op, n, salt+1):
				err = syscall.EIO
			case p.roll(p.PShortWrite, op, n, salt+2):
				err, partial = io.ErrShortWrite, p.ShortFrac
			}
		case OpSync:
			if p.roll(p.PSyncEIO, op, n, salt) {
				err = syscall.EIO
			}
		case OpRename:
			if p.roll(p.PRenameEIO, op, n, salt) {
				err = syscall.EIO
			}
		}
	}
	if err != nil {
		f.injected++
	}
	cb := f.OnFault
	f.mu.Unlock()
	if err != nil && cb != nil {
		cb(op, path, err)
	}
	return err, partial
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err, _ := f.fault(OpOpen, name, 0); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if err, _ := f.fault(OpOpen, name, 0); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.Crashed() {
		return nil, &os.PathError{Op: "read", Path: name, Err: ErrCrashed}
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := f.fault(OpOpen, dir, 0); err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := f.fault(OpRename, newpath, 0); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if f.Crashed() {
		return &os.PathError{Op: "remove", Path: name, Err: ErrCrashed}
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if f.Crashed() {
		return &os.PathError{Op: "mkdir", Path: path, Err: ErrCrashed}
	}
	return f.inner.MkdirAll(path, perm)
}

// faultFile threads every mutating file operation back through the
// FaultFS's fault decision.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Name() string { return ff.inner.Name() }

func (ff *faultFile) Read(p []byte) (int, error) {
	if ff.fs.Crashed() {
		return 0, ErrCrashed
	}
	return ff.inner.Read(p)
}

// Write injects the partial-persistence failures: on ENOSPC and short
// writes a prefix of p really reaches the inner file — the torn-frame
// shape the journal's repair and recovery paths must handle.
func (ff *faultFile) Write(p []byte) (int, error) {
	err, partial := ff.fs.fault(OpWrite, ff.inner.Name(), uint64(len(p)))
	if err != nil {
		n := 0
		if partial > 0 && len(p) > 0 {
			n = int(partial * float64(len(p)))
			if n >= len(p) {
				n = len(p) - 1
			}
			if n > 0 {
				if wn, werr := ff.inner.Write(p[:n]); werr != nil {
					n = wn
				}
			}
		}
		return n, err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if err, _ := ff.fs.fault(OpSync, ff.inner.Name(), 0); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err, _ := ff.fs.fault(OpTruncate, ff.inner.Name(), uint64(size)); err != nil {
		return err
	}
	return ff.inner.Truncate(size)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if ff.fs.Crashed() {
		return 0, ErrCrashed
	}
	return ff.inner.Seek(offset, whence)
}

func (ff *faultFile) Chmod(mode os.FileMode) error {
	if ff.fs.Crashed() {
		return ErrCrashed
	}
	return ff.inner.Chmod(mode)
}

func (ff *faultFile) Close() error {
	// Close is never injected: a crashed filesystem still lets the
	// process release its descriptors, and recovery tests reopen files
	// through a fresh FS anyway.
	return ff.inner.Close()
}

// IsTransient classifies an injected (or real) storage error as worth a
// pause-and-retry: disk full and I/O errors clear, short writes are
// repaired by truncation and retried. A crashed filesystem is final.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, ErrCrashed) {
		return false
	}
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EIO) ||
		errors.Is(err, io.ErrShortWrite)
}
