// Package pktgen reimplements the Linux Kernel Packet Generator together
// with the thesis's packet-size-distribution enhancement (§4.3, §A.2).
//
// The generator is controlled through the same textual command interface
// the kernel module exposes via /proc ("pgset" commands), including the
// three commands the thesis adds:
//
//	dist <precision> <hist_width> <max_pktsize> <num_outliers> <num_bins>
//	outl <size> <cells>
//	hist <size> <cells>
//
// plus `flag PKTSIZE_REAL`, which only takes effect once the entered
// distribution is complete and consistent (the DIST_READY flag).
//
// Packet sizes in distribution mode are IP datagram lengths (the quantity
// createDist counts); the generator adds the 14-byte Ethernet header. In
// classic fixed-size mode, pkt_size is the frame length, matching the
// original module.
package pktgen

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/pkt"
	"repro/internal/sim"
)

// Flag bits (mirroring the module's flag words; only the ones the thesis
// uses are implemented).
const (
	// FlagPktSizeReal activates the packet size distribution (thesis
	// enhancement).
	FlagPktSizeReal = "PKTSIZE_REAL"
)

// Defaults matching the measurement setup (§6.3.2: generated packets carry
// dst IP 192.168.10.12, src IP 192.168.10.100, and a source MAC cycling
// between 00:00:00:00:00:00 and 00:00:00:00:00:02).
var (
	defaultSrcIP  = netip.MustParseAddr("192.168.10.100")
	defaultDstIP  = netip.MustParseAddr("192.168.10.12")
	defaultSrcMAC = pkt.MAC{0, 0, 0, 0, 0, 0}
	defaultDstMAC = pkt.MAC{0x00, 0x0e, 0x0c, 0x01, 0x02, 0x03}
)

// Config is the generator configuration, settable via Pgset or directly.
type Config struct {
	Count       int   // packets per run (0 = unlimited)
	DelayNS     int64 // artificial inter-packet gap
	PktSize     int   // fixed frame size (classic mode)
	SrcIP       netip.Addr
	DstIP       netip.Addr
	SrcMAC      pkt.MAC
	DstMAC      pkt.MAC
	SrcMACCount int // cycle the source MAC over this many addresses
	UDPSrcPort  uint16
	UDPDstPort  uint16
	// UDPSrcPortCount cycles the UDP source port over this many
	// consecutive ports starting at UDPSrcPort (the module's
	// udp_src_min/udp_src_max range). 0 or 1 keeps the fixed port — and
	// the single 5-tuple — of the measurement defaults; larger values
	// give the train genuine flow diversity for flow-level experiments.
	UDPSrcPortCount int

	// LineRate is the medium bit rate (default 1 Gbit/s).
	LineRate float64
	// PerPacketCostNS models the generating host's per-packet kernel cost.
	// gen (dual Athlon MP 2000, Syskonnect) sustained ≈938 Mbit/s with
	// 1500-byte frames and could not exceed roughly 800 kpps with minimum
	// frames, which this default reproduces.
	PerPacketCostNS float64
	// TargetRate, if nonzero, paces packets so the *wire* data rate
	// approaches this many bits/s. This is the sweep knob of Chapter 6;
	// the thesis realizes it with computed inter-packet gaps.
	TargetRate float64
}

// DefaultConfig returns the measurement defaults.
func DefaultConfig() Config {
	return Config{
		Count:           1_000_000, // "1 million packets are generated per run"
		PktSize:         1500,
		SrcIP:           defaultSrcIP,
		DstIP:           defaultDstIP,
		SrcMAC:          defaultSrcMAC,
		DstMAC:          defaultDstMAC,
		SrcMACCount:     3,
		UDPSrcPort:      9,
		UDPDstPort:      9,
		LineRate:        1e9,
		PerPacketCostNS: 1250,
	}
}

// Generator is one pktgen instance ("kernel thread" in module terms).
type Generator struct {
	Config Config

	distParams   dist.Params
	wantOutl     int
	wantHist     int
	outlEntries  []dist.Entry
	histEntries  []dist.Entry
	distribution *dist.Distribution
	distReady    bool
	sizeReal     bool

	rng   *dist.RNG
	seed  uint64
	cache map[cacheKey][]byte

	// Statistics (the thesis's byte-counting change: with variable sizes
	// the byte count can no longer be derived from packets × size).
	Sent      uint64
	SentBytes uint64 // frame bytes (excluding preamble/FCS/IFG)
	WireBytes uint64 // including per-frame wire overhead
	LastTime  sim.Time
}

type cacheKey struct {
	size int
	mac  int
	port int
}

// New creates a generator with the default configuration and a
// deterministic sequence seeded by seed.
func New(seed uint64) *Generator {
	return &Generator{
		Config: DefaultConfig(),
		rng:    dist.NewRNG(seed),
		seed:   seed,
		cache:  make(map[cacheKey][]byte),
	}
}

// Pgset executes one command line of the /proc interface.
func (g *Generator) Pgset(cmd string) error {
	cmd = strings.TrimSpace(cmd)
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return fmt.Errorf("pktgen: empty command")
	}
	arg := strings.TrimSpace(strings.TrimPrefix(cmd, fields[0]))
	switch fields[0] {
	case "count":
		return g.setInt(&g.Config.Count, arg, 0)
	case "delay":
		v, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("pktgen: bad delay %q", arg)
		}
		g.Config.DelayNS = v
		return nil
	case "pkt_size":
		return g.setInt(&g.Config.PktSize, arg, 1)
	case "src_mac_count":
		return g.setInt(&g.Config.SrcMACCount, arg, 1)
	case "dst":
		a, err := netip.ParseAddr(arg)
		if err != nil {
			return fmt.Errorf("pktgen: bad dst %q", arg)
		}
		g.Config.DstIP = a
		return nil
	case "src_min":
		a, err := netip.ParseAddr(arg)
		if err != nil {
			return fmt.Errorf("pktgen: bad src %q", arg)
		}
		g.Config.SrcIP = a
		return nil
	case "dst_mac", "src_mac":
		m, err := parseMAC(arg)
		if err != nil {
			return err
		}
		if fields[0] == "dst_mac" {
			g.Config.DstMAC = m
		} else {
			g.Config.SrcMAC = m
		}
		return nil
	case "udp_src_min":
		var p int
		if err := g.setInt(&p, arg, 0); err != nil {
			return err
		}
		g.Config.UDPSrcPort = uint16(p)
		return nil
	case "udp_src_count":
		// Extension mirroring src_mac_count: cycle the UDP source port
		// over this many ports (the module expresses the same range as
		// udp_src_min/udp_src_max).
		return g.setInt(&g.Config.UDPSrcPortCount, arg, 0)
	case "udp_dst_min":
		var p int
		if err := g.setInt(&p, arg, 0); err != nil {
			return err
		}
		g.Config.UDPDstPort = uint16(p)
		return nil
	case "rate":
		// Extension: target wire rate in Mbit/s (the thesis computes the
		// equivalent delay by hand; this is the same mechanism).
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("pktgen: bad rate %q", arg)
		}
		g.Config.TargetRate = v * 1e6
		return nil
	case "flag":
		return g.setFlag(arg)
	case "dist":
		return g.cmdDist(fields[1:])
	case "outl":
		return g.cmdEntry(fields[1:], true)
	case "hist":
		return g.cmdEntry(fields[1:], false)
	}
	return fmt.Errorf("pktgen: unknown command %q", fields[0])
}

func (g *Generator) setInt(dst *int, arg string, min int) error {
	v, err := strconv.Atoi(arg)
	if err != nil || v < min {
		return fmt.Errorf("pktgen: bad value %q", arg)
	}
	*dst = v
	return nil
}

func (g *Generator) setFlag(name string) error {
	switch name {
	case FlagPktSizeReal:
		// "This will only succeed if the distribution is complete and
		// correct indicated by the DIST_READY flag." (§A.2.2)
		if !g.distReady {
			return fmt.Errorf("pktgen: PKTSIZE_REAL requires a complete distribution (DIST_READY not set)")
		}
		g.sizeReal = true
		return nil
	case "!" + FlagPktSizeReal:
		g.sizeReal = false
		return nil
	}
	return fmt.Errorf("pktgen: unknown flag %q", name)
}

// cmdDist handles `dist ρ σ N nΩ nbin`: reset distribution input state.
func (g *Generator) cmdDist(args []string) error {
	if len(args) != 5 {
		return fmt.Errorf("pktgen: dist wants 5 arguments")
	}
	vals := make([]int, 5)
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil || v < 0 {
			return fmt.Errorf("pktgen: bad dist argument %q", a)
		}
		vals[i] = v
	}
	g.distParams = dist.Params{Precision: vals[0], BinSize: vals[1], MaxSize: vals[2]}
	g.wantOutl, g.wantHist = vals[3], vals[4]
	g.outlEntries, g.histEntries = nil, nil
	g.distReady, g.sizeReal = false, false
	g.distribution = nil
	return g.checkDistComplete()
}

func (g *Generator) cmdEntry(args []string, outlier bool) error {
	if g.wantOutl == 0 && g.wantHist == 0 && g.distribution == nil && g.outlEntries == nil && g.histEntries == nil && g.distParams.Precision == 0 {
		return fmt.Errorf("pktgen: outl/hist before dist")
	}
	if len(args) != 2 {
		return fmt.Errorf("pktgen: outl/hist wants 2 arguments")
	}
	size, err1 := strconv.Atoi(args[0])
	cells, err2 := strconv.Atoi(args[1])
	if err1 != nil || err2 != nil || size < 0 || cells < 0 {
		return fmt.Errorf("pktgen: bad entry %v", args)
	}
	e := dist.Entry{Size: size, Cells: cells}
	if outlier {
		if len(g.outlEntries) >= g.wantOutl {
			return fmt.Errorf("pktgen: too many outl lines (expected %d)", g.wantOutl)
		}
		g.outlEntries = append(g.outlEntries, e)
	} else {
		if len(g.histEntries) >= g.wantHist {
			return fmt.Errorf("pktgen: too many hist lines (expected %d)", g.wantHist)
		}
		g.histEntries = append(g.histEntries, e)
	}
	return g.checkDistComplete()
}

// checkDistComplete is the module's check_dist_complete(): once all
// promised lines have arrived, compute the sampling arrays
// (calculate_ra_arrays()) and raise DIST_READY.
func (g *Generator) checkDistComplete() error {
	if len(g.outlEntries) != g.wantOutl || len(g.histEntries) != g.wantHist {
		return nil
	}
	if g.distParams.Precision == 0 {
		return nil
	}
	d, err := dist.FromEntries(g.distParams, g.outlEntries, g.histEntries)
	if err != nil {
		return err
	}
	g.distribution = d
	g.distReady = true
	return nil
}

// DistReady reports the DIST_READY flag.
func (g *Generator) DistReady() bool { return g.distReady }

// SizeReal reports whether PKTSIZE_REAL is active.
func (g *Generator) SizeReal() bool { return g.sizeReal }

// LoadDistribution installs a prebuilt distribution (the programmatic
// equivalent of feeding the procfs lines) and activates PKTSIZE_REAL.
func (g *Generator) LoadDistribution(d *dist.Distribution) {
	g.distParams = d.Params
	g.outlEntries = append([]dist.Entry(nil), d.Outliers...)
	g.histEntries = append([]dist.Entry(nil), d.Bins...)
	g.wantOutl, g.wantHist = len(d.Outliers), len(d.Bins)
	g.distribution = d
	g.distReady = true
	g.sizeReal = true
}

// Packet is one generated frame with its wire timing.
type Packet struct {
	// At is the time the frame has fully left the generator NIC (its last
	// bit is on the wire).
	At sim.Time
	// Data is the frame (shared across packets of equal size and MAC;
	// receivers must not modify it).
	Data []byte
	// WireLen is the frame length plus preamble/FCS/IFG overhead — the
	// bytes that occupy the medium.
	WireLen int
	// Seq counts generated packets from 0.
	Seq uint64
}

// Reset rewinds the sequence and statistics; the PRNG restarts from the
// seed so a rerun emits the identical packet train (reproducibility
// requirement, §3.2).
func (g *Generator) Reset() {
	g.rng = dist.NewRNG(g.seed)
	g.Sent, g.SentBytes, g.WireBytes = 0, 0, 0
	g.LastTime = 0
}

// nextFrameLen draws the next frame length: mod_cur_pktsize() when
// PKTSIZE_REAL is active, else the fixed pkt_size.
func (g *Generator) nextFrameLen() int {
	if g.sizeReal && g.distribution != nil {
		return g.distribution.Sample(g.rng) + pkt.EthernetHeaderLen
	}
	return g.Config.PktSize
}

// portMix decorrelates the flow sequence from the packet sequence (the
// splitmix64 finalizer). A plain Sent%count round-robin aliases with
// count-based packet samplers — any sampling modulus dividing the flow
// count keeps exactly the same flows on every cycle, which would make a
// uniform packet sampler look flow-aware by accident.
func portMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// frame returns the (cached) frame bytes for a size, MAC and source-port
// index.
func (g *Generator) frame(size, macIdx, portIdx int) []byte {
	key := cacheKey{size, macIdx, portIdx}
	if f, ok := g.cache[key]; ok {
		return f
	}
	mac := g.Config.SrcMAC
	mac[5] += byte(macIdx)
	f := pkt.BuildUDP(nil, pkt.UDPSpec{
		SrcMAC: mac, DstMAC: g.Config.DstMAC,
		SrcIP: g.Config.SrcIP, DstIP: g.Config.DstIP,
		SrcPort: g.Config.UDPSrcPort + uint16(portIdx), DstPort: g.Config.UDPDstPort,
		FrameLen: size,
	})
	g.cache[key] = f
	return f
}

// Next produces the next packet, or ok=false when Count is exhausted.
// Timing: the departure completion time advances by the maximum of the
// wire serialization time, the generator's per-packet cost, the configured
// delay, and the gap implied by TargetRate.
func (g *Generator) Next() (Packet, bool) {
	if g.Config.Count > 0 && g.Sent >= uint64(g.Config.Count) {
		return Packet{}, false
	}
	size := g.nextFrameLen()
	macIdx := 0
	if g.Config.SrcMACCount > 1 {
		macIdx = int(g.Sent % uint64(g.Config.SrcMACCount))
	}
	portIdx := 0
	if g.Config.UDPSrcPortCount > 1 {
		portIdx = int(portMix(g.Sent) % uint64(g.Config.UDPSrcPortCount))
	}
	data := g.frame(size, macIdx, portIdx)
	wire := len(data) + pkt.WireOverhead

	gap := float64(wire) * 8 / g.Config.LineRate * 1e9 // serialization
	if c := g.Config.PerPacketCostNS; c > gap {
		gap = c
	}
	if g.Config.TargetRate > 0 {
		if r := float64(wire) * 8 / g.Config.TargetRate * 1e9; r > gap {
			gap = r
		}
	}
	if d := float64(g.Config.DelayNS); d > 0 {
		gap += d
	}
	g.LastTime += sim.Time(gap + 0.5)

	p := Packet{At: g.LastTime, Data: data, WireLen: wire, Seq: g.Sent}
	g.Sent++
	g.SentBytes += uint64(len(data))
	g.WireBytes += uint64(wire)
	return p, true
}

// AchievedRate returns the wire data rate of the run so far in bits/s.
func (g *Generator) AchievedRate() float64 {
	if g.LastTime == 0 {
		return 0
	}
	return float64(g.WireBytes) * 8 / g.LastTime.Seconds()
}

// FrameRate returns the frame data rate (without wire overhead) in bits/s:
// the quantity the thesis plots on its x axes.
func (g *Generator) FrameRate() float64 {
	if g.LastTime == 0 {
		return 0
	}
	return float64(g.SentBytes) * 8 / g.LastTime.Seconds()
}

func parseMAC(s string) (pkt.MAC, error) {
	var m pkt.MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("pktgen: bad MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("pktgen: bad MAC %q", s)
		}
		m[i] = byte(v)
	}
	return m, nil
}
