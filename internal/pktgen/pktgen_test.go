package pktgen

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/pkt"
	"repro/internal/trace"
)

func loadMWN(t testing.TB, g *Generator) {
	c := trace.MWNCounts(1_000_000)
	d, err := dist.Build(c, dist.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	g.LoadDistribution(d)
}

func TestFixedSizeGeneration(t *testing.T) {
	g := New(1)
	if err := g.Pgset("count 100"); err != nil {
		t.Fatal(err)
	}
	if err := g.Pgset("pkt_size 1000"); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		if len(p.Data) != 1000 {
			t.Fatalf("frame len = %d", len(p.Data))
		}
		if p.WireLen != 1000+pkt.WireOverhead {
			t.Fatalf("wire len = %d", p.WireLen)
		}
		n++
	}
	if n != 100 || g.Sent != 100 {
		t.Fatalf("generated %d packets", n)
	}
	if g.SentBytes != 100*1000 {
		t.Fatalf("byte count = %d", g.SentBytes)
	}
}

func TestLineRateCap(t *testing.T) {
	g := New(1)
	g.Config.Count = 10000
	g.Config.PktSize = 1500
	g.Config.PerPacketCostNS = 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	rate := g.AchievedRate()
	if rate > 1.0001e9 {
		t.Fatalf("achieved %f bits/s, exceeds line rate", rate)
	}
	if rate < 0.99e9 {
		t.Fatalf("achieved %f bits/s, should be ≈ line rate with no extra cost", rate)
	}
	// Frame rate excludes the 24-byte overhead: ≈ 1500/1524 of the line.
	want := 1e9 * 1500 / 1524
	if math.Abs(g.FrameRate()-want)/want > 0.01 {
		t.Fatalf("frame rate = %f, want ≈ %f", g.FrameRate(), want)
	}
}

// TestGenRateSmallPackets pins the generator-host bottleneck: with minimum
// frames the per-packet cost, not the wire, limits throughput (the thesis
// could not reach line rate with small packets on any tool, §4.1).
func TestGenRateSmallPackets(t *testing.T) {
	g := New(1)
	g.Config.Count = 10000
	g.Config.PktSize = 64
	for {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	pps := float64(g.Sent) / g.LastTime.Seconds()
	if pps > 1e9/g.Config.PerPacketCostNS*1.001 {
		t.Fatalf("pps = %f exceeds the per-packet cost bound", pps)
	}
	if g.AchievedRate() > 0.6e9 {
		t.Fatalf("small packets reached %.0f bits/s; must be generator-bound", g.AchievedRate())
	}
}

func TestTargetRatePacing(t *testing.T) {
	g := New(1)
	g.Config.Count = 20000
	g.Config.PktSize = 1500
	if err := g.Pgset("rate 300"); err != nil { // 300 Mbit/s
		t.Fatal(err)
	}
	for {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	rate := g.AchievedRate()
	if math.Abs(rate-300e6)/300e6 > 0.02 {
		t.Fatalf("achieved %.0f, want ≈ 300e6", rate)
	}
}

func TestDistributionViaProcfs(t *testing.T) {
	c := trace.MWNCounts(1_000_000)
	d, err := dist.Build(c, dist.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dist.WriteProcfs(&buf, d, false); err != nil {
		t.Fatal(err)
	}
	g := New(3)
	// PKTSIZE_REAL before the distribution is complete must fail.
	if err := g.Pgset("flag PKTSIZE_REAL"); err == nil {
		t.Fatal("PKTSIZE_REAL accepted without DIST_READY")
	}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if err := g.Pgset(string(line)); err != nil {
			t.Fatalf("pgset %q: %v", line, err)
		}
	}
	if !g.DistReady() {
		t.Fatal("DIST_READY not set after complete distribution")
	}
	if err := g.Pgset("flag PKTSIZE_REAL"); err != nil {
		t.Fatal(err)
	}
	if !g.SizeReal() {
		t.Fatal("PKTSIZE_REAL not active")
	}

	// Generated frame sizes must follow the distribution: IP length + 14.
	g.Config.Count = 50000
	var got dist.Counts
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		s, err := pkt.Parse(p.Data)
		if err != nil || !s.IsUDP {
			t.Fatal("generated frame does not parse as UDP")
		}
		got.Add(int(s.IPv4.Length), 1)
	}
	for _, size := range []int{40, 52, 1500} {
		want := c.Fraction(size)
		have := got.Fraction(size)
		if math.Abs(want-have) > 0.015 {
			t.Errorf("size %d: input %.4f, generated %.4f", size, want, have)
		}
	}
	if math.Abs(got.Mean()-645) > 30 {
		t.Errorf("generated mean = %.1f", got.Mean())
	}
}

func TestReproducibility(t *testing.T) {
	mk := func() []int {
		g := New(42)
		loadMWN(t, g)
		g.Config.Count = 5000
		var sizes []int
		for {
			p, ok := g.Next()
			if !ok {
				break
			}
			sizes = append(sizes, len(p.Data))
		}
		return sizes
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("two runs with the same seed diverged")
		}
	}
	// Reset must also restart the sequence.
	g := New(42)
	loadMWN(t, g)
	g.Config.Count = 100
	var first []int
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		first = append(first, len(p.Data))
	}
	g.Reset()
	for i := 0; ; i++ {
		p, ok := g.Next()
		if !ok {
			break
		}
		if len(p.Data) != first[i] {
			t.Fatal("Reset did not restart the sequence")
		}
	}
}

func TestMACCycling(t *testing.T) {
	g := New(1)
	g.Config.Count = 9
	g.Config.PktSize = 100
	var macs []byte
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		macs = append(macs, p.Data[11]) // last byte of source MAC
	}
	for i, m := range macs {
		if int(m) != i%3 {
			t.Fatalf("macs = %v, want cycle 0,1,2", macs)
		}
	}
}

func TestDistLineSpeed(t *testing.T) {
	// §4.3.1: the enhanced generator reaches (near) line speed with the
	// realistic distribution.
	g := New(5)
	loadMWN(t, g)
	g.Config.Count = 50000
	for {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	if g.AchievedRate() < 0.90e9 {
		t.Fatalf("distribution workload reached only %.0f bits/s", g.AchievedRate())
	}
}

func TestPgsetCommands(t *testing.T) {
	g := New(1)
	cmds := []string{
		"count 500",
		"delay 1000",
		"pkt_size 600",
		"src_mac_count 2",
		"dst 10.1.2.3",
		"src_min 10.9.9.9",
		"dst_mac aa:bb:cc:dd:ee:ff",
		"src_mac 00:00:00:00:00:00",
		"udp_src_min 1234",
		"udp_dst_min 4321",
		"rate 500",
	}
	for _, c := range cmds {
		if err := g.Pgset(c); err != nil {
			t.Fatalf("pgset %q: %v", c, err)
		}
	}
	if g.Config.Count != 500 || g.Config.DelayNS != 1000 || g.Config.PktSize != 600 ||
		g.Config.SrcMACCount != 2 || g.Config.UDPSrcPort != 1234 ||
		g.Config.TargetRate != 500e6 {
		t.Fatalf("config = %+v", g.Config)
	}
	p, ok := g.Next()
	if !ok {
		t.Fatal("no packet")
	}
	s, err := pkt.Parse(p.Data)
	if err != nil || !s.IsUDP {
		t.Fatal("bad frame")
	}
	if s.IPv4.Dst.String() != "10.1.2.3" || s.UDP.DstPort != 4321 {
		t.Fatalf("frame fields = %+v", s)
	}
}

func TestPgsetErrors(t *testing.T) {
	g := New(1)
	bad := []string{
		"",
		"bogus 1",
		"count -1",
		"count x",
		"delay -5",
		"dst notanip",
		"dst_mac 1:2:3",
		"flag NO_SUCH_FLAG",
		"dist 1 2 3",
		"outl 40 10", // before dist
		"rate -1",
	}
	for _, c := range bad {
		if err := g.Pgset(c); err == nil {
			t.Errorf("pgset %q succeeded, want error", c)
		}
	}
}

func TestTooManyEntryLines(t *testing.T) {
	g := New(1)
	if err := g.Pgset("dist 1000 20 1500 1 0"); err != nil {
		t.Fatal(err)
	}
	if err := g.Pgset("outl 40 10"); err != nil {
		t.Fatal(err)
	}
	if !g.DistReady() {
		t.Fatal("distribution should be ready")
	}
	if err := g.Pgset("outl 52 10"); err == nil {
		t.Fatal("extra outl line accepted")
	}
}
