// Package testbed models the complete measurement infrastructure of
// Chapter 3 — not just one system under test, but the whole Figure 3.1
// setup: the workload generator host (gen), the Cisco monitoring switch
// with its SNMP packet counters, the passive optical splitter feeding all
// four sniffers the identical stream, and the control host executing the
// §3.4 measurement cycle:
//
//  1. start the capturing and profiling applications on all sniffers,
//  2. read the switch's SNMP packet counters,
//  3. run the packet generation on gen,
//  4. read the counters again,
//  5. stop the applications and collect their statistics,
//
// repeated several times per data rate "to avoid outliers or unwanted
// influences".
//
// The splitter is realized by replaying the identical deterministic packet
// train into each sniffer's independent simulator — exactly the guarantee
// the optical splitter provides ("their only influence is a reduced signal
// strength", §2.3). The switch counters are the measurement's ground truth
// for the number of generated packets.
package testbed

import (
	"fmt"
	"strings"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/cpuprof"
	"repro/internal/faults"
	"repro/internal/sim"
)

// SNMPCounters mirrors the switch port counters the control host polls
// via SNMP before and after each run (§3.4 steps 2 and 4). Like the real
// ifTable entries (Counter32), they are 32-bit and wrap at 2³² — at
// gigabit packet rates ifInUcastPkts wraps in well under an hour, so the
// delta computation must be wrap-aware.
type SNMPCounters struct {
	InUcastPkts  uint64 // packets received from gen
	InOctets     uint64
	OutUcastPkts uint64 // packets mirrored to the splitter port
	OutOctets    uint64
}

// counterWrap is the modulus of the switch's Counter32 ifTable entries.
const counterWrap = uint64(1) << 32

// CounterDelta returns after − before on a 32-bit wrapping counter. The
// naive uint64 subtraction underflows to ~1.8×10¹⁹ when the counter
// wrapped between the two reads; this accounts for one wrap, which is the
// §3.4 polling discipline (the cycle is far shorter than two wraps).
func CounterDelta(after, before uint64) uint64 {
	if after < before {
		return after + counterWrap - before
	}
	return after - before
}

// CounterDeltaNear returns after − before on a 32-bit wrapping counter
// that may have wrapped MORE than once between the reads, disambiguated
// by an independent expectation (gen's own statistics). At 100 Gbit/s
// the Counter32 octet counters wrap every ~0.34 s — a single cycle spans
// many wraps, so the §3.4 single-wrap discipline undercounts by a
// multiple of 2³². The closest value congruent to the raw delta mod 2³²
// is the true delta as long as the expectation is within 2³¹ of the
// truth, which a per-cycle cross-check always is.
func CounterDeltaNear(after, before, expected uint64) uint64 {
	base := CounterDelta(after, before)
	if expected <= base {
		return base
	}
	k := (expected - base + counterWrap/2) / counterWrap
	return base + k*counterWrap
}

// Switch is the monitoring switch: it counts what gen sends and mirrors it
// to the splitter. The VLAN separation of the control traffic (Figure 3.1)
// means SNMP polling never appears on the measurement port.
type Switch struct {
	counters SNMPCounters
}

// Count registers one forwarded frame. Counters wrap at 2³² like the
// ifTable Counter32 entries they model.
func (sw *Switch) Count(frameLen int) {
	sw.counters.InUcastPkts = (sw.counters.InUcastPkts + 1) % counterWrap
	sw.counters.InOctets = (sw.counters.InOctets + uint64(frameLen)) % counterWrap
	sw.counters.OutUcastPkts = (sw.counters.OutUcastPkts + 1) % counterWrap
	sw.counters.OutOctets = (sw.counters.OutOctets + uint64(frameLen)) % counterWrap
}

// Preload sets the counters to a given state — the fault injector uses it
// to start a cycle just below the 32-bit wrap.
func (sw *Switch) Preload(c SNMPCounters) { sw.counters = c }

// ReadSNMP returns a snapshot of the counters (an SNMP GET of the ifTable
// entries for the data ports).
func (sw *Switch) ReadSNMP() SNMPCounters { return sw.counters }

// SnifferResult is what stop.sh collects from one sniffer after a run.
type SnifferResult struct {
	Name     string
	Stats    capture.Stats
	Usage    []cpuprof.Sample // the cpusage log of the run
	UsageAvg cpuprof.Sample   // trimusage average over the busy window
	// UsageShort marks a truncated cpusage log (the profiling run was cut
	// before the busy window ended — a fault the supervisor retries).
	UsageShort bool
	// Degraded marks a run on a lossy splitter leg: the withheld frames
	// are booked under fault-splitter in Stats.Ledger so the statistics
	// balance, but the capturing rate reflects the impairment.
	Degraded bool
}

// RunResult is one complete measurement cycle iteration.
type RunResult struct {
	Rep             int
	CountersBefore  SNMPCounters
	CountersAfter   SNMPCounters
	GeneratedFrames uint64 // from gen's own statistics
	// GeneratedOctets is the wire byte count from gen's statistics. Zero
	// means "not recorded" (hand-built results) and disables the octet
	// cross-check in Verify.
	GeneratedOctets uint64
	Sniffers        []SnifferResult
	// Expected lists the sniffers that were supposed to report. Empty
	// means "whoever reported" — the legacy behaviour, kept so existing
	// callers that build RunResult by hand verify unchanged.
	Expected []string
}

// GeneratedBySwitch returns the ground-truth packet count for the run,
// accounting for the 32-bit wrap of the switch's ifTable counters.
func (r RunResult) GeneratedBySwitch() uint64 {
	return CounterDelta(r.CountersAfter.OutUcastPkts, r.CountersBefore.OutUcastPkts)
}

// OctetsBySwitch returns the ground-truth wire byte count for the run.
// Unlike the packet counter, the octet counter wraps every ~0.34 s at
// 100 Gbit/s, so the delta needs gen's byte count to disambiguate the
// wrap multiple.
func (r RunResult) OctetsBySwitch() uint64 {
	return CounterDeltaNear(r.CountersAfter.OutOctets, r.CountersBefore.OutOctets, r.GeneratedOctets)
}

// CountMismatchError: the switch's ground truth disagrees with gen's own
// statistics — the generator underran, stalled, or the SNMP read was
// stale.
type CountMismatchError struct {
	Switch, Gen uint64
}

func (e *CountMismatchError) Error() string {
	return fmt.Sprintf("testbed: switch counted %d packets, gen sent %d", e.Switch, e.Gen)
}

// OctetMismatchError: the switch's octet ground truth disagrees with
// gen's byte count even after wrap recovery — bytes went missing on the
// wire, or the counter wrapped further than the expectation can resolve.
type OctetMismatchError struct {
	Switch, Gen uint64
}

func (e *OctetMismatchError) Error() string {
	return fmt.Sprintf("testbed: switch counted %d octets, gen sent %d", e.Switch, e.Gen)
}

// ShortfallError: a sniffer was offered fewer packets than the switch
// forwarded — a degraded splitter leg (unless the loss is booked back
// into the sniffer's ledger, which normalizes its Generated count).
type ShortfallError struct {
	Name          string
	Offered, Want uint64
}

func (e *ShortfallError) Error() string {
	return fmt.Sprintf("testbed: sniffer %s was offered %d packets, want %d",
		e.Name, e.Offered, e.Want)
}

// MissingSnifferError: an expected sniffer reported no statistics at all
// (hung or crashed capture process, dead host).
type MissingSnifferError struct {
	Name string
}

func (e *MissingSnifferError) Error() string {
	return fmt.Sprintf("testbed: sniffer %s reported no statistics", e.Name)
}

// Verify checks the §3.2 requirement that "all generated packets are
// indeed sent over the fiber": gen's statistics must agree with the
// switch counters, every expected sniffer must have reported, and every
// sniffer must have been offered that many packets. Failures come back as
// typed errors (*CountMismatchError, *MissingSnifferError,
// *ShortfallError) so the supervisor can tell fault classes apart.
func (r RunResult) Verify() error {
	if got := r.GeneratedBySwitch(); got != r.GeneratedFrames {
		return &CountMismatchError{Switch: got, Gen: r.GeneratedFrames}
	}
	if r.GeneratedOctets != 0 {
		if got := r.OctetsBySwitch(); got != r.GeneratedOctets {
			return &OctetMismatchError{Switch: got, Gen: r.GeneratedOctets}
		}
	}
	for _, want := range r.Expected {
		found := false
		for _, s := range r.Sniffers {
			if s.Name == want {
				found = true
				break
			}
		}
		if !found {
			return &MissingSnifferError{Name: want}
		}
	}
	for _, s := range r.Sniffers {
		if s.Stats.Generated != r.GeneratedFrames {
			return &ShortfallError{Name: s.Name, Offered: s.Stats.Generated, Want: r.GeneratedFrames}
		}
	}
	return nil
}

// Testbed is the assembled measurement environment.
type Testbed struct {
	Switch   Switch
	Sniffers []capture.Config
	Workload core.Workload
	// ProfileInterval enables cpusage sampling on every sniffer at this
	// (uncompressed) interval; 0 disables profiling.
	ProfileInterval sim.Time
}

// New creates a testbed with the four thesis sniffers and the given
// workload.
func New(w core.Workload) *Testbed {
	return &Testbed{Sniffers: core.Sniffers(), Workload: w}
}

// RunCycle executes the measurement cycle once (one repetition, one data
// rate): counters before, generation into all sniffers, counters after,
// collection. The packet train is drawn once through the switch and
// replayed identically into each sniffer — the splitter.
func (tb *Testbed) RunCycle(rep int) (RunResult, error) {
	res := tb.RunCycleFaults(rep, faults.CycleFaults{})
	if err := res.Verify(); err != nil {
		return res, err
	}
	return res, nil
}

// RunCycleFaults executes one measurement-cycle attempt under an injected
// fault assignment: counter preloads and stale reads on the switch,
// underruns and stalls on gen, hangs/crashes/dead hosts, degraded
// splitter legs and truncated cpusage logs on the sniffers. It does not
// verify — a faulted cycle is expected to fail validation; the supervisor
// calls Verify (plus its own usage checks) and decides between retry,
// quarantine and degraded acceptance. A zero CycleFaults value runs the
// clean cycle.
func (tb *Testbed) RunCycleFaults(rep int, cf faults.CycleFaults) RunResult {
	w := tb.Workload
	w.Seed = tb.Workload.Seed + uint64(rep)*7919

	if cf.WrapPreload {
		// Park the port counters just below the Counter32 wrap so the
		// delta computation is exercised across it — the octet counters
		// too, which at high rates cross the wrap far sooner than the
		// packet counters.
		pre := tb.Switch.ReadSNMP()
		pre.OutUcastPkts = counterWrap - uint64(w.Packets)/2 - 1
		pre.InUcastPkts = pre.OutUcastPkts
		pre.OutOctets = counterWrap - uint64(w.Packets) - 1
		pre.InOctets = pre.OutOctets
		tb.Switch.Preload(pre)
	}

	res := RunResult{Rep: rep, CountersBefore: tb.Switch.ReadSNMP()}

	// The switch port sees the train once, regardless of how many sniffers
	// hang off the splitter. An underrunning (or mid-train stalling)
	// generator puts only a fraction of the train on the fiber — but its
	// own statistics still claim the full train; that lie is what the
	// switch's ground truth exposes.
	counter := w.Generator()
	wire := capture.Source(counter)
	if cf.Underrun > 0 && cf.Underrun < 1 {
		wire = faults.NewTruncatedSource(wire, int(float64(w.Packets)*cf.Underrun))
	}
	sent := uint64(0)
	var octets uint64
	for {
		p, ok := wire.Next()
		if !ok {
			break
		}
		sent++
		octets += uint64(len(p.Data))
		tb.Switch.Count(len(p.Data))
	}
	res.GeneratedFrames = uint64(w.Packets)
	if cf.Underrun <= 0 || cf.Underrun >= 1 {
		res.GeneratedFrames = counter.Sent
	}
	// gen's byte statistics come from the frames it actually put on the
	// wire; an underrunning generator's octet claim shrinks with the train
	// (the frame-count lie above is what the switch exposes).
	res.GeneratedOctets = octets
	res.CountersAfter = tb.Switch.ReadSNMP()
	if cf.StaleSNMP {
		// The post-run SNMP GET returns the pre-run snapshot (agent-side
		// caching): the delta reads zero.
		res.CountersAfter = res.CountersBefore
	}

	for _, cfg := range tb.Sniffers {
		sf := cf.Sniffers[cfg.Name]
		if sf.Failed() {
			// Hung, crashed or dead: stop.sh collects nothing.
			continue
		}
		res.Sniffers = append(res.Sniffers, tb.runSniffer(cfg, w, cf, sf))
	}
	return res
}

func (tb *Testbed) runSniffer(cfg capture.Config, w core.Workload, cf faults.CycleFaults, sf faults.SnifferFaults) SnifferResult {
	prepared := core.Prepare(cfg, w)
	sys := capture.NewSystem(prepared)
	var sampler *cpuprof.Sampler
	if tb.ProfileInterval > 0 {
		scale := float64(w.Packets) / 1_000_000
		if scale > 1 {
			scale = 1
		}
		interval := sim.Time(float64(tb.ProfileInterval) * scale)
		if interval < sim.Time(1) {
			interval = 1
		}
		sampler = cpuprof.Attach(sys, interval)
	}
	// Each sniffer replays the identical train: a fresh generator with the
	// same seed is the splitter's second output leg. Generator faults hit
	// every leg identically; a degraded leg additionally drops frames on
	// this sniffer's fiber only.
	src := capture.Source(w.Generator())
	if cf.Underrun > 0 && cf.Underrun < 1 {
		src = faults.NewTruncatedSource(src, int(float64(w.Packets)*cf.Underrun))
	}
	var lossy *faults.LossySource
	if sf.LegLoss > 0 {
		lossy = faults.NewLossySource(src, sf.LegSeed, sf.LegLoss)
		src = lossy
	}
	st := sys.RunSource(src)
	sr := SnifferResult{Name: cfg.Name, Stats: st}
	if lossy != nil && lossy.Lost > 0 {
		// Book the leg's loss so the sniffer's accounting balances against
		// the switch; the capturing rate keeps the impairment.
		sr.Stats.BookFaultLoss(capture.CauseFaultSplitter, lossy.Lost, lossy.LostBytes, lossy.LastAt)
		sr.Degraded = true
	}
	if sampler != nil {
		samples := sampler.Samples
		if sf.TruncateUsage && len(samples) > 0 {
			// The cpusage log was cut mid-run (full disk, killed logger):
			// only the first half survives.
			samples = samples[:(len(samples)+1)/2]
			sr.UsageShort = true
		}
		sr.Usage = samples
		sr.UsageAvg = cpuprof.Summarize(cpuprof.Trim(samples, 95)).Avg
	}
	return sr
}

// Measurement aggregates several repetitions at one configuration, the way
// super.sh loops ("this procedure is repeated several times", §3.4 — seven
// in the thesis).
type Measurement struct {
	Runs []RunResult
}

// RunMeasurement performs reps full cycles.
func (tb *Testbed) RunMeasurement(reps int) (Measurement, error) {
	if reps <= 0 {
		reps = 1
	}
	var m Measurement
	for rep := 0; rep < reps; rep++ {
		r, err := tb.RunCycle(rep)
		if err != nil {
			return m, err
		}
		m.Runs = append(m.Runs, r)
	}
	return m, nil
}

// CaptureRates returns per-sniffer capture rates (percent) across runs.
func (m Measurement) CaptureRates() map[string][]float64 {
	out := make(map[string][]float64)
	for _, run := range m.Runs {
		for _, s := range run.Sniffers {
			out[s.Name] = append(out[s.Name], s.Stats.CaptureRate())
		}
	}
	return out
}

// Report renders the measurement like the thesis's per-run tables.
func (m Measurement) Report() string {
	var b strings.Builder
	fmt.Fprintln(&b, "# rep\tgenerated(switch)\tsniffer\tcaptured\trate%\tcpu%")
	for _, run := range m.Runs {
		for _, s := range run.Sniffers {
			var captured uint64
			for _, c := range s.Stats.AppCaptured {
				captured += c
			}
			fmt.Fprintf(&b, "%d\t%d\t%s\t%d\t%6.2f\t%6.2f\n",
				run.Rep, run.GeneratedBySwitch(), s.Name, captured,
				s.Stats.CaptureRate(), s.Stats.CPUUsage())
		}
	}
	return b.String()
}
