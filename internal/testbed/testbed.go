// Package testbed models the complete measurement infrastructure of
// Chapter 3 — not just one system under test, but the whole Figure 3.1
// setup: the workload generator host (gen), the Cisco monitoring switch
// with its SNMP packet counters, the passive optical splitter feeding all
// four sniffers the identical stream, and the control host executing the
// §3.4 measurement cycle:
//
//  1. start the capturing and profiling applications on all sniffers,
//  2. read the switch's SNMP packet counters,
//  3. run the packet generation on gen,
//  4. read the counters again,
//  5. stop the applications and collect their statistics,
//
// repeated several times per data rate "to avoid outliers or unwanted
// influences".
//
// The splitter is realized by replaying the identical deterministic packet
// train into each sniffer's independent simulator — exactly the guarantee
// the optical splitter provides ("their only influence is a reduced signal
// strength", §2.3). The switch counters are the measurement's ground truth
// for the number of generated packets.
package testbed

import (
	"fmt"
	"strings"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/cpuprof"
	"repro/internal/sim"
)

// SNMPCounters mirrors the switch port counters the control host polls
// via SNMP before and after each run (§3.4 steps 2 and 4).
type SNMPCounters struct {
	InUcastPkts  uint64 // packets received from gen
	InOctets     uint64
	OutUcastPkts uint64 // packets mirrored to the splitter port
	OutOctets    uint64
}

// Switch is the monitoring switch: it counts what gen sends and mirrors it
// to the splitter. The VLAN separation of the control traffic (Figure 3.1)
// means SNMP polling never appears on the measurement port.
type Switch struct {
	counters SNMPCounters
}

// Count registers one forwarded frame.
func (sw *Switch) Count(frameLen int) {
	sw.counters.InUcastPkts++
	sw.counters.InOctets += uint64(frameLen)
	sw.counters.OutUcastPkts++
	sw.counters.OutOctets += uint64(frameLen)
}

// ReadSNMP returns a snapshot of the counters (an SNMP GET of the ifTable
// entries for the data ports).
func (sw *Switch) ReadSNMP() SNMPCounters { return sw.counters }

// SnifferResult is what stop.sh collects from one sniffer after a run.
type SnifferResult struct {
	Name     string
	Stats    capture.Stats
	Usage    []cpuprof.Sample // the cpusage log of the run
	UsageAvg cpuprof.Sample   // trimusage average over the busy window
}

// RunResult is one complete measurement cycle iteration.
type RunResult struct {
	Rep             int
	CountersBefore  SNMPCounters
	CountersAfter   SNMPCounters
	GeneratedFrames uint64 // from gen's own statistics
	Sniffers        []SnifferResult
}

// GeneratedBySwitch returns the ground-truth packet count for the run.
func (r RunResult) GeneratedBySwitch() uint64 {
	return r.CountersAfter.OutUcastPkts - r.CountersBefore.OutUcastPkts
}

// Verify checks the §3.2 requirement that "all generated packets are
// indeed sent over the fiber": gen's statistics must agree with the
// switch counters, and every sniffer must have been offered that many
// packets.
func (r RunResult) Verify() error {
	if got := r.GeneratedBySwitch(); got != r.GeneratedFrames {
		return fmt.Errorf("testbed: switch counted %d packets, gen sent %d", got, r.GeneratedFrames)
	}
	for _, s := range r.Sniffers {
		if s.Stats.Generated != r.GeneratedFrames {
			return fmt.Errorf("testbed: sniffer %s was offered %d packets, want %d",
				s.Name, s.Stats.Generated, r.GeneratedFrames)
		}
	}
	return nil
}

// Testbed is the assembled measurement environment.
type Testbed struct {
	Switch   Switch
	Sniffers []capture.Config
	Workload core.Workload
	// ProfileInterval enables cpusage sampling on every sniffer at this
	// (uncompressed) interval; 0 disables profiling.
	ProfileInterval sim.Time
}

// New creates a testbed with the four thesis sniffers and the given
// workload.
func New(w core.Workload) *Testbed {
	return &Testbed{Sniffers: core.Sniffers(), Workload: w}
}

// RunCycle executes the measurement cycle once (one repetition, one data
// rate): counters before, generation into all sniffers, counters after,
// collection. The packet train is drawn once through the switch and
// replayed identically into each sniffer — the splitter.
func (tb *Testbed) RunCycle(rep int) (RunResult, error) {
	w := tb.Workload
	w.Seed = tb.Workload.Seed + uint64(rep)*7919

	res := RunResult{Rep: rep, CountersBefore: tb.Switch.ReadSNMP()}

	// The switch port sees the train once, regardless of how many sniffers
	// hang off the splitter.
	counter := w.Generator()
	for {
		p, ok := counter.Next()
		if !ok {
			break
		}
		tb.Switch.Count(len(p.Data))
	}
	res.GeneratedFrames = counter.Sent
	res.CountersAfter = tb.Switch.ReadSNMP()

	for _, cfg := range tb.Sniffers {
		sr, err := tb.runSniffer(cfg, w)
		if err != nil {
			return res, err
		}
		res.Sniffers = append(res.Sniffers, sr)
	}
	if err := res.Verify(); err != nil {
		return res, err
	}
	return res, nil
}

func (tb *Testbed) runSniffer(cfg capture.Config, w core.Workload) (SnifferResult, error) {
	prepared := core.Prepare(cfg, w)
	sys := capture.NewSystem(prepared)
	var sampler *cpuprof.Sampler
	if tb.ProfileInterval > 0 {
		scale := float64(w.Packets) / 1_000_000
		if scale > 1 {
			scale = 1
		}
		interval := sim.Time(float64(tb.ProfileInterval) * scale)
		if interval < sim.Time(1) {
			interval = 1
		}
		sampler = cpuprof.Attach(sys, interval)
	}
	// Each sniffer replays the identical train: a fresh generator with the
	// same seed is the splitter's second output leg.
	st := sys.Run(w.Generator())
	sr := SnifferResult{Name: cfg.Name, Stats: st}
	if sampler != nil {
		sr.Usage = sampler.Samples
		sr.UsageAvg = cpuprof.Summarize(cpuprof.Trim(sampler.Samples, 95)).Avg
	}
	return sr, nil
}

// Measurement aggregates several repetitions at one configuration, the way
// super.sh loops ("this procedure is repeated several times", §3.4 — seven
// in the thesis).
type Measurement struct {
	Runs []RunResult
}

// RunMeasurement performs reps full cycles.
func (tb *Testbed) RunMeasurement(reps int) (Measurement, error) {
	if reps <= 0 {
		reps = 1
	}
	var m Measurement
	for rep := 0; rep < reps; rep++ {
		r, err := tb.RunCycle(rep)
		if err != nil {
			return m, err
		}
		m.Runs = append(m.Runs, r)
	}
	return m, nil
}

// CaptureRates returns per-sniffer capture rates (percent) across runs.
func (m Measurement) CaptureRates() map[string][]float64 {
	out := make(map[string][]float64)
	for _, run := range m.Runs {
		for _, s := range run.Sniffers {
			out[s.Name] = append(out[s.Name], s.Stats.CaptureRate())
		}
	}
	return out
}

// Report renders the measurement like the thesis's per-run tables.
func (m Measurement) Report() string {
	var b strings.Builder
	fmt.Fprintln(&b, "# rep\tgenerated(switch)\tsniffer\tcaptured\trate%\tcpu%")
	for _, run := range m.Runs {
		for _, s := range run.Sniffers {
			var captured uint64
			for _, c := range s.Stats.AppCaptured {
				captured += c
			}
			fmt.Fprintf(&b, "%d\t%d\t%s\t%d\t%6.2f\t%6.2f\n",
				run.Rep, run.GeneratedBySwitch(), s.Name, captured,
				s.Stats.CaptureRate(), s.Stats.CPUUsage())
		}
	}
	return b.String()
}
