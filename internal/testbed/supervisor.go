// Measurement-cycle supervisor: the resilient control host. The plain
// RunMeasurement aborts on the first bad cycle; a week-long measurement
// campaign cannot. The supervisor wraps every §3.4 cycle in validation
// (RunResult.Verify plus the cpusage-log check), retries failed cycles
// with a bounded budget and doubling simulated backoff, quarantines
// repetitions that never validate, declares a sniffer dead after enough
// consecutive silent cycles and continues with the remaining ones, and
// finally applies the thesis-style outlier rejection (median absolute
// deviation on the per-cycle capture rate) across the accepted
// repetitions.
package testbed

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
)

// Supervisor drives resilient measurement campaigns on a testbed.
type Supervisor struct {
	TB *Testbed
	// Plan is the seeded fault model; nil supervises a healthy testbed
	// (validation and retry still active, nothing injected, no outlier
	// rejection).
	Plan *faults.Plan
	// RetryBudget is the number of retries per repetition beyond the first
	// attempt (default 3).
	RetryBudget int
	// BackoffNS is the simulated control-host backoff before the first
	// retry, doubling per further retry (default 250 ms).
	BackoffNS float64
	// MADK and MADFloor parameterize the outlier rejection across accepted
	// repetitions (defaults 3.5 and 0.5 percentage points).
	MADK     float64
	MADFloor float64
	// DeadAfter is the number of consecutive cycles a sniffer may stay
	// silent before the supervisor declares it dead and continues with the
	// remaining sniffers (default 3).
	DeadAfter int
	// Observer, when set, receives the supervisor's decisions live: an
	// EventRetry per failed cycle attempt, an EventSnifferDead when a
	// persistently silent sniffer is struck from the expected set, an
	// EventCell per accepted repetition (one per reporting sniffer, Stats
	// attached), and an EventQuarantine when a repetition exhausts its
	// retry budget. Observation never changes the campaign's outcome.
	Observer core.Observer
}

// ResilientMeasurement is a supervised measurement campaign: the accepted
// repetitions plus the full account of what the supervisor had to do.
type ResilientMeasurement struct {
	// Measurement holds the repetitions that validated and survived the
	// outlier rejection; downstream aggregation works on it unchanged.
	Measurement
	// Attempts is the total number of cycle attempts spent.
	Attempts int
	// Quarantined lists repetition indexes that never produced a valid
	// cycle within the retry budget.
	Quarantined []int
	// Rejected lists repetition indexes the outlier rejection discarded.
	Rejected []int
	// Dead lists sniffers declared dead; their absence is tolerated in
	// every later cycle.
	Dead []string
	// Degraded is set when the accepted data is impaired: a dead sniffer,
	// a lossy splitter leg booked into a run, or a quarantined repetition.
	Degraded bool
	// BackoffNS is the simulated control-host time spent backing off.
	BackoffNS float64
	// Log is the campaign's fault-and-decision history, oldest first.
	Log []string
	// Interrupted is set when the campaign was cut short by context
	// cancellation: the repetitions measured so far are valid, the missing
	// ones were never started (not quarantined), and the outlier rejection
	// still ran over what was accepted.
	Interrupted bool
}

func (s Supervisor) withDefaults() Supervisor {
	if s.RetryBudget <= 0 {
		s.RetryBudget = 3
	}
	if s.BackoffNS <= 0 {
		s.BackoffNS = 250e6
	}
	if s.MADK <= 0 {
		s.MADK = 3.5
	}
	if s.MADFloor <= 0 {
		s.MADFloor = 0.5
	}
	if s.DeadAfter <= 0 {
		s.DeadAfter = 3
	}
	return s
}

// validate applies the cycle acceptance checks: the §3.2 verification
// against the switch's ground truth and expected sniffers, plus — when
// profiling is on — a complete cpusage log from every reporting sniffer.
func (s Supervisor) validate(res RunResult) error {
	if len(res.Sniffers) == 0 {
		return errors.New("testbed: no sniffer reported statistics")
	}
	if err := res.Verify(); err != nil {
		return err
	}
	if s.TB.ProfileInterval > 0 {
		for _, sr := range res.Sniffers {
			if sr.UsageShort || len(sr.Usage) == 0 {
				return fmt.Errorf("testbed: sniffer %s cpusage log truncated", sr.Name)
			}
		}
	}
	return nil
}

// Run executes reps supervised measurement cycles. It always returns: a
// repetition that cannot be measured is quarantined, a persistently silent
// sniffer is declared dead and the campaign continues with the remaining
// ones — graceful degradation instead of an aborted sweep. Cancelling ctx
// stops the campaign between cycles: completed repetitions are kept and
// the result is marked Interrupted; unstarted repetitions are neither
// measured nor quarantined.
func (s Supervisor) Run(ctx context.Context, reps int) ResilientMeasurement {
	if reps <= 0 {
		reps = 1
	}
	s = s.withDefaults()
	var rm ResilientMeasurement
	logf := func(format string, args ...any) {
		rm.Log = append(rm.Log, fmt.Sprintf(format, args...))
	}
	emit := func(ev core.Event) {
		if s.Observer != nil {
			s.Observer.Observe(ev)
		}
	}

	names := make([]string, len(s.TB.Sniffers))
	for i, cfg := range s.TB.Sniffers {
		names[i] = cfg.Name
	}
	// The fault model keys on the measurement point; the workload's target
	// rate is its natural fingerprint.
	point := math.Float64bits(s.TB.Workload.TargetRate)
	dead := make(map[string]bool)
	silent := make(map[string]int) // consecutive cycles without statistics

	for rep := 0; rep < reps; rep++ {
		if ctx.Err() != nil {
			rm.Interrupted = true
			logf("rep%d interrupted: %v", rep, ctx.Err())
			break
		}
		accepted := false
		for attempt := 0; attempt <= s.RetryBudget && ctx.Err() == nil; attempt++ {
			if attempt > 0 {
				rm.BackoffNS += s.BackoffNS * float64(int(1)<<(attempt-1))
			}
			rm.Attempts++
			cf := s.Plan.Cycle(point, rep, attempt, names)
			for _, ev := range cf.Events {
				logf("rep%d.%d %s:%s", rep, attempt, ev.Component, ev.Fault)
			}
			res := s.TB.RunCycleFaults(rep, cf)

			// Dead-sniffer bookkeeping: a sniffer silent for DeadAfter
			// consecutive cycles is struck from the expected set — the
			// campaign continues with the remaining ones.
			reported := make(map[string]bool, len(res.Sniffers))
			for _, sr := range res.Sniffers {
				reported[sr.Name] = true
			}
			for _, n := range names {
				if dead[n] {
					continue
				}
				if reported[n] {
					silent[n] = 0
					continue
				}
				silent[n]++
				if silent[n] >= s.DeadAfter {
					dead[n] = true
					rm.Dead = append(rm.Dead, n)
					rm.Degraded = true
					logf("rep%d.%d %s: declared dead after %d silent cycles; continuing with %d sniffers",
						rep, attempt, n, s.DeadAfter, len(names)-len(rm.Dead))
					emit(core.Event{
						Kind: core.EventSnifferDead, System: n, Point: point,
						Rep: rep, Attempt: attempt,
						Detail: fmt.Sprintf("declared dead after %d silent cycles", s.DeadAfter),
					})
				}
			}
			res.Expected = res.Expected[:0]
			for _, n := range names {
				if !dead[n] {
					res.Expected = append(res.Expected, n)
				}
			}

			if err := s.validate(res); err != nil {
				logf("rep%d.%d retry: %v", rep, attempt, err)
				emit(core.Event{
					Kind: core.EventRetry, Point: point,
					Rep: rep, Attempt: attempt, Detail: err.Error(),
				})
				continue
			}
			for _, sr := range res.Sniffers {
				if sr.Degraded {
					rm.Degraded = true
					logf("rep%d.%d %s: accepted degraded (lossy splitter leg, loss booked)",
						rep, attempt, sr.Name)
				}
			}
			for _, sr := range res.Sniffers {
				st := sr.Stats
				emit(core.Event{
					Kind: core.EventCell, System: sr.Name, Point: point,
					Rep: rep, Attempt: attempt, Stats: &st,
				})
			}
			rm.Runs = append(rm.Runs, res)
			accepted = true
			break
		}
		if !accepted {
			if ctx.Err() != nil {
				// Interrupted mid-repetition: not a quarantine verdict — the
				// retry budget was cut short, not exhausted.
				rm.Interrupted = true
				logf("rep%d interrupted: %v", rep, ctx.Err())
				break
			}
			rm.Quarantined = append(rm.Quarantined, rep)
			rm.Degraded = true
			logf("rep%d quarantined after %d attempts", rep, s.RetryBudget+1)
			emit(core.Event{
				Kind: core.EventQuarantine, Point: point,
				Rep: rep, Attempt: s.RetryBudget,
				Detail: "retry budget exhausted",
			})
		}
	}

	// Outlier rejection across the accepted repetitions, on the per-cycle
	// mean capture rate — only meaningful under a fault plan; a healthy
	// campaign keeps every repetition.
	if s.Plan != nil && len(rm.Runs) >= 3 {
		rates := make([]float64, len(rm.Runs))
		for i, run := range rm.Runs {
			var sum float64
			for _, sr := range run.Sniffers {
				sum += sr.Stats.CaptureRate()
			}
			rates[i] = sum / float64(len(run.Sniffers))
		}
		reject := stats.MADOutliers(rates, s.MADK, s.MADFloor)
		kept := rm.Runs[:0]
		for i, run := range rm.Runs {
			if reject[i] {
				rm.Rejected = append(rm.Rejected, run.Rep)
				logf("rep%d outlier-rejected (mean rate %.2f%%)", run.Rep, rates[i])
				continue
			}
			kept = append(kept, run)
		}
		rm.Runs = kept
	}
	return rm
}
