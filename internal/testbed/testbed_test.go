package testbed

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func small() core.Workload {
	return core.Workload{Packets: 4000, TargetRate: 600e6, Seed: 1}
}

func TestRunCycleVerifies(t *testing.T) {
	tb := New(small())
	res, err := tb.RunCycle(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.GeneratedBySwitch() != 4000 {
		t.Fatalf("switch counted %d", res.GeneratedBySwitch())
	}
	if len(res.Sniffers) != 4 {
		t.Fatalf("%d sniffers", len(res.Sniffers))
	}
	names := map[string]bool{}
	for _, s := range res.Sniffers {
		names[s.Name] = true
		if s.Stats.Generated != 4000 {
			t.Fatalf("%s offered %d packets", s.Name, s.Stats.Generated)
		}
	}
	for _, want := range []string{"swan", "snipe", "moorhen", "flamingo"} {
		if !names[want] {
			t.Fatalf("missing sniffer %s", want)
		}
	}
}

func TestSwitchCountersAccumulate(t *testing.T) {
	tb := New(small())
	if _, err := tb.RunCycle(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.RunCycle(1); err != nil {
		t.Fatal(err)
	}
	c := tb.Switch.ReadSNMP()
	if c.OutUcastPkts != 8000 {
		t.Fatalf("switch total = %d, want 8000 (counters accumulate across runs)", c.OutUcastPkts)
	}
	if c.InOctets == 0 || c.InOctets != c.OutOctets {
		t.Fatalf("octet counters = %+v", c)
	}
}

func TestSplitterDeliversIdenticalTrains(t *testing.T) {
	// All sniffers must be offered the exact same packet count — and two
	// full cycles with the same rep must reproduce identical capture
	// results (determinism through the whole testbed).
	tb1 := New(small())
	r1, err := tb1.RunCycle(0)
	if err != nil {
		t.Fatal(err)
	}
	tb2 := New(small())
	r2, err := tb2.RunCycle(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Sniffers {
		a, b := r1.Sniffers[i], r2.Sniffers[i]
		if a.Stats.CaptureRate() != b.Stats.CaptureRate() ||
			a.Stats.BusyTime != b.Stats.BusyTime {
			t.Fatalf("sniffer %s not reproducible", a.Name)
		}
	}
}

func TestRepetitionsUseDistinctSeeds(t *testing.T) {
	tb := New(small())
	m, err := tb.RunMeasurement(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 2 {
		t.Fatalf("%d runs", len(m.Runs))
	}
	// Different seeds ⇒ (almost surely) different busy times somewhere.
	same := true
	for i, s := range m.Runs[0].Sniffers {
		if s.Stats.BusyTime != m.Runs[1].Sniffers[i].Stats.BusyTime {
			same = false
		}
	}
	if same {
		t.Fatal("both repetitions produced identical busy times; seeds not varied")
	}
}

func TestProfilingCollectsSamples(t *testing.T) {
	tb := New(small())
	tb.ProfileInterval = 500 * sim.Millisecond
	res, err := tb.RunCycle(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sniffers {
		if len(s.Usage) == 0 {
			t.Fatalf("%s: no cpusage samples", s.Name)
		}
		if s.UsageAvg.Idle < 0 || s.UsageAvg.Idle > 100 {
			t.Fatalf("%s: implausible trimmed idle %f", s.Name, s.UsageAvg.Idle)
		}
	}
}

func TestReportAndRates(t *testing.T) {
	tb := New(small())
	m, err := tb.RunMeasurement(1)
	if err != nil {
		t.Fatal(err)
	}
	rates := m.CaptureRates()
	if len(rates) != 4 || len(rates["moorhen"]) != 1 {
		t.Fatalf("rates = %v", rates)
	}
	if rates["moorhen"][0] < 99 {
		t.Fatalf("moorhen = %.2f%% at 600 Mbit/s", rates["moorhen"][0])
	}
	rep := m.Report()
	for _, want := range []string{"swan", "moorhen", "# rep"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestVerifyCatchesMismatch(t *testing.T) {
	r := RunResult{GeneratedFrames: 10}
	r.CountersAfter.OutUcastPkts = 9
	if err := r.Verify(); err == nil {
		t.Fatal("verification accepted counter mismatch")
	}
}
