package testbed

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func small() core.Workload {
	return core.Workload{Packets: 4000, TargetRate: 600e6, Seed: 1}
}

// wrapOnly injects only the SNMP counter preload: the switch starts the
// cycle just below the 32-bit wrap.
func wrapOnly() faults.CycleFaults {
	return faults.CycleFaults{WrapPreload: true}
}

func TestRunCycleVerifies(t *testing.T) {
	tb := New(small())
	res, err := tb.RunCycle(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.GeneratedBySwitch() != 4000 {
		t.Fatalf("switch counted %d", res.GeneratedBySwitch())
	}
	if len(res.Sniffers) != 4 {
		t.Fatalf("%d sniffers", len(res.Sniffers))
	}
	names := map[string]bool{}
	for _, s := range res.Sniffers {
		names[s.Name] = true
		if s.Stats.Generated != 4000 {
			t.Fatalf("%s offered %d packets", s.Name, s.Stats.Generated)
		}
	}
	for _, want := range []string{"swan", "snipe", "moorhen", "flamingo"} {
		if !names[want] {
			t.Fatalf("missing sniffer %s", want)
		}
	}
}

func TestSwitchCountersAccumulate(t *testing.T) {
	tb := New(small())
	if _, err := tb.RunCycle(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.RunCycle(1); err != nil {
		t.Fatal(err)
	}
	c := tb.Switch.ReadSNMP()
	if c.OutUcastPkts != 8000 {
		t.Fatalf("switch total = %d, want 8000 (counters accumulate across runs)", c.OutUcastPkts)
	}
	if c.InOctets == 0 || c.InOctets != c.OutOctets {
		t.Fatalf("octet counters = %+v", c)
	}
}

func TestSplitterDeliversIdenticalTrains(t *testing.T) {
	// All sniffers must be offered the exact same packet count — and two
	// full cycles with the same rep must reproduce identical capture
	// results (determinism through the whole testbed).
	tb1 := New(small())
	r1, err := tb1.RunCycle(0)
	if err != nil {
		t.Fatal(err)
	}
	tb2 := New(small())
	r2, err := tb2.RunCycle(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Sniffers {
		a, b := r1.Sniffers[i], r2.Sniffers[i]
		if a.Stats.CaptureRate() != b.Stats.CaptureRate() ||
			a.Stats.BusyTime != b.Stats.BusyTime {
			t.Fatalf("sniffer %s not reproducible", a.Name)
		}
	}
}

func TestRepetitionsUseDistinctSeeds(t *testing.T) {
	tb := New(small())
	m, err := tb.RunMeasurement(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 2 {
		t.Fatalf("%d runs", len(m.Runs))
	}
	// Different seeds ⇒ (almost surely) different busy times somewhere.
	same := true
	for i, s := range m.Runs[0].Sniffers {
		if s.Stats.BusyTime != m.Runs[1].Sniffers[i].Stats.BusyTime {
			same = false
		}
	}
	if same {
		t.Fatal("both repetitions produced identical busy times; seeds not varied")
	}
}

func TestProfilingCollectsSamples(t *testing.T) {
	tb := New(small())
	tb.ProfileInterval = 500 * sim.Millisecond
	res, err := tb.RunCycle(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sniffers {
		if len(s.Usage) == 0 {
			t.Fatalf("%s: no cpusage samples", s.Name)
		}
		if s.UsageAvg.Idle < 0 || s.UsageAvg.Idle > 100 {
			t.Fatalf("%s: implausible trimmed idle %f", s.Name, s.UsageAvg.Idle)
		}
	}
}

func TestReportAndRates(t *testing.T) {
	tb := New(small())
	m, err := tb.RunMeasurement(1)
	if err != nil {
		t.Fatal(err)
	}
	rates := m.CaptureRates()
	if len(rates) != 4 || len(rates["moorhen"]) != 1 {
		t.Fatalf("rates = %v", rates)
	}
	if rates["moorhen"][0] < 99 {
		t.Fatalf("moorhen = %.2f%% at 600 Mbit/s", rates["moorhen"][0])
	}
	rep := m.Report()
	for _, want := range []string{"swan", "moorhen", "# rep"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestVerifyCatchesMismatch(t *testing.T) {
	r := RunResult{GeneratedFrames: 10}
	r.CountersAfter.OutUcastPkts = 9
	if err := r.Verify(); err == nil {
		t.Fatal("verification accepted counter mismatch")
	}
}

// TestCounterDeltaSingleWrap pins the exact single-wrap boundary: a read
// just below 2^32 followed by one just above must produce the true delta,
// and the off-by-one cases around the boundary must too.
func TestCounterDeltaSingleWrap(t *testing.T) {
	wrap := uint64(1) << 32
	cases := []struct {
		before, after, want uint64
	}{
		{wrap - 1, 0, 1},           // lands exactly on the wrap
		{wrap - 1, wrap - 1, 0},    // no movement at the edge
		{wrap - 100, 50, 150},      // crosses it mid-delta
		{0, wrap - 1, wrap - 1},    // full range, no wrap
		{123, 456, 333},            // plain case
	}
	for _, c := range cases {
		if got := CounterDelta(c.after%wrap, c.before%wrap); got != c.want {
			t.Errorf("CounterDelta(%d, %d) = %d, want %d", c.after, c.before, got, c.want)
		}
	}
}

// TestCounterDeltaNearMultiWrap pins the 100G regression: the Counter32
// octet counter wraps every ~0.34 s at line rate, so a cycle's delta can
// span many wraps; CounterDeltaNear must recover the true delta from
// gen's expectation while CounterDelta (single-wrap discipline)
// undercounts by a multiple of 2^32.
func TestCounterDeltaNearMultiWrap(t *testing.T) {
	wrap := uint64(1) << 32
	// ~12.5 GB on the wire — one second at 100 Gbit/s, Counter32 wraps
	// twice and lands mid-range.
	truth := 2*wrap + 123456789
	before := uint64(987654)
	after := (before + truth) % wrap
	if got := CounterDelta(after, before); got == truth {
		t.Fatal("single-wrap delta cannot represent a multi-wrap interval; test is vacuous")
	}
	for _, errOff := range []int64{0, -1000000, 1000000, 1 << 30, -(1 << 30)} {
		expected := uint64(int64(truth) + errOff)
		if got := CounterDeltaNear(after, before, expected); got != truth {
			t.Errorf("CounterDeltaNear(expected=truth%+d) = %d, want %d", errOff, got, truth)
		}
	}
	// Exact values and sub-wrap cases degrade to CounterDelta.
	if got := CounterDeltaNear(500, 100, 400); got != 400 {
		t.Errorf("sub-wrap CounterDeltaNear = %d, want 400", got)
	}
	if got := CounterDeltaNear(50, wrap-50, 100); got != 100 {
		t.Errorf("single-wrap CounterDeltaNear = %d, want 100", got)
	}
}

// TestOctetVerifyAcrossWrap runs a full cycle with the counters parked
// just below the Counter32 wrap: both the packet and octet deltas cross
// the boundary and Verify must still pass.
func TestOctetVerifyAcrossWrap(t *testing.T) {
	tb := New(small())
	res := tb.RunCycleFaults(0, wrapOnly())
	if res.GeneratedOctets == 0 {
		t.Fatal("cycle did not record gen's octet count")
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("wrap-crossing cycle failed verification: %v", err)
	}
	if res.OctetsBySwitch() != res.GeneratedOctets {
		t.Fatalf("octet ground truth %d != gen %d", res.OctetsBySwitch(), res.GeneratedOctets)
	}
}

// TestOctetVerifyCatchesLoss: octets missing on the wire surface as a
// typed OctetMismatchError once frames happen to agree.
func TestOctetVerifyCatchesLoss(t *testing.T) {
	tb := New(small())
	res := tb.RunCycleFaults(0, wrapOnly())
	res.GeneratedOctets += 1000 // gen claims more bytes than the switch saw
	err := res.Verify()
	if err == nil {
		t.Fatal("octet mismatch accepted")
	}
	if _, ok := err.(*OctetMismatchError); !ok {
		t.Fatalf("want *OctetMismatchError, got %T: %v", err, err)
	}
	// Hand-built results (no octet statistics) keep verifying as before.
	res.GeneratedOctets = 0
	if err := res.Verify(); err != nil {
		t.Fatalf("octet check not gated on GeneratedOctets: %v", err)
	}
}
