package testbed

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/capture"
	"repro/internal/faults"
	"repro/internal/sim"
)

// TestFaultCounterWrapDelta is the regression test for the uint64
// underflow in GeneratedBySwitch: with the switch's Counter32 entries
// wrapping between the two SNMP reads, the naive subtraction returned
// ~1.8×10¹⁹ instead of the true delta.
func TestFaultCounterWrapDelta(t *testing.T) {
	if d := CounterDelta(100, (uint64(1)<<32)-50); d != 150 {
		t.Fatalf("wrapped delta = %d, want 150", d)
	}
	if d := CounterDelta(500, 200); d != 300 {
		t.Fatalf("plain delta = %d, want 300", d)
	}
	var r RunResult
	r.CountersBefore.OutUcastPkts = (uint64(1) << 32) - 1000
	r.CountersAfter.OutUcastPkts = 3000
	if got := r.GeneratedBySwitch(); got != 4000 {
		t.Fatalf("GeneratedBySwitch across the wrap = %d, want 4000", got)
	}

	// End to end: preload the switch just below the wrap, run a full
	// cycle, and the verification must still hold.
	tb := New(small())
	tb.Switch.Preload(SNMPCounters{
		InUcastPkts: (uint64(1) << 32) - 2000, OutUcastPkts: (uint64(1) << 32) - 2000,
	})
	res, err := tb.RunCycle(0)
	if err != nil {
		t.Fatalf("wrapped cycle failed verification: %v", err)
	}
	if res.GeneratedBySwitch() != 4000 {
		t.Fatalf("wrapped cycle counted %d", res.GeneratedBySwitch())
	}
	if res.CountersAfter.OutUcastPkts >= uint64(1)<<32 {
		t.Fatalf("switch counter exceeded Counter32: %d", res.CountersAfter.OutUcastPkts)
	}
}

// TestFaultVerifyErrorPaths covers the typed validation failures.
func TestFaultVerifyErrorPaths(t *testing.T) {
	// Switch/gen mismatch.
	r := RunResult{GeneratedFrames: 10}
	r.CountersAfter.OutUcastPkts = 9
	var cm *CountMismatchError
	if err := r.Verify(); !errors.As(err, &cm) || cm.Switch != 9 || cm.Gen != 10 {
		t.Fatalf("count mismatch: %v", err)
	}

	// Sniffer offered fewer packets than the switch forwarded.
	r = RunResult{GeneratedFrames: 10}
	r.CountersAfter.OutUcastPkts = 10
	sr := SnifferResult{Name: "swan"}
	sr.Stats.Generated = 7
	r.Sniffers = []SnifferResult{sr}
	var sh *ShortfallError
	if err := r.Verify(); !errors.As(err, &sh) || sh.Name != "swan" || sh.Offered != 7 {
		t.Fatalf("shortfall: %v", err)
	}

	// Expected sniffer missing entirely.
	r.Sniffers[0].Stats.Generated = 10
	r.Expected = []string{"swan", "moorhen"}
	var ms *MissingSnifferError
	if err := r.Verify(); !errors.As(err, &ms) || ms.Name != "moorhen" {
		t.Fatalf("missing sniffer: %v", err)
	}

	// Backward compatible: no Expected list, whoever reported is checked.
	r.Expected = nil
	if err := r.Verify(); err != nil {
		t.Fatalf("legacy verify failed: %v", err)
	}
}

// TestChaosSupervisorCleanPlan: with no fault plan the supervisor is a
// pass-through — every repetition accepted on the first attempt, nothing
// quarantined or rejected, same runs as RunMeasurement.
func TestChaosSupervisorCleanPlan(t *testing.T) {
	tb := New(small())
	rm := Supervisor{TB: tb}.Run(context.Background(), 2)
	if len(rm.Runs) != 2 || rm.Attempts != 2 || rm.Degraded ||
		len(rm.Quarantined) != 0 || len(rm.Rejected) != 0 || len(rm.Dead) != 0 {
		t.Fatalf("clean supervision dirty: %+v", rm)
	}
	plain, err := New(small()).RunMeasurement(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Runs {
		a, b := rm.Runs[i].Sniffers, plain.Runs[i].Sniffers
		for j := range a {
			if a[j].Stats.CaptureRate() != b[j].Stats.CaptureRate() {
				t.Fatalf("rep %d sniffer %s differs from plain measurement", i, a[j].Name)
			}
		}
	}
}

// TestChaosSupervisorRetriesTransientFaults: stale SNMP reads fail
// validation and clear on retry; the campaign accepts every repetition.
func TestChaosSupervisorRetriesTransientFaults(t *testing.T) {
	w := small()
	point := math.Float64bits(w.TargetRate)
	// Pick a seed where rep 0 draws a stale read on attempt 0 but not on
	// every attempt — the retry must actually clear it.
	var plan *faults.Plan
	for seed := uint64(1); seed < 200; seed++ {
		p := &faults.Plan{Seed: seed, PStale: 0.5}
		if p.Stale(point, 0, 0) && !p.Stale(point, 0, 1) {
			plan = p
			break
		}
	}
	if plan == nil {
		t.Fatal("no seed with a clearing stale fault in 200 tries")
	}
	tb := New(w)
	rm := Supervisor{TB: tb, Plan: plan}.Run(context.Background(), 1)
	if len(rm.Runs) != 1 || len(rm.Quarantined) != 0 {
		t.Fatalf("transient fault not recovered: %+v", rm.Log)
	}
	if rm.Attempts < 2 || rm.BackoffNS <= 0 {
		t.Fatalf("retry not exercised: attempts=%d backoff=%g", rm.Attempts, rm.BackoffNS)
	}
	joined := strings.Join(rm.Log, "\n")
	if !strings.Contains(joined, "snmp-stale") {
		t.Fatalf("stale fault not logged:\n%s", joined)
	}
}

// TestChaosSupervisorDeadSnifferGraceful: a persistently dead sniffer is
// declared dead after DeadAfter silent cycles and the campaign continues
// with the remaining three — degraded, not aborted.
func TestChaosSupervisorDeadSnifferGraceful(t *testing.T) {
	w := small()
	point := math.Float64bits(w.TargetRate)
	names := []string{"swan", "snipe", "moorhen", "flamingo"}
	var plan *faults.Plan
	var victim string
	for seed := uint64(1); seed < 500; seed++ {
		p := &faults.Plan{Seed: seed, PDead: 0.3}
		var deadNames []string
		for _, n := range names {
			if p.Sniffer(n, point, 0, 0).Dead {
				deadNames = append(deadNames, n)
			}
		}
		if len(deadNames) == 1 {
			plan, victim = p, deadNames[0]
			break
		}
	}
	if plan == nil {
		t.Fatal("no seed with exactly one dead sniffer in 500 tries")
	}
	tb := New(w)
	rm := Supervisor{TB: tb, Plan: plan}.Run(context.Background(), 3)
	if len(rm.Dead) != 1 || rm.Dead[0] != victim {
		t.Fatalf("dead = %v, want [%s]\n%s", rm.Dead, victim, strings.Join(rm.Log, "\n"))
	}
	if !rm.Degraded {
		t.Fatal("dead sniffer did not mark the campaign degraded")
	}
	if len(rm.Runs) != 3 {
		t.Fatalf("campaign lost repetitions: %d accepted of 3\n%s",
			len(rm.Runs), strings.Join(rm.Log, "\n"))
	}
	for _, run := range rm.Runs {
		if len(run.Sniffers) != 3 {
			t.Fatalf("rep %d has %d sniffers, want the 3 survivors", run.Rep, len(run.Sniffers))
		}
		for _, sr := range run.Sniffers {
			if sr.Name == victim {
				t.Fatalf("dead sniffer %s reported statistics", victim)
			}
		}
	}
	// Aggregation over the degraded campaign still works (satellite: a
	// missing sniffer must not break Measurement).
	rates := rm.CaptureRates()
	if len(rates) != 3 || len(rates[victim]) != 0 {
		t.Fatalf("rates over degraded campaign: %v", rates)
	}
	if rep := rm.Report(); !strings.Contains(rep, "# rep") {
		t.Fatalf("report failed:\n%s", rep)
	}
}

// TestChaosSupervisorQuarantinesPersistentUnderrun: a generator that
// underruns on every attempt can never validate; the repetitions are
// quarantined and the campaign still completes.
func TestChaosSupervisorQuarantinesPersistentUnderrun(t *testing.T) {
	tb := New(small())
	plan := &faults.Plan{Seed: 5, PUnderrun: 1, UnderrunFrac: 0.7}
	rm := Supervisor{TB: tb, Plan: plan, RetryBudget: 2}.Run(context.Background(), 2)
	if len(rm.Runs) != 0 || len(rm.Quarantined) != 2 {
		t.Fatalf("persistent underrun not quarantined: %+v", rm.Quarantined)
	}
	if rm.Attempts != 6 {
		t.Fatalf("attempts = %d, want 2 reps × (budget 2 + 1)", rm.Attempts)
	}
	if !rm.Degraded {
		t.Fatal("quarantined campaign not marked degraded")
	}
	joined := strings.Join(rm.Log, "\n")
	if !strings.Contains(joined, "gen-underrun") || !strings.Contains(joined, "quarantined") {
		t.Fatalf("underrun/quarantine not logged:\n%s", joined)
	}
}

// TestChaosSupervisorUsageTruncationRetries: with profiling on, a
// truncated cpusage log fails validation.
func TestChaosSupervisorUsageTruncationRetries(t *testing.T) {
	tb := New(small())
	tb.ProfileInterval = 500 * sim.Millisecond
	plan := &faults.Plan{Seed: 7, PTruncUsage: 1}
	rm := Supervisor{TB: tb, Plan: plan, RetryBudget: 1}.Run(context.Background(), 1)
	if len(rm.Quarantined) != 1 {
		t.Fatalf("always-truncated usage log not quarantined: %+v", rm.Log)
	}
	if !strings.Contains(strings.Join(rm.Log, "\n"), "cpusage log truncated") {
		t.Fatalf("truncation not logged:\n%s", strings.Join(rm.Log, "\n"))
	}
}

// TestChaosSupervisorLegLossAcceptedDegraded: a lossy splitter leg cannot
// heal on retry; the run is accepted degraded with the loss booked under
// fault-splitter, and packet conservation holds.
func TestChaosSupervisorLegLossAcceptedDegraded(t *testing.T) {
	tb := New(small())
	plan := &faults.Plan{Seed: 9, PLegLoss: 1, LegLossRatio: 0.05}
	rm := Supervisor{TB: tb, Plan: plan}.Run(context.Background(), 1)
	if len(rm.Runs) != 1 {
		t.Fatalf("lossy-leg rep not accepted: %+v", rm.Log)
	}
	if !rm.Degraded {
		t.Fatal("lossy leg did not mark the campaign degraded")
	}
	for _, sr := range rm.Runs[0].Sniffers {
		if !sr.Degraded {
			t.Fatalf("%s: not marked degraded under PLegLoss=1", sr.Name)
		}
		if sr.Stats.Ledger.Drops[capture.CauseFaultSplitter].Packets == 0 {
			t.Fatalf("%s: leg loss not booked under fault-splitter", sr.Name)
		}
		if err := sr.Stats.CheckConservation(); err != nil {
			t.Fatalf("%s: conservation broken: %v", sr.Name, err)
		}
		if sr.Stats.Generated != rm.Runs[0].GeneratedFrames {
			t.Fatalf("%s: Generated %d not normalized to %d",
				sr.Name, sr.Stats.Generated, rm.Runs[0].GeneratedFrames)
		}
	}
}

// TestChaosSupervisorMADRejectsOutlierRep: a single repetition on a badly
// lossy leg is accepted degraded but thrown out by the outlier rejection
// across repetitions.
func TestChaosSupervisorMADRejectsOutlierRep(t *testing.T) {
	w := small()
	point := math.Float64bits(w.TargetRate)
	var plan *faults.Plan
	badRep := -1
	for seed := uint64(1); seed < 1000; seed++ {
		p := &faults.Plan{Seed: seed, PLegLoss: 0.2, LegLossRatio: 0.4}
		var lossy []int
		for rep := 0; rep < 4; rep++ {
			if p.Sniffer("swan", point, rep, 0).LegLoss > 0 {
				lossy = append(lossy, rep)
			}
		}
		if len(lossy) == 1 {
			plan, badRep = p, lossy[0]
			break
		}
	}
	if plan == nil {
		t.Fatal("no seed with exactly one lossy repetition in 1000 tries")
	}
	tb := New(w)
	tb.Sniffers = tb.Sniffers[:1] // swan only: the rep mean is swan's rate
	rm := Supervisor{TB: tb, Plan: plan}.Run(context.Background(), 4)
	if len(rm.Rejected) != 1 || rm.Rejected[0] != badRep {
		t.Fatalf("rejected = %v, want [%d]\n%s", rm.Rejected, badRep, strings.Join(rm.Log, "\n"))
	}
	if len(rm.Runs) != 3 {
		t.Fatalf("accepted %d runs, want 3", len(rm.Runs))
	}
	for _, run := range rm.Runs {
		if run.Rep == badRep {
			t.Fatal("rejected repetition still in the accepted set")
		}
	}
}

// TestFaultMeasurementAggregationHandlesMissingSniffer: hand-built
// degraded measurements (one run missing a sniffer) aggregate without
// panics or phantom entries.
func TestFaultMeasurementAggregationHandlesMissingSniffer(t *testing.T) {
	mk := func(name string, rate float64) SnifferResult {
		sr := SnifferResult{Name: name}
		sr.Stats.Generated = 100
		sr.Stats.AppCaptured = []uint64{uint64(rate)}
		return sr
	}
	m := Measurement{Runs: []RunResult{
		{Rep: 0, Sniffers: []SnifferResult{mk("swan", 90), mk("moorhen", 95)}},
		{Rep: 1, Sniffers: []SnifferResult{mk("swan", 91)}}, // moorhen missing
	}}
	rates := m.CaptureRates()
	if len(rates["swan"]) != 2 || len(rates["moorhen"]) != 1 {
		t.Fatalf("rates = %v", rates)
	}
	rep := m.Report()
	if strings.Count(rep, "swan") != 2 || strings.Count(rep, "moorhen") != 1 {
		t.Fatalf("report rows wrong:\n%s", rep)
	}
}

// countdownCtx is a deterministic mid-campaign interrupt: Err returns nil
// for the first n calls, context.Canceled after.
type countdownCtx struct {
	context.Context
	n int
}

func (c *countdownCtx) Err() error {
	if c.n > 0 {
		c.n--
		return nil
	}
	return context.Canceled
}

// TestChaosSupervisorInterrupted: cancelling the context stops the
// campaign between cycles — completed repetitions are kept, unstarted ones
// are neither measured nor quarantined, and the result says Interrupted.
func TestChaosSupervisorInterrupted(t *testing.T) {
	done, cancel := context.WithCancel(context.Background())
	cancel()
	rm := Supervisor{TB: New(small())}.Run(done, 2)
	if !rm.Interrupted || len(rm.Runs) != 0 || len(rm.Quarantined) != 0 {
		t.Fatalf("pre-cancelled campaign: %+v", rm)
	}

	// Cancel after the first repetition: one valid run survives, the
	// second is cut short without a quarantine verdict.
	ctx := &countdownCtx{Context: context.Background(), n: 3}
	rm = Supervisor{TB: New(small())}.Run(ctx, 2)
	if !rm.Interrupted {
		t.Fatalf("mid-campaign cancel not reported: %+v", rm)
	}
	if len(rm.Runs) != 1 || rm.Attempts != 1 {
		t.Fatalf("completed repetition not kept: runs=%d attempts=%d", len(rm.Runs), rm.Attempts)
	}
	if len(rm.Quarantined) != 0 {
		t.Fatalf("interrupt misreported as quarantine: %+v", rm.Quarantined)
	}
}
