package flows

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pkt"
)

func udpFrame(src, dst string, sp, dp uint16, size int) []byte {
	return pkt.BuildUDP(nil, pkt.UDPSpec{
		SrcIP: netip.MustParseAddr(src), DstIP: netip.MustParseAddr(dst),
		SrcPort: sp, DstPort: dp, FrameLen: size,
	})
}

func tcpFrame(src, dst string, sp, dp uint16, flags uint8) []byte {
	b := make([]byte, 60)
	s, d := netip.MustParseAddr(src), netip.MustParseAddr(dst)
	pkt.EncodeEthernet(b, pkt.Ethernet{EtherType: pkt.EtherTypeIPv4})
	pkt.EncodeIPv4(b[14:], pkt.IPv4{Length: 46, TTL: 64, Protocol: pkt.ProtoTCP, Src: s, Dst: d})
	pkt.EncodeTCP(b[34:], pkt.TCP{SrcPort: sp, DstPort: dp, Flags: flags}, s, d, nil, true)
	return b
}

func TestObserveAggregates(t *testing.T) {
	tb := New(false)
	ts := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		tb.Observe(ts.Add(time.Duration(i)*time.Millisecond), udpFrame("10.0.0.1", "10.0.0.2", 1000, 53, 100))
	}
	tb.Observe(ts, udpFrame("10.0.0.1", "10.0.0.3", 1000, 53, 100))
	if tb.Len() != 2 {
		t.Fatalf("flows = %d, want 2", tb.Len())
	}
	top := tb.Top(1)
	if top[0].Stat.Packets != 5 {
		t.Fatalf("top flow packets = %d", top[0].Stat.Packets)
	}
	if top[0].Stat.Bytes != 5*86 { // IP length of a 100-byte frame
		t.Fatalf("top flow bytes = %d", top[0].Stat.Bytes)
	}
	if dur := top[0].Stat.Last.Sub(top[0].Stat.First); dur != 4*time.Millisecond {
		t.Fatalf("duration = %v", dur)
	}
}

func TestBidirectionalFolding(t *testing.T) {
	uni := New(false)
	bi := New(true)
	a := udpFrame("10.0.0.1", "10.0.0.2", 1000, 53, 100)
	b := udpFrame("10.0.0.2", "10.0.0.1", 53, 1000, 100)
	for _, tbl := range []*Table{uni, bi} {
		tbl.Observe(time.Unix(0, 0), a)
		tbl.Observe(time.Unix(1, 0), b)
	}
	if uni.Len() != 2 {
		t.Fatalf("unidirectional = %d flows, want 2", uni.Len())
	}
	if bi.Len() != 1 {
		t.Fatalf("bidirectional = %d flows, want 1", bi.Len())
	}
	if bi.Top(1)[0].Stat.Packets != 2 {
		t.Fatal("bidirectional flow did not merge both directions")
	}
}

func TestTCPHandshakeMarkers(t *testing.T) {
	tb := New(true)
	tb.Observe(time.Unix(0, 0), tcpFrame("10.0.0.1", "10.0.0.2", 1234, 80, pkt.TCPFlagSYN))
	tb.Observe(time.Unix(1, 0), tcpFrame("10.0.0.2", "10.0.0.1", 80, 1234, pkt.TCPFlagSYN|pkt.TCPFlagACK))
	tb.Observe(time.Unix(2, 0), tcpFrame("10.0.0.1", "10.0.0.2", 1234, 80, pkt.TCPFlagFIN|pkt.TCPFlagACK))
	if tb.Len() != 1 {
		t.Fatalf("flows = %d", tb.Len())
	}
	st := tb.Top(1)[0].Stat
	if st.SYNs != 2 || st.FINs != 1 {
		t.Fatalf("handshake markers = %+v", st)
	}
}

func TestNonIPSkipped(t *testing.T) {
	tb := New(false)
	arp := make([]byte, 60)
	pkt.EncodeEthernet(arp, pkt.Ethernet{EtherType: pkt.EtherTypeARP})
	tb.Observe(time.Unix(0, 0), arp)
	if tb.Len() != 0 || tb.NonIP != 1 || tb.Observed != 1 {
		t.Fatalf("table = %+v", tb)
	}
}

func TestReportFormat(t *testing.T) {
	tb := New(false)
	tb.Observe(time.Unix(0, 0), udpFrame("10.0.0.1", "10.0.0.2", 9, 9, 100))
	rep := tb.Report(10)
	for _, want := range []string{"1 flows", "udp 10.0.0.1:9 <-> 10.0.0.2:9", "# packets"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// Property: canonical is idempotent and direction-insensitive.
func TestCanonicalProperty(t *testing.T) {
	f := func(a, b [4]byte, sp, dp uint16, proto uint8) bool {
		k := Key{
			SrcIP: netip.AddrFrom4(a), DstIP: netip.AddrFrom4(b),
			SrcPort: sp, DstPort: dp, Proto: proto,
		}
		rev := Key{
			SrcIP: k.DstIP, DstIP: k.SrcIP,
			SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: proto,
		}
		c1, c2 := canonical(k), canonical(rev)
		return c1 == c2 && canonical(c1) == c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTopOrderingDeterministic(t *testing.T) {
	tb := New(false)
	// Two flows with identical byte/packet counts: order must be stable.
	tb.Observe(time.Unix(0, 0), udpFrame("10.0.0.1", "10.0.0.2", 1, 2, 100))
	tb.Observe(time.Unix(0, 0), udpFrame("10.0.0.3", "10.0.0.4", 3, 4, 100))
	a := tb.Report(0)
	b := tb.Report(0)
	if a != b {
		t.Fatal("report not deterministic")
	}
	if tb.Top(1)[0].Key.SrcIP != netip.MustParseAddr("10.0.0.1") {
		t.Fatalf("tie break = %v", tb.Top(1)[0].Key)
	}
}
