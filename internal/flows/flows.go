// Package flows implements per-flow accounting over captured packets: the
// kind of connection-level bookkeeping the thesis's motivating
// applications (Bro, the time machine, traffic analysis) perform on every
// packet, and the reason full capture matters — "if only few packets per
// connection are required, it is exceptionally bad if exactly these
// packets are lost" (§1.1).
//
// The table is used by cmd/capture's -flows mode and doubles as the
// reference for the FlowTrack per-packet load in the capture simulation.
package flows

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"repro/internal/pkt"
)

// Key identifies a flow. With bidirectional tables the endpoints are
// canonically ordered so both directions map to one flow.
type Key struct {
	SrcIP, DstIP     netip.Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

func (k Key) String() string {
	proto := fmt.Sprintf("proto-%d", k.Proto)
	switch k.Proto {
	case pkt.ProtoTCP:
		proto = "tcp"
	case pkt.ProtoUDP:
		proto = "udp"
	case pkt.ProtoICMP:
		proto = "icmp"
	}
	if k.Proto == pkt.ProtoTCP || k.Proto == pkt.ProtoUDP {
		return fmt.Sprintf("%s %s:%d <-> %s:%d", proto, k.SrcIP, k.SrcPort, k.DstIP, k.DstPort)
	}
	return fmt.Sprintf("%s %s <-> %s", proto, k.SrcIP, k.DstIP)
}

// Stat accumulates one flow's counters.
type Stat struct {
	Packets     uint64
	Bytes       uint64 // IP bytes
	First, Last time.Time
	SYNs, FINs  uint64 // TCP handshake markers seen
}

// Table is a flow table. The zero value is not ready: use New.
type Table struct {
	m             map[Key]*Stat
	bidirectional bool

	Observed uint64 // packets fed in
	NonIP    uint64 // packets skipped (no IPv4 header)
}

// New creates a table. bidirectional folds both directions of a
// connection into one flow (like Bro's connection records).
func New(bidirectional bool) *Table {
	return &Table{m: make(map[Key]*Stat), bidirectional: bidirectional}
}

// Len returns the number of distinct flows.
func (t *Table) Len() int { return len(t.m) }

// Observe accounts one captured frame.
func (t *Table) Observe(ts time.Time, frame []byte) {
	t.Observed++
	s, err := pkt.Parse(frame)
	if err != nil || !s.IsIPv4 {
		t.NonIP++
		return
	}
	k := Key{SrcIP: s.IPv4.Src, DstIP: s.IPv4.Dst, Proto: s.IPv4.Protocol}
	var syn, fin bool
	switch {
	case s.IsUDP:
		k.SrcPort, k.DstPort = s.UDP.SrcPort, s.UDP.DstPort
	case s.IsTCP:
		k.SrcPort, k.DstPort = s.TCP.SrcPort, s.TCP.DstPort
		syn = s.TCP.Flags&pkt.TCPFlagSYN != 0
		fin = s.TCP.Flags&pkt.TCPFlagFIN != 0
	}
	if t.bidirectional {
		k = canonical(k)
	}
	st := t.m[k]
	if st == nil {
		st = &Stat{First: ts}
		t.m[k] = st
	}
	st.Packets++
	st.Bytes += uint64(s.IPv4.Length)
	st.Last = ts
	if syn {
		st.SYNs++
	}
	if fin {
		st.FINs++
	}
}

// KeyOf parses one frame and returns its canonical (bidirectional) flow
// key, ok=false for non-IPv4 frames. It is the 5-tuple extraction the
// capture simulation's flow-aware sampling policy shares with the flow
// table, so "keep whole flows" means the same flows Observe would account.
func KeyOf(frame []byte) (Key, bool) {
	s, err := pkt.Parse(frame)
	if err != nil || !s.IsIPv4 {
		return Key{}, false
	}
	k := Key{SrcIP: s.IPv4.Src, DstIP: s.IPv4.Dst, Proto: s.IPv4.Protocol}
	switch {
	case s.IsUDP:
		k.SrcPort, k.DstPort = s.UDP.SrcPort, s.UDP.DstPort
	case s.IsTCP:
		k.SrcPort, k.DstPort = s.TCP.SrcPort, s.TCP.DstPort
	}
	return canonical(k), true
}

// Hash returns a deterministic 64-bit FNV-1a hash of the key. The hash is
// platform- and run-independent, so hash-based flow selection (sampling
// policies) is reproducible across processes.
func (k Key) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for _, a := range [2]netip.Addr{k.SrcIP, k.DstIP} {
		if !a.IsValid() {
			mix(0)
			continue
		}
		b16 := a.As16()
		for _, b := range b16 {
			mix(b)
		}
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	mix(k.Proto)
	return h
}

// canonical orders the endpoints so A→B and B→A share a key.
func canonical(k Key) Key {
	swap := false
	switch k.SrcIP.Compare(k.DstIP) {
	case 1:
		swap = true
	case 0:
		swap = k.SrcPort > k.DstPort
	}
	if swap {
		k.SrcIP, k.DstIP = k.DstIP, k.SrcIP
		k.SrcPort, k.DstPort = k.DstPort, k.SrcPort
	}
	return k
}

// Entry pairs a key with its counters for reporting.
type Entry struct {
	Key  Key
	Stat Stat
}

// Top returns the n flows with the most bytes (ties broken by packets,
// then by key string for determinism). n <= 0 returns all flows.
func (t *Table) Top(n int) []Entry {
	out := make([]Entry, 0, len(t.m))
	for k, s := range t.m {
		out = append(out, Entry{k, *s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stat.Bytes != out[j].Stat.Bytes {
			return out[i].Stat.Bytes > out[j].Stat.Bytes
		}
		if out[i].Stat.Packets != out[j].Stat.Packets {
			return out[i].Stat.Packets > out[j].Stat.Packets
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Report renders the top-n flows as a table.
func (t *Table) Report(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %d flows over %d packets (%d non-IP skipped)\n",
		t.Len(), t.Observed, t.NonIP)
	fmt.Fprintln(&b, "# packets\tbytes\tduration\tflow")
	for _, e := range t.Top(n) {
		fmt.Fprintf(&b, "%d\t%d\t%s\t%s\n",
			e.Stat.Packets, e.Stat.Bytes,
			e.Stat.Last.Sub(e.Stat.First).Truncate(time.Microsecond), e.Key)
	}
	return b.String()
}
