package filter

import (
	"fmt"
	"net/netip"
	"testing"

	"repro/internal/pkt"
)

// differential_test cross-checks the compiler against independently
// written semantics: random boolean combinations of primitives are built
// together with a direct evaluator, compiled to BPF, and compared over a
// corpus of packets. Any divergence is a compiler or VM bug.

// prim is a primitive with its ground-truth semantics.
type prim struct {
	expr string
	eval func(s pkt.Summary, frame []byte) bool
}

func primitives() []prim {
	isIP := func(s pkt.Summary) bool { return s.IsIPv4 }
	return []prim{
		{"ip", func(s pkt.Summary, _ []byte) bool { return isIP(s) }},
		{"arp", func(s pkt.Summary, _ []byte) bool { return s.Ethernet.EtherType == pkt.EtherTypeARP }},
		{"udp", func(s pkt.Summary, _ []byte) bool { return isIP(s) && s.IPv4.Protocol == pkt.ProtoUDP }},
		{"tcp", func(s pkt.Summary, _ []byte) bool { return isIP(s) && s.IPv4.Protocol == pkt.ProtoTCP }},
		{"icmp", func(s pkt.Summary, _ []byte) bool { return isIP(s) && s.IPv4.Protocol == pkt.ProtoICMP }},
		{"ip src 192.168.10.100", func(s pkt.Summary, _ []byte) bool {
			return isIP(s) && s.IPv4.Src == netip.MustParseAddr("192.168.10.100")
		}},
		{"ip dst 192.168.10.12", func(s pkt.Summary, _ []byte) bool {
			return isIP(s) && s.IPv4.Dst == netip.MustParseAddr("192.168.10.12")
		}},
		{"ip host 10.0.0.1", func(s pkt.Summary, _ []byte) bool {
			a := netip.MustParseAddr("10.0.0.1")
			return isIP(s) && (s.IPv4.Src == a || s.IPv4.Dst == a)
		}},
		{"net 192.168.0.0/16", func(s pkt.Summary, _ []byte) bool {
			in := func(a netip.Addr) bool {
				b := a.As4()
				return b[0] == 192 && b[1] == 168
			}
			return isIP(s) && (in(s.IPv4.Src) || in(s.IPv4.Dst))
		}},
		{"src net 10.0.0.0/8", func(s pkt.Summary, _ []byte) bool {
			return isIP(s) && s.IPv4.Src.As4()[0] == 10
		}},
		{"port 9", func(s pkt.Summary, _ []byte) bool { return portMatch(s, 9, true, true) }},
		{"src port 9", func(s pkt.Summary, _ []byte) bool { return portMatch(s, 9, true, false) }},
		{"dst port 4242", func(s pkt.Summary, _ []byte) bool { return portMatch(s, 4242, false, true) }},
		{"len > 300", func(s pkt.Summary, frame []byte) bool { return len(frame) > 300 }},
		{"greater 100", func(s pkt.Summary, frame []byte) bool { return len(frame) >= 100 }},
		{"less 200", func(s pkt.Summary, frame []byte) bool { return len(frame) <= 200 }},
		{"ether[12:2] = 0x800", func(s pkt.Summary, _ []byte) bool {
			return s.Ethernet.EtherType == 0x800
		}},
		{"ether src 00:00:00:00:00:01", func(s pkt.Summary, _ []byte) bool {
			return s.Ethernet.Src == pkt.MAC{0, 0, 0, 0, 0, 1}
		}},
		{"ip[9] = 17", func(s pkt.Summary, _ []byte) bool {
			return isIP(s) && s.IPv4.Protocol == 17
		}},
		{"ip[8] > 32", func(s pkt.Summary, _ []byte) bool {
			return isIP(s) && s.IPv4.TTL > 32
		}},
	}
}

func portMatch(s pkt.Summary, port uint16, src, dst bool) bool {
	if !s.IsIPv4 || s.IPv4.FragOffset != 0 {
		return false
	}
	var sp, dp uint16
	switch {
	case s.IsUDP:
		sp, dp = s.UDP.SrcPort, s.UDP.DstPort
	case s.IsTCP:
		sp, dp = s.TCP.SrcPort, s.TCP.DstPort
	default:
		return false
	}
	return (src && sp == port) || (dst && dp == port)
}

// expr is a generated expression with its evaluator.
type expr struct {
	text string
	eval func(s pkt.Summary, frame []byte) bool
}

// genExpr builds a random expression of bounded depth from a seed-driven
// PRNG; expression structure and evaluation stay in lockstep.
func genExpr(next func(int) int, depth int) expr {
	prims := primitives()
	if depth <= 0 || next(3) == 0 {
		p := prims[next(len(prims))]
		return expr{p.expr, p.eval}
	}
	switch next(3) {
	case 0:
		a := genExpr(next, depth-1)
		b := genExpr(next, depth-1)
		return expr{
			"(" + a.text + " and " + b.text + ")",
			func(s pkt.Summary, f []byte) bool { return a.eval(s, f) && b.eval(s, f) },
		}
	case 1:
		a := genExpr(next, depth-1)
		b := genExpr(next, depth-1)
		return expr{
			"(" + a.text + " or " + b.text + ")",
			func(s pkt.Summary, f []byte) bool { return a.eval(s, f) || b.eval(s, f) },
		}
	default:
		a := genExpr(next, depth-1)
		return expr{
			"not " + a.text,
			func(s pkt.Summary, f []byte) bool { return !a.eval(s, f) },
		}
	}
}

// corpus returns a diverse set of frames (all ≥54 bytes so every primitive
// offset is in range — classic BPF rejects on out-of-bounds loads, which
// direct semantics do not model).
func corpus(t *testing.T) [][]byte {
	t.Helper()
	var out [][]byte
	// UDP frames: the generator's defaults, varying size and MAC.
	for _, size := range []int{60, 100, 150, 250, 400, 1514} {
		for mac := byte(0); mac <= 2; mac++ {
			out = append(out, pkt.BuildUDP(nil, pkt.UDPSpec{
				SrcMAC:  pkt.MAC{0, 0, 0, 0, 0, mac},
				SrcIP:   netip.MustParseAddr("192.168.10.100"),
				DstIP:   netip.MustParseAddr("192.168.10.12"),
				SrcPort: 9, DstPort: 9,
				FrameLen: size,
			}))
		}
	}
	// A UDP frame from/to other addresses and ports.
	out = append(out, pkt.BuildUDP(nil, pkt.UDPSpec{
		SrcIP: netip.MustParseAddr("10.1.2.3"), DstIP: netip.MustParseAddr("10.0.0.1"),
		SrcPort: 1000, DstPort: 4242, FrameLen: 120,
	}))
	// TCP frames.
	for _, ports := range [][2]uint16{{9, 80}, {4242, 9}, {80, 4242}} {
		b := make([]byte, 120)
		src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("192.168.99.7")
		pkt.EncodeEthernet(b, pkt.Ethernet{Src: pkt.MAC{0, 0, 0, 0, 0, 1}, EtherType: pkt.EtherTypeIPv4})
		pkt.EncodeIPv4(b[14:], pkt.IPv4{Length: uint16(len(b) - 14), TTL: 64, Protocol: pkt.ProtoTCP, Src: src, Dst: dst})
		pkt.EncodeTCP(b[34:], pkt.TCP{SrcPort: ports[0], DstPort: ports[1]}, src, dst, nil, true)
		out = append(out, b)
	}
	// A fragment (port primitives must skip it).
	frag := pkt.BuildUDP(nil, pkt.UDPSpec{
		SrcIP: netip.MustParseAddr("192.168.10.100"), DstIP: netip.MustParseAddr("192.168.10.12"),
		SrcPort: 9, DstPort: 9, FrameLen: 100,
	})
	pkt.EncodeIPv4(frag[14:], pkt.IPv4{Length: 86, TTL: 32, Protocol: pkt.ProtoUDP,
		Src: netip.MustParseAddr("192.168.10.100"), Dst: netip.MustParseAddr("192.168.10.12"),
		FragOffset: 64})
	out = append(out, frag)
	// ICMP.
	icmp := make([]byte, 64)
	pkt.EncodeEthernet(icmp, pkt.Ethernet{EtherType: pkt.EtherTypeIPv4})
	pkt.EncodeIPv4(icmp[14:], pkt.IPv4{Length: 50, TTL: 64, Protocol: pkt.ProtoICMP,
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")})
	out = append(out, icmp)
	// ARP.
	arp := make([]byte, 60)
	pkt.EncodeEthernet(arp, pkt.Ethernet{Src: pkt.MAC{0, 0, 0, 0, 0, 1}, EtherType: pkt.EtherTypeARP})
	out = append(out, arp)
	return out
}

// TestCompilerDifferential compiles hundreds of random expressions and
// checks every packet decision against the direct evaluation.
func TestCompilerDifferential(t *testing.T) {
	frames := corpus(t)
	for seed := int64(0); seed < 500; seed++ {
		s := uint64(seed)*2654435761 + 1
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int((s >> 33) % uint64(n))
		}
		e := genExpr(next, 3)
		prog, err := Compile(e.text, 65535)
		if err != nil {
			t.Fatalf("seed %d: Compile(%q): %v", seed, e.text, err)
		}
		for fi, frame := range frames {
			sum, err := pkt.Parse(frame)
			if err != nil {
				t.Fatal(err)
			}
			want := e.eval(sum, frame)
			res, err := prog.Run(frame)
			if err != nil {
				t.Fatalf("seed %d frame %d: Run: %v", seed, fi, err)
			}
			got := res.Accept != 0
			if got != want {
				t.Fatalf("seed %d: %q on frame %d (%d bytes): compiled=%v direct=%v\nprogram:\n%s",
					seed, e.text, fi, len(frame), got, want, prog)
			}
		}
	}
}

// TestCompilerDifferentialDeterministic pins that the generator above is
// reproducible, so failures are reportable by seed.
func TestCompilerDifferentialDeterministic(t *testing.T) {
	mk := func() string {
		s := uint64(7)*2654435761 + 1
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int((s >> 33) % uint64(n))
		}
		return genExpr(next, 3).text
	}
	if mk() != mk() {
		t.Fatal("expression generation not deterministic")
	}
	_ = fmt.Sprintf // keep fmt for failure formatting above
}
